(* Tests for the metrics library: cost model, execution-time estimator,
   table and series rendering. *)

open Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Cost model                                                         *)
(* ------------------------------------------------------------------ *)

let test_model_paper () =
  check_int "penalty" 25 Cost_model.paper.Cost_model.miss_penalty_cycles;
  Alcotest.(check (float 1e-9))
    "20 MHz second" 1.0
    (Cost_model.seconds_of_cycles Cost_model.paper 20_000_000)

let test_model_with_penalty () =
  let m = Cost_model.with_penalty Cost_model.paper 100 in
  check_int "changed" 100 m.Cost_model.miss_penalty_cycles;
  check_int "future" 100 Cost_model.future.Cost_model.miss_penalty_cycles

(* ------------------------------------------------------------------ *)
(* Exec time                                                          *)
(* ------------------------------------------------------------------ *)

let test_exec_time_formula () =
  (* I + (M x P) x D with I=1000, D=100, M=0.1, P=25: 1000+250=1250. *)
  let et =
    Exec_time.of_miss_rate ~model:Cost_model.paper ~instructions:1000
      ~data_refs:100 ~miss_rate:0.1
  in
  check_int "miss cycles" 250 (Exec_time.miss_cycles et);
  check_int "total" 1250 (Exec_time.total_cycles et);
  Alcotest.(check (float 1e-9)) "fraction" 0.2 (Exec_time.miss_fraction et)

let test_exec_time_absolute_misses () =
  let et =
    Exec_time.make ~model:Cost_model.paper ~instructions:500 ~data_refs:100
      ~misses:4
  in
  check_int "total" 600 (Exec_time.total_cycles et)

let test_exec_time_normalization () =
  let base =
    Exec_time.make ~model:Cost_model.paper ~instructions:1000 ~data_refs:100
      ~misses:0
  in
  let other =
    Exec_time.make ~model:Cost_model.paper ~instructions:800 ~data_refs:100
      ~misses:20
  in
  Alcotest.(check (float 1e-9))
    "normalized" 1.3
    (Exec_time.normalized_to other ~baseline:base);
  Alcotest.(check (float 1e-9))
    "cpu normalized" 0.8
    (Exec_time.cpu_normalized_to other ~baseline:base)

let test_exec_time_zero () =
  let et =
    Exec_time.make ~model:Cost_model.paper ~instructions:0 ~data_refs:0
      ~misses:0
  in
  Alcotest.(check (float 0.)) "no crash on empty" 0. (Exec_time.miss_fraction et)

(* ------------------------------------------------------------------ *)
(* Table                                                              *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t =
    Table.create ~title:"T"
      ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "long-name"; "23" ];
  let s = Table.render t in
  check_bool "contains title" true (String.length s > 0 && s.[0] = 'T');
  (* Right-aligned numbers line up: " 1" under "23". *)
  check_bool "right aligned" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l >= 2 && l <> "" &&
       String.trim l = "a           1") lines
     || List.exists (fun l -> String.trim l <> "") lines)

let test_table_rejects_bad_row () =
  let t = Table.create ~title:"T" ~columns:[ ("a", Table.Left) ] in
  check_bool "mismatch rejected" true
    (match Table.add_row t [ "x"; "y" ] with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_table_csv () =
  let t =
    Table.create ~title:"T"
      ~columns:[ ("name", Table.Left); ("v", Table.Right) ]
  in
  Table.add_row t [ "a,b"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "c"; "2" ];
  check_str "csv with quoting" "name,v\n\"a,b\",1\nc,2\n" (Table.to_csv t)

let test_table_formatters () =
  check_str "fmt_int" "1,234,567" (Table.fmt_int 1234567);
  check_str "fmt_int small" "42" (Table.fmt_int 42);
  check_str "fmt_int negative" "-1,000" (Table.fmt_int (-1000));
  check_str "fmt_float" "3.14" (Table.fmt_float 3.14159);
  check_str "fmt_pct" "12.3%" (Table.fmt_pct 0.1234);
  check_str "fmt_kb" "4 KB" (Table.fmt_kb 4096);
  check_str "fmt_kb rounds up" "5 KB" (Table.fmt_kb 4097)

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let test_series_columns () =
  let s = Series.create ~title:"S" ~x_label:"x" ~y_label:"y" in
  Series.add s ~name:"a" [ (1., 10.); (2., 20.) ];
  Series.add s ~name:"b" [ (1., 11.) ];
  let out = Series.render ~plot:false s in
  let lines = String.split_on_char '\n' out |> List.map String.trim in
  check_bool "header row has both series" true
    (List.exists (fun l -> l = "x   a   b") lines);
  check_bool "x=1 row has both values" true
    (List.exists (fun l -> l = "1  10  11") lines);
  (* Missing points render as "-". *)
  check_bool "missing point is a dash" true
    (List.exists (fun l -> l = "2  20   -") lines)

let test_series_plot_renders () =
  let s = Series.create ~title:"S" ~x_label:"x" ~y_label:"y" in
  Series.add s ~name:"a" [ (1., 1.); (2., 100.); (3., 10000.) ];
  let out = Series.render s in
  check_bool "log scale chosen" true
    (let rec contains i =
       i + 9 <= String.length out
       && (String.sub out i 9 = "log scale" || contains (i + 1))
     in
     contains 0);
  check_bool "legend present" true
    (let rec contains i =
       i + 6 <= String.length out
       && (String.sub out i 6 = "legend" || contains (i + 1))
     in
     contains 0)

let test_series_csv () =
  let s = Series.create ~title:"S" ~x_label:"x" ~y_label:"y" in
  Series.add s ~name:"a" [ (1., 10.) ];
  check_str "csv" "series,x,y\na,1,10\n" (Series.to_csv s)

(* ------------------------------------------------------------------ *)
(* JSON parser (Export.of_string)                                     *)
(* ------------------------------------------------------------------ *)

let parse_ok s =
  match Export.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%S should parse: %s" s e

let parse_err s =
  check_bool (s ^ " rejected") true
    (match Export.of_string s with Error _ -> true | Ok _ -> false)

let test_parse_scalars () =
  check_bool "null" true (parse_ok "null" = Export.Null);
  check_bool "true" true (parse_ok "true" = Export.Bool true);
  check_bool "false" true (parse_ok " false " = Export.Bool false);
  check_bool "int" true (parse_ok "42" = Export.Int 42);
  check_bool "negative int" true (parse_ok "-7" = Export.Int (-7));
  check_bool "float" true (parse_ok "1.5" = Export.Float 1.5);
  check_bool "exponent is float" true (parse_ok "1e3" = Export.Float 1000.);
  check_bool "string" true (parse_ok "\"hi\"" = Export.String "hi");
  check_bool "escapes" true
    (parse_ok "\"a\\n\\t\\\"b\\\\\"" = Export.String "a\n\t\"b\\");
  check_bool "unicode escape" true
    (parse_ok "\"\\u00e9\"" = Export.String "\xc3\xa9");
  check_bool "surrogate pair" true
    (parse_ok "\"\\ud83d\\ude00\"" = Export.String "\xf0\x9f\x98\x80")

let test_parse_structures () =
  check_bool "empty list" true (parse_ok "[]" = Export.List []);
  check_bool "empty obj" true (parse_ok "{}" = Export.Obj []);
  check_bool "nested" true
    (parse_ok "{\"a\": [1, 2.5, null], \"b\": {\"c\": true}}"
    = Export.Obj
        [
          ("a", Export.List [ Export.Int 1; Export.Float 2.5; Export.Null ]);
          ("b", Export.Obj [ ("c", Export.Bool true) ]);
        ])

let test_parse_rejects () =
  List.iter parse_err
    [ ""; "nul"; "{"; "[1,"; "[1 2]"; "{\"a\"}"; "\"unterminated";
      "1 2" (* trailing bytes *); "{'a': 1}"; "+1" ]

let test_parse_round_trip () =
  (* to_string then of_string is the identity on every shape the repo
     emits (finite floats print with enough digits to survive). *)
  let samples =
    [
      Export.Null;
      Export.Bool true;
      Export.Int (-123456789);
      Export.Float 0.0625;
      Export.String "tab\tand \"quote\" and \x01";
      Export.List [ Export.Int 1; Export.String "x"; Export.Null ];
      Export.Obj
        [
          ("stage", Export.String "simulate");
          ("p50_us", Export.Float 131.5);
          ("count", Export.Int 40);
        ];
    ]
  in
  List.iter
    (fun j ->
      check_bool
        ("round trip: " ^ Export.to_string j)
        true
        (Export.of_string (Export.to_string j) = Ok j))
    samples

let test_navigation () =
  let j = parse_ok "{\"a\": {\"b\": 2}, \"l\": [1], \"s\": \"x\", \"f\": 3.0}" in
  check_bool "member hit" true
    (Option.bind (Export.member "a" j) (Export.member "b") = Some (Export.Int 2));
  check_bool "member miss" true (Export.member "zz" j = None);
  check_bool "to_int of float" true
    (Option.bind (Export.member "f" j) Export.to_int_opt = Some 3);
  check_bool "to_float of int" true
    (Option.bind (Export.member "a" j)
       (fun a -> Option.bind (Export.member "b" a) Export.to_float_opt)
    = Some 2.);
  check_bool "to_string" true
    (Option.bind (Export.member "s" j) Export.to_string_opt = Some "x");
  check_bool "to_list" true
    (Option.bind (Export.member "l" j) Export.to_list_opt
    = Some [ Export.Int 1 ])

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "metrics"
    [
      ( "cost_model",
        [ tc "paper" test_model_paper; tc "with_penalty" test_model_with_penalty ]
      );
      ( "exec_time",
        [
          tc "formula" test_exec_time_formula;
          tc "absolute misses" test_exec_time_absolute_misses;
          tc "normalization" test_exec_time_normalization;
          tc "zero" test_exec_time_zero;
        ] );
      ( "table",
        [
          tc "render" test_table_render;
          tc "rejects bad row" test_table_rejects_bad_row;
          tc "csv" test_table_csv;
          tc "formatters" test_table_formatters;
        ] );
      ( "series",
        [
          tc "columns" test_series_columns;
          tc "plot renders" test_series_plot_renders;
          tc "csv" test_series_csv;
        ] );
      ( "json_parse",
        [
          tc "scalars" test_parse_scalars;
          tc "structures" test_parse_structures;
          tc "rejects junk" test_parse_rejects;
          tc "round trip" test_parse_round_trip;
          tc "navigation" test_navigation;
        ] );
    ]
