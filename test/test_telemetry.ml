(* Tests for the telemetry subsystem: metrics registry semantics (and
   their Prometheus/JSON exports), span tracing, probe windows/series —
   and the two whole-stack invariants: instrumentation is a no-op when
   disabled, and enabling it never changes simulation results. *)

module M = Telemetry.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* A minimal JSON syntax checker (no values kept): enough to assert    *)
(* that exported documents are well-formed without a json dependency.  *)
(* ------------------------------------------------------------------ *)

let json_well_formed s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let fail () = raise Exit in
  let expect c = if peek () = Some c then advance () else fail () in
  let literal w =
    String.iter (fun c -> expect c) w
  in
  let parse_string () =
    expect '"';
    let fin = ref false in
    while not !fin do
      match peek () with
      | None -> fail ()
      | Some '"' -> advance (); fin := true
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> fail ()
              done
          | _ -> fail ())
      | Some c when Char.code c < 0x20 -> fail ()
      | Some _ -> advance ()
    done
  in
  let parse_number () =
    if peek () = Some '-' then advance ();
    let digits () =
      let seen = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        seen := true;
        advance ()
      done;
      if not !seen then fail ()
    in
    digits ();
    if peek () = Some '.' then (advance (); digits ());
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ())
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> parse_string ()
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            skip_ws ();
            parse_string ();
            skip_ws ();
            expect ':';
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' -> advance (); fin := true
            | _ -> fail ()
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let fin = ref false in
          while not !fin do
            parse_value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' -> advance (); fin := true
            | _ -> fail ()
          done
        end
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> parse_number ()
    | None -> fail ()
  in
  match
    parse_value ();
    skip_ws ();
    if !pos <> n then fail ()
  with
  | () -> true
  | exception Exit -> false

let contains ~sub s =
  let ns = String.length s and nb = String.length sub in
  let rec go i = i + nb <= ns && (String.sub s i nb = sub || go (i + 1)) in
  nb = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics: counters, gauges, histograms                               *)
(* ------------------------------------------------------------------ *)

let test_counter_basics () =
  let reg = M.create () in
  let fam = M.Counter.family ~registry:reg ~name:"t_total" ~help:"h" () in
  let c = M.Counter.labels fam [] in
  M.Counter.inc c;
  check_int "disabled registry ignores inc" 0 (M.Counter.value c);
  M.set_enabled reg true;
  M.Counter.inc c;
  M.Counter.inc ~by:5 c;
  check_int "inc accumulates" 6 (M.Counter.value c);
  M.Counter.inc ~by:0 c;
  check_int "by:0 allowed" 6 (M.Counter.value c);
  Alcotest.check_raises "negative by rejected"
    (Invalid_argument "Telemetry.Metrics.Counter.inc: by must be >= 0")
    (fun () -> M.Counter.inc ~by:(-1) c)

let test_counter_labels () =
  let reg = M.create () in
  M.set_enabled reg true;
  let fam =
    M.Counter.family ~registry:reg ~name:"t_lbl_total" ~help:"h"
      ~labels:[ "alloc"; "outcome" ] ()
  in
  let a = M.Counter.labels fam [ "firstfit"; "hit" ] in
  let b = M.Counter.labels fam [ "firstfit"; "miss" ] in
  M.Counter.inc a;
  M.Counter.inc b;
  M.Counter.inc b;
  check_int "children are distinct" 1 (M.Counter.value a);
  check_int "second child" 2 (M.Counter.value b);
  let a' = M.Counter.labels fam [ "firstfit"; "hit" ] in
  M.Counter.inc a';
  check_int "same labels resolve to same child" 2 (M.Counter.value a);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Telemetry.Metrics: expected 2 label values, got 1")
    (fun () -> ignore (M.Counter.labels fam [ "firstfit" ]))

let test_registry_rejects () =
  let reg = M.create () in
  ignore (M.Counter.family ~registry:reg ~name:"dup_total" ~help:"h" ());
  check_bool "duplicate name rejected" true
    (match M.Gauge.family ~registry:reg ~name:"dup_total" ~help:"h" () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "malformed metric name rejected" true
    (match M.Counter.family ~registry:reg ~name:"bad name" ~help:"h" () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_bool "malformed label name rejected" true
    (match
       M.Counter.family ~registry:reg ~name:"ok_total" ~help:"h"
         ~labels:[ "0bad" ] ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_gauge () =
  let reg = M.create () in
  let fam = M.Gauge.family ~registry:reg ~name:"t_gauge" ~help:"h" () in
  let g = M.Gauge.labels fam [] in
  M.Gauge.set g 5;
  check_int "disabled registry ignores set" 0 (M.Gauge.value g);
  M.set_enabled reg true;
  M.Gauge.set g 42;
  M.Gauge.add g (-2);
  check_int "set then add" 40 (M.Gauge.value g)

let test_histogram () =
  let reg = M.create () in
  M.set_enabled reg true;
  let fam = M.Histogram.family ~registry:reg ~name:"t_hist" ~help:"h" () in
  let h = M.Histogram.labels fam [] in
  List.iter (M.Histogram.observe h) [ 1; 1; 3; 100; 0; -5 ];
  check_int "count" 6 (M.Histogram.count h);
  (* -5 clamps to 0. *)
  check_int "sum" 105 (M.Histogram.sum h);
  Alcotest.(check (float 0.01)) "mean" 17.5 (M.Histogram.mean h);
  match M.snapshot reg with
  | [ { M.samples = [ { M.v = M.Histogram_v hs; _ } ]; _ } ] ->
      check_int "sample count" 6 hs.M.count;
      check_int "sample sum" 105 hs.M.sum;
      (* Buckets are cumulative and end at +Inf. *)
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      check_bool "buckets cumulative" true (monotone hs.M.buckets);
      (match List.rev hs.M.buckets with
      | (inf, total) :: _ ->
          check_bool "last bound is +Inf" true (inf = infinity);
          check_int "last bucket = count" 6 total
      | [] -> Alcotest.fail "no buckets");
      (* le=1 holds the two 1s, the 0 and the clamped -5. *)
      let le1 = List.assoc 1. hs.M.buckets in
      check_int "le=1 cumulative" 4 le1
  | _ -> Alcotest.fail "expected one family with one histogram sample"

let test_histogram_quantile () =
  let reg = M.create () in
  M.set_enabled reg true;
  let fam = M.Histogram.family ~registry:reg ~name:"t_quant" ~help:"h" () in
  let h = M.Histogram.labels fam [] in
  Alcotest.(check (float 0.)) "empty histogram" 0. (M.Histogram.quantile h 0.5);
  (* 100 observations of 100: every quantile lands in the (64, 128]
     bucket, whose interpolated estimates stay inside it. *)
  for _ = 1 to 100 do
    M.Histogram.observe h 100
  done;
  List.iter
    (fun q ->
      let v = M.Histogram.quantile h q in
      check_bool
        (Printf.sprintf "q=%g inside the occupied bucket" q)
        true
        (v >= 64. && v <= 128.))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (* Clamping: out-of-range q behaves as 0/1, never raises. *)
  Alcotest.(check (float 0.))
    "q clamped low" (M.Histogram.quantile h 0.) (M.Histogram.quantile h (-3.));
  Alcotest.(check (float 0.))
    "q clamped high" (M.Histogram.quantile h 1.) (M.Histogram.quantile h 7.);
  (* A bimodal stream: the median stays in the low mode's bucket, the
     p99 reaches the high mode's. *)
  let fam2 = M.Histogram.family ~registry:reg ~name:"t_quant2" ~help:"h" () in
  let h2 = M.Histogram.labels fam2 [] in
  for _ = 1 to 90 do
    M.Histogram.observe h2 10
  done;
  for _ = 1 to 10 do
    M.Histogram.observe h2 10_000
  done;
  check_bool "p50 in the low mode" true (M.Histogram.quantile h2 0.5 <= 16.);
  check_bool "p99 in the high mode" true (M.Histogram.quantile h2 0.99 > 8192.)

let test_shards_merge () =
  let reg = M.create () in
  M.set_enabled reg true;
  let fam = M.Counter.family ~registry:reg ~name:"t_dom_total" ~help:"h" () in
  let c = M.Counter.labels fam [] in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              M.Counter.inc c
            done))
  in
  List.iter Domain.join domains;
  M.Counter.inc ~by:10 c;
  check_int "shards merge across domains" 4010 (M.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Exports                                                             *)
(* ------------------------------------------------------------------ *)

let sample_registry () =
  let reg = M.create () in
  M.set_enabled reg true;
  let cf =
    M.Counter.family ~registry:reg ~name:"t_exp_total" ~help:"a \"counter\""
      ~labels:[ "who" ] ()
  in
  M.Counter.inc ~by:3 (M.Counter.labels cf [ "a\\b\nc\"d" ]);
  let gf = M.Gauge.family ~registry:reg ~name:"t_exp_gauge" ~help:"g" () in
  M.Gauge.set (M.Gauge.labels gf []) 7;
  let hf = M.Histogram.family ~registry:reg ~name:"t_exp_hist" ~help:"h" () in
  let h = M.Histogram.labels hf [] in
  List.iter (M.Histogram.observe h) [ 1; 2; 900 ];
  reg

let test_prometheus_export () =
  let text = M.to_prometheus (M.snapshot (sample_registry ())) in
  let lines = String.split_on_char '\n' text in
  check_bool "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  (* Every line is a comment or "name{labels} value" with a numeric
     value; sample names may only extend the family name with _bucket /
     _sum / _count. *)
  List.iter
    (fun line ->
      if line = "" || String.length line >= 2 && String.sub line 0 2 = "# "
      then ()
      else begin
        let sp = String.rindex line ' ' in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        check_bool
          ("numeric value in: " ^ line)
          true
          (match float_of_string_opt value with Some _ -> true | None -> false);
        check_bool
          ("known family in: " ^ line)
          true
          (List.exists
             (fun p ->
               String.length line >= String.length p
               && String.sub line 0 (String.length p) = p)
             [ "t_exp_total"; "t_exp_gauge"; "t_exp_hist" ])
      end)
    lines;
  (* The escaped label value round-trips the escapes. *)
  check_bool "label value escaped" true
    (List.exists
       (fun l ->
         l = "t_exp_total{who=\"a\\\\b\\nc\\\"d\"} 3")
       lines);
  (* HELP text escapes its quotes' line breaks per the format. *)
  check_bool "has HELP" true
    (List.exists (fun l -> l = "# HELP t_exp_total a \"counter\"") lines);
  check_bool "has TYPE histogram" true
    (List.mem "# TYPE t_exp_hist histogram" lines);
  check_bool "histogram +Inf bucket" true
    (List.mem "t_exp_hist_bucket{le=\"+Inf\"} 3" lines);
  check_bool "histogram _sum" true (List.mem "t_exp_hist_sum 903" lines);
  check_bool "histogram _count" true (List.mem "t_exp_hist_count 3" lines)

let test_json_export () =
  let json = M.to_json (M.snapshot (sample_registry ())) in
  check_bool "metrics JSON well-formed" true (json_well_formed json)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

(* The tracer is process-global: each test leaves it disabled+empty. *)
let with_tracer f =
  Telemetry.Span.reset ();
  Telemetry.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Span.set_enabled false;
      Telemetry.Span.reset ())
    f

let test_span_disabled () =
  Telemetry.Span.reset ();
  Telemetry.Span.set_enabled false;
  check_int "disabled with_span runs thunk"
    42
    (Telemetry.Span.with_span ~cat:"t" "x" (fun () -> 42));
  Telemetry.Span.instant ~cat:"t" "marker";
  check_int "nothing recorded" 0 (Telemetry.Span.recorded ())

let test_span_records () =
  with_tracer @@ fun () ->
  check_string "result passes through" "ok"
    (Telemetry.Span.with_span ~cat:"cell" "a/b" (fun () -> "ok"));
  Telemetry.Span.instant ~cat:"cell" "tick";
  check_int "two events" 2 (Telemetry.Span.recorded ());
  check_int "none dropped" 0 (Telemetry.Span.dropped ());
  let json = Telemetry.Span.to_chrome_json () in
  check_bool "chrome JSON well-formed" true (json_well_formed json);
  check_bool "has traceEvents" true (contains ~sub:"\"traceEvents\"" json)

let test_span_exception () =
  with_tracer @@ fun () ->
  check_bool "exception re-raised" true
    (match
       Telemetry.Span.with_span ~cat:"t" "boom" (fun () -> failwith "boom")
     with
    | _ -> false
    | exception Failure _ -> true);
  check_int "failed span still recorded" 1 (Telemetry.Span.recorded ())

let test_span_ring_overflow () =
  Telemetry.Span.reset ~capacity:4 ();
  Telemetry.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Span.set_enabled false;
      Telemetry.Span.reset ())
    (fun () ->
      for i = 1 to 7 do
        Telemetry.Span.instant ~cat:"t" (string_of_int i)
      done;
      check_int "ring holds capacity" 4 (Telemetry.Span.recorded ());
      check_int "overwrites counted" 3 (Telemetry.Span.dropped ());
      let json = Telemetry.Span.to_chrome_json () in
      (* Oldest events were overwritten: "4".."7" remain. *)
      check_bool "oldest gone" true (not (contains ~sub:"\"name\":\"3\"" json));
      check_bool "newest kept" true (contains ~sub:"\"name\":\"7\"" json))

(* ------------------------------------------------------------------ *)
(* Request contexts                                                    *)
(* ------------------------------------------------------------------ *)

module Rctx = Telemetry.Rctx

let with_rctx f =
  Rctx.Slow.reset ();
  Rctx.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Rctx.set_enabled false;
      Rctx.Slow.reset ();
      Rctx.Slow.configure ())
    f

let is_hex s =
  s <> ""
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       s

let test_rctx_ids () =
  let id = Rctx.fresh_id () in
  check_int "fresh id is 16 digits" 16 (String.length id);
  check_bool "fresh id is lowercase hex" true (is_hex id);
  check_bool "fresh ids differ" true (Rctx.fresh_id () <> id);
  check_bool "valid: 1 digit" true (Rctx.valid_id "a");
  check_bool "valid: 32 digits" true (Rctx.valid_id (String.make 32 'f'));
  check_bool "valid: uppercase accepted" true (Rctx.valid_id "DEADBEEF");
  check_bool "invalid: empty" false (Rctx.valid_id "");
  check_bool "invalid: 33 digits" false (Rctx.valid_id (String.make 33 'f'));
  check_bool "invalid: non-hex" false (Rctx.valid_id "xyz");
  with_rctx @@ fun () ->
  let t = Rctx.create ~id:"DEADbeef" ~kind:"cell" ~peer:"unix" () in
  check_string "valid id adopted lowercased" "deadbeef" (Rctx.id t);
  let t = Rctx.create ~id:"not-hex!" ~kind:"cell" ~peer:"unix" () in
  check_bool "invalid id replaced by a mint" true (is_hex (Rctx.id t));
  let t = Rctx.create ~kind:"cell" ~peer:"unix" () in
  check_int "absent id minted" 16 (String.length (Rctx.id t))

let test_rctx_stages () =
  with_rctx @@ fun () ->
  let t = Rctx.create ~kind:"cell" ~peer:"unix" () in
  Rctx.record_stage t "read_frame" ~start_us:0. ~dur_us:12.;
  check_int "staged thunk result" 7 (Rctx.stage t "simulate" (fun () -> 7));
  check_bool "raising stage re-raises and records" true
    (match Rctx.stage t "encode" (fun () -> failwith "boom") with
    | _ -> false
    | exception Failure _ -> true);
  Rctx.set_outcome t "ok";
  Rctx.set_warm t false;
  Rctx.add_bytes_in t 10;
  Rctx.add_bytes_out t 20;
  Rctx.set_queue_depth t 3;
  let fin = Rctx.finish t in
  check_bool "stages in execution order" true
    (List.map (fun (s : Rctx.stage) -> s.sname) fin.stages
    = [ "read_frame"; "simulate"; "encode" ]);
  check_bool "recorded duration kept" true
    ((List.hd fin.stages).sdur_us = 12.);
  check_bool "total covers the request" true (fin.total_us >= 0.);
  check_bool "warm carried" true (fin.warm = Some false);
  check_int "bytes in" 10 fin.bytes_in;
  check_int "bytes out" 20 fin.bytes_out;
  check_int "queue depth" 3 fin.queue_depth

let test_rctx_disabled_is_free () =
  Rctx.set_enabled false;
  let t = Rctx.create ~kind:"cell" ~peer:"unix" () in
  check_int "disabled stage runs thunk" 9 (Rctx.stage t "simulate" (fun () -> 9));
  let fin = Rctx.finish t in
  check_int "no stages recorded" 0 (List.length fin.stages);
  check_bool "zero total" true (fin.total_us = 0.)

let fin_with ~id ~total_us : Rctx.finished =
  {
    id;
    kind = "cell";
    peer = "unix";
    cell = "";
    outcome = "ok";
    warm = None;
    bytes_in = 0;
    bytes_out = 0;
    queue_depth = 0;
    wall_start = 0.;
    total_us;
    stages = [];
  }

let test_rctx_slow_ring () =
  with_rctx @@ fun () ->
  Rctx.Slow.configure ~capacity:2 ();
  Rctx.Slow.note (fin_with ~id:"a" ~total_us:10.);
  Rctx.Slow.note (fin_with ~id:"b" ~total_us:30.);
  Rctx.Slow.note (fin_with ~id:"c" ~total_us:20.);
  let ids = List.map (fun (f : Rctx.finished) -> f.id) (Rctx.Slow.snapshot ()) in
  check_bool "keeps the slowest, slowest first" true (ids = [ "b"; "c" ])

let test_rctx_json () =
  check_string "epoch" "1970-01-01T00:00:00.000000Z" (Rctx.iso8601 0.);
  check_string "fractional seconds" "1970-01-01T00:00:01.500000Z"
    (Rctx.iso8601 1.5);
  let fin =
    {
      (fin_with ~id:"cafe" ~total_us:42.5) with
      cell = "digest123";
      warm = Some true;
      stages = [ { Rctx.sname = "simulate"; sstart_us = 0.; sdur_us = 40. } ];
    }
  in
  let s = Metrics.Export.to_string (Rctx.to_json fin) in
  check_bool "json has the id" true (contains ~sub:"\"request_id\":\"cafe\"" s);
  check_bool "json has the stage" true (contains ~sub:"\"simulate\":40" s);
  check_bool "json has warm" true (contains ~sub:"\"warm\":true" s);
  check_bool "json has the ts" true
    (contains ~sub:"\"ts\":\"1970-01-01T00:00:00.000000Z\"" s);
  check_bool "json well-formed" true (json_well_formed s);
  let empty_cell = Metrics.Export.to_string (Rctx.to_json (fin_with ~id:"x" ~total_us:0.)) in
  check_bool "empty cell is null" true (contains ~sub:"\"cell\":null" empty_cell)

(* ------------------------------------------------------------------ *)
(* Probes                                                              *)
(* ------------------------------------------------------------------ *)

let mk_event i = Memsim.Event.read (4 * i) 4

let test_windows_per_event () =
  let closes = ref [] in
  let w =
    Telemetry.Probe.Windows.create ~every:3 ~f:(fun ~window ~events ->
        closes := (window, events) :: !closes)
  in
  let s = Telemetry.Probe.Windows.sink w in
  for i = 1 to 7 do
    s.Memsim.Sink.emit (mk_event i)
  done;
  check_bool "closes at exact multiples" true
    (List.rev !closes = [ (1, 3); (2, 6) ]);
  Telemetry.Probe.Windows.flush w;
  check_bool "flush closes the partial window" true
    (List.rev !closes = [ (1, 3); (2, 6); (3, 7) ]);
  Telemetry.Probe.Windows.flush w;
  check_int "flush is idempotent" 3 (Telemetry.Probe.Windows.windows_fired w);
  check_int "events seen" 7 (Telemetry.Probe.Windows.events_seen w)

let test_windows_batch () =
  let closes = ref [] in
  let w =
    Telemetry.Probe.Windows.create ~every:10 ~f:(fun ~window ~events ->
        closes := (window, events) :: !closes)
  in
  let s = Telemetry.Probe.Windows.sink w in
  let deliver n =
    Memsim.Sink.emit_packed_batch s
      (Memsim.Event.Batch.of_events (Array.init n mk_event) n)
  in
  (* Batches are indivisible: a 25-event batch crosses two window edges
     but closes only one window, at the batch boundary. *)
  deliver 25;
  check_bool "one close per delivery" true (List.rev !closes = [ (1, 25) ]);
  deliver 4;
  check_bool "short batch below edge" true (List.rev !closes = [ (1, 25) ]);
  s.Memsim.Sink.emit (mk_event 0);
  (* 30 seen, last close at 25: not yet 10 past. *)
  check_bool "edge is relative to last close" true
    (List.rev !closes = [ (1, 25) ]);
  deliver 5;
  check_bool "next close at 35" true (List.rev !closes = [ (1, 25); (2, 35) ])

let test_windows_rejects () =
  Alcotest.check_raises "every < 1"
    (Invalid_argument "Probe.Windows.create: every must be >= 1")
    (fun () ->
      ignore
        (Telemetry.Probe.Windows.create ~every:0 ~f:(fun ~window:_ ~events:_ ->
             ())))

let test_series () =
  let t = Telemetry.Probe.Series.create ~columns:[ "a"; "b" ] in
  Telemetry.Probe.Series.add t [ "1"; "x,y" ];
  Telemetry.Probe.Series.add t [ "2"; "plain" ];
  check_int "length" 2 (Telemetry.Probe.Series.length t);
  check_string "csv quotes embedded commas" "a,b\n1,\"x,y\"\n2,plain\n"
    (Telemetry.Probe.Series.to_csv t);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Probe.Series.add: 1 fields for 2 columns")
    (fun () -> Telemetry.Probe.Series.add t [ "only" ])

(* ------------------------------------------------------------------ *)
(* Whole-stack invariants                                              *)
(* ------------------------------------------------------------------ *)

let run_cell ~allocator =
  let checksum = Memsim.Sink.Checksum.create () in
  let result =
    Workload.Driver.run
      ~sink:(Memsim.Sink.Checksum.sink checksum)
      ~scale:0.05
      ~profile:(Workload.Programs.find "espresso")
      ~allocator ()
  in
  (Memsim.Sink.Checksum.value checksum, result)

(* Enabling every telemetry layer must not move a single simulated
   event: the trace checksum is bit-identical with telemetry on and
   off.  This is the "zero cost when disabled" invariant's stronger
   sibling — observation changes nothing even when enabled. *)
let test_telemetry_does_not_perturb () =
  let on_off allocator =
    M.set_enabled M.default false;
    Telemetry.Span.set_enabled false;
    let off, _ = run_cell ~allocator in
    M.set_enabled M.default true;
    Telemetry.Span.reset ();
    Telemetry.Span.set_enabled true;
    let on, _ =
      Fun.protect
        ~finally:(fun () ->
          M.set_enabled M.default false;
          Telemetry.Span.set_enabled false;
          Telemetry.Span.reset ())
        (fun () -> run_cell ~allocator)
    in
    check_int ("checksum unchanged under telemetry: " ^ allocator) off on
  in
  on_off "firstfit";
  on_off "quickfit"

(* The paper's search-cost contrast, measured: sequential fits walk
   free lists (BestFit exhaustively), size-class allocators touch a
   constant number of blocks.  BSD's mean is exactly 1; the sequential
   fits must exceed the size-class allocators, with the exhaustive
   scan the clear outlier. *)
let test_search_length_contrast () =
  M.set_enabled M.default true;
  Fun.protect
    ~finally:(fun () -> M.set_enabled M.default false)
    (fun () ->
      let mean allocator =
        let h = Allocators.Alloc_metrics.search_length ~allocator in
        let c0 = M.Histogram.count h and s0 = M.Histogram.sum h in
        ignore (run_cell ~allocator);
        let dc = M.Histogram.count h - c0 and ds = M.Histogram.sum h - s0 in
        check_bool ("recorded searches: " ^ allocator) true (dc > 0);
        float_of_int ds /. float_of_int dc
      in
      let firstfit = mean "firstfit" in
      let bestfit = mean "bestfit" in
      let quickfit = mean "quickfit" in
      let bsd = mean "bsd" in
      Alcotest.(check (float 0.0001)) "bsd is constant-time" 1.0 bsd;
      check_bool "quickfit stays near constant" true (quickfit < 2.);
      check_bool "firstfit walks further than quickfit" true
        (firstfit > quickfit);
      check_bool "exhaustive bestfit dwarfs quickfit" true
        (bestfit >= 3. *. quickfit);
      (* Size-class outcome counters moved too. *)
      check_bool "quickfit size-class outcomes recorded" true
        (M.Counter.value
           (Allocators.Alloc_metrics.sizeclass ~allocator:"quickfit"
              ~outcome:"hit")
         > 0))

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter labels" `Quick test_counter_labels;
          Alcotest.test_case "registry rejects" `Quick test_registry_rejects;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram quantile" `Quick
            test_histogram_quantile;
          Alcotest.test_case "shards merge" `Quick test_shards_merge;
        ] );
      ( "export",
        [
          Alcotest.test_case "prometheus text" `Quick test_prometheus_export;
          Alcotest.test_case "json" `Quick test_json_export;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_span_disabled;
          Alcotest.test_case "records and exports" `Quick test_span_records;
          Alcotest.test_case "exception safety" `Quick test_span_exception;
          Alcotest.test_case "ring overflow" `Quick test_span_ring_overflow;
        ] );
      ( "rctx",
        [
          Alcotest.test_case "ids: mint, validate, adopt" `Quick test_rctx_ids;
          Alcotest.test_case "stages record in order" `Quick test_rctx_stages;
          Alcotest.test_case "disabled is free" `Quick
            test_rctx_disabled_is_free;
          Alcotest.test_case "slow ring keeps the slowest" `Quick
            test_rctx_slow_ring;
          Alcotest.test_case "access-log json shape" `Quick test_rctx_json;
        ] );
      ( "probe",
        [
          Alcotest.test_case "windows per-event" `Quick test_windows_per_event;
          Alcotest.test_case "windows batch" `Quick test_windows_batch;
          Alcotest.test_case "windows rejects" `Quick test_windows_rejects;
          Alcotest.test_case "series csv" `Quick test_series;
        ] );
      ( "stack",
        [
          Alcotest.test_case "telemetry does not perturb" `Quick
            test_telemetry_does_not_perturb;
          Alcotest.test_case "search-length contrast" `Quick
            test_search_length_contrast;
        ] );
    ]
