(* Shared qcheck generators for the simulator test suites.

   Every suite used to grow its own copy of "random word trace",
   "random event stream" and "random cache shape"; they live here once,
   so the policy differential suites, the forest equivalence suite and
   the trace-file round-trips all draw from the same distributions. *)

open QCheck

let source_of_int = function
  | 0 -> Memsim.Event.App
  | 1 -> Memsim.Event.Malloc
  | _ -> Memsim.Event.Free

(* ---- word traces (addr, size) ---------------------------------------- *)

(* Read-only word-grain traces over a small address window: dense
   enough to revisit blocks, wide enough to force evictions. *)
let trace_gen =
  Gen.(list_size (int_range 1 400) (pair (int_range 0 2047) (int_range 1 8)))

let trace_arb = make trace_gen

(* ---- full reference events ------------------------------------------- *)

(* One event with kind, source, and a byte range that may span several
   blocks. *)
let event_gen ?(addr_bound = 4096) ?(max_size = 70) () =
  Gen.(
    pair (pair bool (int_range 0 2))
      (pair (int_range 0 (addr_bound - 1)) (int_range 1 max_size))
    >|= fun ((write, src), (addr, size)) ->
    let source = source_of_int src in
    if write then Memsim.Event.write ~source addr size
    else Memsim.Event.read ~source addr size)

let events_gen ?(max_events = 400) ?addr_bound ?max_size () =
  Gen.(list_size (int_range 1 max_events) (event_gen ?addr_bound ?max_size ()))

(* ---- cache shapes ---------------------------------------------------- *)

(* Small caches (a handful of sets and ways) so random traces actually
   thrash them.  [policies] picks the replacement policy; a [Random]
   policy should be supplied pre-seeded ([policy_random_gen] draws the
   seed too). *)
let config_gen ?(policies = [ Cachesim.Policy.Lru ]) () =
  Gen.(
    oneofl [ 16; 32 ] >>= fun bb ->
    oneofl [ 256; 512; 1024; 2048; 4096 ] >>= fun cap ->
    oneofl [ 1; 1; 2; 4 ] >>= fun assoc ->
    oneofl policies >|= fun policy ->
    Cachesim.Config.make
      ~name:(Printf.sprintf "%d-%dway" cap assoc)
      ~block_bytes:bb ~associativity:assoc ~policy cap)

(* A policy-under-test paired with the trace that drives it; the config
   keeps the policy in its derived name for qcheck's failure output. *)
let policy_case_gen ~policy_gen =
  Gen.(
    policy_gen >>= fun policy ->
    oneofl [ 16; 32 ] >>= fun bb ->
    oneofl [ 128; 256; 512; 1024 ] >>= fun cap ->
    oneofl [ 1; 2; 4; 8 ] >>= fun assoc ->
    let assoc = min assoc (cap / bb) in
    let cfg =
      Cachesim.Config.make ~block_bytes:bb ~associativity:assoc ~policy cap
    in
    pair (return cfg) (events_gen ~addr_bound:4096 ~max_size:70 ()))
