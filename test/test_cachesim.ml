(* Tests for the cache simulator, including cross-validation against a
   naive reference model on random traces. *)

open Cachesim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Naive substring check, for asserting on error-message contents. *)
let contains_substring ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Config                                                             *)
(* ------------------------------------------------------------------ *)

let test_config_defaults () =
  let c = Config.make (16 * 1024) in
  Alcotest.(check string) "derived name" "16K-dm" c.Config.name;
  check_int "block" 32 c.Config.block_bytes;
  check_int "dm" 1 c.Config.associativity;
  check_int "sets" 512 (Config.num_sets c);
  check_int "blocks" 512 (Config.num_blocks c)

let test_config_assoc_name () =
  let c = Config.make ~associativity:2 (16 * 1024) in
  Alcotest.(check string) "derived name" "16K-2way" c.Config.name;
  check_int "sets halve" 256 (Config.num_sets c)

let test_config_rejects_bad () =
  (* The message must quote the offending value, not just reject: a
     bare "invalid config" from deep inside a sweep is undebuggable. *)
  let expect_invalid msg needles f =
    match f () with
    | exception Invalid_argument err ->
        List.iter
          (fun needle ->
            check_bool
              (Printf.sprintf "%s: message %S mentions %S" msg err needle)
              true
              (contains_substring ~needle err))
          needles
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "non-pow2 size" [ "size 10000"; "power of two" ] (fun () ->
      Config.make 10_000);
  expect_invalid "non-pow2 block" [ "block size 24"; "power of two" ]
    (fun () -> Config.make ~block_bytes:24 16384);
  expect_invalid "block > capacity" [ "block size 64"; "capacity 32" ]
    (fun () -> Config.make ~block_bytes:64 32);
  expect_invalid "assoc 3" [ "associativity 3" ] (fun () ->
      Config.make ~associativity:3 16384);
  expect_invalid "assoc > blocks" [ "associativity 8"; "4 blocks" ] (fun () ->
      Config.make ~block_bytes:32 ~associativity:8 128)

let test_config_policy_names () =
  let c = Config.make ~associativity:8 ~policy:Policy.Plru (16 * 1024) in
  Alcotest.(check string) "plru in derived name" "16K-8way-plru" c.Config.name;
  let q =
    Config.make ~associativity:4 ~policy:(Policy.Qlru Policy.qlru_h11_m1)
      (32 * 1024)
  in
  Alcotest.(check string) "qlru in derived name" "32K-4way-qlru-h1-m1"
    q.Config.name;
  (* LRU keeps the paper-era label. *)
  let l = Config.make ~associativity:2 ~policy:Policy.Lru (16 * 1024) in
  Alcotest.(check string) "lru stays implicit" "16K-2way" l.Config.name

let test_policy_string_roundtrip () =
  let policies =
    [ Policy.Lru; Policy.Fifo; Policy.Random 42; Policy.Random 0; Policy.Plru;
      Policy.Qlru Policy.qlru_h00_m1; Policy.Qlru Policy.qlru_h11_m1;
      Policy.Qlru Policy.qlru_h00_m0; Policy.Mru ]
  in
  List.iter
    (fun p ->
      match Policy.of_string (Policy.to_string p) with
      | Ok p' ->
          check_bool (Policy.to_string p ^ " round-trips") true
            (Policy.equal p p')
      | Error e -> Alcotest.failf "%s: %s" (Policy.to_string p) e)
    policies;
  check_bool "garbage rejected" true
    (match Policy.of_string "nmru" with Error _ -> true | Ok _ -> false)

let test_config_paper_sweep () =
  let names = List.map (fun c -> c.Config.name) Config.paper_direct_mapped in
  Alcotest.(check (list string)) "sweep"
    [ "16K-dm"; "32K-dm"; "64K-dm"; "128K-dm"; "256K-dm" ]
    names

(* ------------------------------------------------------------------ *)
(* Cache: hand-worked direct-mapped scenarios                          *)
(* ------------------------------------------------------------------ *)

(* A tiny cache: 4 sets of 32-byte blocks = 128 bytes, direct-mapped. *)
let tiny_dm () = Cache.create (Config.make ~block_bytes:32 128)

let read_at cache addr =
  Cache.access cache (Memsim.Event.read addr 4)

let test_dm_hit_after_miss () =
  let c = tiny_dm () in
  read_at c 0x1000;
  read_at c 0x1004;
  (* same block *)
  let s = Cache.stats c in
  check_int "two accesses" 2 s.Stats.accesses;
  check_int "one miss" 1 s.Stats.misses;
  check_int "one cold miss" 1 s.Stats.cold_misses

let test_dm_conflict_eviction () =
  let c = tiny_dm () in
  (* Blocks 0 and 4 map to set 0 in a 4-set cache. *)
  read_at c 0;
  read_at c (4 * 32);
  read_at c 0;
  (* evicted by previous access -> miss again, but not cold *)
  let s = Cache.stats c in
  check_int "three accesses" 3 s.Stats.accesses;
  check_int "three misses" 3 s.Stats.misses;
  check_int "two cold" 2 s.Stats.cold_misses

let test_dm_distinct_sets_coexist () =
  let c = tiny_dm () in
  read_at c 0;
  read_at c 32;
  read_at c 64;
  read_at c 96;
  read_at c 0;
  read_at c 32;
  let s = Cache.stats c in
  check_int "4 cold misses then hits" 4 s.Stats.misses

let test_event_spanning_blocks () =
  let c = tiny_dm () in
  (* A 64-byte write starting at 16 spans blocks 0, 1, 2. *)
  Cache.access c (Memsim.Event.write 16 64);
  let s = Cache.stats c in
  check_int "three block accesses" 3 s.Stats.accesses;
  check_int "all write accesses" 3 s.Stats.write_accesses;
  check_int "three misses" 3 s.Stats.misses

let test_source_breakdown () =
  let c = tiny_dm () in
  Cache.access c (Memsim.Event.read ~source:Memsim.Event.Malloc 0 4);
  Cache.access c (Memsim.Event.read ~source:Memsim.Event.App 0 4);
  Cache.access c (Memsim.Event.write ~source:Memsim.Event.Free 0 4);
  let s = Cache.stats c in
  check_int "malloc accesses" 1 s.Stats.malloc_accesses;
  check_int "malloc misses" 1 s.Stats.malloc_misses;
  check_int "app hits" 0 s.Stats.app_misses;
  check_int "free accesses" 1 s.Stats.free_accesses;
  Alcotest.(check (float 1e-9))
    "source miss rate" 0.
    (Stats.source_miss_rate s Memsim.Event.App)

let test_flush () =
  let c = tiny_dm () in
  read_at c 0x40;
  check_bool "resident" true (Cache.contains_block c ~block:2);
  Cache.flush c;
  check_bool "flushed" false (Cache.contains_block c ~block:2);
  read_at c 0x40;
  let s = Cache.stats c in
  check_int "second access misses after flush" 2 s.Stats.misses;
  check_int "but is not cold" 1 s.Stats.cold_misses

(* ------------------------------------------------------------------ *)
(* Write-back accounting                                              *)
(* ------------------------------------------------------------------ *)

(* 2 sets x 2 ways x 32B = 128 bytes. *)
let tiny_2way () =
  Cache.create (Config.make ~block_bytes:32 ~associativity:2 128)

let write_at cache addr = Cache.access cache (Memsim.Event.write addr 4)

let test_wb_dirty_eviction () =
  let c = tiny_dm () in
  write_at c 0;
  (* dirty block 0 in set 0 *)
  read_at c (4 * 32);
  (* evicts it -> one writeback *)
  check_int "one writeback" 1 (Cache.stats c).Stats.writebacks

let test_wb_clean_eviction_free () =
  let c = tiny_dm () in
  read_at c 0;
  read_at c (4 * 32);
  check_int "clean eviction, no writeback" 0 (Cache.stats c).Stats.writebacks

let test_wb_flush_writes_dirty () =
  let c = tiny_dm () in
  write_at c 0;
  write_at c 32;
  read_at c 64;
  Cache.flush c;
  (* two dirty + one clean block flushed *)
  check_int "two writebacks on flush" 2 (Cache.stats c).Stats.writebacks;
  Cache.flush c;
  check_int "second flush writes nothing" 2 (Cache.stats c).Stats.writebacks

let test_wb_read_after_write_keeps_dirty () =
  let c = tiny_dm () in
  write_at c 0;
  read_at c 0;
  (* still dirty *)
  read_at c (4 * 32);
  check_int "writeback after read hit" 1 (Cache.stats c).Stats.writebacks

let test_wb_assoc_dirty_follows_lru () =
  let c = tiny_2way () in
  write_at c (0 * 32);
  read_at c (2 * 32);
  read_at c (0 * 32);
  (* 0 is MRU and dirty; 2 clean LRU *)
  read_at c (4 * 32);
  (* evicts clean 2 *)
  check_int "clean victim, no writeback" 0 (Cache.stats c).Stats.writebacks;
  read_at c (6 * 32);
  (* evicts dirty 0 *)
  check_int "dirty victim written back" 1 (Cache.stats c).Stats.writebacks;
  check_int "memory traffic = misses + writebacks"
    ((Cache.stats c).Stats.misses + 1)
    (Stats.memory_traffic_blocks (Cache.stats c))

let prop_writebacks_bounded =
  QCheck.Test.make ~name:"writebacks never exceed writes" ~count:200
    QCheck.(
      list_of_size (QCheck.Gen.int_range 1 300)
        (pair bool (int_range 0 1023)))
    (fun ops ->
      let c = Cache.create (Config.make ~block_bytes:32 256) in
      List.iter
        (fun (w, addr) ->
          if w then Cache.access c (Memsim.Event.write addr 4)
          else Cache.access c (Memsim.Event.read addr 4))
        ops;
      Cache.flush c;
      let s = Cache.stats c in
      s.Stats.writebacks <= s.Stats.write_accesses)

(* ------------------------------------------------------------------ *)
(* Cache: associativity                                               *)
(* ------------------------------------------------------------------ *)

let test_assoc_two_blocks_coexist () =
  let c = tiny_2way () in
  (* Blocks 0 and 2 both map to set 0; with 2 ways they coexist. *)
  read_at c (0 * 32);
  read_at c (2 * 32);
  read_at c (0 * 32);
  read_at c (2 * 32);
  let s = Cache.stats c in
  check_int "only the two cold misses" 2 s.Stats.misses

let test_assoc_lru_eviction_order () =
  let c = tiny_2way () in
  (* Set 0 receives blocks 0, 2, then 4: 0 is LRU and must be evicted. *)
  read_at c (0 * 32);
  read_at c (2 * 32);
  read_at c (4 * 32);
  check_bool "block 0 evicted" false (Cache.contains_block c ~block:0);
  check_bool "block 2 stays" true (Cache.contains_block c ~block:2);
  check_bool "block 4 resident" true (Cache.contains_block c ~block:4)

let test_assoc_touch_refreshes_lru () =
  let c = tiny_2way () in
  read_at c (0 * 32);
  read_at c (2 * 32);
  read_at c (0 * 32);
  (* refresh 0: now 2 is LRU *)
  read_at c (4 * 32);
  check_bool "block 2 evicted" false (Cache.contains_block c ~block:2);
  check_bool "block 0 survives" true (Cache.contains_block c ~block:0)

(* ------------------------------------------------------------------ *)
(* Reference model cross-validation                                   *)
(* ------------------------------------------------------------------ *)

(* Obviously-correct set-associative LRU: per-set list of blocks in
   MRU-first order. *)
module Ref_model = struct
  type t = {
    num_sets : int;
    assoc : int;
    mutable sets : int list array;
    mutable misses : int;
    mutable accesses : int;
  }

  let create (cfg : Config.t) =
    { num_sets = Config.num_sets cfg;
      assoc = cfg.associativity;
      sets = Array.make (Config.num_sets cfg) [];
      misses = 0;
      accesses = 0 }

  let access t block =
    t.accesses <- t.accesses + 1;
    let set = block mod t.num_sets in
    let resident = t.sets.(set) in
    let hit = List.mem block resident in
    if not hit then t.misses <- t.misses + 1;
    let without = List.filter (fun b -> b <> block) resident in
    let updated = block :: without in
    let truncated =
      if List.length updated > t.assoc then
        List.filteri (fun i _ -> i < t.assoc) updated
      else updated
    in
    t.sets.(set) <- truncated
end

(* The word-trace generator lives in the shared testkit now; every
   suite that wants "random addresses over a small window" draws from
   the same distribution. *)
let trace_arb = Testkit.Gen.trace_arb

let cross_validate cfg trace =
  let cache = Cache.create cfg in
  let model = Ref_model.create cfg in
  List.iter
    (fun (addr, size) ->
      Cache.access cache (Memsim.Event.read addr size);
      let bb = cfg.Config.block_bytes in
      for block = addr / bb to (addr + size - 1) / bb do
        Ref_model.access model block
      done)
    trace;
  let s = Cache.stats cache in
  s.Stats.accesses = model.Ref_model.accesses
  && s.Stats.misses = model.Ref_model.misses

let prop_dm_matches_model =
  QCheck.Test.make ~name:"direct-mapped matches reference model" ~count:200
    trace_arb
    (cross_validate (Config.make ~block_bytes:32 512))

let prop_2way_matches_model =
  QCheck.Test.make ~name:"2-way matches reference model" ~count:200 trace_arb
    (cross_validate (Config.make ~block_bytes:32 ~associativity:2 512))

let prop_4way_matches_model =
  QCheck.Test.make ~name:"4-way matches reference model" ~count:200 trace_arb
    (cross_validate (Config.make ~block_bytes:16 ~associativity:4 256))

let prop_fully_assoc_matches_model =
  QCheck.Test.make ~name:"fully-associative matches reference model"
    ~count:100 trace_arb
    (cross_validate (Config.make ~block_bytes:32 ~associativity:8 256))

let prop_assoc_monotone =
  (* For a fixed capacity, LRU set-associative misses are not generally
     monotone in associativity (Belady), but a fully-associative LRU cache
     never misses more than total distinct-block count bound; we check a
     weaker sane property: misses <= accesses and hits+misses=accesses. *)
  QCheck.Test.make ~name:"stats are internally consistent" ~count:200
    trace_arb (fun trace ->
      let cfg = Config.make ~block_bytes:32 256 in
      let cache = Cache.create cfg in
      List.iter
        (fun (addr, size) -> Cache.access cache (Memsim.Event.read addr size))
        trace;
      let s = Cache.stats cache in
      s.Stats.misses <= s.Stats.accesses
      && Stats.hits s + s.Stats.misses = s.Stats.accesses
      && s.Stats.cold_misses <= s.Stats.misses
      && s.Stats.read_accesses + s.Stats.write_accesses = s.Stats.accesses)

let prop_full_assoc_has_no_conflicts =
  QCheck.Test.make ~name:"fully-associative cache has no conflict misses"
    ~count:100 trace_arb (fun trace ->
      let cl = Classify.create (Config.make ~block_bytes:32 ~associativity:8 256) in
      let sink = Classify.sink cl in
      List.iter
        (fun (addr, size) ->
          sink.Memsim.Sink.emit (Memsim.Event.read addr size))
        trace;
      (Classify.counts cl).Classify.conflict = 0)

(* ------------------------------------------------------------------ *)
(* Multi                                                              *)
(* ------------------------------------------------------------------ *)

let test_multi_broadcast () =
  let m = Multi.create Config.paper_direct_mapped in
  let sink = Multi.sink m in
  for i = 0 to 99 do
    sink.Memsim.Sink.emit (Memsim.Event.read (i * 64) 4)
  done;
  List.iter
    (fun (_, s) -> check_int "each cache saw all accesses" 100 s.Stats.accesses)
    (Multi.results m)

let test_multi_bigger_cache_fewer_misses () =
  let m = Multi.create Config.paper_direct_mapped in
  let sink = Multi.sink m in
  (* Working set of 1024 blocks cycled repeatedly: small caches thrash,
     the 256K cache (8192 blocks) holds everything. *)
  for _pass = 1 to 5 do
    for b = 0 to 1023 do
      sink.Memsim.Sink.emit (Memsim.Event.read (b * 32) 4)
    done
  done;
  let rates = List.map snd (Multi.miss_rate_series m) in
  let rec non_increasing = function
    | a :: b :: rest -> a >= b -. 1e-9 && non_increasing (b :: rest)
    | _ -> true
  in
  check_bool "miss rate non-increasing in cache size" true
    (non_increasing rates);
  let largest = List.nth rates (List.length rates - 1) in
  check_bool "largest cache only cold misses" true (largest < 25.)

let test_multi_find () =
  let m = Multi.create Config.paper_direct_mapped in
  let cfg, _ = Multi.find m ~name:"64K-dm" in
  check_int "found the right size" (64 * 1024) cfg.Config.size_bytes;
  (* A bare Not_found told the caller nothing; the error now names the
     unknown key and every candidate. *)
  match Multi.find m ~name:"nope" with
  | exception Invalid_argument msg ->
      check_bool "message names the unknown" true
        (contains_substring ~needle:"nope" msg);
      check_bool "message lists candidates" true
        (contains_substring ~needle:"16K-dm" msg
        && contains_substring ~needle:"256K-dm" msg)
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Classify                                                           *)
(* ------------------------------------------------------------------ *)

let test_classify_cold () =
  let cl = Classify.create (Config.make ~block_bytes:32 128) in
  let sink = Classify.sink cl in
  sink.Memsim.Sink.emit (Memsim.Event.read 0 4);
  sink.Memsim.Sink.emit (Memsim.Event.read 32 4);
  let c = Classify.counts cl in
  check_int "all cold" 2 c.Classify.cold;
  check_int "no conflict" 0 c.Classify.conflict;
  check_int "no capacity" 0 c.Classify.capacity

let test_classify_conflict () =
  let cl = Classify.create (Config.make ~block_bytes:32 128) in
  let sink = Classify.sink cl in
  (* Two blocks in the same set of a 4-set cache, alternating: the
     fully-associative cache (4 blocks) holds both, so repeats are
     conflict misses. *)
  let a = 0 and b = 4 * 32 in
  List.iter
    (fun addr -> sink.Memsim.Sink.emit (Memsim.Event.read addr 4))
    [ a; b; a; b; a; b ];
  let c = Classify.counts cl in
  check_int "two cold" 2 c.Classify.cold;
  check_int "four conflict" 4 c.Classify.conflict;
  check_int "no capacity" 0 c.Classify.capacity

let test_classify_capacity () =
  let cl = Classify.create (Config.make ~block_bytes:32 128) in
  let sink = Classify.sink cl in
  (* Cycle through 8 blocks (> 4-block capacity) twice: second pass
     misses even fully-associatively -> capacity misses. *)
  for _pass = 1 to 2 do
    for b = 0 to 7 do
      sink.Memsim.Sink.emit (Memsim.Event.read (b * 32) 4)
    done
  done;
  let c = Classify.counts cl in
  check_int "eight cold" 8 c.Classify.cold;
  check_int "second pass all capacity" 8 c.Classify.capacity;
  check_int "total misses" 16 (Classify.total_misses cl)

let prop_classify_partitions_misses =
  QCheck.Test.make ~name:"cold+capacity+conflict = misses" ~count:200
    trace_arb (fun trace ->
      let cfg = Config.make ~block_bytes:32 256 in
      let cl = Classify.create cfg in
      let sink = Classify.sink cl in
      List.iter
        (fun (addr, size) ->
          sink.Memsim.Sink.emit (Memsim.Event.read addr size))
        trace;
      let c = Classify.counts cl in
      let s = Classify.stats cl in
      c.Classify.cold + c.Classify.capacity + c.Classify.conflict
      = s.Stats.misses
      && c.Classify.hits = Stats.hits s)

(* ------------------------------------------------------------------ *)
(* Hierarchy                                                          *)
(* ------------------------------------------------------------------ *)

let test_hierarchy_l2_sees_only_l1_misses () =
  let h =
    Hierarchy.create
      ~l1:(Config.make ~block_bytes:32 128)
      ~l2:(Config.make ~block_bytes:32 4096)
  in
  let sink = Hierarchy.sink h in
  (* Touch block 0 three times: one L1 miss, then hits. *)
  for _ = 1 to 3 do
    sink.Memsim.Sink.emit (Memsim.Event.read 0 4)
  done;
  check_int "L1 sees 3" 3 (Hierarchy.l1_stats h).Stats.accesses;
  check_int "L1 misses once" 1 (Hierarchy.l1_stats h).Stats.misses;
  check_int "L2 sees only the miss" 1 (Hierarchy.l2_stats h).Stats.accesses

let test_hierarchy_stall_cycles () =
  let h =
    Hierarchy.create
      ~l1:(Config.make ~block_bytes:32 128)
      ~l2:(Config.make ~block_bytes:32 4096)
  in
  let sink = Hierarchy.sink h in
  sink.Memsim.Sink.emit (Memsim.Event.read 0 4);
  (* one L1 miss + one L2 miss *)
  check_int "stalls = 10 + 100" 110
    (Hierarchy.stall_cycles h ~l1_penalty:10 ~l2_penalty:100)

let test_hierarchy_l2_filters () =
  let h =
    Hierarchy.create
      ~l1:(Config.make ~block_bytes:32 128)
      ~l2:(Config.make ~block_bytes:32 4096)
  in
  let sink = Hierarchy.sink h in
  (* Cycle 8 blocks > L1 capacity (4 blocks) but < L2 capacity: L1
     thrashes, L2 only cold-misses. *)
  for _pass = 1 to 10 do
    for b = 0 to 7 do
      sink.Memsim.Sink.emit (Memsim.Event.read (b * 32) 4)
    done
  done;
  let l1 = Hierarchy.l1_stats h and l2 = Hierarchy.l2_stats h in
  check_int "L1 thrashes every access" 80 l1.Stats.misses;
  check_int "L2 only cold misses" 8 l2.Stats.misses

(* ------------------------------------------------------------------ *)
(* Forest                                                             *)
(* ------------------------------------------------------------------ *)

(* The forest's contract is exact equality with independently simulated
   caches — every Stats.t field, not just hit/miss totals. *)
let stats_testable = Alcotest.testable Stats.pp (fun (a : Stats.t) b -> a = b)

(* Deterministic mixed read/write stream: multi-block spanning sizes,
   all three sources, addresses wide enough to force evictions. *)
let lcg_stream n =
  let state = ref 123456789 in
  let next m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  List.init n (fun _ ->
      let addr = next 65536 in
      let size = 1 + next 70 in
      let source =
        match next 3 with
        | 0 -> Memsim.Event.App
        | 1 -> Memsim.Event.Malloc
        | _ -> Memsim.Event.Free
      in
      if next 2 = 0 then Memsim.Event.read ~source addr size
      else Memsim.Event.write ~source addr size)

let test_forest_equivalence () =
  (* The production family shape: the paper's direct-mapped sweep plus
     the 16K associativity set, one shared 32-byte block size. *)
  let configs =
    Config.paper_direct_mapped
    @ List.map
        (fun a -> Config.make ~associativity:a (16 * 1024))
        [ 2; 4; 8 ]
  in
  let forest = Forest.create configs in
  let fsink = Forest.sink forest in
  let caches = List.map Cache.create configs in
  List.iter
    (fun e ->
      fsink.Memsim.Sink.emit e;
      List.iter (fun c -> Cache.access c e) caches)
    (lcg_stream 6000);
  List.iteri
    (fun i c ->
      Alcotest.check stats_testable
        (Cache.config c).Config.name
        (Cache.stats c)
        (Forest.member_stats forest i))
    caches

let test_forest_batched_multi_equivalence () =
  (* The production pipeline shape: several families behind a Batcher
     (odd capacity, so flushes land mid-stream), against independent
     caches fed event by event. *)
  let configs =
    Config.paper_direct_mapped
    @ [ Config.make ~associativity:4 (16 * 1024);
        Config.make ~name:"64K-b16" ~block_bytes:16 (64 * 1024);
        Config.make ~name:"64K-b128" ~block_bytes:128 (64 * 1024) ]
  in
  let multi = Multi.create configs in
  let batcher = Memsim.Sink.Batcher.create ~capacity:7 (Multi.sink multi) in
  let bsink = Memsim.Sink.Batcher.sink batcher in
  let caches = List.map Cache.create configs in
  List.iter
    (fun e ->
      bsink.Memsim.Sink.emit e;
      List.iter (fun c -> Cache.access c e) caches)
    (lcg_stream 6000);
  Memsim.Sink.Batcher.flush batcher;
  List.iter2
    (fun c (cfg, stats) ->
      Alcotest.check stats_testable cfg.Config.name (Cache.stats c) stats)
    caches (Multi.results multi)

let test_forest_create_rejects () =
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  expect_invalid "empty family" (fun () -> Forest.create []);
  expect_invalid "mixed block sizes" (fun () ->
      Forest.create [ Config.make 256; Config.make ~block_bytes:16 256 ])

let forest_case_gen =
  QCheck.Gen.(
    oneofl [ 16; 32 ] >>= fun bb ->
    let cfg =
      pair (oneofl [ 256; 512; 1024; 2048; 4096 ]) (oneofl [ 1; 1; 2; 4 ])
      >|= fun (cap, assoc) ->
      Config.make ~name:(Printf.sprintf "%d-%dway" cap assoc) ~block_bytes:bb
        ~associativity:assoc cap
    in
    pair
      (list_size (int_range 1 5) cfg)
      (list_size (int_range 1 400)
         (pair
            (pair bool (int_range 0 2))
            (pair (int_range 0 4095) (int_range 1 70)))))

let prop_forest_matches_caches =
  QCheck.Test.make ~name:"forest matches independent caches" ~count:300
    (QCheck.make forest_case_gen)
    (fun (configs, raw_events) ->
      let forest = Forest.create configs in
      let caches = List.map Cache.create configs in
      List.iter
        (fun ((write, src), (addr, size)) ->
          let source =
            match src with
            | 0 -> Memsim.Event.App
            | 1 -> Memsim.Event.Malloc
            | _ -> Memsim.Event.Free
          in
          let e =
            if write then Memsim.Event.write ~source addr size
            else Memsim.Event.read ~source addr size
          in
          Forest.access forest e;
          List.iter (fun c -> Cache.access c e) caches)
        raw_events;
      List.for_all
        (fun (i, c) -> Cache.stats c = Forest.member_stats forest i)
        (List.mapi (fun i c -> (i, c)) caches))

(* ------------------------------------------------------------------ *)
(* Packed deliveries: simulators fed packed batches must equal boxed  *)
(* ------------------------------------------------------------------ *)

(* Deliver [events] to [sink] as packed batches of [grain] events. *)
let deliver_packed ?(grain = 7) sink events =
  let b = Memsim.Event.Batch.create () in
  let rec go = function
    | [] ->
        if Memsim.Event.Batch.length b > 0 then
          Memsim.Sink.emit_packed_batch sink b
    | e :: rest ->
        Memsim.Event.Batch.push_event b e;
        if Memsim.Event.Batch.length b = grain then begin
          Memsim.Sink.emit_packed_batch sink b;
          Memsim.Event.Batch.clear b
        end;
        go rest
  in
  go events

let events_of_raw raw =
  List.map
    (fun ((write, src), (addr, size)) ->
      let source =
        match src with
        | 0 -> Memsim.Event.App
        | 1 -> Memsim.Event.Malloc
        | _ -> Memsim.Event.Free
      in
      if write then Memsim.Event.write ~source addr size
      else Memsim.Event.read ~source addr size)
    raw

let prop_forest_packed_matches_boxed =
  (* The satellite differential: a forest fed packed batches must land
     on exactly the per-member statistics of one fed boxed events. *)
  QCheck.Test.make ~name:"forest packed batches equal boxed events"
    ~count:300
    (QCheck.make forest_case_gen)
    (fun (configs, raw_events) ->
      let events = events_of_raw raw_events in
      let boxed = Forest.create configs in
      List.iter (Forest.access boxed) events;
      let packed = Forest.create configs in
      deliver_packed (Forest.sink packed) events;
      List.for_all
        (fun i -> Forest.member_stats boxed i = Forest.member_stats packed i)
        (List.init (List.length configs) Fun.id))

let test_multi_packed_matches_boxed () =
  (* Multiple families + a non-LRU single: the packed Multi sink must
     agree with independent per-event caches. *)
  let configs =
    Config.paper_direct_mapped
    @ [ Config.make ~associativity:4 (16 * 1024);
        Config.make ~name:"64K-b16" ~block_bytes:16 (64 * 1024);
        Config.make ~name:"8K-plru" ~associativity:4 ~policy:Policy.Plru
          (8 * 1024) ]
  in
  let multi = Multi.create configs in
  let caches = List.map Cache.create configs in
  let stream = lcg_stream 6000 in
  List.iter (fun e -> List.iter (fun c -> Cache.access c e) caches) stream;
  deliver_packed ~grain:13 (Multi.sink multi) stream;
  List.iter2
    (fun c (cfg, stats) ->
      Alcotest.check stats_testable cfg.Config.name (Cache.stats c) stats)
    caches (Multi.results multi)

let test_hierarchy_packed_matches_boxed () =
  let levels =
    [ Config.make ~name:"L1" (8 * 1024);
      Config.make ~name:"L2" ~associativity:4 (64 * 1024) ]
  in
  let boxed = Hierarchy.create_levels levels in
  let packed = Hierarchy.create_levels levels in
  let stream = lcg_stream 6000 in
  List.iter (Hierarchy.access boxed) stream;
  deliver_packed ~grain:11 (Hierarchy.sink packed) stream;
  List.iter2
    (fun (cfg, a) (_, b) ->
      Alcotest.check stats_testable cfg.Config.name a b)
    (Hierarchy.results boxed) (Hierarchy.results packed)

(* ------------------------------------------------------------------ *)
(* Shard: set-partitioned domain-parallel replay                      *)
(* ------------------------------------------------------------------ *)

let capture_trace events =
  let tb = Memsim.Trace_buffer.create ~chunk_capacity:512 () in
  List.iter
    (fun e ->
      Memsim.Trace_buffer.push tb ~addr:e.Memsim.Event.addr
        ~meta:(Memsim.Event.Packed.meta_of_event e))
    events;
  tb

let test_shard_identity () =
  (* The tentpole's proof obligation: set-partitioned sharding across
     real domains produces statistics identical to the sequential
     replay, for every domain count. *)
  let configs =
    Config.paper_direct_mapped
    @ List.map
        (fun a -> Config.make ~associativity:a (16 * 1024))
        [ 2; 4; 8 ]
  in
  let trace = capture_trace (lcg_stream 20000) in
  let sequential = Shard.replay ~domains:1 ~configs trace in
  List.iter
    (fun domains ->
      let sharded = Shard.replay ~domains ~configs trace in
      List.iter2
        (fun (cfg, a) (_, b) ->
          Alcotest.check stats_testable
            (Printf.sprintf "%s @ %d domains" cfg.Config.name domains)
            a b)
        sequential sharded)
    [ 2; 3; 8 ]

let prop_shard_matches_sequential =
  QCheck.Test.make ~name:"sharded replay equals sequential" ~count:60
    (QCheck.make
       QCheck.Gen.(pair forest_case_gen (int_range 2 4)))
    (fun ((configs, raw_events), domains) ->
      let trace = capture_trace (events_of_raw raw_events) in
      Shard.replay ~domains:1 ~configs trace
      = Shard.replay ~domains ~configs trace)

let test_shard_rejects () =
  let trace = capture_trace (lcg_stream 10) in
  match Shard.replay ~domains:0 ~configs:[ Config.make 256 ] trace with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for domains = 0"

(* ------------------------------------------------------------------ *)
(* Replacement policies                                               *)
(* ------------------------------------------------------------------ *)

(* Differential pinning: for every policy, the fast implementation must
   produce field-for-field identical Stats.t to the deliberately naive
   [Testkit.Oracle] over hundreds of random mixed read/write traces.
   The two share only the victim-side contract, never code. *)
let policy_differential name policy_gen =
  QCheck.Test.make ~count:250 ~name
    (QCheck.make (Testkit.Gen.policy_case_gen ~policy_gen))
    (fun (cfg, events) ->
      let cache = Cache.create cfg in
      let oracle = Testkit.Oracle.create cfg in
      List.iter
        (fun e ->
          Cache.access cache e;
          Testkit.Oracle.access oracle e)
        events;
      Cache.stats cache = Testkit.Oracle.stats oracle)

let prop_lru_matches_oracle =
  policy_differential "lru matches oracle" QCheck.Gen.(return Policy.Lru)

let prop_fifo_matches_oracle =
  policy_differential "fifo matches oracle" QCheck.Gen.(return Policy.Fifo)

let prop_random_matches_oracle =
  (* Seeds across the whole 32-bit range, including 0 (normalised to 1
     by both sides) and values with high bits set. *)
  policy_differential "random matches oracle"
    QCheck.Gen.(
      oneof
        [ return 0; int_bound 0xFFFF; int_bound 0xFFFFFFFF ]
      >|= fun seed -> Policy.Random seed)

let prop_plru_matches_oracle =
  policy_differential "plru matches oracle" QCheck.Gen.(return Policy.Plru)

let prop_qlru_h00_m1_matches_oracle =
  policy_differential "qlru-h0-m1 matches oracle"
    QCheck.Gen.(return (Policy.Qlru Policy.qlru_h00_m1))

let prop_qlru_h11_m1_matches_oracle =
  policy_differential "qlru-h1-m1 matches oracle"
    QCheck.Gen.(return (Policy.Qlru Policy.qlru_h11_m1))

let prop_qlru_h00_m0_matches_oracle =
  policy_differential "qlru-h0-m0 matches oracle"
    QCheck.Gen.(return (Policy.Qlru Policy.qlru_h00_m0))

let prop_qlru_any_matches_oracle =
  (* The whole quad-age parameter square, not just the named presets. *)
  policy_differential "qlru (any ages) matches oracle"
    QCheck.Gen.(
      pair (int_bound 3) (int_bound 3) >|= fun (h, m) ->
      Policy.Qlru { Policy.hit_age = h; insert_age = m })

let prop_mru_matches_oracle =
  policy_differential "mru matches oracle" QCheck.Gen.(return Policy.Mru)

(* Hand-computed victim sequences.  One set of four 32-byte ways
   (fully-associative 128-byte cache): block [b] lives at address
   [b * 32], ways fill left-to-right with blocks 0,1,2,3. *)
let policy_cache policy =
  Cache.create (Config.make ~block_bytes:32 ~associativity:4 ~policy 128)

let read_block c b = Cache.access c (Memsim.Event.read (b * 32) 4)
let write_block c b = Cache.access c (Memsim.Event.write (b * 32) 4)

let check_resident c name expected =
  List.iter
    (fun b ->
      check_bool
        (Printf.sprintf "%s: block %d resident" name b)
        true
        (Cache.contains_block c ~block:b))
    expected;
  List.iter
    (fun b ->
      if not (List.mem b expected) then
        check_bool
          (Printf.sprintf "%s: block %d evicted" name b)
          false
          (Cache.contains_block c ~block:b))
    [ 0; 1; 2; 3; 4; 5; 6 ]

let test_lru_victim_sequence () =
  let c = policy_cache Policy.Lru in
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  read_block c 0;
  (* refresh 0: block 1 is now least recent *)
  read_block c 4;
  check_resident c "lru" [ 0; 2; 3; 4 ]

let test_fifo_victim_sequence () =
  let c = policy_cache Policy.Fifo in
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  read_block c 0;
  (* a hit does NOT refresh FIFO order: 0 is still the oldest fill *)
  read_block c 4;
  check_resident c "fifo evicts oldest fill despite hit" [ 1; 2; 3; 4 ];
  read_block c 5;
  (* next-oldest fill is block 1 *)
  check_resident c "fifo second victim" [ 2; 3; 4; 5 ]

let test_plru_victim_sequence () =
  let c = policy_cache Policy.Plru in
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  (* Tree bits after the fills point at way 0; hitting way 1 flips the
     root toward the right half, so the victim walk lands on way 2. *)
  read_block c 1;
  read_block c 4;
  check_resident c "plru first victim" [ 0; 1; 3; 4 ];
  (* Filling way 2 pointed the root left again: way 0 is next. *)
  read_block c 5;
  check_resident c "plru second victim" [ 1; 3; 4; 5 ]

let test_qlru_h11_m1_victim_sequence () =
  let c = policy_cache (Policy.Qlru Policy.qlru_h11_m1) in
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  (* All ages 1; the victim scan ages everyone to 3 (persistently) and
     takes the leftmost, way 0. *)
  read_block c 4;
  check_resident c "qlru-h1-m1 first victim" [ 1; 2; 3; 4 ];
  (* Hit block 1 -> age 1.  Ways now aged (4:1, 1:1, 2:3, 3:3): the
     leftmost age-3 way holds block 2, then block 3. *)
  read_block c 1;
  read_block c 5;
  check_resident c "qlru-h1-m1 second victim" [ 1; 3; 4; 5 ];
  read_block c 6;
  check_resident c "qlru-h1-m1 third victim" [ 1; 4; 5; 6 ]

let test_qlru_h00_m1_victim_sequence () =
  let c = policy_cache (Policy.Qlru Policy.qlru_h00_m1) in
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  (* Hit block 0 -> age 0 (h=0 protects it); ageing to find a victim
     adds 2 to everyone, so ways age to (0:2, 1:3, 2:3, 3:3) and the
     leftmost age-3 way holds block 1. *)
  read_block c 0;
  read_block c 4;
  check_resident c "qlru-h0-m1 protects the hit line" [ 0; 2; 3; 4 ]

let test_mru_victim_sequence () =
  let c = policy_cache Policy.Mru in
  (* Filling way 3 saturates the MRU bits; they reset leaving only way
     3 marked. *)
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  read_block c 0;
  (* mark way 0 *)
  read_block c 4;
  (* leftmost unmarked way holds block 1 *)
  check_resident c "mru first victim" [ 0; 2; 3; 4 ];
  read_block c 5;
  (* way 1 became marked by the fill; next unmarked holds block 2 *)
  check_resident c "mru second victim" [ 0; 3; 4; 5 ]

let test_random_victim_matches_xorshift () =
  let seed = 123456 in
  let c = policy_cache (Policy.Random seed) in
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  (* First draw of the documented xorshift32, transcribed here. *)
  let x = seed land 0xFFFFFFFF in
  let x = if x = 0 then 1 else x in
  let x = x lxor (x lsl 13) land 0xFFFFFFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0xFFFFFFFF in
  let victim_block = x mod 4 in
  (* ways were filled in block order, so way w holds block w *)
  read_block c 4;
  check_bool "predicted victim evicted" false
    (Cache.contains_block c ~block:victim_block);
  List.iter
    (fun b ->
      if b <> victim_block then
        check_bool
          (Printf.sprintf "block %d survives" b)
          true
          (Cache.contains_block c ~block:b))
    [ 0; 1; 2; 3; 4 ]

let test_random_same_seed_deterministic () =
  let cfg =
    Config.make ~block_bytes:32 ~associativity:4 ~policy:(Policy.Random 99)
      2048
  in
  let a = Cache.create cfg and b = Cache.create cfg in
  List.iter
    (fun e ->
      Cache.access a e;
      Cache.access b e)
    (lcg_stream 3000);
  Alcotest.check stats_testable "same seed, same stats" (Cache.stats a)
    (Cache.stats b)

let test_random_different_seeds_diverge () =
  let mk seed =
    let c =
      Cache.create
        (Config.make ~block_bytes:32 ~associativity:4
           ~policy:(Policy.Random seed) 2048)
    in
    List.iter (Cache.access c) (lcg_stream 3000);
    (Cache.stats c).Stats.misses
  in
  check_bool "different seeds pick different victims" true (mk 1 <> mk 2)

let test_policy_flush_resets_state () =
  (* After a flush the recency state must restart from scratch: the
     victim sequence replays exactly as on a fresh cache. *)
  let play c = List.iter (read_block c) [ 0; 1; 2; 3; 1; 4; 5 ] in
  let a = policy_cache Policy.Plru in
  play a;
  Cache.flush a;
  let before = (Cache.stats a).Stats.misses in
  play a;
  let replayed = (Cache.stats a).Stats.misses - before in
  let fresh = policy_cache Policy.Plru in
  play fresh;
  check_int "same misses after flush as from scratch"
    (Cache.stats fresh).Stats.misses replayed;
  (* resident sets agree block for block *)
  List.iter
    (fun b ->
      check_bool
        (Printf.sprintf "block %d residency agrees" b)
        (Cache.contains_block fresh ~block:b)
        (Cache.contains_block a ~block:b))
    [ 0; 1; 2; 3; 4; 5; 6 ]

(* Satellite: write-back accounting through the policy victim path. *)

let test_wb_policy_dirty_on_write_hit () =
  (* FIFO write hit: recency untouched, but the line must turn dirty. *)
  let c = policy_cache Policy.Fifo in
  List.iter (read_block c) [ 0; 1; 2; 3 ];
  write_block c 0;
  check_int "write hit costs no writeback" 0 (Cache.stats c).Stats.writebacks;
  read_block c 4;
  (* FIFO evicts block 0 — dirty *)
  check_int "dirty victim written back exactly once" 1
    (Cache.stats c).Stats.writebacks;
  read_block c 5;
  (* evicts block 1 — clean *)
  check_int "clean eviction adds no writeback" 1
    (Cache.stats c).Stats.writebacks

let test_wb_policy_writeback_counted_once () =
  let c = policy_cache Policy.Fifo in
  write_block c 0;
  List.iter (read_block c) [ 1; 2; 3 ];
  read_block c 4;
  (* evicts dirty block 0 *)
  check_int "one writeback at eviction" 1 (Cache.stats c).Stats.writebacks;
  Cache.flush c;
  (* every remaining line was filled by a read: nothing more to write *)
  check_int "flush adds nothing for clean lines" 1
    (Cache.stats c).Stats.writebacks

let test_wb_plru_dirty_follows_victim () =
  let c = policy_cache Policy.Plru in
  write_block c 0;
  List.iter (read_block c) [ 1; 2; 3 ];
  (* PLRU victim walk lands on way 0 (dirty block 0). *)
  read_block c 4;
  check_int "dirty PLRU victim written back" 1
    (Cache.stats c).Stats.writebacks;
  read_block c 1;
  read_block c 5;
  (* victim is way 2 (clean block 2) *)
  check_int "clean PLRU victim free" 1 (Cache.stats c).Stats.writebacks;
  check_resident c "plru dirty victim order" [ 1; 3; 4; 5 ]

(* Multi must fall back to standalone simulation for non-LRU members
   while keeping LRU members on the forest fast path — and the split
   must be invisible in the results. *)
let test_multi_mixed_policies () =
  let configs =
    [ Config.make (16 * 1024);
      Config.make ~associativity:8 ~policy:Policy.Plru (16 * 1024);
      Config.make ~associativity:4 ~policy:(Policy.Qlru Policy.qlru_h00_m1)
        (16 * 1024);
      Config.make ~associativity:2 ~policy:Policy.Fifo (8 * 1024);
      Config.make ~associativity:4 ~policy:(Policy.Random 7) (8 * 1024) ]
  in
  let multi = Multi.create configs in
  let batcher = Memsim.Sink.Batcher.create ~capacity:7 (Multi.sink multi) in
  let bsink = Memsim.Sink.Batcher.sink batcher in
  let caches = List.map Cache.create configs in
  List.iter
    (fun e ->
      bsink.Memsim.Sink.emit e;
      List.iter (fun c -> Cache.access c e) caches)
    (lcg_stream 6000);
  Memsim.Sink.Batcher.flush batcher;
  List.iter2
    (fun c (cfg, stats) ->
      Alcotest.check stats_testable cfg.Config.name (Cache.stats c) stats)
    caches (Multi.results multi)

let test_forest_rejects_non_lru () =
  match
    Forest.create [ Config.make ~associativity:2 ~policy:Policy.Plru 256 ]
  with
  | exception Invalid_argument msg ->
      check_bool "message names the policy" true
        (contains_substring ~needle:"plru" msg);
      check_bool "message states the restriction" true
        (contains_substring ~needle:"lru only" msg)
  | _ -> Alcotest.fail "expected Invalid_argument for non-LRU forest"

(* ------------------------------------------------------------------ *)
(* N-level hierarchies and CPU presets                                *)
(* ------------------------------------------------------------------ *)

let three_level () =
  Hierarchy.create_levels
    [ Config.make ~block_bytes:32 128;
      Config.make ~block_bytes:32 512;
      Config.make ~block_bytes:32 4096 ]

let test_hierarchy_three_level_filters () =
  let h = three_level () in
  let sink = Hierarchy.sink h in
  (* Cycle 8 blocks: more than L1's 4, within L2's 16 and L3's 128.
     L1 thrashes every pass; L2 and L3 cold-miss once per block. *)
  for _pass = 1 to 10 do
    for b = 0 to 7 do
      sink.Memsim.Sink.emit (Memsim.Event.read (b * 32) 4)
    done
  done;
  check_int "3 levels" 3 (Hierarchy.num_levels h);
  let l1 = Hierarchy.level_stats h 0
  and l2 = Hierarchy.level_stats h 1
  and l3 = Hierarchy.level_stats h 2 in
  check_int "L1 sees everything" 80 l1.Stats.accesses;
  check_int "L1 thrashes" 80 l1.Stats.misses;
  check_int "L2 sees only L1 misses" 80 l2.Stats.accesses;
  check_int "L2 only cold misses" 8 l2.Stats.misses;
  check_int "L3 sees only L2 misses" 8 l3.Stats.accesses;
  check_int "L3 only cold misses" 8 l3.Stats.misses

let test_hierarchy_per_level_stalls () =
  let h = three_level () in
  Hierarchy.access h (Memsim.Event.read 0 4);
  (* One access missing all three levels: pays the L2 access, the L3
     access, and main memory. *)
  check_int "stalls sum per-level penalties" 250
    (Hierarchy.stalls h ~penalties:[| 10; 40; 200 |]);
  (* Wrong arity is a caller bug, loudly. *)
  check_bool "penalty arity checked" true
    (match Hierarchy.stalls h ~penalties:[| 10; 40 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* The two-level compat wrapper agrees with the array form. *)
  let h2 =
    Hierarchy.create
      ~l1:(Config.make ~block_bytes:32 128)
      ~l2:(Config.make ~block_bytes:32 4096)
  in
  Hierarchy.access h2 (Memsim.Event.read 0 4);
  check_int "compat wrapper = array form"
    (Hierarchy.stalls h2 ~penalties:[| 10; 100 |])
    (Hierarchy.stall_cycles h2 ~l1_penalty:10 ~l2_penalty:100)

let test_hierarchy_rejects_empty () =
  check_bool "empty level list rejected" true
    (match Hierarchy.create_levels [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_hierarchy_access_chain_invariant () =
  (* For every preset (mixed PLRU/QLRU levels included): level i+1's
     accesses are exactly level i's misses. *)
  List.iter
    (fun (cpu : Cpu.t) ->
      let h = Cpu.hierarchy cpu in
      let sink = Hierarchy.sink h in
      List.iter (fun e -> sink.Memsim.Sink.emit e) (lcg_stream 4000);
      let stats = List.map snd (Hierarchy.results h) in
      let rec chain = function
        | a :: (b : Stats.t) :: rest ->
            check_int
              (Printf.sprintf "%s: misses feed the next level" cpu.Cpu.key)
              a.Stats.misses b.Stats.accesses;
            chain (b :: rest)
        | _ -> ()
      in
      chain stats)
    Cpu.all

let test_cpu_presets_well_formed () =
  check_int "five presets" 5 (List.length Cpu.all);
  List.iter
    (fun (cpu : Cpu.t) ->
      check_int (cpu.Cpu.key ^ ": three levels") 3
        (List.length cpu.Cpu.levels);
      check_bool (cpu.Cpu.key ^ ": findable") true
        ((Cpu.find cpu.Cpu.key).Cpu.key = cpu.Cpu.key);
      check_int
        (cpu.Cpu.key ^ ": one penalty per level")
        (List.length cpu.Cpu.levels)
        (Array.length (Cpu.miss_penalties cpu));
      (* Latencies grow monotonically down the hierarchy. *)
      let lats =
        List.map (fun (l : Cpu.level) -> l.Cpu.hit_latency) cpu.Cpu.levels
      in
      let rec increasing = function
        | a :: b :: rest -> a < b && increasing (b :: rest)
        | _ -> true
      in
      check_bool (cpu.Cpu.key ^ ": latencies increase") true
        (increasing (lats @ [ cpu.Cpu.mem_latency ])))
    Cpu.all;
  check_bool "unknown key lists candidates" true
    (match Cpu.find "486" with
    | exception Invalid_argument msg ->
        contains_substring ~needle:"skylake" msg
        && contains_substring ~needle:"486" msg
    | _ -> false)

let test_cpu_skylake_cost_model () =
  let cpu = Cpu.skylake in
  Alcotest.(check (array int))
    "miss penalties follow next-level latencies" [| 12; 42; 240 |]
    (Cpu.miss_penalties cpu);
  let h = Cpu.hierarchy cpu in
  Hierarchy.access h (Memsim.Event.read 0 4);
  (* one miss at each level *)
  check_int "stalls" 294 (Cpu.stall_cycles cpu h);
  check_int "total = instructions + stalls" 394
    (Cpu.total_cycles cpu h ~instructions:100)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.record a ~kind:Memsim.Event.Read ~source:Memsim.Event.App ~miss:true
    ~cold:true;
  Stats.record b ~kind:Memsim.Event.Write ~source:Memsim.Event.Malloc
    ~miss:false ~cold:false;
  let m = Stats.merge a b in
  check_int "accesses" 2 m.Stats.accesses;
  check_int "misses" 1 m.Stats.misses;
  check_int "cold" 1 m.Stats.cold_misses;
  check_int "reads" 1 m.Stats.read_accesses;
  check_int "writes" 1 m.Stats.write_accesses

let test_stats_empty_miss_rate () =
  let s = Stats.create () in
  Alcotest.(check (float 0.)) "empty rate" 0. (Stats.miss_rate s)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "cachesim"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_config_defaults;
          Alcotest.test_case "assoc name" `Quick test_config_assoc_name;
          Alcotest.test_case "rejects bad" `Quick test_config_rejects_bad;
          Alcotest.test_case "paper sweep" `Quick test_config_paper_sweep;
          Alcotest.test_case "policy names" `Quick test_config_policy_names;
          Alcotest.test_case "policy token round-trip" `Quick
            test_policy_string_roundtrip;
        ] );
      ( "direct-mapped",
        [
          Alcotest.test_case "hit after miss" `Quick test_dm_hit_after_miss;
          Alcotest.test_case "conflict eviction" `Quick
            test_dm_conflict_eviction;
          Alcotest.test_case "distinct sets coexist" `Quick
            test_dm_distinct_sets_coexist;
          Alcotest.test_case "event spanning blocks" `Quick
            test_event_spanning_blocks;
          Alcotest.test_case "source breakdown" `Quick test_source_breakdown;
          Alcotest.test_case "flush" `Quick test_flush;
        ] );
      ( "write-back",
        [
          Alcotest.test_case "dirty eviction" `Quick test_wb_dirty_eviction;
          Alcotest.test_case "clean eviction free" `Quick
            test_wb_clean_eviction_free;
          Alcotest.test_case "flush writes dirty" `Quick
            test_wb_flush_writes_dirty;
          Alcotest.test_case "read after write keeps dirty" `Quick
            test_wb_read_after_write_keeps_dirty;
          Alcotest.test_case "assoc dirty follows LRU" `Quick
            test_wb_assoc_dirty_follows_lru;
          Alcotest.test_case "dirty on write hit (FIFO)" `Quick
            test_wb_policy_dirty_on_write_hit;
          Alcotest.test_case "writeback counted once" `Quick
            test_wb_policy_writeback_counted_once;
          Alcotest.test_case "dirty follows PLRU victim" `Quick
            test_wb_plru_dirty_follows_victim;
        ]
        @ qsuite [ prop_writebacks_bounded ] );
      ( "set-associative",
        [
          Alcotest.test_case "two blocks coexist" `Quick
            test_assoc_two_blocks_coexist;
          Alcotest.test_case "LRU eviction order" `Quick
            test_assoc_lru_eviction_order;
          Alcotest.test_case "touch refreshes LRU" `Quick
            test_assoc_touch_refreshes_lru;
        ]
        @ qsuite
            [
              prop_dm_matches_model;
              prop_2way_matches_model;
              prop_4way_matches_model;
              prop_fully_assoc_matches_model;
              prop_assoc_monotone;
            ] );
      ( "multi",
        [
          Alcotest.test_case "broadcast" `Quick test_multi_broadcast;
          Alcotest.test_case "bigger cache fewer misses" `Quick
            test_multi_bigger_cache_fewer_misses;
          Alcotest.test_case "find" `Quick test_multi_find;
          Alcotest.test_case "mixed policies fall back standalone" `Quick
            test_multi_mixed_policies;
        ] );
      ( "forest",
        [
          Alcotest.test_case "equivalence vs independent caches" `Quick
            test_forest_equivalence;
          Alcotest.test_case "batched multi equivalence" `Quick
            test_forest_batched_multi_equivalence;
          Alcotest.test_case "create validation" `Quick
            test_forest_create_rejects;
          Alcotest.test_case "rejects non-LRU policies" `Quick
            test_forest_rejects_non_lru;
        ]
        @ qsuite [ prop_forest_matches_caches ] );
      ( "packed",
        [
          Alcotest.test_case "multi packed equals boxed" `Quick
            test_multi_packed_matches_boxed;
          Alcotest.test_case "hierarchy packed equals boxed" `Quick
            test_hierarchy_packed_matches_boxed;
        ]
        @ qsuite [ prop_forest_packed_matches_boxed ] );
      ( "shard",
        [
          Alcotest.test_case "sharded stats identical across domains"
            `Quick test_shard_identity;
          Alcotest.test_case "rejects zero domains" `Quick test_shard_rejects;
        ]
        @ qsuite [ prop_shard_matches_sequential ] );
      ( "policy",
        [
          Alcotest.test_case "lru victim sequence" `Quick
            test_lru_victim_sequence;
          Alcotest.test_case "fifo victim sequence" `Quick
            test_fifo_victim_sequence;
          Alcotest.test_case "plru victim sequence" `Quick
            test_plru_victim_sequence;
          Alcotest.test_case "qlru-h1-m1 victim sequence" `Quick
            test_qlru_h11_m1_victim_sequence;
          Alcotest.test_case "qlru-h0-m1 victim sequence" `Quick
            test_qlru_h00_m1_victim_sequence;
          Alcotest.test_case "mru victim sequence" `Quick
            test_mru_victim_sequence;
          Alcotest.test_case "random victim matches xorshift32" `Quick
            test_random_victim_matches_xorshift;
          Alcotest.test_case "random same seed deterministic" `Quick
            test_random_same_seed_deterministic;
          Alcotest.test_case "random seeds diverge" `Quick
            test_random_different_seeds_diverge;
          Alcotest.test_case "flush resets recency state" `Quick
            test_policy_flush_resets_state;
        ]
        @ qsuite
            [
              prop_lru_matches_oracle;
              prop_fifo_matches_oracle;
              prop_random_matches_oracle;
              prop_plru_matches_oracle;
              prop_qlru_h00_m1_matches_oracle;
              prop_qlru_h11_m1_matches_oracle;
              prop_qlru_h00_m0_matches_oracle;
              prop_qlru_any_matches_oracle;
              prop_mru_matches_oracle;
            ] );
      ( "classify",
        [
          Alcotest.test_case "cold" `Quick test_classify_cold;
          Alcotest.test_case "conflict" `Quick test_classify_conflict;
          Alcotest.test_case "capacity" `Quick test_classify_capacity;
        ]
        @ qsuite
            [ prop_classify_partitions_misses;
              prop_full_assoc_has_no_conflicts ] );
      ( "hierarchy",
        [
          Alcotest.test_case "L2 sees only L1 misses" `Quick
            test_hierarchy_l2_sees_only_l1_misses;
          Alcotest.test_case "stall cycles" `Quick test_hierarchy_stall_cycles;
          Alcotest.test_case "L2 filters" `Quick test_hierarchy_l2_filters;
          Alcotest.test_case "three levels filter" `Quick
            test_hierarchy_three_level_filters;
          Alcotest.test_case "per-level stalls" `Quick
            test_hierarchy_per_level_stalls;
          Alcotest.test_case "rejects empty" `Quick test_hierarchy_rejects_empty;
          Alcotest.test_case "access chain invariant" `Quick
            test_hierarchy_access_chain_invariant;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "presets well formed" `Quick
            test_cpu_presets_well_formed;
          Alcotest.test_case "skylake cost model" `Quick
            test_cpu_skylake_cost_model;
        ] );
      ( "stats",
        [
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "empty miss rate" `Quick
            test_stats_empty_miss_rate;
        ] );
    ]
