(* A deliberately slow, obviously-correct reference cache simulator.

   This is the executable specification the fast [Cachesim.Cache] is
   differentially tested against: association-list sets, textbook
   policy bookkeeping (tag lists for LRU/FIFO, a recursive bool tree
   for PLRU, per-way age lists for QLRU), everything recomputed from
   first principles on every access.  It shares only the victim-side
   CONTRACT with the fast implementation, never its code:

   - invalid ways fill leftmost-first, before any replacement;
   - the victim is chosen only when the set is full;
   - Random draws exactly one xorshift32 value per victim request, in
     access order, and reduces it modulo the associativity
     (transcribed below from the spec in [Cachesim.Policy]'s docs, not
     shared with the implementation). *)

open Cachesim

(* One resident line, keyed by its physical way. *)
type line = { way : int; tag : int; dirty : bool }

(* Textbook per-set policy memory. *)
type policy_mem =
  | M_lru of int list array  (* per set: resident tags, MRU first *)
  | M_fifo of int list array  (* per set: resident tags, oldest first *)
  | M_random of int ref  (* xorshift32 state, shared by all sets *)
  | M_plru of bool array array  (* per set: tree bits, length assoc-1 *)
  | M_qlru of (int * int) list array * int * int
      (* per set: (way, age) pairs; hit_age; insert_age *)
  | M_mru of bool array array  (* per set: one MRU bit per way *)

type t = {
  config : Config.t;
  num_sets : int;
  assoc : int;
  sets : line list array;  (* association list per set, any order *)
  mem : policy_mem;
  seen : (int, unit) Hashtbl.t;
  stats : Stats.t;
}

let create (config : Config.t) =
  let num_sets = Config.num_sets config in
  let assoc = config.associativity in
  let mem =
    match config.policy with
    | Policy.Lru -> M_lru (Array.make num_sets [])
    | Policy.Fifo -> M_fifo (Array.make num_sets [])
    | Policy.Random seed ->
        let s = seed land 0xFFFFFFFF in
        M_random (ref (if s = 0 then 1 else s))
    | Policy.Plru -> M_plru (Array.init num_sets (fun _ -> Array.make (assoc - 1) false))
    | Policy.Qlru { hit_age; insert_age } ->
        M_qlru (Array.make num_sets [], hit_age, insert_age)
    | Policy.Mru -> M_mru (Array.init num_sets (fun _ -> Array.make assoc false))
  in
  { config;
    num_sets;
    assoc;
    sets = Array.make num_sets [];
    mem;
    seen = Hashtbl.create 64;
    stats = Stats.create () }

let stats t = t.stats
let config t = t.config

(* Tree-PLRU, textbook recursion over ways [lo, hi): a true bit sends
   the victim right; touching a way points every bit on its path at
   the other half. *)
let rec plru_touch bits node lo hi way =
  if hi - lo > 1 then begin
    let mid = (lo + hi) / 2 in
    if way < mid then begin
      bits.(node) <- true;
      plru_touch bits ((2 * node) + 1) lo mid way
    end
    else begin
      bits.(node) <- false;
      plru_touch bits ((2 * node) + 2) mid hi way
    end
  end

let rec plru_victim bits node lo hi =
  if hi - lo <= 1 then lo
  else
    let mid = (lo + hi) / 2 in
    if bits.(node) then plru_victim bits ((2 * node) + 2) mid hi
    else plru_victim bits ((2 * node) + 1) lo mid

let qlru_age ages way = try List.assoc way ages with Not_found -> 0
let qlru_set_age ages way age = (way, age) :: List.remove_assoc way ages

(* Record that [way] of [set] was touched (hit or fresh fill). *)
let note_touch t ~set ~way ~tag ~filled =
  match t.mem with
  | M_lru order ->
      order.(set) <- tag :: List.filter (fun g -> g <> tag) order.(set)
  | M_fifo order ->
      (* Hits do not refresh; only fills append (newest last). *)
      if filled then
        order.(set) <- List.filter (fun g -> g <> tag) order.(set) @ [ tag ]
  | M_random _ -> ()
  | M_plru bits -> plru_touch bits.(set) 0 0 t.assoc way
  | M_qlru (ages, hit_age, insert_age) ->
      ages.(set) <-
        qlru_set_age ages.(set) way (if filled then insert_age else hit_age)
  | M_mru bits ->
      let b = bits.(set) in
      b.(way) <- true;
      if Array.for_all (fun x -> x) b then begin
        Array.fill b 0 t.assoc false;
        b.(way) <- true
      end

(* Pick the way to evict from a full [set]. *)
let victim t ~set =
  let lines = t.sets.(set) in
  let way_of_tag tag = (List.find (fun l -> l.tag = tag) lines).way in
  match t.mem with
  | M_lru order ->
      (* Least recently used = last of the MRU-first list. *)
      way_of_tag (List.nth order.(set) (List.length order.(set) - 1))
  | M_fifo order -> way_of_tag (List.hd order.(set))
  | M_random rng ->
      (* xorshift32, transcribed from the documented spec. *)
      let x = !rng in
      let x = x lxor (x lsl 13) land 0xFFFFFFFF in
      let x = x lxor (x lsr 17) in
      let x = x lxor (x lsl 5) land 0xFFFFFFFF in
      rng := x;
      x mod t.assoc
  | M_plru bits -> plru_victim bits.(set) 0 0 t.assoc
  | M_qlru (ages, _, _) ->
      (* Age the whole set until some line reaches 3 (persistently, as
         real QLRU hardware does), then evict the leftmost age-3 way. *)
      let a = ages.(set) in
      let max_age =
        List.fold_left (fun m w -> max m (qlru_age a w))
          0
          (List.init t.assoc (fun w -> w))
      in
      if max_age < 3 then
        ages.(set) <-
          List.init t.assoc (fun w -> (w, qlru_age a w + (3 - max_age)));
      let rec leftmost w =
        if w >= t.assoc - 1 then w
        else if qlru_age ages.(set) w = 3 then w
        else leftmost (w + 1)
      in
      leftmost 0
  | M_mru bits ->
      let b = bits.(set) in
      let rec leftmost w =
        if w >= t.assoc - 1 then w else if not b.(w) then w else leftmost (w + 1)
      in
      leftmost 0

let touch_block t ~kind ~source ~block =
  let set = block mod t.num_sets in
  let lines = t.sets.(set) in
  let write = kind = Memsim.Event.Write in
  let miss =
    match List.find_opt (fun l -> l.tag = block) lines with
    | Some l ->
        if write && not l.dirty then
          t.sets.(set) <-
            { l with dirty = true }
            :: List.filter (fun o -> o.way <> l.way) lines;
        note_touch t ~set ~way:l.way ~tag:block ~filled:false;
        false
    | None ->
        let occupied = List.map (fun l -> l.way) lines in
        let way =
          (* Leftmost invalid way first; replacement only when full. *)
          match
            List.find_opt
              (fun w -> not (List.mem w occupied))
              (List.init t.assoc (fun w -> w))
          with
          | Some w -> w
          | None -> victim t ~set
        in
        (match List.find_opt (fun l -> l.way = way) lines with
        | Some evicted ->
            if evicted.dirty then Stats.record_writeback t.stats;
            (* The evicted tag leaves the recency lists too. *)
            (match t.mem with
            | M_lru order ->
                order.(set) <-
                  List.filter (fun g -> g <> evicted.tag) order.(set)
            | M_fifo order ->
                order.(set) <-
                  List.filter (fun g -> g <> evicted.tag) order.(set)
            | _ -> ())
        | None -> ());
        t.sets.(set) <-
          { way; tag = block; dirty = write }
          :: List.filter (fun l -> l.way <> way) lines;
        note_touch t ~set ~way ~tag:block ~filled:true;
        true
  in
  let cold = miss && not (Hashtbl.mem t.seen block) in
  if cold then Hashtbl.replace t.seen block ();
  Stats.record t.stats ~kind ~source ~miss ~cold

let access t (e : Memsim.Event.t) =
  let bb = t.config.Config.block_bytes in
  for block = e.addr / bb to (e.addr + e.size - 1) / bb do
    touch_block t ~kind:e.kind ~source:e.source ~block
  done
