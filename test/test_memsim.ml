(* Tests for the memsim substrate: addresses, events, sinks, regions and
   the simulated word memory. *)

open Memsim

(* Several suites here deliberately exercise the deprecated boxed
   delivery shims (Sink.Compat) to pin them against the packed path. *)
[@@@alert "-deprecated"]

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Addr                                                               *)
(* ------------------------------------------------------------------ *)

let test_addr_align_up () =
  check_int "already aligned" 16 (Addr.align_up 16 ~alignment:8);
  check_int "rounds up" 24 (Addr.align_up 17 ~alignment:8);
  check_int "rounds up to word" 4 (Addr.align_up 1 ~alignment:4);
  check_int "zero stays" 0 (Addr.align_up 0 ~alignment:4096)

let test_addr_align_down () =
  check_int "already aligned" 16 (Addr.align_down 16 ~alignment:8);
  check_int "rounds down" 16 (Addr.align_down 23 ~alignment:8);
  check_int "small value" 0 (Addr.align_down 3 ~alignment:4)

let test_addr_predicates () =
  check_bool "null" true (Addr.is_null Addr.null);
  check_bool "not null" false (Addr.is_null 4);
  check_bool "word aligned" true (Addr.word_aligned 128);
  check_bool "not word aligned" false (Addr.word_aligned 126);
  check_bool "is_aligned" true (Addr.is_aligned 4096 ~alignment:4096);
  check_bool "is_aligned no" false (Addr.is_aligned 4100 ~alignment:4096)

let test_addr_indices () =
  check_int "word index" 3 (Addr.word_index 12);
  check_int "block index" 2 (Addr.block_index 64 ~block_bytes:32);
  check_int "block index interior" 2 (Addr.block_index 95 ~block_bytes:32);
  check_int "page index" 1 (Addr.page_index 4097 ~page_bytes:4096)

let prop_align_up_is_aligned =
  QCheck.Test.make ~name:"align_up result is aligned" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_bound 12))
    (fun (a, k) ->
      let alignment = 1 lsl k in
      let r = Addr.align_up a ~alignment in
      r >= a && r mod alignment = 0 && r - a < alignment)

let prop_align_down_is_aligned =
  QCheck.Test.make ~name:"align_down result is aligned" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_bound 12))
    (fun (a, k) ->
      let alignment = 1 lsl k in
      let r = Addr.align_down a ~alignment in
      r <= a && r mod alignment = 0 && a - r < alignment)

(* ------------------------------------------------------------------ *)
(* Event                                                              *)
(* ------------------------------------------------------------------ *)

let test_event_constructors () =
  let e = Event.read 0x1000 4 in
  check_bool "read kind" true (e.Event.kind = Event.Read);
  check_bool "default source" true (e.Event.source = Event.App);
  let e = Event.write ~source:Event.Malloc 0x2000 8 in
  check_bool "write kind" true (e.Event.kind = Event.Write);
  check_bool "malloc source" true (e.Event.source = Event.Malloc);
  check_int "size" 8 e.Event.size

let test_event_pp () =
  let s = Format.asprintf "%a" Event.pp (Event.read 0x10 4) in
  Alcotest.(check string) "pp" "R app 0x00000010+4" s

(* ------------------------------------------------------------------ *)
(* Sink                                                               *)
(* ------------------------------------------------------------------ *)

let test_sink_counter () =
  let c = Sink.Counter.create () in
  let s = Sink.Counter.sink c in
  s.emit (Event.read 0x1000 4);
  s.emit (Event.write 0x1004 4);
  s.emit (Event.read ~source:Event.Malloc 0x2000 2);
  check_int "total" 3 (Sink.Counter.total c);
  check_int "reads" 2 (Sink.Counter.reads c);
  check_int "writes" 1 (Sink.Counter.writes c);
  check_int "bytes" 10 (Sink.Counter.bytes c);
  check_int "app" 2 (Sink.Counter.by_source c Event.App);
  check_int "malloc" 1 (Sink.Counter.by_source c Event.Malloc);
  check_int "free" 0 (Sink.Counter.by_source c Event.Free);
  Sink.Counter.reset c;
  check_int "reset" 0 (Sink.Counter.total c)

let test_sink_fanout () =
  let c1 = Sink.Counter.create () and c2 = Sink.Counter.create () in
  let s = Sink.fanout [ Sink.Counter.sink c1; Sink.Counter.sink c2 ] in
  s.emit (Event.read 0x1000 4);
  s.emit (Event.read 0x1000 4);
  check_int "c1 sees all" 2 (Sink.Counter.total c1);
  check_int "c2 sees all" 2 (Sink.Counter.total c2)

let test_sink_fanout_three () =
  let cs = List.init 3 (fun _ -> Sink.Counter.create ()) in
  let s = Sink.fanout (List.map Sink.Counter.sink cs) in
  s.emit (Event.write 0x4 1);
  List.iter (fun c -> check_int "each sees one" 1 (Sink.Counter.total c)) cs

let test_sink_filter () =
  let c = Sink.Counter.create () in
  let s =
    Sink.filter
      (fun (e : Event.t) -> e.source = Event.Malloc)
      (Sink.Counter.sink c)
  in
  s.emit (Event.read 0x1000 4);
  s.emit (Event.read ~source:Event.Malloc 0x1000 4);
  check_int "only malloc passes" 1 (Sink.Counter.total c)

(* filter must keep the batch path a batch path: one emit_batch in, at
   most one emit_batch out (the matching events, compacted, in order) —
   and the result must equal filtering event-by-event. *)
let test_sink_filter_batch () =
  let stream =
    List.init 31 (fun i ->
        let source =
          match i mod 3 with
          | 0 -> Event.App
          | 1 -> Event.Malloc
          | _ -> Event.Free
        in
        Event.read ~source (4 * i) 4)
  in
  let pred (e : Event.t) = e.Event.source <> Event.App in
  (* Reference: filter the stream per-event. *)
  let direct = Sink.Recorder.create () in
  List.iter
    (fun e -> if pred e then (Sink.Recorder.sink direct).emit e)
    stream;
  (* Batched: one delivery, counting downstream batch dispatches. *)
  let batched = Sink.Recorder.create () in
  let batch_calls = ref 0 in
  let downstream =
    Sink.make
      ~emit:(fun e -> (Sink.Recorder.sink batched).emit e)
      ~emit_batch:(fun buf len ->
        incr batch_calls;
        Sink.emit_packed_batch (Sink.Recorder.sink batched)
          (Event.Batch.of_events buf len))
  in
  let f = Sink.filter pred downstream in
  let arr = Array.of_list stream in
  f.emit_batch arr (Array.length arr);
  check_int "one downstream batch per input batch" 1 !batch_calls;
  check_bool "batched = per-event filtering" true
    (Sink.Recorder.events batched = Sink.Recorder.events direct);
  (* A batch with no survivors is suppressed entirely. *)
  let only_app = Array.of_list (List.filter (fun e -> not (pred e)) stream) in
  f.emit_batch only_app (Array.length only_app);
  check_int "empty result batch suppressed" 1 !batch_calls;
  (* The caller's buffer must not be compacted in place: a fanout
     sibling reading after the filter still sees the original events. *)
  let sibling = Sink.Recorder.create () in
  let pair = Sink.fanout [ Sink.filter pred Sink.null; Sink.Recorder.sink sibling ] in
  pair.emit_batch arr (Array.length arr);
  check_bool "sibling sees unfiltered batch" true
    (Sink.Recorder.events sibling = stream)

let test_sink_counter_reset () =
  let c = Sink.Counter.create () in
  let s = Sink.Counter.sink c in
  s.emit (Event.read ~source:Event.App 0x10 4);
  s.emit (Event.write ~source:Event.Malloc 0x14 8);
  s.emit (Event.read ~source:Event.Free 0x18 2);
  s.emit (Event.write ~source:Event.Free 0x1c 1);
  check_int "pre-reset total" 4 (Sink.Counter.total c);
  Sink.Counter.reset c;
  check_int "total cleared" 0 (Sink.Counter.total c);
  check_int "reads cleared" 0 (Sink.Counter.reads c);
  check_int "writes cleared" 0 (Sink.Counter.writes c);
  check_int "bytes cleared" 0 (Sink.Counter.bytes c);
  check_int "app cells cleared" 0 (Sink.Counter.by_source c Event.App);
  check_int "malloc cells cleared" 0 (Sink.Counter.by_source c Event.Malloc);
  check_int "free cells cleared" 0 (Sink.Counter.by_source c Event.Free);
  (* The counter keeps counting correctly after a reset. *)
  s.emit (Event.write ~source:Event.Malloc 0x20 16);
  check_int "counts resume" 1 (Sink.Counter.total c);
  check_int "bytes resume" 16 (Sink.Counter.bytes c);
  check_int "malloc resumes" 1 (Sink.Counter.by_source c Event.Malloc)

let test_sink_recorder () =
  let r = Sink.Recorder.create ~capacity:2 () in
  let s = Sink.Recorder.sink r in
  s.emit (Event.read 0x10 4);
  s.emit (Event.write 0x14 4);
  s.emit (Event.read 0x18 4);
  check_int "kept up to capacity" 2 (List.length (Sink.Recorder.events r));
  check_int "dropped counted" 1 (Sink.Recorder.dropped r);
  match Sink.Recorder.events r with
  | [ e1; e2 ] ->
      check_int "order preserved: first" 0x10 e1.Event.addr;
      check_int "order preserved: second" 0x14 e2.Event.addr
  | _ -> Alcotest.fail "expected exactly two events"

(* Dropped-event accounting at capacity: every event past the limit is
   counted (and only counted), whether it arrives singly or batched. *)
let test_sink_recorder_dropped () =
  let r = Sink.Recorder.create ~capacity:3 () in
  let s = Sink.Recorder.sink r in
  let ev i = Event.read (4 * i) 4 in
  check_int "nothing dropped while empty" 0 (Sink.Recorder.dropped r);
  s.emit (ev 0);
  s.emit (ev 1);
  check_int "under capacity drops nothing" 0 (Sink.Recorder.dropped r);
  (* A batch straddling the capacity boundary: one slot left, four
     events — the first is kept, three are dropped. *)
  s.emit_batch (Array.init 4 (fun i -> ev (2 + i))) 4;
  check_int "kept exactly capacity" 3 (List.length (Sink.Recorder.events r));
  check_int "straddling batch counted" 3 (Sink.Recorder.dropped r);
  s.emit (ev 9);
  check_int "every further event counted" 4 (Sink.Recorder.dropped r);
  check_bool "kept prefix in order" true
    (Sink.Recorder.events r = [ ev 0; ev 1; ev 2 ]);
  (* Zero capacity keeps nothing and counts everything. *)
  let z = Sink.Recorder.create ~capacity:0 () in
  (Sink.Recorder.sink z).emit (ev 0);
  check_int "zero capacity keeps nothing" 0
    (List.length (Sink.Recorder.events z));
  check_int "zero capacity counts drops" 1 (Sink.Recorder.dropped z)

let test_sink_recorder_rejects () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Sink.Recorder.create: capacity must be >= 0") (fun () ->
      ignore (Sink.Recorder.create ~capacity:(-1) ()))

(* A batched delivery path must be observationally identical to direct
   delivery: same events, same order, whatever mix of single emits and
   pass-through batches arrives at the front. *)
let test_sink_batcher_equivalence () =
  let stream =
    List.init 23 (fun i ->
        let source =
          match i mod 3 with
          | 0 -> Event.App
          | 1 -> Event.Malloc
          | _ -> Event.Free
        in
        if i mod 2 = 0 then Event.read ~source (4 * i) (1 + (i mod 7))
        else Event.write ~source (4 * i) (1 + (i mod 7)))
  in
  let direct_r = Sink.Recorder.create () in
  List.iter (Sink.Recorder.sink direct_r).emit stream;
  let batched_r = Sink.Recorder.create () in
  let batched_c = Sink.Counter.create () in
  let b =
    Sink.Batcher.create ~capacity:5
      (Sink.fanout
         [ Sink.Recorder.sink batched_r; Sink.Counter.sink batched_c ])
  in
  let front = Sink.Batcher.sink b in
  (* First half event-at-a-time, then an already-batched chunk (the
     pass-through path), then the rest event-at-a-time. *)
  let arr = Array.of_list stream in
  for i = 0 to 10 do
    front.emit arr.(i)
  done;
  front.emit_batch (Array.sub arr 11 6) 6;
  for i = 17 to Array.length arr - 1 do
    front.emit arr.(i)
  done;
  Sink.Batcher.flush b;
  check_bool "batched events = direct events" true
    (Sink.Recorder.events batched_r = Sink.Recorder.events direct_r);
  check_int "counter saw every event" (List.length stream)
    (Sink.Counter.total batched_c)

let test_sink_batcher_rejects () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Sink.Batcher.create: capacity must be >= 1") (fun () ->
      ignore (Sink.Batcher.create ~capacity:0 Sink.null))

(* ------------------------------------------------------------------ *)
(* Region                                                             *)
(* ------------------------------------------------------------------ *)

let test_region_extend () =
  let r = Region.create ~base:0x1000 ~limit:0x3000 in
  check_int "initial break" 0x1000 (Region.break r);
  let a = Region.extend r 16 in
  check_int "first extend returns base" 0x1000 a;
  let b = Region.extend r 10 in
  check_int "second extend returns old break" 0x1010 b;
  check_int "break word-aligns sizes" 0x101c (Region.break r);
  check_int "used" 0x1c (Region.used_bytes r)

let test_region_contains () =
  let r = Region.create ~base:0x1000 ~limit:0x3000 in
  ignore (Region.extend r 64);
  check_bool "contains base" true (Region.contains r 0x1000);
  check_bool "contains interior" true (Region.contains r 0x103f);
  check_bool "excludes break" false (Region.contains r 0x1040);
  check_bool "excludes below base" false (Region.contains r 0xfff)

let test_region_overflow () =
  let r = Region.create ~base:0x1000 ~limit:0x1010 in
  ignore (Region.extend r 16);
  Alcotest.check_raises "limit enforced"
    (Failure
       "Region.extend: out of space (break=0x1010, need 4, limit=0x1010)")
    (fun () -> ignore (Region.extend r 4))

let test_layout_disjoint () =
  let l = Region.Layout.create () in
  let a = Region.Layout.add l ~name:"globals" ~size:8192 in
  let b = Region.Layout.add l ~name:"heap" ~size:100_000 in
  check_bool "b starts after a's limit" true (Region.base b > Region.limit a);
  check_int "two regions listed" 2 (List.length (Region.Layout.regions l));
  check_bool "page aligned bases" true
    (Region.base a mod 4096 = 0 && Region.base b mod 4096 = 0)

(* ------------------------------------------------------------------ *)
(* Sim_memory                                                         *)
(* ------------------------------------------------------------------ *)

let test_mem_load_store () =
  let m = Sim_memory.create () in
  check_int "uninitialised reads 0" 0 (Sim_memory.load m 0x1000);
  Sim_memory.store m 0x1000 42;
  check_int "reads back" 42 (Sim_memory.load m 0x1000);
  Sim_memory.store m 0x1000 7;
  check_int "overwrites" 7 (Sim_memory.load m 0x1000);
  check_int "distinct words" 1 (Sim_memory.words_written m)

let test_mem_emits_events () =
  let c = Sink.Counter.create () in
  let m = Sim_memory.create ~sink:(Sink.Counter.sink c) () in
  Sim_memory.store m 0x1000 1;
  ignore (Sim_memory.load m 0x1000);
  Sim_memory.flush m;
  check_int "two events" 2 (Sink.Counter.total c);
  check_int "one read" 1 (Sink.Counter.reads c);
  check_int "one write" 1 (Sink.Counter.writes c);
  check_int "8 bytes" 8 (Sink.Counter.bytes c)

let test_mem_source_attribution () =
  let c = Sink.Counter.create () in
  let m = Sim_memory.create ~sink:(Sink.Counter.sink c) () in
  Sim_memory.set_source m Event.Malloc;
  Sim_memory.store m 0x1000 1;
  Sim_memory.with_source m Event.Free (fun () ->
      ignore (Sim_memory.load m 0x1000));
  (* with_source restored Malloc *)
  Sim_memory.store m 0x1004 2;
  Sim_memory.flush m;
  check_int "malloc refs" 2 (Sink.Counter.by_source c Event.Malloc);
  check_int "free refs" 1 (Sink.Counter.by_source c Event.Free)

let test_mem_with_source_restores_on_raise () =
  let m = Sim_memory.create () in
  Sim_memory.set_source m Event.App;
  (try Sim_memory.with_source m Event.Malloc (fun () -> failwith "boom")
   with Failure _ -> ());
  check_bool "source restored" true (Sim_memory.source m = Event.App)

let test_mem_ranged_word_grain () =
  let r = Sink.Recorder.create () in
  let m = Sim_memory.create ~sink:(Sink.Recorder.sink r) () in
  Sim_memory.write_bytes m 0x1002 10;
  Sim_memory.flush m;
  (* 0x1002..0x100b: partial word (2B at 0x1002), word at 0x1004,
     word at 0x1008 — 3 events. *)
  let evs = Sink.Recorder.events r in
  check_int "three pieces" 3 (List.length evs);
  let sizes = List.map (fun (e : Event.t) -> e.size) evs in
  Alcotest.(check (list int)) "piece sizes" [ 2; 4; 4 ] sizes;
  let addrs = List.map (fun (e : Event.t) -> e.addr) evs in
  Alcotest.(check (list int)) "piece addrs" [ 0x1002; 0x1004; 0x1008 ] addrs

let test_mem_ranged_zero () =
  let c = Sink.Counter.create () in
  let m = Sim_memory.create ~sink:(Sink.Counter.sink c) () in
  Sim_memory.read_bytes m 0x1000 0;
  Sim_memory.flush m;
  check_int "no events for empty range" 0 (Sink.Counter.total c)

let test_mem_peek_poke_silent () =
  let c = Sink.Counter.create () in
  let m = Sim_memory.create ~sink:(Sink.Counter.sink c) () in
  Sim_memory.poke m 0x1000 99;
  check_int "poke visible to peek" 99 (Sim_memory.peek m 0x1000);
  Sim_memory.flush m;
  check_int "no events" 0 (Sink.Counter.total c);
  check_int "but visible to load" 99 (Sim_memory.load m 0x1000)

let test_mem_rejects_unaligned () =
  let m = Sim_memory.create () in
  Alcotest.check_raises "unaligned load"
    (Invalid_argument "Sim_memory: unaligned word access at 0x1001")
    (fun () -> ignore (Sim_memory.load m 0x1001));
  Alcotest.check_raises "null store"
    (Invalid_argument "Sim_memory: access to null/negative 0x0") (fun () ->
      Sim_memory.store m 0 1)

let prop_ranged_covers_exactly =
  QCheck.Test.make ~name:"ranged events cover exactly [a, a+n)" ~count:300
    QCheck.(pair (int_range 1 100_000) (int_range 1 256))
    (fun (a, n) ->
      let r = Sink.Recorder.create ~capacity:1024 () in
      let m = Sim_memory.create ~sink:(Sink.Recorder.sink r) () in
      Sim_memory.read_bytes m a n;
      Sim_memory.flush m;
      let evs = Sink.Recorder.events r in
      (* Contiguous, non-overlapping, total size = n, starting at a. *)
      let rec walk pos = function
        | [] -> pos = a + n
        | (e : Event.t) :: rest ->
            e.addr = pos && e.size > 0 && e.size <= 4
            && walk (pos + e.size) rest
      in
      walk a evs)

let prop_store_load_roundtrip =
  QCheck.Test.make ~name:"store/load roundtrip over random programs"
    ~count:200
    QCheck.(small_list (pair (int_bound 1000) int))
    (fun writes ->
      let m = Sim_memory.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (slot, v) ->
          let a = 0x1000 + (4 * slot) in
          Sim_memory.store m a v;
          Hashtbl.replace model a v)
        writes;
      Hashtbl.fold (fun a v acc -> acc && Sim_memory.load m a = v) model true)

(* ------------------------------------------------------------------ *)
(* Trace_file                                                         *)
(* ------------------------------------------------------------------ *)

let tmp_trace name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_trace_roundtrip () =
  let path = tmp_trace "loclab_roundtrip.trace" in
  let events =
    [ Event.read 0x1000 4;
      Event.write ~source:Event.Malloc 0x1004 4;
      Event.read ~source:Event.Free 0x0ff0 2;
      Event.write 0x2000 64;
      (* > 30 bytes: escaped size *)
      Event.read 0x1_000_000 1 ]
  in
  Trace_file.record_to_file path (fun sink ->
      List.iter sink.Sink.emit events);
  let rec_ = Sink.Recorder.create () in
  let n = Trace_file.replay_file path (Sink.Recorder.sink rec_) in
  Alcotest.(check int) "event count" (List.length events) n;
  Alcotest.(check bool) "events identical" true
    (Sink.Recorder.events rec_ = events);
  Sys.remove path

let test_trace_rejects_foreign () =
  let path = tmp_trace "loclab_foreign.trace" in
  let oc = open_out_bin path in
  output_string oc "NOTATRACE";
  close_out oc;
  Alcotest.(check bool) "foreign rejected" true
    (match Trace_file.replay_file path Sink.null with
    | exception Failure _ -> true
    | _ -> false);
  Sys.remove path

let test_trace_truncation_detected () =
  let path = tmp_trace "loclab_trunc.trace" in
  Trace_file.record_to_file path (fun sink ->
      sink.Sink.emit (Event.read 0x123456 4));
  (* Chop the last byte off. *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic (len - 1) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc;
  Alcotest.(check bool) "truncation detected" true
    (match Trace_file.replay_file path Sink.null with
    | exception Failure _ -> true
    | _ -> false);
  Sys.remove path

let test_trace_compactness () =
  (* Sequential word touches encode in ~2 bytes/event. *)
  let path = tmp_trace "loclab_compact.trace" in
  Trace_file.record_to_file path (fun sink ->
      for i = 0 to 9_999 do
        sink.Sink.emit (Event.read (0x10000 + (4 * i)) 4)
      done);
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "under 3 bytes/event" true (len < 30_000)

let prop_trace_roundtrip_random =
  (* Events come from the shared testkit generator, at full trace-file
     width (addresses to 10M, sizes to 5000) rather than the cache-suite
     defaults. *)
  QCheck.Test.make ~name:"trace roundtrip on random events" ~count:100
    (QCheck.make
       QCheck.Gen.(
         small_list
           (Testkit.Gen.event_gen ~addr_bound:10_000_000 ~max_size:5000 ())))
    (fun events ->
      let path = tmp_trace "loclab_prop.trace" in
      Trace_file.record_to_file path (fun sink ->
          List.iter sink.Sink.emit events);
      let rec_ = Sink.Recorder.create ~capacity:100_000 () in
      let n = Trace_file.replay_file path (Sink.Recorder.sink rec_) in
      Sys.remove path;
      n = List.length events && Sink.Recorder.events rec_ = events)

(* Corrupt binary traces must be reported with the byte offset and the
   offending flags byte, so a bad capture is debuggable with a hex
   dump.  The first event's flags byte sits right after the 8-byte
   magic, at offset 8. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let failure_of f =
  match f () with
  | exception Failure msg -> msg
  | _ -> Alcotest.fail "expected Failure"

let test_trace_corrupt_offset () =
  let base =
    Trace_file.record_to_string (fun sink ->
        sink.Sink.emit (Event.read 0x1000 4);
        sink.Sink.emit (Event.write 0x2000 8))
  in
  let with_byte off c =
    let b = Bytes.of_string base in
    Bytes.set b off (Char.chr c);
    Bytes.to_string b
  in
  (* Size bits zeroed: flags 0x00 at offset 8. *)
  let msg =
    failure_of (fun () -> Trace_file.replay_string (with_byte 8 0x00) Sink.null)
  in
  Alcotest.(check bool) "corrupt size names byte 8" true
    (contains msg "byte 8" && contains msg "0x00");
  (* Both source bits set (source 3) with a valid inline size. *)
  let msg =
    failure_of (fun () -> Trace_file.replay_string (with_byte 8 0x0e) Sink.null)
  in
  Alcotest.(check bool) "bad source names byte 8 and flags" true
    (contains msg "byte 8" && contains msg "0x0e")

let test_trace_truncated_offset () =
  (* Keep the magic plus the first event's flags byte only: the address
     varint is missing, and the error must point at the event start. *)
  let base =
    Trace_file.record_to_string (fun sink ->
        sink.Sink.emit (Event.read 0x123456 4))
  in
  let msg =
    failure_of (fun () ->
        Trace_file.replay_string (String.sub base 0 9) Sink.null)
  in
  Alcotest.(check bool) "truncation names byte 8" true (contains msg "byte 8")

(* ------------------------------------------------------------------ *)
(* Trace sources: text / CSV / framed readers and writers             *)
(* ------------------------------------------------------------------ *)

let read_events fmt data =
  let rec_ = Sink.Recorder.create ~capacity:100_000 () in
  let n = Trace.read fmt data (Sink.Recorder.sink rec_) in
  (n, Sink.Recorder.events rec_)

let test_text_empty () =
  let n, events = read_events Trace.Source.Text "" in
  Alcotest.(check int) "no events" 0 n;
  Alcotest.(check bool) "empty stream" true (events = []);
  let n, _ = read_events Trace.Source.Text "\n  \n\r\n" in
  Alcotest.(check int) "blank lines skipped" 0 n

let test_text_crlf_mixed_case () =
  let n, events =
    read_events Trace.Source.Text "r 0x10\r\nW 0x20\r\nR 30\nw 0X40\n"
  in
  Alcotest.(check int) "count" 4 n;
  Alcotest.(check bool) "normalised to size-1 App accesses" true
    (events
    = [ Event.read 0x10 1; Event.write 0x20 1; Event.read 0x30 1;
        Event.write 0x40 1 ])

let test_text_wide_address () =
  (* Addresses past 2^32 must survive; cachetrace captures from 64-bit
     processes routinely carry them. *)
  let n, events = read_events Trace.Source.Text "R 0x1deadbeef0\n" in
  Alcotest.(check int) "count" 1 n;
  Alcotest.(check bool) "64-bit address" true
    (events = [ Event.read 0x1deadbeef0 1 ])

let test_text_errors_locate_line () =
  let msg =
    failure_of (fun () -> read_events Trace.Source.Text "R 0x10\nbogus\n")
  in
  Alcotest.(check bool) "bad op names line 2" true (contains msg "line 2");
  let msg =
    failure_of (fun () -> read_events Trace.Source.Text "R 0x10\nW\n")
  in
  Alcotest.(check bool) "missing address names line 2" true
    (contains msg "line 2");
  let msg =
    failure_of (fun () ->
        read_events Trace.Source.Text "R 0xffffffffffffffffff\n")
  in
  Alcotest.(check bool) "overflow detected" true (contains msg "overflow")

let test_csv_roundtrip () =
  let csv = "index,op,address\n0,R,0x1000\n1,W,0x2000\n" in
  let n, events = read_events Trace.Source.Csv csv in
  Alcotest.(check int) "count" 2 n;
  Alcotest.(check bool) "events" true
    (events = [ Event.read 0x1000 1; Event.write 0x2000 1 ]);
  let out =
    Trace.write Trace.Source.Csv (fun sink ->
        ignore (Trace.read Trace.Source.Csv csv sink))
  in
  Alcotest.(check string) "csv write reproduces the capture" csv out;
  let msg =
    failure_of (fun () -> read_events Trace.Source.Csv "0,R,0x1000\n")
  in
  Alcotest.(check bool) "missing header rejected" true
    (contains msg "header")

let test_framed_roundtrip () =
  (* Framed is lossless: sizes and sources survive, unlike text/CSV. *)
  let events =
    [ Event.read 0x1000 4;
      Event.write ~source:Event.Malloc 0x1004 48;
      Event.read ~source:Event.Free 0x0ff0 2 ]
  in
  let framed =
    Trace.write Trace.Source.Framed (fun sink ->
        List.iter sink.Sink.emit events)
  in
  let n, back = read_events Trace.Source.Framed framed in
  Alcotest.(check int) "count" (List.length events) n;
  Alcotest.(check bool) "events identical" true (back = events);
  (* A flipped byte in the body is caught by the frame CRC. *)
  let b = Bytes.of_string framed in
  Bytes.set b (Bytes.length b - 9) '\xff';
  Alcotest.(check bool) "corruption detected" true
    (match read_events Trace.Source.Framed (Bytes.to_string b) with
    | exception Failure _ -> true
    | _ -> false)

let test_source_sniff () =
  let check what fmt data =
    Alcotest.(check string) what
      (Trace.Source.format_to_string fmt)
      (Trace.Source.format_to_string (Trace.Source.sniff data))
  in
  check "binary magic" Trace.Source.Binary
    (Trace_file.record_to_string (fun _ -> ()));
  check "framed magic" Trace.Source.Framed
    (Trace.write Trace.Source.Framed (fun _ -> ()));
  check "csv header" Trace.Source.Csv "index,op,address\r\n0,R,0x1\n";
  check "anything else is text" Trace.Source.Text "R 0x10\n";
  Alcotest.(check bool) "format_of_string is case-insensitive" true
    (Trace.Source.format_of_string "CSV" = Ok Trace.Source.Csv);
  Alcotest.(check bool) "unknown format is a typed error" true
    (match Trace.Source.format_of_string "elf" with
    | Error _ -> true
    | Ok _ -> false)

let prop_text_csv_text_roundtrip =
  (* text -> packed -> CSV -> packed -> text is the identity on
     canonically rendered captures. *)
  QCheck.Test.make ~name:"text -> csv -> text roundtrip" ~count:200
    QCheck.(small_list (pair bool (int_bound 0x3fff_ffff_ffff)))
    (fun accesses ->
      let text =
        Trace.write Trace.Source.Text (fun sink ->
            List.iter
              (fun (w, addr) ->
                sink.Sink.emit
                  (if w then Event.write addr 1 else Event.read addr 1))
              accesses)
      in
      let csv =
        Trace.write Trace.Source.Csv (fun sink ->
            ignore (Trace.read Trace.Source.Text text sink))
      in
      let text2 =
        Trace.write Trace.Source.Text (fun sink ->
            ignore (Trace.read Trace.Source.Csv csv sink))
      in
      text2 = text)

(* ------------------------------------------------------------------ *)
(* Packed events: codec, batches, and packed-vs-boxed differentials   *)
(* ------------------------------------------------------------------ *)

(* Full-width event generator: the codec must round-trip the entire
   kind x source x size x addr domain, not just cache-suite sizes. *)
let wide_event_gen = Testkit.Gen.event_gen ~addr_bound:1_000_000_000 ~max_size:1_000_000 ()

let prop_packed_roundtrip =
  QCheck.Test.make ~name:"packed codec roundtrip" ~count:1000
    (QCheck.make wide_event_gen)
    (fun e ->
      let meta = Event.Packed.meta_of_event e in
      Event.Packed.to_event ~addr:e.Event.addr ~meta = e
      && Event.Packed.kind meta = e.Event.kind
      && Event.Packed.source meta = e.Event.source
      && Event.Packed.size meta = e.Event.size)

let test_packed_meta_layout () =
  (* The layout is load-bearing: it must equal the word Checksum mixes
     (size lsl 3 | kind lsl 2 | source). *)
  check_int "write/free/5" ((5 lsl 3) lor 4 lor 2)
    (Event.Packed.meta ~kind:Event.Write ~source:Event.Free ~size:5);
  check_int "read/app/1" (1 lsl 3)
    (Event.Packed.meta ~kind:Event.Read ~source:Event.App ~size:1);
  (* ks = ki*3 + si, the 6-cell counter layout. *)
  let ks kind source =
    Event.Packed.ks (Event.Packed.meta ~kind ~source ~size:4)
  in
  check_int "R/app" 0 (ks Event.Read Event.App);
  check_int "R/malloc" 1 (ks Event.Read Event.Malloc);
  check_int "R/free" 2 (ks Event.Read Event.Free);
  check_int "W/app" 3 (ks Event.Write Event.App);
  check_int "W/malloc" 4 (ks Event.Write Event.Malloc);
  check_int "W/free" 5 (ks Event.Write Event.Free)

let test_batch_basics () =
  let b = Event.Batch.create ~capacity:2 () in
  check_int "empty" 0 (Event.Batch.length b);
  let e1 = Event.read 0x1000 4 and e2 = Event.write ~source:Event.Malloc 0x2000 8 in
  Event.Batch.push_event b e1;
  Event.Batch.push_event b e2;
  Event.Batch.push b ~addr:0x3000 ~meta:(Event.Packed.meta ~kind:Event.Read ~source:Event.Free ~size:2);
  (* grew past capacity 2 *)
  check_int "three events" 3 (Event.Batch.length b);
  check_bool "get 0" true (Event.Batch.get b 0 = e1);
  check_bool "get 1" true (Event.Batch.get b 1 = e2);
  check_bool "to_list" true
    (Event.Batch.to_list b = [ e1; e2; Event.read ~source:Event.Free 0x3000 2 ]);
  let b2 = Event.Batch.create () in
  Event.Batch.append b2 b;
  Event.Batch.append b2 b;
  check_int "append" 6 (Event.Batch.length b2);
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Event.Batch.get: out of bounds") (fun () ->
      ignore (Event.Batch.get b 3));
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Event.Batch.create: capacity must be >= 1") (fun () ->
      ignore (Event.Batch.create ~capacity:0 ()))

(* Deliver [events] to [sink] as packed batches of [grain] events. *)
let deliver_packed ?(grain = 7) sink events =
  let b = Event.Batch.create () in
  let rec go = function
    | [] -> if Event.Batch.length b > 0 then Sink.emit_packed_batch sink b
    | e :: rest ->
        Event.Batch.push_event b e;
        if Event.Batch.length b = grain then begin
          Sink.emit_packed_batch sink b;
          Event.Batch.clear b
        end;
        go rest
  in
  go events

let counter_cells c =
  Sink.Counter.
    [ total c; reads c; writes c; bytes c;
      by_source c Event.App; by_source c Event.Malloc; by_source c Event.Free ]

let prop_packed_counter_checksum_differential =
  (* The satellite differential: packed deliveries of a random trace
     must leave Counter and Checksum in exactly the state boxed
     per-event deliveries do. *)
  QCheck.Test.make
    ~name:"packed Counter/Checksum equal boxed on random traces" ~count:300
    (QCheck.make (Testkit.Gen.events_gen ()))
    (fun events ->
      let cb = Sink.Counter.create () and cp = Sink.Counter.create () in
      let hb = Sink.Checksum.create () and hp = Sink.Checksum.create () in
      List.iter (Sink.Counter.sink cb).Sink.emit events;
      List.iter (Sink.Checksum.sink hb).Sink.emit events;
      deliver_packed (Sink.Counter.sink cp) events;
      deliver_packed (Sink.Checksum.sink hp) events;
      counter_cells cb = counter_cells cp
      && Sink.Checksum.value hb = Sink.Checksum.value hp)

let test_recorder_packed_batch () =
  (* The packed path blits whole batches and counts the overflow. *)
  let r = Sink.Recorder.create ~capacity:5 () in
  let s = Sink.Recorder.sink r in
  let evs = List.init 8 (fun i -> Event.read (0x1000 + (4 * i)) 4) in
  deliver_packed ~grain:3 s evs;
  check_int "kept capacity" 5 (List.length (Sink.Recorder.events r));
  check_int "dropped counted" 3 (Sink.Recorder.dropped r);
  check_bool "prefix retained in order" true
    (Sink.Recorder.events r = List.filteri (fun i _ -> i < 5) evs)

let test_filter_fanout_no_alias () =
  (* A filter compacts into its own scratch: a sibling consumer of the
     same shared batch must still see the full, unmodified stream, and
     the producer's batch must come back untouched. *)
  let pred (e : Event.t) = e.source = Event.App in
  let a = Sink.Recorder.create () and b = Sink.Recorder.create () in
  let fan =
    Sink.fanout
      [ Sink.filter pred (Sink.Recorder.sink a); Sink.Recorder.sink b ]
  in
  let evs =
    [ Event.read 0x1000 4;
      Event.write ~source:Event.Malloc 0x2000 4;
      Event.read ~source:Event.Free 0x3000 4;
      Event.write 0x4000 8 ]
  in
  let batch = Event.Batch.create () in
  List.iter (Event.Batch.push_event batch) evs;
  let before = Event.Batch.copy batch in
  Sink.emit_packed_batch fan batch;
  check_bool "filtered side" true
    (Sink.Recorder.events a = List.filter pred evs);
  check_bool "sibling sees full stream" true (Sink.Recorder.events b = evs);
  check_bool "shared batch unmodified" true
    (Event.Batch.to_list batch = Event.Batch.to_list before);
  (* Same guarantee on the boxed batch path. *)
  let a2 = Sink.Recorder.create () and b2 = Sink.Recorder.create () in
  let fan2 =
    Sink.fanout
      [ Sink.filter pred (Sink.Recorder.sink a2); Sink.Recorder.sink b2 ]
  in
  let arr = Array.of_list evs in
  Sink.Compat.emit_batch fan2 arr ~len:(Array.length arr);
  check_bool "boxed: filtered side" true
    (Sink.Recorder.events a2 = List.filter pred evs);
  check_bool "boxed: sibling full" true (Sink.Recorder.events b2 = evs);
  check_bool "boxed: caller array unmodified" true
    (Array.to_list arr = evs)

let test_make_packed_boxed_shim () =
  (* make_packed consumers must see boxed deliveries as packed ones. *)
  let seen = ref [] in
  let s =
    Sink.make_packed ~emit_packed_batch:(fun b ->
        seen := !seen @ Event.Batch.to_list b)
  in
  let e1 = Event.read 0x1000 4 and e2 = Event.write 0x2000 8 in
  s.Sink.emit e1;
  Sink.Compat.emit_batch s [| e2; e1 |] ~len:2;
  check_bool "boxed deliveries arrive packed" true (!seen = [ e1; e2; e1 ])

let test_trace_buffer_roundtrip () =
  (* Tiny chunks force rotation; mixed delivery paths must concatenate
     in order, and replay must reproduce the stream. *)
  let tb = Trace_buffer.create ~chunk_capacity:4 () in
  let s = Trace_buffer.sink tb in
  let evs = List.init 23 (fun i ->
      if i mod 3 = 0 then Event.write ~source:Event.Malloc (0x1000 + (4 * i)) 4
      else Event.read (0x1000 + (4 * i)) 4)
  in
  (match evs with
  | e0 :: e1 :: rest ->
      s.Sink.emit e0;
      Sink.Compat.emit_batch s [| e1 |] ~len:1;
      deliver_packed ~grain:6 s rest
  | _ -> assert false);
  check_int "length" 23 (Trace_buffer.length tb);
  check_bool "events in order" true (Trace_buffer.events tb = evs);
  let r = Sink.Recorder.create () in
  Trace_buffer.replay tb (Sink.Recorder.sink r);
  check_bool "replay reproduces stream" true (Sink.Recorder.events r = evs);
  check_bool "chunk sizes" true
    (Array.for_all (fun c -> Event.Batch.length c <= 4) (Trace_buffer.chunks tb))

let test_mem_internal_batching () =
  (* Sim_memory batches internally: under one batch nothing is
     delivered until flush; at the 256-event grain it auto-flushes. *)
  let c = Sink.Counter.create () in
  let m = Sim_memory.create ~sink:(Sink.Counter.sink c) () in
  for i = 0 to 9 do
    Sim_memory.store m (0x1000 + (4 * i)) i
  done;
  check_int "buffered, not yet visible" 0 (Sink.Counter.total c);
  Sim_memory.flush m;
  check_int "visible after flush" 10 (Sink.Counter.total c);
  for i = 0 to 255 do
    Sim_memory.store m (0x2000 + (4 * i)) i
  done;
  check_int "auto-flushed at batch grain" 266 (Sink.Counter.total c);
  (* set_sink flushes pending events to the OLD sink. *)
  let old_total = Sink.Counter.total c in
  Sim_memory.store m 0x9000 1;
  let c2 = Sink.Counter.create () in
  Sim_memory.set_sink m (Sink.Counter.sink c2);
  check_int "pending flushed to old sink" (old_total + 1) (Sink.Counter.total c);
  Sim_memory.store m 0x9004 1;
  Sim_memory.flush m;
  check_int "new sink gets later events" 1 (Sink.Counter.total c2)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "memsim"
    [
      ( "addr",
        [
          Alcotest.test_case "align_up" `Quick test_addr_align_up;
          Alcotest.test_case "align_down" `Quick test_addr_align_down;
          Alcotest.test_case "predicates" `Quick test_addr_predicates;
          Alcotest.test_case "indices" `Quick test_addr_indices;
        ]
        @ qsuite [ prop_align_up_is_aligned; prop_align_down_is_aligned ] );
      ( "event",
        [
          Alcotest.test_case "constructors" `Quick test_event_constructors;
          Alcotest.test_case "pp" `Quick test_event_pp;
        ] );
      ( "sink",
        [
          Alcotest.test_case "counter" `Quick test_sink_counter;
          Alcotest.test_case "fanout" `Quick test_sink_fanout;
          Alcotest.test_case "fanout three" `Quick test_sink_fanout_three;
          Alcotest.test_case "filter" `Quick test_sink_filter;
          Alcotest.test_case "filter batch" `Quick test_sink_filter_batch;
          Alcotest.test_case "counter reset" `Quick test_sink_counter_reset;
          Alcotest.test_case "recorder" `Quick test_sink_recorder;
          Alcotest.test_case "recorder dropped" `Quick
            test_sink_recorder_dropped;
          Alcotest.test_case "recorder rejects" `Quick
            test_sink_recorder_rejects;
          Alcotest.test_case "batcher equivalence" `Quick
            test_sink_batcher_equivalence;
          Alcotest.test_case "batcher rejects" `Quick test_sink_batcher_rejects;
        ] );
      ( "region",
        [
          Alcotest.test_case "extend" `Quick test_region_extend;
          Alcotest.test_case "contains" `Quick test_region_contains;
          Alcotest.test_case "overflow" `Quick test_region_overflow;
          Alcotest.test_case "layout disjoint" `Quick test_layout_disjoint;
        ] );
      ( "trace_file",
        [
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "rejects foreign" `Quick
            test_trace_rejects_foreign;
          Alcotest.test_case "truncation detected" `Quick
            test_trace_truncation_detected;
          Alcotest.test_case "compactness" `Quick test_trace_compactness;
          Alcotest.test_case "corrupt flags located" `Quick
            test_trace_corrupt_offset;
          Alcotest.test_case "truncated event located" `Quick
            test_trace_truncated_offset;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_trace_roundtrip_random ]
      );
      ( "trace_sources",
        [
          Alcotest.test_case "empty text" `Quick test_text_empty;
          Alcotest.test_case "crlf and mixed case" `Quick
            test_text_crlf_mixed_case;
          Alcotest.test_case "wide address" `Quick test_text_wide_address;
          Alcotest.test_case "errors locate line" `Quick
            test_text_errors_locate_line;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "framed roundtrip" `Quick test_framed_roundtrip;
          Alcotest.test_case "sniff" `Quick test_source_sniff;
        ]
        @ qsuite [ prop_text_csv_text_roundtrip ] );
      ( "sim_memory",
        [
          Alcotest.test_case "load/store" `Quick test_mem_load_store;
          Alcotest.test_case "emits events" `Quick test_mem_emits_events;
          Alcotest.test_case "source attribution" `Quick
            test_mem_source_attribution;
          Alcotest.test_case "with_source restores on raise" `Quick
            test_mem_with_source_restores_on_raise;
          Alcotest.test_case "ranged word grain" `Quick
            test_mem_ranged_word_grain;
          Alcotest.test_case "ranged zero" `Quick test_mem_ranged_zero;
          Alcotest.test_case "peek/poke silent" `Quick
            test_mem_peek_poke_silent;
          Alcotest.test_case "rejects unaligned" `Quick
            test_mem_rejects_unaligned;
        ]
        @ qsuite [ prop_ranged_covers_exactly; prop_store_load_roundtrip ] );
      ( "packed",
        [
          Alcotest.test_case "meta layout" `Quick test_packed_meta_layout;
          Alcotest.test_case "batch basics" `Quick test_batch_basics;
          Alcotest.test_case "recorder packed batch" `Quick
            test_recorder_packed_batch;
          Alcotest.test_case "filter in fanout does not alias siblings"
            `Quick test_filter_fanout_no_alias;
          Alcotest.test_case "make_packed boxed shim" `Quick
            test_make_packed_boxed_shim;
          Alcotest.test_case "trace buffer roundtrip" `Quick
            test_trace_buffer_roundtrip;
          Alcotest.test_case "sim_memory internal batching" `Quick
            test_mem_internal_batching;
        ]
        @ qsuite
            [ prop_packed_roundtrip;
              prop_packed_counter_checksum_differential ] );
    ]
