(* Tests for the virtual-memory simulator: Fenwick tree, Mattson LRU
   stack distances (validated against a naive oracle), and the page-fault
   curve machinery. *)

open Vmsim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Fenwick                                                            *)
(* ------------------------------------------------------------------ *)

let test_fenwick_basic () =
  let f = Fenwick.create 10 in
  check_int "empty prefix" 0 (Fenwick.prefix_sum f 9);
  Fenwick.add f 3 5;
  Fenwick.add f 7 2;
  check_int "prefix to 2" 0 (Fenwick.prefix_sum f 2);
  check_int "prefix to 3" 5 (Fenwick.prefix_sum f 3);
  check_int "prefix to 9" 7 (Fenwick.prefix_sum f 9);
  check_int "range 4..7" 2 (Fenwick.range_sum f ~lo:4 ~hi:7);
  check_int "range 0..3" 5 (Fenwick.range_sum f ~lo:0 ~hi:3);
  check_int "empty range" 0 (Fenwick.range_sum f ~lo:5 ~hi:4);
  check_int "total" 7 (Fenwick.total f)

let test_fenwick_negative_delta () =
  let f = Fenwick.create 4 in
  Fenwick.add f 1 3;
  Fenwick.add f 1 (-3);
  check_int "cancelled" 0 (Fenwick.total f)

let test_fenwick_clear () =
  let f = Fenwick.create 4 in
  Fenwick.add f 0 1;
  Fenwick.add f 3 1;
  Fenwick.clear f;
  check_int "cleared" 0 (Fenwick.total f)

let test_fenwick_prefix_negative_index () =
  let f = Fenwick.create 4 in
  Fenwick.add f 0 1;
  check_int "prefix of -1 is 0" 0 (Fenwick.prefix_sum f (-1))

let prop_fenwick_matches_array =
  QCheck.Test.make ~name:"fenwick matches naive array" ~count:300
    QCheck.(small_list (pair (int_bound 63) (int_range (-5) 5)))
    (fun updates ->
      let n = 64 in
      let f = Fenwick.create n in
      let arr = Array.make n 0 in
      List.iter
        (fun (i, d) ->
          Fenwick.add f i d;
          arr.(i) <- arr.(i) + d)
        updates;
      let ok = ref true in
      for i = 0 to n - 1 do
        let naive = Array.fold_left ( + ) 0 (Array.sub arr 0 (i + 1)) in
        if Fenwick.prefix_sum f i <> naive then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Lru_stack                                                          *)
(* ------------------------------------------------------------------ *)

let test_stack_cold_then_hit () =
  let s = Lru_stack.create () in
  check_bool "first access cold" true (Lru_stack.access s 1 = None);
  check_bool "immediate repeat distance 1" true
    (Lru_stack.access s 1 = Some 1);
  check_int "one cold" 1 (Lru_stack.cold s);
  check_int "two accesses" 2 (Lru_stack.accesses s);
  check_int "one distinct" 1 (Lru_stack.distinct s)

let test_stack_distance_counts_distinct () =
  let s = Lru_stack.create () in
  ignore (Lru_stack.access s 1);
  ignore (Lru_stack.access s 2);
  ignore (Lru_stack.access s 3);
  (* 1 was pushed down by 2 and 3: stack position 3. *)
  check_bool "distance 3" true (Lru_stack.access s 1 = Some 3)

let test_stack_distance_ignores_repeats () =
  let s = Lru_stack.create () in
  ignore (Lru_stack.access s 1);
  ignore (Lru_stack.access s 2);
  ignore (Lru_stack.access s 2);
  ignore (Lru_stack.access s 2);
  (* Only one distinct key (2) between the accesses of 1. *)
  check_bool "distance 2" true (Lru_stack.access s 1 = Some 2)

let test_stack_misses_at () =
  let s = Lru_stack.create () in
  (* Cyclic pattern over 3 keys: 1 2 3 1 2 3 — distances of the second
     round are all 3. *)
  List.iter (fun k -> ignore (Lru_stack.access s k)) [ 1; 2; 3; 1; 2; 3 ];
  check_int "capacity 3 holds all" 3 (Lru_stack.misses_at s ~capacity:3);
  check_int "capacity 2 misses everything" 6
    (Lru_stack.misses_at s ~capacity:2);
  check_int "capacity 10 only cold" 3 (Lru_stack.misses_at s ~capacity:10)

let test_stack_miss_curve_monotone () =
  let s = Lru_stack.create () in
  let keys = [ 1; 2; 3; 4; 1; 3; 2; 4; 4; 3; 2; 1; 1; 2 ] in
  List.iter (fun k -> ignore (Lru_stack.access s k)) keys;
  let curve = Lru_stack.miss_curve s ~capacities:[ 1; 2; 3; 4; 5 ] in
  let rec non_increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && non_increasing rest
    | _ -> true
  in
  check_bool "miss curve non-increasing" true (non_increasing curve)

let test_stack_histogram () =
  let s = Lru_stack.create () in
  List.iter (fun k -> ignore (Lru_stack.access s k)) [ 1; 1; 2; 1 ];
  let h = Lru_stack.histogram s in
  check_int "distance-1 count" 1 h.(1);
  check_int "distance-2 count" 1 h.(2)

let test_stack_compaction () =
  (* Tiny initial capacity forces many compactions; results must be
     unaffected. *)
  let s = Lru_stack.create ~initial_capacity:8 () in
  let naive = Naive_lru.create () in
  let rng = ref 12345 in
  let next_key () =
    rng := (!rng * 1103515245) + 12345;
    (!rng lsr 8) land 15
  in
  for _ = 1 to 2000 do
    let k = next_key () in
    let a = Lru_stack.access s k in
    let b = Naive_lru.access naive k in
    if a <> b then
      Alcotest.failf "divergence: fast=%s naive=%s"
        (match a with None -> "cold" | Some d -> string_of_int d)
        (match b with None -> "cold" | Some d -> string_of_int d)
  done;
  for cap = 1 to 16 do
    check_int
      (Printf.sprintf "misses at %d" cap)
      (Naive_lru.misses_at naive ~capacity:cap)
      (Lru_stack.misses_at s ~capacity:cap)
  done

let prop_stack_matches_naive =
  QCheck.Test.make ~name:"stack distances match naive LRU" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 300) (int_bound 25))
    (fun keys ->
      let s = Lru_stack.create ~initial_capacity:16 () in
      let naive = Naive_lru.create () in
      List.for_all
        (fun k -> Lru_stack.access s k = Naive_lru.access naive k)
        keys)

let prop_stack_miss_counts_match_naive =
  QCheck.Test.make ~name:"miss counts match naive at all capacities"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_bound 12))
    (fun keys ->
      let s = Lru_stack.create ~initial_capacity:16 () in
      let naive = Naive_lru.create () in
      List.iter
        (fun k ->
          ignore (Lru_stack.access s k);
          ignore (Naive_lru.access naive k))
        keys;
      List.for_all
        (fun cap ->
          Lru_stack.misses_at s ~capacity:cap
          = Naive_lru.misses_at naive ~capacity:cap)
        [ 1; 2; 3; 5; 8; 13 ])

let prop_stack_cold_equals_distinct =
  QCheck.Test.make ~name:"cold count equals distinct keys" ~count:200
    QCheck.(small_list (int_bound 50))
    (fun keys ->
      let s = Lru_stack.create () in
      List.iter (fun k -> ignore (Lru_stack.access s k)) keys;
      Lru_stack.cold s = Lru_stack.distinct s
      && Lru_stack.distinct s = List.length (List.sort_uniq compare keys))

(* ------------------------------------------------------------------ *)
(* Page_sim                                                           *)
(* ------------------------------------------------------------------ *)

let feed_addrs ps addrs =
  let sink = Page_sim.sink ps in
  List.iter (fun a -> sink.Memsim.Sink.emit (Memsim.Event.read a 4)) addrs

let test_pagesim_basic () =
  let ps = Page_sim.create () in
  feed_addrs ps [ 0; 100; 4096; 8192; 0 ];
  check_int "references" 5 (Page_sim.references ps);
  check_int "distinct pages" 3 (Page_sim.distinct_pages ps);
  check_int "footprint" (3 * 4096) (Page_sim.footprint_bytes ps)

let test_pagesim_fault_counts () =
  let ps = Page_sim.create () in
  (* Pages 0 1 2 0 1 2: with 3 pages of memory only 3 cold faults; with
     2 pages everything misses. *)
  feed_addrs ps [ 0; 4096; 8192; 0; 4096; 8192 ];
  check_int "3 pages: cold only" 3 (Page_sim.faults ps ~memory_bytes:(3 * 4096));
  check_int "2 pages: all faults" 6
    (Page_sim.faults ps ~memory_bytes:(2 * 4096));
  Alcotest.(check (float 1e-9))
    "fault rate" 0.5
    (Page_sim.fault_rate ps ~memory_bytes:(3 * 4096))

let test_pagesim_same_page_collapse () =
  let ps = Page_sim.create () in
  (* Many touches of one page: 1 fault regardless of memory size. *)
  feed_addrs ps (List.init 100 (fun i -> i * 4));
  check_int "one fault" 1 (Page_sim.faults ps ~memory_bytes:4096);
  check_int "all references counted" 100 (Page_sim.references ps)

let test_pagesim_event_spanning_pages () =
  let ps = Page_sim.create () in
  let sink = Page_sim.sink ps in
  sink.Memsim.Sink.emit (Memsim.Event.read 4090 16);
  (* crosses a page boundary *)
  check_int "two pages touched" 2 (Page_sim.distinct_pages ps);
  check_int "one reference" 1 (Page_sim.references ps)

let test_pagesim_curve () =
  let ps = Page_sim.create () in
  (* Cycle 8 pages. *)
  for _pass = 1 to 4 do
    for p = 0 to 7 do
      feed_addrs ps [ p * 4096 ]
    done
  done;
  let curve =
    Page_sim.fault_rate_curve ps
      ~memory_sizes:[ 4 * 4096; 8 * 4096; 16 * 4096 ]
  in
  (match curve with
  | [ (_, r4); (_, r8); (_, r16) ] ->
      check_bool "thrash at 4 pages" true (r4 = 1.0);
      check_bool "cold only at 8 pages" true (r8 = 0.25);
      check_bool "cold only at 16 pages" true (r16 = 0.25)
  | _ -> Alcotest.fail "expected three points");
  check_bool "min one page" true (Page_sim.faults ps ~memory_bytes:100 > 0)

let test_pagesim_rejects_bad_page_size () =
  check_bool "bad page size" true
    (match Page_sim.create ~page_bytes:1000 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pagesim_packed_matches_boxed () =
  (* Packed deliveries must land on the same stack state as boxed. *)
  let events =
    List.init 500 (fun i ->
        Memsim.Event.read ((i * 1321) mod 50_000) (1 + (i mod 70)))
  in
  let boxed = Page_sim.create () in
  List.iter (fun e -> (Page_sim.sink boxed).Memsim.Sink.emit e) events;
  let packed = Page_sim.create () in
  let b = Memsim.Event.Batch.create () in
  List.iter
    (fun e ->
      Memsim.Event.Batch.push_event b e;
      if Memsim.Event.Batch.length b = 9 then begin
        Memsim.Sink.emit_packed_batch (Page_sim.sink packed) b;
        Memsim.Event.Batch.clear b
      end)
    events;
  if Memsim.Event.Batch.length b > 0 then
    Memsim.Sink.emit_packed_batch (Page_sim.sink packed) b;
  check_int "references" (Page_sim.references boxed) (Page_sim.references packed);
  check_int "distinct pages" (Page_sim.distinct_pages boxed)
    (Page_sim.distinct_pages packed);
  List.iter
    (fun mb ->
      check_int
        (Printf.sprintf "faults at %d" mb)
        (Page_sim.faults boxed ~memory_bytes:mb)
        (Page_sim.faults packed ~memory_bytes:mb))
    [ 4096; 8 * 4096; 64 * 4096 ]

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "vmsim"
    [
      ( "fenwick",
        [
          Alcotest.test_case "basic" `Quick test_fenwick_basic;
          Alcotest.test_case "negative delta" `Quick
            test_fenwick_negative_delta;
          Alcotest.test_case "clear" `Quick test_fenwick_clear;
          Alcotest.test_case "prefix of -1" `Quick
            test_fenwick_prefix_negative_index;
        ]
        @ qsuite [ prop_fenwick_matches_array ] );
      ( "lru_stack",
        [
          Alcotest.test_case "cold then hit" `Quick test_stack_cold_then_hit;
          Alcotest.test_case "distance counts distinct" `Quick
            test_stack_distance_counts_distinct;
          Alcotest.test_case "distance ignores repeats" `Quick
            test_stack_distance_ignores_repeats;
          Alcotest.test_case "misses_at" `Quick test_stack_misses_at;
          Alcotest.test_case "miss curve monotone" `Quick
            test_stack_miss_curve_monotone;
          Alcotest.test_case "histogram" `Quick test_stack_histogram;
          Alcotest.test_case "compaction preserves results" `Quick
            test_stack_compaction;
        ]
        @ qsuite
            [
              prop_stack_matches_naive;
              prop_stack_miss_counts_match_naive;
              prop_stack_cold_equals_distinct;
            ] );
      ( "page_sim",
        [
          Alcotest.test_case "basic" `Quick test_pagesim_basic;
          Alcotest.test_case "fault counts" `Quick test_pagesim_fault_counts;
          Alcotest.test_case "same page collapse" `Quick
            test_pagesim_same_page_collapse;
          Alcotest.test_case "event spanning pages" `Quick
            test_pagesim_event_spanning_pages;
          Alcotest.test_case "curve" `Quick test_pagesim_curve;
          Alcotest.test_case "rejects bad page size" `Quick
            test_pagesim_rejects_bad_page_size;
          Alcotest.test_case "packed equals boxed" `Quick
            test_pagesim_packed_matches_boxed;
        ] );
    ]
