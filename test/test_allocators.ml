(* Tests for the allocator framework and all allocator implementations:
   hand-worked scenarios per allocator, plus a randomized malloc/free
   harness with full invariant checking run against every allocator in
   the registry. *)

open Allocators

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh_heap () = Heap.create ()

let counted_heap () =
  let c = Memsim.Sink.Counter.create () in
  let heap = Heap.create ~sink:(Memsim.Sink.Counter.sink c) () in
  (heap, c)

(* ------------------------------------------------------------------ *)
(* Cost                                                               *)
(* ------------------------------------------------------------------ *)

let test_cost_phases () =
  let c = Cost.create () in
  Cost.charge c 10;
  Cost.set_phase c Cost.Malloc;
  Cost.charge c 5;
  Cost.set_phase c Cost.Free;
  Cost.charge c 3;
  check_int "app" 10 (Cost.app c);
  check_int "malloc" 5 (Cost.malloc c);
  check_int "free" 3 (Cost.free c);
  check_int "total" 18 (Cost.total c);
  check_int "allocator total" 8 (Cost.allocator_total c);
  Alcotest.(check (float 1e-9))
    "fraction" (8. /. 18.)
    (Cost.allocator_fraction c)

let test_cost_empty_fraction () =
  Alcotest.(check (float 0.)) "empty" 0.
    (Cost.allocator_fraction (Cost.create ()))

(* ------------------------------------------------------------------ *)
(* Heap                                                               *)
(* ------------------------------------------------------------------ *)

let test_heap_load_store_costs () =
  let heap = fresh_heap () in
  let a = Heap.sbrk heap 64 in
  Heap.store heap a 42;
  check_int "reads back" 42 (Heap.load heap a);
  (* sbrk overhead + 1 store + 1 load *)
  check_int "instructions"
    (Heap.sbrk_instructions + 2)
    (Cost.total (Heap.cost heap))

let test_heap_phase_attribution () =
  let heap, c = counted_heap () in
  let a = Heap.sbrk heap 64 in
  Heap.with_phase heap Cost.Malloc (fun () -> Heap.store heap a 1);
  Heap.with_phase heap Cost.Free (fun () -> ignore (Heap.load heap a));
  Heap.flush_trace heap;
  check_int "malloc events" 1
    (Memsim.Sink.Counter.by_source c Memsim.Event.Malloc);
  check_int "free events" 1
    (Memsim.Sink.Counter.by_source c Memsim.Event.Free);
  check_int "malloc instrs" 1 (Cost.malloc (Heap.cost heap));
  check_int "free instrs" 1 (Cost.free (Heap.cost heap))

let test_heap_regions_disjoint () =
  let heap = fresh_heap () in
  let s = Heap.alloc_static heap 128 in
  let h = Heap.sbrk heap 128 in
  check_bool "static below heap" true (s < h);
  check_bool "static in static region" true
    (Memsim.Region.contains (Heap.static_region heap) s);
  check_bool "heap addr in heap region" true
    (Memsim.Region.contains (Heap.heap_region heap) h)

let test_heap_page_aligned_base () =
  let heap = fresh_heap () in
  let h = Heap.sbrk heap 8 in
  check_int "heap base page-aligned" 0 (h mod 4096)

(* ------------------------------------------------------------------ *)
(* Allocator framework                                                *)
(* ------------------------------------------------------------------ *)

let test_framework_misuse () =
  let heap = fresh_heap () in
  let alloc = Registry.build "bsd" heap in
  let a = Allocator.malloc alloc 16 in
  Allocator.free alloc a;
  check_bool "double free rejected" true
    (match Allocator.free alloc a with
    | exception Allocator.Allocator_misuse _ -> true
    | () -> false);
  check_bool "unknown free rejected" true
    (match Allocator.free alloc 0x4 with
    | exception Allocator.Allocator_misuse _ -> true
    | () -> false)

let test_framework_stats () =
  let heap = fresh_heap () in
  let alloc = Registry.build "bsd" heap in
  let a = Allocator.malloc alloc 10 in
  let b = Allocator.malloc alloc 20 in
  Allocator.free alloc a;
  let st = Allocator.stats alloc in
  check_int "mallocs" 2 st.Alloc_stats.malloc_calls;
  check_int "frees" 1 st.Alloc_stats.free_calls;
  check_int "requested" 30 st.Alloc_stats.bytes_requested;
  check_int "live bytes" 20 st.Alloc_stats.live_bytes;
  check_int "max live" 30 st.Alloc_stats.max_live_bytes;
  check_int "live objects" 1 st.Alloc_stats.live_objects;
  ignore b;
  check_bool "granted >= requested" true
    (st.Alloc_stats.bytes_granted >= st.Alloc_stats.bytes_requested)

let test_framework_rejects_zero () =
  let heap = fresh_heap () in
  let alloc = Registry.build "quickfit" heap in
  check_bool "zero size rejected" true
    (match Allocator.malloc alloc 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Realloc                                                            *)
(* ------------------------------------------------------------------ *)

let test_realloc_in_place_same_class () =
  (* BSD: 20 and 24 bytes share the 32-byte class -> no move. *)
  let heap = fresh_heap () in
  let alloc = Registry.build "bsd" heap in
  let a = Allocator.malloc alloc 20 in
  let b = Allocator.realloc alloc a 24 in
  check_int "same address" a b;
  let st = Allocator.stats alloc in
  check_int "one realloc" 1 st.Alloc_stats.realloc_calls;
  check_int "no moves" 0 st.Alloc_stats.realloc_moves;
  check_bool "size updated" true (Allocator.live_size alloc a = Some 24);
  Allocator.free alloc b;
  Allocator.check alloc

let test_realloc_moves_across_classes () =
  let heap = fresh_heap () in
  let alloc = Registry.build "bsd" heap in
  let a = Allocator.malloc alloc 24 in
  let b = Allocator.realloc alloc a 100 in
  check_bool "moved" true (a <> b);
  let st = Allocator.stats alloc in
  check_int "one move" 1 st.Alloc_stats.realloc_moves;
  check_bool "old address is dead" true (Allocator.live_size alloc a = None);
  check_bool "new address live" true (Allocator.live_size alloc b = Some 100);
  (* The old block went back to its freelist: a same-class malloc
     reuses it. *)
  let c = Allocator.malloc alloc 24 in
  check_int "old block recycled" a c;
  Allocator.free alloc b;
  Allocator.free alloc c;
  Allocator.check alloc

let test_realloc_copy_traffic () =
  let heap, counter = counted_heap () in
  let alloc = Registry.build "quickfit" heap in
  let a = Allocator.malloc alloc 32 in
  Heap.flush_trace heap;
  Memsim.Sink.Counter.reset counter;
  let b = Allocator.realloc alloc a 4096 in
  Heap.flush_trace heap;
  check_bool "moved" true (a <> b);
  (* The copy reads 32 bytes and writes 32 bytes: at least 16 events
     beyond the malloc/free bookkeeping. *)
  check_bool "copy traffic present" true
    (Memsim.Sink.Counter.total counter >= 16);
  check_int "all traffic attributed to malloc phase" 0
    (Memsim.Sink.Counter.by_source counter Memsim.Event.App);
  Allocator.free alloc b;
  Allocator.check alloc

let test_realloc_misuse () =
  let heap = fresh_heap () in
  let alloc = Registry.build "bsd" heap in
  check_bool "unknown address rejected" true
    (match Allocator.realloc alloc 0x1000 8 with
    | exception Allocator.Allocator_misuse _ -> true
    | _ -> false);
  let a = Allocator.malloc alloc 8 in
  check_bool "zero size rejected" true
    (match Allocator.realloc alloc a 0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Allocator.free alloc a

let test_realloc_shrink () =
  let heap = fresh_heap () in
  let alloc = Registry.build "gnu-local" heap in
  let a = Allocator.malloc alloc 1000 in
  (* 1024-byte fragment *)
  let b = Allocator.realloc alloc a 100 in
  (* 128-byte fragment: must move *)
  check_bool "shrink moves across classes" true (a <> b);
  check_bool "live size shrunk" true (Allocator.live_size alloc b = Some 100);
  Allocator.free alloc b;
  Allocator.check alloc

let test_realloc_every_allocator () =
  List.iter
    (fun key ->
      let heap = fresh_heap () in
      let alloc = Registry.build key heap in
      let a = Allocator.malloc alloc 24 in
      let b = Allocator.realloc alloc a 48 in
      let c = Allocator.realloc alloc b 2000 in
      let d = Allocator.realloc alloc c 24 in
      check_bool (key ^ ": final live") true
        (Allocator.live_size alloc d = Some 24);
      Allocator.free alloc d;
      Allocator.check alloc)
    (Registry.keys ())

(* ------------------------------------------------------------------ *)
(* Registry                                                           *)
(* ------------------------------------------------------------------ *)

let test_registry_contents () =
  Alcotest.(check (list string))
    "paper five keys"
    [ "firstfit"; "gnu-g++"; "bsd"; "gnu-local"; "quickfit" ]
    (List.map (fun s -> s.Registry.key) Registry.paper_five);
  check_int "nine total" 9 (List.length Registry.all);
  check_bool "find works" true ((Registry.find "custom").Registry.key = "custom");
  check_bool "unknown raises" true
    (match Registry.find "nope" with
    | exception Not_found -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Boundary tags and freelists                                        *)
(* ------------------------------------------------------------------ *)

let test_boundary_tag_roundtrip () =
  let heap = fresh_heap () in
  let block = Heap.sbrk heap 64 in
  Boundary_tag.write heap ~block ~size:64 ~allocated:true;
  let size, allocated = Boundary_tag.read_header heap ~block in
  check_int "size" 64 size;
  check_bool "allocated" true allocated;
  Boundary_tag.write heap ~block ~size:64 ~allocated:false;
  let size, allocated = Boundary_tag.peek_header heap ~block in
  check_int "size after free" 64 size;
  check_bool "free" false allocated

let test_boundary_tag_footer_lookup () =
  let heap = fresh_heap () in
  let b1 = Heap.sbrk heap 32 in
  let b2 = Heap.sbrk heap 32 in
  Boundary_tag.write heap ~block:b1 ~size:32 ~allocated:false;
  Boundary_tag.write heap ~block:b2 ~size:32 ~allocated:true;
  (* Looking left from b2 reads b1's footer. *)
  let size, allocated = Boundary_tag.read_footer_before heap ~block:b2 in
  check_int "left size" 32 size;
  check_bool "left free" false allocated

let test_boundary_tag_payload () =
  check_int "payload offset" 0x104 (Boundary_tag.payload 0x100);
  check_int "block of payload" 0x100 (Boundary_tag.block_of_payload 0x104);
  check_int "overhead" 8 Boundary_tag.overhead

let test_freelist_ops () =
  let heap = fresh_heap () in
  let fl = Freelist.create heap in
  check_bool "starts empty" true (Freelist.is_empty fl);
  check_bool "no first" true (Freelist.first fl = None);
  let n1 = Heap.sbrk heap 16 and n2 = Heap.sbrk heap 16 in
  Freelist.insert_front fl n1;
  Freelist.insert_front fl n2;
  check_bool "not empty" false (Freelist.is_empty fl);
  check_bool "front is last inserted" true (Freelist.first fl = Some n2);
  Alcotest.(check (list int)) "order" [ n2; n1 ] (Freelist.to_list fl);
  Freelist.remove fl n2;
  Alcotest.(check (list int)) "after remove" [ n1 ] (Freelist.to_list fl);
  check_int "length" 1 (Freelist.length fl);
  Freelist.remove fl n1;
  check_bool "empty again" true (Freelist.is_empty fl)

let test_freelist_insert_after () =
  let heap = fresh_heap () in
  let fl = Freelist.create heap in
  let a = Heap.sbrk heap 16 and b = Heap.sbrk heap 16
  and c = Heap.sbrk heap 16 in
  Freelist.insert_front fl a;
  Freelist.insert_after fl ~after:a b;
  Freelist.insert_after fl ~after:a c;
  Alcotest.(check (list int)) "order" [ a; c; b ] (Freelist.to_list fl)

let test_freelist_traffic_counted () =
  (* The locality-relevant property: inserting a node writes the node
     and both neighbours. *)
  let heap, counter = counted_heap () in
  let fl = Freelist.create heap in
  let n = Heap.sbrk heap 16 in
  Heap.flush_trace heap;
  Memsim.Sink.Counter.reset counter;
  Freelist.insert_front fl n;
  Heap.flush_trace heap;
  check_bool "several references per insert" true
    (Memsim.Sink.Counter.total counter >= 4)

let prop_freelist_random_matches_model =
  QCheck.Test.make ~name:"freelist matches list model" ~count:200
    QCheck.(small_list (pair bool (int_bound 15)))
    (fun script ->
      let heap = fresh_heap () in
      let fl = Freelist.create heap in
      let nodes = Array.init 16 (fun _ -> Heap.sbrk heap 16) in
      let model = ref [] in
      List.iter
        (fun (insert, i) ->
          let n = nodes.(i) in
          if insert then begin
            if not (List.mem n !model) then begin
              Freelist.insert_front fl n;
              model := n :: !model
            end
          end
          else if List.mem n !model then begin
            Freelist.remove fl n;
            model := List.filter (fun x -> x <> n) !model
          end)
        script;
      Freelist.to_list fl = !model)

let prop_page_pool_random_ops =
  QCheck.Test.make ~name:"page pool random ops keep invariants" ~count:60
    QCheck.(
      list_of_size (Gen.int_range 5 60) (pair (int_range 1 12) (int_bound 99)))
    (fun script ->
      let heap = fresh_heap () in
      let p = Page_pool.create heap in
      let live = ref [] in
      List.iter
        (fun (pages, action) ->
          if action < 45 && !live <> [] then begin
            let idx = action mod List.length !live in
            Page_pool.free_pages p (List.nth !live idx);
            live := List.filteri (fun j _ -> j <> idx) !live
          end
          else live := Page_pool.alloc_pages p pages :: !live;
          Page_pool.check_invariants p)
        script;
      List.iter (Page_pool.free_pages p) !live;
      Page_pool.check_invariants p;
      Page_pool.used_page_count p = 0)

(* ------------------------------------------------------------------ *)
(* First fit                                                          *)
(* ------------------------------------------------------------------ *)

let test_firstfit_basic_reuse () =
  let heap = fresh_heap () in
  let ff = First_fit.create heap in
  let alloc = First_fit.allocator ff in
  let a = Allocator.malloc alloc 100 in
  let b = Allocator.malloc alloc 200 in
  check_bool "distinct" true (a <> b);
  Allocator.free alloc a;
  Allocator.free alloc b;
  Allocator.check alloc

let test_firstfit_coalesce_to_one_block () =
  let heap = fresh_heap () in
  let ff = First_fit.create heap in
  let alloc = First_fit.allocator ff in
  let objs = List.init 10 (fun i -> Allocator.malloc alloc (16 + (8 * i))) in
  List.iter (Allocator.free alloc) objs;
  Allocator.check alloc;
  check_int "fully coalesced" 1 (First_fit.free_list_length ff)

let test_firstfit_interleaved_coalesce () =
  let heap = fresh_heap () in
  let ff = First_fit.create heap in
  let alloc = First_fit.allocator ff in
  let objs = Array.init 20 (fun _ -> Allocator.malloc alloc 48) in
  (* Free evens then odds: the odd frees must bridge the even holes. *)
  Array.iteri (fun i a -> if i mod 2 = 0 then Allocator.free alloc a) objs;
  Allocator.check alloc;
  Array.iteri (fun i a -> if i mod 2 = 1 then Allocator.free alloc a) objs;
  Allocator.check alloc;
  check_int "fully coalesced" 1 (First_fit.free_list_length ff)

let test_firstfit_split_threshold () =
  let heap = fresh_heap () in
  let ff = First_fit.create heap in
  let alloc = First_fit.allocator ff in
  (* A request whose gross size is within 24 bytes of a free block's
     size must take the whole block (no split). *)
  let a = Allocator.malloc alloc 100 in
  Allocator.free alloc a;
  (* free block of gross 112 merged with wilderness; carve an exact-ish
     request from a fresh small heap is hard to isolate — instead check
     the allocator never creates blocks below the minimum. *)
  let b = Allocator.malloc alloc 104 in
  let c = Allocator.malloc alloc 4 in
  Allocator.check alloc;
  Allocator.free alloc b;
  Allocator.free alloc c;
  Allocator.check alloc

let test_firstfit_large_allocation () =
  let heap = fresh_heap () in
  let ff = First_fit.create heap in
  let alloc = First_fit.allocator ff in
  let a = Allocator.malloc alloc 100_000 in
  (* bigger than the 16K extend chunk *)
  let b = Allocator.malloc alloc 24 in
  Allocator.free alloc a;
  Allocator.free alloc b;
  Allocator.check alloc

let test_firstfit_rover_advances () =
  let heap = fresh_heap () in
  let ff = First_fit.create heap in
  let alloc = First_fit.allocator ff in
  let a = Allocator.malloc alloc 64 in
  ignore (Allocator.malloc alloc 64);
  Allocator.free alloc a;
  (* rover must be a valid node or the head; check verifies *)
  Allocator.check alloc;
  ignore (First_fit.rover ff)

(* ------------------------------------------------------------------ *)
(* Best fit                                                           *)
(* ------------------------------------------------------------------ *)

let test_bestfit_picks_smallest () =
  let heap = fresh_heap () in
  let bf = Best_fit.create heap in
  let alloc = Best_fit.allocator bf in
  (* Create two free holes, 1000B and 104B gross, pinned by live
     neighbours; a 96-byte request must take the smaller hole even
     though the big one comes first in the list. *)
  let g1 = Allocator.malloc alloc 16 in
  let small_hole = Allocator.malloc alloc 96 in
  let g2 = Allocator.malloc alloc 16 in
  let big_hole = Allocator.malloc alloc 992 in
  let g3 = Allocator.malloc alloc 16 in
  Allocator.free alloc small_hole;
  Allocator.free alloc big_hole;
  let taken = Allocator.malloc alloc 96 in
  check_int "re-uses the small hole exactly" small_hole taken;
  List.iter (Allocator.free alloc) [ taken; g1; g2; g3 ];
  Allocator.check alloc

let test_bestfit_exact_fit_stops_search () =
  let heap = fresh_heap () in
  let bf = Best_fit.create heap in
  let alloc = Best_fit.allocator bf in
  let a = Allocator.malloc alloc 200 in
  let g = Allocator.malloc alloc 16 in
  Allocator.free alloc a;
  let b = Allocator.malloc alloc 200 in
  check_int "exact-size block re-used" a b;
  Allocator.free alloc b;
  Allocator.free alloc g;
  Allocator.check alloc;
  check_int "coalesced" 1 (Best_fit.free_list_length bf)

(* ------------------------------------------------------------------ *)
(* GNU G++                                                            *)
(* ------------------------------------------------------------------ *)

let test_gpp_bins () =
  check_int "gross 112 -> bin 6" 6 (Gnu_gpp.bin_of_size 112);
  check_int "gross 16 -> bin 4" 4 (Gnu_gpp.bin_of_size 16);
  check_int "gross 64 -> bin 6" 6 (Gnu_gpp.bin_of_size 64);
  check_int "gross 63 -> bin 5" 5 (Gnu_gpp.bin_of_size 63)

let test_gpp_freed_block_lands_in_bin () =
  let heap = fresh_heap () in
  let g = Gnu_gpp.create heap in
  let alloc = Gnu_gpp.allocator g in
  let a = Allocator.malloc alloc 100 in
  (* Surround with live objects so the freed block cannot coalesce. *)
  let b = Allocator.malloc alloc 100 in
  let c = Allocator.malloc alloc 100 in
  Allocator.free alloc b;
  Allocator.check alloc;
  (* gross(100) = 112 -> bin 6 *)
  check_bool "bin 6 non-empty" true (Gnu_gpp.bin_length g 6 >= 1);
  Allocator.free alloc a;
  Allocator.free alloc c;
  Allocator.check alloc

let test_gpp_takes_from_bigger_bin () =
  let heap = fresh_heap () in
  let g = Gnu_gpp.create heap in
  let alloc = Gnu_gpp.allocator g in
  (* Pin a large free block between live blocks, then request slightly
     less: the search must find it via the larger bin. *)
  let guard1 = Allocator.malloc alloc 16 in
  let big = Allocator.malloc alloc 1000 in
  let guard2 = Allocator.malloc alloc 16 in
  Allocator.free alloc big;
  let taken = Allocator.malloc alloc 900 in
  check_bool "reused the freed block region" true (taken >= big && taken < big + 1008);
  Allocator.free alloc taken;
  Allocator.free alloc guard1;
  Allocator.free alloc guard2;
  Allocator.check alloc

let test_gpp_mixed_churn () =
  let heap = fresh_heap () in
  let g = Gnu_gpp.create heap in
  let alloc = Gnu_gpp.allocator g in
  let live = ref [] in
  for i = 1 to 200 do
    live := Allocator.malloc alloc (8 + (i mod 37) * 12) :: !live;
    if i mod 3 = 0 then begin
      match !live with
      | x :: rest ->
          Allocator.free alloc x;
          live := rest
      | [] -> ()
    end
  done;
  Allocator.check alloc;
  List.iter (Allocator.free alloc) !live;
  Allocator.check alloc

(* ------------------------------------------------------------------ *)
(* BSD                                                                *)
(* ------------------------------------------------------------------ *)

let test_bsd_classes () =
  check_int "1 byte -> 8" 3 (Bsd.class_of_request 1);
  check_int "4 bytes -> 8" 3 (Bsd.class_of_request 4);
  check_int "5 bytes -> 16" 4 (Bsd.class_of_request 5);
  check_int "12 bytes -> 16" 4 (Bsd.class_of_request 12);
  check_int "13 bytes -> 32" 5 (Bsd.class_of_request 13);
  check_int "28 bytes -> 32" 5 (Bsd.class_of_request 28);
  check_int "29 bytes -> 64" 6 (Bsd.class_of_request 29)

let test_bsd_lifo_reuse () =
  let heap = fresh_heap () in
  let b = Bsd.create heap in
  let alloc = Bsd.allocator b in
  let a = Allocator.malloc alloc 24 in
  Allocator.free alloc a;
  let a' = Allocator.malloc alloc 24 in
  check_int "LIFO: immediate reuse of the same block" a a';
  Allocator.free alloc a';
  Allocator.check alloc

let test_bsd_page_carving () =
  let heap = fresh_heap () in
  let b = Bsd.create heap in
  let alloc = Bsd.allocator b in
  let a = Allocator.malloc alloc 24 in
  (* 32-byte blocks: one page yields 128, one taken. *)
  check_int "127 left on the list" 127 (Bsd.free_count b 5);
  let more = List.init 127 (fun _ -> Allocator.malloc alloc 24) in
  check_int "page exhausted" 0 (Bsd.free_count b 5);
  check_int "heap grew by one page" 4096 (Heap.heap_used heap);
  ignore (Allocator.malloc alloc 24);
  check_int "second page carved" 8192 (Heap.heap_used heap);
  Allocator.free alloc a;
  List.iter (Allocator.free alloc) more;
  Allocator.check alloc

let test_bsd_no_coalescing_wastes_space () =
  let heap = fresh_heap () in
  let b = Bsd.create heap in
  let alloc = Bsd.allocator b in
  (* Allocate and free 64-byte objects, then allocate 128-byte objects:
     the freed 64-byte blocks cannot serve them. *)
  let xs = List.init 64 (fun _ -> Allocator.malloc alloc 60) in
  List.iter (Allocator.free alloc) xs;
  let used_before = Heap.heap_used heap in
  ignore (Allocator.malloc alloc 120);
  check_bool "had to grow the heap" true (Heap.heap_used heap > used_before);
  check_int "64-byte list untouched" 64 (Bsd.free_count b 6)

let test_bsd_large_object () =
  let heap = fresh_heap () in
  let b = Bsd.create heap in
  let alloc = Bsd.allocator b in
  let a = Allocator.malloc alloc 100_000 in
  (* class 17: 131072 *)
  let st = Allocator.stats alloc in
  check_int "granted is the power of two" 131072 st.Alloc_stats.bytes_granted;
  Allocator.free alloc a;
  let a' = Allocator.malloc alloc 100_000 in
  check_int "large blocks also recycle" a a';
  Allocator.free alloc a';
  Allocator.check alloc

(* ------------------------------------------------------------------ *)
(* Page pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_alloc_free_roundtrip () =
  let heap = fresh_heap () in
  let p = Page_pool.create heap in
  let a = Page_pool.alloc_pages p 3 in
  check_int "page aligned" 0 (a mod 4096);
  check_int "3 used" 3 (Page_pool.used_page_count p);
  Page_pool.free_pages p a;
  check_int "0 used" 0 (Page_pool.used_page_count p);
  Page_pool.check_invariants p

let test_pool_coalescing () =
  let heap = fresh_heap () in
  let p = Page_pool.create heap in
  let a = Page_pool.alloc_pages p 2 in
  let b = Page_pool.alloc_pages p 2 in
  let c = Page_pool.alloc_pages p 2 in
  Page_pool.free_pages p a;
  Page_pool.check_invariants p;
  Page_pool.free_pages p c;
  Page_pool.check_invariants p;
  (* Freeing b must bridge a and c into one run with the trailing
     grow-slack. *)
  Page_pool.free_pages p b;
  Page_pool.check_invariants p;
  check_int "everything free" 0 (Page_pool.used_page_count p);
  (* A big run must now fit without growing the heap. *)
  let used = Heap.heap_used heap in
  let big = Page_pool.alloc_pages p 10 in
  check_int "no growth needed" used (Heap.heap_used heap);
  Page_pool.free_pages p big;
  Page_pool.check_invariants p

let test_pool_first_fit_reuse () =
  let heap = fresh_heap () in
  let p = Page_pool.create heap in
  let a = Page_pool.alloc_pages p 4 in
  let _b = Page_pool.alloc_pages p 4 in
  Page_pool.free_pages p a;
  let c = Page_pool.alloc_pages p 2 in
  check_int "reuses the freed hole" a c;
  Page_pool.check_invariants p

let test_pool_grow_coalesces_with_top () =
  let heap = fresh_heap () in
  let p = Page_pool.create heap in
  (* Exhaust the initial 16-page chunk, then one more: growth coalesces
     free tail space. *)
  let a = Page_pool.alloc_pages p 16 in
  let b = Page_pool.alloc_pages p 20 in
  Page_pool.free_pages p a;
  Page_pool.free_pages p b;
  Page_pool.check_invariants p;
  check_int "all pages free" 0 (Page_pool.used_page_count p)

let test_pool_rejects_bad_free () =
  let heap = fresh_heap () in
  let p = Page_pool.create heap in
  let a = Page_pool.alloc_pages p 2 in
  check_bool "freeing a non-head fails" true
    (match Page_pool.free_pages p (a + 4096) with
    | exception Failure _ -> true
    | () -> false);
  Page_pool.free_pages p a

(* ------------------------------------------------------------------ *)
(* GNU local                                                          *)
(* ------------------------------------------------------------------ *)

let test_local_classes () =
  check_int "1 -> 8" 3 (Gnu_local.class_of_request 1);
  check_int "8 -> 8" 3 (Gnu_local.class_of_request 8);
  check_int "9 -> 16" 4 (Gnu_local.class_of_request 9);
  check_int "2048 -> 2048" 11 (Gnu_local.class_of_request 2048)

let test_local_fragment_reuse () =
  let heap = fresh_heap () in
  let g = Gnu_local.create heap in
  let alloc = Gnu_local.allocator g in
  let a = Allocator.malloc alloc 24 in
  Allocator.free alloc a;
  let a' = Allocator.malloc alloc 24 in
  check_int "LIFO fragment reuse" a a';
  Allocator.free alloc a';
  Allocator.check alloc

let test_local_page_reclamation () =
  let heap = fresh_heap () in
  let g = Gnu_local.create heap in
  let alloc = Gnu_local.allocator g in
  (* Fill exactly one 32-byte-fragment page (128 fragments). *)
  let objs = List.init 128 (fun _ -> Allocator.malloc alloc 32) in
  check_int "one page in use" 1 (Page_pool.used_page_count (Gnu_local.pool g));
  check_int "no free fragments" 0 (Gnu_local.free_fragments g 5);
  (* Free all: the page must return to the pool and the class list must
     be withdrawn. *)
  List.iter (Allocator.free alloc) objs;
  check_int "page reclaimed" 0 (Page_pool.used_page_count (Gnu_local.pool g));
  check_int "fragments withdrawn" 0 (Gnu_local.free_fragments g 5);
  Allocator.check alloc

let test_local_no_object_tags () =
  let heap = fresh_heap () in
  let g = Gnu_local.create heap in
  let alloc = Gnu_local.allocator g in
  let a = Allocator.malloc alloc 32 in
  let b = Allocator.malloc alloc 32 in
  (* Adjacent fragments are exactly 32 bytes apart: no per-object
     header. *)
  check_int "no header between fragments" 32 (abs (b - a));
  Allocator.free alloc a;
  Allocator.free alloc b;
  Allocator.check alloc

let test_local_large_objects () =
  let heap = fresh_heap () in
  let g = Gnu_local.create heap in
  let alloc = Gnu_local.allocator g in
  let a = Allocator.malloc alloc 10_000 in
  (* 3 pages *)
  check_int "page aligned" 0 (a mod 4096);
  check_int "three pages" 3 (Page_pool.used_page_count (Gnu_local.pool g));
  Allocator.free alloc a;
  check_int "released" 0 (Page_pool.used_page_count (Gnu_local.pool g));
  Allocator.check alloc

let test_local_mixed_classes_per_page () =
  let heap = fresh_heap () in
  let g = Gnu_local.create heap in
  let alloc = Gnu_local.allocator g in
  let a = Allocator.malloc alloc 16 in
  let b = Allocator.malloc alloc 64 in
  (* Different classes come from different pages. *)
  check_bool "different pages" true (a / 4096 <> b / 4096);
  Allocator.free alloc a;
  Allocator.free alloc b;
  Allocator.check alloc

let test_local_tag_emulation_traffic () =
  (* With emulated tags, each malloc+free touches two extra words and
     consumes a larger class. *)
  let heap_plain = fresh_heap () in
  let plain = Gnu_local.create heap_plain in
  let heap_tags = fresh_heap () in
  let tags = Gnu_local.create ~emulate_tags:true heap_tags in
  let ap = Gnu_local.allocator plain and at = Gnu_local.allocator tags in
  let x = Allocator.malloc ap 24 and y = Allocator.malloc at 24 in
  Allocator.free ap x;
  Allocator.free at y;
  let gp = (Allocator.stats ap).Alloc_stats.bytes_granted in
  let gt = (Allocator.stats at).Alloc_stats.bytes_granted in
  check_int "plain grants 32" 32 gp;
  check_int "tags grant 32 for 24+8" 32 gt;
  let z = Allocator.malloc at 30 in
  Allocator.free at z;
  check_int "tags push 30 to 64" (32 + 64)
    (Allocator.stats at).Alloc_stats.bytes_granted;
  Allocator.check ap;
  Allocator.check at

(* ------------------------------------------------------------------ *)
(* QuickFit                                                           *)
(* ------------------------------------------------------------------ *)

let test_quickfit_small_fast_path () =
  let heap = fresh_heap () in
  let q = Quick_fit.create heap in
  let alloc = Quick_fit.allocator q in
  let a = Allocator.malloc alloc 24 in
  Allocator.free alloc a;
  check_int "on the exact list" 1 (Quick_fit.free_count q (Quick_fit.list_index 24));
  let a' = Allocator.malloc alloc 24 in
  check_int "LIFO reuse" a a';
  Allocator.free alloc a';
  Allocator.check alloc

let test_quickfit_rounding () =
  check_int "1 -> list 1" 1 (Quick_fit.list_index 1);
  check_int "4 -> list 1" 1 (Quick_fit.list_index 4);
  check_int "5 -> list 2" 2 (Quick_fit.list_index 5);
  check_int "32 -> list 8" 8 (Quick_fit.list_index 32)

let test_quickfit_delegates_large () =
  let heap = fresh_heap () in
  let q = Quick_fit.create heap in
  let alloc = Quick_fit.allocator q in
  let a = Allocator.malloc alloc 100 in
  let b = Allocator.malloc alloc 5000 in
  Allocator.free alloc a;
  Allocator.free alloc b;
  Allocator.check alloc;
  (* Large objects do not land on the small lists. *)
  for i = 1 to 8 do
    check_int "small lists untouched" 0 (Quick_fit.free_count q i)
  done

let test_quickfit_distinct_size_lists () =
  let heap = fresh_heap () in
  let q = Quick_fit.create heap in
  let alloc = Quick_fit.allocator q in
  let a8 = Allocator.malloc alloc 8 in
  let a16 = Allocator.malloc alloc 16 in
  let a32 = Allocator.malloc alloc 32 in
  Allocator.free alloc a8;
  Allocator.free alloc a16;
  Allocator.free alloc a32;
  check_int "8 list" 1 (Quick_fit.free_count q 2);
  check_int "16 list" 1 (Quick_fit.free_count q 4);
  check_int "32 list" 1 (Quick_fit.free_count q 8);
  Allocator.check alloc

let test_quickfit_carving_is_sequential () =
  let heap = fresh_heap () in
  let q = Quick_fit.create heap in
  let alloc = Quick_fit.allocator q in
  let a = Allocator.malloc alloc 16 in
  let b = Allocator.malloc alloc 16 in
  (* Fresh carves are adjacent: gross = 16 + 4 tag. *)
  check_int "sequential carving" 20 (b - a);
  Allocator.free alloc a;
  Allocator.free alloc b;
  Allocator.check alloc

let test_quickfit_interleaved_sbrk_extents () =
  (* Small carves and G++ extensions interleave their sbrk calls; the
     embedded G++ must handle its discontiguous extents (fresh
     sentinels, no cross-extent coalescing). *)
  let heap = fresh_heap () in
  let q = Quick_fit.create heap in
  let alloc = Quick_fit.allocator q in
  let live = ref [] in
  for i = 1 to 400 do
    (* Alternate small (carve path) and large (G++ path) requests with
       frees, forcing many interleaved extensions. *)
    let size = if i mod 2 = 0 then 8 + (i mod 4 * 8) else 2000 + (i mod 7 * 512) in
    live := Allocator.malloc alloc size :: !live;
    if i mod 3 = 0 then begin
      match !live with
      | a :: rest ->
          Allocator.free alloc a;
          live := rest
      | [] -> ()
    end;
    if i mod 50 = 0 then Allocator.check alloc
  done;
  List.iter (Allocator.free alloc) !live;
  Allocator.check alloc

(* ------------------------------------------------------------------ *)
(* Size map and Custom                                                *)
(* ------------------------------------------------------------------ *)

let test_size_map_defaults () =
  let heap = fresh_heap () in
  let m = Size_map.create heap ~classes:Size_map.default_classes in
  check_bool "ladder has several classes" true (Size_map.num_classes m > 8);
  check_int "max small" 2040 (Size_map.max_small m);
  (* Every size maps to the smallest class >= it. *)
  let sizes = Size_map.classes m in
  for n = 1 to Size_map.max_small m do
    let c = Size_map.lookup m n in
    let s = Size_map.class_size m c in
    if s < n then Alcotest.failf "class %d too small for %d" s n;
    if c > 0 && sizes.(c - 1) >= n then
      Alcotest.failf "class %d not minimal for %d" c n
  done

let test_size_map_design_hot_sizes () =
  let histogram = [ (24, 100_000); (40, 50_000); (132, 10_000); (7, 5) ] in
  let classes = Size_map.design histogram in
  check_bool "24 exact" true (List.mem 24 classes);
  check_bool "40 exact" true (List.mem 40 classes);
  check_bool "132 exact" true (List.mem 132 classes);
  check_bool "ascending" true (List.sort compare classes = classes)

let test_size_map_design_bounds_classes () =
  let histogram = List.init 100 (fun i -> ((i + 1) * 4, 50)) in
  let classes = Size_map.design ~max_classes:20 ~hot_sizes:4 histogram in
  check_bool "bounded" true (List.length classes <= 20)

let test_size_map_bounded_policy () =
  (* DeTreville: with a 25% bound, sizes 12-16 round to 16 (the paper's
     own example), and no request wastes more than the bound. *)
  let classes = Size_map.bounded ~max_frag:0.25 () in
  let heap = fresh_heap () in
  let m = Size_map.create heap ~classes in
  check_int "13 rounds to 16" 16 (Size_map.rounded m 13);
  check_int "16 stays 16" 16 (Size_map.rounded m 16);
  (* Word alignment is universal overhead, so the bound is on the
     word-rounded request size. *)
  for n = 1 to Size_map.max_small m do
    let c = Size_map.rounded m n in
    let r = (n + 3) / 4 * 4 in
    let waste = float_of_int (c - r) /. float_of_int c in
    if waste > 0.25 +. 1e-9 then
      Alcotest.failf "size %d wastes %.0f%% in class %d" n (100. *. waste) c
  done;
  (* A tighter bound needs more classes. *)
  let tighter = Size_map.bounded ~max_frag:0.10 () in
  check_bool "tighter bound, more classes" true
    (List.length tighter > List.length classes);
  check_bool "bad bound rejected" true
    (match Size_map.bounded ~max_frag:1.5 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_size_map_rejects_bad_classes () =
  let heap = fresh_heap () in
  check_bool "unsorted rejected" true
    (match Size_map.create heap ~classes:[ 16; 8 ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "non-word rejected" true
    (match Size_map.create heap ~classes:[ 10 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_custom_exact_reuse () =
  let heap = fresh_heap () in
  let c = Custom.create_for ~histogram:[ (24, 1000); (40, 500) ] heap in
  let alloc = Custom.allocator c in
  let a = Allocator.malloc alloc 24 in
  Allocator.free alloc a;
  let a' = Allocator.malloc alloc 24 in
  check_int "LIFO reuse" a a';
  (* 24 is a hot size: granted exactly 24, no tag. *)
  let b = Allocator.malloc alloc 24 in
  check_int "no per-object overhead" 24 (abs (b - a'));
  Allocator.free alloc a';
  Allocator.free alloc b;
  Allocator.check alloc

let test_custom_fragmentation_beats_bsd () =
  (* For 24-byte-heavy workloads: custom grants 24, BSD grants 32. *)
  let heap1 = fresh_heap () in
  let cu = Custom.create_for ~histogram:[ (24, 1000) ] heap1 in
  let ca = Custom.allocator cu in
  let heap2 = fresh_heap () in
  let ba = Bsd.allocator (Bsd.create heap2) in
  ignore (Allocator.malloc ca 24);
  ignore (Allocator.malloc ba 24);
  let fc = Alloc_stats.internal_fragmentation (Allocator.stats ca) in
  let fb = Alloc_stats.internal_fragmentation (Allocator.stats ba) in
  check_bool "custom wastes less" true (fc < fb)

let test_custom_large_objects () =
  let heap = fresh_heap () in
  let c = Custom.create heap in
  let alloc = Custom.allocator c in
  let a = Allocator.malloc alloc 50_000 in
  check_int "page aligned" 0 (a mod 4096);
  Allocator.free alloc a;
  Allocator.check alloc

let test_custom_pages_retained () =
  let heap = fresh_heap () in
  let c = Custom.create heap in
  let alloc = Custom.allocator c in
  let objs = List.init 50 (fun _ -> Allocator.malloc alloc 24) in
  let pages = Page_pool.used_page_count (Custom.pool c) in
  List.iter (Allocator.free alloc) objs;
  (* Unlike GNU local, pages stay with their class for instant reuse. *)
  check_int "pages retained" pages (Page_pool.used_page_count (Custom.pool c));
  Allocator.check alloc

(* ------------------------------------------------------------------ *)
(* Predictive (lifetime prediction)                                   *)
(* ------------------------------------------------------------------ *)

let all_short sites = Array.make sites Predictive.Short
let all_long sites = Array.make sites Predictive.Long

let test_predictive_trainer_majority () =
  let tr = Predictive.Trainer.create ~sites:3 in
  for _ = 1 to 10 do
    Predictive.Trainer.observe tr ~site:0 ~long:false
  done;
  Predictive.Trainer.observe tr ~site:0 ~long:true;
  for _ = 1 to 5 do
    Predictive.Trainer.observe tr ~site:1 ~long:true
  done;
  (* site 2 never observed *)
  let p = Predictive.Trainer.finish tr in
  check_bool "site 0 short" true (p.(0) = Predictive.Short);
  check_bool "site 1 long" true (p.(1) = Predictive.Long);
  check_bool "unseen defaults long" true (p.(2) = Predictive.Long)

let test_predictive_arena_bump () =
  let heap = fresh_heap () in
  let p = Predictive.create ~predictions:(all_short 4) heap in
  let alloc = Predictive.allocator p in
  let a = Allocator.malloc_sited alloc ~site:0 24 in
  let b = Allocator.malloc_sited alloc ~site:1 40 in
  (* Bump allocation: consecutive, word-aligned. *)
  check_int "bump adjacency" (a + 24) b;
  check_int "one arena chunk" 1 (Predictive.arena_pages p);
  Allocator.free alloc a;
  Allocator.free alloc b;
  Allocator.check alloc

let test_predictive_chunk_recycles () =
  let heap = fresh_heap () in
  let p = Predictive.create ~predictions:(all_short 4) heap in
  let alloc = Predictive.allocator p in
  (* Allocate and free in waves: the current chunk rewinds, so the same
     addresses come back and no new pages are taken. *)
  let wave () =
    let xs = List.init 50 (fun _ -> Allocator.malloc_sited alloc ~site:0 32) in
    List.iter (Allocator.free alloc) xs;
    List.hd xs
  in
  let first = wave () in
  let again = wave () in
  check_int "same hot page reused" first again;
  check_int "still one chunk" 1 (Predictive.arena_pages p);
  Allocator.check alloc

let test_predictive_retired_chunk_freed () =
  let heap = fresh_heap () in
  let p = Predictive.create ~predictions:(all_short 4) heap in
  let alloc = Predictive.allocator p in
  (* Fill beyond one page so the first chunk retires, then free its
     objects: the page must return to the pool. *)
  let xs = List.init 200 (fun _ -> Allocator.malloc_sited alloc ~site:0 32) in
  check_bool "several chunks" true (Predictive.arena_pages p >= 2);
  let before = Predictive.arena_pages p in
  List.iter (Allocator.free alloc) xs;
  check_bool "retired chunks reclaimed" true
    (Predictive.arena_pages p < before);
  Allocator.check alloc

let test_predictive_long_goes_to_general () =
  let heap = fresh_heap () in
  let p = Predictive.create ~predictions:(all_long 4) heap in
  let alloc = Predictive.allocator p in
  let a = Allocator.malloc_sited alloc ~site:0 24 in
  check_int "no arena chunk" 0 (Predictive.arena_pages p);
  Allocator.free alloc a;
  Allocator.check alloc;
  check_bool "table says long" true
    (Predictive.prediction_for p 0 = Predictive.Long);
  check_bool "out of range is long" true
    (Predictive.prediction_for p 99 = Predictive.Long)

let test_predictive_big_shorts_bypass_arena () =
  let heap = fresh_heap () in
  let p = Predictive.create ~predictions:(all_short 4) heap in
  let alloc = Predictive.allocator p in
  let a = Allocator.malloc_sited alloc ~site:0 10_000 in
  check_int "no arena chunk for big objects" 0 (Predictive.arena_pages p);
  Allocator.free alloc a;
  Allocator.check alloc

let test_predictive_plain_malloc_is_long () =
  let heap = fresh_heap () in
  let p = Predictive.create ~predictions:(all_short 4) heap in
  let alloc = Predictive.allocator p in
  let a = Allocator.malloc alloc 24 in
  check_int "plain malloc avoids arena" 0 (Predictive.arena_pages p);
  Allocator.free alloc a;
  Allocator.check alloc

let test_predictive_mixed_random () =
  let heap = fresh_heap () in
  let preds = Array.init 8 (fun i -> if i < 4 then Predictive.Short else Predictive.Long) in
  let p = Predictive.create ~predictions:preds heap in
  let alloc = Predictive.allocator p in
  let live = ref [] in
  let rng = ref 7777 in
  let next () = rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF; !rng in
  for i = 1 to 600 do
    let r = next () in
    if r mod 100 < 55 || !live = [] then begin
      let site = next () mod 8 in
      let size = 4 + (next () mod 300) in
      live := Allocator.malloc_sited alloc ~site size :: !live
    end
    else begin
      let idx = next () mod List.length !live in
      Allocator.free alloc (List.nth !live idx);
      live := List.filteri (fun j _ -> j <> idx) !live
    end;
    if i mod 100 = 0 then Allocator.check alloc
  done;
  List.iter (Allocator.free alloc) !live;
  Allocator.check alloc

(* ------------------------------------------------------------------ *)
(* Cross-allocator properties                                         *)
(* ------------------------------------------------------------------ *)

(* Random malloc/free scripts, executed against a real allocator with
   periodic and final invariant checks.  The script is a list of
   (size, free_victim_choice) pairs. *)
let random_ops_property key =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: random ops keep invariants" key)
    ~count:30
    QCheck.(
      list_of_size (Gen.int_range 10 120)
        (pair (int_range 1 3000) (int_bound 99)))
    (fun script ->
      let heap = fresh_heap () in
      let alloc = Registry.build key heap in
      let live = ref [] in
      let step i (size, victim) =
        if victim < 35 && !live <> [] then begin
          let idx = victim mod List.length !live in
          let a = List.nth !live idx in
          Allocator.free alloc a;
          live := List.filteri (fun j _ -> j <> idx) !live
        end
        else if victim < 50 && !live <> [] then begin
          let idx = victim mod List.length !live in
          let a = List.nth !live idx in
          let b = Allocator.realloc alloc a size in
          live := List.mapi (fun j x -> if j = idx then b else x) !live
        end
        else live := Allocator.malloc alloc size :: !live;
        if i mod 25 = 0 then Allocator.check alloc
      in
      List.iteri step script;
      Allocator.check alloc;
      List.iter (Allocator.free alloc) !live;
      Allocator.check alloc;
      true)

let props_random = List.map (fun k -> random_ops_property k) (Registry.keys ())

let test_all_allocators_emit_attributed_traffic () =
  List.iter
    (fun key ->
      let heap, c = counted_heap () in
      let alloc = Registry.build key heap in
      let a = Allocator.malloc alloc 24 in
      let b = Allocator.malloc alloc 100 in
      Allocator.free alloc a;
      Allocator.free alloc b;
      Heap.flush_trace heap;
      check_bool
        (key ^ ": malloc traffic")
        true
        (Memsim.Sink.Counter.by_source c Memsim.Event.Malloc > 0);
      check_bool
        (key ^ ": free traffic")
        true
        (Memsim.Sink.Counter.by_source c Memsim.Event.Free > 0))
    (Registry.keys ())

let test_segregated_cheaper_than_search () =
  (* The paper's Figure 1: BSD/QuickFit spend far fewer instructions
     than FirstFit on a mixed-size churn workload. *)
  let run key =
    let heap = fresh_heap () in
    let alloc = Registry.build key heap in
    let live = ref [] in
    let rng = ref 9001 in
    let next () =
      rng := (!rng * 1103515245 + 12345) land 0x3FFFFFFF;
      !rng
    in
    for _ = 1 to 2000 do
      let r = next () in
      if r mod 100 < 55 || !live = [] then
        live := Allocator.malloc alloc (4 + (r mod 400)) :: !live
      else begin
        let idx = next () mod List.length !live in
        Allocator.free alloc (List.nth !live idx);
        live := List.filteri (fun j _ -> j <> idx) !live
      end
    done;
    Cost.allocator_total (Heap.cost (Allocator.heap alloc))
  in
  let ff = run "firstfit" in
  let bsd = run "bsd" in
  let qf = run "quickfit" in
  check_bool "bsd cheaper than firstfit" true (bsd < ff);
  check_bool "quickfit cheaper than firstfit" true (qf < ff)

let test_no_free_workload () =
  (* PTC frees nothing; every allocator must cope. *)
  List.iter
    (fun key ->
      let heap = fresh_heap () in
      let alloc = Registry.build key heap in
      for i = 1 to 300 do
        ignore (Allocator.malloc alloc (4 + (i mod 200)))
      done;
      Allocator.check alloc)
    (Registry.keys ())

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests
let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "allocators"
    [
      ( "cost",
        [
          tc "phases" test_cost_phases;
          tc "empty fraction" test_cost_empty_fraction;
        ] );
      ( "heap",
        [
          tc "load/store costs" test_heap_load_store_costs;
          tc "phase attribution" test_heap_phase_attribution;
          tc "regions disjoint" test_heap_regions_disjoint;
          tc "page-aligned base" test_heap_page_aligned_base;
        ] );
      ( "framework",
        [
          tc "misuse" test_framework_misuse;
          tc "stats" test_framework_stats;
          tc "rejects zero" test_framework_rejects_zero;
          tc "registry" test_registry_contents;
        ] );
      ( "tags-and-freelists",
        [
          tc "boundary tag roundtrip" test_boundary_tag_roundtrip;
          tc "footer lookup" test_boundary_tag_footer_lookup;
          tc "payload helpers" test_boundary_tag_payload;
          tc "freelist ops" test_freelist_ops;
          tc "freelist insert_after" test_freelist_insert_after;
          tc "freelist traffic counted" test_freelist_traffic_counted;
        ]
        @ qsuite
            [ prop_freelist_random_matches_model; prop_page_pool_random_ops ]
      );
      ( "realloc",
        [
          tc "in-place same class" test_realloc_in_place_same_class;
          tc "moves across classes" test_realloc_moves_across_classes;
          tc "copy traffic" test_realloc_copy_traffic;
          tc "misuse" test_realloc_misuse;
          tc "shrink" test_realloc_shrink;
          tc "every allocator" test_realloc_every_allocator;
        ] );
      ( "firstfit",
        [
          tc "basic reuse" test_firstfit_basic_reuse;
          tc "coalesce to one block" test_firstfit_coalesce_to_one_block;
          tc "interleaved coalesce" test_firstfit_interleaved_coalesce;
          tc "split threshold" test_firstfit_split_threshold;
          tc "large allocation" test_firstfit_large_allocation;
          tc "rover advances" test_firstfit_rover_advances;
        ] );
      ( "bestfit",
        [
          tc "picks smallest" test_bestfit_picks_smallest;
          tc "exact fit" test_bestfit_exact_fit_stops_search;
        ] );
      ( "gnu-g++",
        [
          tc "bins" test_gpp_bins;
          tc "freed block lands in bin" test_gpp_freed_block_lands_in_bin;
          tc "takes from bigger bin" test_gpp_takes_from_bigger_bin;
          tc "mixed churn" test_gpp_mixed_churn;
        ] );
      ( "bsd",
        [
          tc "classes" test_bsd_classes;
          tc "lifo reuse" test_bsd_lifo_reuse;
          tc "page carving" test_bsd_page_carving;
          tc "no coalescing wastes space" test_bsd_no_coalescing_wastes_space;
          tc "large object" test_bsd_large_object;
        ] );
      ( "page-pool",
        [
          tc "roundtrip" test_pool_alloc_free_roundtrip;
          tc "coalescing" test_pool_coalescing;
          tc "first-fit reuse" test_pool_first_fit_reuse;
          tc "grow coalesces with top" test_pool_grow_coalesces_with_top;
          tc "rejects bad free" test_pool_rejects_bad_free;
        ] );
      ( "gnu-local",
        [
          tc "classes" test_local_classes;
          tc "fragment reuse" test_local_fragment_reuse;
          tc "page reclamation" test_local_page_reclamation;
          tc "no object tags" test_local_no_object_tags;
          tc "large objects" test_local_large_objects;
          tc "mixed classes per page" test_local_mixed_classes_per_page;
          tc "tag emulation traffic" test_local_tag_emulation_traffic;
        ] );
      ( "quickfit",
        [
          tc "small fast path" test_quickfit_small_fast_path;
          tc "rounding" test_quickfit_rounding;
          tc "delegates large" test_quickfit_delegates_large;
          tc "distinct size lists" test_quickfit_distinct_size_lists;
          tc "sequential carving" test_quickfit_carving_is_sequential;
          tc "interleaved sbrk extents" test_quickfit_interleaved_sbrk_extents;
        ] );
      ( "size-map",
        [
          tc "defaults" test_size_map_defaults;
          tc "design hot sizes" test_size_map_design_hot_sizes;
          tc "design bounds classes" test_size_map_design_bounds_classes;
          tc "bounded-fragmentation policy" test_size_map_bounded_policy;
          tc "rejects bad classes" test_size_map_rejects_bad_classes;
        ] );
      ( "custom",
        [
          tc "exact reuse" test_custom_exact_reuse;
          tc "fragmentation beats bsd" test_custom_fragmentation_beats_bsd;
          tc "large objects" test_custom_large_objects;
          tc "pages retained" test_custom_pages_retained;
        ] );
      ( "predictive",
        [
          tc "trainer majority" test_predictive_trainer_majority;
          tc "arena bump" test_predictive_arena_bump;
          tc "chunk recycles" test_predictive_chunk_recycles;
          tc "retired chunk freed" test_predictive_retired_chunk_freed;
          tc "long goes to general" test_predictive_long_goes_to_general;
          tc "big shorts bypass arena" test_predictive_big_shorts_bypass_arena;
          tc "plain malloc is long" test_predictive_plain_malloc_is_long;
          tc "mixed random" test_predictive_mixed_random;
        ] );
      ( "cross-allocator",
        [
          tc "attributed traffic" test_all_allocators_emit_attributed_traffic;
          tc "segregated cheaper than search"
            test_segregated_cheaper_than_search;
          tc "no-free workload" test_no_free_workload;
        ]
        @ qsuite props_random );
    ]
