(* Tests for the domain-pool scheduler and — the point of it all — the
   guarantee that parallelism never changes the science: every
   experiment renders byte-identically under jobs=1 and jobs=4. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool basics                                                        *)
(* ------------------------------------------------------------------ *)

let test_pool_map_basic () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int))
        "map = List.map" (List.map f xs)
        (Exec.Pool.map pool f xs))

let test_pool_map_empty_and_singleton () =
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Exec.Pool.map pool succ []);
      Alcotest.(check (list int)) "singleton" [ 8 ] (Exec.Pool.map pool succ [ 7 ]))

let test_pool_jobs_clamped () =
  Exec.Pool.with_pool ~jobs:0 (fun pool ->
      check_int "jobs >= 1" 1 (Exec.Pool.jobs pool));
  Exec.Pool.with_pool ~jobs:(-3) (fun pool ->
      check_int "negative clamped" 1 (Exec.Pool.jobs pool));
  Exec.Pool.with_pool ~jobs:1_000_000 (fun pool ->
      check_bool "upper clamp" true (Exec.Pool.jobs pool <= 64))

let test_pool_exception_propagates () =
  (* The first failure by input position surfaces, like List.map. *)
  let f x = if x mod 3 = 0 then failwith (string_of_int x) else x in
  Exec.Pool.with_pool ~jobs:4 (fun pool ->
      check_bool "first raising element wins" true
        (match Exec.Pool.map pool f [ 1; 2; 9; 4; 6 ] with
        | exception Failure msg -> msg = "9"
        | _ -> false);
      (* The pool survives a failing batch. *)
      Alcotest.(check (list int))
        "pool still works" [ 2; 5 ]
        (Exec.Pool.map pool f [ 2; 5 ]))

let test_pool_map_after_shutdown_raises () =
  let pool = Exec.Pool.create ~jobs:4 in
  ignore (Exec.Pool.map pool succ [ 1; 2; 3 ]);
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool;
  (* idempotent *)
  check_bool "map after shutdown" true
    (match Exec.Pool.map pool succ [ 1 ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_with_pool_returns_and_cleans_up () =
  check_int "returns f's value" 42
    (Exec.Pool.with_pool ~jobs:2 (fun _ -> 42));
  check_bool "shuts down on exception" true
    (match Exec.Pool.with_pool ~jobs:2 (fun _ -> failwith "body") with
    | exception Failure msg -> msg = "body"
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Pool properties                                                    *)
(* ------------------------------------------------------------------ *)

(* Cheap but not constant-time, so workers genuinely interleave. *)
let work x =
  let acc = ref (x land 0xFFFF) in
  for i = 1 to 200 + (x land 63) do
    acc := (!acc * 31) + i
  done;
  (x, !acc)

let prop_map_matches_list_map =
  QCheck.Test.make ~count:60
    ~name:"Pool.map preserves order and equals List.map"
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(0 -- 60) small_int))
    (fun (jobs, xs) ->
      Exec.Pool.with_pool ~jobs (fun pool ->
          Exec.Pool.map pool work xs = List.map work xs))

let prop_exceptions_propagate =
  (* Negative elements raise; the surfaced exception must name the
     first negative by position (exactly what List.map would raise,
     since it applies the function left to right). *)
  let f x = if x < 0 then failwith (string_of_int x) else x in
  QCheck.Test.make ~count:60 ~name:"Pool.map re-raises the first failure"
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(1 -- 40) (int_range (-20) 20)))
    (fun (jobs, xs) ->
      let expected =
        match List.find_opt (fun x -> x < 0) xs with
        | Some x -> Error (string_of_int x)
        | None -> Ok (List.map f xs)
      in
      let got =
        Exec.Pool.with_pool ~jobs (fun pool ->
            match Exec.Pool.map pool f xs with
            | ys -> Ok ys
            | exception Failure msg -> Error msg)
      in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Futures and shutdown                                               *)
(* ------------------------------------------------------------------ *)

let test_async_await_value () =
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let futs = List.init 20 (fun i -> Exec.Pool.async pool (fun () -> i * i)) in
      Alcotest.(check (list int))
        "await returns the values"
        (List.init 20 (fun i -> i * i))
        (List.map Exec.Pool.await futs))

let test_async_await_exception () =
  Exec.Pool.with_pool ~jobs:2 (fun pool ->
      let fut = Exec.Pool.async pool (fun () -> failwith "boom") in
      check_bool "await re-raises" true
        (match Exec.Pool.await fut with
        | exception Failure msg -> msg = "boom"
        | _ -> false);
      check_bool "await is repeatable" true
        (match Exec.Pool.await fut with
        | exception Failure msg -> msg = "boom"
        | _ -> false))

let test_async_inline_when_no_workers () =
  (* jobs=1 spawns no domains: async degrades to run-now, await still
     hands the value over. *)
  Exec.Pool.with_pool ~jobs:1 (fun pool ->
      let ran = ref false in
      let fut =
        Exec.Pool.async pool (fun () ->
            ran := true;
            41)
      in
      check_bool "ran inline before await" true !ran;
      check_int "await returns" 41 (Exec.Pool.await fut))

let test_async_after_shutdown_runs_inline () =
  let pool = Exec.Pool.create ~jobs:4 in
  Exec.Pool.shutdown pool;
  let fut = Exec.Pool.async pool (fun () -> 7) in
  check_int "async after shutdown degrades, not raises" 7
    (Exec.Pool.await fut)

let test_shutdown_drains_queued_work () =
  (* Futures scheduled before shutdown must complete: shutdown joins
     workers only after the queue drains. *)
  let pool = Exec.Pool.create ~jobs:2 in
  let futs =
    List.init 50 (fun i ->
        Exec.Pool.async pool (fun () ->
            Thread.yield ();
            i))
  in
  Exec.Pool.shutdown pool;
  Alcotest.(check (list int))
    "every pre-shutdown task completed"
    (List.init 50 Fun.id)
    (List.map Exec.Pool.await futs)

let test_concurrent_shutdown_safe () =
  (* The signal-handler-vs-exit-path race: many threads calling
     shutdown at once (one of them mid-drain) must all return without
     raising.  Repeated a few times to give the race room. *)
  for _ = 1 to 5 do
    let pool = Exec.Pool.create ~jobs:4 in
    ignore (Exec.Pool.async pool (fun () -> Thread.yield ()));
    let threads =
      List.init 4 (fun _ -> Thread.create Exec.Pool.shutdown pool)
    in
    Exec.Pool.shutdown pool;
    List.iter Thread.join threads
  done;
  check_bool "no shutdown call raised" true true

(* ------------------------------------------------------------------ *)
(* Differential determinism: jobs must never change the numbers       *)
(* ------------------------------------------------------------------ *)

let test_parallel_grid_bit_identical () =
  (* Render every experiment at small scale from a sequentially filled
     grid and from a 4-domain grid; every byte must match.  This is the
     contract that lets `loclab --jobs N` exist at all. *)
  let ctx1 = Core.Context.create ~scale:0.02 ~jobs:1 () in
  let ctx4 = Core.Context.create ~scale:0.02 ~jobs:4 () in
  Core.Experiment.warm_all ctx4;
  List.iter
    (fun id ->
      Alcotest.(check string)
        (id ^ " identical under jobs=1 and jobs=4")
        (Core.Experiment.run ctx1 id)
        (Core.Experiment.run ctx4 id))
    (Core.Experiment.ids ())

let test_prefetch_then_get_shares_data () =
  (* get after prefetch must hit the memo, not re-run. *)
  let runs = Core.Runs.create ~scale:0.02 ~jobs:4 () in
  Core.Runs.prefetch runs [ ("make", "bsd"); ("make", "bsd"); ("gawk", "bsd") ];
  let a = Core.Runs.get runs ~profile:"make" ~allocator:"bsd" in
  let b = Core.Runs.get runs ~profile:"make" ~allocator:"bsd" in
  check_bool "memoized from prefetch" true (a == b)

let test_prefetch_unknown_key_raises () =
  let runs = Core.Runs.create ~scale:0.02 ~jobs:4 () in
  check_bool "unknown profile raises Not_found" true
    (match Core.Runs.prefetch runs [ ("nope", "bsd") ] with
    | exception Not_found -> true
    | _ -> false)

let tc name f = Alcotest.test_case name `Quick f
let qt t = QCheck_alcotest.to_alcotest t

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          tc "map basic" test_pool_map_basic;
          tc "map empty/singleton" test_pool_map_empty_and_singleton;
          tc "jobs clamped" test_pool_jobs_clamped;
          tc "exception propagates" test_pool_exception_propagates;
          tc "map after shutdown raises" test_pool_map_after_shutdown_raises;
          tc "with_pool returns and cleans up"
            test_with_pool_returns_and_cleans_up;
        ] );
      ( "pool-properties",
        [ qt prop_map_matches_list_map; qt prop_exceptions_propagate ] );
      ( "futures-shutdown",
        [
          tc "async/await values" test_async_await_value;
          tc "async/await exception" test_async_await_exception;
          tc "async inline when no workers" test_async_inline_when_no_workers;
          tc "async after shutdown runs inline"
            test_async_after_shutdown_runs_inline;
          tc "shutdown drains queued work" test_shutdown_drains_queued_work;
          tc "concurrent shutdown is safe" test_concurrent_shutdown_safe;
        ] );
      ( "determinism",
        [
          tc "parallel grid bit-identical" test_parallel_grid_bit_identical;
          tc "prefetch feeds the memo" test_prefetch_then_get_shares_data;
          tc "prefetch unknown key raises" test_prefetch_unknown_key_raises;
        ] );
    ]
