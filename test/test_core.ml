(* Tests for the core experiment layer.  These run real (tiny-scale)
   simulations, so they double as end-to-end integration tests of the
   whole stack: workload -> allocator -> trace -> cache/page simulators
   -> experiment rendering. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* One tiny shared context: the memoized grid makes the suite cheap. *)
let ctx = Core.Context.create ~scale:0.02 ()

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Runs                                                               *)
(* ------------------------------------------------------------------ *)

let test_runs_memoized () =
  let a = Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd" in
  let b = Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd" in
  check_bool "same physical data" true (a == b)

let test_runs_all_configs_present () =
  let d = Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd" in
  List.iter
    (fun cfg ->
      let name = cfg.Cachesim.Config.name in
      let s = Core.Artifact.cache_stats d ~name in
      check_bool (name ^ " saw traffic") true (s.Cachesim.Stats.accesses > 0))
    Core.Runs.standard_configs;
  check_bool "hierarchy L1 saw traffic" true
    ((Core.Artifact.l1 d).Cachesim.Stats.accesses > 0);
  check_bool "L2 sees fewer accesses than L1" true
    ((Core.Artifact.l2 d).Cachesim.Stats.accesses
    < (Core.Artifact.l1 d).Cachesim.Stats.accesses);
  check_bool "pages saw traffic" true
    (d.Core.Artifact.fault_curve.Vmsim.Fault_curve.references > 0)

let test_runs_page_and_cache_counts_agree () =
  let d = Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd" in
  check_int "page sim sees every reference event"
    d.Core.Artifact.summary.Core.Artifact.data_refs
    d.Core.Artifact.fault_curve.Vmsim.Fault_curve.references

let test_runs_miss_rate_decreases_with_size () =
  let d =
    Core.Runs.get ctx.Core.Context.runs ~profile:"espresso" ~allocator:"firstfit"
  in
  let r16 = Core.Artifact.miss_rate d ~cache:"16K-dm" in
  let r256 = Core.Artifact.miss_rate d ~cache:"256K-dm" in
  check_bool "16K worse than 256K" true (r16 >= r256)

let test_runs_exec_time_uses_misses () =
  let d = Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd" in
  let et16 =
    Core.Artifact.exec_time d ~model:ctx.Core.Context.model ~cache:"16K-dm"
  in
  let et256 =
    Core.Artifact.exec_time d ~model:ctx.Core.Context.model ~cache:"256K-dm"
  in
  check_bool "bigger cache, less time" true
    (Metrics.Exec_time.total_cycles et256
    <= Metrics.Exec_time.total_cycles et16)

let test_runs_bad_scale_rejected () =
  (* A real invalid_arg, not an assert: must hold under -noassert too. *)
  let rejects scale =
    match Core.Runs.create ~scale () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check_bool "scale 0 rejected" true (rejects 0.);
  check_bool "negative scale rejected" true (rejects (-1.));
  check_bool "nan rejected" true (rejects Float.nan);
  check_bool "bad jobs rejected" true
    (match Core.Runs.create ~jobs:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_runs_cross_simulator_consistency () =
  (* The 16K direct-mapped cache of the sweep and the hierarchy's L1
     are the same configuration fed by the same event stream through
     different sinks (Multi vs Hierarchy); their statistics must agree
     exactly, field by field. *)
  let d = Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd" in
  let sweep = Core.Artifact.cache_stats d ~name:"16K-dm" in
  let l1 = Core.Artifact.l1 d in
  let open Cachesim.Stats in
  check_int "accesses" sweep.accesses l1.accesses;
  check_int "misses" sweep.misses l1.misses;
  check_int "read accesses" sweep.read_accesses l1.read_accesses;
  check_int "read misses" sweep.read_misses l1.read_misses;
  check_int "write accesses" sweep.write_accesses l1.write_accesses;
  check_int "write misses" sweep.write_misses l1.write_misses;
  check_int "cold misses" sweep.cold_misses l1.cold_misses;
  check_int "writebacks" sweep.writebacks l1.writebacks;
  check_int "app accesses" sweep.app_accesses l1.app_accesses;
  check_int "app misses" sweep.app_misses l1.app_misses;
  check_int "malloc accesses" sweep.malloc_accesses l1.malloc_accesses;
  check_int "malloc misses" sweep.malloc_misses l1.malloc_misses;
  check_int "free accesses" sweep.free_accesses l1.free_accesses;
  check_int "free misses" sweep.free_misses l1.free_misses

let test_runs_unknown_keys () =
  check_bool "unknown profile" true
    (match Core.Runs.get ctx.Core.Context.runs ~profile:"nope" ~allocator:"bsd" with
    | exception Not_found -> true
    | _ -> false);
  check_bool "unknown allocator" true
    (match Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"nope" with
    | exception Not_found -> true
    | _ -> false)

let contains_substring ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_runs_cache_stats_unknown () =
  let d = Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd" in
  match Core.Artifact.cache_stats d ~name:"3K-dm" with
  | _ -> Alcotest.fail "expected Invalid_argument for unknown cache"
  | exception Invalid_argument msg ->
      check_bool "names the bad key" true
        (contains_substring ~needle:"3K-dm" msg);
      (* The message must list the configurations that were simulated. *)
      List.iter
        (fun (cfg : Cachesim.Config.t) ->
          check_bool (cfg.name ^ " listed") true
            (contains_substring ~needle:cfg.name msg))
        Core.Runs.standard_configs

let test_runs_custom_trained () =
  (* "custom" must build per-profile (trained on the histogram). *)
  let d = Core.Runs.get ctx.Core.Context.runs ~profile:"espresso" ~allocator:"custom" in
  check_bool "ran" true
    (d.Core.Artifact.summary.Core.Artifact.instructions > 0);
  check_bool "low fragmentation on trained profile" true
    (Allocators.Alloc_stats.internal_fragmentation d.Core.Artifact.alloc_stats
    < 0.15)

(* ------------------------------------------------------------------ *)
(* External trace ingestion                                           *)
(* ------------------------------------------------------------------ *)

(* A small synthetic capture with enough reuse to touch several cache
   sets: two interleaved strides over 64 blocks. *)
let sample_text =
  let b = Buffer.create 16_384 in
  for i = 0 to 999 do
    Printf.bprintf b "%s 0x%x\n"
      (if i mod 3 = 0 then "W" else "R")
      (0x4000 + (32 * (i mod 64)) + (i mod 2 * 0x10000))
  done;
  Buffer.contents b

let test_ingest_artifact_shape () =
  let runs = Core.Runs.create () in
  let art =
    Core.Runs.ingest runs ~format:Memsim.Trace.Source.Text ~data:sample_text
  in
  let m = art.Core.Artifact.meta in
  check_bool "external allocator" true
    (m.Core.Artifact.allocator = Core.Runs.external_allocator);
  check_bool "program names the stream ident" true
    (m.Core.Artifact.program
    = Printf.sprintf "trace:%x" m.Core.Artifact.trace_checksum);
  check_int "every access counted" 1000
    art.Core.Artifact.summary.Core.Artifact.data_refs;
  check_int "text events are App refs" 1000
    art.Core.Artifact.summary.Core.Artifact.app_refs;
  check_bool "provenance recorded" true
    (art.Core.Artifact.provenance.Core.Artifact.source_format = "text"
    && art.Core.Artifact.provenance.Core.Artifact.source_bytes
       = String.length sample_text);
  let events, ident =
    Core.Runs.trace_ident ~format:Memsim.Trace.Source.Text ~data:sample_text
  in
  check_int "ident pass counts the same events" 1000 events;
  Alcotest.(check string)
    "digest matches trace_digest"
    (Core.Runs.trace_digest ~ident)
    (Core.Artifact.digest_of_meta m);
  (* Every standard configuration and the hierarchy saw the traffic. *)
  List.iter
    (fun cfg ->
      let s =
        Core.Artifact.cache_stats art ~name:cfg.Cachesim.Config.name
      in
      check_int (cfg.Cachesim.Config.name ^ " accesses") 1000
        s.Cachesim.Stats.accesses)
    Core.Runs.standard_configs;
  check_int "L1 accesses" 1000 (Core.Artifact.l1 art).Cachesim.Stats.accesses

let test_ingest_jobs_identical () =
  (* Sharded replay is a wall-clock knob only: the artifact bytes are
     identical for any domain count. *)
  let art jobs =
    Core.Artifact.encode
      (Core.Runs.ingest (Core.Runs.create ~jobs ())
         ~format:Memsim.Trace.Source.Text ~data:sample_text)
  in
  Alcotest.(check string) "jobs=1 = jobs=2 encoding" (art 1) (art 2)

let test_ingest_format_identity_memoized () =
  (* The same event stream through a different capture format lands on
     the same cell: the second ingest is a memo hit, not a re-run. *)
  let runs = Core.Runs.create () in
  let a =
    Core.Runs.ingest runs ~format:Memsim.Trace.Source.Text ~data:sample_text
  in
  let csv =
    Memsim.Trace.write Memsim.Trace.Source.Csv (fun sink ->
        ignore (Memsim.Trace.read Memsim.Trace.Source.Text sample_text sink))
  in
  let sim0 = Core.Runs.simulated runs in
  let b = Core.Runs.ingest runs ~format:Memsim.Trace.Source.Csv ~data:csv in
  check_bool "memo hit" true (a == b);
  check_int "no extra simulation" sim0 (Core.Runs.simulated runs)

let test_ingest_malformed_raises () =
  check_bool "malformed trace raises Failure" true
    (match
       Core.Runs.ingest (Core.Runs.create ())
         ~format:Memsim.Trace.Source.Text ~data:"R 0x10\nbogus\n"
     with
    | exception Failure msg -> contains ~needle:"line 2" msg
    | _ -> false)

let test_get_source_synthetic_is_grid_cell () =
  let via_source =
    Core.Runs.get_source ctx.Core.Context.runs
      (Memsim.Trace.Source.Synthetic { program = "make"; allocator = "bsd" })
  in
  let direct =
    Core.Runs.get ctx.Core.Context.runs ~profile:"make" ~allocator:"bsd"
  in
  check_bool "same memoized artifact" true (via_source == direct)

let test_ingest_report_renders () =
  let art =
    Core.Runs.ingest (Core.Runs.create ())
      ~format:Memsim.Trace.Source.Text ~data:sample_text
  in
  let out = Core.Ingest.report art in
  List.iter
    (fun needle ->
      check_bool ("report has " ^ needle) true (contains ~needle out))
    [ "External trace cell"; "text capture"; "16K-dm"; "256K-dm";
      Core.Artifact.digest_of_meta art.Core.Artifact.meta ]

(* ------------------------------------------------------------------ *)
(* Experiments                                                        *)
(* ------------------------------------------------------------------ *)

let test_experiment_registry () =
  check_int "twenty-four experiments" 24 (List.length Core.Experiment.all);
  List.iter
    (fun id ->
      check_bool (id ^ " findable") true
        ((Core.Experiment.find id).Core.Experiment.id = id))
    (Core.Experiment.ids ());
  check_bool "unknown raises" true
    (match Core.Experiment.find "fig99" with
    | exception Not_found -> true
    | _ -> false)

let test_every_experiment_renders () =
  List.iter
    (fun e ->
      let out = e.Core.Experiment.render ctx in
      check_bool (e.Core.Experiment.id ^ " non-empty") true
        (String.length out > 100))
    Core.Experiment.all

let test_fig1_mentions_all_programs_and_allocators () =
  let out = Core.Experiment.run ctx "fig1" in
  List.iter
    (fun (_, label) ->
      check_bool ("has " ^ label) true (contains ~needle:label out))
    (Core.Context.five_programs @ Core.Context.paper_allocators)

let test_fig2_reports_footprints () =
  let out = Core.Experiment.run ctx "fig2" in
  check_bool "has footprint block" true (contains ~needle:"footprint" out);
  check_bool "has legend" true (contains ~needle:"legend" out)

let test_fig4_baseline_is_one () =
  let out = Core.Experiment.run ctx "fig4" in
  (* FirstFit's normalized columns are exactly 1.000. *)
  check_bool "baseline ones" true (contains ~needle:"1.000" out)

let test_fig9_static () =
  let out = Core.Experiment.run ctx "fig9" in
  check_bool "shows classes" true (contains ~needle:"Size classes" out);
  check_bool "shows mapping arrow" true (contains ~needle:"->" out)

let test_tab6_has_tag_rows () =
  let out = Core.Experiment.run ctx "tab6" in
  check_bool "with tags row" true (contains ~needle:"with tags" out);
  check_bool "no tags row" true (contains ~needle:"no tags" out);
  check_bool "increase row" true (contains ~needle:"increase" out)

(* ------------------------------------------------------------------ *)
(* Headline results (structural assertions at small scale)            *)
(* ------------------------------------------------------------------ *)

let test_experiments_deterministic_across_contexts () =
  (* A fresh context at the same scale reproduces the rendering
     byte-for-byte (the determinism the paper relies on: "our
     experiments did not require statistically averaging multiple
     runs"). *)
  let ctx2 = Core.Context.create ~scale:0.02 () in
  List.iter
    (fun id ->
      Alcotest.(check string)
        (id ^ " deterministic")
        (Core.Experiment.run ctx id)
        (Core.Experiment.run ctx2 id))
    [ "tab2"; "fig1" ]

let test_headline_firstfit_worst_gs_misses () =
  (* The paper's central claim: sequential fit has the worst locality.
     At 16K on GS, FirstFit's miss rate must exceed the segregated
     allocators'. *)
  let rate key =
    Core.Artifact.miss_rate
      (Core.Runs.get ctx.Core.Context.runs ~profile:"gs-large" ~allocator:key)
      ~cache:"16K-dm"
  in
  let ff = rate "firstfit" in
  (* custom/quickfit are compared only at realistic scales (their
     page-granular layouts pay a fixed cost that dominates tiny runs);
     see EXPERIMENTS.md. *)
  List.iter
    (fun key ->
      check_bool ("firstfit worse than " ^ key) true (ff > rate key))
    [ "bsd"; "gnu-local" ]

let test_headline_bsd_wastes_space () =
  let heap key =
    (Core.Runs.get ctx.Core.Context.runs ~profile:"gs-large" ~allocator:key)
      .Core.Artifact.summary.Core.Artifact.heap_used
  in
  check_bool "bsd sbrk > quickfit sbrk * 1.3" true
    (float_of_int (heap "bsd") > 1.3 *. float_of_int (heap "quickfit"))

let test_headline_segregated_fastest_cpu () =
  let instr key =
    let d = Core.Runs.get ctx.Core.Context.runs ~profile:"espresso" ~allocator:key in
    d.Core.Artifact.summary.Core.Artifact.malloc_instructions
    + d.Core.Artifact.summary.Core.Artifact.free_instructions
  in
  check_bool "bsd cheaper than firstfit" true (instr "bsd" < instr "firstfit");
  check_bool "bsd cheaper than gnu-local" true (instr "bsd" < instr "gnu-local")

let test_headline_tags_increase_misses () =
  (* Table 6's direction: emulated boundary tags cannot reduce misses. *)
  let misses key =
    (Core.Artifact.cache_stats
       (Core.Runs.get ctx.Core.Context.runs ~profile:"gs-large" ~allocator:key)
       ~name:"64K-dm")
      .Cachesim.Stats.misses
  in
  check_bool "tags do not reduce misses" true
    (misses "gnu-local-tags" >= misses "gnu-local")

(* ------------------------------------------------------------------ *)
(* Options: one resolution path for every subcommand                  *)
(* ------------------------------------------------------------------ *)

(* Simulated environment: build consults [getenv] only, so these tests
   are hermetic regardless of the real LOCLAB_* variables. *)
let env pairs name = List.assoc_opt name pairs
let no_env _ = None

let build_ok ?getenv ?scale ?penalty ?jobs ?store_dir ?cpu () =
  match
    Core.Context.Options.build ?getenv ?scale ?penalty ?jobs ?store_dir ?cpu ()
  with
  | Ok o -> o
  | Error msg -> Alcotest.failf "unexpected build error: %s" msg

let build_err ?getenv ?scale ?penalty ?jobs ?store_dir ?cpu () =
  match
    Core.Context.Options.build ?getenv ?scale ?penalty ?jobs ?store_dir ?cpu ()
  with
  | Error msg -> msg
  | Ok _ -> Alcotest.fail "expected build to fail"

let test_options_defaults () =
  let o = build_ok ~getenv:no_env () in
  check_bool "defaults" true (o = Core.Context.Options.default);
  check_bool "no store by default" true (o.Core.Context.Options.store_dir = None)

let test_options_env_beats_default () =
  let getenv =
    env
      [
        ("LOCLAB_SCALE", "0.5");
        ("LOCLAB_PENALTY", "40");
        ("LOCLAB_JOBS", "2");
        ("LOCLAB_STORE", "/tmp/opt-store");
        ("LOCLAB_CPU", "haswell");
      ]
  in
  let o = build_ok ~getenv () in
  Alcotest.(check (float 0.)) "scale from env" 0.5 o.Core.Context.Options.scale;
  check_int "penalty from env" 40 o.Core.Context.Options.penalty;
  check_int "jobs from env" 2 o.Core.Context.Options.jobs;
  check_bool "store from env" true
    (o.Core.Context.Options.store_dir = Some "/tmp/opt-store");
  Alcotest.(check string)
    "cpu from env" "haswell" o.Core.Context.Options.cpu.Cachesim.Cpu.key

let test_options_flag_beats_env () =
  (* The flag wins outright: the variable is not even read, so a
     garbage environment cannot break an explicit flag. *)
  let getenv =
    env [ ("LOCLAB_SCALE", "garbage"); ("LOCLAB_PENALTY", "also garbage") ]
  in
  let o = build_ok ~getenv ~scale:0.1 ~penalty:10 () in
  Alcotest.(check (float 0.)) "flag scale" 0.1 o.Core.Context.Options.scale;
  check_int "flag penalty" 10 o.Core.Context.Options.penalty

let test_options_bad_env_names_variable () =
  List.iter
    (fun (var, value) ->
      let msg = build_err ~getenv:(env [ (var, value) ]) () in
      check_bool
        (Printf.sprintf "%s=%s error names it" var value)
        true
        (contains ~needle:var msg))
    [
      ("LOCLAB_SCALE", "garbage");
      ("LOCLAB_SCALE", "9.0");
      ("LOCLAB_PENALTY", "-1");
      ("LOCLAB_PENALTY", "x");
      ("LOCLAB_JOBS", "nope");
      ("LOCLAB_CPU", "z80");
    ]

let test_options_flag_and_env_validated_identically () =
  (* Out-of-range values fail the same way from either source. *)
  ignore (build_err ~getenv:no_env ~scale:9.0 ());
  ignore (build_err ~getenv:(env [ ("LOCLAB_SCALE", "9.0") ]) ());
  ignore (build_err ~getenv:no_env ~scale:0.0 ());
  ignore (build_err ~getenv:no_env ~penalty:(-1) ());
  ignore (build_err ~getenv:(env [ ("LOCLAB_PENALTY", "-1") ]) ());
  check_bool "both sources validated" true true

let test_options_store_empty_means_none () =
  let o = build_ok ~getenv:no_env ~store_dir:"" () in
  check_bool "empty flag = no store" true
    (o.Core.Context.Options.store_dir = None);
  let o = build_ok ~getenv:(env [ ("LOCLAB_STORE", "") ]) () in
  check_bool "empty env = no store" true
    (o.Core.Context.Options.store_dir = None)

let test_options_jobs_zero_means_per_core () =
  let o = build_ok ~getenv:no_env ~jobs:0 () in
  check_bool "jobs 0 resolves >= 1" true (o.Core.Context.Options.jobs >= 1);
  let o = build_ok ~getenv:(env [ ("LOCLAB_JOBS", "0") ]) () in
  check_bool "env jobs 0 resolves >= 1" true (o.Core.Context.Options.jobs >= 1)

let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "core"
    [
      ( "runs",
        [
          tc "memoized" test_runs_memoized;
          tc "all configs present" test_runs_all_configs_present;
          tc "page/cache counts agree" test_runs_page_and_cache_counts_agree;
          tc "miss rate decreases with size"
            test_runs_miss_rate_decreases_with_size;
          tc "exec time uses misses" test_runs_exec_time_uses_misses;
          tc "bad scale rejected" test_runs_bad_scale_rejected;
          tc "cross-simulator consistency"
            test_runs_cross_simulator_consistency;
          tc "unknown keys" test_runs_unknown_keys;
          tc "cache_stats unknown name" test_runs_cache_stats_unknown;
          tc "custom trained" test_runs_custom_trained;
        ] );
      ( "ingest",
        [
          tc "artifact shape" test_ingest_artifact_shape;
          tc "jobs identical" test_ingest_jobs_identical;
          tc "format identity memoized"
            test_ingest_format_identity_memoized;
          tc "malformed raises" test_ingest_malformed_raises;
          tc "synthetic source is the grid cell"
            test_get_source_synthetic_is_grid_cell;
          tc "report renders" test_ingest_report_renders;
        ] );
      ( "experiments",
        [
          tc "registry" test_experiment_registry;
          tc "every experiment renders" test_every_experiment_renders;
          tc "fig1 mentions everything"
            test_fig1_mentions_all_programs_and_allocators;
          tc "fig2 reports footprints" test_fig2_reports_footprints;
          tc "fig4 baseline is one" test_fig4_baseline_is_one;
          tc "fig9 static" test_fig9_static;
          tc "tab6 tag rows" test_tab6_has_tag_rows;
          tc "deterministic across contexts"
            test_experiments_deterministic_across_contexts;
        ] );
      ( "options",
        [
          tc "defaults" test_options_defaults;
          tc "env beats default" test_options_env_beats_default;
          tc "flag beats env" test_options_flag_beats_env;
          tc "bad env names the variable" test_options_bad_env_names_variable;
          tc "flag and env validated identically"
            test_options_flag_and_env_validated_identically;
          tc "empty store means none" test_options_store_empty_means_none;
          tc "jobs 0 means per-core" test_options_jobs_zero_means_per_core;
        ] );
      ( "headline",
        [
          tc "firstfit worst GS misses" test_headline_firstfit_worst_gs_misses;
          tc "bsd wastes space" test_headline_bsd_wastes_space;
          tc "segregated fastest cpu" test_headline_segregated_fastest_cpu;
          tc "tags increase misses" test_headline_tags_increase_misses;
        ] );
    ]
