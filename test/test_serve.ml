(* The serve wire protocol and the server itself: codec round-trips
   (unit and property), framing corruption (truncation at every split
   point, bit flips, bad magic, oversized length claims), version
   negotiation, and an in-process client/server integration test
   covering the cold/warm byte-identity contract and typed error
   replies. *)

[@@@warning "-69"] (* tests poke records partially *)

module P = Serve.Protocol
module Codec = Store.Codec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Addresses                                                          *)
(* ------------------------------------------------------------------ *)

let test_addr_parse () =
  let ok s = function
    | expected -> (
        match P.addr_of_string s with
        | Ok a -> check_bool (s ^ " parses") true (a = expected)
        | Error e -> Alcotest.failf "%s: unexpected error %s" s e)
  in
  ok "unix:/tmp/x.sock" (P.Unix_path "/tmp/x.sock");
  ok "/tmp/bare.sock" (P.Unix_path "/tmp/bare.sock");
  ok "tcp:localhost:8080" (P.Tcp ("localhost", 8080));
  ok "tcp::9090" (P.Tcp ("127.0.0.1", 9090));
  List.iter
    (fun s ->
      check_bool (s ^ " rejected") true
        (match P.addr_of_string s with Error _ -> true | Ok _ -> false))
    [ "tcp:host:notaport"; "tcp:host:70000"; "tcp:host:-1"; "tcp:host:"; "" ]

let test_addr_round_trip () =
  List.iter
    (fun a ->
      match P.addr_of_string (P.addr_to_string a) with
      | Ok b -> check_bool "to_string round-trips" true (a = b)
      | Error e -> Alcotest.failf "round trip failed: %s" e)
    [ P.Unix_path "/tmp/s.sock"; P.Tcp ("example.org", 80); P.Tcp ("127.0.0.1", 1) ]

(* ------------------------------------------------------------------ *)
(* Payload codec: unit round-trips                                    *)
(* ------------------------------------------------------------------ *)

let req_round_trip r =
  match P.decode_request (P.encode_request r) with
  | Ok (r', None) -> check_bool "request round-trips" true (r = r')
  | Ok (_, Some _) -> Alcotest.fail "untraced request grew a trace context"
  | Error e -> Alcotest.failf "decode failed: %s" (P.decode_error_to_string e)

let resp_round_trip r =
  match P.decode_response (P.encode_response r) with
  | Ok (r', None) -> check_bool "response round-trips" true (r = r')
  | Ok (_, Some _) -> Alcotest.fail "untraced response grew a trace context"
  | Error e -> Alcotest.failf "decode failed: %s" (P.decode_error_to_string e)

let sample_stats =
  {
    P.uptime_seconds = 12.5;
    connections = 3;
    requests = 100;
    errors = 2;
    warm_cells = 40;
    simulated_cells = 9;
    inflight = 1;
    p50_us = 130.0;
    p99_us = 4200.0;
  }

let test_request_round_trips () =
  List.iter req_round_trip
    [
      P.Health;
      P.Stats;
      P.Metrics;
      P.Run_cell { program = "espresso"; allocator = "bsd"; scale = 0.02 };
      P.Run_cell { program = ""; allocator = "\x00\xffbin"; scale = 1e-9 };
      P.Run_experiment { id = "tab4"; scale = 1.0 };
      P.Ingest { format = "text"; trace = "R 0x1000\nW 0x2000\n" };
      P.Ingest { format = ""; trace = "\x00\xff raw bytes" };
    ]

let test_response_round_trips () =
  List.iter resp_round_trip
    [
      P.Health_ok { server_version = "loclab/1.0.0"; protocol_version = 1 };
      P.Stats_ok sample_stats;
      P.Metrics_ok "# HELP x\nx 1\n";
      P.Cell_ok { digest = String.make 32 'a'; artifact = "\x01\x02payload" };
      P.Report_ok "table\n";
      P.Error { code = P.Bad_request; message = "nope" };
      P.Error { code = P.Unknown_key; message = "" };
      P.Error { code = P.Unsupported_version; message = "v9" };
      P.Error { code = P.Overloaded; message = "draining" };
      P.Error { code = P.Internal; message = "oops" };
    ]

let test_decode_rejects_junk () =
  let malformed = function
    | Error (P.Malformed _) -> true
    | Ok _ | Error (P.Unsupported _) -> false
  in
  check_bool "empty request payload" true (malformed (P.decode_request ""));
  check_bool "empty response payload" true (malformed (P.decode_response ""));
  (* Right version, unknown tag. *)
  let w = Codec.Writer.create () in
  Codec.Writer.int w P.min_version;
  Codec.Writer.int w 99;
  check_bool "unknown request tag" true
    (malformed (P.decode_request (Codec.Writer.contents w)));
  check_bool "unknown response tag" true
    (malformed (P.decode_response (Codec.Writer.contents w)));
  (* A valid message with trailing garbage. *)
  check_bool "trailing bytes" true
    (malformed (P.decode_request (P.encode_request P.Health ^ "x")));
  (* Truncation at every prefix of a payload must stay typed. *)
  let payload =
    P.encode_request
      (P.Run_cell { program = "espresso"; allocator = "bsd"; scale = 0.5 })
  in
  for len = 0 to String.length payload - 1 do
    check_bool
      (Printf.sprintf "truncated payload at %d" len)
      true
      (malformed (P.decode_request (String.sub payload 0 len)))
  done

let test_version_negotiation () =
  (* A well-formed frame from the future: version 99, then whatever. *)
  let w = Codec.Writer.create () in
  Codec.Writer.int w 99;
  Codec.Writer.int w 0;
  let payload = Codec.Writer.contents w in
  check_bool "future request version" true
    (match P.decode_request payload with
    | Error (P.Unsupported 99) -> true
    | _ -> false);
  check_bool "future response version" true
    (match P.decode_response payload with
    | Error (P.Unsupported 99) -> true
    | _ -> false)

let test_trace_context_round_trip () =
  let trace = { P.trace_id = "deadbeef00112233"; trace_flags = 1 } in
  (match P.decode_request (P.encode_request ~trace P.Health) with
  | Ok (P.Health, Some tc) ->
      check_string "request trace id" trace.P.trace_id tc.P.trace_id;
      check_int "request trace flags" trace.P.trace_flags tc.P.trace_flags
  | _ -> Alcotest.fail "traced request did not round-trip");
  let resp = P.Report_ok "table\n" in
  match P.decode_response (P.encode_response ~trace resp) with
  | Ok (r, Some tc) ->
      check_bool "traced response value" true (r = resp);
      check_string "response trace id" trace.P.trace_id tc.P.trace_id
  | _ -> Alcotest.fail "traced response did not round-trip"

let test_untraced_encoding_is_version1 () =
  (* Version selection is by presence: without a trace context the
     encoder must emit byte-identical version-1 payloads, which is the
     whole backward-compatibility story.  Pin the bytes. *)
  let v1 tag =
    let w = Codec.Writer.create () in
    Codec.Writer.int w 1;
    Codec.Writer.int w tag;
    Codec.Writer.contents w
  in
  check_string "untraced Health = v1 bytes" (v1 0) (P.encode_request P.Health);
  check_string "untraced Stats = v1 bytes" (v1 1) (P.encode_request P.Stats);
  (* And a traced encoding announces version 2. *)
  let traced =
    P.encode_request ~trace:{ P.trace_id = "ab"; trace_flags = 0 } P.Health
  in
  let r = Codec.Reader.of_string traced in
  check_int "traced payload version" 2 (Codec.Reader.int r)

(* ------------------------------------------------------------------ *)
(* Payload codec: properties                                          *)
(* ------------------------------------------------------------------ *)

let gen_scale = QCheck.Gen.map (fun i -> float_of_int i /. 256.) (QCheck.Gen.int_range 1 1024)

let gen_request =
  QCheck.Gen.(
    oneof
      [
        return P.Health;
        return P.Stats;
        return P.Metrics;
        map3
          (fun program allocator scale -> P.Run_cell { program; allocator; scale })
          string_small string_small gen_scale;
        map2 (fun id scale -> P.Run_experiment { id; scale }) string_small gen_scale;
        map2 (fun format trace -> P.Ingest { format; trace }) string_small
          string_small;
      ])

let gen_response =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun server_version protocol_version ->
            P.Health_ok { server_version; protocol_version })
          string_small small_nat;
        return (P.Stats_ok sample_stats);
        map (fun s -> P.Metrics_ok s) string_small;
        map2 (fun digest artifact -> P.Cell_ok { digest; artifact }) string_small string_small;
        map (fun s -> P.Report_ok s) string_small;
        map2
          (fun code message -> P.Error { code; message })
          (oneofl
             [ P.Bad_request; P.Unknown_key; P.Unsupported_version; P.Overloaded; P.Internal ])
          string_small;
      ])

let gen_trace =
  QCheck.Gen.(
    oneof
      [
        return None;
        map2
          (fun id flags -> Some { P.trace_id = id; trace_flags = flags })
          (map
             (fun n -> Printf.sprintf "%x" (abs n))
             (int_range 0 max_int))
          (int_range 0 3);
      ])

let prop_request_round_trip =
  QCheck.Test.make ~count:200 ~name:"request encode/decode round-trips"
    (QCheck.make QCheck.Gen.(pair gen_request gen_trace))
    (fun (r, trace) ->
      P.decode_request (P.encode_request ?trace r) = Ok (r, trace))

let prop_response_round_trip =
  QCheck.Test.make ~count:200 ~name:"response encode/decode round-trips"
    (QCheck.make QCheck.Gen.(pair gen_response gen_trace))
    (fun (r, trace) ->
      P.decode_response (P.encode_response ?trace r) = Ok (r, trace))

let prop_garbage_never_raises =
  (* decode_* must answer arbitrary bytes with a typed error (or, by
     astronomical luck, a value) — never an exception. *)
  QCheck.Test.make ~count:500 ~name:"decode never raises on garbage"
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      (match P.decode_request s with Ok _ | Error _ -> true)
      && (match P.decode_response s with Ok _ | Error _ -> true))

(* ------------------------------------------------------------------ *)
(* Frame I/O over real file descriptors                               *)
(* ------------------------------------------------------------------ *)

(* Feed exactly [bytes] to read_frame through a pipe, then EOF. *)
let read_from_bytes ?first bytes =
  let r, w = Unix.pipe ~cloexec:true () in
  let writer =
    Thread.create
      (fun () ->
        let n = String.length bytes in
        let off = ref 0 in
        while !off < n do
          off := !off + Unix.write_substring w bytes !off (n - !off)
        done;
        Unix.close w)
      ()
  in
  let result = P.read_frame ?first r in
  Thread.join writer;
  Unix.close r;
  result

let framed payload = Codec.Frame.frame ~magic:P.magic payload

let test_frame_round_trip_over_fd () =
  let payload = P.encode_request (P.Run_experiment { id = "tab4"; scale = 0.25 }) in
  match read_from_bytes (framed payload) with
  | Ok (Some p) -> check_string "payload survives the wire" payload p
  | Ok None -> Alcotest.fail "unexpected EOF"
  | Error e -> Alcotest.failf "read_frame: %s" e

let test_frame_sniffed_prefix () =
  (* The server hands read_frame the bytes its protocol sniff consumed. *)
  let payload = P.encode_request P.Health in
  let bytes = framed payload in
  let first = String.sub bytes 0 4 in
  let rest = String.sub bytes 4 (String.length bytes - 4) in
  match read_from_bytes ~first rest with
  | Ok (Some p) -> check_string "prefix + rest reassemble" payload p
  | _ -> Alcotest.fail "sniffed read failed"

let test_frame_clean_eof () =
  check_bool "0 bytes = clean EOF" true (read_from_bytes "" = Ok None)

let test_frame_truncation_every_split () =
  (* Cutting the stream anywhere after byte 0 is a torn frame: a typed
     Error, never Ok None and never an exception. *)
  let bytes = framed (P.encode_request P.Health) in
  for len = 1 to String.length bytes - 1 do
    check_bool
      (Printf.sprintf "truncated at %d/%d" len (String.length bytes))
      true
      (match read_from_bytes (String.sub bytes 0 len) with
      | Error _ -> true
      | Ok _ -> false)
  done

let test_frame_bit_flips () =
  (* Flip one bit in every byte position: magic, length, payload and
     CRC corruption must all surface as Error. *)
  let bytes = framed (P.encode_request P.Health) in
  for i = 0 to String.length bytes - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    check_bool
      (Printf.sprintf "bit flip at %d" i)
      true
      (match read_from_bytes (Bytes.to_string b) with
      | Error _ -> true
      | Ok _ -> false)
  done

let test_frame_oversized_length_claim () =
  (* Header claiming a payload bigger than max_frame_bytes must be
     rejected from the header alone (no multi-GiB allocation). *)
  let b = Bytes.create (String.length P.magic + 8) in
  Bytes.blit_string P.magic 0 b 0 (String.length P.magic);
  Bytes.set_int64_le b (String.length P.magic)
    (Int64.of_int (P.max_frame_bytes + 1));
  check_bool "oversized claim rejected" true
    (match read_from_bytes (Bytes.to_string b) with
    | Error _ -> true
    | Ok _ -> false)

let test_frame_bad_magic () =
  let bytes = framed (P.encode_request P.Health) in
  let b = Bytes.of_string bytes in
  Bytes.blit_string "NOTSRV1\n" 0 b 0 8;
  check_bool "foreign magic rejected" true
    (match read_from_bytes (Bytes.to_string b) with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* In-process server/client integration                               *)
(* ------------------------------------------------------------------ *)

let fresh_paths () =
  let tag = Printf.sprintf "loclab-test-%d-%d" (Unix.getpid ()) (Random.bits ()) in
  ( Filename.concat (Filename.get_temp_dir_name ()) (tag ^ ".sock"),
    Filename.concat (Filename.get_temp_dir_name ()) (tag ^ "-store") )

let with_server ?access_log ?access_log_sample f =
  let sock, store_dir = fresh_paths () in
  let store = Store.open_ store_dir in
  let server =
    Serve.Server.create ~jobs:1 ~store ?access_log ?access_log_sample
      ~listen:(P.Unix_path sock) ()
  in
  let runner = Thread.create Serve.Server.run server in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.shutdown server;
      Thread.join runner)
    (fun () -> f ~sock ~store server)

let rpc client req =
  match Serve.Client.request client req with
  | Ok resp -> resp
  | Error e ->
      Alcotest.failf "transport error: %s" (Serve.Client.error_to_string e)

let test_integration_lifecycle () =
  with_server (fun ~sock ~store server ->
      let addr = P.Unix_path sock in
      Serve.Client.with_connection addr (fun c ->
          (* Health. *)
          (match rpc c P.Health with
          | P.Health_ok { protocol_version; _ } ->
              check_int "protocol version" P.version protocol_version
          | r -> Alcotest.failf "health: unexpected %s" (P.encode_response r));
          (* Cold cell: simulated, written through to the store. *)
          let cell =
            P.Run_cell { program = "espresso"; allocator = "bsd"; scale = 0.02 }
          in
          let digest, cold_bytes =
            match rpc c cell with
            | P.Cell_ok { digest; artifact } -> (digest, artifact)
            | r -> Alcotest.failf "cold cell: unexpected %s" (P.encode_response r)
          in
          (match Core.Artifact.decode_meta cold_bytes with
          | Ok m ->
              check_string "meta program" "espresso" m.Core.Artifact.program;
              check_string "meta allocator" "bsd" m.Core.Artifact.allocator
          | Error e -> Alcotest.failf "artifact meta: %s" e);
          (* The reply carries exactly the bytes the store persisted. *)
          (match Store.find store ~digest with
          | Store.Hit payload -> check_string "store payload = reply" payload cold_bytes
          | Store.Miss -> Alcotest.fail "cell not written through"
          | Store.Corrupt e -> Alcotest.failf "store corrupt: %s" e);
          (* Warm re-fetch: byte-identical. *)
          (match rpc c cell with
          | P.Cell_ok { digest = d2; artifact = warm_bytes } ->
              check_string "warm digest" digest d2;
              check_string "warm bytes = cold bytes" cold_bytes warm_bytes
          | r -> Alcotest.failf "warm cell: unexpected %s" (P.encode_response r));
          (* Typed errors, connection intact afterwards. *)
          (match
             rpc c (P.Run_cell { program = "no-such"; allocator = "bsd"; scale = 0.02 })
           with
          | P.Error { code = P.Unknown_key; _ } -> ()
          | r -> Alcotest.failf "unknown program: unexpected %s" (P.encode_response r));
          (match
             rpc c (P.Run_cell { program = "espresso"; allocator = "bsd"; scale = 99.0 })
           with
          | P.Error { code = P.Bad_request; _ } -> ()
          | r -> Alcotest.failf "bad scale: unexpected %s" (P.encode_response r));
          (* Stats reflect the work. *)
          match rpc c P.Stats with
          | P.Stats_ok s ->
              check_int "one simulated cell" 1 s.P.simulated_cells;
              check_int "one warm cell" 1 s.P.warm_cells;
              check_bool "errors counted" true (s.P.errors >= 2)
          | r -> Alcotest.failf "stats: unexpected %s" (P.encode_response r));
      (* A future-version request gets a typed reply, not a hangup. *)
      Serve.Client.with_connection addr (fun _ -> ());
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let w = Codec.Writer.create () in
      Codec.Writer.int w 99;
      Codec.Writer.int w 0;
      P.write_frame fd (Codec.Writer.contents w);
      (match P.read_frame fd with
      | Ok (Some payload) -> (
          match P.decode_response payload with
          | Ok (P.Error { code = P.Unsupported_version; _ }, _) -> ()
          | _ -> Alcotest.fail "expected Unsupported_version reply")
      | _ -> Alcotest.fail "no reply to future-version request");
      (* A torn/garbage frame gets Bad_request before the hangup. *)
      let n =
        Unix.write_substring fd "garbage that is not a frame at all....." 0 39
      in
      check_int "garbage written" 39 n;
      (match P.read_frame fd with
      | Ok (Some payload) -> (
          match P.decode_response payload with
          | Ok (P.Error { code = P.Bad_request; _ }, _) -> ()
          | _ -> Alcotest.fail "expected Bad_request reply")
      | _ -> Alcotest.fail "no reply to garbage");
      Unix.close fd;
      (* Plain HTTP on the same socket. *)
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let http_req = "GET /metrics HTTP/1.0\r\n\r\n" in
      ignore (Unix.write_substring fd http_req 0 (String.length http_req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Unix.close fd;
      let body = Buffer.contents buf in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check_bool "HTTP 200" true (contains body "200");
      check_bool "metrics exposition served" true
        (contains body "loclab_serve_requests_total");
      (* Server-side stats agree with what we drove through it. *)
      let s = Serve.Server.stats server in
      check_bool "requests counted" true (s.P.requests >= 7);
      check_bool "uptime sane" true (s.P.uptime_seconds >= 0.));
  (* Graceful shutdown ran in with_server's finally; after it the
     socket file must be gone. *)
  ()

let test_integration_ingest () =
  with_server (fun ~sock ~store _server ->
      let text = "R 0x1000\nW 0x1020\nR 0x1000\nW 0x20000\n" in
      Serve.Client.with_connection (P.Unix_path sock) (fun c ->
          (* Cold ingest: simulated and written through. *)
          let digest, cold_bytes =
            match rpc c (P.Ingest { format = "text"; trace = text }) with
            | P.Cell_ok { digest; artifact } -> (digest, artifact)
            | r ->
                Alcotest.failf "cold ingest: unexpected %s"
                  (P.encode_response r)
          in
          (match Store.find store ~digest with
          | Store.Hit payload ->
              check_string "store payload = reply" payload cold_bytes
          | Store.Miss -> Alcotest.fail "ingest not written through"
          | Store.Corrupt e -> Alcotest.failf "store corrupt: %s" e);
          (* Warm re-ingest of the same stream in another capture
             format: same digest, byte-identical artifact. *)
          let csv =
            Memsim.Trace.write Memsim.Trace.Source.Csv (fun sink ->
                ignore
                  (Memsim.Trace.read Memsim.Trace.Source.Text text sink))
          in
          (match rpc c (P.Ingest { format = "csv"; trace = csv }) with
          | P.Cell_ok { digest = d2; artifact = warm_bytes } ->
              check_string "warm digest" digest d2;
              check_string "warm bytes = cold bytes" cold_bytes warm_bytes
          | r ->
              Alcotest.failf "warm ingest: unexpected %s"
                (P.encode_response r));
          (* Typed errors: unknown format, malformed capture. *)
          (match rpc c (P.Ingest { format = "elf"; trace = text }) with
          | P.Error { code = P.Bad_request; _ } -> ()
          | r ->
              Alcotest.failf "unknown format: unexpected %s"
                (P.encode_response r));
          (match
             rpc c (P.Ingest { format = "text"; trace = "R 0x10\nbogus\n" })
           with
          | P.Error { code = P.Bad_request; _ } -> ()
          | r ->
              Alcotest.failf "malformed trace: unexpected %s"
                (P.encode_response r));
          match rpc c P.Stats with
          | P.Stats_ok s ->
              check_int "one simulated ingest" 1 s.P.simulated_cells;
              check_int "one warm ingest" 1 s.P.warm_cells
          | r -> Alcotest.failf "stats: unexpected %s" (P.encode_response r)))

(* ------------------------------------------------------------------ *)
(* Request tracing end to end                                         *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* The tentpole contract: a client-supplied request id must surface in
   the echoed trace context, the access log, the /status slow-request
   table and the span ring — one id, four observability surfaces. *)
let test_trace_propagation () =
  let access_log =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "loclab-test-%d-%d-access.jsonl" (Unix.getpid ())
         (Random.bits ()))
  in
  Telemetry.Rctx.Slow.reset ();
  Telemetry.Span.reset ();
  Telemetry.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Span.set_enabled false;
      try Sys.remove access_log with Sys_error _ -> ())
    (fun () ->
      with_server ~access_log (fun ~sock ~store:_ server ->
          let id = "feedface01234567" in
          let trace = { P.trace_id = id; trace_flags = P.flag_force_sample } in
          Serve.Client.with_connection (P.Unix_path sock) (fun c ->
              (match
                 Serve.Client.request_traced ~trace c
                   (P.Run_cell
                      { program = "espresso"; allocator = "bsd"; scale = 0.02 })
               with
              | Ok (P.Cell_ok _, Some echo) ->
                  check_string "server echoes the client id" id echo.P.trace_id
              | Ok (P.Cell_ok _, None) ->
                  Alcotest.fail "traced request answered without a context"
              | Ok (r, _) ->
                  Alcotest.failf "unexpected %s" (P.encode_response r)
              | Error e ->
                  Alcotest.failf "transport: %s"
                    (Serve.Client.error_to_string e));
              check_bool "no downgrade against our own server" false
                (Serve.Client.downgraded c);
              (* The handler thread writes the access-log line after the
                 reply; a second request on the same connection
                 serializes behind it, so once this answers the first
                 line is on disk. *)
              ignore (rpc c P.Health));
          let lines =
            let ic = open_in access_log in
            let acc = ref [] in
            (try
               while true do
                 acc := input_line ic :: !acc
               done
             with End_of_file -> ());
            close_in ic;
            !acc
          in
          (match List.filter (fun l -> contains l id) lines with
          | [] -> Alcotest.fail "no access-log line carries the id"
          | line :: _ -> (
              match Metrics.Export.of_string line with
              | Error msg -> Alcotest.failf "access line unparsable: %s" msg
              | Ok json ->
                  let field k = Metrics.Export.member k json in
                  let str k =
                    Option.bind (field k) Metrics.Export.to_string_opt
                  in
                  check_bool "request_id field" true (str "request_id" = Some id);
                  check_bool "kind field" true (str "kind" = Some "cell");
                  check_bool "outcome field" true (str "outcome" = Some "ok");
                  check_bool "total_us present" true
                    (Option.bind (field "total_us") Metrics.Export.to_float_opt
                    <> None);
                  check_bool "stages carries simulate" true
                    (match field "stages" with
                    | Some (Metrics.Export.Obj fields) ->
                        List.mem_assoc "simulate" fields
                        && List.mem_assoc "encode" fields
                    | _ -> false)));
          let status = Serve.Server.status_json server in
          check_bool "/status slow-request table carries the id" true
            (contains status id);
          check_bool "span ring carries the id" true
            (contains (Telemetry.Span.to_chrome_json ()) id)))

let test_v1_client_round_trip () =
  (* An old client is byte-for-byte an untraced encode: the v2 server
     must answer it with a plain v1 reply, no trace context. *)
  with_server (fun ~sock ~store:_ _server ->
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          Unix.connect fd (Unix.ADDR_UNIX sock);
          P.write_frame fd (P.encode_request P.Health);
          match P.read_frame fd with
          | Ok (Some payload) -> (
              match P.decode_response payload with
              | Ok (P.Health_ok { protocol_version; _ }, None) ->
                  check_int "server announces v2" P.version protocol_version;
                  let r = Codec.Reader.of_string payload in
                  check_int "reply encoded as v1" P.min_version
                    (Codec.Reader.int r)
              | Ok (_, Some _) ->
                  Alcotest.fail "v1 request drew a traced reply"
              | _ -> Alcotest.fail "undecodable reply to a v1 request")
          | _ -> Alcotest.fail "no reply to a v1 request"))

(* ------------------------------------------------------------------ *)
(* The plain-HTTP side                                                *)
(* ------------------------------------------------------------------ *)

let http_exchange sock payload =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX sock);
      ignore (Unix.write_substring fd payload 0 (String.length payload));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      in
      drain ();
      Buffer.contents buf)

let test_http_paths () =
  with_server (fun ~sock ~store:_ _server ->
      (* A method prefix with a malformed request line: 400. *)
      let resp = http_exchange sock "GET \r\n\r\n" in
      check_bool "malformed line -> 400" true (contains resp "400 Bad Request");
      (* Non-GET methods are sniffed as HTTP and answered 405. *)
      let resp = http_exchange sock "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n" in
      check_bool "POST -> 405" true (contains resp "405 Method Not Allowed");
      let resp = http_exchange sock "HEAD / HTTP/1.0\r\n\r\n" in
      check_bool "HEAD -> 405" true (contains resp "405 Method Not Allowed");
      (* Unknown path: 404 with a hint at the real routes. *)
      let resp = http_exchange sock "GET /nope HTTP/1.0\r\n\r\n" in
      check_bool "unknown path -> 404" true (contains resp "404 Not Found");
      check_bool "404 names the routes" true (contains resp "/status");
      (* /status: parseable JSON with the introspection sections. *)
      let resp = http_exchange sock "GET /status HTTP/1.0\r\n\r\n" in
      check_bool "/status -> 200" true (contains resp "200 OK");
      check_bool "/status is JSON" true (contains resp "application/json");
      let body =
        let rec find i =
          if i + 4 > String.length resp then
            Alcotest.fail "no header/body split in /status response"
          else if String.sub resp i 4 = "\r\n\r\n" then
            String.sub resp (i + 4) (String.length resp - i - 4)
          else find (i + 1)
        in
        find 0
      in
      match Metrics.Export.of_string body with
      | Error msg -> Alcotest.failf "/status unparsable: %s" msg
      | Ok json ->
          let has k =
            check_bool (k ^ " section") true (Metrics.Export.member k json <> None)
          in
          List.iter has
            [
              "server"; "requests"; "latency_us"; "stages"; "connections";
              "single_flight"; "slow_requests"; "spans"; "access_log";
            ];
          let protocol_max =
            Option.bind
              (Metrics.Export.member "server" json)
              (Metrics.Export.member "protocol_max")
          in
          check_bool "protocol_max = version" true
            (Option.bind protocol_max Metrics.Export.to_int_opt
            = Some P.version))

(* ------------------------------------------------------------------ *)
(* Client receive timeout                                             *)
(* ------------------------------------------------------------------ *)

let test_client_receive_timeout () =
  (* A half-open peer: accepts the connection, reads the request, never
     replies.  The client must surface a typed Timeout, not hang. *)
  let sock, _ = fresh_paths () in
  let listener = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX sock);
  Unix.listen listener 1;
  let accepted = ref None in
  let acceptor =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept listener in
        accepted := Some fd)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join acceptor;
      (match !accepted with Some fd -> Unix.close fd | None -> ());
      Unix.close listener;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let c = Serve.Client.connect ~timeout:0.3 (P.Unix_path sock) in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (match Serve.Client.request c P.Health with
          | Error (Serve.Client.Timeout _) -> ()
          | Ok _ -> Alcotest.fail "a mute server answered?"
          | Error e ->
              Alcotest.failf "expected Timeout, got %s"
                (Serve.Client.error_to_string e));
          check_bool "timed out promptly" true
            (Unix.gettimeofday () -. t0 < 5.0)))

let test_shutdown_removes_socket () =
  let sock_path = ref "" in
  with_server (fun ~sock ~store:_ _ -> sock_path := sock);
  check_bool "socket file unlinked on drain" false (Sys.file_exists !sock_path)

let test_stale_socket_replaced_live_refused () =
  let sock, store_dir = fresh_paths () in
  (* A dead socket file (nothing listening) must be swept and rebound. *)
  let dead = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Unix.bind dead (Unix.ADDR_UNIX sock);
  Unix.close dead;
  check_bool "stale file exists" true (Sys.file_exists sock);
  let store = Store.open_ store_dir in
  let server = Serve.Server.create ~jobs:1 ~store ~listen:(P.Unix_path sock) () in
  let runner = Thread.create Serve.Server.run server in
  (* While it is live, a second bind must refuse loudly. *)
  check_bool "live socket refused" true
    (match Serve.Server.create ~jobs:1 ~store ~listen:(P.Unix_path sock) () with
    | exception Failure _ -> true
    | _ -> false);
  Serve.Server.shutdown server;
  Thread.join runner

let tc name f = Alcotest.test_case name `Quick f
let qt t = QCheck_alcotest.to_alcotest t

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ("addr", [ tc "parse" test_addr_parse; tc "round trip" test_addr_round_trip ]);
      ( "codec",
        [
          tc "request round-trips" test_request_round_trips;
          tc "response round-trips" test_response_round_trips;
          tc "junk rejected" test_decode_rejects_junk;
          tc "version negotiation" test_version_negotiation;
          tc "trace context round-trips" test_trace_context_round_trip;
          tc "untraced encoding is v1" test_untraced_encoding_is_version1;
          qt prop_request_round_trip;
          qt prop_response_round_trip;
          qt prop_garbage_never_raises;
        ] );
      ( "framing",
        [
          tc "round trip over fd" test_frame_round_trip_over_fd;
          tc "sniffed prefix" test_frame_sniffed_prefix;
          tc "clean EOF" test_frame_clean_eof;
          tc "truncation at every split" test_frame_truncation_every_split;
          tc "bit flips" test_frame_bit_flips;
          tc "oversized length claim" test_frame_oversized_length_claim;
          tc "bad magic" test_frame_bad_magic;
        ] );
      ( "server",
        [
          tc "lifecycle: cold, warm, errors, http" test_integration_lifecycle;
          tc "ingest: cold, warm, typed errors" test_integration_ingest;
          tc "shutdown unlinks the socket" test_shutdown_removes_socket;
          tc "stale socket swept, live refused" test_stale_socket_replaced_live_refused;
        ] );
      ( "tracing",
        [
          tc "id propagates to log, status and spans" test_trace_propagation;
          tc "v1 client round-trips untraced" test_v1_client_round_trip;
        ] );
      ( "http",
        [ tc "400, 405, 404 and /status" test_http_paths ] );
      ( "client",
        [ tc "receive timeout on a mute server" test_client_receive_timeout ] );
    ]
