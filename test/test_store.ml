(* Tests for the typed-artifact result path: codec primitives, the
   artifact schema round-trip, the persistent content-addressed store
   (including corruption handling and gc), write-through/read-back via
   the run grid, and the cold-vs-warm differential over every
   experiment. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Infrastructure: counting Logs reporter, temp dirs, file mangling   *)
(* ------------------------------------------------------------------ *)

(* Corruption must be *reported*, not silent: every degraded read logs
   a warning on loclab.store / loclab.runs, and these tests count
   them. *)
let warn_count = ref 0

let counting_reporter =
  { Logs.report =
      (fun _src level ~over k msgf ->
        (match level with Logs.Warning -> incr warn_count | _ -> ());
        msgf (fun ?header:_ ?tags:_ fmt ->
            Format.ikfprintf (fun _ -> over (); k ()) Format.err_formatter fmt))
  }

let () =
  Logs.set_reporter counting_reporter;
  Logs.set_level (Some Logs.Warning)

let made_dirs = ref []

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "loclab-test-store-%d-%d" (Unix.getpid ()) !counter)
    in
    made_dirs := dir :: !made_dirs;
    dir

let cleanup_dirs () =
  List.iter
    (fun dir ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    !made_dirs

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let flip_byte path off =
  let s = Bytes.of_string (read_file path) in
  let off = min off (Bytes.length s - 1) in
  Bytes.set s off (Char.chr (Char.code (Bytes.get s off) lxor 0x5A));
  write_file path (Bytes.to_string s)

let truncate_file path =
  let s = read_file path in
  write_file path (String.sub s 0 (String.length s / 2))

let cell_path store ~program ~allocator ~scale =
  let seed = (Workload.Programs.find program).Workload.Profile.seed in
  let digest = Core.Artifact.digest ~program ~allocator ~scale ~seed in
  Filename.concat (Store.root store) (digest ^ ".art")

(* ------------------------------------------------------------------ *)
(* Codec primitives                                                   *)
(* ------------------------------------------------------------------ *)

let test_crc32_vector () =
  (* The canonical IEEE 802.3 check value. *)
  check_int "crc32(123456789)" 0xCBF43926 (Store.Codec.crc32 "123456789");
  check_int "crc32 of empty" 0 (Store.Codec.crc32 "")

let prop_codec_roundtrip =
  QCheck.Test.make ~count:200 ~name:"codec field-sequence round-trip"
    QCheck.(
      quad (list small_signed_int)
        (list (string_gen Gen.(map Char.chr (int_range 0 255))))
        (list bool)
        (list (array_of_size Gen.(0 -- 10) small_signed_int)))
    (fun (ints, strings, bools, arrays) ->
      let w = Store.Codec.Writer.create () in
      List.iter (Store.Codec.Writer.int w) ints;
      List.iter (Store.Codec.Writer.string w) strings;
      List.iter (Store.Codec.Writer.bool w) bools;
      List.iter (Store.Codec.Writer.int_array w) arrays;
      Store.Codec.Writer.list w (Store.Codec.Writer.int w) ints;
      let r = Store.Codec.Reader.of_string (Store.Codec.Writer.contents w) in
      let ints' = List.map (fun _ -> Store.Codec.Reader.int r) ints in
      let strings' = List.map (fun _ -> Store.Codec.Reader.string r) strings in
      let bools' = List.map (fun _ -> Store.Codec.Reader.bool r) bools in
      let arrays' =
        List.map (fun _ -> Store.Codec.Reader.int_array r) arrays
      in
      let ints'' = Store.Codec.Reader.list r Store.Codec.Reader.int in
      ints = ints' && strings = strings' && bools = bools' && arrays = arrays'
      && ints = ints''
      && Store.Codec.Reader.at_end r)

let prop_codec_float_bits =
  QCheck.Test.make ~count:200 ~name:"codec floats round-trip bitwise"
    QCheck.float (fun f ->
      let w = Store.Codec.Writer.create () in
      Store.Codec.Writer.float w f;
      let r = Store.Codec.Reader.of_string (Store.Codec.Writer.contents w) in
      Int64.bits_of_float (Store.Codec.Reader.float r) = Int64.bits_of_float f)

let test_codec_truncation_raises () =
  let w = Store.Codec.Writer.create () in
  Store.Codec.Writer.int w 42;
  Store.Codec.Writer.string w "hello";
  let payload = Store.Codec.Writer.contents w in
  for cut = 0 to String.length payload - 1 do
    let r = Store.Codec.Reader.of_string (String.sub payload 0 cut) in
    check_bool
      (Printf.sprintf "cut at %d detected" cut)
      true
      (match
         let _ = Store.Codec.Reader.int r in
         let _ = Store.Codec.Reader.string r in
         ()
       with
      | exception Store.Codec.Error _ -> true
      | () -> false)
  done

(* ------------------------------------------------------------------ *)
(* Artifact codec                                                     *)
(* ------------------------------------------------------------------ *)

let stats_of_list = function
  | [ a; m; ra; rm; wa; wm; cm; wb; aa; am; ma; mm; fa; fm ] ->
      { Cachesim.Stats.accesses = a; misses = m; read_accesses = ra;
        read_misses = rm; write_accesses = wa; write_misses = wm;
        cold_misses = cm; writebacks = wb; app_accesses = aa; app_misses = am;
        malloc_accesses = ma; malloc_misses = mm; free_accesses = fa;
        free_misses = fm }
  | _ -> assert false

let alloc_stats_of_list = function
  | [ mc; fc; rc; rm; br; bg; lb; mlb; lo; mlo ] ->
      { Allocators.Alloc_stats.malloc_calls = mc; free_calls = fc;
        realloc_calls = rc; realloc_moves = rm; bytes_requested = br;
        bytes_granted = bg; live_bytes = lb; max_live_bytes = mlb;
        live_objects = lo; max_live_objects = mlo }
  | _ -> assert false

let summary_of_list = function
  | [ sr; i; ai; mi; fi; dr; ar; alr; hu; mlb ] ->
      { Core.Artifact.steps_run = sr; instructions = i; app_instructions = ai;
        malloc_instructions = mi; free_instructions = fi; data_refs = dr;
        app_refs = ar; allocator_refs = alr; heap_used = hu;
        max_live_bytes = mlb }
  | _ -> assert false

(* Configurations must satisfy Config.make's invariants, so draw from a
   valid pool rather than generating fields. *)
let config_pool =
  [ Cachesim.Config.make (16 * 1024);
    Cachesim.Config.make ~associativity:2 (16 * 1024);
    Cachesim.Config.make ~block_bytes:64 (64 * 1024);
    Cachesim.Config.make ~name:"odd name \"quoted\"" (32 * 1024);
    Cachesim.Config.make ~associativity:8 ~policy:Cachesim.Policy.Plru
      (16 * 1024);
    Cachesim.Config.make ~associativity:4
      ~policy:(Cachesim.Policy.Qlru Cachesim.Policy.qlru_h11_m1) (32 * 1024);
    Cachesim.Config.make ~associativity:2 ~policy:(Cachesim.Policy.Random 42)
      (8 * 1024) ]

let gen_artifact =
  let open QCheck.Gen in
  let nonneg = int_bound 1_000_000 in
  let key = string_size ~gen:(map Char.chr (int_range 97 122)) (1 -- 12) in
  let scale = map (fun i -> float_of_int i /. 100.) (int_range 1 400) in
  let stats = map stats_of_list (list_repeat 14 nonneg) in
  key >>= fun program ->
  key >>= fun allocator ->
  scale >>= fun scale ->
  nonneg >>= fun seed ->
  nonneg >>= fun trace_checksum ->
  oneofl [ "synthetic"; "text"; "csv"; "binary"; "framed" ]
  >>= fun source_format ->
  nonneg >>= fun source_bytes ->
  nonneg >>= fun source_checksum ->
  map summary_of_list (list_repeat 10 nonneg) >>= fun summary ->
  map alloc_stats_of_list (list_repeat 10 nonneg) >>= fun alloc_stats ->
  int_range 1 (List.length config_pool) >>= fun ncfg ->
  list_repeat ncfg stats >>= fun cache_stats ->
  int_range 1 3 >>= fun nlevels ->
  list_repeat nlevels stats >>= fun level_stats ->
  oneofl [ 512; 4096; 8192 ] >>= fun page_bytes ->
  nonneg >>= fun references ->
  nonneg >>= fun cold ->
  array_size (0 -- 40) nonneg >>= fun hist ->
  let caches =
    List.map2
      (fun c s -> (c, s))
      (List.filteri (fun i _ -> i < ncfg) config_pool)
      cache_stats
  in
  let hierarchy =
    List.map2
      (fun c s -> (c, s))
      (List.filteri (fun i _ -> i < nlevels) config_pool)
      level_stats
  in
  return
    { Core.Artifact.meta =
        { Core.Artifact.program; allocator; scale; seed;
          schema_version = Core.Artifact.schema_version; trace_checksum };
      provenance =
        { Core.Artifact.source_format; source_bytes; source_checksum };
      summary; alloc_stats; caches; hierarchy;
      fault_curve = { Vmsim.Fault_curve.page_bytes; references; cold; hist } }

let prop_artifact_roundtrip =
  QCheck.Test.make ~count:100 ~name:"Artifact encode/decode identity"
    (QCheck.make gen_artifact) (fun art ->
      match Core.Artifact.decode (Core.Artifact.encode art) with
      | Ok art' -> Core.Artifact.equal art art'
      | Error _ -> false)

let prop_artifact_meta_readable =
  QCheck.Test.make ~count:100 ~name:"decode_meta reads the frozen header"
    (QCheck.make gen_artifact) (fun art ->
      match Core.Artifact.decode_meta (Core.Artifact.encode art) with
      | Ok m -> m = art.Core.Artifact.meta
      | Error _ -> false)

let sample_artifact =
  (* One real artifact from a tiny simulation, for targeted cases. *)
  lazy
    (let runs = Core.Runs.create ~scale:0.01 () in
     Core.Runs.get runs ~profile:"make" ~allocator:"bsd")

let test_artifact_rejects_truncation () =
  let art = Lazy.force sample_artifact in
  let payload = Core.Artifact.encode art in
  List.iter
    (fun frac ->
      let cut = String.length payload * frac / 10 in
      check_bool
        (Printf.sprintf "truncated at %d/10 rejected" frac)
        true
        (match Core.Artifact.decode (String.sub payload 0 cut) with
        | Error _ -> true
        | Ok _ -> false))
    [ 0; 3; 6; 9 ]

let test_artifact_rejects_trailing_garbage () =
  let art = Lazy.force sample_artifact in
  check_bool "trailing byte rejected" true
    (match Core.Artifact.decode (Core.Artifact.encode art ^ "\000") with
    | Error _ -> true
    | Ok _ -> false)

let test_artifact_rejects_foreign_schema () =
  let art = Lazy.force sample_artifact in
  let foreign =
    { art with
      Core.Artifact.meta =
        { art.Core.Artifact.meta with
          Core.Artifact.schema_version = Core.Artifact.schema_version + 1 } }
  in
  let payload = Core.Artifact.encode foreign in
  check_bool "foreign schema rejected by decode" true
    (match Core.Artifact.decode payload with Error _ -> true | Ok _ -> false);
  (* ... but the frozen header stays readable for ls/gc. *)
  check_bool "foreign schema readable by decode_meta" true
    (match Core.Artifact.decode_meta payload with
    | Ok m ->
        m.Core.Artifact.schema_version = Core.Artifact.schema_version + 1
    | Error _ -> false)

let test_digest_sensitivity () =
  let d = Core.Artifact.digest ~program:"p" ~allocator:"a" ~scale:0.5 ~seed:7 in
  check_string "deterministic" d
    (Core.Artifact.digest ~program:"p" ~allocator:"a" ~scale:0.5 ~seed:7);
  List.iter
    (fun (label, d') -> check_bool label true (d <> d'))
    [ ("program", Core.Artifact.digest ~program:"q" ~allocator:"a" ~scale:0.5 ~seed:7);
      ("allocator", Core.Artifact.digest ~program:"p" ~allocator:"b" ~scale:0.5 ~seed:7);
      ("scale", Core.Artifact.digest ~program:"p" ~allocator:"a" ~scale:0.25 ~seed:7);
      ("seed", Core.Artifact.digest ~program:"p" ~allocator:"a" ~scale:0.5 ~seed:8) ]

(* ------------------------------------------------------------------ *)
(* Store                                                              *)
(* ------------------------------------------------------------------ *)

let prop_store_roundtrip =
  QCheck.Test.make ~count:50 ~name:"store write/read is bit-identical"
    QCheck.(
      pair (string_gen Gen.(map Char.chr (int_range 0 255)))
        (string_gen Gen.(map Char.chr (int_range 97 122))))
    (fun (payload, key) ->
      QCheck.assume (key <> "");
      let store = Store.open_ (fresh_dir ()) in
      let digest = Digest.to_hex (Digest.string key) in
      Store.put store ~digest payload;
      match Store.find store ~digest with
      | Store.Hit payload' -> payload' = payload && Store.mem store ~digest
      | Store.Miss | Store.Corrupt _ -> false)

let test_store_miss () =
  let store = Store.open_ (fresh_dir ()) in
  check_bool "empty store misses" true
    (Store.find store ~digest:"deadbeef" = Store.Miss);
  check_bool "mem false" false (Store.mem store ~digest:"deadbeef");
  check_int "ls empty" 0 (List.length (Store.ls store))

let test_store_detects_flipped_byte () =
  let store = Store.open_ (fresh_dir ()) in
  Store.put store ~digest:"cell1" "some payload bytes";
  let path = Filename.concat (Store.root store) "cell1.art" in
  (* Flip a byte inside the payload region (past the 16-byte header). *)
  let before = !warn_count in
  flip_byte path 20;
  check_bool "flipped byte detected" true
    (match Store.find store ~digest:"cell1" with
    | Store.Corrupt _ -> true
    | Store.Hit _ | Store.Miss -> false);
  check_bool "corruption logged" true (!warn_count > before)

let test_store_detects_truncation () =
  let store = Store.open_ (fresh_dir ()) in
  Store.put store ~digest:"cell2" "a somewhat longer payload, to survive halving";
  let path = Filename.concat (Store.root store) "cell2.art" in
  truncate_file path;
  check_bool "truncation detected" true
    (match Store.find store ~digest:"cell2" with
    | Store.Corrupt _ -> true
    | Store.Hit _ | Store.Miss -> false)

let test_store_detects_garbage_file () =
  let store = Store.open_ (fresh_dir ()) in
  write_file (Filename.concat (Store.root store) "cell3.art") "not a frame";
  check_bool "garbage detected" true
    (match Store.find store ~digest:"cell3" with
    | Store.Corrupt _ -> true
    | Store.Hit _ | Store.Miss -> false)

let test_store_overwrite_and_ls () =
  let store = Store.open_ (fresh_dir ()) in
  Store.put store ~digest:"aa" "one";
  Store.put store ~digest:"aa" "two";
  Store.put store ~digest:"bb" "three";
  check_bool "overwrite wins" true
    (Store.find store ~digest:"aa" = Store.Hit "two");
  Alcotest.(check (list string)) "ls sorted" [ "aa"; "bb" ] (Store.ls store)

let test_store_verify_and_gc () =
  let store = Store.open_ (fresh_dir ()) in
  Store.put store ~digest:"good" "healthy payload";
  Store.put store ~digest:"bad" "will be corrupted soon";
  Store.put store ~digest:"unwanted" "keep says no";
  flip_byte (Filename.concat (Store.root store) "bad.art") 20;
  write_file (Filename.concat (Store.root store) "leftover.art.tmp") "junk";
  let verdicts = Store.verify store in
  check_int "verify covers all cells" 3 (List.length verdicts);
  check_bool "good verifies" true
    (match List.assoc "good" verdicts with Ok _ -> true | Error _ -> false);
  check_bool "bad fails verify" true
    (match List.assoc "bad" verdicts with Error _ -> true | Ok _ -> false);
  let removed =
    Store.gc store ~keep:(fun ~digest ~payload:_ -> digest <> "unwanted")
  in
  Alcotest.(check (list string))
    "gc removes corrupt, rejected, and temp files"
    [ "bad.art"; "leftover.art.tmp"; "unwanted.art" ]
    removed;
  Alcotest.(check (list string)) "only good survives" [ "good" ] (Store.ls store);
  check_bool "good still readable" true
    (Store.find store ~digest:"good" = Store.Hit "healthy payload")

(* ------------------------------------------------------------------ *)
(* Run grid + store: write-through, warm reads, healing               *)
(* ------------------------------------------------------------------ *)

let test_runs_write_through_and_warm_read () =
  let dir = fresh_dir () in
  let store = Store.open_ dir in
  let cold = Core.Runs.create ~scale:0.01 ~store () in
  let a = Core.Runs.get cold ~profile:"make" ~allocator:"bsd" in
  check_int "cold run simulated" 1 (Core.Runs.simulated cold);
  check_int "cold run had no hits" 0 (Core.Runs.store_hits cold);
  check_bool "cell file exists" true
    (Sys.file_exists (cell_path store ~program:"make" ~allocator:"bsd" ~scale:0.01));
  let warm = Core.Runs.create ~scale:0.01 ~store:(Store.open_ dir) () in
  let b = Core.Runs.get warm ~profile:"make" ~allocator:"bsd" in
  check_int "warm run simulated nothing" 0 (Core.Runs.simulated warm);
  check_int "warm run hit the store" 1 (Core.Runs.store_hits warm);
  check_bool "artifacts identical" true (Core.Artifact.equal a b);
  check_string "encodings identical"
    (Core.Artifact.encode a) (Core.Artifact.encode b)

let test_runs_corrupt_cell_resimulated_and_healed () =
  let dir = fresh_dir () in
  let store = Store.open_ dir in
  let cold = Core.Runs.create ~scale:0.01 ~store () in
  let a = Core.Runs.get cold ~profile:"gawk" ~allocator:"quickfit" in
  let path = cell_path store ~program:"gawk" ~allocator:"quickfit" ~scale:0.01 in
  flip_byte path 40;
  let before = !warn_count in
  let again = Core.Runs.create ~scale:0.01 ~store:(Store.open_ dir) () in
  let b = Core.Runs.get again ~profile:"gawk" ~allocator:"quickfit" in
  check_int "corrupt cell re-simulated" 1 (Core.Runs.simulated again);
  check_int "corrupt cell is not a hit" 0 (Core.Runs.store_hits again);
  check_bool "corruption logged" true (!warn_count > before);
  check_bool "re-simulation reproduces the artifact" true
    (Core.Artifact.equal a b);
  (* The degraded read healed the store: a third pass hits again. *)
  let healed = Core.Runs.create ~scale:0.01 ~store:(Store.open_ dir) () in
  let c = Core.Runs.get healed ~profile:"gawk" ~allocator:"quickfit" in
  check_int "healed store hits" 1 (Core.Runs.store_hits healed);
  check_bool "healed artifact identical" true (Core.Artifact.equal a c)

let test_runs_scale_partitions_store () =
  let dir = fresh_dir () in
  let store = Store.open_ dir in
  let r1 = Core.Runs.create ~scale:0.01 ~store () in
  ignore (Core.Runs.get r1 ~profile:"make" ~allocator:"bsd");
  (* Same store, different scale: different digest, so a miss. *)
  let r2 = Core.Runs.create ~scale:0.02 ~store:(Store.open_ dir) () in
  ignore (Core.Runs.get r2 ~profile:"make" ~allocator:"bsd");
  check_int "different scale simulates" 1 (Core.Runs.simulated r2);
  check_int "different scale does not hit" 0 (Core.Runs.store_hits r2);
  check_int "store now holds both" 2 (List.length (Store.ls store))

let test_runs_load_reports_missing () =
  let dir = fresh_dir () in
  let store = Store.open_ dir in
  let r1 = Core.Runs.create ~scale:0.01 ~store () in
  ignore (Core.Runs.get r1 ~profile:"make" ~allocator:"bsd");
  let r2 = Core.Runs.create ~scale:0.01 ~store:(Store.open_ dir) () in
  let missing =
    Core.Runs.load r2
      [ ("make", "bsd"); ("make", "bsd"); ("gawk", "bsd"); ("make", "bsd") ]
  in
  Alcotest.(check (list (pair string string)))
    "only the cold cell is missing, deduplicated"
    [ ("gawk", "bsd") ] missing;
  check_int "the warm cell was pulled in" 1 (Core.Runs.store_hits r2);
  check_int "nothing simulated by load" 0 (Core.Runs.simulated r2)

let test_ingest_write_through_and_warm_read () =
  (* External cells persist like grid cells: a second grid over the
     same store answers the ingest from disk, byte-identically — even
     when the re-import arrives in a different capture format. *)
  let text = "R 0x1000\nW 0x1020\nR 0x1000\nW 0x20000\n" in
  let dir = fresh_dir () in
  let cold = Core.Runs.create ~store:(Store.open_ dir) () in
  let a =
    Core.Runs.ingest cold ~format:Memsim.Trace.Source.Text ~data:text
  in
  check_int "cold ingest simulated" 1 (Core.Runs.simulated cold);
  let csv =
    Memsim.Trace.write Memsim.Trace.Source.Csv (fun sink ->
        ignore (Memsim.Trace.read Memsim.Trace.Source.Text text sink))
  in
  let warm = Core.Runs.create ~store:(Store.open_ dir) () in
  let b =
    Core.Runs.ingest warm ~format:Memsim.Trace.Source.Csv ~data:csv
  in
  check_int "warm ingest simulated nothing" 0 (Core.Runs.simulated warm);
  check_int "warm ingest hit the store" 1 (Core.Runs.store_hits warm);
  check_bool "artifacts identical" true (Core.Artifact.equal a b);
  check_string "encodings identical"
    (Core.Artifact.encode a) (Core.Artifact.encode b);
  (* Schema v3 provenance round-trips through the store. *)
  check_string "provenance format survives" "text"
    b.Core.Artifact.provenance.Core.Artifact.source_format

(* ------------------------------------------------------------------ *)
(* Differential: cold vs warm rendering over every experiment         *)
(* ------------------------------------------------------------------ *)

let test_differential_cold_vs_warm () =
  let dir = fresh_dir () in
  let cold_ctx =
    Core.Context.create ~scale:0.02 ~jobs:2 ~store:(Store.open_ dir) ()
  in
  let cold_out =
    List.map (fun id -> (id, Core.Experiment.run cold_ctx id))
      (Core.Experiment.ids ())
  in
  check_bool "cold pass simulated the grid" true
    (Core.Runs.simulated cold_ctx.Core.Context.runs > 0);
  (* A fresh context over the same store: everything the experiments
     need must already be present... *)
  let warm_ctx =
    Core.Context.create ~scale:0.02 ~jobs:2 ~store:(Store.open_ dir) ()
  in
  let wanted =
    List.concat_map
      (fun e -> e.Core.Experiment.cells)
      Core.Experiment.all
  in
  Alcotest.(check (list (pair string string)))
    "no cell missing from the warm store" []
    (Core.Runs.load warm_ctx.Core.Context.runs wanted);
  (* ... every rendering must be byte-identical... *)
  List.iter
    (fun (id, cold) ->
      check_string (id ^ " warm = cold") cold (Core.Experiment.run warm_ctx id))
    cold_out;
  (* ... and the warm pass must not have simulated a single grid cell. *)
  check_int "warm pass simulated nothing" 0
    (Core.Runs.simulated warm_ctx.Core.Context.runs);
  check_bool "warm pass fed from the store" true
    (Core.Runs.store_hits warm_ctx.Core.Context.runs > 0)

(* ------------------------------------------------------------------ *)
(* Trace checksum                                                     *)
(* ------------------------------------------------------------------ *)

let test_checksum_orders_and_fields () =
  let feed events =
    let c = Memsim.Sink.Checksum.create () in
    let sink = Memsim.Sink.Checksum.sink c in
    List.iter (fun e -> sink.Memsim.Sink.emit e) events;
    Memsim.Sink.Checksum.value c
  in
  let e1 = Memsim.Event.read 0x1000 4 in
  let e2 = Memsim.Event.write ~source:Memsim.Event.Malloc 0x2000 8 in
  check_bool "deterministic" true (feed [ e1; e2 ] = feed [ e1; e2 ]);
  check_bool "order-sensitive" true (feed [ e1; e2 ] <> feed [ e2; e1 ]);
  check_bool "address-sensitive" true
    (feed [ e1 ] <> feed [ Memsim.Event.read 0x1004 4 ]);
  check_bool "size-sensitive" true
    (feed [ e1 ] <> feed [ Memsim.Event.read 0x1000 8 ]);
  check_bool "kind-sensitive" true
    (feed [ e1 ] <> feed [ Memsim.Event.write 0x1000 4 ]);
  check_bool "source-sensitive" true
    (feed [ e1 ] <> feed [ Memsim.Event.read ~source:Memsim.Event.Free 0x1000 4 ]);
  check_bool "empty trace nonzero basis" true (feed [] <> 0)

let tc name f = Alcotest.test_case name `Quick f
let qt t = QCheck_alcotest.to_alcotest t

let () =
  Fun.protect ~finally:cleanup_dirs (fun () ->
      Alcotest.run "store"
        [
          ( "codec",
            [
              tc "crc32 known vector" test_crc32_vector;
              qt prop_codec_roundtrip;
              qt prop_codec_float_bits;
              tc "truncation raises" test_codec_truncation_raises;
            ] );
          ( "artifact",
            [
              qt prop_artifact_roundtrip;
              qt prop_artifact_meta_readable;
              tc "rejects truncation" test_artifact_rejects_truncation;
              tc "rejects trailing garbage"
                test_artifact_rejects_trailing_garbage;
              tc "rejects foreign schema" test_artifact_rejects_foreign_schema;
              tc "digest sensitivity" test_digest_sensitivity;
            ] );
          ( "store",
            [
              qt prop_store_roundtrip;
              tc "miss on empty" test_store_miss;
              tc "flipped byte detected" test_store_detects_flipped_byte;
              tc "truncation detected" test_store_detects_truncation;
              tc "garbage file detected" test_store_detects_garbage_file;
              tc "overwrite and ls" test_store_overwrite_and_ls;
              tc "verify and gc" test_store_verify_and_gc;
            ] );
          ( "grid",
            [
              tc "write-through and warm read"
                test_runs_write_through_and_warm_read;
              tc "corrupt cell re-simulated and healed"
                test_runs_corrupt_cell_resimulated_and_healed;
              tc "scale partitions the store" test_runs_scale_partitions_store;
              tc "load reports missing cells" test_runs_load_reports_missing;
              tc "ingest write-through and warm read"
                test_ingest_write_through_and_warm_read;
            ] );
          ( "differential",
            [ tc "cold vs warm byte-identical" test_differential_cold_vs_warm ] );
          ( "checksum",
            [ tc "order and field sensitivity" test_checksum_orders_and_fields ] );
        ])
