(* Tests for the workload library: PRNG, distributions, profiles and the
   trace-generating driver. *)

open Workload

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng                                                                *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_copy_diverges_from_original () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  check_bool "copy continues identically" true
    (Rng.next_int64 a = Rng.next_int64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    check_bool "in [0,1)" true (v >= 0. && v < 1.)
  done

let test_rng_bool_probability () =
  let rng = Rng.create 3 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  check_bool "about 30%" true (p > 0.27 && p < 0.33)

let test_rng_exponential_mean () =
  let rng = Rng.create 4 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:50.
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean near 50" true (mean > 46. && mean < 54.)

let test_rng_geometric_mean () =
  let rng = Rng.create 5 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.25
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean (1-p)/p = 3 *)
  check_bool "mean near 3" true (mean > 2.7 && mean < 3.3)

let prop_rng_different_seeds_differ =
  QCheck.Test.make ~name:"different seeds give different streams" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (s1, s2) ->
      QCheck.assume (s1 <> s2);
      let a = Rng.create s1 and b = Rng.create s2 in
      (* At least one of the first 8 draws differs. *)
      List.exists
        (fun _ -> Rng.next_int64 a <> Rng.next_int64 b)
        [ 1; 2; 3; 4; 5; 6; 7; 8 ])

(* ------------------------------------------------------------------ *)
(* Dist                                                               *)
(* ------------------------------------------------------------------ *)

let test_dist_single_value () =
  let d = Dist.create [ (24, 1.) ] in
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    check_int "always 24" 24 (Dist.sample d rng)
  done;
  Alcotest.(check (float 1e-9)) "mean" 24. (Dist.mean d)

let test_dist_weights_respected () =
  let d = Dist.create [ (8, 9.); (800, 1.) ] in
  let rng = Rng.create 2 in
  let n = 20_000 in
  let small = ref 0 in
  for _ = 1 to n do
    if Dist.sample d rng = 8 then incr small
  done;
  let p = float_of_int !small /. float_of_int n in
  check_bool "about 90% small" true (p > 0.87 && p < 0.93)

let test_dist_merges_duplicates () =
  let d = Dist.create [ (8, 1.); (8, 1.); (16, 2.) ] in
  Alcotest.(check (list int)) "support" [ 8; 16 ] (Dist.support d);
  Alcotest.(check (float 1e-9)) "weight of 8" 0.5 (Dist.weight_of d 8)

let test_dist_rejects_bad () =
  check_bool "empty" true
    (match Dist.create [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "non-positive weight" true
    (match Dist.create [ (8, 0.) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dist_histogram () =
  let d = Dist.create [ (8, 3.); (24, 1.) ] in
  let h = Dist.to_histogram d ~scale:1000 in
  check_int "two buckets" 2 (List.length h);
  check_int "8 gets 750" 750 (List.assoc 8 h);
  check_int "24 gets 250" 250 (List.assoc 24 h)

let test_dist_chi_squared () =
  (* Goodness of fit of the sampler against the declared weights on a
     4-bucket distribution: chi-squared with 3 dof; 16.27 is the 0.1%
     critical value, so a correct sampler fails ~1 run in 1000 (and the
     PRNG is deterministic, so in practice never). *)
  let d = Dist.create [ (8, 4.); (16, 3.); (24, 2.); (32, 1.) ] in
  let rng = Rng.create 4242 in
  let n = 100_000 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to n do
    let v = Dist.sample d rng in
    Hashtbl.replace counts v
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let chi2 =
    List.fold_left
      (fun acc (v, p) ->
        let expected = p *. float_of_int n in
        let observed =
          float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts v))
        in
        acc +. (((observed -. expected) ** 2.) /. expected))
      0.
      [ (8, 0.4); (16, 0.3); (24, 0.2); (32, 0.1) ]
  in
  check_bool
    (Printf.sprintf "chi2 %.2f below critical 16.27" chi2)
    true (chi2 < 16.27)

let prop_dist_samples_in_support =
  QCheck.Test.make ~name:"samples always in support" ~count:100
    QCheck.(small_list (pair (int_range 1 512) (float_range 0.1 10.)))
    (fun pairs ->
      QCheck.assume (pairs <> []);
      let d = Dist.create pairs in
      let support = Dist.support d in
      let rng = Rng.create 77 in
      List.for_all
        (fun _ -> List.mem (Dist.sample d rng) support)
        (List.init 50 Fun.id))

(* ------------------------------------------------------------------ *)
(* Profiles                                                           *)
(* ------------------------------------------------------------------ *)

let test_profiles_validate () =
  List.iter Profile.validate Programs.all;
  check_int "seven profiles" 7 (List.length Programs.all)

let test_profiles_find () =
  check_bool "find gs-large" true
    ((Programs.find "gs-large").Profile.label = "GS-Large");
  check_bool "unknown raises" true
    (match Programs.find "nope" with
    | exception Not_found -> true
    | _ -> false)

let test_profiles_scaled_steps () =
  let p = Programs.gs_large in
  check_int "full" p.Profile.steps (Profile.scaled_steps p ~scale:1.0);
  check_int "half" (p.Profile.steps / 2) (Profile.scaled_steps p ~scale:0.5);
  check_int "floor at 100" 100 (Profile.scaled_steps p ~scale:0.000001)

let test_gs_inputs_ordered () =
  match Programs.gs_inputs with
  | [ s; m; l ] ->
      check_bool "small < medium" true (s.Profile.steps < m.Profile.steps);
      check_bool "medium < large" true (m.Profile.steps < l.Profile.steps);
      check_bool "retained ordered" true
        (s.Profile.retained_bytes < m.Profile.retained_bytes
        && m.Profile.retained_bytes < l.Profile.retained_bytes)
  | _ -> Alcotest.fail "expected three GS inputs"

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let small_run ?(allocator = "bsd") ?(profile = Programs.espresso) ?sink () =
  Driver.run ?sink ~scale:0.02 ~profile ~allocator ()

let test_driver_deterministic () =
  let r1 = small_run () and r2 = small_run () in
  check_int "same instructions" r1.Driver.instructions r2.Driver.instructions;
  check_int "same refs" r1.Driver.data_refs r2.Driver.data_refs;
  check_int "same allocs" r1.Driver.alloc_stats.Allocators.Alloc_stats.malloc_calls
    r2.Driver.alloc_stats.Allocators.Alloc_stats.malloc_calls

let test_driver_counts_consistent () =
  let r = small_run () in
  check_bool "did some work" true (r.Driver.instructions > 10_000);
  check_int "instr total is sum of phases"
    r.Driver.instructions
    (r.Driver.app_instructions + r.Driver.malloc_instructions
   + r.Driver.free_instructions);
  check_int "refs split by source" r.Driver.data_refs
    (r.Driver.app_refs + r.Driver.allocator_refs);
  check_bool "fraction in (0,1)" true
    (Driver.allocator_fraction r > 0. && Driver.allocator_fraction r < 1.)

let test_driver_sink_sees_everything () =
  let c = Memsim.Sink.Counter.create () in
  let r = small_run ~sink:(Memsim.Sink.Counter.sink c) () in
  check_int "sink count matches result" r.Driver.data_refs
    (Memsim.Sink.Counter.total c)

let test_driver_ptc_frees_nothing () =
  let r = small_run ~profile:Programs.ptc ~allocator:"firstfit" () in
  check_int "no frees" 0 r.Driver.alloc_stats.Allocators.Alloc_stats.free_calls;
  check_bool "allocates" true
    (r.Driver.alloc_stats.Allocators.Alloc_stats.malloc_calls > 100)

let test_driver_espresso_frees_most () =
  let r =
    Driver.run ~scale:0.1 ~profile:Programs.espresso ~allocator:"bsd" ()
  in
  let st = r.Driver.alloc_stats in
  let freed =
    float_of_int st.Allocators.Alloc_stats.free_calls
    /. float_of_int st.Allocators.Alloc_stats.malloc_calls
  in
  check_bool "frees most objects" true (freed > 0.85)

let test_driver_gawk_heap_small () =
  let r = Driver.run ~scale:0.3 ~profile:Programs.gawk ~allocator:"quickfit" () in
  (* Gawk's live heap stays tiny (paper: 60 KB at full scale). *)
  check_bool "small live heap" true (r.Driver.max_live_bytes < 120_000)

let test_driver_gs_heap_grows_with_scale () =
  let r1 = Driver.run ~scale:0.05 ~profile:Programs.gs_large ~allocator:"bsd" () in
  let r2 = Driver.run ~scale:0.2 ~profile:Programs.gs_large ~allocator:"bsd" () in
  check_bool "bigger scale, bigger heap" true
    (r2.Driver.max_live_bytes > 2 * r1.Driver.max_live_bytes)

let test_driver_same_workload_across_allocators () =
  (* The op stream is allocator-independent: same allocs/frees/sizes. *)
  let keys = [ "firstfit"; "bsd"; "gnu-local"; "quickfit" ] in
  let runs = List.map (fun k -> small_run ~allocator:k ()) keys in
  match runs with
  | first :: rest ->
      List.iter
        (fun r ->
          check_int "same mallocs"
            first.Driver.alloc_stats.Allocators.Alloc_stats.malloc_calls
            r.Driver.alloc_stats.Allocators.Alloc_stats.malloc_calls;
          check_int "same requested bytes"
            first.Driver.alloc_stats.Allocators.Alloc_stats.bytes_requested
            r.Driver.alloc_stats.Allocators.Alloc_stats.bytes_requested)
        rest
  | [] -> assert false

let test_driver_run_with_custom_allocator () =
  let profile = Programs.espresso in
  let histogram = Dist.to_histogram profile.Profile.size_dist ~scale:10_000 in
  let heap = Allocators.Heap.create () in
  let custom = Allocators.Custom.create_for ~histogram heap in
  let alloc = Allocators.Custom.allocator custom in
  let r = Driver.run_with ~scale:0.02 ~profile ~heap ~alloc () in
  check_bool "ran" true (r.Driver.instructions > 0);
  check_bool "low fragmentation on its training workload" true
    (Allocators.Alloc_stats.internal_fragmentation r.Driver.alloc_stats < 0.12)

let test_driver_reallocs_happen () =
  let r = Driver.run ~scale:0.1 ~profile:Programs.gawk ~allocator:"bsd" () in
  let st = r.Driver.alloc_stats in
  check_bool "reallocs exercised" true (st.Allocators.Alloc_stats.realloc_calls > 10);
  check_bool "some reallocs moved" true
    (st.Allocators.Alloc_stats.realloc_moves > 0);
  (* PTC never reallocs. *)
  let r = Driver.run ~scale:0.05 ~profile:Programs.ptc ~allocator:"bsd" () in
  check_int "ptc reallocs" 0
    r.Driver.alloc_stats.Allocators.Alloc_stats.realloc_calls

let test_driver_allocator_integrity_after_run () =
  (* Full invariant check after a real workload, for every allocator. *)
  List.iter
    (fun key ->
      let heap = Allocators.Heap.create () in
      let alloc = Allocators.Registry.build key heap in
      let _r =
        Driver.run_with ~scale:0.03 ~profile:Programs.gs_large ~heap ~alloc ()
      in
      Allocators.Allocator.check alloc)
    (Allocators.Registry.keys ())

let test_trace_replay_equivalence () =
  (* Replaying a recorded workload trace must produce exactly the cache
     statistics of live simulation — the stored-trace and
     execution-driven modes are interchangeable. *)
  let profile = Programs.make_prog in
  let live_cache =
    Cachesim.Cache.create (Cachesim.Config.make (16 * 1024))
  in
  let path = Filename.temp_file "loclab_equiv" ".trace" in
  let r =
    Memsim.Trace_file.record_to_file path (fun file_sink ->
        Driver.run
          ~sink:
            (Memsim.Sink.fanout
               [ Cachesim.Cache.sink live_cache; file_sink ])
          ~scale:0.05 ~profile ~allocator:"gnu-local" ())
  in
  let replay_cache =
    Cachesim.Cache.create (Cachesim.Config.make (16 * 1024))
  in
  let n = Memsim.Trace_file.replay_file path (Cachesim.Cache.sink replay_cache) in
  Sys.remove path;
  check_int "event counts agree" r.Driver.data_refs n;
  let a = Cachesim.Cache.stats live_cache
  and b = Cachesim.Cache.stats replay_cache in
  check_int "accesses agree" a.Cachesim.Stats.accesses b.Cachesim.Stats.accesses;
  check_int "misses agree" a.Cachesim.Stats.misses b.Cachesim.Stats.misses;
  check_int "writebacks agree" a.Cachesim.Stats.writebacks
    b.Cachesim.Stats.writebacks;
  check_int "malloc misses agree" a.Cachesim.Stats.malloc_misses
    b.Cachesim.Stats.malloc_misses

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests
let tc name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "workload"
    [
      ( "rng",
        [
          tc "deterministic" test_rng_deterministic;
          tc "copy" test_rng_copy_diverges_from_original;
          tc "int bounds" test_rng_int_bounds;
          tc "float bounds" test_rng_float_bounds;
          tc "bool probability" test_rng_bool_probability;
          tc "exponential mean" test_rng_exponential_mean;
          tc "geometric mean" test_rng_geometric_mean;
        ]
        @ qsuite [ prop_rng_different_seeds_differ ] );
      ( "dist",
        [
          tc "single value" test_dist_single_value;
          tc "weights respected" test_dist_weights_respected;
          tc "merges duplicates" test_dist_merges_duplicates;
          tc "rejects bad" test_dist_rejects_bad;
          tc "histogram" test_dist_histogram;
          tc "chi-squared fit" test_dist_chi_squared;
        ]
        @ qsuite [ prop_dist_samples_in_support ] );
      ( "profiles",
        [
          tc "validate" test_profiles_validate;
          tc "find" test_profiles_find;
          tc "scaled steps" test_profiles_scaled_steps;
          tc "gs inputs ordered" test_gs_inputs_ordered;
        ] );
      ( "driver",
        [
          tc "deterministic" test_driver_deterministic;
          tc "counts consistent" test_driver_counts_consistent;
          tc "sink sees everything" test_driver_sink_sees_everything;
          tc "ptc frees nothing" test_driver_ptc_frees_nothing;
          tc "espresso frees most" test_driver_espresso_frees_most;
          tc "gawk heap small" test_driver_gawk_heap_small;
          tc "gs heap grows with scale" test_driver_gs_heap_grows_with_scale;
          tc "same workload across allocators"
            test_driver_same_workload_across_allocators;
          tc "run_with custom allocator" test_driver_run_with_custom_allocator;
          tc "reallocs happen" test_driver_reallocs_happen;
          tc "allocator integrity after run"
            test_driver_allocator_integrity_after_run;
          tc "trace replay equivalence" test_trace_replay_equivalence;
        ] );
    ]
