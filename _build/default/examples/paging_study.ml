(* Paging study: one pass of Mattson stack simulation per allocator
   yields the page-fault curve for EVERY memory size (the paper's
   Figures 2-3 methodology, VMSIM).

   Run with: dune exec examples/paging_study.exe [-- <program> [scale]] *)

let () =
  let program = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gs-large" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.25
  in
  let profile =
    try Workload.Programs.find program
    with Not_found ->
      Printf.eprintf "unknown program %S; one of: %s\n" program
        (String.concat ", " (Workload.Programs.keys ()));
      exit 2
  in
  Printf.printf
    "Page fault rate (faults per reference) for %s at scale %.2f\n\n"
    profile.Workload.Profile.label scale;
  Printf.printf "%-12s %-12s %s\n" "allocator" "footprint" "faults/ref by memory size";
  List.iter
    (fun (key, label) ->
      let pages = Vmsim.Page_sim.create () in
      let _result =
        Workload.Driver.run ~sink:(Vmsim.Page_sim.sink pages) ~scale ~profile
          ~allocator:key ()
      in
      let footprint = Vmsim.Page_sim.footprint_bytes pages in
      (* Sample at fractions of the footprint: the interesting regime is
         memory slightly smaller than what the program touches. *)
      let samples =
        List.map
          (fun frac ->
            let m = max 4096 (int_of_float (frac *. float_of_int footprint)) in
            (frac, Vmsim.Page_sim.fault_rate pages ~memory_bytes:m))
          [ 0.25; 0.5; 0.75; 0.9; 1.0 ]
      in
      Printf.printf "%-12s %-12s %s\n" label
        (Metrics.Table.fmt_kb footprint)
        (String.concat "  "
           (List.map
              (fun (f, r) -> Printf.sprintf "%.0f%%:%.2e" (100. *. f) r)
              samples)))
    [ ("firstfit", "FirstFit"); ("gnu-g++", "GNU G++"); ("bsd", "BSD");
      ("gnu-local", "GNU local"); ("quickfit", "QuickFit") ];
  print_newline ();
  print_endline
    "Reading: BSD's footprint exceeds the others (internal fragmentation);";
  print_endline
    "FirstFit's fault rate rises fastest as memory drops below the footprint."
