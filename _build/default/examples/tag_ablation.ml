(* Boundary-tag ablation (the paper's Table 6 experiment, section 4.3):
   run GNU local with and without emulated 8-byte per-object boundary
   tags and measure the cache pollution they cause.

   Run with: dune exec examples/tag_ablation.exe [-- <program>] *)

let run profile ~emulate_tags =
  let multi = Cachesim.Multi.create Cachesim.Config.paper_direct_mapped in
  let heap = Allocators.Heap.create () in
  let alloc =
    Allocators.Gnu_local.allocator (Allocators.Gnu_local.create ~emulate_tags heap)
  in
  let r =
    Workload.Driver.run_with
      ~sink:(Cachesim.Multi.sink multi)
      ~scale:0.15 ~profile ~heap ~alloc ()
  in
  (r, Cachesim.Multi.results multi)

let () =
  let program = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gs-large" in
  let profile =
    try Workload.Programs.find program
    with Not_found ->
      Printf.eprintf "unknown program %S\n" program;
      exit 2
  in
  let r_plain, caches_plain = run profile ~emulate_tags:false in
  let r_tags, caches_tags = run profile ~emulate_tags:true in
  Printf.printf "Boundary-tag pollution in GNU local on %s\n\n"
    profile.Workload.Profile.label;
  Printf.printf "%-10s %14s %14s %10s\n" "cache" "no tags (%)" "with tags (%)"
    "delta";
  List.iter2
    (fun (cfg, plain) (_, tags) ->
      Printf.printf "%-10s %14.3f %14.3f %+10.3f\n" cfg.Cachesim.Config.name
        (Cachesim.Stats.miss_rate_pct plain)
        (Cachesim.Stats.miss_rate_pct tags)
        (Cachesim.Stats.miss_rate_pct tags
        -. Cachesim.Stats.miss_rate_pct plain))
    caches_plain caches_tags;
  let granted r = r.Workload.Driver.alloc_stats.Allocators.Alloc_stats.bytes_granted in
  Printf.printf "\nbytes granted: %s without tags, %s with tags (+%.1f%%)\n"
    (Metrics.Table.fmt_int (granted r_plain))
    (Metrics.Table.fmt_int (granted r_tags))
    (100.
    *. (float_of_int (granted r_tags - granted r_plain)
       /. float_of_int (granted r_plain)));
  print_endline
    "\nPaper's conclusion: tags cost 0.1-1.1% of execution time -- real but\n\
     not decisive; eliminating them is only worthwhile if it is free."
