(* Cache study: replay one synthetic program against every allocator and
   sweep the cache size, reproducing the methodology behind the paper's
   Figures 6-8 on any program.

   Run with: dune exec examples/cache_study.exe [-- <program> [scale]] *)

let () =
  let program = if Array.length Sys.argv > 1 then Sys.argv.(1) else "espresso" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.1
  in
  let profile =
    try Workload.Programs.find program
    with Not_found ->
      Printf.eprintf "unknown program %S; one of: %s\n" program
        (String.concat ", " (Workload.Programs.keys ()));
      exit 2
  in
  let series =
    Metrics.Series.create
      ~title:
        (Printf.sprintf "Data cache miss rate, %s (scale %.2f)"
           profile.Workload.Profile.label scale)
      ~x_label:"cache KB" ~y_label:"miss %"
  in
  List.iter
    (fun spec ->
      let key = spec.Allocators.Registry.key in
      if key <> "gnu-local-tags" && key <> "firstfit-nc" then begin
        let multi = Cachesim.Multi.create Cachesim.Config.paper_direct_mapped in
        let _result =
          Workload.Driver.run ~sink:(Cachesim.Multi.sink multi) ~scale ~profile
            ~allocator:key ()
        in
        let pts =
          List.map
            (fun (cfg, stats) ->
              ( float_of_int (cfg.Cachesim.Config.size_bytes / 1024),
                Cachesim.Stats.miss_rate_pct stats ))
            (Cachesim.Multi.results multi)
        in
        Metrics.Series.add series ~name:spec.Allocators.Registry.label pts
      end)
    Allocators.Registry.all;
  Metrics.Series.print series
