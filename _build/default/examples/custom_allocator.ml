(* Custom allocator synthesis: the CustoMalloc workflow the paper's
   conclusions point at (section 4.4 / 5.1).

   1. Profile a program's allocation sizes.
   2. Design size classes from the measured histogram (Figure 9 array).
   3. Build the synthesized allocator and compare it against BSD and
      QuickFit on the same workload.

   Run with: dune exec examples/custom_allocator.exe [-- <program>] *)

let measure profile key =
  let multi =
    Cachesim.Multi.create [ Cachesim.Config.make (64 * 1024) ]
  in
  let heap = Allocators.Heap.create () in
  let alloc =
    if key = "custom" then begin
      let histogram =
        Workload.Dist.to_histogram profile.Workload.Profile.size_dist
          ~scale:100_000
      in
      Allocators.Custom.allocator (Allocators.Custom.create_for ~histogram heap)
    end
    else Allocators.Registry.build key heap
  in
  let r =
    Workload.Driver.run_with
      ~sink:(Cachesim.Multi.sink multi)
      ~scale:0.1 ~profile ~heap ~alloc ()
  in
  let miss =
    match Cachesim.Multi.results multi with
    | [ (_, s) ] -> Cachesim.Stats.miss_rate s
    | _ -> assert false
  in
  (r, miss)

let () =
  let program = if Array.length Sys.argv > 1 then Sys.argv.(1) else "espresso" in
  let profile =
    try Workload.Programs.find program
    with Not_found ->
      Printf.eprintf "unknown program %S\n" program;
      exit 2
  in

  (* Step 1-2: design classes from the measured size mix. *)
  let histogram =
    Workload.Dist.to_histogram profile.Workload.Profile.size_dist ~scale:100_000
  in
  let classes = Allocators.Size_map.design histogram in
  Printf.printf "Profiled %s: %d distinct request sizes\n"
    profile.Workload.Profile.label (List.length histogram);
  Printf.printf "Designed %d size classes: %s\n\n" (List.length classes)
    (String.concat ", " (List.map string_of_int classes));

  (* Step 3: head-to-head. *)
  let table =
    Metrics.Table.create
      ~title:"Synthesized allocator vs its parents (64K cache, scale 0.1)"
      ~columns:
        [ ("Allocator", Metrics.Table.Left);
          ("time in alloc", Metrics.Table.Right);
          ("internal frag", Metrics.Table.Right);
          ("sbrk heap", Metrics.Table.Right);
          ("miss rate", Metrics.Table.Right);
          ("est. total (Mcycles)", Metrics.Table.Right) ]
  in
  List.iter
    (fun key ->
      let r, miss = measure profile key in
      let et =
        Metrics.Exec_time.of_miss_rate ~model:Metrics.Cost_model.paper
          ~instructions:r.Workload.Driver.instructions
          ~data_refs:r.Workload.Driver.data_refs ~miss_rate:miss
      in
      Metrics.Table.add_row table
        [ key;
          Metrics.Table.fmt_pct (Workload.Driver.allocator_fraction r);
          Metrics.Table.fmt_pct
            (Allocators.Alloc_stats.internal_fragmentation
               r.Workload.Driver.alloc_stats);
          Metrics.Table.fmt_kb r.Workload.Driver.heap_used;
          Metrics.Table.fmt_pct miss;
          Metrics.Table.fmt_float ~decimals:1
            (float_of_int (Metrics.Exec_time.total_cycles et) /. 1e6) ])
    [ "bsd"; "quickfit"; "gnu-local"; "custom" ];
  Metrics.Table.print table
