(* Trace record & replay: run an expensive workload once, persist its
   reference trace compactly, then re-simulate it under as many cache
   configurations as you like without re-running the program — the
   stored-trace complement to the paper's execution-driven methodology.

   Run with: dune exec examples/trace_replay.exe *)

let () =
  let path = Filename.temp_file "loclab" ".trace" in

  (* Pass 1: generate the trace once (espresso under QuickFit). *)
  let result =
    Memsim.Trace_file.record_to_file path (fun sink ->
        Workload.Driver.run ~sink ~scale:0.05
          ~profile:Workload.Programs.espresso ~allocator:"quickfit" ())
  in
  let bytes = (Unix.stat path).Unix.st_size in
  Printf.printf "recorded %d events in %d bytes (%.2f bytes/event)\n"
    result.Workload.Driver.data_refs bytes
    (float_of_int bytes /. float_of_int result.Workload.Driver.data_refs);

  (* Pass 2..n: replay under different cache geometries, no workload
     re-execution. *)
  List.iter
    (fun (label, config) ->
      let cache = Cachesim.Cache.create config in
      let n = Memsim.Trace_file.replay_file path (Cachesim.Cache.sink cache) in
      assert (n = result.Workload.Driver.data_refs);
      Printf.printf "  %-12s miss rate %6.3f%%  writebacks %d\n" label
        (Cachesim.Stats.miss_rate_pct (Cachesim.Cache.stats cache))
        (Cachesim.Cache.stats cache).Cachesim.Stats.writebacks)
    [ ("16K direct", Cachesim.Config.make (16 * 1024));
      ("16K 4-way", Cachesim.Config.make ~associativity:4 (16 * 1024));
      ("64K direct", Cachesim.Config.make (64 * 1024));
      ("64K 64B-line",
       Cachesim.Config.make ~name:"64K-b64" ~block_bytes:64 (64 * 1024)) ];
  Sys.remove path
