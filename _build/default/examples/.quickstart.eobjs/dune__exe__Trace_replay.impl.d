examples/trace_replay.ml: Cachesim Filename List Memsim Printf Sys Unix Workload
