examples/custom_allocator.ml: Allocators Array Cachesim List Metrics Printf String Sys Workload
