examples/tag_ablation.mli:
