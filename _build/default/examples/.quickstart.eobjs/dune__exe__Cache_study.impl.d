examples/cache_study.ml: Allocators Array Cachesim List Metrics Printf String Sys Workload
