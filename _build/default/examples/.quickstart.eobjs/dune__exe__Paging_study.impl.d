examples/paging_study.ml: Array List Metrics Printf String Sys Vmsim Workload
