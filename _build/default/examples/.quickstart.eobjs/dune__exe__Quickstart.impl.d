examples/quickstart.ml: Allocators Cachesim List Memsim Printf
