examples/tag_ablation.ml: Allocators Array Cachesim List Metrics Printf Sys Workload
