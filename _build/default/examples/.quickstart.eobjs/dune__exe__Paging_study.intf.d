examples/paging_study.mli:
