examples/quickstart.mli:
