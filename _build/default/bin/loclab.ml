(* loclab — reproduce the tables and figures of Grunwald, Zorn &
   Henderson, "Improving the Cache Locality of Memory Allocation"
   (PLDI 1993), from trace-driven simulation of synthetic re-creations
   of the paper's five allocation-intensive programs. *)

open Cmdliner

let scale_arg =
  let doc =
    "Workload scale (1.0 = the calibrated full runs, ~1:50 of the paper's \
     instruction counts with absolute retained-heap sizes).  Smaller is \
     faster but noisier; page-fault curves want >= 0.5."
  in
  Arg.(value & opt float 0.25 & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let penalty_arg =
  let doc = "Cache miss penalty in cycles (the paper uses 25)." in
  Arg.(value & opt int 25 & info [ "p"; "penalty" ] ~docv:"CYCLES" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for filling the run grid (0 = one per core).  \
     Defaults to $(b,LOCLAB_JOBS), else 1.  Output is bit-identical for \
     every value; jobs only change wall-clock time."
  in
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N" ~env:(Cmd.Env.info "LOCLAB_JOBS") ~doc)

let resolve_jobs jobs =
  if jobs < 0 then begin
    Printf.eprintf "loclab: jobs must be >= 0\n";
    exit 2
  end;
  if jobs = 0 then Exec.Pool.recommended_jobs () else jobs

let make_ctx ?(jobs = 1) scale penalty =
  if scale <= 0. || scale > 4.0 then begin
    Printf.eprintf "loclab: scale must be in (0, 4]\n";
    exit 2
  end;
  let model = Metrics.Cost_model.with_penalty Metrics.Cost_model.paper penalty in
  Core.Context.create ~scale ~jobs ~model ()

(* ---- list ---------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "Experiments (loclab run <id>):";
    List.iter
      (fun e ->
        Printf.printf "  %-14s %-45s [%s]\n" e.Core.Experiment.id
          e.Core.Experiment.title e.Core.Experiment.paper_ref)
      Core.Experiment.all;
    print_endline "\nPrograms (synthetic re-creations, lib/workload):";
    List.iter
      (fun p ->
        Printf.printf "  %-10s %s\n" p.Workload.Profile.key
          p.Workload.Profile.description)
      Workload.Programs.all;
    print_endline "\nAllocators (lib/allocators):";
    List.iter
      (fun s ->
        Printf.printf "  %-15s %s\n" s.Allocators.Registry.key
          s.Allocators.Registry.description)
      Allocators.Registry.all
  in
  let doc = "List experiments, programs and allocators." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- run ----------------------------------------------------------- *)

let run_cmd =
  let ids_arg =
    let doc = "Experiment ids (see $(b,loclab list)); e.g. fig2 tab4." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run scale penalty jobs ids =
    (* Validate ids before paying for any simulation. *)
    List.iter
      (fun id ->
        match Core.Experiment.find id with
        | _ -> ()
        | exception Not_found ->
            Printf.eprintf "loclab: unknown experiment %S (try: loclab list)\n"
              id;
            exit 2)
      ids;
    let ctx = make_ctx ~jobs:(resolve_jobs jobs) scale penalty in
    (* Fill every needed grid cell in parallel before rendering; the
       renderings below then only read the memo. *)
    Core.Experiment.warm ctx ids;
    List.iter
      (fun id ->
        print_endline (Core.Experiment.run ctx id);
        print_newline ())
      ids
  in
  let doc = "Regenerate the given tables/figures." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ scale_arg $ penalty_arg $ jobs_arg $ ids_arg)

(* ---- all ----------------------------------------------------------- *)

let all_cmd =
  let run scale penalty jobs =
    let ctx = make_ctx ~jobs:(resolve_jobs jobs) scale penalty in
    List.iter
      (fun (id, out) ->
        Printf.printf "================ %s ================\n%s\n" id out)
      (Core.Experiment.run_all ctx)
  in
  let doc = "Regenerate every table and figure (shares one run grid)." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const run $ scale_arg $ penalty_arg $ jobs_arg)

(* ---- probe --------------------------------------------------------- *)

let probe_cmd =
  let program_arg =
    let doc = "Program profile key (see $(b,loclab list))." in
    Arg.(value & opt string "gs-large" & info [ "program" ] ~docv:"KEY" ~doc)
  in
  let alloc_arg =
    let doc = "Allocator key (see $(b,loclab list))." in
    Arg.(value & opt string "quickfit" & info [ "allocator" ] ~docv:"KEY" ~doc)
  in
  let run scale penalty program allocator =
    (match Workload.Programs.find program with
    | _ -> ()
    | exception Not_found ->
        Printf.eprintf "loclab: unknown program %S\n" program;
        exit 2);
    if
      allocator <> "custom"
      && not (List.mem allocator (Allocators.Registry.keys ()))
    then begin
      Printf.eprintf "loclab: unknown allocator %S\n" allocator;
      exit 2
    end;
    let ctx = make_ctx scale penalty in
    let d = Core.Runs.get ctx.Core.Context.runs ~profile:program ~allocator in
    let r = d.Core.Runs.result in
    let st = r.Workload.Driver.alloc_stats in
    Printf.printf "%s under %s (scale %.2f)\n" program allocator scale;
    Printf.printf "  instructions      %s (app %s, malloc %s, free %s)\n"
      (Metrics.Table.fmt_int r.Workload.Driver.instructions)
      (Metrics.Table.fmt_int r.Workload.Driver.app_instructions)
      (Metrics.Table.fmt_int r.Workload.Driver.malloc_instructions)
      (Metrics.Table.fmt_int r.Workload.Driver.free_instructions);
    Printf.printf "  data references   %s (allocator %s)\n"
      (Metrics.Table.fmt_int r.Workload.Driver.data_refs)
      (Metrics.Table.fmt_int r.Workload.Driver.allocator_refs);
    Printf.printf "  time in alloc     %s\n"
      (Metrics.Table.fmt_pct (Workload.Driver.allocator_fraction r));
    Printf.printf "  objects           %s allocated, %s freed\n"
      (Metrics.Table.fmt_int st.Allocators.Alloc_stats.malloc_calls)
      (Metrics.Table.fmt_int st.Allocators.Alloc_stats.free_calls);
    Printf.printf "  heap              sbrk %s, max live %s, frag %s\n"
      (Metrics.Table.fmt_kb r.Workload.Driver.heap_used)
      (Metrics.Table.fmt_kb r.Workload.Driver.max_live_bytes)
      (Metrics.Table.fmt_pct
         (Allocators.Alloc_stats.internal_fragmentation st));
    List.iter
      (fun (cfg, s) ->
        Printf.printf "  %-9s miss rate %6.3f%%  (app %.3f%%, alloc %.3f%%)\n"
          cfg.Cachesim.Config.name
          (Cachesim.Stats.miss_rate_pct s)
          (100. *. Cachesim.Stats.source_miss_rate s Memsim.Event.App)
          (100.
          *. (let a =
                s.Cachesim.Stats.malloc_accesses
                + s.Cachesim.Stats.free_accesses
              and m =
                s.Cachesim.Stats.malloc_misses + s.Cachesim.Stats.free_misses
              in
              if a = 0 then 0. else float_of_int m /. float_of_int a)))
      d.Core.Runs.caches;
    let et64 =
      Core.Runs.exec_time d ~model:ctx.Core.Context.model ~cache:"64K-dm"
    in
    Printf.printf "  est. time (64K)   %.3f s (%.3f s in misses)\n"
      (Metrics.Exec_time.total_seconds et64)
      (Metrics.Exec_time.miss_seconds et64)
  in
  let doc = "Deep-dive one (program, allocator) pair." in
  Cmd.v (Cmd.info "probe" ~doc)
    Term.(const run $ scale_arg $ penalty_arg $ program_arg $ alloc_arg)

(* ---- record / replay ------------------------------------------------ *)

let record_cmd =
  let program_arg =
    let doc = "Program profile key." in
    Arg.(value & opt string "espresso" & info [ "program" ] ~docv:"KEY" ~doc)
  in
  let alloc_arg =
    let doc = "Allocator key." in
    Arg.(value & opt string "quickfit" & info [ "allocator" ] ~docv:"KEY" ~doc)
  in
  let out_arg =
    let doc = "Output trace file." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run scale program allocator out =
    (match Workload.Programs.find program with
    | _ -> ()
    | exception Not_found ->
        Printf.eprintf "loclab: unknown program %S\n" program;
        exit 2);
    let result =
      Memsim.Trace_file.record_to_file out (fun sink ->
          Workload.Driver.run ~sink ~scale
            ~profile:(Workload.Programs.find program)
            ~allocator ())
    in
    Printf.printf "recorded %s events (%s, %s, scale %.2f) to %s\n"
      (Metrics.Table.fmt_int result.Workload.Driver.data_refs)
      program allocator scale out
  in
  let doc = "Record a workload's reference trace to a file." in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const run $ scale_arg $ program_arg $ alloc_arg $ out_arg)

let replay_cmd =
  let file_arg =
    let doc = "Trace file produced by $(b,loclab record)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let multi = Cachesim.Multi.create Cachesim.Config.paper_direct_mapped in
    let pages = Vmsim.Page_sim.create () in
    let counter = Memsim.Sink.Counter.create () in
    let sink =
      Memsim.Sink.fanout
        [ Cachesim.Multi.sink multi;
          Vmsim.Page_sim.sink pages;
          Memsim.Sink.Counter.sink counter ]
    in
    let n = Memsim.Trace_file.replay_file file sink in
    Printf.printf "replayed %s events from %s\n\n" (Metrics.Table.fmt_int n)
      file;
    List.iter
      (fun (name, pct) -> Printf.printf "  %-9s miss rate %6.3f%%\n" name pct)
      (Cachesim.Multi.miss_rate_series multi);
    Printf.printf "\n  footprint %s, page faults at footprint/2: %s\n"
      (Metrics.Table.fmt_kb (Vmsim.Page_sim.footprint_bytes pages))
      (Metrics.Table.fmt_int
         (Vmsim.Page_sim.faults pages
            ~memory_bytes:(max 4096 (Vmsim.Page_sim.footprint_bytes pages / 2))))
  in
  let doc = "Replay a recorded trace through the cache and page simulators." in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg)

let main =
  let doc =
    "Reproduction of 'Improving the Cache Locality of Memory Allocation' \
     (PLDI 1993)"
  in
  let info = Cmd.info "loclab" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ list_cmd; run_cmd; all_cmd; probe_cmd; record_cmd; replay_cmd ]

let () = exit (Cmd.eval main)
