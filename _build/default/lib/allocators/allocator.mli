(** The uniform allocator interface.

    Concrete allocators ({!First_fit}, {!Bsd}, …) provide an {!impl};
    wrapping it with {!make} adds everything the framework guarantees
    uniformly: phase/source switching around [malloc]/[free], the fixed
    per-call instruction overhead, behaviour statistics, and safety
    checking (double free, unknown free, overlap) — bookkeeping that
    lives outside the simulated machine. *)

type impl = {
  impl_malloc : int -> Memsim.Addr.t;
      (** Returns the word-aligned payload address for a request of the
          given size in bytes (>= 1). *)
  impl_free : Memsim.Addr.t -> unit;
      (** Releases a payload address previously returned. *)
  granted_bytes : int -> int;
      (** Gross bytes (payload + metadata + rounding) a request of the
          given size consumes — used for fragmentation accounting. *)
  check_invariants : unit -> unit;
      (** Walks internal structures and raises [Failure] on corruption;
          called by tests, never during normal runs. *)
  impl_malloc_sited : (site:int -> int -> Memsim.Addr.t) option;
      (** Allocation-site-aware entry point, for allocators that exploit
          call-site information (the paper's §5.1 future work, after
          Barrett & Zorn).  [None] for ordinary allocators. *)
}

type t

exception Allocator_misuse of string
(** Raised on double free or freeing an address never allocated. *)

val make : name:string -> heap:Heap.t -> impl -> t

val name : t -> string
val heap : t -> Heap.t
val stats : t -> Alloc_stats.t

val call_overhead_instructions : int
(** Fixed call/return and argument-handling cost charged to every
    [malloc] and [free] (register-only work, no trace events). *)

val malloc : t -> int -> Memsim.Addr.t
(** Allocates, running the implementation in the [Malloc] phase.
    Checks the result is word-aligned and inside the heap, and records
    the live object. *)

val malloc_sited : t -> site:int -> int -> Memsim.Addr.t
(** Like {!malloc}, passing the allocation site to implementations that
    use one; others ignore it. *)

val free : t -> Memsim.Addr.t -> unit
(** Frees, running the implementation in the [Free] phase.
    @raise Allocator_misuse on double/unknown free. *)

val realloc : t -> Memsim.Addr.t -> int -> Memsim.Addr.t
(** Resizes a live object, C-[realloc] style.  When the implementation
    would dedicate the same gross block to the new size (same size
    class / same rounded block), the object stays in place — the fast
    path every segregated allocator's realloc has.  Otherwise a new
    block is allocated, [min old new] payload bytes are copied (traced
    reads and writes, as a real [memcpy] inside the allocator), and the
    old block is freed.  Runs in the [Malloc] phase.
    @raise Allocator_misuse when the address is not live. *)

val live_objects : t -> (Memsim.Addr.t * int) list
(** Currently live (address, requested size) pairs, unordered. *)

val live_size : t -> Memsim.Addr.t -> int option
(** Requested size of a live object, if the address is live. *)

val check : t -> unit
(** Runs the implementation's invariant checks plus framework-level
    checks (live objects are disjoint and word-aligned). *)
