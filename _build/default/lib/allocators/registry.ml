type spec = {
  key : string;
  label : string;
  description : string;
  build : Heap.t -> Allocator.t;
}

let paper_five =
  [
    { key = "firstfit";
      label = "FirstFit";
      description =
        "Knuth first fit: single roving freelist, boundary tags, coalescing";
      build = (fun heap -> First_fit.allocator (First_fit.create heap));
    };
    { key = "gnu-g++";
      label = "GNU G++";
      description =
        "Lea: first fit over freelists segregated by size logarithm";
      build = (fun heap -> Gnu_gpp.allocator (Gnu_gpp.create heap));
    };
    { key = "bsd";
      label = "BSD";
      description =
        "Kingsley 4.2BSD: power-of-two classes, no splitting or coalescing";
      build = (fun heap -> Bsd.allocator (Bsd.create heap));
    };
    { key = "gnu-local";
      label = "GNU local";
      description =
        "Haertel: page-chunked fragments, chunk-header table, no object tags";
      build = (fun heap -> Gnu_local.allocator (Gnu_local.create heap));
    };
    { key = "quickfit";
      label = "QuickFit";
      description =
        "Weinstock-Wulf: exact-size array for 4-32 bytes, G++ fallback";
      build = (fun heap -> Quick_fit.allocator (Quick_fit.create heap));
    };
  ]

let extras =
  [
    { key = "custom";
      label = "Custom";
      description =
        "Synthesized (paper 4.4): measured size classes, size-mapping array, \
         no tags, page-chunked";
      build = (fun heap -> Custom.allocator (Custom.create heap));
    };
    { key = "bestfit";
      label = "BestFit";
      description =
        "exhaustive best fit over one freelist (sequential-fit family)";
      build = (fun heap -> Best_fit.allocator (Best_fit.create heap));
    };
    { key = "firstfit-nc";
      label = "FirstFit/nc";
      description =
        "FirstFit with coalescing disabled (4.1 coalescing ablation)";
      build =
        (fun heap ->
          First_fit.allocator ~name:"firstfit-nc"
            (First_fit.create ~coalesce:false heap));
    };
    { key = "gnu-local-tags";
      label = "GNU local+tags";
      description =
        "GNU local with emulated 8-byte boundary tags (Table 6 experiment)";
      build =
        (fun heap ->
          Gnu_local.allocator (Gnu_local.create ~emulate_tags:true heap));
    };
  ]

let all = paper_five @ extras

let find key =
  match List.find_opt (fun s -> s.key = key) all with
  | Some s -> s
  | None -> raise Not_found

let keys () = List.map (fun s -> s.key) all
let build key heap = (find key).build heap
