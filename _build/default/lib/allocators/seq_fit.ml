open Memsim

type t = {
  heap : Heap.t;
  extend_chunk : int;
  split_threshold : int;
  coalesce : bool;
  policy : policy;
  mutable initialised : bool;
  (* Our own extents within the (possibly shared) heap region, in
     address order, each laid out [sentinel][blocks...][sentinel].
     Another allocator may sbrk between our extensions (e.g. QuickFit's
     working storage), so extents need not be contiguous.  Untraced
     bookkeeping; the traced structures are the tags and lists. *)
  mutable extents : (Addr.t * Addr.t) list;
  mutable top : Addr.t;  (* break right after our last extension *)
}

and policy = {
  find_fit : t -> gross:int -> Addr.t option;
  insert_free : t -> block:Addr.t -> size:int -> unit;
  remove_free : t -> block:Addr.t -> size:int -> unit;
  resize_free : t -> block:Addr.t -> old_size:int -> new_size:int -> unit;
  note_alloc_from : t -> block:Addr.t -> unit;
  check_policy : t -> free_blocks:(Addr.t * int) list -> unit;
}

(* Sentinel words read as (size 0, allocated), stopping coalescing at the
   heap edges without being real blocks. *)
let sentinel_word = 1

let create heap ?(extend_chunk = 16384) ?(split_threshold = 24)
    ?(coalesce = true) policy =
  assert (extend_chunk >= 64);
  assert (split_threshold >= Boundary_tag.min_block);
  { heap; extend_chunk; split_threshold; coalesce; policy;
    initialised = false; extents = []; top = -1 }

let heap t = t.heap
let split_threshold t = t.split_threshold
let policy t = t.policy

let gross_of_request n =
  max Boundary_tag.min_block
    (Addr.align_up n ~alignment:Addr.word_bytes + Boundary_tag.overhead)

(* Start a fresh extent: [sentinel][free block][sentinel]. *)
let fresh_extent t ~min_block_size =
  let n = max (min_block_size + 8) t.extend_chunk in
  let base = Heap.sbrk t.heap n in
  Heap.store t.heap base sentinel_word;
  let block = base + 4 in
  let size = n - 8 in
  Boundary_tag.write t.heap ~block ~size ~allocated:false;
  Heap.store t.heap (base + n - 4) sentinel_word;
  (policy t).insert_free t ~block ~size;
  t.extents <- t.extents @ [ (base, base + n) ];
  t.top <- base + n;
  block

let ensure_init t =
  if not t.initialised then begin
    t.initialised <- true;
    ignore (fresh_extent t ~min_block_size:Boundary_tag.min_block)
  end

(* Grow the heap.  If the break still sits at our last extension, the
   old end sentinel becomes the header of the new free block (coalescing
   with a free block at the old top); otherwise another allocator has
   moved the break and we start a disjoint extent. *)
let extend t ~gross =
  let old_break = Region.break (Heap.heap_region t.heap) in
  if old_break <> t.top then fresh_extent t ~min_block_size:gross
  else begin
    let ext = max (max gross Boundary_tag.min_block) t.extend_chunk in
    let base = Heap.sbrk t.heap ext in
    assert (base = old_break);
    let block = old_break - 4 in
    let new_break = old_break + ext in
    Heap.store t.heap (new_break - 4) sentinel_word;
    t.top <- new_break;
    (match t.extents with
    | [] -> assert false
    | extents ->
        let rec bump = function
          | [ (b, e) ] ->
              assert (e = old_break);
              [ (b, new_break) ]
          | x :: rest -> x :: bump rest
          | [] -> assert false
        in
        t.extents <- bump extents);
    let lsize, lalloc =
      if t.coalesce then Boundary_tag.read_footer_before t.heap ~block
      else (0, true)
    in
    if (not lalloc) && lsize > 0 then begin
      (* Absorb the new space into the free block at the old top; its
         freelist node and links survive, only its size changes. *)
      let lblock = block - lsize in
      let merged = lsize + ext in
      Boundary_tag.write t.heap ~block:lblock ~size:merged ~allocated:false;
      (policy t).resize_free t ~block:lblock ~old_size:lsize ~new_size:merged;
      lblock
    end
    else begin
      Boundary_tag.write t.heap ~block ~size:ext ~allocated:false;
      (policy t).insert_free t ~block ~size:ext;
      block
    end
  end

let allocate_from t ~block ~size ~gross =
  let p = policy t in
  p.note_alloc_from t ~block;
  if size - gross >= t.split_threshold then begin
    (* Keep the remainder free at the front (links intact), allocate the
       tail. *)
    let fsize = size - gross in
    Boundary_tag.write t.heap ~block ~size:fsize ~allocated:false;
    p.resize_free t ~block ~old_size:size ~new_size:fsize;
    let ablock = block + fsize in
    Boundary_tag.write t.heap ~block:ablock ~size:gross ~allocated:true;
    Boundary_tag.payload ablock
  end
  else begin
    p.remove_free t ~block ~size;
    Boundary_tag.write t.heap ~block ~size ~allocated:true;
    Boundary_tag.payload block
  end

let malloc t n =
  ensure_init t;
  let gross = gross_of_request n in
  Heap.charge t.heap 4 (* size rounding *);
  match (policy t).find_fit t ~gross with
  | Some block ->
      let size, allocated = Boundary_tag.read_header t.heap ~block in
      assert (not allocated);
      assert (size >= gross);
      allocate_from t ~block ~size ~gross
  | None ->
      let block = extend t ~gross in
      let size, _ = Boundary_tag.read_header t.heap ~block in
      allocate_from t ~block ~size ~gross

let free t payload =
  let p = policy t in
  let block = Boundary_tag.block_of_payload payload in
  let size, allocated = Boundary_tag.read_header t.heap ~block in
  if not allocated then
    failwith (Printf.sprintf "Seq_fit.free: block 0x%x is not allocated" block);
  (* Look right: absorb a free successor. *)
  let block, size =
    if not t.coalesce then (block, size)
    else begin
      let rblock = block + size in
      let rsize, ralloc = Boundary_tag.read_header t.heap ~block:rblock in
      if (not ralloc) && rsize > 0 then begin
        p.remove_free t ~block:rblock ~size:rsize;
        (block, size + rsize)
      end
      else (block, size)
    end
  in
  (* Look left: merge into a free predecessor (which keeps its links). *)
  let lsize, lalloc =
    if t.coalesce then Boundary_tag.read_footer_before t.heap ~block
    else (0, true)
  in
  if (not lalloc) && lsize > 0 then begin
    let lblock = block - lsize in
    let merged = lsize + size in
    Boundary_tag.write t.heap ~block:lblock ~size:merged ~allocated:false;
    p.resize_free t ~block:lblock ~old_size:lsize ~new_size:merged
  end
  else begin
    Boundary_tag.write t.heap ~block ~size ~allocated:false;
    p.insert_free t ~block ~size
  end

let free_blocks t =
  let walk_extent (base, limit) =
    let rec walk pos acc =
      if pos >= limit - 4 then List.rev acc
      else begin
        let size, allocated = Boundary_tag.peek_header t.heap ~block:pos in
        if size < Boundary_tag.min_block then
          failwith
            (Printf.sprintf "Seq_fit: bad block size %d at 0x%x" size pos);
        let acc = if allocated then acc else (pos, size) :: acc in
        walk (pos + size) acc
      end
    in
    walk (base + 4) []
  in
  List.concat_map walk_extent t.extents

let check_invariants t =
  (* Per extent: tags consistent, blocks tile it exactly, no two adjacent
     free blocks (coalescing invariant), sentinels intact. *)
  let walk_extent (base, limit) =
    let rec walk pos prev_free frees =
      if pos >= limit - 4 then begin
        if pos <> limit - 4 then
          failwith "Seq_fit: blocks do not tile the extent";
        List.rev frees
      end
      else begin
        let hsize, halloc = Boundary_tag.peek_header t.heap ~block:pos in
        if hsize < Boundary_tag.min_block || hsize land 3 <> 0 then
          failwith
            (Printf.sprintf "Seq_fit: bad header %d at 0x%x" hsize pos);
        let footer_raw = Heap.peek t.heap (pos + hsize - 4) in
        let header_raw = Heap.peek t.heap pos in
        if footer_raw <> header_raw then
          failwith
            (Printf.sprintf "Seq_fit: header/footer mismatch at 0x%x" pos);
        if t.coalesce && prev_free && not halloc then
          failwith
            (Printf.sprintf "Seq_fit: adjacent free blocks at 0x%x" pos);
        let frees = if halloc then frees else (pos, hsize) :: frees in
        walk (pos + hsize) (not halloc) frees
      end
    in
    if Heap.peek t.heap base <> sentinel_word then
      failwith "Seq_fit: start sentinel damaged";
    if Heap.peek t.heap (limit - 4) <> sentinel_word then
      failwith "Seq_fit: end sentinel damaged";
    walk (base + 4) false []
  in
  let frees = List.concat_map walk_extent t.extents in
  (policy t).check_policy t ~free_blocks:frees
