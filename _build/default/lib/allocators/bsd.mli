(** BSD — Chris Kingsley's power-of-two segregated storage (4.2 BSD
    [malloc]).

    Requests are rounded up to a power of two {e including} a one-word
    header recording the size class ("powers of two minus a constant"):
    an [n]-byte request consumes the class with [2^k >= n + 4].  Each
    class keeps a LIFO singly-linked freelist; when one is empty, a page
    (or one block, if larger) is carved from sbrk into blocks that are
    pushed onto the list.  Objects are never split or coalesced.

    Allocation and deallocation are just a few memory operations — the
    paper measures BSD as the fastest allocator — but the rounding can
    waste nearly half of every block, which inflates its page-fault rate
    at tight memory sizes (Figure 2). *)

type t

val create : Heap.t -> t
val allocator : t -> Allocator.t

val min_class : int
val max_class : int

val class_of_request : int -> int
(** Size class [k] (block size [2^k]) for a request of [n] bytes. *)

val free_count : t -> int -> int
(** Untraced length of class [k]'s freelist, for tests. *)
