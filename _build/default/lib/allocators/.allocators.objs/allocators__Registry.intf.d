lib/allocators/registry.mli: Allocator Heap
