lib/allocators/seq_fit.mli: Heap Memsim
