lib/allocators/predictive.mli: Allocator Heap
