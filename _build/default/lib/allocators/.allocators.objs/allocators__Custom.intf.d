lib/allocators/custom.mli: Allocator Heap Memsim Page_pool Size_map
