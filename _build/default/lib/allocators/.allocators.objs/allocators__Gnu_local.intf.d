lib/allocators/gnu_local.mli: Allocator Heap Page_pool
