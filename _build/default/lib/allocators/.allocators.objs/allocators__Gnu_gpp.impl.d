lib/allocators/gnu_gpp.ml: Allocator Array Boundary_tag Freelist Hashtbl Heap List Option Printf Seq_fit
