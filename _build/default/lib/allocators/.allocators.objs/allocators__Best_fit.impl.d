lib/allocators/best_fit.ml: Allocator Boundary_tag Freelist Heap List Option Seq_fit
