lib/allocators/custom.ml: Addr Allocator Array Hashtbl Heap List Memsim Page_pool Printf Size_map
