lib/allocators/allocator.ml: Addr Alloc_stats Cost Hashtbl Heap List Memsim Printf Region
