lib/allocators/heap.mli: Cost Memsim
