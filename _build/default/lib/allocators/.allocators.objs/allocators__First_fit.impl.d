lib/allocators/first_fit.ml: Addr Allocator Boundary_tag Freelist Heap List Memsim Option Seq_fit
