lib/allocators/size_map.ml: Array Hashtbl Heap List Memsim Option Printf
