lib/allocators/freelist.mli: Heap Memsim
