lib/allocators/seq_fit.ml: Addr Boundary_tag Heap List Memsim Printf Region
