lib/allocators/bsd.ml: Addr Allocator Array Hashtbl Heap Memsim Printf Region
