lib/allocators/quick_fit.mli: Allocator Heap
