lib/allocators/bsd.mli: Allocator Heap
