lib/allocators/first_fit.mli: Allocator Heap Memsim
