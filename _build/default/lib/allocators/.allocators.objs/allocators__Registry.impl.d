lib/allocators/registry.ml: Allocator Best_fit Bsd Custom First_fit Gnu_gpp Gnu_local Heap List Quick_fit
