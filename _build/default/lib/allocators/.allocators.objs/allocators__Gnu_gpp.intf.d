lib/allocators/gnu_gpp.mli: Allocator Heap Memsim
