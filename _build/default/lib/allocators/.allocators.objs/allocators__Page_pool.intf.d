lib/allocators/page_pool.mli: Heap Memsim
