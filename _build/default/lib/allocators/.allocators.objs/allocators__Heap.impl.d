lib/allocators/heap.ml: Cost Fun Memsim Region Sim_memory Sink
