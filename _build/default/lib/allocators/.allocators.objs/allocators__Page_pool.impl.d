lib/allocators/page_pool.ml: Addr Hashtbl Heap List Memsim Printf Region
