lib/allocators/best_fit.mli: Allocator Heap
