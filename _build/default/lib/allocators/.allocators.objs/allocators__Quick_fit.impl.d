lib/allocators/quick_fit.ml: Addr Allocator Array Gnu_gpp Hashtbl Heap Memsim Printf Region
