lib/allocators/cost.ml: Memsim
