lib/allocators/freelist.ml: Heap List Memsim Printf
