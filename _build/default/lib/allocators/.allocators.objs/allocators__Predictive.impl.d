lib/allocators/predictive.ml: Addr Allocator Array Custom Heap Memsim Page_pool
