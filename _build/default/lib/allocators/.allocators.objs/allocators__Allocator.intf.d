lib/allocators/allocator.mli: Alloc_stats Heap Memsim
