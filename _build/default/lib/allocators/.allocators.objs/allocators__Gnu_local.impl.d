lib/allocators/gnu_local.ml: Addr Allocator Array Hashtbl Heap Memsim Option Page_pool Printf
