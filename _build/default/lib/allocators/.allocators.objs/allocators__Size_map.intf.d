lib/allocators/size_map.mli: Heap
