lib/allocators/cost.mli: Memsim
