lib/allocators/boundary_tag.ml: Heap
