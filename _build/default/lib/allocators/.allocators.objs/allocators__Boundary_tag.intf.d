lib/allocators/boundary_tag.mli: Heap Memsim
