(** BESTFIT — exhaustive best fit over a single freelist.

    The other classic sequential-fit algorithm the paper names
    alongside first fit ("allocators based on sequential-fit methods,
    such as first-fit, best-fit, etc, have poor reference locality").
    Every allocation walks the {e entire} freelist looking for the
    smallest sufficient block, so its search traffic upper-bounds the
    sequential-fit family; block layout, splitting and coalescing are
    shared with {!First_fit} via {!Seq_fit}.

    Included as an extension: the paper measures five allocators, but
    its conclusions explicitly cover best fit. *)

type t

val create : ?extend_chunk:int -> ?split_threshold:int -> Heap.t -> t
val allocator : t -> Allocator.t

val free_list_length : t -> int
(** Untraced. *)
