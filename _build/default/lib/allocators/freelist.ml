(* Node layout: next link at node+0, prev link at node+4. *)

type t = { head : Memsim.Addr.t; heap : Heap.t }

let next_of a = a
let prev_of a = a + 4

let create heap =
  let head = Heap.alloc_static heap 8 in
  (* Initialising static data is load-time work: untraced. *)
  Heap.poke heap (next_of head) head;
  Heap.poke heap (prev_of head) head;
  { head; heap }

let head t = t.head
let is_empty t = Heap.load t.heap (next_of t.head) = t.head

let first t =
  let n = Heap.load t.heap (next_of t.head) in
  if n = t.head then None else Some n

let next t a = Heap.load t.heap (next_of a)

let insert_after t ~after node =
  let succ = Heap.load t.heap (next_of after) in
  Heap.store t.heap (next_of node) succ;
  Heap.store t.heap (prev_of node) after;
  Heap.store t.heap (next_of after) node;
  Heap.store t.heap (prev_of succ) node

let insert_front t node = insert_after t ~after:t.head node

let remove t node =
  assert (node <> t.head);
  let succ = Heap.load t.heap (next_of node) in
  let pred = Heap.load t.heap (prev_of node) in
  Heap.store t.heap (next_of pred) succ;
  Heap.store t.heap (prev_of succ) pred

let to_list t =
  let limit = 10_000_000 in
  let rec walk acc seen node =
    if node = t.head then List.rev acc
    else if seen > limit then failwith "Freelist.to_list: cycle damage"
    else begin
      let succ = Heap.peek t.heap (next_of node) in
      if Heap.peek t.heap (prev_of succ) <> node then
        failwith
          (Printf.sprintf "Freelist.to_list: link mismatch at 0x%x" node);
      walk (node :: acc) (seen + 1) succ
    end
  in
  walk [] 0 (Heap.peek t.heap (next_of t.head))

let length t = List.length (to_list t)
