(** Per-allocator behaviour statistics (simulation bookkeeping — these
    counters live outside the simulated machine and cause no trace
    events or instruction charges). *)

type t = {
  mutable malloc_calls : int;
  mutable free_calls : int;
  mutable realloc_calls : int;
  mutable realloc_moves : int;
      (** Reallocs that had to move (and copy) the object. *)
  mutable bytes_requested : int;  (** Sum of request sizes. *)
  mutable bytes_granted : int;
      (** Sum of gross block sizes actually dedicated to those requests,
          including headers and rounding — measures internal
          fragmentation. *)
  mutable live_bytes : int;  (** Requested bytes currently live. *)
  mutable max_live_bytes : int;
  mutable live_objects : int;
  mutable max_live_objects : int;
}

val create : unit -> t

val note_malloc : t -> requested:int -> granted:int -> unit
val note_free : t -> requested:int -> unit

val note_realloc :
  t -> old_requested:int -> new_requested:int -> granted_delta:int ->
  moved:bool -> unit
(** Adjusts live-byte accounting by the size delta; [granted_delta] is
    the change in gross bytes dedicated to the object (0 for in-place
    reallocs). *)

val internal_fragmentation : t -> float
(** [1 - bytes_requested / bytes_granted]; 0 when nothing allocated. *)

val pp : Format.formatter -> t -> unit
