let ladder ~max_small =
  (* Geometric spacing bounds internal fragmentation at ~1/3. *)
  let rec build acc s =
    if s >= max_small then List.rev (max_small :: acc)
    else build (s :: acc) (max 4 (((s * 3 / 2) + 3) / 4 * 4))
  in
  build [] 8

let default_max_small = 2040
let default_classes = ladder ~max_small:default_max_small

let bounded ?(max_small = default_max_small) ~max_frag () =
  if max_frag <= 0. || max_frag >= 1. then
    invalid_arg "Size_map.bounded: max_frag must be in (0, 1)";
  (* Word alignment is universal overhead, so the bound is on the
     word-rounded request: a request rounding to r in (c, next] wastes
     (next - r) / next, worst at r = c + 4.  Choosing next <= c/(1-f)
     (rounded DOWN to a word multiple) keeps that within f. *)
  let rec build acc c =
    if c >= max_small then List.rev (max_small :: acc)
    else begin
      let next =
        int_of_float (float_of_int c /. (1. -. max_frag)) / 4 * 4
      in
      let next = min max_small (max next (c + 4)) in
      build (c :: acc) next
    end
  in
  build [] 4

let design ?(max_small = default_max_small) ?(max_classes = 32)
    ?(hot_sizes = 12) histogram =
  let round4 n = (n + 3) / 4 * 4 in
  (* Word-round and merge the histogram, keeping small sizes only. *)
  let merged = Hashtbl.create 64 in
  List.iter
    (fun (size, count) ->
      if size >= 1 && size <= max_small && count > 0 then begin
        let s = round4 size in
        Hashtbl.replace merged s
          (count + Option.value ~default:0 (Hashtbl.find_opt merged s))
      end)
    histogram;
  let hot =
    Hashtbl.fold (fun s c acc -> (c, s) :: acc) merged []
    |> List.sort (fun a b -> compare b a)
    |> List.filteri (fun i _ -> i < hot_sizes)
    |> List.map snd
  in
  let base = List.sort_uniq compare (hot @ ladder ~max_small) in
  (* Trim to max_classes by dropping the ladder rung closest to its
     successor (hot sizes are never dropped). *)
  let is_hot s = List.mem s hot in
  let rec trim classes =
    if List.length classes <= max_classes then classes
    else begin
      let arr = Array.of_list classes in
      let best = ref (-1) and best_gap = ref max_int in
      for i = 0 to Array.length arr - 2 do
        let s = arr.(i) in
        if (not (is_hot s)) && s <> max_small then begin
          let gap = arr.(i + 1) - s in
          if gap < !best_gap then begin
            best_gap := gap;
            best := i
          end
        end
      done;
      if !best < 0 then classes
      else trim (List.filteri (fun i _ -> i <> !best) classes)
    end
  in
  trim base

type t = {
  heap : Heap.t;
  array_base : Memsim.Addr.t;  (* static: word-count -> class index *)
  class_sizes : int array;
  max_small : int;
}

let create heap ~classes =
  if classes = [] then invalid_arg "Size_map.create: no classes";
  let class_sizes = Array.of_list classes in
  Array.iteri
    (fun i s ->
      if s <= 0 || s land 3 <> 0 then
        invalid_arg "Size_map.create: classes must be positive word multiples";
      if i > 0 && s <= class_sizes.(i - 1) then
        invalid_arg "Size_map.create: classes must be ascending")
    class_sizes;
  let max_small = class_sizes.(Array.length class_sizes - 1) in
  let words = max_small / 4 in
  (* Entry w (1-based word count) holds the class index; entry 0 unused. *)
  let array_base = Heap.alloc_static heap ((words + 1) * 4) in
  let cls = ref 0 in
  for w = 1 to words do
    while class_sizes.(!cls) < w * 4 do
      incr cls
    done;
    Heap.poke heap (array_base + (w * 4)) !cls
  done;
  { heap; array_base; class_sizes; max_small }

let max_small t = t.max_small
let classes t = Array.copy t.class_sizes
let num_classes t = Array.length t.class_sizes

let lookup t n =
  if n < 1 || n > t.max_small then
    invalid_arg (Printf.sprintf "Size_map.lookup: %d out of range" n);
  let w = (n + 3) / 4 in
  Heap.load t.heap (t.array_base + (w * 4))

let class_size t i = t.class_sizes.(i)
let rounded t n = class_size t (lookup t n)
