(** The size-mapping array of the paper's Figure 9.

    "Arbitrary mappings can be implemented efficiently using a
    size-mapping array ...size requests can be rounded-up to arbitrary
    sizes."  The array lives in the allocator's static data and maps a
    request's word count to a size-class index with a single load — as
    cheap as BSD's power-of-two shift, but with freely chosen class
    sizes.

    {!design} chooses classes from a measured request-size histogram,
    the paper's recommended policy ("basing the choice of size classes
    on empirical measurement of a particular program's behavior"),
    combining the most frequent exact sizes with a geometric ladder that
    bounds worst-case internal fragmentation. *)

type t

val design :
  ?max_small:int ->
  ?max_classes:int ->
  ?hot_sizes:int ->
  (int * int) list ->
  int list
(** [design histogram] returns ascending class payload sizes covering
    [4 .. max_small] (default 2040).  The [hot_sizes] (default 12) most
    requested word-rounded sizes become exact classes; a geometric
    ladder (ratio 1.5) fills the rest, truncated to [max_classes]
    (default 32) by dropping the least useful ladder rungs. *)

val default_classes : int list
(** The design for an unknown program: pure ladder. *)

val bounded : ?max_small:int -> max_frag:float -> unit -> int list
(** DeTreville's policy, the second option the paper's §4.4 lists:
    classes chosen so worst-case internal fragmentation never exceeds
    [max_frag] (e.g. [0.25] rounds 12–16-byte objects to 16).  Requires
    [0 < max_frag < 1]; smaller bounds yield more classes. *)

val create : Heap.t -> classes:int list -> t
(** Builds the static lookup array.  Classes must be ascending, word
    multiples; the largest class bounds {!max_small}. *)

val max_small : t -> int
val classes : t -> int array
val num_classes : t -> int

val lookup : t -> int -> int
(** [lookup t n] is the class index for a request of [n] bytes
    ([1 <= n <= max_small]); exactly one traced load. *)

val class_size : t -> int -> int
(** Payload size of a class (untraced; class sizes are also mirrored
    outside simulated memory). *)

val rounded : t -> int -> int
(** [class_size t (lookup t n)] — traced lookup, untraced size. *)
