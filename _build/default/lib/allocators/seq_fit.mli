(** Core of the sequential-fit allocators.

    {!First_fit} and {!Gnu_gpp} share everything except the freelist
    organisation: a boundary-tagged heap laid out as

    {v [start sentinel][block][block]...[block][end sentinel] v}

    with constant-time coalescing against both neighbours on [free],
    front-split of oversized blocks on [malloc], and sbrk extension in
    16 KB chunks.  The differing freelist organisation (single roving
    list vs. size-segregated bins) is injected as a {!policy}. *)

type t

(** How free blocks are organised and found.  All callbacks receive
    gross block addresses/sizes; the freelist node of block [b] is its
    payload address [b + 4]. *)
type policy = {
  find_fit : t -> gross:int -> Memsim.Addr.t option;
      (** Search for a free block with size >= [gross]; returns its
          block address.  Must not modify the lists. *)
  insert_free : t -> block:Memsim.Addr.t -> size:int -> unit;
      (** Link a (correctly tagged) free block. *)
  remove_free : t -> block:Memsim.Addr.t -> size:int -> unit;
      (** Unlink a free block. *)
  resize_free : t -> block:Memsim.Addr.t -> old_size:int -> new_size:int -> unit;
      (** The block shrank/grew in place (same address, links intact);
          relink if the new size belongs elsewhere. *)
  note_alloc_from : t -> block:Memsim.Addr.t -> unit;
      (** Called just before block [block] satisfies an allocation
          (for rover bookkeeping). *)
  check_policy : t -> free_blocks:(Memsim.Addr.t * int) list -> unit;
      (** Invariant check: the policy's lists must contain exactly
          [free_blocks]. *)
}

val create : Heap.t -> ?extend_chunk:int -> ?split_threshold:int ->
  ?coalesce:bool -> policy -> t
(** [extend_chunk] defaults to 16384 bytes; [split_threshold] to 24
    bytes (the paper's "if the extra piece is ...less than 24 bytes, the
    block is not split").  [coalesce:false] disables merging of adjacent
    free blocks entirely — the ablation of §4.1's claim that coalescing
    costs locality and time. *)

val heap : t -> Heap.t
val split_threshold : t -> int

val gross_of_request : int -> int
(** Request size -> gross block size (aligned, tagged, >= min_block). *)

val malloc : t -> int -> Memsim.Addr.t
val free : t -> Memsim.Addr.t -> unit

val free_blocks : t -> (Memsim.Addr.t * int) list
(** Untraced walk: all free blocks (address, gross size) in address
    order.  Used by tests. *)

val check_invariants : t -> unit
(** Walks the heap verifying tags, footer/header agreement, absence of
    adjacent free blocks, and policy-list consistency. *)
