(** FIRSTFIT — Knuth-style first fit with a roving pointer.

    The paper's baseline allocator (Mark Moraes' implementation):
    a single doubly-linked freelist of all free blocks, scanned from a
    roving pointer (next fit) so small fragments don't pile up at the
    list head; boundary tags on every block; splitting of oversized
    blocks unless the remainder is under 24 bytes; and constant-time
    coalescing with both neighbours on free.

    Its freelist scan touches blocks scattered across the whole address
    space, which is what gives it the worst cache and page locality of
    the five allocators studied. *)

type t

val create :
  ?extend_chunk:int -> ?split_threshold:int -> ?coalesce:bool -> Heap.t -> t
(** [coalesce:false] builds the no-coalescing ablation variant. *)

val allocator : ?name:string -> t -> Allocator.t

val rover : t -> Memsim.Addr.t
(** Current roving pointer (a freelist node address, or the list head
    sentinel); untraced, for tests. *)

val free_list_length : t -> int
(** Untraced. *)
