type t = {
  mutable malloc_calls : int;
  mutable free_calls : int;
  mutable realloc_calls : int;
  mutable realloc_moves : int;
  mutable bytes_requested : int;
  mutable bytes_granted : int;
  mutable live_bytes : int;
  mutable max_live_bytes : int;
  mutable live_objects : int;
  mutable max_live_objects : int;
}

let create () =
  { malloc_calls = 0; free_calls = 0; realloc_calls = 0; realloc_moves = 0;
    bytes_requested = 0; bytes_granted = 0; live_bytes = 0; max_live_bytes = 0;
    live_objects = 0; max_live_objects = 0 }

let note_malloc t ~requested ~granted =
  t.malloc_calls <- t.malloc_calls + 1;
  t.bytes_requested <- t.bytes_requested + requested;
  t.bytes_granted <- t.bytes_granted + granted;
  t.live_bytes <- t.live_bytes + requested;
  if t.live_bytes > t.max_live_bytes then t.max_live_bytes <- t.live_bytes;
  t.live_objects <- t.live_objects + 1;
  if t.live_objects > t.max_live_objects then
    t.max_live_objects <- t.live_objects

let note_free t ~requested =
  t.free_calls <- t.free_calls + 1;
  t.live_bytes <- t.live_bytes - requested;
  t.live_objects <- t.live_objects - 1

let note_realloc t ~old_requested ~new_requested ~granted_delta ~moved =
  t.realloc_calls <- t.realloc_calls + 1;
  if moved then t.realloc_moves <- t.realloc_moves + 1;
  t.bytes_requested <- t.bytes_requested + max 0 (new_requested - old_requested);
  t.bytes_granted <- t.bytes_granted + max 0 granted_delta;
  t.live_bytes <- t.live_bytes + (new_requested - old_requested);
  if t.live_bytes > t.max_live_bytes then t.max_live_bytes <- t.live_bytes

let internal_fragmentation t =
  if t.bytes_granted = 0 then 0.
  else 1. -. (float t.bytes_requested /. float t.bytes_granted)

let pp ppf t =
  Format.fprintf ppf
    "mallocs=%d frees=%d requested=%d granted=%d live=%d/%d maxlive=%d frag=%.1f%%"
    t.malloc_calls t.free_calls t.bytes_requested t.bytes_granted
    t.live_objects t.live_bytes t.max_live_bytes
    (100. *. internal_fragmentation t)
