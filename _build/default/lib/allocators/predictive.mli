(** PREDICTIVE — lifetime-prediction allocation, the paper's §5.1
    future work ("we also hope to include other work in program behavior
    prediction based on call site information [Barrett & Zorn] in the
    synthesized allocators").

    A per-allocation-site predictor, trained on an earlier profiling
    run, classifies each request as short- or long-lived:

    - {b predicted short}: bump-allocated into mixed-size arena chunks
      (one page each).  Objects born together die together, so whole
      chunks empty quickly and are recycled immediately — the arena
      cycles through a handful of cache-hot pages;
    - {b predicted long} (or large): delegated to a {!Custom} general
      allocator.

    Mispredicted long-lived objects pin their arena chunk, which is the
    realistic cost of prediction errors.  The prediction table lives in
    static simulated memory: each [malloc] pays one traced load to
    consult it, as a real implementation would. *)

type prediction =
  | Short
  | Long

(** Builds a predictor from (site, observed-lifetime-class) samples. *)
module Trainer : sig
  type t

  val create : sites:int -> t

  val observe : t -> site:int -> long:bool -> unit
  (** Record one allocation's eventual fate. *)

  val finish : t -> prediction array
  (** Majority vote per site; sites never observed default to [Long]
      (the safe direction: only mispredicted-short costs pinning). *)
end

type t

val create : ?classes:int list -> predictions:prediction array -> Heap.t -> t
(** [predictions.(site)] classifies allocation site [site]; sites
    outside the array are treated as [Long].  [classes] configures the
    embedded {!Custom} long-lived allocator. *)

val allocator : t -> Allocator.t
(** Site-aware: drive it with {!Allocator.malloc_sited}.  Plain
    {!Allocator.malloc} treats the request as [Long]. *)

val max_arena_object : int
(** Largest predicted-short request served by the arena (2048 bytes);
    bigger objects go to the general allocator regardless. *)

val arena_pages : t -> int
(** Current number of arena chunks (untraced). *)

val prediction_for : t -> int -> prediction
(** The table entry a site resolves to (untraced). *)
