(** CUSTOM — the allocator architecture the paper's §4.4 advocates,
    in the spirit of the authors' CustoMalloc.

    Design, assembled from the study's conclusions:

    - {b segregated exact-fit freelists} with LIFO reuse, as in QuickFit
      — the fast path is an array lookup, a load and two stores;
    - {b measured size classes} through the Figure 9 size-mapping array
      ({!Size_map.design}), balancing re-use against internal
      fragmentation instead of BSD's crude powers of two;
    - {b no per-object boundary tags}: like GNU LOCAL, the owning class
      is recovered from the page's chunk header, so object memory holds
      only object data;
    - {b no coalescing} on the small path, and pages are retained by
      their class (no empty-page reclamation walk) to maximise object
      re-use;
    - large requests fall through to the page-run allocator
      ({!Page_pool}).

    The ablation benchmarks compare this design against its parents
    (QuickFit, BSD, GNU LOCAL). *)

type t

val create : ?classes:int list -> Heap.t -> t
(** [classes] defaults to {!Size_map.default_classes}; pass the result
    of {!Size_map.design} on a measured histogram to customise. *)

val create_for :
  histogram:(int * int) list -> ?max_classes:int -> Heap.t -> t
(** Convenience: design classes from a histogram, then {!create}. *)

val allocator : t -> Allocator.t

val size_map : t -> Size_map.t
val pool : t -> Page_pool.t

val free_count : t -> int -> int
(** Untraced freelist length of a class index, for tests. *)

(** {1 Raw entry points}

    For hybrids that embed Custom as their general allocator
    ({!Predictive}); phases and statistics are the host's business. *)

val raw_malloc : t -> int -> Memsim.Addr.t
val raw_free : t -> Memsim.Addr.t -> unit
val raw_granted : t -> int -> int
val raw_check : t -> unit
