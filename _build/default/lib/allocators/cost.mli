(** Instruction-count accounting.

    The paper measures "time" as executed machine instructions (via QP)
    and charges one cycle per instruction.  Every simulated load/store
    costs one instruction; additional register-only work is charged
    explicitly by the allocators and the workload driver.  Costs are
    attributed to the phase (application, malloc or free) active when
    they are incurred, which yields Figure 1 directly. *)

type phase =
  | App
  | Malloc
  | Free

type t

val create : unit -> t

val phase : t -> phase
val set_phase : t -> phase -> unit

val charge : t -> int -> unit
(** Adds instructions to the current phase. *)

val app : t -> int
val malloc : t -> int
val free : t -> int

val total : t -> int
(** All instructions: app + malloc + free. *)

val allocator_total : t -> int
(** malloc + free — the paper's "time in malloc and free". *)

val allocator_fraction : t -> float
(** [allocator_total / total], in [0, 1]; 0 when nothing has run. *)

val source_of_phase : phase -> Memsim.Event.source
