open Memsim

type prediction = Short | Long

module Trainer = struct
  type t = { shorts : int array; longs : int array }

  let create ~sites =
    assert (sites > 0);
    { shorts = Array.make sites 0; longs = Array.make sites 0 }

  let observe t ~site ~long =
    if site >= 0 && site < Array.length t.shorts then
      if long then t.longs.(site) <- t.longs.(site) + 1
      else t.shorts.(site) <- t.shorts.(site) + 1

  let finish t =
    Array.init (Array.length t.shorts) (fun i ->
        if t.shorts.(i) > t.longs.(i) then Short else Long)
end

let max_arena_object = 2048
let arena_class = 77 (* frag-status marker for arena chunks *)

type t = {
  heap : Heap.t;
  pool : Page_pool.t;  (* arena chunks *)
  general : Custom.t;  (* predicted-long objects *)
  predictions : prediction array;  (* host mirror of the table *)
  table : Addr.t;  (* static: site -> 0 (Long) / 1 (Short) *)
  bump : Addr.t;  (* static: current chunk bump pointer *)
  chunk_end : Addr.t;  (* static: end of current chunk *)
  mutable current_chunk : int;  (* ordinal of the bump chunk, -1 = none *)
  mutable chunk_count : int;
}

let create ?classes ~predictions heap =
  let pool = Page_pool.create heap in
  let general = Custom.create ?classes heap in
  let table = Heap.alloc_static heap (max 4 (4 * Array.length predictions)) in
  Array.iteri
    (fun i p -> Heap.poke heap (table + (4 * i)) (match p with Short -> 1 | Long -> 0))
    predictions;
  let bump = Heap.alloc_static heap 4 in
  let chunk_end = Heap.alloc_static heap 4 in
  Heap.poke heap bump 0;
  Heap.poke heap chunk_end 0;
  { heap; pool; general; predictions; table; bump; chunk_end;
    current_chunk = -1; chunk_count = 0 }

(* Open a fresh arena chunk (one page) for bump allocation. *)
let new_chunk t =
  let page = Page_pool.alloc_pages t.pool 1 in
  let ordinal = Page_pool.ordinal_of_addr t.pool page in
  Page_pool.store_status t.pool ordinal (Page_pool.frag_status arena_class);
  Page_pool.store_aux t.pool ordinal 0 (* live count *);
  Heap.store t.heap t.bump page;
  Heap.store t.heap t.chunk_end (page + Page_pool.page_bytes);
  t.current_chunk <- ordinal;
  t.chunk_count <- t.chunk_count + 1

let arena_malloc t n =
  let n = Addr.align_up n ~alignment:Addr.word_bytes in
  let pos = Heap.load t.heap t.bump in
  let lim = Heap.load t.heap t.chunk_end in
  let pos =
    if pos = 0 || lim - pos < n then begin
      (* The chunk's leftover tail stays unused until the whole chunk is
         reclaimed (its live count governs that). *)
      new_chunk t;
      Heap.load t.heap t.bump
    end
    else pos
  in
  Heap.store t.heap t.bump (pos + n);
  let ordinal = Page_pool.ordinal_of_addr t.pool pos in
  let live = Page_pool.load_aux t.pool ordinal in
  Page_pool.store_aux t.pool ordinal (live + 1);
  pos

let arena_free t a ordinal =
  Heap.charge t.heap 4;
  let live = Page_pool.load_aux t.pool ordinal - 1 in
  Page_pool.store_aux t.pool ordinal live;
  ignore a;
  if live = 0 then begin
    if ordinal = t.current_chunk then begin
      (* The bump chunk just emptied: rewind and keep using it — the
         arena cycles through the same cache-hot page. *)
      Heap.store t.heap t.bump (Page_pool.addr_of_ordinal t.pool ordinal)
    end
    else begin
      (* A retired chunk emptied: give the page back. *)
      Page_pool.store_status t.pool ordinal Page_pool.status_used_head;
      Page_pool.store_aux t.pool ordinal 1;
      Page_pool.free_pages t.pool (Page_pool.addr_of_ordinal t.pool ordinal);
      t.chunk_count <- t.chunk_count - 1
    end
  end

let predict t ~site =
  (* One traced load: the table consultation a real implementation
     pays. *)
  if site >= 0 && site < Array.length t.predictions then
    if Heap.load t.heap (t.table + (4 * site)) = 1 then Short else Long
  else Long

let malloc_sited t ~site n =
  Heap.charge t.heap 3;
  match predict t ~site with
  | Short when n <= max_arena_object -> arena_malloc t n
  | _ -> Custom.raw_malloc t.general n

let malloc t n =
  Heap.charge t.heap 2;
  Custom.raw_malloc t.general n

let free t a =
  let ordinal = Page_pool.ordinal_of_addr t.pool a in
  let status = Page_pool.load_status t.pool ordinal in
  if status = Page_pool.frag_status arena_class then arena_free t a ordinal
  else Custom.raw_free t.general a

(* align4 under-approximates the arena's gross size and never exceeds
   the general allocator's class size; equality of these values implies
   an in-place realloc is safe in both layouts. *)
let granted t n =
  if n <= max_arena_object then Addr.align_up n ~alignment:Addr.word_bytes
  else Custom.raw_granted t.general n

let check_invariants t =
  Page_pool.check_invariants t.pool;
  Custom.raw_check t.general;
  if t.current_chunk >= 0 then begin
    let s = Page_pool.peek_status t.pool t.current_chunk in
    if s <> Page_pool.frag_status arena_class then
      failwith "Predictive: current chunk lost its arena status"
  end

let arena_pages t = t.chunk_count

let prediction_for t site =
  if site >= 0 && site < Array.length t.predictions then t.predictions.(site)
  else Long

let allocator t =
  Allocator.make ~name:"predictive" ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> malloc t n);
      impl_free = (fun a -> free t a);
      granted_bytes = (fun n -> granted t n);
      check_invariants = (fun () -> check_invariants t);
      impl_malloc_sited = Some (fun ~site n -> malloc_sited t ~site n);
    }
