(** GNU LOCAL — Mike Haertel's FSF malloc, engineered for locality.

    Hybrid design: requests above one page go to a first-fit allocator
    over page runs ({!Page_pool}); smaller requests are rounded to a
    power of two and served as "fragments" carved from 4 KB pages that
    each hold a single fragment size.  All bookkeeping lives in the
    page-pool's compact heapinfo table, so

    - objects carry {e no} boundary tags: [free] recovers the size class
      from the page's table entry (the address alone identifies the
      chunk header), and
    - allocation never traverses the heap, only the table.

    Each page tracks its free-fragment count; when every fragment of a
    page is free again the page's fragments are withdrawn from the class
    freelist (a list walk — part of the CPU cost the paper charges this
    allocator for) and the page returns to the page pool.

    [emulate_tags] reproduces the paper's Table 6 experiment: each
    object is allocated eight bytes larger and a tag word is touched on
    every [malloc]/[free], emulating boundary-tag cache pollution
    without changing the algorithm. *)

type t

val create : ?emulate_tags:bool -> Heap.t -> t
val allocator : t -> Allocator.t

val max_fragment : int
(** Largest request served as a fragment (2048 bytes). *)

val class_of_request : int -> int
(** Fragment class [k] (fragment size [2^k]) for a small request. *)

val free_fragments : t -> int -> int
(** Untraced length of class [k]'s fragment freelist, for tests. *)

val pool : t -> Page_pool.t
