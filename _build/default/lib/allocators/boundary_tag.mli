(** Boundary tags (Knuth), the block layout of the first-fit family.

    A block of gross size [s] (a multiple of 4, at least {!min_block})
    occupies [\[b, b+s)]:

    {v
    b+0      header word: s lor allocated-bit
    b+4      payload (or freelist links while free)
    b+s-4    footer word: s lor allocated-bit
    v}

    Header and footer each cost one word — the paper's "two extra words
    of overhead ...one at each end of the block" — and let [free]
    coalesce with both neighbours in constant time. *)

val overhead : int
(** Bytes of tag overhead per block (8). *)

val min_block : int
(** Smallest legal gross block: tags + room for two freelist links
    (16 bytes).  Note the paper's 24-byte figure is the {e split}
    threshold, not the minimum block. *)

val payload : Memsim.Addr.t -> Memsim.Addr.t
(** Payload address of a block. *)

val block_of_payload : Memsim.Addr.t -> Memsim.Addr.t

val write : Heap.t -> block:Memsim.Addr.t -> size:int -> allocated:bool -> unit
(** Writes both header and footer (two traced stores). *)

val write_header :
  Heap.t -> block:Memsim.Addr.t -> size:int -> allocated:bool -> unit

val write_footer :
  Heap.t -> block:Memsim.Addr.t -> size:int -> allocated:bool -> unit

val read_header : Heap.t -> block:Memsim.Addr.t -> int * bool
(** [(size, allocated)] from the header (one traced load). *)

val read_footer_before : Heap.t -> block:Memsim.Addr.t -> int * bool
(** Reads the footer of the block that ends where [block] begins —
    the constant-time "look left" of boundary-tag coalescing. *)

val peek_header : Heap.t -> block:Memsim.Addr.t -> int * bool
(** Untraced header read, for tests and heap walks. *)
