let overhead = 8
let min_block = 16
let payload b = b + 4
let block_of_payload p = p - 4

let encode ~size ~allocated =
  assert (size land 3 = 0 && size >= min_block);
  size lor (if allocated then 1 else 0)

let decode v = (v land lnot 3, v land 1 = 1)

let write_header heap ~block ~size ~allocated =
  Heap.store heap block (encode ~size ~allocated)

let write_footer heap ~block ~size ~allocated =
  Heap.store heap (block + size - 4) (encode ~size ~allocated)

let write heap ~block ~size ~allocated =
  write_header heap ~block ~size ~allocated;
  write_footer heap ~block ~size ~allocated

let read_header heap ~block = decode (Heap.load heap block)
let read_footer_before heap ~block = decode (Heap.load heap (block - 4))
let peek_header heap ~block = decode (Heap.peek heap block)
