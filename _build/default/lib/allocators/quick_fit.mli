(** QUICKFIT — Weinstock & Wulf's fast segregated storage.

    Requests of 4–32 bytes (rounded to the word size) are served from an
    array of exact-size freelists indexed directly by the request size —
    "a small number of instructions" per allocation.  Small freelists
    are LIFO and never split or coalesce; fresh small blocks are carved
    sequentially from the "working storage" tail.  Larger requests are
    delegated to a general allocator (GNU G++, as in the paper's
    configuration).

    Every object carries a one-word boundary tag recording its size and
    owner, because [free] must route the object back to the right
    allocator — the tag the paper's §4.3 discusses as cache
    pollution. *)

type t

val create : Heap.t -> t
val allocator : t -> Allocator.t

val max_small : int
(** Largest request handled by the fast array (32 bytes). *)

val list_index : int -> int
(** Index into the freelist array for a small request. *)

val free_count : t -> int -> int
(** Untraced length of the freelist at the given index, for tests. *)
