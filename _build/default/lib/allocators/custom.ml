open Memsim

type t = {
  heap : Heap.t;
  pool : Page_pool.t;
  map : Size_map.t;
  heads : Addr.t array;  (* static word per class: first free object *)
  frag_pages : (int, int) Hashtbl.t;  (* ordinal -> class index (shadow) *)
}

let create ?(classes = Size_map.default_classes) heap =
  if List.exists (fun c -> c > Page_pool.page_bytes) classes then
    invalid_arg "Custom.create: classes must fit in one page";
  let pool = Page_pool.create heap in
  let map = Size_map.create heap ~classes in
  let heads =
    Array.init (Size_map.num_classes map) (fun _ ->
        let a = Heap.alloc_static heap 4 in
        Heap.poke heap a 0;
        a)
  in
  { heap; pool; map; heads; frag_pages = Hashtbl.create 64 }

let create_for ~histogram ?max_classes heap =
  let classes = Size_map.design ?max_classes histogram in
  create ~classes heap

let per_page t c = Page_pool.page_bytes / Size_map.class_size t.map c

(* Take a page for class [c] and thread its objects onto the freelist. *)
let add_page t c =
  let page = Page_pool.alloc_pages t.pool 1 in
  let ordinal = Page_pool.ordinal_of_addr t.pool page in
  Page_pool.store_status t.pool ordinal (Page_pool.frag_status c);
  Hashtbl.replace t.frag_pages ordinal c;
  let size = Size_map.class_size t.map c in
  let count = per_page t c in
  let cell = t.heads.(c) in
  let head = ref (Heap.load t.heap cell) in
  for i = count - 1 downto 0 do
    Heap.charge t.heap 2;
    let obj = page + (i * size) in
    Heap.store t.heap obj !head;
    head := obj
  done;
  Heap.store t.heap cell !head

let malloc t n =
  Heap.charge t.heap 2;
  if n <= Size_map.max_small t.map then begin
    (* Fast path: one size-map load, one pop. *)
    let c = Size_map.lookup t.map n in
    let cell = t.heads.(c) in
    let head = Heap.load t.heap cell in
    let head =
      if head <> 0 then head
      else begin
        add_page t c;
        Heap.load t.heap cell
      end
    in
    let next = Heap.load t.heap head in
    Heap.store t.heap cell next;
    head
  end
  else Page_pool.alloc_pages t.pool (Page_pool.pages_of_bytes n)

let free t a =
  Heap.charge t.heap 2;
  let ordinal = Page_pool.ordinal_of_addr t.pool a in
  let status = Page_pool.load_status t.pool ordinal in
  match Page_pool.class_of_frag_status status with
  | Some c ->
      (* Push; pages are retained by their class, so no count upkeep. *)
      let cell = t.heads.(c) in
      let head = Heap.load t.heap cell in
      Heap.store t.heap a head;
      Heap.store t.heap cell a
  | None ->
      if status = Page_pool.status_used_head then Page_pool.free_pages t.pool a
      else
        failwith
          (Printf.sprintf "Custom.free: 0x%x has page status %d" a status)

let granted t n =
  if n <= Size_map.max_small t.map then
    (* The size-map lookup is traced only on the real path; this mirror
       is silent bookkeeping. *)
    let sizes = Size_map.classes t.map in
    let rec find i = if sizes.(i) >= n then sizes.(i) else find (i + 1) in
    find 0
  else Page_pool.pages_of_bytes n * Page_pool.page_bytes

let free_count t c =
  let rec walk a acc =
    if a = 0 then acc else walk (Heap.peek t.heap a) (acc + 1)
  in
  walk (Heap.peek t.heap t.heads.(c)) 0

let check_invariants t =
  Page_pool.check_invariants t.pool;
  for c = 0 to Size_map.num_classes t.map - 1 do
    let size = Size_map.class_size t.map c in
    let seen = Hashtbl.create 64 in
    let rec walk a =
      if a <> 0 then begin
        if Hashtbl.mem seen a then
          failwith (Printf.sprintf "Custom: cycle in class %d list" c);
        Hashtbl.replace seen a ();
        let ordinal = Page_pool.ordinal_of_addr t.pool a in
        (match Hashtbl.find_opt t.frag_pages ordinal with
        | Some c' when c' = c -> ()
        | _ ->
            failwith
              (Printf.sprintf
                 "Custom: object 0x%x in class %d list but page %d is not" a c
                 ordinal));
        let base = Page_pool.addr_of_ordinal t.pool ordinal in
        if (a - base) mod size <> 0 then
          failwith (Printf.sprintf "Custom: misaligned free object 0x%x" a);
        walk (Heap.peek t.heap a)
      end
    in
    walk (Heap.peek t.heap t.heads.(c))
  done

let size_map t = t.map
let pool t = t.pool
let raw_malloc = malloc
let raw_free = free
let raw_granted = granted
let raw_check = check_invariants

let allocator t =
  Allocator.make ~name:"custom" ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> malloc t n);
      impl_free = (fun a -> free t a);
      granted_bytes = (fun n -> granted t n);
      check_invariants = (fun () -> check_invariants t);
      impl_malloc_sited = None;
    }
