(** A circular doubly-linked freelist threaded through simulated memory.

    The list head is a two-word sentinel in the allocator's static data;
    each member node stores its links in the first two payload words of
    the free block ([next] at +0, [prev] at +4, relative to the node
    address).  Every link operation is traced and costed, which is
    precisely the traffic the paper blames for first-fit's poor
    locality: inserting an item "requires that three objects be
    modified ...and these references may be to different pages". *)

type t

val create : Heap.t -> t
(** Allocates and initialises the sentinel in static data. *)

val head : t -> Memsim.Addr.t
(** Address of the sentinel (never a member node). *)

val is_empty : t -> bool
(** One traced load. *)

val first : t -> Memsim.Addr.t option
(** The node after the sentinel, if any (one traced load). *)

val next : t -> Memsim.Addr.t -> Memsim.Addr.t
(** Successor of a node (or of the sentinel); one traced load.  The list
    is circular: iteration has returned to the start when [next] yields
    the sentinel again. *)

val insert_after : t -> after:Memsim.Addr.t -> Memsim.Addr.t -> unit
(** Links a node in just after [after] (which may be the sentinel).
    Four traced stores + two loads. *)

val insert_front : t -> Memsim.Addr.t -> unit

val remove : t -> Memsim.Addr.t -> unit
(** Unlinks a member node (two loads, two stores). *)

val to_list : t -> Memsim.Addr.t list
(** Untraced snapshot of member nodes in list order, for tests.
    @raise Failure if the links are corrupt (next/prev mismatch) or the
    walk exceeds a large bound (cycle damage). *)

val length : t -> int
(** Untraced. *)
