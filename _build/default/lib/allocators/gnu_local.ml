open Memsim

let min_class = 3 (* 8-byte fragments *)
let max_class = 11 (* 2048-byte fragments *)
let max_fragment = 1 lsl max_class

let class_of_request n =
  assert (n >= 1 && n <= max_fragment);
  let rec find k = if 1 lsl k >= n then k else find (k + 1) in
  find min_class

type t = {
  heap : Heap.t;
  pool : Page_pool.t;
  (* frag_heads.(k - min_class): static word, address of the first free
     fragment of class k (0 = none); fragments link through their first
     word. *)
  frag_heads : Addr.t array;
  emulate_tags : bool;
  (* Shadow bookkeeping (untraced): fragment pages and their class. *)
  frag_pages : (int, int) Hashtbl.t;
}

let create ?(emulate_tags = false) heap =
  let pool = Page_pool.create heap in
  let frag_heads =
    Array.init (max_class - min_class + 1) (fun _ ->
        let a = Heap.alloc_static heap 4 in
        Heap.poke heap a 0;
        a)
  in
  { heap; pool; frag_heads; emulate_tags; frag_pages = Hashtbl.create 64 }

let head_cell t k = t.frag_heads.(k - min_class)
let frags_per_page k = Page_pool.page_bytes / (1 lsl k)

(* Acquire a page for class k and thread its fragments onto the class
   list (ascending addresses). *)
let add_frag_page t k =
  let page = Page_pool.alloc_pages t.pool 1 in
  let ordinal = Page_pool.ordinal_of_addr t.pool page in
  Page_pool.store_status t.pool ordinal (Page_pool.frag_status k);
  let count = frags_per_page k in
  Page_pool.store_aux t.pool ordinal count;
  Hashtbl.replace t.frag_pages ordinal k;
  let fsize = 1 lsl k in
  let cell = head_cell t k in
  let old_head = Heap.load t.heap cell in
  let head = ref old_head in
  for i = count - 1 downto 0 do
    Heap.charge t.heap 2;
    let frag = page + (i * fsize) in
    Heap.store t.heap frag !head;
    head := frag
  done;
  Heap.store t.heap cell !head

(* Withdraw every fragment belonging to [ordinal] from class k's list —
   the walk GNU malloc performs when a page empties. *)
let withdraw_page_fragments t k ordinal =
  let cell = head_cell t k in
  let in_page a = Page_pool.ordinal_of_addr t.pool a = ordinal in
  let rec filter prev_cell a =
    if a <> 0 then begin
      Heap.charge t.heap 3;
      let next = Heap.load t.heap a in
      if in_page a then begin
        Heap.store t.heap prev_cell next;
        filter prev_cell next
      end
      else filter a next
    end
  in
  filter cell (Heap.load t.heap cell)

let malloc_small t n =
  let k = class_of_request n in
  (* class computation plus the heapinfo index arithmetic (division and
     modulo on the MIPS) Haertel's implementation pays on every call *)
  Heap.charge t.heap 16;
  let cell = head_cell t k in
  let head = Heap.load t.heap cell in
  let head =
    if head <> 0 then head
    else begin
      add_frag_page t k;
      Heap.load t.heap cell
    end
  in
  let next = Heap.load t.heap head in
  Heap.store t.heap cell next;
  (* Decrement the page's free count. *)
  let ordinal = Page_pool.ordinal_of_addr t.pool head in
  let nfree = Page_pool.load_aux t.pool ordinal in
  Page_pool.store_aux t.pool ordinal (nfree - 1);
  head

let free_small t k a =
  Heap.charge t.heap 14 (* address->ordinal and fragment arithmetic *);
  let ordinal = Page_pool.ordinal_of_addr t.pool a in
  let cell = head_cell t k in
  let head = Heap.load t.heap cell in
  Heap.store t.heap a head;
  Heap.store t.heap cell a;
  let nfree = Page_pool.load_aux t.pool ordinal + 1 in
  Page_pool.store_aux t.pool ordinal nfree;
  if nfree = frags_per_page k then begin
    (* The whole page is free again: withdraw its fragments and return
       it to the page pool. *)
    withdraw_page_fragments t k ordinal;
    Hashtbl.remove t.frag_pages ordinal;
    Page_pool.store_status t.pool ordinal Page_pool.status_used_head;
    Page_pool.store_aux t.pool ordinal 1;
    Page_pool.free_pages t.pool (Page_pool.addr_of_ordinal t.pool ordinal)
  end

let effective_request t n = if t.emulate_tags then n + 8 else n

let malloc t n =
  let n = effective_request t n in
  let a =
    if n <= max_fragment then malloc_small t n
    else Page_pool.alloc_pages t.pool (Page_pool.pages_of_bytes n)
  in
  if t.emulate_tags then begin
    (* Touch the emulated boundary tag, polluting the object's first
       cache block exactly as a real tag would. *)
    Heap.store t.heap a 0;
    a + 8
  end
  else a

let free t p =
  let a = if t.emulate_tags then p - 8 else p in
  if t.emulate_tags then ignore (Heap.load t.heap a);
  let ordinal = Page_pool.ordinal_of_addr t.pool a in
  let status = Page_pool.load_status t.pool ordinal in
  match Page_pool.class_of_frag_status status with
  | Some k -> free_small t k a
  | None ->
      if status = Page_pool.status_used_head then Page_pool.free_pages t.pool a
      else
        failwith
          (Printf.sprintf "Gnu_local.free: 0x%x has page status %d" a status)

let granted t n =
  let n = effective_request t n in
  if n <= max_fragment then 1 lsl class_of_request n
  else Page_pool.pages_of_bytes n * Page_pool.page_bytes

let free_fragments t k =
  let rec walk a acc =
    if a = 0 then acc else walk (Heap.peek t.heap a) (acc + 1)
  in
  walk (Heap.peek t.heap (head_cell t k)) 0

let check_invariants t =
  Page_pool.check_invariants t.pool;
  (* Per-class lists: members must lie in pages of that class, be
     fragment-aligned, and per-page counts must match the aux word. *)
  let per_page = Hashtbl.create 64 in
  for k = min_class to max_class do
    let seen = Hashtbl.create 64 in
    let fsize = 1 lsl k in
    let rec walk a =
      if a <> 0 then begin
        if Hashtbl.mem seen a then
          failwith (Printf.sprintf "Gnu_local: cycle in class %d list" k);
        Hashtbl.replace seen a ();
        let ordinal = Page_pool.ordinal_of_addr t.pool a in
        (match Hashtbl.find_opt t.frag_pages ordinal with
        | Some k' when k' = k -> ()
        | _ ->
            failwith
              (Printf.sprintf
                 "Gnu_local: fragment 0x%x in class %d list but page %d is not"
                 a k ordinal));
        let page_base = Page_pool.addr_of_ordinal t.pool ordinal in
        if (a - page_base) mod fsize <> 0 then
          failwith (Printf.sprintf "Gnu_local: misaligned fragment 0x%x" a);
        Hashtbl.replace per_page ordinal
          (1 + Option.value ~default:0 (Hashtbl.find_opt per_page ordinal));
        walk (Heap.peek t.heap a)
      end
    in
    walk (Heap.peek t.heap (head_cell t k))
  done;
  Hashtbl.iter
    (fun ordinal k ->
      let listed =
        Option.value ~default:0 (Hashtbl.find_opt per_page ordinal)
      in
      let nfree = Page_pool.peek_aux t.pool ordinal in
      if listed <> nfree then
        failwith
          (Printf.sprintf
             "Gnu_local: page %d (class %d) records %d free but %d listed"
             ordinal k nfree listed);
      if Page_pool.peek_status t.pool ordinal <> Page_pool.frag_status k then
        failwith
          (Printf.sprintf "Gnu_local: page %d lost its fragment status"
             ordinal))
    t.frag_pages

let pool t = t.pool

let allocator t =
  Allocator.make ~name:"gnu-local" ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> malloc t n);
      impl_free = (fun a -> free t a);
      granted_bytes = (fun n -> granted t n);
      check_invariants = (fun () -> check_invariants t);
      impl_malloc_sited = None;
    }
