open Memsim

type impl = {
  impl_malloc : int -> Addr.t;
  impl_free : Addr.t -> unit;
  granted_bytes : int -> int;
  check_invariants : unit -> unit;
  impl_malloc_sited : (site:int -> int -> Addr.t) option;
}

type t = {
  name : string;
  heap : Heap.t;
  stats : Alloc_stats.t;
  impl : impl;
  live : (Addr.t, int) Hashtbl.t;
}

exception Allocator_misuse of string

let make ~name ~heap impl =
  { name; heap; stats = Alloc_stats.create (); impl;
    live = Hashtbl.create 4096 }

let name t = t.name
let heap t = t.heap
let stats t = t.stats
let call_overhead_instructions = 20

let malloc_with t n run_impl =
  if n < 1 then invalid_arg "Allocator.malloc: size must be >= 1";
  Heap.with_phase t.heap Cost.Malloc (fun () ->
      Heap.charge t.heap call_overhead_instructions;
      let a = run_impl n in
      if not (Addr.word_aligned a) then
        raise
          (Allocator_misuse
             (Printf.sprintf "%s: malloc returned unaligned 0x%x" t.name a));
      if not (Region.contains (Heap.heap_region t.heap) a) then
        raise
          (Allocator_misuse
             (Printf.sprintf "%s: malloc returned 0x%x outside heap" t.name a));
      if Hashtbl.mem t.live a then
        raise
          (Allocator_misuse
             (Printf.sprintf "%s: malloc returned live address 0x%x" t.name a));
      Alloc_stats.note_malloc t.stats ~requested:n
        ~granted:(t.impl.granted_bytes n);
      Hashtbl.replace t.live a n;
      a)

let malloc t n = malloc_with t n t.impl.impl_malloc

let malloc_sited t ~site n =
  match t.impl.impl_malloc_sited with
  | None -> malloc t n
  | Some sited -> malloc_with t n (fun n -> sited ~site n)

let free t a =
  match Hashtbl.find_opt t.live a with
  | None ->
      raise
        (Allocator_misuse
           (Printf.sprintf "%s: free of dead or unknown address 0x%x" t.name a))
  | Some n ->
      Heap.with_phase t.heap Cost.Free (fun () ->
          Heap.charge t.heap call_overhead_instructions;
          t.impl.impl_free a;
          Alloc_stats.note_free t.stats ~requested:n;
          Hashtbl.remove t.live a)

let realloc t a n =
  if n < 1 then invalid_arg "Allocator.realloc: size must be >= 1";
  match Hashtbl.find_opt t.live a with
  | None ->
      raise
        (Allocator_misuse
           (Printf.sprintf "%s: realloc of dead or unknown address 0x%x"
              t.name a))
  | Some n_old ->
      Heap.with_phase t.heap Cost.Malloc (fun () ->
          Heap.charge t.heap call_overhead_instructions;
          let g_old = t.impl.granted_bytes n_old in
          let g_new = t.impl.granted_bytes n in
          if g_old = g_new then begin
            (* Same gross block: the object stays put. *)
            Heap.charge t.heap 4;
            Alloc_stats.note_realloc t.stats ~old_requested:n_old
              ~new_requested:n ~granted_delta:0 ~moved:false;
            Hashtbl.replace t.live a n;
            a
          end
          else begin
            let fresh = t.impl.impl_malloc n in
            (* memcpy inside the allocator: traced, word-grain. *)
            let copy = min n_old n in
            let mem = Heap.mem t.heap in
            Heap.charge t.heap (((copy + 3) / 4) * 2);
            Memsim.Sim_memory.read_bytes mem a copy;
            Memsim.Sim_memory.write_bytes mem fresh copy;
            t.impl.impl_free a;
            Alloc_stats.note_realloc t.stats ~old_requested:n_old
              ~new_requested:n ~granted_delta:(g_new - g_old) ~moved:true;
            Hashtbl.remove t.live a;
            Hashtbl.replace t.live fresh n;
            fresh
          end)

let live_objects t = Hashtbl.fold (fun a n acc -> (a, n) :: acc) t.live []
let live_size t a = Hashtbl.find_opt t.live a

let check t =
  t.impl.check_invariants ();
  (* Live payloads must be pairwise disjoint. *)
  let objs =
    live_objects t |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let rec disjoint = function
    | (a1, n1) :: ((a2, _) :: _ as rest) ->
        if a1 + n1 > a2 then
          failwith
            (Printf.sprintf "%s: live objects overlap: 0x%x+%d and 0x%x"
               t.name a1 n1 a2)
        else disjoint rest
    | _ -> ()
  in
  disjoint objs
