open Memsim

let page_bytes = 4096
let pages_of_bytes n = max 1 ((n + page_bytes - 1) / page_bytes)

let status_free_head = 1
let status_free_tail = 2
let status_used_head = 4
let status_used_cont = 5
let frag_status k = 16 + k
let class_of_frag_status s = if s >= 16 then Some (s - 16) else None

(* Shadow model for invariant checking only (outside the simulated
   machine). *)
type shadow_run = Sfree of int | Sused of int

type t = {
  heap : Heap.t;
  table : Addr.t;  (* static base of the entry table *)
  head_cell : Addr.t;  (* static 2 words: next/prev ordinals, -1 = none *)
  mutable frontier : int;  (* pages obtained from sbrk so far *)
  shadow : (int, shadow_run) Hashtbl.t;  (* head ordinal -> run *)
}

let entry_bytes = 16
let grow_pages = 16

let create heap =
  let region = Heap.heap_region heap in
  if Region.base region land (page_bytes - 1) <> 0 then
    invalid_arg "Page_pool.create: heap base must be page-aligned";
  let max_pages = (Region.limit region - Region.base region) / page_bytes in
  let table = Heap.alloc_static heap (max_pages * entry_bytes) in
  let head_cell = Heap.alloc_static heap 8 in
  Heap.poke heap head_cell (-1);
  Heap.poke heap (head_cell + 4) (-1);
  { heap; table; head_cell; frontier = 0; shadow = Hashtbl.create 256 }

let heap t = t.heap

let ordinal_of_addr t a =
  (a - Region.base (Heap.heap_region t.heap)) / page_bytes

let addr_of_ordinal t p =
  Region.base (Heap.heap_region t.heap) + (p * page_bytes)

let entry t p = t.table + (p * entry_bytes)
let load_status t p = Heap.load t.heap (entry t p)
let store_status t p v = Heap.store t.heap (entry t p) v
let load_aux t p = Heap.load t.heap (entry t p + 4)
let store_aux t p v = Heap.store t.heap (entry t p + 4) v
let peek_status t p = Heap.peek t.heap (entry t p)
let peek_aux t p = Heap.peek t.heap (entry t p + 4)
let load_next t p = Heap.load t.heap (entry t p + 8)
let store_next t p v = Heap.store t.heap (entry t p + 8) v
let load_prev t p = Heap.load t.heap (entry t p + 12)
let store_prev t p v = Heap.store t.heap (entry t p + 12) v

let head_next t = Heap.load t.heap t.head_cell
let set_head_next t v = Heap.store t.heap t.head_cell v

(* Free-run list management.  next/prev are ordinals; -1 terminates at
   the static head cell. *)
let link_front t p =
  let first = head_next t in
  store_next t p first;
  store_prev t p (-1);
  if first >= 0 then store_prev t first p;
  set_head_next t p

let unlink t p =
  let nxt = load_next t p and prv = load_prev t p in
  if prv >= 0 then store_next t prv nxt else set_head_next t nxt;
  if nxt >= 0 then store_prev t nxt prv

(* Write head (and tail, for len > 1) entries of a free run. *)
let write_free_run t ~head ~len =
  store_status t head status_free_head;
  store_aux t head len;
  if len > 1 then begin
    store_status t (head + len - 1) status_free_tail;
    store_aux t (head + len - 1) head
  end

let mark_used t ~head ~len =
  store_status t head status_used_head;
  store_aux t head len;
  for p = head + 1 to head + len - 1 do
    store_status t p status_used_cont
  done

(* Take [n] pages from the front of free run [head] (already linked). *)
let take_from_run t ~head ~len ~n =
  assert (len >= n);
  unlink t head;
  Hashtbl.remove t.shadow head;
  if len > n then begin
    let rest = head + n in
    write_free_run t ~head:rest ~len:(len - n);
    link_front t rest;
    Hashtbl.replace t.shadow rest (Sfree (len - n))
  end;
  mark_used t ~head ~len:n;
  Hashtbl.replace t.shadow head (Sused n);
  addr_of_ordinal t head

(* Free the run [head, head+len), coalescing with both neighbours. *)
let release_run t ~head ~len =
  Hashtbl.remove t.shadow head;
  (* Right neighbour. *)
  let len =
    let q = head + len in
    if q < t.frontier && load_status t q = status_free_head then begin
      let qlen = load_aux t q in
      unlink t q;
      Hashtbl.remove t.shadow q;
      len + qlen
    end
    else len
  in
  (* Left neighbour: the page just before is a free run's tail (or a
     one-page free run's head). *)
  let head, len =
    if head > 0 then begin
      let s = load_status t (head - 1) in
      if s = status_free_tail then begin
        let lh = load_aux t (head - 1) in
        let llen = load_aux t lh in
        unlink t lh;
        Hashtbl.remove t.shadow lh;
        (lh, len + llen)
      end
      else if s = status_free_head && load_aux t (head - 1) = 1 then begin
        let lh = head - 1 in
        unlink t lh;
        Hashtbl.remove t.shadow lh;
        (lh, len + 1)
      end
      else (head, len)
    end
    else (head, len)
  in
  write_free_run t ~head ~len;
  link_front t head;
  Hashtbl.replace t.shadow head (Sfree len)

(* Extend the heap by at least [n] pages and release the new run (which
   coalesces with a free run at the old top, if any).  Another allocator
   sharing the heap may have moved the break since our last growth; the
   pages in between belong to it and stay out of this pool (their table
   entries were never written, so coalescing cannot reach them). *)
let grow t n =
  let pages = max n grow_pages in
  let break = Memsim.Region.break (Heap.heap_region t.heap) in
  let base =
    if break land (page_bytes - 1) = 0 then Heap.sbrk t.heap (pages * page_bytes)
    else begin
      (* Re-align to a page boundary first. *)
      let pad = page_bytes - (break land (page_bytes - 1)) in
      let first = Heap.sbrk t.heap (pad + (pages * page_bytes)) in
      first + pad
    end
  in
  let head = ordinal_of_addr t base in
  assert (head >= t.frontier);
  t.frontier <- head + pages;
  release_run t ~head ~len:pages

let alloc_pages t n =
  assert (n >= 1);
  Heap.charge t.heap 4;
  (* First fit over the free-run list. *)
  let rec find p =
    if p < 0 then None
    else begin
      Heap.charge t.heap 2;
      let len = load_aux t p in
      if len >= n then Some (p, len) else find (load_next t p)
    end
  in
  match find (head_next t) with
  | Some (head, len) -> take_from_run t ~head ~len ~n
  | None ->
      grow t n;
      (* The new (possibly coalesced) run is at the list front and is
         guaranteed to fit. *)
      let head = head_next t in
      let len = load_aux t head in
      take_from_run t ~head ~len ~n

let free_pages t addr =
  let head = ordinal_of_addr t addr in
  let s = load_status t head in
  if s <> status_used_head then
    failwith
      (Printf.sprintf "Page_pool.free_pages: page %d is not a used head" head);
  let len = load_aux t head in
  release_run t ~head ~len

let free_page_count t =
  Hashtbl.fold
    (fun _ run acc -> match run with Sfree l -> acc + l | Sused _ -> acc)
    t.shadow 0

let used_page_count t =
  Hashtbl.fold
    (fun _ run acc -> match run with Sused l -> acc + l | Sfree _ -> acc)
    t.shadow 0

let check_invariants t =
  (* Shadow runs must be disjoint and ascending, with no two adjacent
     free runs.  Gaps are legal: they are pages another allocator
     sbrk'd between our growths. *)
  let runs =
    Hashtbl.fold (fun head run acc -> (head, run) :: acc) t.shadow []
    |> List.sort compare
  in
  let rec walk pos prev_free = function
    | [] ->
        if pos > t.frontier then
          failwith "Page_pool: runs extend past the frontier"
    | (head, run) :: rest ->
        if head < pos then
          failwith (Printf.sprintf "Page_pool: overlapping runs at page %d" head);
        let foreign_gap = head > pos in
        let len, is_free =
          match run with Sfree l -> (l, true) | Sused l -> (l, false)
        in
        if len < 1 then failwith "Page_pool: empty run";
        if (not foreign_gap) && prev_free && is_free then
          failwith
            (Printf.sprintf "Page_pool: adjacent free runs at page %d" head);
        walk (head + len) is_free rest
  in
  walk 0 false runs;
  (* The traced free list must contain exactly the shadow's free heads,
     with consistent head/tail entries. *)
  let shadow_free =
    List.filter_map
      (function
        | head, Sfree len -> Some (head, len)
        | _, Sused _ -> None)
      runs
  in
  let rec collect p acc =
    if p < 0 then List.rev acc
    else begin
      if List.mem_assoc p acc then failwith "Page_pool: free list cycle";
      let len = Heap.peek t.heap (entry t p + 4) in
      if Heap.peek t.heap (entry t p) <> status_free_head then
        failwith (Printf.sprintf "Page_pool: list member %d not a free head" p);
      if len > 1 then begin
        if Heap.peek t.heap (entry t (p + len - 1)) <> status_free_tail then
          failwith (Printf.sprintf "Page_pool: run %d tail entry damaged" p);
        if Heap.peek t.heap (entry t (p + len - 1) + 4) <> p then
          failwith (Printf.sprintf "Page_pool: run %d tail backlink damaged" p)
      end;
      collect (Heap.peek t.heap (entry t p + 8)) ((p, len) :: acc)
    end
  in
  let listed = collect (Heap.peek t.heap t.head_cell) [] in
  let sort = List.sort compare in
  if sort listed <> sort shadow_free then
    failwith "Page_pool: free list does not match shadow model"
