(** Page-granular storage with a contiguous "heapinfo" table.

    This is the lower layer of Mike Haertel's GNU malloc (the paper's
    GNU LOCAL): the heap is divided into 4 KB pages, and {e all}
    metadata about them lives in one small, densely packed table in
    static data — one entry per page — so finding a block never touches
    the heap itself ("only the information in the chunk headers must be
    traversed").

    Free pages form runs tracked by a doubly-linked list threaded
    through the table entries; allocation is first fit over that list,
    with constant-time coalescing of freed runs against both
    neighbours.  Higher layers ({!Gnu_local}, {!Custom}) mark pages they
    subdivide into same-size fragments by overwriting the page's status
    and aux words. *)

val page_bytes : int
(** 4096. *)

val pages_of_bytes : int -> int
(** Pages needed to hold the given byte count (at least 1). *)

(** {1 Status words}

    Each table entry is four words: status, aux, next, prev.
    For a free-run head, aux is the run length and next/prev link the
    free list; for a free-run tail, aux points back to the head; for a
    used-run head, aux is the run length.  Fragment users overwrite the
    status with {!frag_status} and use aux as their free count. *)

val status_free_head : int
val status_free_tail : int
val status_used_head : int
val status_used_cont : int

val frag_status : int -> int
(** [frag_status k] marks a page subdivided into class-[k] fragments. *)

val class_of_frag_status : int -> int option

type t

val create : Heap.t -> t
(** Sizes the table from the heap region (16 bytes of static data per
    possible page).  The heap region base must be page-aligned. *)

val heap : t -> Heap.t

val alloc_pages : t -> int -> Memsim.Addr.t
(** First-fit allocation of a run of [n] pages; extends the heap (in
    16-page chunks minimum) when no run fits.  Returns the page-aligned
    base address. *)

val free_pages : t -> Memsim.Addr.t -> unit
(** Frees the used run whose head page starts at the given address,
    coalescing with free neighbours.  The head entry must carry
    [status_used_head] with the run length in aux (restore these before
    calling if the page was used for fragments). *)

(** {1 Table access for fragment users (traced)} *)

val ordinal_of_addr : t -> Memsim.Addr.t -> int
val addr_of_ordinal : t -> int -> Memsim.Addr.t
val load_status : t -> int -> int
val store_status : t -> int -> int -> unit
val load_aux : t -> int -> int
val store_aux : t -> int -> int -> unit

val peek_status : t -> int -> int
(** Untraced status read, for tests. *)

val peek_aux : t -> int -> int
(** Untraced aux read, for tests. *)

(** {1 Inspection (untraced)} *)

val free_page_count : t -> int
val used_page_count : t -> int
val check_invariants : t -> unit
(** Verifies that runs tile the allocated heap, no two free runs are
    adjacent, and the free list matches the shadow model. *)
