(** Name-indexed construction of the allocators under study. *)

type spec = {
  key : string;  (** Stable identifier, e.g. ["firstfit"]. *)
  label : string;  (** Display name as in the paper, e.g. ["FirstFit"]. *)
  description : string;
  build : Heap.t -> Allocator.t;
}

val paper_five : spec list
(** The five allocators of the paper, in its presentation order:
    firstfit, gnu-g++, bsd, gnu-local, quickfit. *)

val all : spec list
(** {!paper_five} plus the synthesized [custom] allocator and the
    [gnu-local-tags] Table 6 variant. *)

val find : string -> spec
(** @raise Not_found for unknown keys. *)

val keys : unit -> string list

val build : string -> Heap.t -> Allocator.t
(** [build key heap] constructs the named allocator on [heap].
    @raise Not_found for unknown keys. *)
