type phase = App | Malloc | Free

type t = {
  mutable app : int;
  mutable malloc : int;
  mutable free : int;
  mutable phase : phase;
}

let create () = { app = 0; malloc = 0; free = 0; phase = App }
let phase t = t.phase
let set_phase t p = t.phase <- p

let charge t n =
  match t.phase with
  | App -> t.app <- t.app + n
  | Malloc -> t.malloc <- t.malloc + n
  | Free -> t.free <- t.free + n

let app t = t.app
let malloc t = t.malloc
let free t = t.free
let total t = t.app + t.malloc + t.free
let allocator_total t = t.malloc + t.free

let allocator_fraction t =
  let tot = total t in
  if tot = 0 then 0. else float (allocator_total t) /. float tot

let source_of_phase = function
  | App -> Memsim.Event.App
  | Malloc -> Memsim.Event.Malloc
  | Free -> Memsim.Event.Free
