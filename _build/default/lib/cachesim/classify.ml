(* Fully-associative LRU occupancy is tracked with an intrusive
   doubly-linked list over nodes stored in a hash table, giving O(1)
   touch and eviction. *)

type node = {
  block : int;
  mutable prev : node option;
  mutable next : node option;
}

type lru = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;  (* MRU *)
  mutable tail : node option;  (* LRU *)
  mutable size : int;
}

let lru_create capacity =
  { capacity; table = Hashtbl.create 4096; head = None; tail = None; size = 0 }

let unlink l n =
  (match n.prev with Some p -> p.next <- n.next | None -> l.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> l.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front l n =
  n.next <- l.head;
  n.prev <- None;
  (match l.head with Some h -> h.prev <- Some n | None -> l.tail <- Some n);
  l.head <- Some n

(* Returns true when the access hits in the fully-associative cache. *)
let lru_touch l block =
  match Hashtbl.find_opt l.table block with
  | Some n ->
      unlink l n;
      push_front l n;
      true
  | None ->
      let n = { block; prev = None; next = None } in
      Hashtbl.replace l.table block n;
      push_front l n;
      l.size <- l.size + 1;
      if l.size > l.capacity then begin
        match l.tail with
        | Some victim ->
            unlink l victim;
            Hashtbl.remove l.table victim.block;
            l.size <- l.size - 1
        | None -> assert false
      end;
      false

type counts = { cold : int; capacity : int; conflict : int; hits : int }

type t = {
  cache : Cache.t;
  lru : lru;
  seen : (int, unit) Hashtbl.t;
  mutable cold : int;
  mutable capacity_misses : int;
  mutable conflict : int;
  mutable hits : int;
}

let create config =
  { cache = Cache.create config;
    lru = lru_create (Config.num_blocks config);
    seen = Hashtbl.create 4096;
    cold = 0;
    capacity_misses = 0;
    conflict = 0;
    hits = 0 }

let classify_block t ~kind ~source block =
  let fa_hit = lru_touch t.lru block in
  let miss = Cache.access_block t.cache ~kind ~source ~block in
  if not miss then t.hits <- t.hits + 1
  else if not (Hashtbl.mem t.seen block) then t.cold <- t.cold + 1
  else if fa_hit then t.conflict <- t.conflict + 1
  else t.capacity_misses <- t.capacity_misses + 1;
  if not (Hashtbl.mem t.seen block) then Hashtbl.replace t.seen block ()

let sink t =
  Memsim.Sink.of_fn (fun (e : Memsim.Event.t) ->
      let bb = (Cache.config t.cache).Config.block_bytes in
      let first = e.addr / bb in
      let last = (e.addr + e.size - 1) / bb in
      for block = first to last do
        classify_block t ~kind:e.kind ~source:e.source block
      done)

let counts t =
  { cold = t.cold; capacity = t.capacity_misses; conflict = t.conflict;
    hits = t.hits }

let total_misses t = t.cold + t.capacity_misses + t.conflict
let stats t = Cache.stats t.cache
