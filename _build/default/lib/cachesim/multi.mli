(** Simulate a family of cache configurations over one trace pass.

    The paper sweeps cache sizes (Figures 6–8); feeding every
    configuration from the same execution-driven trace is how TYCHO was
    used.  All caches see the identical reference stream. *)

type t

val create : Config.t list -> t
val caches : t -> Cache.t list

val sink : t -> Memsim.Sink.t
(** Forwards every event to every cache. *)

val results : t -> (Config.t * Stats.t) list
(** Configuration and statistics per cache, in creation order. *)

val find : t -> name:string -> Cache.t
(** @raise Not_found if no cache has that configuration name. *)

val miss_rate_series : t -> (string * float) list
(** [(name, miss-rate %)] per configuration — one figure series. *)
