(* Each level is a single-member {!Forest} family: the member code path
   (inline probe, array counters, cold table consulted only on a miss)
   is shared with the multi-configuration sweep, and a one-member
   family's statistics are exactly an independent cache's.  L2 sees
   only the L1 miss stream, as in the paper's two-level runs. *)
type t = {
  l1 : Forest.t;
  l2 : Forest.t;
  l1_shift : int;  (* log2 of the L1 block size *)
  l2_shift : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~l1 ~l2 =
  { l1 = Forest.create [ l1 ];
    l2 = Forest.create [ l2 ];
    l1_shift = log2 l1.Config.block_bytes;
    l2_shift = log2 l2.Config.block_bytes }

let access t (e : Memsim.Event.t) =
  let ks = Forest.ks_index ~kind:e.kind ~source:e.source in
  let first = e.addr lsr t.l1_shift in
  let last = (e.addr + e.size - 1) lsr t.l1_shift in
  for block = first to last do
    if Forest.access_block_ks t.l1 ~ks ~block > 0 then
      (* Translate the L1 block to the (possibly larger) L2 block. *)
      ignore
        (Forest.access_block_ks t.l2 ~ks
           ~block:((block lsl t.l1_shift) lsr t.l2_shift))
  done

let sink t =
  let access_event = access t in
  Memsim.Sink.make ~emit:access_event
    ~emit_batch:(fun buf len ->
      for i = 0 to len - 1 do
        access_event (Array.unsafe_get buf i)
      done)

let l1_stats t = Forest.member_stats t.l1 0
let l2_stats t = Forest.member_stats t.l2 0

let stall_cycles t ~l1_penalty ~l2_penalty =
  let s1 = l1_stats t and s2 = l2_stats t in
  (s1.Stats.misses * l1_penalty) + (s2.Stats.misses * l2_penalty)
