type t = { l1 : Cache.t; l2 : Cache.t }

let create ~l1 ~l2 = { l1 = Cache.create l1; l2 = Cache.create l2 }

let sink t =
  Memsim.Sink.of_fn (fun (e : Memsim.Event.t) ->
      let bb1 = (Cache.config t.l1).Config.block_bytes in
      let first = e.addr / bb1 in
      let last = (e.addr + e.size - 1) / bb1 in
      for block = first to last do
        let miss =
          Cache.access_block t.l1 ~kind:e.kind ~source:e.source ~block
        in
        if miss then begin
          (* Translate the L1 block to the (possibly larger) L2 block. *)
          let addr = block * bb1 in
          let bb2 = (Cache.config t.l2).Config.block_bytes in
          ignore
            (Cache.access_block t.l2 ~kind:e.kind ~source:e.source
               ~block:(addr / bb2))
        end
      done)

let l1_stats t = Cache.stats t.l1
let l2_stats t = Cache.stats t.l2

let stall_cycles t ~l1_penalty ~l2_penalty =
  let s1 = Cache.stats t.l1 and s2 = Cache.stats t.l2 in
  (s1.Stats.misses * l1_penalty) + (s2.Stats.misses * l2_penalty)
