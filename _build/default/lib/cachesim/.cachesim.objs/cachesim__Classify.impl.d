lib/cachesim/classify.ml: Cache Config Hashtbl Memsim
