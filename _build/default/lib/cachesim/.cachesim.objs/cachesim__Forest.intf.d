lib/cachesim/forest.mli: Config Memsim Stats
