lib/cachesim/classify.mli: Config Memsim Stats
