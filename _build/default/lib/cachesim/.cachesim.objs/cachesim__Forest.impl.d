lib/cachesim/forest.ml: Array Config Hashtbl List Memsim Printf Stats
