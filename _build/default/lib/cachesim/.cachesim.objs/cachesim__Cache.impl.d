lib/cachesim/cache.ml: Array Config Hashtbl Memsim Stats
