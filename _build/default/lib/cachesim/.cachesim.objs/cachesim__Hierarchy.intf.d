lib/cachesim/hierarchy.mli: Config Memsim Stats
