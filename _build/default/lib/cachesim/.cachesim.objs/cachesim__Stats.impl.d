lib/cachesim/stats.ml: Format Memsim
