lib/cachesim/hierarchy.ml: Cache Config Memsim Stats
