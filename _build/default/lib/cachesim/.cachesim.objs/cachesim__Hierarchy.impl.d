lib/cachesim/hierarchy.ml: Array Config Forest Memsim Stats
