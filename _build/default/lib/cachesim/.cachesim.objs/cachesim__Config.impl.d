lib/cachesim/config.ml: Format List Printf
