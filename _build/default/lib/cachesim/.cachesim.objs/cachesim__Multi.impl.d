lib/cachesim/multi.ml: Array Cache Config List Memsim Stats
