lib/cachesim/multi.ml: Array Config Forest Hashtbl List Memsim Printf Stats String
