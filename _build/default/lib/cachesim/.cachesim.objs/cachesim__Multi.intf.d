lib/cachesim/multi.mli: Cache Config Memsim Stats
