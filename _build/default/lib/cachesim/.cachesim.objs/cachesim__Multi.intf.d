lib/cachesim/multi.mli: Config Memsim Stats
