lib/cachesim/stats.mli: Format Memsim
