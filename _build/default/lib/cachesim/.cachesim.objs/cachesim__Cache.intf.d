lib/cachesim/cache.mli: Config Memsim Stats
