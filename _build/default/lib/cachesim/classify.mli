(** Miss classification: cold / capacity / conflict.

    Runs the target cache alongside a fully-associative LRU cache of the
    same capacity.  A miss that would also miss in the fully-associative
    cache is a capacity miss (or cold on first touch); a miss that the
    fully-associative cache would hit is a conflict miss — the classic
    three-C decomposition, relevant to the paper's remark that
    associativity changes which allocator artefacts hurt. *)

type t

type counts = {
  cold : int;
  capacity : int;
  conflict : int;
  hits : int;
}

val create : Config.t -> t
val sink : t -> Memsim.Sink.t
val counts : t -> counts
val total_misses : t -> int
val stats : t -> Stats.t
(** Statistics of the underlying set-associative cache. *)
