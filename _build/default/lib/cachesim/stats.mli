(** Cache access statistics. *)

type t = {
  mutable accesses : int;
  mutable misses : int;
  mutable read_accesses : int;
  mutable read_misses : int;
  mutable write_accesses : int;
  mutable write_misses : int;
  mutable cold_misses : int;  (** First reference ever to the block. *)
  mutable writebacks : int;
      (** Dirty blocks written back to memory on eviction or flush
          (write-back policy accounting; miss counts are unaffected). *)
  mutable app_accesses : int;
  mutable app_misses : int;
  mutable malloc_accesses : int;
  mutable malloc_misses : int;
  mutable free_accesses : int;
  mutable free_misses : int;
}

val create : unit -> t

val hits : t -> int
val miss_rate : t -> float
(** Misses per access, in [0, 1]; 0 when there were no accesses. *)

val miss_rate_pct : t -> float
(** Miss rate as a percentage, matching the paper's figures. *)

val source_miss_rate : t -> Memsim.Event.source -> float
(** Miss rate restricted to references from one source. *)

val record : t -> kind:Memsim.Event.kind -> source:Memsim.Event.source ->
  miss:bool -> cold:bool -> unit
(** Accumulates one block access. *)

val record_writeback : t -> unit

val memory_traffic_blocks : t -> int
(** Block transfers to/from memory under write-back: fetches (misses)
    plus writebacks. *)

val merge : t -> t -> t
(** Pointwise sum (fresh statistics record). *)

val pp : Format.formatter -> t -> unit
