(** A two-level cache hierarchy.

    Models the "hypothetical two-level cache" of Mogul & Borg cited in
    the paper: every reference probes L1; L1 misses probe L2.  Used by
    the extension benchmarks to study how allocator locality interacts
    with large second-level caches and high miss penalties. *)

type t

val create : l1:Config.t -> l2:Config.t -> t
val sink : t -> Memsim.Sink.t
val l1_stats : t -> Stats.t
val l2_stats : t -> Stats.t

val stall_cycles : t -> l1_penalty:int -> l2_penalty:int -> int
(** Total memory stall cycles: L1 misses pay [l1_penalty] (the L2 access
    time) and L2 misses additionally pay [l2_penalty]. *)
