type t = {
  mutable accesses : int;
  mutable misses : int;
  mutable read_accesses : int;
  mutable read_misses : int;
  mutable write_accesses : int;
  mutable write_misses : int;
  mutable cold_misses : int;
  mutable writebacks : int;
  mutable app_accesses : int;
  mutable app_misses : int;
  mutable malloc_accesses : int;
  mutable malloc_misses : int;
  mutable free_accesses : int;
  mutable free_misses : int;
}

let create () =
  { accesses = 0; misses = 0; read_accesses = 0; read_misses = 0;
    write_accesses = 0; write_misses = 0; cold_misses = 0; writebacks = 0;
    app_accesses = 0;
    app_misses = 0; malloc_accesses = 0; malloc_misses = 0; free_accesses = 0;
    free_misses = 0 }

let hits t = t.accesses - t.misses
let miss_rate t = if t.accesses = 0 then 0. else float t.misses /. float t.accesses
let miss_rate_pct t = 100. *. miss_rate t

let source_miss_rate t source =
  let accesses, misses =
    match (source : Memsim.Event.source) with
    | App -> (t.app_accesses, t.app_misses)
    | Malloc -> (t.malloc_accesses, t.malloc_misses)
    | Free -> (t.free_accesses, t.free_misses)
  in
  if accesses = 0 then 0. else float misses /. float accesses

let record t ~kind ~source ~miss ~cold =
  t.accesses <- t.accesses + 1;
  if miss then t.misses <- t.misses + 1;
  if cold then t.cold_misses <- t.cold_misses + 1;
  (match (kind : Memsim.Event.kind) with
  | Read ->
      t.read_accesses <- t.read_accesses + 1;
      if miss then t.read_misses <- t.read_misses + 1
  | Write ->
      t.write_accesses <- t.write_accesses + 1;
      if miss then t.write_misses <- t.write_misses + 1);
  match (source : Memsim.Event.source) with
  | App ->
      t.app_accesses <- t.app_accesses + 1;
      if miss then t.app_misses <- t.app_misses + 1
  | Malloc ->
      t.malloc_accesses <- t.malloc_accesses + 1;
      if miss then t.malloc_misses <- t.malloc_misses + 1
  | Free ->
      t.free_accesses <- t.free_accesses + 1;
      if miss then t.free_misses <- t.free_misses + 1

let record_writeback t = t.writebacks <- t.writebacks + 1
let memory_traffic_blocks t = t.misses + t.writebacks

let merge a b =
  { accesses = a.accesses + b.accesses;
    misses = a.misses + b.misses;
    read_accesses = a.read_accesses + b.read_accesses;
    read_misses = a.read_misses + b.read_misses;
    write_accesses = a.write_accesses + b.write_accesses;
    write_misses = a.write_misses + b.write_misses;
    cold_misses = a.cold_misses + b.cold_misses;
    writebacks = a.writebacks + b.writebacks;
    app_accesses = a.app_accesses + b.app_accesses;
    app_misses = a.app_misses + b.app_misses;
    malloc_accesses = a.malloc_accesses + b.malloc_accesses;
    malloc_misses = a.malloc_misses + b.malloc_misses;
    free_accesses = a.free_accesses + b.free_accesses;
    free_misses = a.free_misses + b.free_misses }

let pp ppf t =
  Format.fprintf ppf
    "accesses=%d misses=%d (%.3f%%) cold=%d reads=%d/%d writes=%d/%d"
    t.accesses t.misses (miss_rate_pct t) t.cold_misses t.read_misses
    t.read_accesses t.write_misses t.write_accesses
