type t = { caches : Cache.t array }

let create configs =
  if configs = [] then invalid_arg "Cachesim.Multi.create: no configurations";
  { caches = Array.of_list (List.map Cache.create configs) }

let caches t = Array.to_list t.caches

let sink t =
  Memsim.Sink.of_fn (fun e ->
      for i = 0 to Array.length t.caches - 1 do
        Cache.access t.caches.(i) e
      done)

let results t =
  Array.to_list t.caches
  |> List.map (fun c -> (Cache.config c, Cache.stats c))

let find t ~name =
  match
    Array.find_opt (fun c -> (Cache.config c).Config.name = name) t.caches
  with
  | Some c -> c
  | None -> raise Not_found

let miss_rate_series t =
  results t
  |> List.map (fun (cfg, st) -> (cfg.Config.name, Stats.miss_rate_pct st))
