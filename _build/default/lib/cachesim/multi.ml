(* A set of cache configurations fed from one trace.  Configurations
   are partitioned by block size into {!Forest} families: within a
   family the direct-mapped members cost one inclusion walk per
   reference, set-associative members are probed individually, and the
   access profile and cold-miss table are shared family-wide.
   Per-configuration statistics are bit-identical to simulating every
   configuration independently. *)

type t = {
  slots : (Config.t * (int * int)) array;
      (* creation order; (forest index, member index within it) *)
  forests : Forest.t array;
}

let create configs =
  if configs = [] then invalid_arg "Cachesim.Multi.create: no configurations";
  (* One family per block size, in first-seen order. *)
  let families : (int, Config.t list ref) Hashtbl.t = Hashtbl.create 4 in
  let family_order = ref [] in
  let slots_rev = ref [] in
  List.iter
    (fun (c : Config.t) ->
      let members =
        match Hashtbl.find_opt families c.block_bytes with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add families c.block_bytes r;
            family_order := c.block_bytes :: !family_order;
            r
      in
      members := c :: !members;
      slots_rev := (c, (c.block_bytes, List.length !members - 1)) :: !slots_rev)
    configs;
  let family_order = List.rev !family_order in
  let forests =
    Array.of_list
      (List.map
         (fun bb -> Forest.create (List.rev !(Hashtbl.find families bb)))
         family_order)
  in
  let forest_index =
    let tbl = Hashtbl.create 4 in
    List.iteri (fun i bb -> Hashtbl.add tbl bb i) family_order;
    tbl
  in
  let slots =
    Array.of_list
      (List.rev_map
         (fun (c, (bb, member)) -> (c, (Hashtbl.find forest_index bb, member)))
         !slots_rev)
  in
  { slots; forests }

let access t e =
  for i = 0 to Array.length t.forests - 1 do
    Forest.access t.forests.(i) e
  done

let sink t =
  let forests = t.forests in
  let emit = access t in
  Memsim.Sink.make ~emit
    ~emit_batch:(fun buf len ->
      (* Decode each event's kind/source once, then feed every family. *)
      for i = 0 to len - 1 do
        let e : Memsim.Event.t = Array.unsafe_get buf i in
        let ks = Forest.ks_index ~kind:e.kind ~source:e.source in
        for j = 0 to Array.length forests - 1 do
          Forest.access_range_ks
            (Array.unsafe_get forests j)
            ~ks ~addr:e.addr ~size:e.size
        done
      done)

let stats_of t (f, m) = Forest.member_stats t.forests.(f) m

let results t =
  Array.to_list t.slots |> List.map (fun (c, slot) -> (c, stats_of t slot))

let names t =
  Array.to_list t.slots |> List.map (fun ((c : Config.t), _) -> c.name)

let find t ~name =
  match
    Array.find_opt (fun ((c : Config.t), _) -> c.name = name) t.slots
  with
  | Some (c, slot) -> (c, stats_of t slot)
  | None ->
      invalid_arg
        (Printf.sprintf "Cachesim.Multi.find: unknown cache %S (known: %s)"
           name
           (String.concat ", " (names t)))

let miss_rate_series t =
  results t
  |> List.map (fun (cfg, st) -> (cfg.Config.name, Stats.miss_rate_pct st))
