(** Aligned text tables, used to print every reproduced paper table in a
    stable, diff-friendly layout. *)

type align =
  | Left
  | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the cell count mismatches. *)

val add_separator : t -> unit

val render : t -> string
(** Boxed text rendering, title first. *)

val to_csv : t -> string
(** Title-less CSV (header + rows; separators skipped). *)

val print : t -> unit
(** [render] to stdout. *)

(** {1 Cell formatting helpers} *)

val fmt_int : int -> string
(** Thousands-separated, e.g. [1_234_567] -> ["1,234,567"]. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct 0.123] is ["12.3%"] with default decimals 1. *)

val fmt_kb : int -> string
(** Bytes -> KB with no decimals, e.g. ["396 KB"]. *)
