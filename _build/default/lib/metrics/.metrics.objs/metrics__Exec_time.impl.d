lib/metrics/exec_time.ml: Cost_model
