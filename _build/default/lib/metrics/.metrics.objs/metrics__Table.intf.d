lib/metrics/table.mli:
