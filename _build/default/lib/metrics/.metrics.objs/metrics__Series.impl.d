lib/metrics/series.ml: Array Buffer List Printf String
