lib/metrics/exec_time.mli: Cost_model
