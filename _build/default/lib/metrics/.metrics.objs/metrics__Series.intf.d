lib/metrics/series.mli:
