lib/metrics/cost_model.ml:
