lib/metrics/table.ml: Buffer List Printf String
