type t = { miss_penalty_cycles : int; clock_mhz : float }

let paper = { miss_penalty_cycles = 25; clock_mhz = 20. }
let with_penalty t p = { t with miss_penalty_cycles = p }
let future = { paper with miss_penalty_cycles = 100 }

let seconds_of_cycles t cycles =
  float_of_int cycles /. (t.clock_mhz *. 1_000_000.)
