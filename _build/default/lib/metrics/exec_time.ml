type t = {
  instructions : int;
  data_refs : int;
  misses : int;
  model : Cost_model.t;
}

let make ~model ~instructions ~data_refs ~misses =
  assert (instructions >= 0 && data_refs >= 0 && misses >= 0);
  { instructions; data_refs; misses; model }

let of_miss_rate ~model ~instructions ~data_refs ~miss_rate =
  assert (miss_rate >= 0. && miss_rate <= 1.);
  make ~model ~instructions ~data_refs
    ~misses:(int_of_float (miss_rate *. float_of_int data_refs))

let miss_cycles t = t.misses * t.model.Cost_model.miss_penalty_cycles
let total_cycles t = t.instructions + miss_cycles t
let total_seconds t = Cost_model.seconds_of_cycles t.model (total_cycles t)
let miss_seconds t = Cost_model.seconds_of_cycles t.model (miss_cycles t)

let miss_fraction t =
  let total = total_cycles t in
  if total = 0 then 0. else float_of_int (miss_cycles t) /. float_of_int total

let normalized_to t ~baseline =
  float_of_int (total_cycles t) /. float_of_int (total_cycles baseline)

let cpu_normalized_to t ~baseline =
  float_of_int t.instructions /. float_of_int baseline.instructions
