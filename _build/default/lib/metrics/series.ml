type t = {
  title : string;
  x_label : string;
  y_label : string;
  mutable series_rev : (string * (float * float) list) list;
}

let create ~title ~x_label ~y_label =
  { title; x_label; y_label; series_rev = [] }

let add t ~name points = t.series_rev <- (name, points) :: t.series_rev

let render_columns t buf =
  let series = List.rev t.series_rev in
  (* Collect the union of x values, sorted. *)
  let xs =
    List.concat_map (fun (_, pts) -> List.map fst pts) series
    |> List.sort_uniq compare
  in
  let cell name x =
    match List.assoc_opt x (List.assoc name series) with
    | Some y -> Printf.sprintf "%.4g" y
    | None -> "-"
  in
  let names = List.map fst series in
  let headers = t.x_label :: names in
  let rows =
    List.map
      (fun x -> Printf.sprintf "%.4g" x :: List.map (fun n -> cell n x) names)
      xs
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let pad w s =
    let n = w - String.length s in
    if n <= 0 then s else String.make n ' ' ^ s
  in
  Buffer.add_string buf
    (String.concat "  " (List.map2 pad widths headers));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "  " (List.map2 pad widths row));
      Buffer.add_char buf '\n')
    rows

(* A deliberately simple ASCII chart: one row per series per x bucket is
   overkill, so instead plot y of each series across x positions using a
   fixed-height grid. *)
let render_plot t buf =
  let series = List.rev t.series_rev in
  if series <> [] then begin
    let xs =
      List.concat_map (fun (_, pts) -> List.map fst pts) series
      |> List.sort_uniq compare
    in
    let ys = List.concat_map (fun (_, pts) -> List.map snd pts) series in
    let ymax = List.fold_left max neg_infinity ys in
    let positive = List.filter (fun y -> y > 0.) ys in
    let ymin_pos = List.fold_left min infinity positive in
    if ymax > 0. && xs <> [] then begin
      (* Use log scale when the spread is large (page-fault curves). *)
      let log_scale = ymax /. (max ymin_pos 1e-30) > 100. in
      let height = 12 in
      let scale y =
        if y <= 0. then -1
        else if log_scale then
          let lo = log ymin_pos and hi = log ymax in
          if hi -. lo < 1e-9 then height - 1
          else
            int_of_float
              ((log y -. lo) /. (hi -. lo) *. float_of_int (height - 1))
        else int_of_float (y /. ymax *. float_of_int (height - 1))
      in
      let cols = List.length xs in
      let grid = Array.make_matrix height (cols * 3) ' ' in
      let marks = "ox+*#@%&" in
      List.iteri
        (fun si (_, pts) ->
          let mark = marks.[si mod String.length marks] in
          List.iteri
            (fun ci x ->
              match List.assoc_opt x pts with
              | Some y ->
                  let r = scale y in
                  if r >= 0 && r < height then
                    grid.(height - 1 - r).(ci * 3) <- mark
              | None -> ())
            xs)
        series;
      Buffer.add_string buf
        (Printf.sprintf "\n%s vs %s%s\n" t.y_label t.x_label
           (if log_scale then " (log scale)" else ""));
      Array.iter
        (fun row ->
          Buffer.add_string buf "  |";
          Buffer.add_string buf (String.init (Array.length row) (Array.get row));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf "  +";
      Buffer.add_string buf (String.make (cols * 3) '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf "   legend:";
      List.iteri
        (fun si (name, _) ->
          Buffer.add_string buf
            (Printf.sprintf " %c=%s" marks.[si mod String.length marks] name))
        series;
      Buffer.add_char buf '\n'
    end
  end

let render ?(plot = true) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length t.title) '-');
  Buffer.add_char buf '\n';
  render_columns t buf;
  if plot then render_plot t buf;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "series,x,y\n";
  List.iter
    (fun (name, pts) ->
      List.iter
        (fun (x, y) ->
          Buffer.add_string buf (Printf.sprintf "%s,%g,%g\n" name x y))
        pts)
    (List.rev t.series_rev);
  Buffer.contents buf

let print ?plot t = print_string (render ?plot t)
