(** Figure data series: named (x, y) sequences rendered as aligned
    columns plus a coarse ASCII plot, so every reproduced figure is
    readable directly in a terminal or a log file. *)

type t

val create : title:string -> x_label:string -> y_label:string -> t

val add : t -> name:string -> (float * float) list -> unit
(** Adds one named series (e.g. one allocator's curve). *)

val render : ?plot:bool -> t -> string
(** Column listing of every series; with [plot] (default true) an ASCII
    chart is appended (log-ish scaling chosen automatically when the
    value range is wide). *)

val to_csv : t -> string
(** Long-format CSV: series,x,y. *)

val print : ?plot:bool -> t -> unit
