(** Machine cost parameters of the paper's execution-time model.

    "If an application executed I instructions with D data references, a
    data cache miss rate of M and a miss penalty of P, we estimated the
    total execution time to be I + (M x P)D.  We assume all
    instructions, including loads and stores, complete in a single
    machine cycle." *)

type t = {
  miss_penalty_cycles : int;  (** P; the paper uses 25. *)
  clock_mhz : float;
      (** Cycles -> seconds, to echo the paper's tables (DECstation
          5000/120-class machine: 20 MHz). *)
}

val paper : t
(** 25-cycle penalty, 20 MHz clock. *)

val with_penalty : t -> int -> t

val future : t
(** The high-penalty scenario discussed in §1.1/§4.4 (100 cycles). *)

val seconds_of_cycles : t -> int -> float
