type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows_rev : row list;
}

let create ~title ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { title; columns; rows_rev = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns"
         (List.length cells) (List.length t.columns));
  t.rows_rev <- Cells cells :: t.rows_rev

let add_separator t = t.rows_rev <- Separator :: t.rows_rev

let render t =
  let rows = List.rev t.rows_rev in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row ->
            match row with
            | Cells cells -> max w (String.length (List.nth cells i))
            | Separator -> w)
          (String.length h) rows)
      headers
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  let line c =
    List.iter (fun w -> Buffer.add_string buf (String.make (w + 2) c)) widths;
    Buffer.add_char buf '\n'
  in
  line '-';
  List.iteri
    (fun i h ->
      let w = List.nth widths i in
      Buffer.add_string buf (pad Left w h);
      Buffer.add_string buf "  ")
    headers;
  Buffer.add_char buf '\n';
  line '-';
  List.iter
    (fun row ->
      match row with
      | Separator -> line '-'
      | Cells cells ->
          List.iteri
            (fun i c ->
              let w = List.nth widths i in
              let _, align = List.nth t.columns i in
              Buffer.add_string buf (pad align w c);
              Buffer.add_string buf "  ")
            cells;
          Buffer.add_char buf '\n')
    rows;
  line '-';
  Buffer.contents buf

let to_csv t =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (String.concat "," (List.map (fun (h, _) -> quote h) t.columns));
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          Buffer.add_string buf (String.concat "," (List.map quote cells));
          Buffer.add_char buf '\n')
    (List.rev t.rows_rev);
  Buffer.contents buf

let print t = print_string (render t)

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + 4) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let fmt_pct ?(decimals = 1) f = Printf.sprintf "%.*f%%" decimals (100. *. f)
let fmt_kb bytes = Printf.sprintf "%d KB" ((bytes + 1023) / 1024)
