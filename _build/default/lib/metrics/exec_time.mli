(** The paper's estimated-execution-time model: [I + (M x P) x D]. *)

type t = {
  instructions : int;  (** I *)
  data_refs : int;  (** D *)
  misses : int;  (** M x D, the absolute miss count. *)
  model : Cost_model.t;
}

val make :
  model:Cost_model.t -> instructions:int -> data_refs:int -> misses:int -> t

val of_miss_rate :
  model:Cost_model.t ->
  instructions:int ->
  data_refs:int ->
  miss_rate:float ->
  t
(** [miss_rate] in [0, 1]. *)

val miss_cycles : t -> int
(** (M x P) x D. *)

val total_cycles : t -> int
(** I + miss cycles. *)

val total_seconds : t -> float
val miss_seconds : t -> float

val miss_fraction : t -> float
(** Share of total execution time spent waiting on misses. *)

val normalized_to : t -> baseline:t -> float
(** Total cycles relative to a baseline run (Figures 4 and 5). *)

val cpu_normalized_to : t -> baseline:t -> float
(** Instruction count relative to a baseline (the shaded bars of
    Figures 4 and 5, which ignore the memory hierarchy). *)
