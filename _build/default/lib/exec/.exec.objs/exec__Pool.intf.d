lib/exec/pool.mli:
