lib/exec/pool.ml: Array Condition Domain Fun List Mutex Printexc Queue String Sys
