type t = int

let word_bytes = 4
let null = 0
let is_null a = a = null

let is_aligned a ~alignment =
  assert (alignment > 0);
  a mod alignment = 0

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let align_up a ~alignment =
  assert (is_power_of_two alignment);
  (a + alignment - 1) land lnot (alignment - 1)

let align_down a ~alignment =
  assert (is_power_of_two alignment);
  a land lnot (alignment - 1)

let word_aligned a = a land (word_bytes - 1) = 0
let word_index a = a lsr 2

let block_index a ~block_bytes =
  assert (is_power_of_two block_bytes);
  a / block_bytes

let page_index a ~page_bytes =
  assert (page_bytes > 0);
  a / page_bytes

let pp ppf a = Format.fprintf ppf "0x%08x" a
