(** Byte addresses in the simulated address space.

    The simulator models a 32-bit-style flat address space: addresses are
    plain non-negative [int]s measured in bytes, and the machine word is
    four bytes wide (matching the MIPS DECstation used in the paper).  All
    allocator metadata lives at word granularity. *)

type t = int
(** A byte address. *)

val word_bytes : int
(** Size of a machine word in bytes (4). *)

val null : t
(** The distinguished null address (0).  No valid object or metadata cell
    is ever placed at [null]. *)

val is_null : t -> bool
(** [is_null a] is [a = null]. *)

val is_aligned : t -> alignment:int -> bool
(** [is_aligned a ~alignment] holds when [a] is a multiple of
    [alignment].  [alignment] must be positive. *)

val align_up : t -> alignment:int -> t
(** [align_up a ~alignment] rounds [a] up to the next multiple of
    [alignment].  [alignment] must be a positive power of two. *)

val align_down : t -> alignment:int -> t
(** [align_down a ~alignment] rounds [a] down to a multiple of
    [alignment].  [alignment] must be a positive power of two. *)

val word_aligned : t -> bool
(** [word_aligned a] holds when [a] is word-aligned. *)

val word_index : t -> int
(** [word_index a] is the index of the word containing byte [a]. *)

val block_index : t -> block_bytes:int -> int
(** [block_index a ~block_bytes] is the index of the cache block (of
    [block_bytes] bytes, a power of two) containing byte [a]. *)

val page_index : t -> page_bytes:int -> int
(** [page_index a ~page_bytes] is the index of the virtual-memory page
    containing byte [a]. *)

val pp : Format.formatter -> t -> unit
(** Prints an address in hexadecimal, e.g. [0x0001a3f0]. *)
