(** Memory-reference events.

    A trace is a sequence of events, each describing one data reference:
    a read or write of [size] bytes starting at byte address [addr].  The
    [source] records who issued the reference — the application proper, or
    the allocator while servicing [malloc]/[free] — so downstream
    consumers can attribute cache misses the way the paper does (direct
    allocator misses vs. indirect placement effects). *)

type kind =
  | Read
  | Write

type source =
  | App  (** Reference issued by application code. *)
  | Malloc  (** Reference issued inside the allocator's [malloc]. *)
  | Free  (** Reference issued inside the allocator's [free]. *)

type t = {
  kind : kind;
  source : source;
  addr : Addr.t;
  size : int;  (** Number of bytes referenced; at least 1. *)
}

val read : ?source:source -> Addr.t -> int -> t
(** [read addr size] is a read event.  [source] defaults to [App]. *)

val write : ?source:source -> Addr.t -> int -> t
(** [write addr size] is a write event.  [source] defaults to [App]. *)

val kind_to_string : kind -> string
val source_to_string : source -> string

val pp : Format.formatter -> t -> unit
(** Prints an event as e.g. [R app 0x00001000+4]. *)
