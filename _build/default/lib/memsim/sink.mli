(** Trace consumers.

    A sink receives every reference event of a simulation run.  Sinks are
    composable: [fanout] broadcasts one trace to several consumers (e.g. a
    family of cache simulators plus the page-fault simulator plus raw
    counters), exactly as the paper drives TYCHO and VMSIM from one
    execution-driven trace. *)

type t = { emit : Event.t -> unit }

val null : t
(** Discards every event. *)

val of_fn : (Event.t -> unit) -> t
(** Wraps a plain function. *)

val fanout : t list -> t
(** [fanout sinks] forwards each event to every sink, in order. *)

val filter : (Event.t -> bool) -> t -> t
(** [filter pred sink] forwards only events satisfying [pred]. *)

(** Running totals of a trace: how many references, reads, writes, bytes,
    broken down by source.  This supplies the [D] term of the paper's
    execution-time model. *)
module Counter : sig
  type counter

  val create : unit -> counter
  val sink : counter -> t

  val total : counter -> int
  (** Number of reference events observed. *)

  val reads : counter -> int
  val writes : counter -> int
  val bytes : counter -> int

  val by_source : counter -> Event.source -> int
  (** Events attributed to the given source. *)

  val reset : counter -> unit
end

(** Bounded in-memory recording of a trace, useful in tests and for
    inspecting short runs. *)
module Recorder : sig
  type recorder

  val create : ?capacity:int -> unit -> recorder
  (** [capacity] bounds how many events are retained (default 65536);
      later events are dropped but still counted. *)

  val sink : recorder -> t

  val events : recorder -> Event.t list
  (** Recorded events in emission order. *)

  val dropped : recorder -> int
  (** Number of events that arrived after capacity was reached. *)
end
