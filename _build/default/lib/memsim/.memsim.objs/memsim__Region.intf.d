lib/memsim/region.mli: Addr
