lib/memsim/trace_file.mli: Sink
