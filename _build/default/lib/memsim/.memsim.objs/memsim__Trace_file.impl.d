lib/memsim/trace_file.ml: Event Fun Printf Sink String
