lib/memsim/event.ml: Addr Format
