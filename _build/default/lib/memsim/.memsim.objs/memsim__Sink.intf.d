lib/memsim/sink.mli: Event
