lib/memsim/sim_memory.mli: Addr Event Sink
