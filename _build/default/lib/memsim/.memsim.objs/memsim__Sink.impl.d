lib/memsim/sink.ml: Array Event List
