lib/memsim/region.ml: Addr List Printf
