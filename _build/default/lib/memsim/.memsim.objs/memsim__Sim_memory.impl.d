lib/memsim/sim_memory.ml: Addr Event Fun Hashtbl Printf Sink
