lib/memsim/sim_memory.ml: Addr Array Bytes Event Fun Printf Sink
