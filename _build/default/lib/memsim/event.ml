type kind = Read | Write
type source = App | Malloc | Free
type t = { kind : kind; source : source; addr : Addr.t; size : int }

let read ?(source = App) addr size =
  assert (size >= 1);
  { kind = Read; source; addr; size }

let write ?(source = App) addr size =
  assert (size >= 1);
  { kind = Write; source; addr; size }

let kind_to_string = function Read -> "R" | Write -> "W"

let source_to_string = function
  | App -> "app"
  | Malloc -> "malloc"
  | Free -> "free"

let pp ppf t =
  Format.fprintf ppf "%s %s %a+%d" (kind_to_string t.kind)
    (source_to_string t.source) Addr.pp t.addr t.size
