(** Compact binary trace files.

    The paper's simulators consumed traces directly from the
    instrumented program "without storing large trace files"; this
    module provides the complementary mode — persist a reference trace
    once, replay it into any set of sinks later — so expensive workload
    runs can be re-simulated repeatedly under new cache/memory
    configurations.

    Encoding: a magic header, then one flags byte per event (kind,
    source, small sizes inline) followed by the zigzag-LEB128 delta of
    the address from the previous event.  Address locality makes
    typical traces ~2–3 bytes per reference. *)

val magic : string
(** File header ("LOCLAB1\n"). *)

val record_to_file : string -> (Sink.t -> 'a) -> 'a
(** [record_to_file path f] runs [f] with a sink that appends every
    event it receives to [path], closing the file afterwards (also on
    exceptions). *)

val replay : in_channel -> Sink.t -> int
(** Streams a recorded trace into a sink; returns the number of events.
    @raise Failure on a corrupt or foreign file. *)

val replay_file : string -> Sink.t -> int
