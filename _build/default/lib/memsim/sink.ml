type t = { emit : Event.t -> unit }

let null = { emit = ignore }
let of_fn f = { emit = f }

let fanout sinks =
  match sinks with
  | [] -> null
  | [ s ] -> s
  | [ a; b ] ->
      { emit =
          (fun e ->
            a.emit e;
            b.emit e);
      }
  | sinks ->
      let arr = Array.of_list sinks in
      { emit =
          (fun e ->
            for i = 0 to Array.length arr - 1 do
              arr.(i).emit e
            done);
      }

let filter pred sink = { emit = (fun e -> if pred e then sink.emit e) }

module Counter = struct
  type counter = {
    mutable total : int;
    mutable reads : int;
    mutable writes : int;
    mutable bytes : int;
    mutable app : int;
    mutable malloc : int;
    mutable free : int;
  }

  let create () =
    { total = 0; reads = 0; writes = 0; bytes = 0; app = 0; malloc = 0;
      free = 0 }

  let sink c =
    { emit =
        (fun (e : Event.t) ->
          c.total <- c.total + 1;
          c.bytes <- c.bytes + e.size;
          (match e.kind with
          | Read -> c.reads <- c.reads + 1
          | Write -> c.writes <- c.writes + 1);
          match e.source with
          | App -> c.app <- c.app + 1
          | Malloc -> c.malloc <- c.malloc + 1
          | Free -> c.free <- c.free + 1);
    }

  let total c = c.total
  let reads c = c.reads
  let writes c = c.writes
  let bytes c = c.bytes

  let by_source c = function
    | Event.App -> c.app
    | Event.Malloc -> c.malloc
    | Event.Free -> c.free

  let reset c =
    c.total <- 0;
    c.reads <- 0;
    c.writes <- 0;
    c.bytes <- 0;
    c.app <- 0;
    c.malloc <- 0;
    c.free <- 0
end

module Recorder = struct
  type recorder = {
    capacity : int;
    mutable events_rev : Event.t list;
    mutable count : int;
  }

  let create ?(capacity = 65536) () =
    assert (capacity >= 0);
    { capacity; events_rev = []; count = 0 }

  let sink r =
    { emit =
        (fun e ->
          if r.count < r.capacity then r.events_rev <- e :: r.events_rev;
          r.count <- r.count + 1);
    }

  let events r = List.rev r.events_rev
  let dropped r = max 0 (r.count - r.capacity)
end
