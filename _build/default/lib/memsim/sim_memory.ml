(* The backing store is a dense array indexed by word index: simulated
   addresses start at a small fixed layout base and metadata stores
   cluster in the static+heap regions, so the footprint stays
   proportional to the highest address actually stored to — and a
   store/load is an array access instead of a hashtable probe on the
   allocators' hot path.  [touched] marks words ever stored, preserving
   the distinct-word count (reads of untouched words are 0 either
   way). *)
type t = {
  mutable words : int array;
  mutable touched : Bytes.t;
  mutable written : int;  (* distinct words ever stored *)
  mutable sink : Sink.t;
  mutable source : Event.source;
}

let create ?(sink = Sink.null) () =
  { words = Array.make 4096 0;
    touched = Bytes.make 4096 '\000';
    written = 0;
    sink;
    source = Event.App }

(* Grow (by doubling) until word index [i] is in range. *)
let ensure t i =
  let n = Array.length t.words in
  if i >= n then begin
    let n' =
      let rec go n' = if i < n' then n' else go (2 * n') in
      go (2 * n)
    in
    let words = Array.make n' 0 in
    Array.blit t.words 0 words 0 n;
    let touched = Bytes.make n' '\000' in
    Bytes.blit t.touched 0 touched 0 n;
    t.words <- words;
    t.touched <- touched
  end

let set_sink t sink = t.sink <- sink
let source t = t.source
let set_source t src = t.source <- src

let with_source t src f =
  let saved = t.source in
  t.source <- src;
  Fun.protect ~finally:(fun () -> t.source <- saved) f

let check_word_addr a =
  if not (Addr.word_aligned a) then
    invalid_arg (Printf.sprintf "Sim_memory: unaligned word access at 0x%x" a);
  if a <= 0 then
    invalid_arg (Printf.sprintf "Sim_memory: access to null/negative 0x%x" a)

let set_word t i v =
  ensure t i;
  Array.unsafe_set t.words i v;
  if Bytes.unsafe_get t.touched i = '\000' then begin
    Bytes.unsafe_set t.touched i '\001';
    t.written <- t.written + 1
  end

let get_word t i = if i < Array.length t.words then Array.unsafe_get t.words i else 0

let load t a =
  check_word_addr a;
  t.sink.emit { kind = Read; source = t.source; addr = a; size = Addr.word_bytes };
  get_word t (Addr.word_index a)

let store t a v =
  check_word_addr a;
  t.sink.emit { kind = Write; source = t.source; addr = a; size = Addr.word_bytes };
  set_word t (Addr.word_index a) v

let ranged t kind a n =
  assert (n >= 0);
  if n > 0 then begin
    (* Word-grain events, as PIXIE traces are: first piece may be a
       partial word, then whole words. *)
    let w = Addr.word_bytes in
    let first = min n (w - (a land (w - 1))) in
    t.sink.emit { Event.kind; source = t.source; addr = a; size = first };
    let pos = ref (a + first) in
    let remaining = ref (n - first) in
    while !remaining > 0 do
      let piece = min w !remaining in
      t.sink.emit { Event.kind; source = t.source; addr = !pos; size = piece };
      pos := !pos + piece;
      remaining := !remaining - piece
    done
  end

let read_bytes t a n = ranged t Event.Read a n
let write_bytes t a n = ranged t Event.Write a n

let peek t a =
  check_word_addr a;
  get_word t (Addr.word_index a)

let poke t a v =
  check_word_addr a;
  set_word t (Addr.word_index a) v

let words_written t = t.written
