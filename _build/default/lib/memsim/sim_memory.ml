type t = {
  words : (int, int) Hashtbl.t;
  mutable sink : Sink.t;
  mutable source : Event.source;
}

let create ?(sink = Sink.null) () =
  { words = Hashtbl.create 4096; sink; source = Event.App }

let set_sink t sink = t.sink <- sink
let source t = t.source
let set_source t src = t.source <- src

let with_source t src f =
  let saved = t.source in
  t.source <- src;
  Fun.protect ~finally:(fun () -> t.source <- saved) f

let check_word_addr a =
  if not (Addr.word_aligned a) then
    invalid_arg (Printf.sprintf "Sim_memory: unaligned word access at 0x%x" a);
  if a <= 0 then
    invalid_arg (Printf.sprintf "Sim_memory: access to null/negative 0x%x" a)

let load t a =
  check_word_addr a;
  t.sink.emit { kind = Read; source = t.source; addr = a; size = Addr.word_bytes };
  match Hashtbl.find_opt t.words (Addr.word_index a) with
  | Some v -> v
  | None -> 0

let store t a v =
  check_word_addr a;
  t.sink.emit { kind = Write; source = t.source; addr = a; size = Addr.word_bytes };
  Hashtbl.replace t.words (Addr.word_index a) v

let ranged t kind a n =
  assert (n >= 0);
  if n > 0 then begin
    (* Word-grain events, as PIXIE traces are: first piece may be a
       partial word, then whole words. *)
    let w = Addr.word_bytes in
    let first = min n (w - (a land (w - 1))) in
    t.sink.emit { Event.kind; source = t.source; addr = a; size = first };
    let pos = ref (a + first) in
    let remaining = ref (n - first) in
    while !remaining > 0 do
      let piece = min w !remaining in
      t.sink.emit { Event.kind; source = t.source; addr = !pos; size = piece };
      pos := !pos + piece;
      remaining := !remaining - piece
    done
  end

let read_bytes t a n = ranged t Event.Read a n
let write_bytes t a n = ranged t Event.Write a n

let peek t a =
  check_word_addr a;
  match Hashtbl.find_opt t.words (Addr.word_index a) with
  | Some v -> v
  | None -> 0

let poke t a v =
  check_word_addr a;
  Hashtbl.replace t.words (Addr.word_index a) v

let words_written t = Hashtbl.length t.words
