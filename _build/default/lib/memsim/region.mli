(** An sbrk-style linear region of the simulated address space.

    Each region hands out addresses monotonically from its base, like the
    Unix program break the paper's allocators extend.  Regions never
    overlap when created through {!Layout}. *)

type t

val create : base:Addr.t -> limit:Addr.t -> t
(** [create ~base ~limit] is an empty region spanning
    [\[base, limit)].  [base] must be word-aligned and positive (address 0
    is reserved as null). *)

val base : t -> Addr.t
val limit : t -> Addr.t

val break : t -> Addr.t
(** Current program break: one past the highest byte handed out. *)

val used_bytes : t -> int
(** [break t - base t]. *)

val extend : t -> int -> Addr.t
(** [extend t n] advances the break by [n] bytes (word-aligned up) and
    returns the old break, i.e. the base of the fresh storage.

    @raise Failure if the region would exceed its limit. *)

val contains : t -> Addr.t -> bool
(** [contains t a] holds when [base t <= a < break t]. *)

(** Carves a large address space into non-overlapping regions, so that
    simulated static data, allocator metadata and heap occupy distinct,
    realistic address ranges (their cache blocks can still conflict, which
    is the point). *)
module Layout : sig
  type layout

  val create : ?base:Addr.t -> unit -> layout
  (** A fresh layout starting at [base] (default 0x0001_0000). *)

  val add : layout -> name:string -> size:int -> t
  (** [add l ~name ~size] reserves [size] bytes (page-aligned) for a new
      region and returns it.  Regions are laid out consecutively with a
      guard page between them. *)

  val regions : layout -> (string * t) list
  (** All regions added so far, in order of creation. *)
end
