type t = { base : Addr.t; limit : Addr.t; mutable break : Addr.t }

let create ~base ~limit =
  assert (base > 0);
  assert (Addr.word_aligned base);
  assert (limit > base);
  { base; limit; break = base }

let base t = t.base
let limit t = t.limit
let break t = t.break
let used_bytes t = t.break - t.base

let extend t n =
  assert (n >= 0);
  let n = Addr.align_up n ~alignment:Addr.word_bytes in
  if t.break + n > t.limit then
    failwith
      (Printf.sprintf "Region.extend: out of space (break=0x%x, need %d, limit=0x%x)"
         t.break n t.limit)
  else begin
    let old = t.break in
    t.break <- t.break + n;
    old
  end

let contains t a = a >= t.base && a < t.break

module Layout = struct
  let region_create = create
  let page = 4096

  type layout = {
    mutable next : Addr.t;
    mutable regions_rev : (string * t) list;
  }

  let create ?(base = 0x0001_0000) () =
    assert (base > 0);
    { next = Addr.align_up base ~alignment:page; regions_rev = [] }

  let add l ~name ~size =
    assert (size > 0);
    let size = Addr.align_up size ~alignment:page in
    let base = l.next in
    let region = region_create ~base ~limit:(base + size) in
    (* Guard page keeps regions from abutting, so out-of-bounds metadata
       accesses in a buggy allocator are detectable in tests. *)
    l.next <- base + size + page;
    l.regions_rev <- (name, region) :: l.regions_rev;
    region

  let regions l = List.rev l.regions_rev
end
