(** Discrete distributions over integer values, sampled by cumulative
    binary search. *)

type t

val create : (int * float) list -> t
(** [(value, weight)] pairs; weights must be positive and the list
    non-empty.  Values need not be distinct (weights add). *)

val sample : t -> Rng.t -> int

val mean : t -> float

val support : t -> int list
(** Distinct values, ascending. *)

val weight_of : t -> int -> float
(** Normalised probability of a value (0 if absent). *)

val to_histogram : t -> scale:int -> (int * int) list
(** Integer histogram with total count ~[scale], for feeding
    {!Allocators.Size_map.design}. *)
