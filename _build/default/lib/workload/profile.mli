(** Synthetic application profiles.

    We cannot run the paper's five C programs (espresso, GhostScript,
    ptc, gawk, make), so each is modelled by a profile replaying its
    published allocation behaviour: request-size mix (small-object
    heavy, 24 bytes modal), object lifetimes split into a {e retained}
    stream that grows the heap toward the program's reported maximum and
    a {e mortal} stream of temporaries, plus the reference behaviour
    around the heap (initialisation writes, revisits with temporal
    locality, global-segment traffic and pure compute).

    Scale note: step counts are ~1:50–1:100 of the paper's run lengths,
    but retained-heap targets are kept at the paper's absolute sizes so
    the paging and cache curves live in the same regime. *)

type t = {
  key : string;  (** e.g. ["gs-large"]. *)
  label : string;  (** Paper name, e.g. ["GS-Large"]. *)
  description : string;
  seed : int;  (** Workload PRNG seed (deterministic runs). *)
  steps : int;  (** Workload steps at scale 1.0. *)
  size_dist : Dist.t;  (** Mortal (temporary) allocation request sizes. *)
  retained_size_dist : Dist.t;
      (** Sizes of retained allocations (persistent program data —
          typically larger than temporaries, so retained objects are a
          small minority of allocations, as in the paper's programs
          which free 50–100% of objects). *)
  alloc_every : float;  (** Mean steps between allocations (>= 1). *)
  realloc_prob : float;
      (** Per-step probability of growing one live object with
          [realloc] (buffer doubling, as gawk and GhostScript do). *)
  realloc_cap : int;
      (** Buffers stop doubling at this size (keeps e.g. gawk's heap
          tiny, as measured). *)
  retained_bytes : int;
      (** Live-heap target reached linearly over the run; an allocation
          is drawn from [retained_size_dist] and kept forever while the
          current target is unmet, otherwise it is a temporary. *)
  mortal_lifetime_mean : float;  (** Mean lifetime (steps) of temporaries. *)
  mortal_lifetime_long_frac : float;
      (** Fraction of temporaries drawing a 10x longer lifetime. *)
  refs_per_step : int;  (** Heap object references per step. *)
  recent_bias : float;
      (** Probability a reference picks a recently allocated object
          rather than a uniformly random live one. *)
  write_fraction : float;  (** Fraction of object references that write. *)
  init_touch_bytes : int;  (** Bytes written when an object is born. *)
  touch_bytes : int;  (** Bytes touched per object visit. *)
  compute_per_step : int;  (** Register-only instructions per step. *)
  global_bytes : int;  (** Size of the program's global segment. *)
  global_refs_per_step : int;
  global_hot_fraction : float;
      (** Fraction of global refs hitting the first 1/16 of the
          segment. *)
  site_count : int;
      (** Number of distinct allocation sites the program allocates
          from (>= 2).  Sites carry lifetime signal, as Barrett & Zorn
          measured: some sites allocate temporaries, others persistent
          data. *)
  site_noise : float;
      (** Probability an allocation's site contradicts its lifetime
          class — the irreducible misprediction rate. *)
}

val scaled_steps : t -> scale:float -> int
(** [steps * scale], at least 100. *)

val validate : t -> unit
(** @raise Invalid_argument when a field is out of range. *)
