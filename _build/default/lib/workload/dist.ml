type t = {
  values : int array;
  cumulative : float array;  (* ascending, last = 1.0 *)
  probs : (int * float) list;  (* merged, normalised *)
}

let create pairs =
  if pairs = [] then invalid_arg "Dist.create: empty distribution";
  List.iter
    (fun (_, w) ->
      if w <= 0. then invalid_arg "Dist.create: weights must be positive")
    pairs;
  let merged = Hashtbl.create 16 in
  List.iter
    (fun (v, w) ->
      Hashtbl.replace merged v
        (w +. Option.value ~default:0. (Hashtbl.find_opt merged v)))
    pairs;
  let items =
    Hashtbl.fold (fun v w acc -> (v, w) :: acc) merged []
    |> List.sort compare
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. items in
  let values = Array.of_list (List.map fst items) in
  let cumulative = Array.make (Array.length values) 0. in
  let acc = ref 0. in
  List.iteri
    (fun i (_, w) ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc)
    items;
  cumulative.(Array.length cumulative - 1) <- 1.0;
  { values; cumulative; probs = List.map (fun (v, w) -> (v, w /. total)) items }

let sample t rng =
  let u = Rng.float rng in
  (* Smallest index with cumulative >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  t.values.(!lo)

let mean t =
  List.fold_left (fun acc (v, p) -> acc +. (float_of_int v *. p)) 0. t.probs

let support t = Array.to_list t.values
let weight_of t v = Option.value ~default:0. (List.assoc_opt v t.probs)

let to_histogram t ~scale =
  List.map
    (fun (v, p) -> (v, max 1 (int_of_float (p *. float_of_int scale))))
    t.probs
