type t = {
  key : string;
  label : string;
  description : string;
  seed : int;
  steps : int;
  size_dist : Dist.t;
  retained_size_dist : Dist.t;
  alloc_every : float;
  realloc_prob : float;
  realloc_cap : int;
  retained_bytes : int;
  mortal_lifetime_mean : float;
  mortal_lifetime_long_frac : float;
  refs_per_step : int;
  recent_bias : float;
  write_fraction : float;
  init_touch_bytes : int;
  touch_bytes : int;
  compute_per_step : int;
  global_bytes : int;
  global_refs_per_step : int;
  global_hot_fraction : float;
  site_count : int;
  site_noise : float;
}

let scaled_steps t ~scale =
  max 100 (int_of_float (float_of_int t.steps *. scale))

let validate t =
  let fail msg = invalid_arg (Printf.sprintf "Profile %s: %s" t.key msg) in
  if t.steps < 100 then fail "too few steps";
  if t.alloc_every < 1. then fail "alloc_every must be >= 1";
  if t.realloc_prob < 0. || t.realloc_prob > 1. then fail "realloc_prob range";
  if t.realloc_cap < 8 then fail "realloc_cap too small";
  if t.retained_bytes < 0 then fail "negative retained_bytes";
  if t.mortal_lifetime_mean <= 0. then fail "non-positive lifetime";
  if t.mortal_lifetime_long_frac < 0. || t.mortal_lifetime_long_frac > 1. then
    fail "long_frac out of range";
  if t.refs_per_step < 0 then fail "negative refs_per_step";
  if t.recent_bias < 0. || t.recent_bias > 1. then fail "recent_bias range";
  if t.write_fraction < 0. || t.write_fraction > 1. then
    fail "write_fraction range";
  if t.init_touch_bytes < 0 || t.touch_bytes < 0 then fail "negative touch";
  if t.compute_per_step < 0 then fail "negative compute";
  if t.global_bytes < 4096 then fail "global segment too small";
  if t.global_refs_per_step < 0 then fail "negative global refs";
  if t.global_hot_fraction < 0. || t.global_hot_fraction > 1. then
    fail "hot fraction range";
  if t.site_count < 2 then fail "need at least two sites";
  if t.site_noise < 0. || t.site_noise > 1. then fail "site_noise range"
