(** The test programs of the paper's Tables 1–3, as synthetic profiles.

    Targets taken from Table 2 (at a churn scale of roughly 1:50, with
    retained-heap sizes kept absolute):

    {v
    Program   objects (paper)  max heap   freed      character
    ESPRESSO  1673K            396 KB     ~100%      logic optimizer, hot small cubes
    GS-*      109/567/924K     1-4 MB     ~97%       PostScript interpreter, buffers
    PTC       103K             3146 KB    0%         Pascal-to-C, permanent AST
    GAWK      1704K            60 KB      ~100%      tiny heap, furious turnover
    MAKE      24K              380 KB     54%        few allocations
    v} *)

val espresso : Profile.t
val gs_small : Profile.t
val gs_medium : Profile.t
val gs_large : Profile.t
val ptc : Profile.t
val gawk : Profile.t
val make_prog : Profile.t

val five : Profile.t list
(** The five-figure suite: espresso, gs-large, ptc, gawk, make. *)

val gs_inputs : Profile.t list
(** GS with its three input sets (Table 3 / Figures 6–8). *)

val all : Profile.t list
val find : string -> Profile.t
(** @raise Not_found for unknown keys. *)

val keys : unit -> string list
