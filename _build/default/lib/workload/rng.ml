(* SplitMix64: tiny, fast, and plenty good for workload synthesis. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound >= 1);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992. (* 2^53 *)

let bool t p = float t < p

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else begin
    let u = float t in
    (* Inverse transform; cap to keep pathological draws finite. *)
    let v = log1p (-.u) /. log1p (-.p) in
    min 1_000_000 (int_of_float v)
  end

let exponential t ~mean =
  assert (mean > 0.);
  let u = float t in
  -.mean *. log1p (-.u)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
