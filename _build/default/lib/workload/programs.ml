(* Size mixes follow the paper's observations: "programs tend to
   allocate many small objects; ...24 bytes was a very common allocation
   request size", with per-program character (GS's device buffers, PTC's
   uniform AST nodes, GAWK's cells). *)

let espresso =
  { Profile.key = "espresso";
    label = "Espresso";
    description = "PLA logic optimizer: hot small cube/cover records";
    seed = 0xE59;
    steps = 60_000;
    size_dist =
      Dist.create
        [ (12, 20.); (16, 18.); (24, 30.); (32, 12.); (40, 6.); (48, 5.);
          (64, 4.); (96, 2.); (128, 1.5); (256, 1.); (512, 0.4); (1024, 0.1) ];
    retained_size_dist =
      Dist.create [ (64, 5.); (256, 5.); (1024, 3.); (4096, 1.) ];
    alloc_every = 1.6;
    realloc_prob = 0.02;
    realloc_cap = 4096;
    retained_bytes = 360_000;
    mortal_lifetime_mean = 160.;
    mortal_lifetime_long_frac = 0.05;
    refs_per_step = 40;
    recent_bias = 0.75;
    write_fraction = 0.35;
    init_touch_bytes = 32;
    touch_bytes = 16;
    compute_per_step = 110;
    global_bytes = 96 * 1024;
    global_refs_per_step = 24;
    global_hot_fraction = 0.8;
    site_count = 40;
    site_noise = 0.08 }

let gs ~key ~label ~steps ~retained ~seed =
  { Profile.key;
    label;
    description = "PostScript interpreter: records plus device buffers";
    seed;
    steps;
    size_dist =
      Dist.create
        [ (16, 22.); (24, 38.); (32, 18.); (48, 8.); (64, 7.); (96, 4.);
          (128, 4.); (256, 3.); (512, 2.); (1024, 1.2); (4096, 0.8);
          (16384, 0.25); (65536, 0.04) ];
    retained_size_dist =
      Dist.create
        [ (512, 3.); (2048, 4.); (8192, 4.); (32768, 2.); (131072, 0.4) ];
    alloc_every = 1.6;
    realloc_prob = 0.03;
    realloc_cap = 65536;
    retained_bytes = retained;
    mortal_lifetime_mean = 300.;
    mortal_lifetime_long_frac = 0.08;
    refs_per_step = 45;
    recent_bias = 0.8;
    write_fraction = 0.4;
    init_touch_bytes = 64;
    touch_bytes = 24;
    compute_per_step = 150;
    global_bytes = 128 * 1024;
    global_refs_per_step = 30;
    global_hot_fraction = 0.75;
    site_count = 64;
    site_noise = 0.10 }

let gs_small =
  gs ~key:"gs-small" ~label:"GS-Small" ~steps:12_000 ~retained:1_000_000
    ~seed:0x65A

let gs_medium =
  gs ~key:"gs-medium" ~label:"GS-Medium" ~steps:32_000 ~retained:2_600_000
    ~seed:0x65B

let gs_large =
  gs ~key:"gs-large" ~label:"GS-Large" ~steps:80_000 ~retained:4_000_000
    ~seed:0x65C

let ptc =
  { Profile.key = "ptc";
    label = "PTC";
    description = "Pascal-to-C translator: permanent AST, frees nothing";
    seed = 0x97C;
    steps = 40_000;
    size_dist =
      Dist.create
        [ (16, 14.); (24, 26.); (32, 20.); (48, 12.); (64, 10.); (96, 8.);
          (128, 5.); (256, 3.); (512, 1.5); (1024, 0.5) ];
    retained_size_dist =
      Dist.create
        [ (16, 14.); (24, 26.); (32, 20.); (48, 12.); (64, 10.); (96, 8.);
          (128, 5.); (256, 3.); (512, 1.5); (1024, 0.5) ];
    alloc_every = 1.2;
    realloc_prob = 0.;
    realloc_cap = 4096;
    (* Everything is retained: the target exceeds what the run can
       allocate, so no object is ever mortal. *)
    retained_bytes = 64 * 1024 * 1024;
    mortal_lifetime_mean = 50.;
    mortal_lifetime_long_frac = 0.;
    refs_per_step = 35;
    recent_bias = 0.85;
    write_fraction = 0.45;
    init_touch_bytes = 48;
    touch_bytes = 16;
    compute_per_step = 100;
    global_bytes = 64 * 1024;
    global_refs_per_step = 20;
    global_hot_fraction = 0.8;
    site_count = 24;
    site_noise = 0.05 }

let gawk =
  { Profile.key = "gawk";
    label = "Gawk";
    description = "awk interpreter: tiny heap, furious cell turnover";
    seed = 0x6A3;
    steps = 70_000;
    size_dist =
      Dist.create
        [ (8, 10.); (16, 25.); (24, 40.); (32, 15.); (48, 5.); (64, 3.);
          (128, 1.5); (512, 0.5) ];
    retained_size_dist =
      (* gawk's heap is tiny but packed with tiny cells: ~2500 live
         objects in 60 KB at full scale *)
      Dist.create [ (16, 5.); (24, 6.); (32, 3.); (128, 0.6) ];
    alloc_every = 1.4;
    realloc_prob = 0.04;
    realloc_cap = 1024;
    retained_bytes = 56_000;
    mortal_lifetime_mean = 60.;
    mortal_lifetime_long_frac = 0.02;
    refs_per_step = 30;
    recent_bias = 0.9;
    write_fraction = 0.4;
    init_touch_bytes = 24;
    touch_bytes = 16;
    compute_per_step = 90;
    global_bytes = 48 * 1024;
    global_refs_per_step = 20;
    global_hot_fraction = 0.85;
    site_count = 32;
    site_noise = 0.06 }

let make_prog =
  { Profile.key = "make";
    label = "Make";
    description = "dependency analysis: few allocations, long-lived graph";
    seed = 0x4A4E;
    steps = 14_000;
    size_dist =
      Dist.create
        [ (16, 15.); (24, 25.); (32, 20.); (64, 10.); (128, 8.); (256, 5.);
          (1024, 1.5); (4096, 0.5) ];
    retained_size_dist =
      Dist.create [ (256, 4.); (1024, 4.); (4096, 2.); (16384, 0.3) ];
    alloc_every = 18.0;
    realloc_prob = 0.003;
    realloc_cap = 8192;
    retained_bytes = 300_000;
    mortal_lifetime_mean = 400.;
    mortal_lifetime_long_frac = 0.1;
    refs_per_step = 30;
    recent_bias = 0.6;
    write_fraction = 0.35;
    init_touch_bytes = 48;
    touch_bytes = 20;
    compute_per_step = 95;
    global_bytes = 64 * 1024;
    global_refs_per_step = 25;
    global_hot_fraction = 0.8;
    site_count = 24;
    site_noise = 0.12 }

let five = [ espresso; gs_large; ptc; gawk; make_prog ]
let gs_inputs = [ gs_small; gs_medium; gs_large ]
let all = [ espresso; gs_small; gs_medium; gs_large; ptc; gawk; make_prog ]

let find key =
  match List.find_opt (fun p -> p.Profile.key = key) all with
  | Some p -> p
  | None -> raise Not_found

let keys () = List.map (fun p -> p.Profile.key) all
let () = List.iter Profile.validate all
