(** Runs a synthetic application against an allocator, producing the
    fused reference trace (application + allocator) the paper's
    simulations consume.

    The driver owns the simulated machine: it builds a {!Allocators.Heap.t}
    whose trace goes to the caller's sink (typically a
    {!Memsim.Sink.fanout} of cache simulators, the page simulator and a
    counter), constructs the requested allocator on it, and plays the
    profile's workload. *)

type result = {
  profile : Profile.t;
  allocator_key : string;
  steps_run : int;
  instructions : int;  (** Total I of the paper's model. *)
  app_instructions : int;
  malloc_instructions : int;
  free_instructions : int;
  data_refs : int;  (** Total D (reference events). *)
  app_refs : int;
  allocator_refs : int;
  heap_used : int;  (** Bytes obtained from sbrk. *)
  max_live_bytes : int;
  alloc_stats : Allocators.Alloc_stats.t;
}

val allocator_fraction : result -> float
(** Fraction of instructions spent in malloc/free — one bar of
    Figure 1. *)

val run :
  ?sink:Memsim.Sink.t ->
  ?scale:float ->
  ?heap_bytes:int ->
  profile:Profile.t ->
  allocator:string ->
  unit ->
  result
(** Plays [profile] (at [scale], default 1.0) against the named
    allocator (a {!Allocators.Registry} key).  Every data reference of
    the run is delivered to [sink].  [scale] shrinks both the step count
    and the retained-heap target, so behaviour (lifetime mix, miss-rate
    regime) is approximately scale-invariant. *)

val run_with :
  ?sink:Memsim.Sink.t ->
  ?scale:float ->
  ?on_alloc:(site:int -> long:bool -> size:int -> unit) ->
  profile:Profile.t ->
  heap:Allocators.Heap.t ->
  alloc:Allocators.Allocator.t ->
  unit ->
  result
(** Like {!run} on a caller-built heap/allocator pair (for custom
    allocators trained on the profile's histogram).  [on_alloc] observes
    every allocation's site and eventual lifetime class — the profiling
    feed for {!Allocators.Predictive.Trainer}. *)

val train_predictor :
  ?scale:float ->
  profile:Profile.t ->
  unit ->
  Allocators.Predictive.prediction array
(** Runs a profiling pass (default scale 0.05) and returns per-site
    lifetime predictions — the Barrett & Zorn workflow the paper's §5.1
    points at. *)
