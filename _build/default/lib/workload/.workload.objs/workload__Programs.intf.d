lib/workload/programs.mli: Profile
