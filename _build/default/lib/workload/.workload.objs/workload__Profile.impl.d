lib/workload/profile.ml: Dist Printf
