lib/workload/dist.ml: Array Hashtbl List Option Rng
