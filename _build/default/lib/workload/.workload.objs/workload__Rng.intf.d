lib/workload/rng.mli:
