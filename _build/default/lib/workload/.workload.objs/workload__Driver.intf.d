lib/workload/driver.mli: Allocators Memsim Profile
