lib/workload/programs.ml: Dist List Profile
