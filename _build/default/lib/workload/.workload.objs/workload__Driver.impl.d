lib/workload/driver.ml: Alloc_stats Allocator Allocators Array Cost Dist Heap Memsim Predictive Profile Registry Rng
