lib/workload/profile.mli: Dist
