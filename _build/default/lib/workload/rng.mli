(** Deterministic pseudo-random numbers (SplitMix64).

    The paper's tools "generate deterministic results, [so] our
    experiments did not require statistically averaging multiple runs";
    we keep that property by seeding every workload explicitly and never
    touching global randomness. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val copy : t -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; [bound >= 1]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] counts Bernoulli([p]) failures before the first
    success; mean [(1-p)/p].  [0 < p <= 1]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given positive mean. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
