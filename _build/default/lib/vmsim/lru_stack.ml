type t = {
  mutable fenwick : Fenwick.t;
  (* Position of each key's most recent access in the time index; the
     Fenwick tree has a 1 at exactly those positions. *)
  last : (int, int) Hashtbl.t;
  mutable now : int;
  mutable accesses : int;
  mutable cold : int;
  (* hist.(d) = accesses with stack distance d (1-based). *)
  mutable hist : int array;
  mutable max_dist : int;
}

let create ?(initial_capacity = 1 lsl 16) () =
  assert (initial_capacity > 1);
  { fenwick = Fenwick.create initial_capacity;
    last = Hashtbl.create 4096;
    now = 0;
    accesses = 0;
    cold = 0;
    hist = Array.make 64 0;
    max_dist = 0 }

(* Renumber all keys' last-access times to 0 .. distinct-1 (preserving
   order) when the time index fills up, keeping the Fenwick tree small
   regardless of trace length. *)
let compact t =
  let entries =
    Hashtbl.fold (fun key time acc -> (time, key) :: acc) t.last []
    |> List.sort compare
  in
  let needed = List.length entries in
  let cap = max (Fenwick.capacity t.fenwick) (4 * (needed + 1)) in
  t.fenwick <- Fenwick.create cap;
  Hashtbl.reset t.last;
  List.iteri
    (fun i (_, key) ->
      Hashtbl.replace t.last key i;
      Fenwick.add t.fenwick i 1)
    entries;
  t.now <- needed

let bump_hist t d =
  if d >= Array.length t.hist then begin
    let bigger = Array.make (max (d + 1) (2 * Array.length t.hist)) 0 in
    Array.blit t.hist 0 bigger 0 (Array.length t.hist);
    t.hist <- bigger
  end;
  t.hist.(d) <- t.hist.(d) + 1;
  if d > t.max_dist then t.max_dist <- d

let access t key =
  if t.now >= Fenwick.capacity t.fenwick then compact t;
  t.accesses <- t.accesses + 1;
  let result =
    match Hashtbl.find_opt t.last key with
    | None ->
        t.cold <- t.cold + 1;
        None
    | Some t0 ->
        (* Distinct keys referenced strictly between t0 and now: each has
           its most-recent access inside the window. *)
        let between = Fenwick.range_sum t.fenwick ~lo:(t0 + 1) ~hi:(t.now - 1) in
        let distance = between + 1 in
        Fenwick.add t.fenwick t0 (-1);
        bump_hist t distance;
        Some distance
  in
  Hashtbl.replace t.last key t.now;
  Fenwick.add t.fenwick t.now 1;
  t.now <- t.now + 1;
  result

let accesses t = t.accesses
let cold t = t.cold
let distinct t = Hashtbl.length t.last
let histogram t = Array.sub t.hist 0 (t.max_dist + 1)

let misses_at t ~capacity =
  if capacity <= 0 then invalid_arg "Lru_stack.misses_at: capacity must be > 0";
  let beyond = ref 0 in
  for d = capacity + 1 to t.max_dist do
    beyond := !beyond + t.hist.(d)
  done;
  t.cold + !beyond

let miss_curve t ~capacities =
  List.map (fun c -> (c, misses_at t ~capacity:c)) capacities
