(** Obviously-correct (quadratic) LRU stack, used as the oracle in
    property tests of {!Lru_stack}. *)

type t

val create : unit -> t

val access : t -> int -> int option
(** Stack distance (1-based LRU position) or [None] when cold. *)

val misses_at : t -> capacity:int -> int
(** Replays the recorded distances like {!Lru_stack.misses_at}. *)
