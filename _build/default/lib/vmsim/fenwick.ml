(* Classic 1-indexed Fenwick tree, exposed with 0-indexed positions. *)

type t = { tree : int array; n : int }

let create n =
  assert (n > 0);
  { tree = Array.make (n + 1) 0; n }

let capacity t = t.n

let add t i delta =
  assert (i >= 0 && i < t.n);
  let i = ref (i + 1) in
  while !i <= t.n do
    t.tree.(!i) <- t.tree.(!i) + delta;
    i := !i + (!i land - !i)
  done

let prefix_sum t i =
  if i < 0 then 0
  else begin
    let i = ref (min i (t.n - 1) + 1) in
    let sum = ref 0 in
    while !i > 0 do
      sum := !sum + t.tree.(!i);
      i := !i - (!i land - !i)
    done;
    !sum
  end

let range_sum t ~lo ~hi =
  if hi < lo then 0 else prefix_sum t hi - prefix_sum t (lo - 1)

let total t = prefix_sum t (t.n - 1)
let clear t = Array.fill t.tree 0 (Array.length t.tree) 0
