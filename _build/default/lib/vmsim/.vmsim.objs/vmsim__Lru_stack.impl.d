lib/vmsim/lru_stack.ml: Array Fenwick Hashtbl List
