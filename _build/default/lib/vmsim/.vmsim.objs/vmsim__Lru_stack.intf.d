lib/vmsim/lru_stack.mli:
