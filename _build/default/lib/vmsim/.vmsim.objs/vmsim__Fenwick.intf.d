lib/vmsim/fenwick.mli:
