lib/vmsim/page_sim.ml: List Lru_stack Memsim
