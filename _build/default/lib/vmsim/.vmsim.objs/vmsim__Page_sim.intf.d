lib/vmsim/page_sim.mli: Memsim
