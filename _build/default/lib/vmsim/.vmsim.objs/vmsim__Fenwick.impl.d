lib/vmsim/fenwick.ml: Array
