lib/vmsim/naive_lru.mli:
