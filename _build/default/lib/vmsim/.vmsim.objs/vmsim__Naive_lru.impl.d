lib/vmsim/naive_lru.ml: List
