(** Fenwick (binary indexed) tree over a fixed range of integer
    positions, used by {!Lru_stack} to count distinct pages between two
    accesses in O(log n). *)

type t

val create : int -> t
(** [create n] is a tree over positions [0 .. n-1], all zero. *)

val capacity : t -> int

val add : t -> int -> int -> unit
(** [add t i delta] adds [delta] at position [i]. *)

val prefix_sum : t -> int -> int
(** [prefix_sum t i] is the sum of positions [0 .. i] ([0] when
    [i < 0]). *)

val range_sum : t -> lo:int -> hi:int -> int
(** [range_sum t ~lo ~hi] is the sum over [lo .. hi] inclusive ([0] when
    the range is empty). *)

val total : t -> int
(** Sum over all positions. *)

val clear : t -> unit
(** Resets all positions to zero. *)
