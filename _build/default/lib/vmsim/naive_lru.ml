type t = {
  mutable stack : int list;  (* MRU first *)
  mutable distances : int option list;  (* most recent first *)
}

let create () = { stack = []; distances = [] }

let access t key =
  let rec position i = function
    | [] -> None
    | k :: _ when k = key -> Some i
    | _ :: rest -> position (i + 1) rest
  in
  let d =
    match position 1 t.stack with
    | None -> None
    | Some pos -> Some pos
  in
  t.stack <- key :: List.filter (fun k -> k <> key) t.stack;
  t.distances <- d :: t.distances;
  d

let misses_at t ~capacity =
  List.fold_left
    (fun acc d ->
      match d with
      | None -> acc + 1
      | Some dist -> if dist > capacity then acc + 1 else acc)
    0 t.distances
