(** Mattson LRU stack-distance simulation.

    One pass over a reference stream yields the LRU stack-distance
    histogram, from which the miss (page-fault) count of {e every} memory
    size is derived — this is the "fast implementation of a stack
    simulation algorithm" (VMSIM) the paper uses.

    The stack distance of an access is the number of distinct keys
    referenced since the previous access to the same key, plus one (its
    LRU-stack position).  An access hits in an LRU memory of [m] slots
    iff its stack distance is at most [m].  First-ever accesses are
    cold. *)

type t

val create : ?initial_capacity:int -> unit -> t
(** [initial_capacity] sizes the internal time index; it grows by
    compaction automatically, so the default (1 lsl 16) is fine. *)

val access : t -> int -> int option
(** [access t key] records a reference to [key] and returns its stack
    distance, or [None] on a cold (first) access. *)

val accesses : t -> int
(** Total accesses recorded. *)

val cold : t -> int
(** Number of cold accesses (equals the number of distinct keys). *)

val distinct : t -> int

val histogram : t -> int array
(** [histogram t] maps stack distance [d] (1-based; index 0 unused) to
    the number of accesses with that distance.  Indices beyond the
    largest observed distance are absent (array is trimmed). *)

val misses_at : t -> capacity:int -> int
(** Misses of an LRU memory with [capacity] slots: cold accesses plus
    accesses whose stack distance exceeds [capacity].
    [capacity] must be positive. *)

val miss_curve : t -> capacities:int list -> (int * int) list
(** [(capacity, misses)] for each requested capacity. *)
