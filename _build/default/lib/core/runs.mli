(** The run grid: one fully instrumented simulation per
    (program, allocator) pair, shared by every experiment.

    Each run drives the profile against the allocator once, feeding the
    fused trace to: the paper's direct-mapped cache sweep (16K–256K), an
    associativity set at 16 K (2/4/8-way), a two-level hierarchy
    (16 K L1 / 256 K L2), and the page-fault simulator.  Results are
    memoized, so regenerating all tables and figures costs one pass per
    pair. *)

type data = {
  result : Workload.Driver.result;
  caches : (Cachesim.Config.t * Cachesim.Stats.t) list;
      (** All simulated configurations, by name. *)
  l1 : Cachesim.Stats.t;  (** Hierarchy L1 (16K-dm). *)
  l2 : Cachesim.Stats.t;  (** Hierarchy L2 (256K-dm behind L1). *)
  pages : Vmsim.Page_sim.t;
}

type t

val create : ?scale:float -> ?jobs:int -> unit -> t
(** [scale] (default 0.2) is forwarded to every
    {!Workload.Driver.run}.  [jobs] (default 1) bounds the worker
    domains {!prefetch} may use to fill the grid concurrently.
    @raise Invalid_argument if [scale <= 0] or [jobs < 1]. *)

val scale : t -> float

val jobs : t -> int

val get : t -> profile:string -> allocator:string -> data
(** Memoized.  [allocator] is a {!Allocators.Registry} key; ["custom"]
    is trained on the profile's own size histogram (the CustoMalloc
    workflow).
    @raise Not_found for unknown keys. *)

val prefetch : t -> (string * string) list -> unit
(** [prefetch t cells] fills the memo for every (profile, allocator)
    cell not already present, evaluating missing cells on up to
    {!jobs} worker domains.  Cells are independent simulations (each
    owns its heap, RNG and sinks) and results are merged in submission
    order on the calling domain, so the memo contents — and therefore
    every rendering — are bit-identical to a sequential fill.  Order
    is deduplicated first-occurrence order.  If any cell raises (e.g.
    {!get}'s [Not_found] for an unknown key), no cell of this batch is
    merged and the first failure (by position) is re-raised. *)

val cache_stats : data -> name:string -> Cachesim.Stats.t
(** Statistics of a named configuration, e.g. ["64K-dm"].
    @raise Invalid_argument if the configuration was not simulated; the
    message lists the configurations that were. *)

val miss_rate : data -> cache:string -> float
(** Miss rate (fraction) of a named configuration. *)

val exec_time :
  data -> model:Metrics.Cost_model.t -> cache:string -> Metrics.Exec_time.t
(** The paper's [I + (M x P) D] for this run under a named cache. *)

val standard_configs : Cachesim.Config.t list
(** Everything simulated per run (the paper sweep plus the
    associativity set). *)
