(** Regeneration of the paper's figures (as data series / text charts).

    Each function renders the same quantity the figure plots; paper
    values are never matched absolutely (different substrate), but the
    orderings and shapes are the reproduction target recorded in
    EXPERIMENTS.md. *)

val fig1 : Context.t -> string
(** Percent of time in malloc and free, per program x allocator. *)

val fig2 : Context.t -> string
(** Page fault rate vs. physical memory, GhostScript (GS-Large). *)

val fig3 : Context.t -> string
(** Page fault rate vs. physical memory, PTC. *)

val fig4 : Context.t -> string
(** Normalized execution time, 16 K direct-mapped, 25-cycle penalty
    (CPU-only bar overlaid with the memory-hierarchy bar). *)

val fig5 : Context.t -> string
(** Same as {!fig4} with a 64 K cache. *)

val fig6 : Context.t -> string
(** Data-cache miss rate vs. cache size, GS-Small. *)

val fig7 : Context.t -> string
(** GS-Medium. *)

val fig8 : Context.t -> string
(** GS-Large. *)

val fig9 : Context.t -> string
(** The size-mapping array (Figure 9 is a design illustration; we print
    a concrete mapping designed from Espresso's measured histogram). *)
