type data = {
  result : Workload.Driver.result;
  caches : (Cachesim.Config.t * Cachesim.Stats.t) list;
  l1 : Cachesim.Stats.t;
  l2 : Cachesim.Stats.t;
  pages : Vmsim.Page_sim.t;
}

type t = {
  scale : float;
  jobs : int;
  memo : (string * string, data) Hashtbl.t;
}

let standard_configs =
  Cachesim.Config.paper_direct_mapped
  @ List.map
      (fun a -> Cachesim.Config.make ~associativity:a (16 * 1024))
      [ 2; 4; 8 ]
  (* Block-size sweep at 64K for the hardware-prefetch discussion
     (Smith's line-size trade-off); 32-byte blocks are "64K-dm". *)
  @ List.map
      (fun b ->
        Cachesim.Config.make
          ~name:(Printf.sprintf "64K-b%d" b)
          ~block_bytes:b (64 * 1024))
      [ 16; 64; 128 ]

let create ?(scale = 0.2) ?(jobs = 1) () =
  (* Not an assert: -noassert builds must still reject a zero-step
     grid instead of looping or dividing by zero deep in a driver. *)
  if not (scale > 0.) then invalid_arg "Runs.create: scale must be > 0";
  if jobs < 1 then invalid_arg "Runs.create: jobs must be >= 1";
  { scale; jobs; memo = Hashtbl.create 64 }

let scale t = t.scale
let jobs t = t.jobs

(* "custom" is the synthesized allocator: train its size classes on the
   profile's own request mix, like CustoMalloc generating an allocator
   for a measured program. *)
let build_allocator ~profile_key ~allocator heap =
  if allocator = "custom" then begin
    let profile = Workload.Programs.find profile_key in
    let histogram =
      Workload.Dist.to_histogram profile.Workload.Profile.size_dist
        ~scale:100_000
    in
    Allocators.Custom.allocator (Allocators.Custom.create_for ~histogram heap)
  end
  else Allocators.Registry.build allocator heap

let run t ~profile ~allocator =
  let prof = Workload.Programs.find profile in
  let multi = Cachesim.Multi.create standard_configs in
  let hier =
    Cachesim.Hierarchy.create
      ~l1:(Cachesim.Config.make (16 * 1024))
      ~l2:(Cachesim.Config.make (256 * 1024))
  in
  let pages = Vmsim.Page_sim.create () in
  let sink =
    Memsim.Sink.fanout
      [ Cachesim.Multi.sink multi;
        Cachesim.Hierarchy.sink hier;
        Vmsim.Page_sim.sink pages ]
  in
  let heap = Allocators.Heap.create () in
  let alloc = build_allocator ~profile_key:profile ~allocator heap in
  let result =
    Workload.Driver.run_with ~sink ~scale:t.scale ~profile:prof ~heap ~alloc ()
  in
  { result;
    caches = Cachesim.Multi.results multi;
    l1 = Cachesim.Hierarchy.l1_stats hier;
    l2 = Cachesim.Hierarchy.l2_stats hier;
    pages }

let get t ~profile ~allocator =
  let key = (profile, allocator) in
  match Hashtbl.find_opt t.memo key with
  | Some d -> d
  | None ->
      let d = run t ~profile ~allocator in
      Hashtbl.replace t.memo key d;
      d

let prefetch t cells =
  (* Keep first-occurrence order and drop cells the memo already holds:
     the pending list is both the work list and the merge order. *)
  let seen = Hashtbl.create 16 in
  let pending =
    List.rev
      (List.fold_left
         (fun acc key ->
           if Hashtbl.mem t.memo key || Hashtbl.mem seen key then acc
           else begin
             Hashtbl.replace seen key ();
             key :: acc
           end)
         [] cells)
  in
  match pending with
  | [] -> ()
  | _ ->
      (* Every cell is self-contained (own heap, RNG, sinks), so the
         workers never touch [t.memo]; results come back in submission
         order and are merged here, on the calling domain.  A parallel
         fill is therefore bit-identical to a sequential one. *)
      let datas =
        Exec.Pool.with_pool
          ~jobs:(min t.jobs (List.length pending))
          (fun pool ->
            Exec.Pool.map pool
              (fun (profile, allocator) -> run t ~profile ~allocator)
              pending)
      in
      List.iter2 (fun key d -> Hashtbl.replace t.memo key d) pending datas

let cache_stats d ~name =
  match
    List.find_opt (fun (c, _) -> c.Cachesim.Config.name = name) d.caches
  with
  | Some (_, s) -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Runs.cache_stats: unknown cache %S (known: %s)" name
           (String.concat ", "
              (List.map (fun (c, _) -> c.Cachesim.Config.name) d.caches)))

let miss_rate d ~cache = Cachesim.Stats.miss_rate (cache_stats d ~name:cache)

let exec_time d ~model ~cache =
  let s = cache_stats d ~name:cache in
  Metrics.Exec_time.make ~model
    ~instructions:d.result.Workload.Driver.instructions
    ~data_refs:d.result.Workload.Driver.data_refs ~misses:s.Cachesim.Stats.misses
