type t = {
  id : string;
  title : string;
  paper_ref : string;
  render : Context.t -> string;
}

let all =
  [
    { id = "fig1";
      title = "Percent of time in malloc and free";
      paper_ref = "Figure 1, section 3.1";
      render = Figures.fig1 };
    { id = "fig2";
      title = "Page fault rate for GhostScript";
      paper_ref = "Figure 2, section 4.1";
      render = Figures.fig2 };
    { id = "fig3";
      title = "Page fault rate for Pascal-to-C";
      paper_ref = "Figure 3, section 4.1";
      render = Figures.fig3 };
    { id = "fig4";
      title = "Normalized execution time, 16K cache";
      paper_ref = "Figure 4, section 4.2";
      render = Figures.fig4 };
    { id = "fig5";
      title = "Normalized execution time, 64K cache";
      paper_ref = "Figure 5, section 4.2";
      render = Figures.fig5 };
    { id = "fig6";
      title = "Cache miss rate, GS-Small";
      paper_ref = "Figure 6, section 4.2";
      render = Figures.fig6 };
    { id = "fig7";
      title = "Cache miss rate, GS-Medium";
      paper_ref = "Figure 7, section 4.2";
      render = Figures.fig7 };
    { id = "fig8";
      title = "Cache miss rate, GS-Large";
      paper_ref = "Figure 8, section 4.2";
      render = Figures.fig8 };
    { id = "fig9";
      title = "Size-mapping array";
      paper_ref = "Figure 9, section 4.4";
      render = Figures.fig9 };
    { id = "tab2";
      title = "Test program performance information";
      paper_ref = "Table 2, section 3.1";
      render = Tables.tab2 };
    { id = "tab3";
      title = "GhostScript input sets";
      paper_ref = "Table 3, section 4.2";
      render = Tables.tab3 };
    { id = "tab4";
      title = "Execution and miss time, 16K cache";
      paper_ref = "Table 4, section 4.2";
      render = Tables.tab4 };
    { id = "tab5";
      title = "Execution and miss time, 64K cache";
      paper_ref = "Table 5, section 4.2";
      render = Tables.tab5 };
    { id = "tab6";
      title = "Effect of boundary tags on GNU local";
      paper_ref = "Table 6, section 4.3";
      render = Tables.tab6 };
    { id = "abl-coalesce";
      title = "Coalescing ablation (FirstFit)";
      paper_ref = "section 4.1 discussion";
      render = Ablations.coalescing };
    { id = "abl-sizeclass";
      title = "Size-class policy ablation";
      paper_ref = "section 4.4 discussion";
      render = Ablations.size_classes };
    { id = "abl-assoc";
      title = "Cache associativity ablation";
      paper_ref = "section 2.2 discussion";
      render = Ablations.associativity };
    { id = "abl-l2";
      title = "Two-level hierarchy extension";
      paper_ref = "section 1.1 discussion";
      render = Ablations.two_level };
    { id = "abl-blocksize";
      title = "Cache block-size / prefetch extension";
      paper_ref = "section 4.2 discussion";
      render = Ablations.block_size };
    { id = "abl-seqfam";
      title = "Sequential-fit family extension";
      paper_ref = "section 5 conclusion";
      render = Ablations.seq_family };
    { id = "abl-flush";
      title = "Context-switch flush extension";
      paper_ref = "section 3.2 discussion";
      render = Ablations.flush };
    { id = "abl-lifetime";
      title = "Lifetime-prediction future work";
      paper_ref = "section 5.1 future work";
      render = Ablations.lifetime_prediction };
    { id = "abl-penalty";
      title = "Miss-penalty sweep extension";
      paper_ref = "section 4.4 discussion";
      render = Ablations.penalty_sweep };
  ]

let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None -> raise Not_found

let ids () = List.map (fun e -> e.id) all
let run ctx id = (find id).render ctx
let run_all ctx = List.map (fun e -> (e.id, e.render ctx)) all
