(** The experiment registry: every table and figure of the paper's
    evaluation, plus the ablations, addressable by id. *)

type t = {
  id : string;  (** e.g. ["fig4"], ["tab6"], ["abl-coalesce"]. *)
  title : string;
  paper_ref : string;  (** Where it appears in the paper. *)
  render : Context.t -> string;
}

val all : t list
(** Paper order: fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
    tab2..tab6, then ablations. *)

val find : string -> t
(** @raise Not_found for unknown ids. *)

val ids : unit -> string list

val run : Context.t -> string -> string
(** [run ctx id] renders one experiment.
    @raise Not_found for unknown ids. *)

val run_all : Context.t -> (string * string) list
(** Renders every experiment, sharing the context's memoized runs. *)
