(** Ablation and extension experiments for the design decisions the
    paper calls out in §4.3/§4.4. *)

val coalescing : Context.t -> string
(** FirstFit with vs. without coalescing (GS-Large and PTC): space,
    speed and locality cost of "efforts to reduce total memory
    utilization". *)

val size_classes : Context.t -> string
(** Size-class policy ablation on GS-Large: BSD's powers of two vs.
    QuickFit's exact small sizes vs. GNU local vs. the synthesized
    measured classes — fragmentation, footprint, miss rate, total
    time. *)

val associativity : Context.t -> string
(** 16 K cache at 1/2/4/8 ways per allocator (GS-Large): how much of
    each allocator's miss rate is conflict misses. *)

val two_level : Context.t -> string
(** 16 K L1 + 256 K L2 with a 100-cycle L2 penalty (the Jouppi /
    Mogul-Borg future-machine scenario of §1.1): does GNU local's
    locality engineering pay off at high penalties? *)

val block_size : Context.t -> string
(** Cache block-size sweep at 64 K on GS-Large: multi-word lines are the
    "hardware prefetching" the paper considers (§4.2, citing Smith);
    larger blocks amplify both useful prefetch and boundary-tag/metadata
    pollution. *)

val seq_family : Context.t -> string
(** FirstFit vs BestFit vs GNU G++ on GS-Large: search length, search
    traffic and locality across the sequential-fit family the paper's
    conclusion covers ("first-fit, best-fit, etc"). *)

val flush : Context.t -> string
(** Miss rates under periodic cache flushes (the context-switch effect
    of Mogul & Borg the paper deliberately excludes from its own
    numbers, here as an extension). *)

val lifetime_prediction : Context.t -> string
(** The paper's §5.1 future work, realised: train a per-site lifetime
    predictor on a profiling run (Barrett & Zorn), then compare the
    {!Allocators.Predictive} allocator against QuickFit/Custom/GNU local
    on churn-heavy programs. *)

val penalty_sweep : Context.t -> string
(** Total-time crossover between QuickFit and GNU local as the miss
    penalty grows (§4.4: "if cache miss penalties increase dramatically,
    the added CPU overhead ...may then be warranted"). *)
