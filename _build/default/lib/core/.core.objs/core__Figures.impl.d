lib/core/figures.ml: Allocators Buffer Context Exec_time List Metrics Printf Runs Series String Table Vmsim Workload
