lib/core/experiment.mli: Context
