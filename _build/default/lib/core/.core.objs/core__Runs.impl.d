lib/core/runs.ml: Allocators Cachesim Exec Hashtbl List Memsim Metrics Printf String Vmsim Workload
