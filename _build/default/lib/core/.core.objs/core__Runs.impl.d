lib/core/runs.ml: Allocators Cachesim Hashtbl List Memsim Metrics Printf Vmsim Workload
