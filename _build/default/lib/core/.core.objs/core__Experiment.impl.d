lib/core/experiment.ml: Ablations Context Figures List Runs Tables
