lib/core/context.ml: Metrics Runs
