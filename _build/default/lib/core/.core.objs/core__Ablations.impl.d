lib/core/ablations.ml: Allocators Cachesim Context Cost_model Exec_time List Memsim Metrics Printf Runs Series Table Workload
