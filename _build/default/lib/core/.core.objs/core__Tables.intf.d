lib/core/tables.mli: Context
