lib/core/context.mli: Metrics Runs
