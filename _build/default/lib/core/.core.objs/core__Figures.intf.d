lib/core/figures.mli: Context
