lib/core/tables.ml: Allocators Context Exec_time List Metrics Printf Runs Table Workload
