lib/core/runs.mli: Cachesim Metrics Vmsim Workload
