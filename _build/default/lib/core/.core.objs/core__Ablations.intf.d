lib/core/ablations.mli: Context
