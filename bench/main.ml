(* The benchmark harness.

   Part 1 regenerates every table and figure of the paper (the rows and
   series the paper reports) from one shared, memoized run grid — this
   is the reproduction output recorded in EXPERIMENTS.md.

   Part 2 runs Bechamel micro-benchmarks: one Test.make per paper
   table/figure (regeneration cost on the warm grid) plus allocator
   operation kernels that check the paper's CPU-cost ordering
   (BSD/QuickFit fast, FirstFit/G++ searching, GNU local heavyweight)
   at native speed.

   Part 1 also measures the persistent artifact store: the grid is
   filled cold through a store (writing every cell through), then a
   second, fresh grid is filled warm from the same store — the
   warm/cold ratio is the store's speedup, recorded in the BENCH json.

   Scale comes from LOCLAB_SCALE (default 0.25); LOCLAB_JOBS sets the
   worker domains used to fill the run grid (default 1; output is
   bit-identical for any value).  LOCLAB_STORE names the store
   directory (default: a throwaway under the system temp dir, removed
   at exit).  Pass LOCLAB_BENCH=0 to skip part 2 (e.g. in CI) and
   LOCLAB_SERVE=0 to skip the serve traffic replay. *)

open Bechamel

let () = Telemetry.setup_logging ()

let scale =
  match Sys.getenv_opt "LOCLAB_SCALE" with
  | Some s -> (try float_of_string s with _ -> 0.25)
  | None -> 0.25

let jobs = Exec.Pool.default_jobs ()
let run_micro = Sys.getenv_opt "LOCLAB_BENCH" <> Some "0"

(* ------------------------------------------------------------------ *)
(* Part 1: regenerate every table and figure                          *)
(* ------------------------------------------------------------------ *)

(* The store under test: LOCLAB_STORE, or a throwaway directory that is
   removed after the run. *)
let store_dir, store_is_temp =
  match Sys.getenv_opt "LOCLAB_STORE" with
  | Some dir when dir <> "" -> (dir, false)
  | _ ->
      ( Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "loclab-bench-store-%d" (Unix.getpid ())),
        true )

let store = Store.open_ store_dir
let ctx = Core.Context.create ~scale ~jobs ~store ()

(* Numbers exported to the BENCH json at exit. *)
let fill_seconds = ref 0.
let warm_fill_seconds = ref 0.
let cold_hits = ref 0
let cold_simulated = ref 0
let warm_hits = ref 0
let warm_simulated = ref 0
let grid_events = ref 0
let kernel_results : (string * float) list ref = ref []

(* Total simulated references across the (deduplicated) grid — the
   event count behind the fill time, for an events/second figure. *)
let count_grid_events () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (e : Core.Experiment.t) ->
      List.iter
        (fun (profile, allocator) ->
          if not (Hashtbl.mem seen (profile, allocator)) then begin
            Hashtbl.replace seen (profile, allocator) ();
            let d =
              Core.Runs.get ctx.Core.Context.runs ~profile ~allocator
            in
            grid_events :=
              !grid_events + d.Core.Artifact.summary.Core.Artifact.data_refs
          end)
        e.Core.Experiment.cells)
    Core.Experiment.all

let () =
  Printf.printf
    "loclab bench: reproducing Grunwald/Zorn/Henderson PLDI'93 at scale %.2f \
     (%d job%s)\n\n"
    scale jobs
    (if jobs = 1 then "" else "s");
  (* Fill the whole memoized grid up front — in parallel when jobs > 1 —
     and report the fill time, the number the --jobs knob moves. *)
  let t0 = Unix.gettimeofday () in
  Core.Experiment.warm_all ctx;
  fill_seconds := Unix.gettimeofday () -. t0;
  cold_hits := Core.Runs.store_hits ctx.Core.Context.runs;
  cold_simulated := Core.Runs.simulated ctx.Core.Context.runs;
  count_grid_events ();
  Printf.printf "grid fill: %.2f s wall (%d jobs, scale %.2f)\n"
    !fill_seconds jobs scale;
  Printf.printf "grid throughput: %.2f M events/s (%d simulated references)\n"
    (float_of_int !grid_events /. !fill_seconds /. 1e6)
    !grid_events;
  Printf.printf "store fill: %d cells simulated, %d already present (%s)\n"
    !cold_simulated !cold_hits store_dir;
  (* Warm pass: a fresh grid over the same store — every cell should be
     a store hit and the fill should be pure decode I/O. *)
  let wctx = Core.Context.create ~scale ~jobs ~store () in
  let t1 = Unix.gettimeofday () in
  Core.Experiment.warm_all wctx;
  warm_fill_seconds := Unix.gettimeofday () -. t1;
  warm_hits := Core.Runs.store_hits wctx.Core.Context.runs;
  warm_simulated := Core.Runs.simulated wctx.Core.Context.runs;
  Printf.printf
    "store warm fill: %.3f s wall (%d hits, %d simulated) — %.0fx speedup\n\n"
    !warm_fill_seconds !warm_hits !warm_simulated
    (!fill_seconds /. !warm_fill_seconds);
  List.iter
    (fun e ->
      Printf.printf "================ %s — %s (%s) ================\n%s\n"
        e.Core.Experiment.id e.Core.Experiment.title e.Core.Experiment.paper_ref
        (e.Core.Experiment.render ctx))
    Core.Experiment.all

(* ------------------------------------------------------------------ *)
(* Domain-sharded replay scaling                                      *)
(* ------------------------------------------------------------------ *)

(* Capture one grid cell's reference trace once, then replay it through
   the standard 32-byte LRU forest family under Cachesim.Shard with a
   growing domain count.  LOCLAB_SCALING_JOBS overrides the job list
   (comma-separated, default "1,2,4,8").  Every sharded run is checked
   stat-identical to the sequential one. *)
let scaling_jobs =
  let default = [ 1; 2; 4; 8 ] in
  match Sys.getenv_opt "LOCLAB_SCALING_JOBS" with
  | None -> default
  | Some s ->
      let parsed =
        String.split_on_char ',' s
        |> List.filter_map (fun tok ->
               match int_of_string_opt (String.trim tok) with
               | Some j when j >= 1 -> Some j
               | _ -> None)
      in
      if parsed = [] then default else parsed

let scaling_cell = "espresso/bsd"
let scaling_trace_events = ref 0
let scaling_configs = ref 0

(* (jobs, wall seconds, events/s) in run order. *)
let scaling_curve : (int * float * float) list ref = ref []
let scaling_identical = ref true

let () =
  let trace = Memsim.Trace_buffer.create () in
  ignore
    (Workload.Driver.run
       ~sink:(Memsim.Trace_buffer.sink trace)
       ~scale ~profile:Workload.Programs.espresso ~allocator:"bsd" ());
  scaling_trace_events := Memsim.Trace_buffer.length trace;
  let configs =
    List.filter
      (fun (c : Cachesim.Config.t) ->
        c.block_bytes = 32 && Cachesim.Policy.is_lru c.policy)
      Core.Runs.standard_configs
  in
  scaling_configs := List.length configs;
  let replay domains =
    let t0 = Unix.gettimeofday () in
    let results = Cachesim.Shard.replay ~domains ~configs trace in
    (Unix.gettimeofday () -. t0, List.map snd results)
  in
  (* Untimed sequential run: the stat-identity reference, and a warm-up
     so the first timed point does not pay one-off allocation costs. *)
  let _, reference = replay 1 in
  Printf.printf
    "sharded replay (%s): %d events x %d configs, set-partitioned\n"
    scaling_cell !scaling_trace_events !scaling_configs;
  List.iter
    (fun j ->
      let seconds, stats = replay j in
      let rate = float_of_int !scaling_trace_events /. seconds in
      let same = stats = reference in
      if not same then scaling_identical := false;
      scaling_curve := (j, seconds, rate) :: !scaling_curve;
      Printf.printf "  jobs=%d  %7.3f s  %8.2f M events/s%s\n" j seconds
        (rate /. 1e6)
        (if same then "" else "  [STATS DIVERGE FROM SEQUENTIAL]"))
    scaling_jobs;
  scaling_curve := List.rev !scaling_curve;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* External-trace ingest throughput                                   *)
(* ------------------------------------------------------------------ *)

(* Encode one grid cell's reference trace as a cachetrace text capture
   and as the compact binary, measure each reader's parse throughput
   into a counting sink, then replay the parsed events through the
   32-byte LRU forest family sharded over 1 and 2 domains — the path
   `loclab trace import --jobs` takes. *)
let ingest_jobs = [ 1; 2 ]
let ingest_events = ref 0
let ingest_text_bytes = ref 0
let ingest_binary_bytes = ref 0
let ingest_text_rate = ref 0.
let ingest_binary_rate = ref 0.

(* (jobs, wall seconds, events/s) in run order. *)
let ingest_replay : (int * float * float) list ref = ref []

let () =
  let buf = Memsim.Trace_buffer.create () in
  ignore
    (Workload.Driver.run
       ~sink:(Memsim.Trace_buffer.sink buf)
       ~scale ~profile:Workload.Programs.espresso ~allocator:"bsd" ());
  let encode fmt =
    Memsim.Trace.write fmt (fun sink -> Memsim.Trace_buffer.replay buf sink)
  in
  let text = encode Memsim.Trace.Source.Text in
  let binary = encode Memsim.Trace.Source.Binary in
  ingest_text_bytes := String.length text;
  ingest_binary_bytes := String.length binary;
  let time_read fmt data =
    let counter = Memsim.Sink.Counter.create () in
    let t0 = Unix.gettimeofday () in
    let n = Memsim.Trace.read fmt data (Memsim.Sink.Counter.sink counter) in
    (Unix.gettimeofday () -. t0, n)
  in
  (* Warm-up parses (one-off allocation costs), then the timed ones. *)
  let parsed = Memsim.Trace_buffer.create () in
  ingest_events :=
    Memsim.Trace.read Memsim.Trace.Source.Text text
      (Memsim.Trace_buffer.sink parsed);
  ignore (time_read Memsim.Trace.Source.Binary binary);
  let text_seconds, _ = time_read Memsim.Trace.Source.Text text in
  let binary_seconds, _ = time_read Memsim.Trace.Source.Binary binary in
  let rate seconds =
    if seconds > 0. then float_of_int !ingest_events /. seconds else 0.
  in
  ingest_text_rate := rate text_seconds;
  ingest_binary_rate := rate binary_seconds;
  Printf.printf
    "ingest readers (espresso/bsd): %d events — text %d bytes %.2f M \
     events/s, binary %d bytes %.2f M events/s\n"
    !ingest_events !ingest_text_bytes
    (!ingest_text_rate /. 1e6)
    !ingest_binary_bytes
    (!ingest_binary_rate /. 1e6);
  let configs =
    List.filter
      (fun (c : Cachesim.Config.t) ->
        c.block_bytes = 32 && Cachesim.Policy.is_lru c.policy)
      Core.Runs.standard_configs
  in
  List.iter
    (fun j ->
      let t0 = Unix.gettimeofday () in
      ignore (Cachesim.Shard.replay ~domains:j ~configs parsed);
      let seconds = Unix.gettimeofday () -. t0 in
      ingest_replay := (j, seconds, rate seconds) :: !ingest_replay;
      Printf.printf "  ingest replay jobs=%d  %7.3f s  %8.2f M events/s\n" j
        seconds
        (rate seconds /. 1e6))
    ingest_jobs;
  ingest_replay := List.rev !ingest_replay;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Serve traffic replay                                               *)
(* ------------------------------------------------------------------ *)

(* Replay a mixed warm/cold request stream against an in-process
   loclab serve on a temp unix socket, over the store part 1 just
   warmed: N concurrent clients, each issuing LOCLAB_SERVE_REQUESTS
   requests (default 100) — ~95% grid cells (store hits) and ~5%
   unique tiny-scale cold cells (simulated, write-through).  Per
   concurrency level the bench records wall time, requests/sec and
   client-observed p50/p99 latency.  LOCLAB_SERVE_CLIENTS overrides
   the level list (default "1,2,4"); LOCLAB_SERVE=0 skips the section.

   Single-core caveat: on a 1-core container the levels mostly measure
   queueing fairness, not parallel speedup — the server still answers
   warm requests at store-decode speed, which is the point. *)
let run_serve = Sys.getenv_opt "LOCLAB_SERVE" <> Some "0"

let serve_clients =
  let default = [ 1; 2; 4 ] in
  match Sys.getenv_opt "LOCLAB_SERVE_CLIENTS" with
  | None -> default
  | Some s ->
      let parsed =
        String.split_on_char ',' s
        |> List.filter_map (fun tok ->
               match int_of_string_opt (String.trim tok) with
               | Some c when c >= 1 -> Some c
               | _ -> None)
      in
      if parsed = [] then default else parsed

let serve_requests_per_client =
  match Sys.getenv_opt "LOCLAB_SERVE_REQUESTS" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 100)
  | None -> 100

(* One cold request per 20: request index 19, 39, ... of each client. *)
let serve_cold_every = 20

(* (clients, requests, seconds, requests/s, p50 us, p99 us) per level. *)
let serve_levels : (int * int * float * float * float * float) list ref =
  ref []

(* Server-side observability captured from /status after the replay:
   per-stage latency quantiles, access-log accounting, span drops. *)
let obs_stages : (string * int * float * float) list ref = ref []
let obs_access_written = ref 0
let obs_access_sampled = ref 0
let obs_spans_dropped = ref 0
let obs_slow_requests = ref 0

let () =
  if run_serve then begin
    let sock =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "loclab-bench-%d.sock" (Unix.getpid ()))
    in
    let access_log =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "loclab-bench-%d.access.jsonl" (Unix.getpid ()))
    in
    let server =
      Serve.Server.create ~jobs ~store ~access_log
        ~listen:(Serve.Protocol.Unix_path sock) ()
    in
    let server_thread = Thread.create (fun () -> Serve.Server.run server) () in
    let addr = Serve.Server.listen_addr server in
    let cells =
      (* The deduplicated grid, warm in the store after part 1. *)
      let seen = Hashtbl.create 64 in
      List.concat_map
        (fun (e : Core.Experiment.t) -> e.Core.Experiment.cells)
        Core.Experiment.all
      |> List.filter (fun c ->
             if Hashtbl.mem seen c then false
             else begin
               Hashtbl.replace seen c ();
               true
             end)
      |> Array.of_list
    in
    Printf.printf
      "serve traffic replay (%s): %d warm cells, %d requests/client, 1 cold \
       in %d\n"
      (Serve.Protocol.addr_to_string addr)
      (Array.length cells) serve_requests_per_client serve_cold_every;
    (* Unique coordinates per cold request, across every level, so a
       cold cell is never accidentally warmed by an earlier level. *)
    let cold_uid = Atomic.make 0 in
    List.iter
      (fun clients ->
        let n = clients * serve_requests_per_client in
        let latencies = Array.make n 0. in
        let t0 = Unix.gettimeofday () in
        let client ci =
          Serve.Client.with_connection addr (fun conn ->
              for r = 0 to serve_requests_per_client - 1 do
                let req =
                  if r mod serve_cold_every = serve_cold_every - 1 then
                    let k = Atomic.fetch_and_add cold_uid 1 in
                    Serve.Protocol.Run_cell
                      { program = "espresso";
                        allocator = "bsd";
                        scale = 0.011 +. (0.0001 *. float_of_int k) }
                  else
                    let program, allocator =
                      cells.((ci + r) mod Array.length cells)
                    in
                    Serve.Protocol.Run_cell { program; allocator; scale }
                in
                let q0 = Unix.gettimeofday () in
                (match Serve.Client.request conn req with
                | Ok (Serve.Protocol.Cell_ok _) -> ()
                | Ok (Serve.Protocol.Error { message; _ }) ->
                    failwith ("serve replay: server error: " ^ message)
                | Ok _ -> failwith "serve replay: unexpected response"
                | Error err ->
                    failwith
                      ("serve replay: " ^ Serve.Client.error_to_string err));
                latencies.((ci * serve_requests_per_client) + r) <-
                  (Unix.gettimeofday () -. q0) *. 1e6
              done)
        in
        let threads =
          List.init clients (fun ci -> Thread.create client ci)
        in
        List.iter Thread.join threads;
        let wall = Unix.gettimeofday () -. t0 in
        Array.sort compare latencies;
        let pct q =
          latencies.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))
        in
        let rps = float_of_int n /. wall in
        serve_levels := (clients, n, wall, rps, pct 0.5, pct 0.99) :: !serve_levels;
        Printf.printf
          "  clients=%d  %4d requests  %6.2f s  %7.1f req/s  p50 %7.0f us  \
           p99 %8.0f us\n"
          clients n wall rps (pct 0.5) (pct 0.99))
      serve_clients;
    serve_levels := List.rev !serve_levels;
    (* Scrape /status while the server still holds the replay's stage
       histograms: the per-stage quantiles are the observability data
       this bench exists to record. *)
    (match Serve.Client.http_get ~timeout:5.0 addr "/status" with
    | Error err ->
        failwith ("serve /status: " ^ Serve.Client.error_to_string err)
    | Ok body -> (
        match Metrics.Export.of_string body with
        | Error msg -> failwith ("serve /status: unparsable JSON: " ^ msg)
        | Ok status ->
            let open Metrics.Export in
            let mem path json =
              List.fold_left
                (fun j key -> Option.bind j (fun j -> member key j))
                (Some json) path
            in
            let geti path =
              Option.bind (mem path status) to_int_opt
              |> Option.value ~default:0
            in
            (match Option.bind (member "stages" status) to_list_opt with
            | None -> failwith "serve /status: no stages section"
            | Some stages ->
                obs_stages :=
                  List.filter_map
                    (fun s ->
                      match
                        ( Option.bind (member "stage" s) to_string_opt,
                          Option.bind (member "count" s) to_int_opt,
                          Option.bind (member "p50_us" s) to_float_opt,
                          Option.bind (member "p99_us" s) to_float_opt )
                      with
                      | Some name, Some count, Some p50, Some p99 ->
                          Some (name, count, p50, p99)
                      | _ -> None)
                    stages);
            obs_access_written := geti [ "access_log"; "written" ];
            obs_access_sampled := geti [ "access_log"; "sampled_out" ];
            obs_spans_dropped := geti [ "spans"; "dropped" ];
            obs_slow_requests :=
              (match
                 Option.bind (member "slow_requests" status) to_list_opt
               with
              | Some l -> List.length l
              | None -> 0);
            Printf.printf "server-side stage latency (from /status):\n";
            List.iter
              (fun (name, count, p50, p99) ->
                Printf.printf
                  "  %-18s %6d spans  p50 %8.1f us  p99 %9.1f us\n" name
                  count p50 p99)
              !obs_stages;
            Printf.printf
              "  access log: %d lines written, %d sampled out; %d slow \
               requests retained; %d spans dropped\n"
              !obs_access_written !obs_access_sampled !obs_slow_requests
              !obs_spans_dropped));
    Serve.Server.shutdown server;
    Thread.join server_thread;
    (try Sys.remove access_log with Sys_error _ -> ());
    print_newline ()
  end

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel micro-benchmarks                                  *)
(* ------------------------------------------------------------------ *)

(* One Test.make per paper table/figure: regeneration from the warm
   grid (simulation amortized away; measures the reporting pipeline).
   abl-flush and abl-lifetime run fresh simulations on every render, so
   looping them under Bechamel would re-simulate for seconds per sample;
   they are regenerated once in part 1 and skipped here. *)
let experiment_tests =
  Core.Experiment.all
  |> List.filter (fun e ->
         e.Core.Experiment.id <> "abl-flush"
         && e.Core.Experiment.id <> "abl-lifetime")
  |> List.map (fun e ->
         Test.make ~name:e.Core.Experiment.id
           (Staged.stage (fun () -> ignore (e.Core.Experiment.render ctx))))

(* Steady-state churn kernel: allocate four mixed-size objects, free
   them.  Exercises the fast path plus occasional refills. *)
let allocator_kernel key =
  let heap = Allocators.Heap.create () in
  let alloc = Allocators.Registry.build key heap in
  (* Prime the heap so the kernel measures steady state, not sbrk. *)
  let warm =
    List.init 256 (fun i ->
        Allocators.Allocator.malloc alloc (8 + (8 * (i mod 16))))
  in
  List.iter (Allocators.Allocator.free alloc) warm;
  Staged.stage (fun () ->
      let a = Allocators.Allocator.malloc alloc 24 in
      let b = Allocators.Allocator.malloc alloc 40 in
      let c = Allocators.Allocator.malloc alloc 128 in
      let d = Allocators.Allocator.malloc alloc 1024 in
      Allocators.Allocator.free alloc b;
      Allocators.Allocator.free alloc a;
      Allocators.Allocator.free alloc d;
      Allocators.Allocator.free alloc c)

let allocator_tests =
  List.map
    (fun spec ->
      let key = spec.Allocators.Registry.key in
      Test.make ~name:("alloc:" ^ key) (allocator_kernel key))
    Allocators.Registry.all

(* Substrate kernels. *)
let substrate_tests =
  let cache = Cachesim.Cache.create (Cachesim.Config.make (64 * 1024)) in
  let counter = ref 0 in
  let cache_kernel =
    Staged.stage (fun () ->
        incr counter;
        ignore
          (Cachesim.Cache.access_block cache ~kind:Memsim.Event.Read
             ~source:Memsim.Event.App ~block:(!counter * 37 land 0xFFFF)))
  in
  (* One probe serves the whole 32-byte LRU family of the standard
     sweep — the per-access cost amortized across every member at once,
     to set against substrate:cache-access (one member per probe).  The
     policy variants are not forest-simulable and get their own
     substrate:policy-* probes below. *)
  let forest =
    Cachesim.Forest.create
      (List.filter
         (fun (c : Cachesim.Config.t) ->
           c.block_bytes = 32 && Cachesim.Policy.is_lru c.policy)
         Core.Runs.standard_configs)
  in
  let fcounter = ref 0 in
  let forest_kernel =
    Staged.stage (fun () ->
        incr fcounter;
        ignore
          (Cachesim.Forest.access_block forest ~kind:Memsim.Event.Read
             ~source:Memsim.Event.App ~block:(!fcounter * 37 land 0xFFFF)))
  in
  (* The unboxing win on the consumer hot path, isolated: one 256-event
     delivery into the same forest family, once as a packed batch
     (two int loads per event, no allocation) and once as the boxed
     compat path took it before the packed rework (one decoded Event.t
     per reference). *)
  let family () =
    Cachesim.Forest.create
      (List.filter
         (fun (c : Cachesim.Config.t) ->
           c.block_bytes = 32 && Cachesim.Policy.is_lru c.policy)
         Core.Runs.standard_configs)
  in
  let delivery =
    let b = Memsim.Event.Batch.create ~capacity:256 () in
    for i = 0 to 255 do
      Memsim.Event.Batch.push b
        ~addr:(i * 1933 land 0xFFFF * 4)
        ~meta:((4 lsl 3) lor (if i land 7 = 0 then 4 else 0))
    done;
    b
  in
  let packed_forest = family () in
  let batch_packed_kernel =
    Staged.stage (fun () ->
        Cachesim.Forest.access_packed_batch packed_forest delivery)
  in
  let boxed_forest = family () in
  let batch_boxed_kernel =
    (* Materialise one Event.t per reference then consume it — the cost
       every delivery paid before the packed rework. *)
    Staged.stage (fun () ->
        for i = 0 to delivery.Memsim.Event.Batch.len - 1 do
          Cachesim.Forest.access boxed_forest
            (Memsim.Event.Packed.to_event
               ~addr:delivery.Memsim.Event.Batch.addrs.(i)
               ~meta:delivery.Memsim.Event.Batch.metas.(i))
        done)
  in
  let stack = Vmsim.Lru_stack.create () in
  let scounter = ref 0 in
  let stack_kernel =
    Staged.stage (fun () ->
        incr scounter;
        ignore (Vmsim.Lru_stack.access stack (!scounter * 31 land 0x3FF)))
  in
  (* The replacement-policy victim path: the same access stream against
     an 8-way cache under each family, setting the pseudo-LRU
     bookkeeping cost against the LRU stamp scheme. *)
  let policy_kernel policy =
    let cache =
      Cachesim.Cache.create
        (Cachesim.Config.make ~associativity:8 ~policy (64 * 1024))
    in
    let counter = ref 0 in
    Staged.stage (fun () ->
        incr counter;
        ignore
          (Cachesim.Cache.access_block cache ~kind:Memsim.Event.Read
             ~source:Memsim.Event.App ~block:(!counter * 37 land 0xFFFF)))
  in
  [ Test.make ~name:"substrate:cache-access" cache_kernel;
    Test.make ~name:"substrate:forest-access" forest_kernel;
    Test.make ~name:"substrate:forest-batch-packed" batch_packed_kernel;
    Test.make ~name:"substrate:forest-batch-boxed" batch_boxed_kernel;
    Test.make ~name:"substrate:policy-lru-8way" (policy_kernel Cachesim.Policy.Lru);
    Test.make ~name:"substrate:policy-plru-8way"
      (policy_kernel Cachesim.Policy.Plru);
    Test.make ~name:"substrate:policy-qlru-8way"
      (policy_kernel (Cachesim.Policy.Qlru Cachesim.Policy.qlru_h11_m1));
    Test.make ~name:"substrate:policy-random-8way"
      (policy_kernel (Cachesim.Policy.Random 1));
    Test.make ~name:"substrate:lru-stack-access" stack_kernel ]

let run_tests tests =
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let result = Analyze.one ols instance raw in
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              kernel_results := (Test.Elt.name elt, est) :: !kernel_results;
              Printf.printf "  %-28s %12.1f ns/run\n" (Test.Elt.name elt) est
          | _ -> Printf.printf "  %-28s (no estimate)\n" (Test.Elt.name elt))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)
(* BENCH json                                                         *)
(* ------------------------------------------------------------------ *)

(* Machine-readable copy of the headline numbers, for CI trend checks
   and EXPERIMENTS.md.  LOCLAB_BENCH_JSON overrides the path; set it to
   the empty string to skip the file. *)
let bench_json_path =
  match Sys.getenv_opt "LOCLAB_BENCH_JSON" with
  | Some "" -> None
  | Some p -> Some p
  | None -> Some "loclab-bench.json"

(* Bench-json format version: bump when the object shape changes, so CI
   consumers can detect files from another era.  4 added the "serve"
   traffic-replay section; 5 the "ingest" reader-throughput section;
   6 the "obs" server-side stage-latency section. *)
let bench_format = 6

let git_rev () =
  let read cmd =
    let ic = Unix.open_process_in cmd in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
    | exception Unix.Unix_error _ -> None
  in
  match read "git rev-parse --short HEAD 2>/dev/null" with
  | Some rev -> rev
  | None | (exception Sys_error _) -> "unknown"

(* Some true = uncommitted changes, Some false = clean, None = not a
   git checkout (or git unavailable). *)
let git_dirty () =
  let ic = Unix.open_process_in "git status --porcelain 2>/dev/null" in
  let b = Buffer.create 64 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> Some (Buffer.length b > 0)
  | _ -> None
  | exception Unix.Unix_error _ -> None

(* A path under results/ is a recorded baseline: committed alongside
   the rev it claims to describe, so writing one from a dirty or
   rev-less tree is refused unless LOCLAB_BENCH_ALLOW_DIRTY=1 opts into
   recording it with "dirty": true. *)
let is_recorded_path path =
  List.mem "results" (String.split_on_char '/' path)

(* Grid throughput of the boxed per-event pipeline (the commit before
   the packed rework), remeasured on this container at scale 0.25,
   jobs=1, immediately before the packed run was recorded — absolute
   numbers drift with machine load, so only a same-machine pairing is
   meaningful (the 4.0M figure in results/bench-scale0.25.json predates
   that load; see EXPERIMENTS.md). *)
let baseline_events_per_sec = 2_221_941.

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_bench_json ~rev ~dirty path =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"meta\": {\n";
  Printf.fprintf oc "    \"bench_format\": %d,\n" bench_format;
  Printf.fprintf oc "    \"git_rev\": \"%s\",\n" (json_escape rev);
  Printf.fprintf oc "    \"dirty\": %b,\n" dirty;
  Printf.fprintf oc "    \"artifact_schema_version\": %d,\n"
    Core.Artifact.schema_version;
  Printf.fprintf oc "    \"generated_at\": \"%s\",\n"
    (iso8601 (Unix.gettimeofday ()));
  Printf.fprintf oc "    \"micro_benchmarks\": %b\n" run_micro;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"scale\": %g,\n" scale;
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"grid\": {\n";
  Printf.fprintf oc "    \"fill_seconds\": %.3f,\n" !fill_seconds;
  Printf.fprintf oc "    \"events\": %d,\n" !grid_events;
  Printf.fprintf oc "    \"events_per_sec\": %.0f,\n"
    (float_of_int !grid_events /. !fill_seconds);
  Printf.fprintf oc "    \"baseline_events_per_sec\": %.0f,\n"
    baseline_events_per_sec;
  Printf.fprintf oc "    \"speedup_vs_baseline\": %.2f\n"
    (float_of_int !grid_events /. !fill_seconds /. baseline_events_per_sec);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"scaling\": {\n";
  Printf.fprintf oc "    \"trace_cell\": \"%s\",\n" (json_escape scaling_cell);
  Printf.fprintf oc "    \"trace_events\": %d,\n" !scaling_trace_events;
  Printf.fprintf oc "    \"configs\": %d,\n" !scaling_configs;
  Printf.fprintf oc "    \"stat_identical\": %b,\n" !scaling_identical;
  Printf.fprintf oc "    \"curve\": [";
  let base_seconds =
    match !scaling_curve with
    | (_, s, _) :: _ -> s
    | [] -> 0.
  in
  List.iteri
    (fun i (j, seconds, rate) ->
      Printf.fprintf oc
        "%s\n      { \"jobs\": %d, \"seconds\": %.3f, \"events_per_sec\": \
         %.0f, \"speedup\": %.2f }"
        (if i = 0 then "" else ",")
        j seconds rate
        (if seconds > 0. then base_seconds /. seconds else 0.))
    !scaling_curve;
  if !scaling_curve <> [] then Printf.fprintf oc "\n    ";
  Printf.fprintf oc "]\n";
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"ingest\": {\n";
  Printf.fprintf oc "    \"events\": %d,\n" !ingest_events;
  Printf.fprintf oc "    \"text_bytes\": %d,\n" !ingest_text_bytes;
  Printf.fprintf oc "    \"binary_bytes\": %d,\n" !ingest_binary_bytes;
  Printf.fprintf oc "    \"text_read_events_per_sec\": %.0f,\n"
    !ingest_text_rate;
  Printf.fprintf oc "    \"binary_read_events_per_sec\": %.0f,\n"
    !ingest_binary_rate;
  Printf.fprintf oc "    \"replay\": [";
  List.iteri
    (fun i (j, seconds, rate) ->
      Printf.fprintf oc
        "%s\n      { \"jobs\": %d, \"seconds\": %.3f, \"events_per_sec\": \
         %.0f }"
        (if i = 0 then "" else ",")
        j seconds rate)
    !ingest_replay;
  if !ingest_replay <> [] then Printf.fprintf oc "\n    ";
  Printf.fprintf oc "]\n";
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"store\": {\n";
  Printf.fprintf oc "    \"cold_fill_seconds\": %.3f,\n" !fill_seconds;
  Printf.fprintf oc "    \"cold_store_hits\": %d,\n" !cold_hits;
  Printf.fprintf oc "    \"cold_simulated\": %d,\n" !cold_simulated;
  Printf.fprintf oc "    \"warm_fill_seconds\": %.3f,\n" !warm_fill_seconds;
  Printf.fprintf oc "    \"warm_store_hits\": %d,\n" !warm_hits;
  Printf.fprintf oc "    \"warm_simulated\": %d,\n" !warm_simulated;
  Printf.fprintf oc "    \"speedup\": %.1f\n"
    (!fill_seconds /. !warm_fill_seconds);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"serve\": {\n";
  Printf.fprintf oc "    \"enabled\": %b,\n" run_serve;
  Printf.fprintf oc "    \"requests_per_client\": %d,\n"
    serve_requests_per_client;
  Printf.fprintf oc "    \"cold_every\": %d,\n" serve_cold_every;
  Printf.fprintf oc "    \"levels\": [";
  List.iteri
    (fun i (clients, n, seconds, rps, p50, p99) ->
      Printf.fprintf oc
        "%s\n      { \"clients\": %d, \"requests\": %d, \"seconds\": %.3f, \
         \"requests_per_sec\": %.1f, \"p50_us\": %.0f, \"p99_us\": %.0f }"
        (if i = 0 then "" else ",")
        clients n seconds rps p50 p99)
    !serve_levels;
  if !serve_levels <> [] then Printf.fprintf oc "\n    ";
  Printf.fprintf oc "]\n";
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"obs\": {\n";
  Printf.fprintf oc "    \"enabled\": %b,\n" run_serve;
  Printf.fprintf oc "    \"access_log_written\": %d,\n" !obs_access_written;
  Printf.fprintf oc "    \"access_log_sampled_out\": %d,\n"
    !obs_access_sampled;
  Printf.fprintf oc "    \"slow_requests_retained\": %d,\n"
    !obs_slow_requests;
  Printf.fprintf oc "    \"spans_dropped\": %d,\n" !obs_spans_dropped;
  Printf.fprintf oc "    \"stages\": [";
  List.iteri
    (fun i (name, count, p50, p99) ->
      Printf.fprintf oc
        "%s\n      { \"stage\": \"%s\", \"count\": %d, \"p50_us\": %.1f, \
         \"p99_us\": %.1f }"
        (if i = 0 then "" else ",")
        (json_escape name) count p50 p99)
    !obs_stages;
  if !obs_stages <> [] then Printf.fprintf oc "\n    ";
  Printf.fprintf oc "]\n";
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"kernels_ns_per_run\": {";
  let kernels = List.rev !kernel_results in
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "%s\n    \"%s\": %.1f"
        (if i = 0 then "" else ",")
        (json_escape name) est)
    kernels;
  if kernels <> [] then Printf.fprintf oc "\n  ";
  Printf.fprintf oc "}\n}\n";
  close_out oc

let () =
  if run_micro then begin
    Printf.printf
      "\n================ Bechamel micro-benchmarks ================\n";
    Printf.printf "\nAllocator churn kernels (4 mallocs + 4 frees per run):\n";
    run_tests allocator_tests;
    Printf.printf "\nSimulator substrate kernels:\n";
    run_tests substrate_tests;
    Printf.printf
      "\nExperiment regeneration (warm grid), one per table/figure:\n";
    run_tests experiment_tests
  end;
  let refused =
    match bench_json_path with
    | None -> false
    | Some path ->
        let rev = git_rev () in
        let dirty =
          match git_dirty () with Some d -> d | None -> true
        in
        let unclean = dirty || rev = "unknown" in
        let allow_dirty =
          Sys.getenv_opt "LOCLAB_BENCH_ALLOW_DIRTY" = Some "1"
        in
        if is_recorded_path path && unclean && not allow_dirty then begin
          Printf.eprintf
            "refusing to write recorded bench result %s: %s.\n\
             Commit first so the result matches a rev, or set \
             LOCLAB_BENCH_ALLOW_DIRTY=1 to record it with \"dirty\": true.\n"
            path
            (if rev = "unknown" then "git revision is unknown"
             else "the working tree has uncommitted changes");
          true
        end
        else begin
          write_bench_json ~rev ~dirty:unclean path;
          Printf.printf "\nbench json written to %s\n" path;
          false
        end
  in
  if store_is_temp then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat store_dir f))
      (Sys.readdir store_dir);
    Unix.rmdir store_dir
  end;
  if refused then exit 1
