(* loclab — reproduce the tables and figures of Grunwald, Zorn &
   Henderson, "Improving the Cache Locality of Memory Allocation"
   (PLDI 1993), from trace-driven simulation of synthetic re-creations
   of the paper's five allocation-intensive programs. *)

open Cmdliner

(* Every shared knob resolves through Core.Context.Options.build with
   precedence flag > LOCLAB_* environment > default, so run, all,
   report, probe, profile, serve and the bench agree on semantics.  The
   flags are therefore all optional here: an absent flag lets the
   builder consult the environment. *)

let scale_arg =
  let doc =
    "Workload scale (1.0 = the calibrated full runs, ~1:50 of the paper's \
     instruction counts with absolute retained-heap sizes).  Smaller is \
     faster but noisier; page-fault curves want >= 0.5.  Defaults to \
     $(b,LOCLAB_SCALE), else 0.25."
  in
  Arg.(value & opt (some float) None & info [ "s"; "scale" ] ~docv:"SCALE" ~doc)

let penalty_arg =
  let doc =
    "Cache miss penalty in cycles.  Defaults to $(b,LOCLAB_PENALTY), else \
     25 (the paper's value)."
  in
  Arg.(value & opt (some int) None & info [ "p"; "penalty" ] ~docv:"CYCLES" ~doc)

let cpu_arg =
  let doc =
    "Modern CPU hierarchy preset detailed by the tabcpu experiment \
     (L1/L2/L3 shapes, replacement policies and latencies).  One of "     ^ String.concat ", " (Cachesim.Cpu.keys ())
    ^ ".  Defaults to $(b,LOCLAB_CPU), else skylake."
  in
  let cpu_conv =
    Arg.enum (List.map (fun (c : Cachesim.Cpu.t) -> (c.key, c)) Cachesim.Cpu.all)
  in
  Arg.(
    value & opt (some cpu_conv) None & info [ "cpu" ] ~docv:"CPU" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for filling the run grid (0 = one per core).  \
     Defaults to $(b,LOCLAB_JOBS), else 1.  Output is bit-identical for \
     every value; jobs only change wall-clock time."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let store_arg =
  let doc =
    "Persistent artifact store directory (created if absent).  Finished \
     grid cells are written through to it and later runs read them back \
     instead of simulating; a warm store renders byte-identically to a \
     cold one.  Defaults to $(b,LOCLAB_STORE); empty means no store."
  in
  Arg.(
    value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let resolve_options ?scale ?penalty ?jobs ?store_dir ?cpu () =
  match Core.Context.Options.build ?scale ?penalty ?jobs ?store_dir ?cpu () with
  | Ok o -> o
  | Error msg ->
      Printf.eprintf "loclab: %s\n" msg;
      exit 2

let open_store dir =
  try Store.open_ dir
  with Sys_error msg ->
    Printf.eprintf "loclab: cannot open store %s: %s\n" dir msg;
    exit 2

let make_ctx (o : Core.Context.Options.t) =
  try Core.Context.of_options o
  with Sys_error msg ->
    Printf.eprintf "loclab: cannot open store: %s\n" msg;
    exit 2

(* Progress and store diagnostics go through Logs; the format reporter
   sends every non-App level to stderr, so table/figure stdout stays
   byte-comparable between warm and cold runs. *)
let setup_logs () = Telemetry.setup_logging ~default:(Some Logs.Info) ()

(* ---- telemetry output ----------------------------------------------- *)

let metrics_out_arg =
  let doc =
    "Write a metrics snapshot to $(docv) after the command finishes \
     (Prometheus text format, or JSON when the file ends in .json) and \
     enable metric recording for the whole run.  Recording is pure \
     observation: tables, figures and stored artifacts are byte-identical \
     with or without it."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out_arg =
  let doc =
    "Write a Chrome trace-event JSON file to $(docv) after the command \
     finishes (load it in Perfetto or chrome://tracing) and enable span \
     recording — grid cells, pool tasks, store I/O, experiment renders."
  in
  Arg.(
    value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let enable_telemetry ~metrics_out ~trace_out =
  if metrics_out <> None then
    Telemetry.Metrics.set_enabled Telemetry.Metrics.default true;
  if trace_out <> None then Telemetry.Span.set_enabled true

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_metrics path =
  let snap = Telemetry.Metrics.snapshot Telemetry.Metrics.default in
  let body =
    if Filename.check_suffix path ".json" then Telemetry.Metrics.to_json snap
    else Telemetry.Metrics.to_prometheus snap
  in
  write_file path body;
  Logs.info (fun m -> m "wrote metrics snapshot to %s" path)

let write_trace path =
  Telemetry.Span.write_chrome ~path;
  Logs.info (fun m ->
      m "wrote %d trace events to %s (%d dropped)" (Telemetry.Span.recorded ())
        path
        (Telemetry.Span.dropped ()))

let write_telemetry ~metrics_out ~trace_out =
  Option.iter write_metrics metrics_out;
  Option.iter write_trace trace_out

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Render one experiment and log (id, store-hit/simulated deltas,
   elapsed) — the per-experiment progress line for [all]/[report]. *)
let render_with_progress ctx (e : Core.Experiment.t) =
  let runs = ctx.Core.Context.runs in
  let h0 = Core.Runs.store_hits runs and s0 = Core.Runs.simulated runs in
  let out, dt = timed (fun () -> Core.Experiment.run ctx e.Core.Experiment.id) in
  Logs.info (fun m ->
      m "%-13s %2d cells (+%d store, +%d simulated)  %6.2fs"
        e.Core.Experiment.id
        (List.length e.Core.Experiment.cells)
        (Core.Runs.store_hits runs - h0)
        (Core.Runs.simulated runs - s0)
        dt);
  out

let grid_summary ctx =
  let runs = ctx.Core.Context.runs in
  Logs.info (fun m ->
      m "grid: %d cells from store, %d simulated"
        (Core.Runs.store_hits runs) (Core.Runs.simulated runs))

(* ---- list ---------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "Experiments (loclab run <id>):";
    List.iter
      (fun e ->
        Printf.printf "  %-14s %-45s [%s]\n" e.Core.Experiment.id
          e.Core.Experiment.title e.Core.Experiment.paper_ref)
      Core.Experiment.all;
    print_endline "\nPrograms (synthetic re-creations, lib/workload):";
    List.iter
      (fun p ->
        Printf.printf "  %-10s %s\n" p.Workload.Profile.key
          p.Workload.Profile.description)
      Workload.Programs.all;
    print_endline "\nAllocators (lib/allocators):";
    List.iter
      (fun s ->
        Printf.printf "  %-15s %s\n" s.Allocators.Registry.key
          s.Allocators.Registry.description)
      Allocators.Registry.all;
    print_endline "\nCPU presets (loclab run --cpu <key> tabcpu):";
    List.iter
      (fun c -> Format.printf "  @[%a@]@." Cachesim.Cpu.pp c)
      Cachesim.Cpu.all
  in
  let doc = "List experiments, programs and allocators." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- run ----------------------------------------------------------- *)

let run_cmd =
  let ids_arg =
    let doc = "Experiment ids (see $(b,loclab list)); e.g. fig2 tab4." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run scale penalty cpu jobs store_dir metrics_out trace_out ids =
    (* Validate ids before paying for any simulation. *)
    List.iter
      (fun id ->
        match Core.Experiment.find id with
        | _ -> ()
        | exception Not_found ->
            Printf.eprintf "loclab: unknown experiment %S (try: loclab list)\n"
              id;
            exit 2)
      ids;
    enable_telemetry ~metrics_out ~trace_out;
    let ctx =
      make_ctx (resolve_options ?scale ?penalty ?jobs ?store_dir ?cpu ())
    in
    (* Fill every needed grid cell in parallel before rendering; the
       renderings below then only read the memo. *)
    Core.Experiment.warm ctx ids;
    List.iter
      (fun id ->
        print_endline (Core.Experiment.run ctx id);
        print_newline ())
      ids;
    grid_summary ctx;
    write_telemetry ~metrics_out ~trace_out
  in
  let doc = "Regenerate the given tables/figures." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ scale_arg $ penalty_arg $ cpu_arg $ jobs_arg $ store_arg
      $ metrics_out_arg $ trace_out_arg $ ids_arg)

(* ---- all ----------------------------------------------------------- *)

let all_cmd =
  let run scale penalty cpu jobs store_dir metrics_out trace_out =
    enable_telemetry ~metrics_out ~trace_out;
    let ctx =
      make_ctx (resolve_options ?scale ?penalty ?jobs ?store_dir ?cpu ())
    in
    List.iter
      (fun e ->
        let out = render_with_progress ctx e in
        Printf.printf "================ %s ================\n%s\n"
          e.Core.Experiment.id out)
      Core.Experiment.all;
    grid_summary ctx;
    write_telemetry ~metrics_out ~trace_out
  in
  let doc = "Regenerate every table and figure (shares one run grid)." in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ scale_arg $ penalty_arg $ cpu_arg $ jobs_arg $ store_arg
      $ metrics_out_arg $ trace_out_arg)

(* ---- report --------------------------------------------------------- *)

let report_cmd =
  let run scale penalty cpu jobs store_dir metrics_out trace_out =
    enable_telemetry ~metrics_out ~trace_out;
    let o = resolve_options ?scale ?penalty ?jobs ?store_dir ?cpu () in
    let dir =
      match o.Core.Context.Options.store_dir with
      | Some dir -> dir
      | None ->
          Printf.eprintf
            "loclab report: a warm artifact store is required (--store DIR \
             or LOCLAB_STORE).\n";
          exit 2
    in
    let scale = o.Core.Context.Options.scale in
    let ctx = make_ctx o in
    let runs = ctx.Core.Context.runs in
    let wanted =
      List.concat_map (fun e -> e.Core.Experiment.cells) Core.Experiment.all
    in
    let total = List.length (List.sort_uniq compare wanted) in
    (match Core.Runs.load runs wanted with
    | [] -> ()
    | (p, a) :: _ as missing when List.length missing = total ->
        Printf.eprintf
          "loclab report: store %s is cold: all %d grid cells missing at \
           scale %g (first: %s/%s).\n\
           Fill it first:  loclab all --store %s --scale %g\n"
          dir (List.length missing) scale p a dir scale;
        exit 1
    | missing ->
        (* A mostly-warm store with a few corrupt or missing cells
           degrades to re-simulating just those (and healing the
           store), never to a failed report. *)
        Logs.warn (fun m ->
            m "store %s: %d of %d grid cells missing or corrupt; \
               re-simulating them" dir (List.length missing) total));
    List.iter
      (fun e ->
        let out = render_with_progress ctx e in
        Printf.printf "================ %s ================\n%s\n"
          e.Core.Experiment.id out)
      Core.Experiment.all;
    grid_summary ctx;
    write_telemetry ~metrics_out ~trace_out
  in
  let doc =
    "Regenerate every table and figure from a warm artifact store \
     without simulating any grid cell.  A fully cold store is an error; \
     isolated missing or corrupt cells are re-simulated (with a \
     warning) and healed.  Output is byte-identical to $(b,loclab all)."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ scale_arg $ penalty_arg $ cpu_arg $ jobs_arg $ store_arg
      $ metrics_out_arg $ trace_out_arg)

(* ---- store --------------------------------------------------------- *)

let require_store store_dir sub =
  let o = resolve_options ?store_dir () in
  match o.Core.Context.Options.store_dir with
  | Some dir -> open_store dir
  | None ->
      Printf.eprintf "loclab store %s: --store DIR or LOCLAB_STORE required.\n"
        sub;
      exit 2

let short d = if String.length d > 12 then String.sub d 0 12 else d

let store_ls_cmd =
  let run store_dir =
    let store = require_store store_dir "ls" in
    let digests = Store.ls store in
    List.iter
      (fun digest ->
        match Store.find store ~digest with
        | Store.Hit payload -> (
            match Core.Artifact.decode_meta payload with
            | Ok m ->
                Printf.printf
                  "%s  %-10s %-14s scale %-5g seed %-6d schema %d  %7d bytes\n"
                  (short digest) m.Core.Artifact.program
                  m.Core.Artifact.allocator m.Core.Artifact.scale
                  m.Core.Artifact.seed m.Core.Artifact.schema_version
                  (String.length payload)
            | Error reason ->
                Printf.printf "%s  <unreadable metadata: %s>\n" (short digest)
                  reason)
        | Store.Corrupt reason ->
            Printf.printf "%s  <corrupt: %s>\n" (short digest) reason
        | Store.Miss -> ())
      digests;
    Printf.printf "%d cells in %s\n" (List.length digests) (Store.root store)
  in
  let doc = "List the cells in the store with their decoded metadata." in
  Cmd.v (Cmd.info "ls" ~doc) Term.(const run $ store_arg)

let store_verify_cmd =
  let run store_dir =
    let store = require_store store_dir "verify" in
    let bad = ref 0 in
    let cells = Store.verify store in
    List.iter
      (fun (digest, r) ->
        match r with
        | Error reason ->
            incr bad;
            Printf.printf "%s  BAD frame: %s\n" (short digest) reason
        | Ok bytes -> (
            match Store.find store ~digest with
            | Store.Miss | Store.Corrupt _ ->
                incr bad;
                Printf.printf "%s  BAD: vanished between passes\n" (short digest)
            | Store.Hit payload -> (
                match Core.Artifact.decode_meta payload with
                | Error reason ->
                    incr bad;
                    Printf.printf "%s  BAD metadata: %s\n" (short digest) reason
                | Ok m when
                    m.Core.Artifact.schema_version
                    <> Core.Artifact.schema_version ->
                    (* Readable but unreachable: digests of the current
                       schema never collide with it.  Not an error. *)
                    Printf.printf "%s  foreign schema %d (%s/%s) — gc'able\n"
                      (short digest) m.Core.Artifact.schema_version
                      m.Core.Artifact.program m.Core.Artifact.allocator
                | Ok m -> (
                    match Core.Artifact.decode payload with
                    | Error reason ->
                        incr bad;
                        Printf.printf "%s  BAD body: %s\n" (short digest) reason
                    | Ok _ when Core.Artifact.digest_of_meta m <> digest ->
                        incr bad;
                        Printf.printf
                          "%s  BAD: metadata digests to %s (misfiled cell)\n"
                          (short digest)
                          (short (Core.Artifact.digest_of_meta m))
                    | Ok _ ->
                        Printf.printf "%s  ok  %-10s %-14s %7d bytes\n"
                          (short digest) m.Core.Artifact.program
                          m.Core.Artifact.allocator bytes))))
      cells;
    if !bad > 0 then begin
      Printf.printf "%d of %d cells bad\n" !bad (List.length cells);
      exit 1
    end
    else Printf.printf "verified %d cells, all ok\n" (List.length cells)
  in
  let doc =
    "Re-read every cell, checking frame CRC, metadata, body decode and \
     content address; exits 1 if any cell is bad."
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ store_arg)

let store_gc_cmd =
  let run store_dir =
    let store = require_store store_dir "gc" in
    let removed =
      Store.gc store ~keep:(fun ~digest ~payload ->
          match Core.Artifact.decode_meta payload with
          | Error _ -> false
          | Ok m ->
              m.Core.Artifact.schema_version = Core.Artifact.schema_version
              && Core.Artifact.digest_of_meta m = digest
              && Result.is_ok (Core.Artifact.decode payload))
    in
    List.iter (fun f -> Printf.printf "removed %s\n" f) removed;
    Printf.printf "%d files removed, %d cells kept\n" (List.length removed)
      (List.length (Store.ls store))
  in
  let doc =
    "Remove corrupt cells, leftover temp files, foreign-schema cells \
     and misfiled cells."
  in
  Cmd.v (Cmd.info "gc" ~doc) Term.(const run $ store_arg)

let store_export_cmd =
  let format_arg =
    let doc = "Output format: $(b,jsonl) (one object per cell) or $(b,csv) \
               (long format, one row per cell x cache config)." in
    Arg.(
      value
      & opt (enum [ ("jsonl", `Jsonl); ("csv", `Csv) ]) `Jsonl
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let run store_dir format =
    let store = require_store store_dir "export" in
    let artifacts =
      List.filter_map
        (fun digest ->
          match Store.find store ~digest with
          | Store.Hit payload -> (
              match Core.Artifact.decode payload with
              | Ok a -> Some a
              | Error reason ->
                  Logs.warn (fun m ->
                      m "export: skipping %s (%s)" (short digest) reason);
                  None)
          | Store.Miss | Store.Corrupt _ -> None)
        (Store.ls store)
    in
    let coord (a : Core.Artifact.t) =
      let m = a.Core.Artifact.meta in
      (m.Core.Artifact.program, m.Core.Artifact.allocator, m.Core.Artifact.scale)
    in
    let artifacts =
      List.sort (fun a b -> compare (coord a) (coord b)) artifacts
    in
    (match format with
    | `Jsonl ->
        List.iter (fun a -> print_endline (Core.Artifact.to_json a)) artifacts
    | `Csv ->
        print_endline (Metrics.Export.csv_row Core.Artifact.csv_header);
        List.iter
          (fun a ->
            List.iter
              (fun row -> print_endline (Metrics.Export.csv_row row))
              (Core.Artifact.to_csv_rows a))
          artifacts);
    Logs.info (fun m -> m "exported %d cells" (List.length artifacts))
  in
  let doc = "Export every decodable cell as JSON-lines or CSV on stdout." in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ store_arg $ format_arg)

let store_cmd =
  let doc = "Inspect and maintain a persistent artifact store." in
  Cmd.group (Cmd.info "store" ~doc)
    [ store_ls_cmd; store_verify_cmd; store_gc_cmd; store_export_cmd ]

(* ---- probe --------------------------------------------------------- *)

let probe_cmd =
  let program_arg =
    let doc = "Program profile key (see $(b,loclab list))." in
    Arg.(value & opt string "gs-large" & info [ "program" ] ~docv:"KEY" ~doc)
  in
  let alloc_arg =
    let doc = "Allocator key (see $(b,loclab list))." in
    Arg.(value & opt string "quickfit" & info [ "allocator" ] ~docv:"KEY" ~doc)
  in
  let run scale penalty store_dir program allocator =
    (match Workload.Programs.find program with
    | _ -> ()
    | exception Not_found ->
        Printf.eprintf "loclab: unknown program %S\n" program;
        exit 2);
    if
      allocator <> "custom"
      && not (List.mem allocator (Allocators.Registry.keys ()))
    then begin
      Printf.eprintf "loclab: unknown allocator %S\n" allocator;
      exit 2
    end;
    let o = resolve_options ?scale ?penalty ?store_dir () in
    let ctx = make_ctx o in
    let d = Core.Runs.get ctx.Core.Context.runs ~profile:program ~allocator in
    let s = d.Core.Artifact.summary in
    let st = d.Core.Artifact.alloc_stats in
    Printf.printf "%s under %s (scale %.2f)\n" program allocator
      o.Core.Context.Options.scale;
    Printf.printf "  cell digest       %s (schema %d, trace checksum %x)\n"
      (Core.Artifact.digest_of_meta d.Core.Artifact.meta)
      d.Core.Artifact.meta.Core.Artifact.schema_version
      d.Core.Artifact.meta.Core.Artifact.trace_checksum;
    Printf.printf "  instructions      %s (app %s, malloc %s, free %s)\n"
      (Metrics.Table.fmt_int s.Core.Artifact.instructions)
      (Metrics.Table.fmt_int s.Core.Artifact.app_instructions)
      (Metrics.Table.fmt_int s.Core.Artifact.malloc_instructions)
      (Metrics.Table.fmt_int s.Core.Artifact.free_instructions);
    Printf.printf "  data references   %s (allocator %s)\n"
      (Metrics.Table.fmt_int s.Core.Artifact.data_refs)
      (Metrics.Table.fmt_int s.Core.Artifact.allocator_refs);
    Printf.printf "  time in alloc     %s\n"
      (Metrics.Table.fmt_pct (Core.Artifact.allocator_fraction d));
    Printf.printf "  objects           %s allocated, %s freed\n"
      (Metrics.Table.fmt_int st.Allocators.Alloc_stats.malloc_calls)
      (Metrics.Table.fmt_int st.Allocators.Alloc_stats.free_calls);
    Printf.printf "  heap              sbrk %s, max live %s, frag %s\n"
      (Metrics.Table.fmt_kb s.Core.Artifact.heap_used)
      (Metrics.Table.fmt_kb s.Core.Artifact.max_live_bytes)
      (Metrics.Table.fmt_pct
         (Allocators.Alloc_stats.internal_fragmentation st));
    List.iter
      (fun (cfg, s) ->
        Printf.printf "  %-9s miss rate %6.3f%%  (app %.3f%%, alloc %.3f%%)\n"
          cfg.Cachesim.Config.name
          (Cachesim.Stats.miss_rate_pct s)
          (100. *. Cachesim.Stats.source_miss_rate s Memsim.Event.App)
          (100.
          *. (let a =
                s.Cachesim.Stats.malloc_accesses
                + s.Cachesim.Stats.free_accesses
              and m =
                s.Cachesim.Stats.malloc_misses + s.Cachesim.Stats.free_misses
              in
              if a = 0 then 0. else float_of_int m /. float_of_int a)))
      d.Core.Artifact.caches;
    let et64 =
      Core.Artifact.exec_time d ~model:ctx.Core.Context.model ~cache:"64K-dm"
    in
    Printf.printf "  est. time (64K)   %.3f s (%.3f s in misses)\n"
      (Metrics.Exec_time.total_seconds et64)
      (Metrics.Exec_time.miss_seconds et64)
  in
  let doc = "Deep-dive one (program, allocator) pair." in
  Cmd.v (Cmd.info "probe" ~doc)
    Term.(
      const run $ scale_arg $ penalty_arg $ store_arg $ program_arg $ alloc_arg)

(* ---- record / replay ------------------------------------------------ *)

let record_cmd =
  let program_arg =
    let doc = "Program profile key." in
    Arg.(value & opt string "espresso" & info [ "program" ] ~docv:"KEY" ~doc)
  in
  let alloc_arg =
    let doc = "Allocator key." in
    Arg.(value & opt string "quickfit" & info [ "allocator" ] ~docv:"KEY" ~doc)
  in
  let out_arg =
    let doc = "Output trace file." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run scale program allocator out =
    (match Workload.Programs.find program with
    | _ -> ()
    | exception Not_found ->
        Printf.eprintf "loclab: unknown program %S\n" program;
        exit 2);
    let scale = (resolve_options ?scale ()).Core.Context.Options.scale in
    let result =
      Memsim.Trace_file.record_to_file out (fun sink ->
          Workload.Driver.run ~sink ~scale
            ~profile:(Workload.Programs.find program)
            ~allocator ())
    in
    Printf.printf "recorded %s events (%s, %s, scale %.2f) to %s\n"
      (Metrics.Table.fmt_int result.Workload.Driver.data_refs)
      program allocator scale out
  in
  let doc = "Record a workload's reference trace to a file." in
  Cmd.v (Cmd.info "record" ~doc)
    Term.(const run $ scale_arg $ program_arg $ alloc_arg $ out_arg)

let replay_cmd =
  let file_arg =
    let doc = "Trace file produced by $(b,loclab record)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let multi = Cachesim.Multi.create Cachesim.Config.paper_direct_mapped in
    let pages = Vmsim.Page_sim.create () in
    let counter = Memsim.Sink.Counter.create () in
    let sink =
      Memsim.Sink.fanout
        [ Cachesim.Multi.sink multi;
          Vmsim.Page_sim.sink pages;
          Memsim.Sink.Counter.sink counter ]
    in
    let n = Memsim.Trace_file.replay_file file sink in
    Printf.printf "replayed %s events from %s\n\n" (Metrics.Table.fmt_int n)
      file;
    List.iter
      (fun (name, pct) -> Printf.printf "  %-9s miss rate %6.3f%%\n" name pct)
      (Cachesim.Multi.miss_rate_series multi);
    Printf.printf "\n  footprint %s, page faults at footprint/2: %s\n"
      (Metrics.Table.fmt_kb (Vmsim.Page_sim.footprint_bytes pages))
      (Metrics.Table.fmt_int
         (Vmsim.Page_sim.faults pages
            ~memory_bytes:(max 4096 (Vmsim.Page_sim.footprint_bytes pages / 2))))
  in
  let doc = "Replay a recorded trace through the cache and page simulators." in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg)

(* ---- trace ----------------------------------------------------------- *)

let trace_format_conv = Arg.enum Memsim.Trace.Source.all_formats

let trace_file_arg =
  let doc = "Trace file: recorded binary, framed binary, cachetrace text \
             ($(b,R 0xADDR) / $(b,W 0xADDR) lines) or per-access CSV." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Input trace format ($(b,binary) | $(b,text) | $(b,csv) | $(b,framed)).  \
     Sniffed from the file's leading bytes when absent."
  in
  Arg.(
    value
    & opt (some trace_format_conv) None
    & info [ "format" ] ~docv:"FORMAT" ~doc)

let slurp_trace path =
  try Memsim.Trace.slurp path
  with Sys_error msg ->
    Printf.eprintf "loclab: cannot read %s: %s\n" path msg;
    exit 2

let resolve_trace_format format data =
  match format with
  | Some f -> f
  | None -> Memsim.Trace.Source.sniff data

let trace_import_cmd =
  let run jobs store_dir format file =
    let ctx = make_ctx (resolve_options ?jobs ?store_dir ()) in
    let runs = ctx.Core.Context.runs in
    let data = slurp_trace file in
    let fmt = resolve_trace_format format data in
    match Core.Runs.ingest runs ~format:fmt ~data with
    | exception Failure msg ->
        Printf.eprintf "loclab: %s\n" msg;
        exit 2
    | art ->
        let m = art.Core.Artifact.meta in
        Printf.printf "digest %s\n" (Core.Artifact.digest_of_meta m);
        Printf.printf "cell   %s (%s capture, %s bytes, %s events)\n"
          m.Core.Artifact.program
          (Memsim.Trace.Source.format_to_string fmt)
          (Metrics.Table.fmt_int (String.length data))
          (Metrics.Table.fmt_int
             art.Core.Artifact.summary.Core.Artifact.data_refs);
        grid_summary ctx
  in
  let doc =
    "Import an external trace: simulate it across the standard cache \
     sweep (or answer from the store when the same event stream was seen \
     before, under any capture format) and print its cell digest."
  in
  Cmd.v (Cmd.info "import" ~doc)
    Term.(const run $ jobs_arg $ store_arg $ trace_format_arg $ trace_file_arg)

let trace_export_cmd =
  let to_arg =
    let doc =
      "Output trace format ($(b,binary) | $(b,text) | $(b,csv) | \
       $(b,framed)).  Text and CSV carry kind and address only; binary \
       and framed are lossless."
    in
    Arg.(
      required
      & opt (some trace_format_conv) None
      & info [ "to" ] ~docv:"FORMAT" ~doc)
  in
  let out_arg =
    let doc = "Output file (stdout when absent)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let run format target out file =
    let data = slurp_trace file in
    let fmt = resolve_trace_format format data in
    (* A streaming transcode: the reader's packed batches feed the
       target writer's sink directly. *)
    match
      Memsim.Trace.write target (fun sink ->
          ignore (Memsim.Trace.read fmt data sink))
    with
    | exception Failure msg ->
        Printf.eprintf "loclab: %s\n" msg;
        exit 2
    | encoded -> (
        match out with
        | None -> print_string encoded
        | Some path ->
            write_file path encoded;
            Printf.printf "wrote %s (%s, %s bytes)\n" path
              (Memsim.Trace.Source.format_to_string target)
              (Metrics.Table.fmt_int (String.length encoded)))
  in
  let doc = "Transcode a trace between capture formats." in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(
      const run $ trace_format_arg $ to_arg $ out_arg $ trace_file_arg)

let trace_run_cmd =
  let run jobs store_dir format file =
    let ctx = make_ctx (resolve_options ?jobs ?store_dir ()) in
    let source = Memsim.Trace.of_path ?format file in
    match Core.Experiment.run_source ctx source with
    | exception Failure msg ->
        Printf.eprintf "loclab: %s\n" msg;
        exit 2
    | report ->
        print_endline report;
        grid_summary ctx
  in
  let doc =
    "Import an external trace and render its full per-cell report \
     (provenance, stream identity, cache sweep, hierarchy, footprint)."
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ jobs_arg $ store_arg $ trace_format_arg $ trace_file_arg)

let trace_cmd =
  let doc =
    "Work with external reference traces: import (simulate + store), \
     export (transcode between text, CSV, binary and framed captures) \
     and run (render the full report)."
  in
  Cmd.group (Cmd.info "trace" ~doc)
    [ trace_import_cmd; trace_export_cmd; trace_run_cmd ]

(* ---- profile -------------------------------------------------------- *)

(* One profiled cell: simulate (program, allocator) with every probe on
   and feed the windowed time series.  Returns the driver result so the
   caller can print a summary line. *)
let profile_cell ~series ~scale ~window ~program ~allocator =
  Telemetry.Span.with_span ~cat:"cell" (program ^ "/" ^ allocator) @@ fun () ->
  let prof = Workload.Programs.find program in
  let heap = Allocators.Heap.create () in
  let alloc = Allocators.Registry.build allocator heap in
  let multi = Cachesim.Multi.create Core.Runs.standard_configs in
  let pages = Vmsim.Page_sim.create () in
  let counter = Memsim.Sink.Counter.create () in
  (* Per-window deltas need the previous cumulative readings; the
     simulators' stats records are live and sampleable mid-run. *)
  let prev_cache =
    List.map (fun (cfg, _) -> (cfg.Cachesim.Config.name, ref 0, ref 0))
      (Cachesim.Multi.results multi)
  in
  let prev_src = Hashtbl.create 3 in
  let add_row ~window ~events name value =
    Telemetry.Probe.Series.add series
      [ program;
        allocator;
        string_of_int window;
        string_of_int events;
        name;
        value ]
  in
  let sample ~window ~events =
    List.iter2
      (fun (cfg, (st : Cachesim.Stats.t)) (_, pa, pm) ->
        let da = st.Cachesim.Stats.accesses - !pa
        and dm = st.Cachesim.Stats.misses - !pm in
        pa := st.Cachesim.Stats.accesses;
        pm := st.Cachesim.Stats.misses;
        let rate =
          if da = 0 then 0. else 100. *. float_of_int dm /. float_of_int da
        in
        add_row ~window ~events
          ("miss_rate:" ^ cfg.Cachesim.Config.name)
          (Printf.sprintf "%.4f" rate))
      (Cachesim.Multi.results multi)
      prev_cache;
    List.iter
      (fun (key, src) ->
        let now = Memsim.Sink.Counter.by_source counter src in
        let before =
          Option.value ~default:0 (Hashtbl.find_opt prev_src key)
        in
        Hashtbl.replace prev_src key now;
        add_row ~window ~events ("refs:" ^ key) (string_of_int (now - before)))
      [ ("app", Memsim.Event.App);
        ("malloc", Memsim.Event.Malloc);
        ("free", Memsim.Event.Free) ];
    add_row ~window ~events "live_bytes"
      (string_of_int
         (Allocators.Allocator.stats alloc).Allocators.Alloc_stats.live_bytes);
    add_row ~window ~events "footprint_bytes"
      (string_of_int (Vmsim.Page_sim.footprint_bytes pages))
  in
  let windows = Telemetry.Probe.Windows.create ~every:window ~f:sample in
  (* The window tap goes last so its siblings have absorbed everything
     up to the window edge when [sample] reads them. *)
  let sink =
    Memsim.Sink.fanout
      [ Cachesim.Multi.sink multi;
        Vmsim.Page_sim.sink pages;
        Memsim.Sink.Counter.sink counter;
        Telemetry.Probe.Windows.sink windows ]
  in
  let result = Workload.Driver.run_with ~sink ~scale ~profile:prof ~heap ~alloc () in
  Telemetry.Probe.Windows.flush windows;
  (result, Telemetry.Probe.Windows.windows_fired windows)

let profile_cmd =
  let program_arg =
    let doc = "Program profile key (see $(b,loclab list))." in
    Arg.(value & opt string "espresso" & info [ "program" ] ~docv:"KEY" ~doc)
  in
  let allocs_arg =
    let doc = "Comma-separated allocator keys to profile side by side." in
    Arg.(
      value
      & opt string "firstfit,quickfit"
      & info [ "allocators" ] ~docv:"KEYS" ~doc)
  in
  let window_arg =
    let doc = "Events per probe window (the time-series resolution)." in
    Arg.(value & opt int 100_000 & info [ "window" ] ~docv:"EVENTS" ~doc)
  in
  let series_out_arg =
    let doc = "Per-window time-series CSV output file." in
    Arg.(
      value
      & opt string "loclab-series.csv"
      & info [ "series-out" ] ~docv:"FILE" ~doc)
  in
  let pmetrics_arg =
    let doc = "Metrics snapshot output (Prometheus text, JSON if .json)." in
    Arg.(
      value
      & opt string "loclab-metrics.prom"
      & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let ptrace_arg =
    let doc = "Chrome trace-event JSON output (Perfetto-loadable)." in
    Arg.(
      value
      & opt string "loclab-trace.json"
      & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let run scale penalty program allocs window series_out metrics_out trace_out =
    ignore penalty;
    let scale = (resolve_options ?scale ()).Core.Context.Options.scale in
    if window < 1 then begin
      Printf.eprintf "loclab: window must be >= 1\n";
      exit 2
    end;
    (match Workload.Programs.find program with
    | _ -> ()
    | exception Not_found ->
        Printf.eprintf "loclab: unknown program %S\n" program;
        exit 2);
    let allocators =
      String.split_on_char ',' allocs
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if allocators = [] then begin
      Printf.eprintf "loclab: no allocators given\n";
      exit 2
    end;
    List.iter
      (fun a ->
        if a = "custom" then begin
          Printf.eprintf
            "loclab profile: \"custom\" is synthesized per profile; pick a \
             registry allocator\n";
          exit 2
        end;
        if not (List.mem a (Allocators.Registry.keys ())) then begin
          Printf.eprintf "loclab: unknown allocator %S\n" a;
          exit 2
        end)
      allocators;
    Telemetry.Metrics.set_enabled Telemetry.Metrics.default true;
    Telemetry.Span.set_enabled true;
    let series =
      Telemetry.Probe.Series.create
        ~columns:[ "program"; "allocator"; "window"; "events"; "series";
                   "value" ]
    in
    Printf.printf "profiling %s at scale %g, %d-event windows\n" program scale
      window;
    List.iter
      (fun allocator ->
        let result, fired =
          profile_cell ~series ~scale ~window ~program ~allocator
        in
        let h = Allocators.Alloc_metrics.search_length ~allocator in
        Printf.printf
          "  %-12s %s refs, %d windows; fit searches: %s, mean length %.2f\n"
          allocator
          (Metrics.Table.fmt_int result.Workload.Driver.data_refs)
          fired
          (Metrics.Table.fmt_int (Telemetry.Metrics.Histogram.count h))
          (Telemetry.Metrics.Histogram.mean h))
      allocators;
    Telemetry.Probe.Series.write_csv series ~path:series_out;
    write_metrics metrics_out;
    write_trace trace_out;
    Printf.printf "wrote %s (%d rows), %s, %s\n" series_out
      (Telemetry.Probe.Series.length series) metrics_out trace_out
  in
  let doc =
    "Run one or more (program, allocator) cells with every probe on: \
     windowed miss-rate / reference-mix / footprint time series (CSV), \
     allocator-internal metrics (Prometheus snapshot) and a span trace \
     (Chrome JSON for Perfetto).  Profiling never changes simulation \
     results; it only observes them."
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ scale_arg $ penalty_arg $ program_arg $ allocs_arg
      $ window_arg $ series_out_arg $ pmetrics_arg $ ptrace_arg)

(* ---- serve / client -------------------------------------------------- *)

let default_listen = "unix:/tmp/loclab.sock"

let parse_addr s =
  match Serve.Protocol.addr_of_string s with
  | Ok addr -> addr
  | Error msg ->
      Printf.eprintf "loclab: bad address %S: %s\n" s msg;
      exit 2

let serve_cmd =
  let listen_arg =
    let doc =
      "Listen address: $(b,unix:PATH), $(b,tcp:HOST:PORT) (port 0 picks a \
       free one), or a bare socket path."
    in
    Arg.(value & opt string default_listen & info [ "listen" ] ~docv:"ADDR" ~doc)
  in
  let max_pending_arg =
    let doc =
      "Per-connection bound on decoded-but-unanswered requests (the \
       pipelining backpressure limit)."
    in
    Arg.(value & opt int 32 & info [ "max-pending" ] ~docv:"N" ~doc)
  in
  let access_log_arg =
    let doc =
      "Write one JSON object per served request to $(docv) ($(b,-) = \
       stdout): timestamp, request id, peer, kind, per-stage durations, \
       outcome, bytes, warm/cold, queue depth at admission."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"PATH" ~doc)
  in
  let access_sample_arg =
    let doc =
      "Write every $(docv)th access-log line (sampling for high QPS; \
       requests traced with the force-sample flag are always written)."
    in
    Arg.(value & opt int 1 & info [ "access-log-sample" ] ~docv:"N" ~doc)
  in
  let run jobs store_dir listen max_pending access_log access_log_sample =
    let o = resolve_options ?jobs ?store_dir () in
    let addr = parse_addr listen in
    let store = Option.map open_store o.Core.Context.Options.store_dir in
    let server =
      try
        Serve.Server.create ~max_pending ~jobs:o.Core.Context.Options.jobs
          ?store ?access_log ~access_log_sample ~listen:addr ()
      with
      | Failure msg | Invalid_argument msg ->
          Printf.eprintf "loclab serve: %s\n" msg;
          exit 2
      | Unix.Unix_error (err, _, _) ->
          Printf.eprintf "loclab serve: cannot listen on %s: %s\n"
            (Serve.Protocol.addr_to_string addr)
            (Unix.error_message err);
          exit 2
    in
    (* Ctrl-C / kill -INT drain gracefully: accepted requests finish,
       replies are written, then the process exits 0.  A second signal
       during the drain is harmless (shutdown is idempotent). *)
    let graceful = Sys.Signal_handle (fun _ -> Serve.Server.shutdown server) in
    Sys.set_signal Sys.sigint graceful;
    Sys.set_signal Sys.sigterm graceful;
    Printf.printf "listening on %s\n%!"
      (Serve.Protocol.addr_to_string (Serve.Server.listen_addr server));
    Serve.Server.run server
  in
  let doc =
    "Serve simulations over a versioned binary protocol (plus plain HTTP \
     $(b,GET /metrics), $(b,GET /health) and $(b,GET /status) on the same \
     address).  Cell requests are answered from the artifact store when \
     warm and simulated on worker domains — with store write-through — \
     when cold.  Every request is traced end to end; see \
     $(b,--access-log) and $(b,loclab top)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ jobs_arg $ store_arg $ listen_arg $ max_pending_arg
      $ access_log_arg $ access_sample_arg)

let client_cmd =
  let connect_arg =
    let doc = "Server address (as $(b,loclab serve --listen))." in
    Arg.(
      value & opt string default_listen & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let out_arg =
    let doc =
      "Write the fetched artifact bytes to $(docv) (cell and ingest only)."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let action_arg =
    let doc =
      "$(b,health) | $(b,stats) | $(b,metrics) | $(b,cell) PROGRAM ALLOCATOR \
       | $(b,experiment) ID | $(b,ingest) FILE [FORMAT]"
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ACTION" ~doc)
  in
  let timeout_arg =
    let doc =
      "Receive timeout in seconds (0 = wait forever): a wedged server \
       fails the request instead of hanging the client."
    in
    Arg.(
      value
      & opt float 0.
      & info [ "timeout" ]
          ~env:(Cmd.Env.info "LOCLAB_CLIENT_TIMEOUT")
          ~docv:"SECONDS" ~doc)
  in
  let request_id_arg =
    let doc =
      "Send this request id (1-32 hex digits) instead of generating one."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "request-id" ] ~docv:"HEX" ~doc)
  in
  let no_trace_arg =
    let doc =
      "Send a version-1 request without a trace context (as pre-tracing \
       clients do)."
    in
    Arg.(value & flag & info [ "no-trace" ] ~doc)
  in
  let run scale connect out timeout request_id no_trace action =
    let o = resolve_options ?scale () in
    let scale = o.Core.Context.Options.scale in
    let addr = parse_addr connect in
    let timeout = if timeout > 0. then Some timeout else None in
    let trace =
      if no_trace then None
      else begin
        let trace_id =
          match request_id with
          | Some id when Telemetry.Rctx.valid_id id ->
              String.lowercase_ascii id
          | Some id ->
              Printf.eprintf
                "loclab client: bad request id %S (want 1-32 hex digits)\n" id;
              exit 2
          | None -> Telemetry.Rctx.fresh_id ()
        in
        (* One-shot interactive requests are always worth a log line;
           ask the server to bypass access-log sampling. *)
        Some
          { Serve.Protocol.trace_id;
            trace_flags = Serve.Protocol.flag_force_sample }
      end
    in
    (* The id goes to stderr so stdout stays the payload (digests,
       metrics text, artifacts) scripts already parse. *)
    (match trace with
    | Some tc -> Printf.eprintf "request id %s\n%!" tc.Serve.Protocol.trace_id
    | None -> ());
    let req =
      match action with
      | [ "health" ] -> Serve.Protocol.Health
      | [ "stats" ] -> Serve.Protocol.Stats
      | [ "metrics" ] -> Serve.Protocol.Metrics
      | [ "cell"; program; allocator ] ->
          Serve.Protocol.Run_cell { program; allocator; scale }
      | [ "experiment"; id ] -> Serve.Protocol.Run_experiment { id; scale }
      | "ingest" :: file :: rest ->
          let trace = slurp_trace file in
          let format =
            match rest with
            | [] ->
                Memsim.Trace.Source.format_to_string
                  (Memsim.Trace.Source.sniff trace)
            | [ f ] -> f
            | _ ->
                Printf.eprintf "loclab client: ingest takes FILE [FORMAT]\n";
                exit 2
          in
          Serve.Protocol.Ingest { format; trace }
      | _ ->
          Printf.eprintf
            "loclab client: expected health | stats | metrics | cell PROGRAM \
             ALLOCATOR | experiment ID | ingest FILE [FORMAT]\n";
          exit 2
    in
    let reply =
      try
        Serve.Client.with_connection ?timeout addr (fun c ->
            let r = Serve.Client.request_traced ?trace c req in
            (match (trace, r) with
            | Some sent, Ok (_, Some echoed)
              when echoed.Serve.Protocol.trace_id
                   <> sent.Serve.Protocol.trace_id ->
                Printf.eprintf "request id adopted as %s\n%!"
                  echoed.Serve.Protocol.trace_id
            | Some _, _ when Serve.Client.downgraded c ->
                Printf.eprintf
                  "note: server predates request tracing; retried untraced\n%!"
            | _ -> ());
            Result.map fst r)
      with Unix.Unix_error (err, _, _) ->
        Printf.eprintf "loclab client: cannot connect to %s: %s\n"
          (Serve.Protocol.addr_to_string addr)
          (Unix.error_message err);
        exit 1
    in
    match reply with
    | Error err ->
        Printf.eprintf "loclab client: %s\n"
          (Serve.Client.error_to_string err);
        exit 1
    | Ok (Serve.Protocol.Error { code; message }) ->
        Printf.eprintf "loclab client: server error (%s): %s\n"
          (Serve.Protocol.error_code_to_string code)
          message;
        exit 1
    | Ok (Serve.Protocol.Health_ok { server_version; protocol_version }) ->
        Printf.printf "ok: %s (protocol %d)\n" server_version protocol_version
    | Ok (Serve.Protocol.Stats_ok s) ->
        Printf.printf
          "uptime        %.1fs\n\
           connections   %d\n\
           requests      %d (%d errors, %d in flight)\n\
           cells         %d warm, %d simulated\n\
           latency       p50 %.0fus, p99 %.0fus\n"
          s.Serve.Protocol.uptime_seconds s.Serve.Protocol.connections
          s.Serve.Protocol.requests s.Serve.Protocol.errors
          s.Serve.Protocol.inflight s.Serve.Protocol.warm_cells
          s.Serve.Protocol.simulated_cells s.Serve.Protocol.p50_us
          s.Serve.Protocol.p99_us
    | Ok (Serve.Protocol.Metrics_ok text) | Ok (Serve.Protocol.Report_ok text)
      ->
        print_string text
    | Ok (Serve.Protocol.Cell_ok { digest; artifact }) -> (
        Printf.printf "digest %s\n" digest;
        (match Core.Artifact.decode_meta artifact with
        | Ok m ->
            Printf.printf "cell   %s/%s scale %g seed %d schema %d (%d bytes)\n"
              m.Core.Artifact.program m.Core.Artifact.allocator
              m.Core.Artifact.scale m.Core.Artifact.seed
              m.Core.Artifact.schema_version (String.length artifact)
        | Error reason ->
            Printf.eprintf "loclab client: undecodable artifact: %s\n" reason;
            exit 1);
        match out with
        | None -> ()
        | Some path ->
            write_file path artifact;
            Printf.printf "wrote %s\n" path)
  in
  let doc =
    "Query a running $(b,loclab serve): health, stats, a metrics snapshot, \
     one grid cell (printing its digest, optionally saving the artifact \
     bytes), a rendered experiment, or an external trace ingestion.  \
     Requests carry a generated (or $(b,--request-id)) trace id, printed \
     to stderr, that the server's access log, $(b,/status) slow-request \
     table and span trace all key on."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ scale_arg $ connect_arg $ out_arg $ timeout_arg
      $ request_id_arg $ no_trace_arg $ action_arg)

(* ---- top -------------------------------------------------------------- *)

(* A refreshing terminal view over a running server's /status and
   /metrics endpoints — enough of a dashboard for a terminal, with no
   scraping stack required. *)

let fmt_us us =
  if Float.is_nan us || us <= 0. then "-"
  else if us < 1000. then Printf.sprintf "%.0fus" us
  else if us < 1e6 then Printf.sprintf "%.1fms" (us /. 1e3)
  else Printf.sprintf "%.2fs" (us /. 1e6)

(* Pull `name{kind="x"} 42` rows out of the Prometheus text. *)
let prom_kind_counts text name =
  let prefix = name ^ "{kind=\"" in
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         if not (String.length line > String.length prefix
                 && String.sub line 0 (String.length prefix) = prefix)
         then None
         else
           match String.index_from_opt line (String.length prefix) '"' with
           | None -> None
           | Some q -> (
               let kind =
                 String.sub line (String.length prefix)
                   (q - String.length prefix)
               in
               match String.rindex_opt line ' ' with
               | None -> None
               | Some sp -> (
                   match
                     int_of_string_opt
                       (String.trim
                          (String.sub line (sp + 1)
                             (String.length line - sp - 1)))
                   with
                   | Some v -> Some (kind, v)
                   | None -> None)))

let render_top ~addr_text ~status ~metrics_text b =
  let open Metrics.Export in
  let mem path j =
    List.fold_left (fun acc k -> Option.bind acc (member k)) (Some j) path
  in
  let int_at path d = Option.value ~default:d (Option.bind (mem path status) to_int_opt) in
  let float_at path d =
    Option.value ~default:d (Option.bind (mem path status) to_float_opt)
  in
  let str_at path d =
    Option.value ~default:d (Option.bind (mem path status) to_string_opt)
  in
  let list_at path =
    Option.value ~default:[] (Option.bind (mem path status) to_list_opt)
  in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "loclab top — %s — %s" addr_text
    (Telemetry.Rctx.iso8601 (Unix.gettimeofday ()));
  line "%s  protocol %d-%d  artifact schema %d  up %.1fs"
    (str_at [ "server"; "version" ] "?")
    (int_at [ "server"; "protocol_min" ] 0)
    (int_at [ "server"; "protocol_max" ] 0)
    (int_at [ "server"; "artifact_schema" ] 0)
    (float_at [ "server"; "uptime_seconds" ] 0.);
  line "";
  line "requests  total %d  errors %d  inflight %d  warm %d  simulated %d"
    (int_at [ "requests"; "total" ] 0)
    (int_at [ "requests"; "errors" ] 0)
    (int_at [ "requests"; "inflight" ] 0)
    (int_at [ "requests"; "warm_cells" ] 0)
    (int_at [ "requests"; "simulated_cells" ] 0);
  (match prom_kind_counts metrics_text "loclab_serve_requests_total" with
  | [] -> ()
  | kinds ->
      line "kinds     %s"
        (String.concat "  "
           (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) kinds)));
  line "latency   p50 %s  p90 %s  p99 %s  (n=%d, mean %s)"
    (fmt_us (float_at [ "latency_us"; "p50" ] 0.))
    (fmt_us (float_at [ "latency_us"; "p90" ] 0.))
    (fmt_us (float_at [ "latency_us"; "p99" ] 0.))
    (int_at [ "latency_us"; "count" ] 0)
    (fmt_us (float_at [ "latency_us"; "mean" ] 0.));
  line "spans     recorded %d  dropped %d"
    (int_at [ "spans"; "recorded" ] 0)
    (int_at [ "spans"; "dropped" ] 0);
  (match mem [ "access_log" ] status with
  | Some (Obj _ as a) ->
      line "access    written %d  sampled_out %d  write_errors %d  (every %d)"
        (Option.value ~default:0 (Option.bind (member "written" a) to_int_opt))
        (Option.value ~default:0
           (Option.bind (member "sampled_out" a) to_int_opt))
        (Option.value ~default:0
           (Option.bind (member "write_errors" a) to_int_opt))
        (Option.value ~default:1 (Option.bind (member "sample" a) to_int_opt))
  | _ -> ());
  let stages = list_at [ "stages" ] in
  if stages <> [] then begin
    line "";
    line "%-20s %8s %10s %10s" "stage" "count" "p50" "p99";
    List.iter
      (fun s ->
        line "%-20s %8d %10s %10s"
          (Option.value ~default:"?"
             (Option.bind (member "stage" s) to_string_opt))
          (Option.value ~default:0 (Option.bind (member "count" s) to_int_opt))
          (fmt_us
             (Option.value ~default:0.
                (Option.bind (member "p50_us" s) to_float_opt)))
          (fmt_us
             (Option.value ~default:0.
                (Option.bind (member "p99_us" s) to_float_opt))))
      stages
  end;
  let queues = list_at [ "connections"; "queues" ] in
  line "";
  line "connections (%d open)" (int_at [ "connections"; "open" ] 0);
  List.iter
    (fun c ->
      line "  cid %-4d peer %-21s pending %d"
        (Option.value ~default:0 (Option.bind (member "cid" c) to_int_opt))
        (Option.value ~default:"?" (Option.bind (member "peer" c) to_string_opt))
        (Option.value ~default:0
           (Option.bind (member "pending" c) to_int_opt)))
    queues;
  (match list_at [ "single_flight" ] with
  | [] -> ()
  | keys ->
      line "single-flight (%d)" (List.length keys);
      List.iter
        (fun k ->
          line "  %s" (Option.value ~default:"?" (to_string_opt k)))
        keys);
  match list_at [ "slow_requests" ] with
  | [] -> ()
  | slow ->
      line "";
      line "%-18s %9s %-10s %-8s %s" "slowest" "total" "kind" "outcome"
        "cell";
      List.iter
        (fun r ->
          line "%-18s %9s %-10s %-8s %s"
            (Option.value ~default:"?"
               (Option.bind (member "request_id" r) to_string_opt))
            (fmt_us
               (Option.value ~default:0.
                  (Option.bind (member "total_us" r) to_float_opt)))
            (Option.value ~default:"?"
               (Option.bind (member "kind" r) to_string_opt))
            (Option.value ~default:"?"
               (Option.bind (member "outcome" r) to_string_opt))
            (match Option.bind (member "cell" r) to_string_opt with
            | Some c -> c
            | None -> "-"))
        slow

let top_cmd =
  let connect_arg =
    let doc = "Server address (as $(b,loclab serve --listen))." in
    Arg.(
      value & opt string default_listen & info [ "connect" ] ~docv:"ADDR" ~doc)
  in
  let interval_arg =
    let doc = "Refresh interval in seconds." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let once_arg =
    let doc = "Render one snapshot and exit (no screen clearing)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let run connect interval once =
    let addr = parse_addr connect in
    let addr_text = Serve.Protocol.addr_to_string addr in
    let fetch path =
      match Serve.Client.http_get ~timeout:5.0 addr path with
      | Ok body -> body
      | Error err ->
          Printf.eprintf "loclab top: %s: %s\n" path
            (Serve.Client.error_to_string err);
          exit 1
    in
    let snapshot () =
      let status_text = fetch "/status" in
      let metrics_text = fetch "/metrics" in
      match Metrics.Export.of_string status_text with
      | Error msg ->
          Printf.eprintf "loclab top: undecodable /status: %s\n" msg;
          exit 1
      | Ok status ->
          let b = Buffer.create 1024 in
          render_top ~addr_text ~status ~metrics_text b;
          Buffer.contents b
    in
    if once then print_string (snapshot ())
    else begin
      let rec loop () =
        let body = snapshot () in
        (* Clear + home, then the frame: flicker-free enough without a
           curses dependency. *)
        Printf.printf "\027[2J\027[H%s%!" body;
        Unix.sleepf (Float.max 0.1 interval);
        loop ()
      in
      loop ()
    end
  in
  let doc =
    "Live terminal view of a running $(b,loclab serve): polls \
     $(b,/status) and $(b,/metrics) over the server's plain-HTTP side \
     and renders RED counters, latency and per-stage quantiles, open \
     connections and queue depths, in-flight single-flight keys and the \
     slowest requests.  $(b,--once) prints a single snapshot (for \
     scripts and CI)."
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const run $ connect_arg $ interval_arg $ once_arg)

let main =
  let doc =
    "Reproduction of 'Improving the Cache Locality of Memory Allocation' \
     (PLDI 1993)"
  in
  let info = Cmd.info "loclab" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ list_cmd; run_cmd; all_cmd; report_cmd; store_cmd; probe_cmd;
      profile_cmd; record_cmd; replay_cmd; trace_cmd; serve_cmd; client_cmd;
      top_cmd ]

let () =
  setup_logs ();
  exit (Cmd.eval main)
