(** Regeneration of the paper's Tables 2–6. *)

val tab2 : Context.t -> string
(** Test-program performance information (FirstFit baseline). *)

val tab3 : Context.t -> string
(** Characteristics of the three GhostScript input sets. *)

val tab4 : Context.t -> string
(** Total estimated execution time and miss time, 16 K cache. *)

val tab5 : Context.t -> string
(** Same with a 64 K cache. *)

val tab6 : Context.t -> string
(** Effect of boundary tags on GNU local (emulated 8-byte tags),
    64 K cache. *)

val tabcpu : Context.t -> string
(** Extension: the paper's allocator ranking re-run on the modern
    {!Cachesim.Cpu} presets (L1/L2/L3 with tree-PLRU/QLRU policies) —
    one table ranking every allocator across all presets, plus a
    per-level detail table for the preset in {!Context.t.cpu}. *)
