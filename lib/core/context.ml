type t = {
  runs : Runs.t;
  model : Metrics.Cost_model.t;
  cpu : Cachesim.Cpu.t;
}

let create ?scale ?jobs ?store ?(model = Metrics.Cost_model.paper)
    ?(cpu = Cachesim.Cpu.skylake) () =
  { runs = Runs.create ?scale ?jobs ?store (); model; cpu }

module Options = struct
  type t = {
    scale : float;
    penalty : int;
    jobs : int;
    store_dir : string option;
    cpu : Cachesim.Cpu.t;
  }

  let default =
    { scale = 0.25;
      penalty = 25;
      jobs = 1;
      store_dir = None;
      cpu = Cachesim.Cpu.skylake }

  let ( let* ) = Result.bind

  (* Resolve one option: explicit flag > LOCLAB_* environment variable >
     built-in default.  A flag value silences the environment entirely
     (even an unparseable one); a present-but-invalid environment value
     is an error naming the variable, never a silent fallback. *)
  let pick ~flag ~getenv ~env ~parse ~default =
    match flag with
    | Some v -> Result.Ok v
    | None -> (
        match getenv env with
        | None -> Result.Ok default
        | Some raw -> (
            match parse (String.trim raw) with
            | Result.Ok _ as ok -> ok
            | Result.Error msg ->
                Result.Error (Printf.sprintf "%s=%S: %s" env raw msg)))

  let check_scale scale =
    if scale > 0. && scale <= 4.0 then Result.Ok scale
    else Result.Error "scale must be in (0, 4]"

  let check_penalty p =
    if p >= 0 then Result.Ok p else Result.Error "penalty must be >= 0"

  let check_jobs jobs =
    if jobs < 0 then Result.Error "jobs must be >= 0"
    else Result.Ok (if jobs = 0 then Exec.Pool.recommended_jobs () else jobs)

  let parse_float what s =
    match float_of_string_opt s with
    | Some f -> Result.Ok f
    | None -> Result.Error (Printf.sprintf "not a %s" what)

  let parse_int s =
    match int_of_string_opt s with
    | Some i -> Result.Ok i
    | None -> Result.Error "not an integer"

  let parse_cpu key =
    match Cachesim.Cpu.find key with
    | cpu -> Result.Ok cpu
    | exception Invalid_argument msg -> Result.Error msg

  let build ?(getenv = Sys.getenv_opt) ?scale ?penalty ?jobs ?store_dir ?cpu
      () =
    let* scale =
      (* Validation runs inside [pick]'s parse so an out-of-range
         environment value is reported naming its variable; the outer
         check covers the flag path (idempotent on the env path). *)
      let* s =
        pick ~flag:scale ~getenv ~env:"LOCLAB_SCALE"
          ~parse:(fun s ->
            let* f = parse_float "number" s in
            check_scale f)
          ~default:default.scale
      in
      check_scale s
    in
    let* penalty =
      let* p =
        pick ~flag:penalty ~getenv ~env:"LOCLAB_PENALTY"
          ~parse:(fun s ->
            let* i = parse_int s in
            check_penalty i)
          ~default:default.penalty
      in
      check_penalty p
    in
    let* jobs =
      let* j =
        pick ~flag:jobs ~getenv ~env:"LOCLAB_JOBS"
          ~parse:(fun s ->
            let* i = parse_int s in
            check_jobs i)
          ~default:default.jobs
      in
      check_jobs j
    in
    let* store_dir =
      (* An empty LOCLAB_STORE (or --store "") means "no store", not a
         store rooted at the current directory. *)
      let* d =
        pick ~flag:(Option.map Option.some store_dir) ~getenv
          ~env:"LOCLAB_STORE"
          ~parse:(fun s -> Result.Ok (Some s))
          ~default:None
      in
      Result.Ok (match d with Some "" -> None | d -> d)
    in
    let* cpu =
      pick ~flag:cpu ~getenv ~env:"LOCLAB_CPU" ~parse:parse_cpu
        ~default:default.cpu
    in
    Result.Ok { scale; penalty; jobs; store_dir; cpu }
end

let of_options (o : Options.t) =
  let model = Metrics.Cost_model.with_penalty Metrics.Cost_model.paper o.penalty in
  match o.store_dir with
  | None -> create ~scale:o.scale ~jobs:o.jobs ~model ~cpu:o.cpu ()
  | Some dir ->
      create ~scale:o.scale ~jobs:o.jobs ~store:(Store.open_ dir) ~model
        ~cpu:o.cpu ()

let five_programs =
  [ ("espresso", "Espresso"); ("gs-large", "GS"); ("ptc", "PTC");
    ("gawk", "Gawk"); ("make", "Make") ]

let paper_allocators =
  [ ("firstfit", "FirstFit"); ("gnu-g++", "GNU G++"); ("bsd", "BSD");
    ("gnu-local", "GNU local"); ("quickfit", "QuickFit") ]

let with_custom = paper_allocators @ [ ("custom", "Custom") ]
