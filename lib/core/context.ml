type t = {
  runs : Runs.t;
  model : Metrics.Cost_model.t;
  cpu : Cachesim.Cpu.t;
}

let create ?scale ?jobs ?store ?(model = Metrics.Cost_model.paper)
    ?(cpu = Cachesim.Cpu.skylake) () =
  { runs = Runs.create ?scale ?jobs ?store (); model; cpu }

let five_programs =
  [ ("espresso", "Espresso"); ("gs-large", "GS"); ("ptc", "PTC");
    ("gawk", "Gawk"); ("make", "Make") ]

let paper_allocators =
  [ ("firstfit", "FirstFit"); ("gnu-g++", "GNU G++"); ("bsd", "BSD");
    ("gnu-local", "GNU local"); ("quickfit", "QuickFit") ]

let with_custom = paper_allocators @ [ ("custom", "Custom") ]
