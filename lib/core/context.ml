type t = { runs : Runs.t; model : Metrics.Cost_model.t }

let create ?scale ?jobs ?store ?(model = Metrics.Cost_model.paper) () =
  { runs = Runs.create ?scale ?jobs ?store (); model }

let five_programs =
  [ ("espresso", "Espresso"); ("gs-large", "GS"); ("ptc", "PTC");
    ("gawk", "Gawk"); ("make", "Make") ]

let paper_allocators =
  [ ("firstfit", "FirstFit"); ("gnu-g++", "GNU G++"); ("bsd", "BSD");
    ("gnu-local", "GNU local"); ("quickfit", "QuickFit") ]

let with_custom = paper_allocators @ [ ("custom", "Custom") ]
