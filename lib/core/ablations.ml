open Metrics

let coalescing (ctx : Context.t) =
  let table =
    Table.create
      ~title:
        "Ablation: coalescing in FirstFit (paper 4.1: coalescing costs \
         time and locality, buys space)"
      ~columns:
        [ ("Program", Table.Left); ("Variant", Table.Left);
          ("sbrk heap", Table.Right); ("malloc+free instr", Table.Right);
          ("miss 16K (%)", Table.Right); ("miss 64K (%)", Table.Right);
          ("total time 64K (s)", Table.Right) ]
  in
  List.iter
    (fun (pkey, plabel) ->
      List.iter
        (fun (akey, alabel) ->
          let d = Runs.get ctx.Context.runs ~profile:pkey ~allocator:akey in
          let s = d.Artifact.summary in
          let et = Artifact.exec_time d ~model:ctx.Context.model ~cache:"64K-dm" in
          Table.add_row table
            [ plabel; alabel;
              Table.fmt_kb s.Artifact.heap_used;
              Table.fmt_int
                (s.Artifact.malloc_instructions + s.Artifact.free_instructions);
              Table.fmt_float ~decimals:2
                (100. *. Artifact.miss_rate d ~cache:"16K-dm");
              Table.fmt_float ~decimals:2
                (100. *. Artifact.miss_rate d ~cache:"64K-dm");
              Table.fmt_float ~decimals:2 (Exec_time.total_seconds et) ])
        [ ("firstfit", "coalescing"); ("firstfit-nc", "no coalescing") ];
      Table.add_separator table)
    [ ("gs-large", "GS"); ("ptc", "PTC"); ("gawk", "Gawk") ];
  Table.render table
  ^ "\nReading: in a SEARCHING allocator coalescing is load-bearing — without\n\
     it the freelist floods with unusable small blocks and next-fit search\n\
     explodes (instructions and misses both).  The paper's point is subtler:\n\
     the winning designs (BSD, QuickFit) drop coalescing only after also\n\
     dropping search, replacing both with segregated exact re-use.\n"

let size_classes (ctx : Context.t) =
  let table =
    Table.create
      ~title:
        "Ablation: size-class policy on GS-Large (paper 4.4: balance \
         re-use against internal fragmentation)"
      ~columns:
        [ ("Allocator", Table.Left); ("Classing", Table.Left);
          ("Internal frag", Table.Right); ("sbrk heap", Table.Right);
          ("miss 64K (%)", Table.Right); ("total time 64K (s)", Table.Right) ]
  in
  List.iter
    (fun (akey, alabel, classing) ->
      let d = Runs.get ctx.Context.runs ~profile:"gs-large" ~allocator:akey in
      let s = d.Artifact.summary in
      let et = Artifact.exec_time d ~model:ctx.Context.model ~cache:"64K-dm" in
      Table.add_row table
        [ alabel; classing;
          Table.fmt_pct
            (Allocators.Alloc_stats.internal_fragmentation
               d.Artifact.alloc_stats);
          Table.fmt_kb s.Artifact.heap_used;
          Table.fmt_float ~decimals:2 (100. *. Artifact.miss_rate d ~cache:"64K-dm");
          Table.fmt_float ~decimals:2 (Exec_time.total_seconds et) ])
    [ ("bsd", "BSD", "powers of two");
      ("quickfit", "QuickFit", "exact 4-32B + general");
      ("gnu-local", "GNU local", "powers of two, chunked");
      ("custom", "Custom", "measured (size-mapping array)") ];
  Table.render table
  ^ "\nExpected: BSD's crude rounding wastes the most space; measured\n\
     classes keep BSD-like speed with QuickFit-like fragmentation.\n"

let associativity (ctx : Context.t) =
  let series =
    Series.create
      ~title:
        "Ablation: 16K cache associativity on GS-Large (conflict-miss \
         content per allocator)"
      ~x_label:"ways" ~y_label:"miss rate %"
  in
  List.iter
    (fun (akey, alabel) ->
      let d = Runs.get ctx.Context.runs ~profile:"gs-large" ~allocator:akey in
      let pts =
        List.map
          (fun (ways, name) ->
            (float_of_int ways, 100. *. Artifact.miss_rate d ~cache:name))
          [ (1, "16K-dm"); (2, "16K-2way"); (4, "16K-4way"); (8, "16K-8way") ]
      in
      Series.add series ~name:alabel pts)
    Context.with_custom;
  Series.render series
  ^ "\nWilson (cited in 2.2) predicts associativity absorbs part of the\n\
     placement-induced conflicts; the allocator gap narrows with ways.\n"

let two_level (ctx : Context.t) =
  let l2_penalty = 100 and l1_penalty = 10 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: two-level hierarchy on GS-Large (16K L1 + 256K L2, \
            %d/%d-cycle penalties)"
           l1_penalty l2_penalty)
      ~columns:
        [ ("Allocator", Table.Left); ("L1 miss (%)", Table.Right);
          ("L2 miss (%)", Table.Right); ("stall cycles (x10^6)", Table.Right);
          ("total cycles (x10^6)", Table.Right) ]
  in
  List.iter
    (fun (akey, alabel) ->
      let d = Runs.get ctx.Context.runs ~profile:"gs-large" ~allocator:akey in
      let l1 = Artifact.l1 d and l2 = Artifact.l2 d in
      let stalls =
        (l1.Cachesim.Stats.misses * l1_penalty)
        + (l2.Cachesim.Stats.misses * l2_penalty)
      in
      let total = d.Artifact.summary.Artifact.instructions + stalls in
      Table.add_row table
        [ alabel;
          Table.fmt_float ~decimals:2 (Cachesim.Stats.miss_rate_pct l1);
          Table.fmt_float ~decimals:2 (Cachesim.Stats.miss_rate_pct l2);
          Table.fmt_float ~decimals:1 (float_of_int stalls /. 1e6);
          Table.fmt_float ~decimals:1 (float_of_int total /. 1e6) ])
    Context.with_custom;
  Table.render table

let block_size (ctx : Context.t) =
  let series =
    Series.create
      ~title:
        "Extension: cache block size at 64K on GS-Large (hardware \
         prefetch via multi-word lines, paper 4.2)"
      ~x_label:"block bytes" ~y_label:"miss rate %"
  in
  List.iter
    (fun (akey, alabel) ->
      let d = Runs.get ctx.Context.runs ~profile:"gs-large" ~allocator:akey in
      let pts =
        List.map
          (fun (b, name) ->
            (float_of_int b, 100. *. Artifact.miss_rate d ~cache:name))
          [ (16, "64K-b16"); (32, "64K-dm"); (64, "64K-b64");
            (128, "64K-b128") ]
      in
      Series.add series ~name:alabel pts)
    Context.with_custom;
  Series.render series
  ^ "\nLarger blocks prefetch neighbouring objects (helping dense, re-used\n\
     layouts most) until conflict misses take over; tag-free allocators\n\
     gain more because prefetched words are object data, not metadata.\n"

let seq_family (ctx : Context.t) =
  let table =
    Table.create
      ~title:
        "Extension: the sequential-fit family on GS-Large (conclusion: \
         \"first-fit, best-fit, etc, have poor reference locality\")"
      ~columns:
        [ ("Allocator", Table.Left); ("malloc instr/call", Table.Right);
          ("alloc refs", Table.Right); ("sbrk heap", Table.Right);
          ("miss 16K (%)", Table.Right); ("miss 64K (%)", Table.Right) ]
  in
  List.iter
    (fun (akey, alabel) ->
      let d = Runs.get ctx.Context.runs ~profile:"gs-large" ~allocator:akey in
      let s = d.Artifact.summary in
      let calls = max 1 d.Artifact.alloc_stats.Allocators.Alloc_stats.malloc_calls in
      Table.add_row table
        [ alabel;
          Table.fmt_float ~decimals:1
            (float_of_int s.Artifact.malloc_instructions /. float_of_int calls);
          Table.fmt_int s.Artifact.allocator_refs;
          Table.fmt_kb s.Artifact.heap_used;
          Table.fmt_float ~decimals:2 (100. *. Artifact.miss_rate d ~cache:"16K-dm");
          Table.fmt_float ~decimals:2 (100. *. Artifact.miss_rate d ~cache:"64K-dm") ])
    [ ("firstfit", "FirstFit (roving)"); ("bestfit", "BestFit (exhaustive)");
      ("gnu-g++", "GNU G++ (segregated)"); ("quickfit", "QuickFit (exact)") ];
  Table.render table
  ^ "\nExpected: BestFit walks the whole list (most search work and the\n\
     most scattered references); segregating by size shrinks both.\n"

let flush (ctx : Context.t) =
  (* Flush-aware runs are cheap one-offs outside the shared grid. *)
  let profile = Workload.Programs.find "gs-large" in
  let table =
    Table.create
      ~title:
        "Extension: periodic cache flushes (context switches, Mogul & \
         Borg) — 64K direct-mapped miss rate on GS-Large"
      ~columns:
        [ ("Allocator", Table.Left); ("no flush (%)", Table.Right);
          ("every 100K refs (%)", Table.Right);
          ("every 20K refs (%)", Table.Right) ]
  in
  let run_with_flush akey quantum =
    let cache = Cachesim.Cache.create (Cachesim.Config.make (64 * 1024)) in
    let count = ref 0 in
    let sink =
      Memsim.Sink.of_fn (fun e ->
          incr count;
          if quantum > 0 && !count mod quantum = 0 then
            Cachesim.Cache.flush cache;
          Cachesim.Cache.access cache e)
    in
    let _r =
      Workload.Driver.run ~sink
        ~scale:(min 0.1 (Runs.scale ctx.Context.runs))
        ~profile ~allocator:akey ()
    in
    Cachesim.Stats.miss_rate_pct (Cachesim.Cache.stats cache)
  in
  List.iter
    (fun (akey, alabel) ->
      Table.add_row table
        [ alabel;
          Table.fmt_float ~decimals:2 (run_with_flush akey 0);
          Table.fmt_float ~decimals:2 (run_with_flush akey 100_000);
          Table.fmt_float ~decimals:2 (run_with_flush akey 20_000) ])
    [ ("firstfit", "FirstFit"); ("bsd", "BSD"); ("gnu-local", "GNU local");
      ("quickfit", "QuickFit") ];
  Table.render table
  ^ "\nThe paper's own numbers deliberately exclude flushes; frequent\n\
     flushes compress the allocator differences toward cold-start costs.\n"

let lifetime_prediction (ctx : Context.t) =
  let scale = min 0.25 (Runs.scale ctx.Context.runs) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Future work (5.1): allocation-site lifetime prediction \
            (Barrett & Zorn), 64K cache, scale %.2f"
           scale)
      ~columns:
        [ ("Program", Table.Left); ("Allocator", Table.Left);
          ("arena pages", Table.Right); ("sbrk heap", Table.Right);
          ("time in alloc", Table.Right); ("miss 16K (%)", Table.Right);
          ("miss 64K (%)", Table.Right) ]
  in
  List.iter
    (fun (pkey, plabel) ->
      let profile = Workload.Programs.find pkey in
      (* Profiling pass, then the measured run with a trained table. *)
      let predictions = Workload.Driver.train_predictor ~profile () in
      let measure name build =
        let multi =
          Cachesim.Multi.create
            [ Cachesim.Config.make (16 * 1024);
              Cachesim.Config.make (64 * 1024) ]
        in
        let heap = Allocators.Heap.create () in
        let alloc, arena_pages = build heap in
        let r =
          Workload.Driver.run_with
            ~sink:(Cachesim.Multi.sink multi)
            ~scale ~profile ~heap ~alloc ()
        in
        let rate kb =
          Cachesim.Stats.miss_rate_pct
            (snd (Cachesim.Multi.find multi ~name:(Printf.sprintf "%dK-dm" kb)))
        in
        Table.add_row table
          [ plabel; name;
            (match arena_pages with
            | Some f -> string_of_int (f ())
            | None -> "-");
            Table.fmt_kb r.Workload.Driver.heap_used;
            Table.fmt_pct (Workload.Driver.allocator_fraction r);
            Table.fmt_float ~decimals:2 (rate 16);
            Table.fmt_float ~decimals:2 (rate 64) ]
      in
      measure "predictive" (fun heap ->
          let p = Allocators.Predictive.create ~predictions heap in
          ( Allocators.Predictive.allocator p,
            Some (fun () -> Allocators.Predictive.arena_pages p) ));
      measure "quickfit" (fun heap ->
          (Allocators.Registry.build "quickfit" heap, None));
      measure "custom" (fun heap ->
          let histogram =
            Workload.Dist.to_histogram profile.Workload.Profile.size_dist
              ~scale:100_000
          in
          ( Allocators.Custom.allocator
              (Allocators.Custom.create_for ~histogram heap),
            None ));
      measure "gnu-local" (fun heap ->
          (Allocators.Registry.build "gnu-local" heap, None));
      Table.add_separator table)
    [ ("gawk", "Gawk"); ("espresso", "Espresso") ];
  Table.render table
  ^ "\nPredicted-short objects bump-allocate into a few recycled arena\n\
     pages; dead-together objects cost no per-object free-list traffic.\n\
     Mispredictions pin arena pages (the realistic failure mode).\n"

let penalty_sweep (ctx : Context.t) =
  let series =
    Series.create
      ~title:
        "Extension: total time vs miss penalty on GS-Large (paper 4.4: \
         high penalties may justify GNU local's CPU overhead)"
      ~x_label:"penalty cycles" ~y_label:"total Mcycles"
  in
  let penalties = [ 10; 25; 50; 100; 200; 400 ] in
  List.iter
    (fun (akey, alabel) ->
      let d = Runs.get ctx.Context.runs ~profile:"gs-large" ~allocator:akey in
      let pts =
        List.map
          (fun p ->
            let model = Cost_model.with_penalty ctx.Context.model p in
            let et = Artifact.exec_time d ~model ~cache:"64K-dm" in
            ( float_of_int p,
              float_of_int (Exec_time.total_cycles et) /. 1e6 ))
          penalties
      in
      Series.add series ~name:alabel pts)
    [ ("quickfit", "QuickFit"); ("bsd", "BSD"); ("gnu-local", "GNU local");
      ("firstfit", "FirstFit"); ("custom", "Custom") ];
  Series.render series
