let log_src = Logs.Src.create "loclab.runs" ~doc:"loclab run grid"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  scale : float;
  jobs : int;
  store : Store.t option;
  memo : (string * string, Artifact.t) Hashtbl.t;
  mutable store_hits : int;
  mutable simulated : int;
}

let standard_configs =
  Cachesim.Config.paper_direct_mapped
  @ List.map
      (fun a -> Cachesim.Config.make ~associativity:a (16 * 1024))
      [ 2; 4; 8 ]
  (* Block-size sweep at 64K for the hardware-prefetch discussion
     (Smith's line-size trade-off); 32-byte blocks are "64K-dm". *)
  @ List.map
      (fun b ->
        Cachesim.Config.make
          ~name:(Printf.sprintf "64K-b%d" b)
          ~block_bytes:b (64 * 1024))
      [ 16; 64; 128 ]
  (* Pseudo-LRU members at the 16K 8-way point: exercised through the
     Multi per-config fallback (no forest inclusion outside LRU), they
     let renderers compare replacement policies on the paper's grid. *)
  @ [ Cachesim.Config.make ~associativity:8 ~policy:Cachesim.Policy.Plru
        (16 * 1024);
      Cachesim.Config.make ~associativity:8
        ~policy:(Cachesim.Policy.Qlru Cachesim.Policy.qlru_h11_m1)
        (16 * 1024) ]

let create ?(scale = 0.2) ?(jobs = 1) ?store () =
  (* Not an assert: -noassert builds must still reject a zero-step
     grid instead of looping or dividing by zero deep in a driver. *)
  if not (scale > 0.) then invalid_arg "Runs.create: scale must be > 0";
  if jobs < 1 then invalid_arg "Runs.create: jobs must be >= 1";
  { scale;
    jobs;
    store;
    memo = Hashtbl.create 64;
    store_hits = 0;
    simulated = 0 }

let scale t = t.scale
let jobs t = t.jobs
let store t = t.store
let store_hits t = t.store_hits
let simulated t = t.simulated

(* "custom" is the synthesized allocator: train its size classes on the
   profile's own request mix, like CustoMalloc generating an allocator
   for a measured program. *)
let build_allocator ~profile_key ~allocator heap =
  if allocator = "custom" then begin
    let profile = Workload.Programs.find profile_key in
    let histogram =
      Workload.Dist.to_histogram profile.Workload.Profile.size_dist
        ~scale:100_000
    in
    Allocators.Custom.allocator (Allocators.Custom.create_for ~histogram heap)
  end
  else Allocators.Registry.build allocator heap

let cells_f =
  Telemetry.Metrics.Counter.family ~name:"loclab_cells_total"
    ~help:"Grid cells resolved, by how they were satisfied"
    ~labels:[ "source" ] ()

let cell_memo_c = Telemetry.Metrics.Counter.labels cells_f [ "memo" ]
let cell_store_c = Telemetry.Metrics.Counter.labels cells_f [ "store" ]
let cell_sim_c = Telemetry.Metrics.Counter.labels cells_f [ "simulated" ]

let paper_hierarchy () =
  Cachesim.Hierarchy.create_levels
    [ Cachesim.Config.make (16 * 1024); Cachesim.Config.make (256 * 1024) ]

let run t ~profile ~allocator =
  Telemetry.Span.with_span ~cat:"cell" (profile ^ "/" ^ allocator) @@ fun () ->
  let prof = Workload.Programs.find profile in
  let multi = Cachesim.Multi.create standard_configs in
  let hier = paper_hierarchy () in
  let pages = Vmsim.Page_sim.create () in
  let checksum = Memsim.Sink.Checksum.create () in
  let sink =
    Memsim.Sink.fanout
      [ Cachesim.Multi.sink multi;
        Cachesim.Hierarchy.sink hier;
        Vmsim.Page_sim.sink pages;
        Memsim.Sink.Checksum.sink checksum ]
  in
  let heap = Allocators.Heap.create () in
  let alloc = build_allocator ~profile_key:profile ~allocator heap in
  let result =
    Workload.Driver.run_with ~sink ~scale:t.scale ~profile:prof ~heap ~alloc ()
  in
  Artifact.of_run ~program:profile ~allocator ~scale:t.scale
    ~trace_checksum:(Memsim.Sink.Checksum.value checksum)
    ~result
    ~caches:(Cachesim.Multi.results multi)
    ~hierarchy:(Cachesim.Hierarchy.results hier)
    ~fault_curve:(Vmsim.Page_sim.curve pages)
    ()

(* ---- persistent store plumbing ------------------------------------- *)

let cell_digest t ~profile ~allocator =
  let prof = Workload.Programs.find profile in
  Artifact.digest ~program:profile ~allocator ~scale:t.scale
    ~seed:prof.Workload.Profile.seed

(* Fetch one cell from the persistent store, fully validated.  Any
   failure — absent, truncated, CRC mismatch, undecodable, or metadata
   that does not match the requested coordinates — degrades to [None],
   i.e. to re-simulation; corruption is reported, never fatal. *)
let load_from_store t ~profile ~allocator =
  match t.store with
  | None -> None
  | Some store -> (
      match cell_digest t ~profile ~allocator with
      | exception Not_found -> None (* unknown profile: let [run] raise *)
      | digest -> (
          match Store.find store ~digest with
          | Store.Miss | Store.Corrupt _ -> None (* Corrupt logged by Store *)
          | Store.Hit payload -> (
              match Artifact.decode payload with
              | Error reason ->
                  Log.warn (fun m ->
                      m "cell (%s, %s): undecodable artifact (%s); re-simulating"
                        profile allocator reason);
                  None
              | Ok art ->
                  let m = art.Artifact.meta in
                  if
                    m.Artifact.program <> profile
                    || m.Artifact.allocator <> allocator
                    || m.Artifact.scale <> t.scale
                  then begin
                    Log.warn (fun mf ->
                        mf
                          "cell (%s, %s): stored metadata names (%s, %s, scale \
                           %g) — digest drift; re-simulating"
                          profile allocator m.Artifact.program
                          m.Artifact.allocator m.Artifact.scale);
                    None
                  end
                  else Some art)))

let write_through t art =
  match t.store with
  | None -> ()
  | Some store ->
      Store.put store
        ~digest:(Artifact.digest_of_meta art.Artifact.meta)
        (Artifact.encode art)

let get t ~profile ~allocator =
  let key = (profile, allocator) in
  match Hashtbl.find_opt t.memo key with
  | Some a ->
      Telemetry.Metrics.Counter.inc cell_memo_c;
      a
  | None -> (
      match load_from_store t ~profile ~allocator with
      | Some a ->
          t.store_hits <- t.store_hits + 1;
          Telemetry.Metrics.Counter.inc cell_store_c;
          Log.debug (fun m -> m "cell (%s, %s): store hit" profile allocator);
          Hashtbl.replace t.memo key a;
          a
      | None ->
          let a = run t ~profile ~allocator in
          t.simulated <- t.simulated + 1;
          Telemetry.Metrics.Counter.inc cell_sim_c;
          Log.debug (fun m -> m "cell (%s, %s): simulated" profile allocator);
          write_through t a;
          Hashtbl.replace t.memo key a;
          a)

let dedupe_missing t cells =
  (* Keep first-occurrence order and drop cells the memo already holds:
     the pending list is both the work list and the merge order. *)
  let seen = Hashtbl.create 16 in
  List.rev
    (List.fold_left
       (fun acc key ->
         if Hashtbl.mem t.memo key || Hashtbl.mem seen key then acc
         else begin
           Hashtbl.replace seen key ();
           key :: acc
         end)
       [] cells)

let load t cells =
  List.filter
    (fun ((profile, allocator) as key) ->
      match load_from_store t ~profile ~allocator with
      | Some a ->
          t.store_hits <- t.store_hits + 1;
          Telemetry.Metrics.Counter.inc cell_store_c;
          Hashtbl.replace t.memo key a;
          false
      | None -> true)
    (dedupe_missing t cells)

let prefetch t cells =
  (* Serve what the persistent store already holds (cheap sequential
     I/O), then simulate only the genuinely cold cells in parallel. *)
  match load t cells with
  | [] -> ()
  | pending ->
      (* Every cell is self-contained (own heap, RNG, sinks), so the
         workers never touch [t.memo] or the store; results come back in
         submission order and are merged — and written through — here,
         on the calling domain.  A parallel fill is therefore
         bit-identical to a sequential one. *)
      let artifacts =
        Exec.Pool.with_pool
          ~jobs:(min t.jobs (List.length pending))
          (fun pool ->
            Exec.Pool.map pool
              (fun (profile, allocator) -> run t ~profile ~allocator)
              pending)
      in
      List.iter2
        (fun key art ->
          t.simulated <- t.simulated + 1;
          Telemetry.Metrics.Counter.inc cell_sim_c;
          write_through t art;
          Hashtbl.replace t.memo key art)
        pending artifacts

(* ---- external trace ingestion --------------------------------------- *)

(* An ingested trace is a grid cell like any other, just with external
   coordinates: its identity is the order-sensitive checksum of its
   event stream (so the same accesses imported as text, CSV or binary
   land on the same cell), its "program" is [trace:<ident>], its
   allocator key is ["external"], and its scale is fixed at 1 (there is
   no workload to scale).  That keeps the whole store/memo/warm-serve
   machinery untouched. *)

let external_allocator = "external"
let external_scale = 1.0

let trace_ident ~format ~data =
  let checksum = Memsim.Sink.Checksum.create () in
  let events =
    Memsim.Trace.read format data (Memsim.Sink.Checksum.sink checksum)
  in
  (events, Memsim.Sink.Checksum.value checksum)

let trace_program ~ident = Printf.sprintf "trace:%x" ident

let trace_digest ~ident =
  Artifact.digest ~program:(trace_program ~ident)
    ~allocator:external_allocator ~scale:external_scale ~seed:ident

(* Validated store lookup for an external cell; mirrors
   [load_from_store], degrading every failure to re-simulation. *)
let load_external t ~program ~ident =
  match t.store with
  | None -> None
  | Some store -> (
      match Store.find store ~digest:(trace_digest ~ident) with
      | Store.Miss | Store.Corrupt _ -> None (* Corrupt logged by Store *)
      | Store.Hit payload -> (
          match Artifact.decode payload with
          | Error reason ->
              Log.warn (fun m ->
                  m "trace cell %s: undecodable artifact (%s); re-simulating"
                    program reason);
              None
          | Ok art ->
              let m = art.Artifact.meta in
              if
                m.Artifact.program <> program
                || m.Artifact.allocator <> external_allocator
                || m.Artifact.trace_checksum <> ident
              then begin
                Log.warn (fun mf ->
                    mf
                      "trace cell %s: stored metadata names (%s, %s) — digest \
                       drift; re-simulating"
                      program m.Artifact.program m.Artifact.allocator);
                None
              end
              else Some art))

(* Simulate a captured external trace under the full standard sweep.
   The 32-byte LRU forest family goes through [Cachesim.Shard.replay]
   (set-range sharded across up to [jobs] domains, stats identical to
   sequential); the remaining configurations plus the hierarchy and the
   page simulator consume one sequential packed replay.  Results are
   stitched back into [standard_configs] order, so an external artifact
   has the same cache list shape as a synthetic one. *)
let simulate_trace t ~program ~provenance ~events ~ident ~counter buffer =
  Telemetry.Span.with_span ~cat:"ingest" program @@ fun () ->
  let family_block =
    (List.hd standard_configs).Cachesim.Config.block_bytes
  in
  let shardable, rest =
    List.partition
      (fun (c : Cachesim.Config.t) ->
        c.Cachesim.Config.block_bytes = family_block
        && Cachesim.Policy.is_lru c.Cachesim.Config.policy)
      standard_configs
  in
  let sharded =
    Cachesim.Shard.replay ~domains:t.jobs ~configs:shardable buffer
  in
  let multi = Cachesim.Multi.create rest in
  let hier = paper_hierarchy () in
  let pages = Vmsim.Page_sim.create () in
  Memsim.Trace_buffer.replay buffer
    (Memsim.Sink.fanout
       [ Cachesim.Multi.sink multi;
         Cachesim.Hierarchy.sink hier;
         Vmsim.Page_sim.sink pages ]);
  let pool = sharded @ Cachesim.Multi.results multi in
  let caches =
    List.map
      (fun (c : Cachesim.Config.t) ->
        match
          List.find_opt
            (fun ((c' : Cachesim.Config.t), _) ->
              c'.Cachesim.Config.name = c.Cachesim.Config.name)
            pool
        with
        | Some cell -> cell
        | None -> assert false)
      standard_configs
  in
  let by_source = Memsim.Sink.Counter.by_source counter in
  { Artifact.meta =
      { Artifact.program;
        allocator = external_allocator;
        scale = external_scale;
        seed = ident;
        schema_version = Artifact.schema_version;
        trace_checksum = ident };
    provenance;
    summary =
      (* There is no simulated machine behind an imported trace, so the
         instruction/heap fields are zero; the reference counts are
         real. *)
      { Artifact.steps_run = 0;
        instructions = 0;
        app_instructions = 0;
        malloc_instructions = 0;
        free_instructions = 0;
        data_refs = events;
        app_refs = by_source Memsim.Event.App;
        allocator_refs =
          by_source Memsim.Event.Malloc + by_source Memsim.Event.Free;
        heap_used = 0;
        max_live_bytes = 0 };
    alloc_stats = Allocators.Alloc_stats.create ();
    caches;
    hierarchy = Cachesim.Hierarchy.results hier;
    fault_curve = Vmsim.Page_sim.curve pages }

let ingest t ~format ~data =
  let provenance =
    { Artifact.source_format = Memsim.Trace.Source.format_to_string format;
      source_bytes = String.length data;
      source_checksum = Store.Codec.crc32 data }
  in
  (* One capture pass: buffer the packed events for (possibly sharded)
     replay, checksum the stream for identity, and tally per-source
     counts for the summary. *)
  let buffer = Memsim.Trace_buffer.create () in
  let checksum = Memsim.Sink.Checksum.create () in
  let counter = Memsim.Sink.Counter.create () in
  let events =
    Memsim.Trace.read format data
      (Memsim.Sink.fanout
         [ Memsim.Trace_buffer.sink buffer;
           Memsim.Sink.Checksum.sink checksum;
           Memsim.Sink.Counter.sink counter ])
  in
  let ident = Memsim.Sink.Checksum.value checksum in
  let program = trace_program ~ident in
  let key = (program, external_allocator) in
  match Hashtbl.find_opt t.memo key with
  | Some a ->
      Telemetry.Metrics.Counter.inc cell_memo_c;
      a
  | None -> (
      match load_external t ~program ~ident with
      | Some a ->
          t.store_hits <- t.store_hits + 1;
          Telemetry.Metrics.Counter.inc cell_store_c;
          Log.debug (fun m -> m "trace cell %s: store hit" program);
          Hashtbl.replace t.memo key a;
          a
      | None ->
          let a =
            simulate_trace t ~program ~provenance ~events ~ident ~counter
              buffer
          in
          t.simulated <- t.simulated + 1;
          Telemetry.Metrics.Counter.inc cell_sim_c;
          Log.debug (fun m -> m "trace cell %s: simulated" program);
          write_through t a;
          Hashtbl.replace t.memo key a;
          a)

let get_source t (source : Memsim.Trace.Source.t) =
  match source with
  | Memsim.Trace.Source.Synthetic { program; allocator } ->
      get t ~profile:program ~allocator
  | _ ->
      let format = Option.get (Memsim.Trace.Source.format_of source) in
      let path = Option.get (Memsim.Trace.Source.path_of source) in
      ingest t ~format ~data:(Memsim.Trace.slurp path)
