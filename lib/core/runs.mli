(** The run grid: one fully instrumented simulation per
    (program, allocator) pair, shared by every experiment.

    Each run drives the profile against the allocator once, feeding the
    fused trace to: the paper's direct-mapped cache sweep (16K–256K), an
    associativity set at 16 K (2/4/8-way), a block-size sweep at 64 K, a
    two-level hierarchy (16 K L1 / 256 K L2), the page-fault simulator
    and the trace checksum.  The finished cell is distilled to a typed
    {!Artifact.t}; the in-process memo and the optional persistent
    {!Store.t} both hold artifacts, so regenerating all tables and
    figures costs one pass per pair — or zero passes from a warm
    store. *)

type t

val create : ?scale:float -> ?jobs:int -> ?store:Store.t -> unit -> t
(** [scale] (default 0.2) is forwarded to every
    {!Workload.Driver.run}.  [jobs] (default 1) bounds the worker
    domains {!prefetch} may use to fill the grid concurrently.
    [store], when given, is consulted before any simulation and written
    through after each one.
    @raise Invalid_argument if [scale <= 0] or [jobs < 1]. *)

val scale : t -> float
val jobs : t -> int
val store : t -> Store.t option

val store_hits : t -> int
(** Cells served from the persistent store so far. *)

val simulated : t -> int
(** Cells computed by simulation so far (each was a store miss when a
    store is attached). *)

val get : t -> profile:string -> allocator:string -> Artifact.t
(** Memoized; consults the store before simulating.  A stored cell that
    is truncated, fails its CRC, does not decode, or carries mismatched
    metadata is reported (via [Logs], sources [loclab.store] /
    [loclab.runs]) and transparently re-simulated — never a crash,
    never wrong numbers.  [allocator] is a {!Allocators.Registry} key;
    ["custom"] is trained on the profile's own size histogram (the
    CustoMalloc workflow).
    @raise Not_found for unknown keys. *)

val load : t -> (string * string) list -> (string * string) list
(** [load t cells] pulls every available cell from the persistent store
    into the memo without simulating anything, and returns the
    (deduplicated, first-occurrence-ordered) cells that remain missing
    — the ones {!get} or {!prefetch} would have to simulate.  With no
    store attached, every non-memoized cell is returned. *)

val prefetch : t -> (string * string) list -> unit
(** [prefetch t cells] fills the memo for every (profile, allocator)
    cell not already present: first from the persistent store
    (sequential, cheap), then by evaluating the remaining cells on up
    to {!jobs} worker domains and writing each result through the
    store.  Cells are independent simulations (each owns its heap, RNG
    and sinks) and results are merged in submission order on the
    calling domain, so the memo contents — and therefore every
    rendering — are bit-identical to a sequential fill, warm or cold.
    If any simulated cell raises (e.g. {!get}'s [Not_found] for an
    unknown key), no simulated cell of the batch is merged and the
    first failure (by position) is re-raised. *)

(** {1 External trace ingestion}

    An ingested trace becomes a grid cell with external coordinates:
    program [trace:<ident>], allocator ["external"], scale 1, where
    [ident] is the order-sensitive {!Memsim.Sink.Checksum} of the event
    stream.  Identity is therefore the {e events}, not the encoding —
    the same accesses imported as text, CSV or binary land on the same
    cell and warm-serve each other. *)

val ingest : t -> format:Memsim.Trace.Source.format -> data:string -> Artifact.t
(** Decode the capture [data], simulate it under the full standard
    sweep (the 32-byte LRU family set-range-sharded across up to
    {!jobs} domains via {!Cachesim.Shard.replay}, everything else on a
    sequential packed replay — results bit-identical to [jobs = 1]),
    and memoize/write through exactly like {!get}.  The artifact's
    provenance records the capture's format, byte length and CRC-32.
    @raise Failure on malformed trace data. *)

val get_source : t -> Memsim.Trace.Source.t -> Artifact.t
(** [Synthetic] sources go through {!get}; file-backed sources are
    slurped and {!ingest}ed. *)

val trace_ident : format:Memsim.Trace.Source.format -> data:string -> int * int
(** [(events, checksum)] of the capture's event stream — the cheap
    one-pass identity used to probe the store before committing to a
    full ingest.  @raise Failure on malformed trace data. *)

val trace_digest : ident:int -> string
(** Store digest of the external cell identified by [ident]. *)

val external_allocator : string
(** The allocator key external cells carry (["external"]). *)

val standard_configs : Cachesim.Config.t list
(** Everything simulated per run: the paper sweep plus the
    associativity, block-size and replacement-policy sets. *)

val build_allocator :
  profile_key:string -> allocator:string -> Allocators.Heap.t ->
  Allocators.Allocator.t
(** Instantiate a registry allocator on [heap]; ["custom"] is trained
    on the profile's size histogram (the CustoMalloc workflow).  Used
    by off-grid experiments (context-switch ablation, modern-CPU
    ranking) that drive their own simulations. *)
