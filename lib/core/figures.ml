open Metrics

let fig1 (ctx : Context.t) =
  let table =
    Table.create
      ~title:
        "Figure 1: Percent of time in malloc and free (% of executed \
         instructions)"
      ~columns:
        (("Program", Table.Left)
        :: List.map
             (fun (_, label) -> (label, Table.Right))
             Context.paper_allocators)
  in
  List.iter
    (fun (pkey, plabel) ->
      let cells =
        List.map
          (fun (akey, _) ->
            let d = Runs.get ctx.Context.runs ~profile:pkey ~allocator:akey in
            Table.fmt_pct (Artifact.allocator_fraction d))
          Context.paper_allocators
      in
      Table.add_row table (plabel :: cells))
    Context.five_programs;
  Table.render table
  ^ "\nPaper: ranges from a few percent to ~30%, highest for the searching\n\
     allocators and GNU local, lowest for BSD/QuickFit; Make lowest overall.\n"

(* Shared body of Figures 2 and 3. *)
let page_fault_figure (ctx : Context.t) ~profile ~title ~memory_sizes =
  let series =
    Series.create ~title ~x_label:"memory KB" ~y_label:"faults/ref"
  in
  let footprints = Buffer.create 128 in
  List.iter
    (fun (akey, alabel) ->
      let d = Runs.get ctx.Context.runs ~profile ~allocator:akey in
      let pts =
        List.map
          (fun m ->
            ( float_of_int (m / 1024),
              Vmsim.Fault_curve.fault_rate d.Artifact.fault_curve ~memory_bytes:m ))
          memory_sizes
      in
      Series.add series ~name:alabel pts;
      Buffer.add_string footprints
        (Printf.sprintf "  %-10s footprint %s (sbrk %s)\n" alabel
           (Table.fmt_kb (Vmsim.Fault_curve.footprint_bytes d.Artifact.fault_curve))
           (Table.fmt_kb d.Artifact.summary.Artifact.heap_used)))
    Context.paper_allocators;
  Series.render series
  ^ "\nTotal memory touched per allocator (the figures' x-axis markers):\n"
  ^ Buffer.contents footprints

let mem_sweep max_kb =
  (* Dense at the low end where the curves separate. *)
  List.filter (fun k -> k <= max_kb) [ 64; 128; 192; 256; 384; 512; 768;
    1024; 1536; 2048; 2560; 3072; 3584; 4096; 4608; 5120 ]
  |> List.map (fun k -> k * 1024)

let fig2 ctx =
  page_fault_figure ctx ~profile:"gs-large"
    ~title:"Figure 2: Page fault rate for GhostScript vs physical memory"
    ~memory_sizes:(mem_sweep 5120)
  ^ "\nPaper: FirstFit degrades fastest as memory shrinks; BSD needs more\n\
     memory than the others (space waste); QuickFit/GNU local most resilient.\n"

let fig3 ctx =
  page_fault_figure ctx ~profile:"ptc"
    ~title:"Figure 3: Page fault rate for Pascal-to-C vs physical memory"
    ~memory_sizes:(mem_sweep 4096)
  ^ "\nPaper: with no frees the allocators' footprints nearly coincide;\n\
     sequential fit still pays for freelist searches at tight memory.\n"

(* Shared body of Figures 4 and 5. *)
let normalized_figure (ctx : Context.t) ~cache ~title =
  let table =
    Table.create ~title
      ~columns:
        (("Program", Table.Left)
        :: List.concat_map
             (fun (_, label) ->
               [ (label ^ " cpu", Table.Right); (label ^ " +mem", Table.Right) ])
             Context.paper_allocators)
  in
  List.iter
    (fun (pkey, plabel) ->
      let baseline =
        Artifact.exec_time
          (Runs.get ctx.Context.runs ~profile:pkey ~allocator:"firstfit")
          ~model:ctx.Context.model ~cache
      in
      let cells =
        List.concat_map
          (fun (akey, _) ->
            let d = Runs.get ctx.Context.runs ~profile:pkey ~allocator:akey in
            let et = Artifact.exec_time d ~model:ctx.Context.model ~cache in
            [ Table.fmt_float ~decimals:3
                (Exec_time.cpu_normalized_to et ~baseline);
              Table.fmt_float ~decimals:3
                (Exec_time.normalized_to et ~baseline) ])
          Context.paper_allocators
      in
      Table.add_row table (plabel :: cells))
    Context.five_programs;
  Table.render table
  ^ "\n(cpu = instructions only, the shaded bars; +mem = with cache miss\n\
     penalty, the overlay bars; both normalized to FirstFit's +mem time.)\n"

let fig4 ctx =
  normalized_figure ctx ~cache:"16K-dm"
    ~title:
      "Figure 4: Normalized execution time, 16K direct-mapped cache, \
       25-cycle miss penalty"
  ^ "Paper: cache misses change relative performance by up to ~25%;\n\
     FirstFit loses most ground once misses are counted.\n"

let fig5 ctx =
  normalized_figure ctx ~cache:"64K-dm"
    ~title:
      "Figure 5: Normalized execution time, 64K direct-mapped cache, \
       25-cycle miss penalty"
  ^ "Paper: with a larger cache the differences compress but FirstFit\n\
     remains the slowest.\n"

(* Shared body of Figures 6-8. *)
let miss_rate_figure (ctx : Context.t) ~profile ~title =
  let series =
    Series.create ~title ~x_label:"cache KB" ~y_label:"miss rate %"
  in
  List.iter
    (fun (akey, alabel) ->
      let d = Runs.get ctx.Context.runs ~profile ~allocator:akey in
      let pts =
        List.map
          (fun kb ->
            ( float_of_int kb,
              100.
              *. Artifact.miss_rate d ~cache:(Printf.sprintf "%dK-dm" kb) ))
          [ 16; 32; 64; 128; 256 ]
      in
      Series.add series ~name:alabel pts)
    Context.paper_allocators;
  Series.render series

let fig6 ctx =
  miss_rate_figure ctx ~profile:"gs-small"
    ~title:"Figure 6: Data cache miss rate for GhostScript (GS-Small)"
  ^ "\nPaper: differences are muted on the small input; FirstFit still worst.\n"

let fig7 ctx =
  miss_rate_figure ctx ~profile:"gs-medium"
    ~title:"Figure 7: Data cache miss rate for GhostScript (GS-Medium)"

let fig8 ctx =
  miss_rate_figure ctx ~profile:"gs-large"
    ~title:"Figure 8: Data cache miss rate for GhostScript (GS-Large)"
  ^ "\nPaper: FirstFit has much the largest miss ratio at every size; the\n\
     other first-fit variant (GNU G++) is second; the rest are clustered.\n"

let fig9 (ctx : Context.t) =
  ignore ctx;
  let profile = Workload.Programs.find "espresso" in
  let histogram =
    Workload.Dist.to_histogram profile.Workload.Profile.size_dist
      ~scale:100_000
  in
  let classes = Allocators.Size_map.design histogram in
  let heap = Allocators.Heap.create () in
  let map = Allocators.Size_map.create heap ~classes in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 9: Mapping allocation requests with a size-mapping array\n\
     (concrete instance designed from Espresso's measured histogram)\n\n";
  Buffer.add_string buf
    (Printf.sprintf "Size classes (%d): %s\n\n"
       (List.length classes)
       (String.concat ", " (List.map string_of_int classes)));
  Buffer.add_string buf "request -> rounded (class index):\n";
  List.iter
    (fun n ->
      let c = Allocators.Size_map.lookup map n in
      Buffer.add_string buf
        (Printf.sprintf "  %4d -> %4d (class %d)\n" n
           (Allocators.Size_map.class_size map c)
           c))
    [ 1; 8; 12; 13; 24; 25; 40; 41; 100; 256; 1000; 2040 ];
  Buffer.add_string buf
    "\nOne static-array load replaces BSD's power-of-two rounding while\n\
     allowing arbitrary, program-specific size classes (paper 4.4).\n";
  Buffer.contents buf
