(* Rendering for ingested external-trace cells.

   An external artifact has no workload behind it (no instruction
   counts, no allocator statistics), so the paper tables don't apply;
   this report shows what the trace *does* have — provenance, stream
   identity, per-source reference counts, the full cache sweep, the
   two-level hierarchy and the paged footprint. *)

open Metrics

let report (art : Artifact.t) =
  let m = art.Artifact.meta in
  let p = art.Artifact.provenance in
  let s = art.Artifact.summary in
  let b = Buffer.create 2048 in
  Printf.bprintf b "External trace cell %s\n" m.Artifact.program;
  Printf.bprintf b "  source    %s capture, %s bytes, crc32 0x%08x\n"
    p.Artifact.source_format
    (Table.fmt_int p.Artifact.source_bytes)
    p.Artifact.source_checksum;
  Printf.bprintf b "  events    %s (%s app, %s allocator), stream checksum 0x%x\n"
    (Table.fmt_int s.Artifact.data_refs)
    (Table.fmt_int s.Artifact.app_refs)
    (Table.fmt_int s.Artifact.allocator_refs)
    m.Artifact.trace_checksum;
  Printf.bprintf b "  digest    %s\n" (Artifact.digest_of_meta m);
  Printf.bprintf b "  footprint %s paged\n\n"
    (Table.fmt_kb (Vmsim.Fault_curve.footprint_bytes art.Artifact.fault_curve));
  let table =
    Table.create ~title:"Cache sweep (standard configurations)"
      ~columns:
        [ ("Cache", Table.Left); ("Block", Table.Right);
          ("Assoc", Table.Right); ("Policy", Table.Left);
          ("Accesses", Table.Right); ("Misses", Table.Right);
          ("Miss rate", Table.Right) ]
  in
  let row (c : Cachesim.Config.t) (st : Cachesim.Stats.t) =
    Table.add_row table
      [ c.Cachesim.Config.name;
        string_of_int c.Cachesim.Config.block_bytes;
        string_of_int c.Cachesim.Config.associativity;
        Cachesim.Policy.to_string c.Cachesim.Config.policy;
        Table.fmt_int st.Cachesim.Stats.accesses;
        Table.fmt_int st.Cachesim.Stats.misses;
        Table.fmt_pct ~decimals:2 (Cachesim.Stats.miss_rate st) ]
  in
  List.iter (fun (c, st) -> row c st) art.Artifact.caches;
  Table.add_separator table;
  List.iter (fun (c, st) -> row c st) art.Artifact.hierarchy;
  Buffer.add_string b (Table.render table);
  Buffer.contents b
