open Metrics

(* Tables 2 and 3 share their column layout. *)
let program_info_table (ctx : Context.t) ~title ~programs =
  let table =
    Table.create ~title
      ~columns:
        [ ("Program", Table.Left); ("Est. time (sec)", Table.Right);
          ("Total instr (x10^6)", Table.Right);
          ("Data refs (x10^6)", Table.Right); ("Max heap", Table.Right);
          ("Objects alloc'd", Table.Right); ("Objects freed", Table.Right) ]
  in
  List.iter
    (fun (pkey, plabel) ->
      let d = Runs.get ctx.Context.runs ~profile:pkey ~allocator:"firstfit" in
      let s = d.Artifact.summary in
      let et = Artifact.exec_time d ~model:ctx.Context.model ~cache:"64K-dm" in
      let st = d.Artifact.alloc_stats in
      Table.add_row table
        [ plabel;
          Table.fmt_float ~decimals:2 (Exec_time.total_seconds et);
          Table.fmt_float ~decimals:1
            (float_of_int s.Artifact.instructions /. 1e6);
          Table.fmt_float ~decimals:1
            (float_of_int s.Artifact.data_refs /. 1e6);
          Table.fmt_kb s.Artifact.max_live_bytes;
          Table.fmt_int st.Allocators.Alloc_stats.malloc_calls;
          Table.fmt_int st.Allocators.Alloc_stats.free_calls ])
    programs;
  Table.render table

let tab2 ctx =
  program_info_table ctx
    ~title:
      "Table 2: Test program performance information (FirstFit allocator, \
       64K cache estimate)"
    ~programs:Context.five_programs
  ^ "\nScaled ~1:50 from the paper's runs; retained-heap sizes are absolute.\n\
     Paper (for comparison): Espresso 1673K objects/396KB heap, GS 924K/4.1MB,\n\
     PTC 103K/3.1MB with 0 freed, Gawk 1704K/60KB, Make 24K/380KB.\n"

let tab3 ctx =
  program_info_table ctx
    ~title:"Table 3: Characteristics of different input sets for GhostScript"
    ~programs:
      [ ("gs-small", "GS-Small"); ("gs-medium", "GS-Medium");
        ("gs-large", "GS-Large") ]
  ^ "\nPaper: 17.0s/195M instr/1.1MB, 51.3s/539M/2.7MB, 131.3s/1344M/4.1MB.\n"

(* Tables 4 and 5 share their layout. *)
let time_and_miss_table (ctx : Context.t) ~cache ~title =
  let table =
    Table.create ~title
      ~columns:
        (("Allocator", Table.Left)
        :: List.map
             (fun (_, label) -> (label ^ " total/miss (s)", Table.Right))
             Context.five_programs)
  in
  List.iter
    (fun (akey, alabel) ->
      let cells =
        List.map
          (fun (pkey, _) ->
            let d = Runs.get ctx.Context.runs ~profile:pkey ~allocator:akey in
            let et = Artifact.exec_time d ~model:ctx.Context.model ~cache in
            Printf.sprintf "%.2f/%.2f" (Exec_time.total_seconds et)
              (Exec_time.miss_seconds et))
          Context.five_programs
      in
      Table.add_row table (alabel :: cells))
    Context.paper_allocators;
  Table.render table

let tab4 ctx =
  time_and_miss_table ctx ~cache:"16K-dm"
    ~title:
      "Table 4: Total estimated execution time and time waiting for a \
       16-kilobyte direct-mapped cache miss"
  ^ "\nPaper shape: FirstFit worst everywhere; BSD/QuickFit lowest totals;\n\
     GNU local's low miss time does not make up for its CPU overhead.\n"

let tab5 ctx =
  time_and_miss_table ctx ~cache:"64K-dm"
    ~title:
      "Table 5: Total estimated execution time and time waiting for a \
       64-kilobyte direct-mapped cache miss"
  ^ "\nPaper shape: GNU local has the smallest miss time in most programs\n\
     at 64K, yet larger total time than QuickFit/BSD.\n"

let tab6 (ctx : Context.t) =
  let cache = "64K-dm" in
  let table =
    Table.create
      ~title:
        "Table 6: Effect of boundary tags on execution time in the GNU \
         local allocator (64K direct-mapped cache)"
      ~columns:
        (("Metric", Table.Left)
        :: List.map
             (fun (_, label) -> (label, Table.Right))
             Context.five_programs)
  in
  let per_program f =
    List.map (fun (pkey, _) -> f pkey) Context.five_programs
  in
  let get pkey key = Runs.get ctx.Context.runs ~profile:pkey ~allocator:key in
  let miss_rate_row key =
    per_program (fun pkey ->
        Table.fmt_float ~decimals:3
          (100. *. Artifact.miss_rate (get pkey key) ~cache))
  in
  let miss_penalty_row key =
    per_program (fun pkey ->
        let et =
          Artifact.exec_time (get pkey key) ~model:ctx.Context.model ~cache
        in
        Table.fmt_float ~decimals:2 (100. *. Exec_time.miss_fraction et))
  in
  Table.add_row table ("Miss rate, with tags (%)" :: miss_rate_row "gnu-local-tags");
  Table.add_row table
    ("Miss penalty, with tags (% of exec)" :: miss_penalty_row "gnu-local-tags");
  Table.add_row table ("Miss rate, no tags (%)" :: miss_rate_row "gnu-local");
  Table.add_row table
    ("Miss penalty, no tags (% of exec)" :: miss_penalty_row "gnu-local");
  Table.add_separator table;
  Table.add_row table
    ("Exec-time increase due to tags (%)"
    :: per_program (fun pkey ->
           let et key =
             Artifact.exec_time (get pkey key) ~model:ctx.Context.model ~cache
           in
           let with_tags = Exec_time.total_cycles (et "gnu-local-tags") in
           let without = Exec_time.total_cycles (et "gnu-local") in
           Table.fmt_float ~decimals:2
             (100. *. (float_of_int (with_tags - without) /. float_of_int without))));
  Table.render table
  ^ "\nPaper: boundary tags increase total execution time by 0.1%-1.1%;\n\
     elimination helps but is not decisive at 25-cycle penalties.\n"

(* The paper's allocator ranking, re-run on modern (2008-2017) L1/L2/L3
   hierarchies with real replacement policies.  Off-grid like the flush
   ablation: one driver pass per allocator on GS-Large, fanned out to
   every CPU preset's hierarchy so all presets see the identical
   trace. *)
let tabcpu (ctx : Context.t) =
  let scale = min 0.1 (Runs.scale ctx.Context.runs) in
  let profile = Workload.Programs.find "gs-large" in
  let cpus = Cachesim.Cpu.all in
  let runs =
    List.map
      (fun (akey, alabel) ->
        let hiers =
          List.map (fun cpu -> (cpu, Cachesim.Cpu.hierarchy cpu)) cpus
        in
        let heap = Allocators.Heap.create () in
        let alloc = Runs.build_allocator ~profile_key:"gs-large" ~allocator:akey heap in
        let sink =
          Memsim.Sink.fanout
            (List.map (fun (_, h) -> Cachesim.Hierarchy.sink h) hiers)
        in
        let r =
          Workload.Driver.run_with ~sink ~scale ~profile ~heap ~alloc ()
        in
        (alabel, r.Workload.Driver.instructions, hiers))
      Context.with_custom
  in
  let total cpu hier instructions =
    Cachesim.Cpu.total_cycles cpu hier ~instructions
  in
  let ranking =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: allocator ranking on modern CPU hierarchies \
            (GS-Large at scale %g, total cycles x10^6)"
           scale)
      ~columns:
        (("Allocator", Table.Left)
        :: List.map
             (fun (cpu : Cachesim.Cpu.t) -> (cpu.key, Table.Right))
             cpus)
  in
  List.iter
    (fun (alabel, instructions, hiers) ->
      Table.add_row ranking
        (alabel
        :: List.map
             (fun (cpu, hier) ->
               Table.fmt_float ~decimals:2
                 (float_of_int (total cpu hier instructions) /. 1e6))
             hiers))
    runs;
  (* Winner order per preset, cheapest first — the headline the paper's
     Figure 4-7 discussion asks about. *)
  let order =
    String.concat "\n"
      (List.mapi
         (fun i (cpu : Cachesim.Cpu.t) ->
           let ranked =
             List.sort compare
               (List.map
                  (fun (alabel, instructions, hiers) ->
                    (total cpu (snd (List.nth hiers i)) instructions, alabel))
                  runs)
           in
           Printf.sprintf "  %-12s %s" (cpu.key ^ ":")
             (String.concat " < " (List.map snd ranked)))
         cpus)
  in
  (* Per-level detail for the preset selected with --cpu. *)
  let cpu = ctx.Context.cpu in
  let detail =
    Table.create
      ~title:
        (Printf.sprintf "Per-level detail on %s (mem %d cycles)" cpu.label
           cpu.mem_latency)
      ~columns:
        (("Allocator", Table.Left)
        :: List.concat_map
             (fun (l : Cachesim.Cpu.level) ->
               [ (l.config.Cachesim.Config.name ^ " miss (%)", Table.Right) ])
             cpu.levels
        @ [ ("stalls (x10^6)", Table.Right); ("total (x10^6)", Table.Right) ])
  in
  List.iter
    (fun (alabel, instructions, hiers) ->
      let hier =
        snd (List.find (fun ((c : Cachesim.Cpu.t), _) -> c.key = cpu.key) hiers)
      in
      let miss_cells =
        List.mapi
          (fun i _ ->
            Table.fmt_float ~decimals:2
              (Cachesim.Stats.miss_rate_pct (Cachesim.Hierarchy.level_stats hier i)))
          cpu.levels
      in
      Table.add_row detail
        (alabel
        :: miss_cells
        @ [ Table.fmt_float ~decimals:2
              (float_of_int (Cachesim.Cpu.stall_cycles cpu hier) /. 1e6);
            Table.fmt_float ~decimals:2
              (float_of_int (total cpu hier instructions) /. 1e6) ]))
    runs;
  Table.render ranking
  ^ "\nRanking per preset (cheapest first):\n" ^ order ^ "\n\n"
  ^ Table.render detail
  ^ "\nReading: policies are per level (L1 tree-PLRU everywhere; QLRU in\n\
     Skylake-era L2/L3).  Compare against tab4's 1993 ranking to see\n\
     whether segregated storage still wins under three levels of\n\
     pseudo-LRU.\n"
