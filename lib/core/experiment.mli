(** The experiment registry: every table and figure of the paper's
    evaluation, plus the ablations, addressable by id. *)

type t = {
  id : string;  (** e.g. ["fig4"], ["tab6"], ["abl-coalesce"]. *)
  title : string;
  paper_ref : string;  (** Where it appears in the paper. *)
  cells : (string * string) list;
      (** The (profile, allocator) grid cells the renderer demands —
          the prefetch hint {!warm} feeds to {!Runs.prefetch}.  Empty
          for static experiments and for the two ablations that run
          fresh off-grid simulations at render time. *)
  render : Context.t -> string;
}

val all : t list
(** Paper order: fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
    tab2..tab6, then ablations. *)

val find : string -> t
(** @raise Not_found for unknown ids. *)

val ids : unit -> string list

val warm : Context.t -> string list -> unit
(** [warm ctx ids] fills the context's run grid for every cell the
    named experiments will demand, using up to [Runs.jobs ctx.runs]
    worker domains ({!Runs.prefetch}).  Purely a wall-clock
    optimization: rendering after a warm pass is bit-identical to
    rendering cold.
    @raise Not_found for unknown ids. *)

val warm_all : Context.t -> unit
(** {!warm} over {!ids}. *)

val run : Context.t -> string -> string
(** [run ctx id] renders one experiment, warming its cells first.
    @raise Not_found for unknown ids. *)

val run_source : Context.t -> Memsim.Trace.Source.t -> string
(** [run_source ctx source] resolves the source's artifact through the
    grid ({!Runs.get_source}: memo, store, or simulation) and renders
    the per-cell {!Ingest.report} for it — the same report whether the
    events came from a synthetic run or an imported capture.
    @raise Not_found for unknown synthetic program/allocator keys.
    @raise Failure for malformed trace files. *)

val run_all : Context.t -> (string * string) list
(** Renders every experiment, sharing the context's memoized runs and
    warming the full grid up front. *)
