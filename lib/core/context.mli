(** Shared state for experiment regeneration. *)

type t = {
  runs : Runs.t;
  model : Metrics.Cost_model.t;
  cpu : Cachesim.Cpu.t;
      (** Preset whose hierarchy the modern-CPU experiments detail
          ([--cpu]; default Skylake). *)
}

val create :
  ?scale:float ->
  ?jobs:int ->
  ?store:Store.t ->
  ?model:Metrics.Cost_model.t ->
  ?cpu:Cachesim.Cpu.t ->
  unit ->
  t
(** [jobs] (default 1) is the worker-domain bound forwarded to
    {!Runs.create}; it only affects how fast the grid fills
    ({!Runs.prefetch}), never the numbers.  [store] attaches a
    persistent artifact store — again only a matter of speed: a warm
    store and a cold grid render byte-identically. *)

(** The one CLI/service options builder: every entry point (run, all,
    report, probe, profile, serve, the bench) resolves the shared knobs
    — scale, miss penalty, worker domains, store directory, CPU preset —
    through {!Options.build}, which pins the precedence
    [flag > LOCLAB_* environment > default] in one place instead of
    re-parsing per subcommand. *)
module Options : sig
  type t = {
    scale : float;  (** In (0, 4]. *)
    penalty : int;  (** Cache miss penalty, cycles; >= 0. *)
    jobs : int;  (** Resolved worker domains; >= 1 (0 meant "per core"). *)
    store_dir : string option;  (** None = no persistent store. *)
    cpu : Cachesim.Cpu.t;
  }

  val default : t
  (** scale 0.25, penalty 25, jobs 1, no store, Skylake. *)

  val build :
    ?getenv:(string -> string option) ->
    ?scale:float ->
    ?penalty:int ->
    ?jobs:int ->
    ?store_dir:string ->
    ?cpu:Cachesim.Cpu.t ->
    unit ->
    (t, string) result
  (** Resolve every option with precedence [flag > env > default]: a
      given optional argument wins outright (its environment variable
      is not even read); otherwise [LOCLAB_SCALE] / [LOCLAB_PENALTY] /
      [LOCLAB_JOBS] / [LOCLAB_STORE] / [LOCLAB_CPU] are consulted via
      [getenv] (default [Sys.getenv_opt]; injectable for tests).
      [Error msg] on any out-of-range value or unparseable environment
      variable, naming the offender — flags and environment are
      validated identically.  [jobs = 0] resolves to one domain per
      core; an empty store dir means "no store". *)
end

val of_options : Options.t -> t
(** Build the context: opens the store directory (creating it if
    absent) and instantiates the cost model with the resolved penalty.
    @raise Sys_error when the store path exists and is not a
    directory, or cannot be created. *)

val five_programs : (string * string) list
(** (profile key, paper label) for the five-program suite, in the
    paper's order: Espresso, GS, PTC, Gawk, Make. *)

val paper_allocators : (string * string) list
(** (registry key, paper label) for the five studied allocators. *)

val with_custom : (string * string) list
(** {!paper_allocators} plus the synthesized allocator. *)
