(** Shared state for experiment regeneration. *)

type t = {
  runs : Runs.t;
  model : Metrics.Cost_model.t;
  cpu : Cachesim.Cpu.t;
      (** Preset whose hierarchy the modern-CPU experiments detail
          ([--cpu]; default Skylake). *)
}

val create :
  ?scale:float ->
  ?jobs:int ->
  ?store:Store.t ->
  ?model:Metrics.Cost_model.t ->
  ?cpu:Cachesim.Cpu.t ->
  unit ->
  t
(** [jobs] (default 1) is the worker-domain bound forwarded to
    {!Runs.create}; it only affects how fast the grid fills
    ({!Runs.prefetch}), never the numbers.  [store] attaches a
    persistent artifact store — again only a matter of speed: a warm
    store and a cold grid render byte-identically. *)

val five_programs : (string * string) list
(** (profile key, paper label) for the five-program suite, in the
    paper's order: Espresso, GS, PTC, Gawk, Make. *)

val paper_allocators : (string * string) list
(** (registry key, paper label) for the five studied allocators. *)

val with_custom : (string * string) list
(** {!paper_allocators} plus the synthesized allocator. *)
