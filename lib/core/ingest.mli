(** Report rendering for ingested external-trace cells.

    External artifacts carry no workload summary (no instructions, no
    allocator statistics), so the paper tables don't apply; this report
    shows the trace's provenance, stream identity, reference counts,
    the full cache sweep and the two-level hierarchy. *)

val report : Artifact.t -> string
