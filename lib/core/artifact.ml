let schema_version = 3

type meta = {
  program : string;
  allocator : string;
  scale : float;
  seed : int;
  schema_version : int;
  trace_checksum : int;
}

type provenance = {
  source_format : string;
  source_bytes : int;
  source_checksum : int;
}

let synthetic_provenance =
  { source_format = "synthetic"; source_bytes = 0; source_checksum = 0 }

type summary = {
  steps_run : int;
  instructions : int;
  app_instructions : int;
  malloc_instructions : int;
  free_instructions : int;
  data_refs : int;
  app_refs : int;
  allocator_refs : int;
  heap_used : int;
  max_live_bytes : int;
}

type t = {
  meta : meta;
  provenance : provenance;
  summary : summary;
  alloc_stats : Allocators.Alloc_stats.t;
  caches : (Cachesim.Config.t * Cachesim.Stats.t) list;
  hierarchy : (Cachesim.Config.t * Cachesim.Stats.t) list;
  fault_curve : Vmsim.Fault_curve.t;
}

let of_run ?(provenance = synthetic_provenance) ~program ~allocator ~scale
    ~trace_checksum ~(result : Workload.Driver.result) ~caches ~hierarchy
    ~fault_curve () =
  { meta =
      { program;
        allocator;
        scale;
        seed = result.Workload.Driver.profile.Workload.Profile.seed;
        schema_version;
        trace_checksum };
    provenance;
    summary =
      { steps_run = result.steps_run;
        instructions = result.instructions;
        app_instructions = result.app_instructions;
        malloc_instructions = result.malloc_instructions;
        free_instructions = result.free_instructions;
        data_refs = result.data_refs;
        app_refs = result.app_refs;
        allocator_refs = result.allocator_refs;
        heap_used = result.heap_used;
        max_live_bytes = result.max_live_bytes };
    alloc_stats = result.alloc_stats;
    caches;
    hierarchy;
    fault_curve }

(* Levels are positional: 0 = closest to the processor. *)
let level t i =
  match List.nth_opt t.hierarchy i with
  | Some (_, s) -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Artifact.level: level %d of a %d-level hierarchy" i
           (List.length t.hierarchy))

let l1 t = level t 0
let l2 t = level t 1

(* ---- content addressing -------------------------------------------- *)

let digest ~program ~allocator ~scale ~seed =
  (* %h renders the float's exact bits, so digests never depend on a
     decimal rounding choice. *)
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "loclab-cell|%s|%s|%h|%d|%d" program allocator scale
          seed schema_version))

let digest_of_meta m =
  digest ~program:m.program ~allocator:m.allocator ~scale:m.scale ~seed:m.seed

(* ---- codec --------------------------------------------------------- *)

module W = Store.Codec.Writer
module R = Store.Codec.Reader

(* The meta header layout is FROZEN: decode_meta must keep working on
   payloads from every past and future schema version. *)
let write_meta w (m : meta) =
  W.string w m.program;
  W.string w m.allocator;
  W.float w m.scale;
  W.int w m.seed;
  W.int w m.schema_version;
  W.int w m.trace_checksum

let read_meta r =
  let program = R.string r in
  let allocator = R.string r in
  let scale = R.float r in
  let seed = R.int r in
  let schema_version = R.int r in
  let trace_checksum = R.int r in
  { program; allocator; scale; seed; schema_version; trace_checksum }

(* Provenance joined the body in schema 3 (right after the frozen meta
   header), recording where the cell's reference trace came from:
   "synthetic" for workload models, a trace format name for ingested
   external captures (with the capture's byte length and CRC-32). *)
let write_provenance w (p : provenance) =
  W.string w p.source_format;
  W.int w p.source_bytes;
  W.int w p.source_checksum

let read_provenance r =
  let source_format = R.string r in
  let source_bytes = R.int r in
  let source_checksum = R.int r in
  { source_format; source_bytes; source_checksum }

let write_summary w (s : summary) =
  W.int w s.steps_run;
  W.int w s.instructions;
  W.int w s.app_instructions;
  W.int w s.malloc_instructions;
  W.int w s.free_instructions;
  W.int w s.data_refs;
  W.int w s.app_refs;
  W.int w s.allocator_refs;
  W.int w s.heap_used;
  W.int w s.max_live_bytes

let read_summary r =
  let steps_run = R.int r in
  let instructions = R.int r in
  let app_instructions = R.int r in
  let malloc_instructions = R.int r in
  let free_instructions = R.int r in
  let data_refs = R.int r in
  let app_refs = R.int r in
  let allocator_refs = R.int r in
  let heap_used = R.int r in
  let max_live_bytes = R.int r in
  { steps_run;
    instructions;
    app_instructions;
    malloc_instructions;
    free_instructions;
    data_refs;
    app_refs;
    allocator_refs;
    heap_used;
    max_live_bytes }

let write_alloc_stats w (s : Allocators.Alloc_stats.t) =
  W.int w s.malloc_calls;
  W.int w s.free_calls;
  W.int w s.realloc_calls;
  W.int w s.realloc_moves;
  W.int w s.bytes_requested;
  W.int w s.bytes_granted;
  W.int w s.live_bytes;
  W.int w s.max_live_bytes;
  W.int w s.live_objects;
  W.int w s.max_live_objects

let read_alloc_stats r : Allocators.Alloc_stats.t =
  let malloc_calls = R.int r in
  let free_calls = R.int r in
  let realloc_calls = R.int r in
  let realloc_moves = R.int r in
  let bytes_requested = R.int r in
  let bytes_granted = R.int r in
  let live_bytes = R.int r in
  let max_live_bytes = R.int r in
  let live_objects = R.int r in
  let max_live_objects = R.int r in
  { malloc_calls;
    free_calls;
    realloc_calls;
    realloc_moves;
    bytes_requested;
    bytes_granted;
    live_bytes;
    max_live_bytes;
    live_objects;
    max_live_objects }

let write_cache_stats w (s : Cachesim.Stats.t) =
  W.int w s.accesses;
  W.int w s.misses;
  W.int w s.read_accesses;
  W.int w s.read_misses;
  W.int w s.write_accesses;
  W.int w s.write_misses;
  W.int w s.cold_misses;
  W.int w s.writebacks;
  W.int w s.app_accesses;
  W.int w s.app_misses;
  W.int w s.malloc_accesses;
  W.int w s.malloc_misses;
  W.int w s.free_accesses;
  W.int w s.free_misses

let read_cache_stats r : Cachesim.Stats.t =
  let accesses = R.int r in
  let misses = R.int r in
  let read_accesses = R.int r in
  let read_misses = R.int r in
  let write_accesses = R.int r in
  let write_misses = R.int r in
  let cold_misses = R.int r in
  let writebacks = R.int r in
  let app_accesses = R.int r in
  let app_misses = R.int r in
  let malloc_accesses = R.int r in
  let malloc_misses = R.int r in
  let free_accesses = R.int r in
  let free_misses = R.int r in
  { accesses;
    misses;
    read_accesses;
    read_misses;
    write_accesses;
    write_misses;
    cold_misses;
    writebacks;
    app_accesses;
    app_misses;
    malloc_accesses;
    malloc_misses;
    free_accesses;
    free_misses }

let write_config w (c : Cachesim.Config.t) =
  W.string w c.name;
  W.int w c.size_bytes;
  W.int w c.block_bytes;
  W.int w c.associativity;
  W.string w (Cachesim.Policy.to_string c.policy)

let read_config r : Cachesim.Config.t =
  let name = R.string r in
  let size_bytes = R.int r in
  let block_bytes = R.int r in
  let associativity = R.int r in
  let policy =
    match Cachesim.Policy.of_string (R.string r) with
    | Ok p -> p
    | Error e -> raise (Store.Codec.Error e)
  in
  Cachesim.Config.make ~name ~block_bytes ~associativity ~policy size_bytes

let write_curve w (c : Vmsim.Fault_curve.t) =
  W.int w c.page_bytes;
  W.int w c.references;
  W.int w c.cold;
  W.int_array w c.hist

let read_curve r : Vmsim.Fault_curve.t =
  let page_bytes = R.int r in
  let references = R.int r in
  let cold = R.int r in
  let hist = R.int_array r in
  { page_bytes; references; cold; hist }

let encode t =
  let w = W.create () in
  write_meta w t.meta;
  write_provenance w t.provenance;
  write_summary w t.summary;
  write_alloc_stats w t.alloc_stats;
  W.list w
    (fun (config, stats) ->
      write_config w config;
      write_cache_stats w stats)
    t.caches;
  W.list w
    (fun (config, stats) ->
      write_config w config;
      write_cache_stats w stats)
    t.hierarchy;
  write_curve w t.fault_curve;
  W.contents w

let decode payload =
  match
    let r = R.of_string payload in
    let meta = read_meta r in
    if meta.schema_version <> schema_version then
      Error
        (Printf.sprintf "schema version %d (this build reads %d)"
           meta.schema_version schema_version)
    else begin
      let provenance = read_provenance r in
      let summary = read_summary r in
      let alloc_stats = read_alloc_stats r in
      let caches =
        R.list r (fun r ->
            let config = read_config r in
            let stats = read_cache_stats r in
            (config, stats))
      in
      let hierarchy =
        R.list r (fun r ->
            let config = read_config r in
            let stats = read_cache_stats r in
            (config, stats))
      in
      let fault_curve = read_curve r in
      if not (R.at_end r) then Error "trailing bytes after artifact"
      else
        Ok
          { meta; provenance; summary; alloc_stats; caches; hierarchy;
            fault_curve }
    end
  with
  | result -> result
  | exception Store.Codec.Error e -> Error e
  | exception Invalid_argument e ->
      (* Config.make validation: a decoded size/associativity that no
         longer forms a legal cache is corruption, not a crash. *)
      Error e

let decode_meta payload =
  match read_meta (R.of_string payload) with
  | meta -> Ok meta
  | exception Store.Codec.Error e -> Error e

let equal a b =
  (* Fields are ints, floats (finite by construction), strings, arrays
     and lists thereof, so structural equality is exact; scale compares
     by bits via its float value (never NaN: Runs rejects those). *)
  a = b

(* ---- derived metrics ----------------------------------------------- *)

let allocator_fraction t =
  if t.summary.instructions = 0 then 0.
  else
    float_of_int
      (t.summary.malloc_instructions + t.summary.free_instructions)
    /. float_of_int t.summary.instructions

let cache_stats t ~name =
  match
    List.find_opt (fun (c, _) -> c.Cachesim.Config.name = name) t.caches
  with
  | Some (_, s) -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Artifact.cache_stats: unknown cache %S (known: %s)"
           name
           (String.concat ", "
              (List.map (fun (c, _) -> c.Cachesim.Config.name) t.caches)))

let miss_rate t ~cache = Cachesim.Stats.miss_rate (cache_stats t ~name:cache)

let exec_time t ~model ~cache =
  let s = cache_stats t ~name:cache in
  Metrics.Exec_time.make ~model ~instructions:t.summary.instructions
    ~data_refs:t.summary.data_refs ~misses:s.Cachesim.Stats.misses

(* ---- export -------------------------------------------------------- *)

let stats_json (s : Cachesim.Stats.t) =
  Metrics.Export.Obj
    [ ("accesses", Int s.accesses);
      ("misses", Int s.misses);
      ("read_accesses", Int s.read_accesses);
      ("read_misses", Int s.read_misses);
      ("write_accesses", Int s.write_accesses);
      ("write_misses", Int s.write_misses);
      ("cold_misses", Int s.cold_misses);
      ("writebacks", Int s.writebacks);
      ("app_accesses", Int s.app_accesses);
      ("app_misses", Int s.app_misses);
      ("malloc_accesses", Int s.malloc_accesses);
      ("malloc_misses", Int s.malloc_misses);
      ("free_accesses", Int s.free_accesses);
      ("free_misses", Int s.free_misses) ]

let to_json t =
  let open Metrics.Export in
  to_string
    (Obj
       [ ( "meta",
           Obj
             [ ("program", String t.meta.program);
               ("allocator", String t.meta.allocator);
               ("scale", Float t.meta.scale);
               ("seed", Int t.meta.seed);
               ("schema_version", Int t.meta.schema_version);
               ("trace_checksum", Int t.meta.trace_checksum);
               ("digest", String (digest_of_meta t.meta)) ] );
         ( "provenance",
           Obj
             [ ("source_format", String t.provenance.source_format);
               ("source_bytes", Int t.provenance.source_bytes);
               ("source_checksum", Int t.provenance.source_checksum) ] );
         ( "summary",
           Obj
             [ ("steps_run", Int t.summary.steps_run);
               ("instructions", Int t.summary.instructions);
               ("app_instructions", Int t.summary.app_instructions);
               ("malloc_instructions", Int t.summary.malloc_instructions);
               ("free_instructions", Int t.summary.free_instructions);
               ("data_refs", Int t.summary.data_refs);
               ("app_refs", Int t.summary.app_refs);
               ("allocator_refs", Int t.summary.allocator_refs);
               ("heap_used", Int t.summary.heap_used);
               ("max_live_bytes", Int t.summary.max_live_bytes) ] );
         ( "alloc_stats",
           Obj
             [ ("malloc_calls", Int t.alloc_stats.malloc_calls);
               ("free_calls", Int t.alloc_stats.free_calls);
               ("realloc_calls", Int t.alloc_stats.realloc_calls);
               ("realloc_moves", Int t.alloc_stats.realloc_moves);
               ("bytes_requested", Int t.alloc_stats.bytes_requested);
               ("bytes_granted", Int t.alloc_stats.bytes_granted);
               ("max_live_bytes", Int t.alloc_stats.max_live_bytes);
               ("max_live_objects", Int t.alloc_stats.max_live_objects) ] );
         ( "caches",
           List
             (List.map
                (fun ((c : Cachesim.Config.t), s) ->
                  Obj
                    [ ("name", String c.name);
                      ("size_bytes", Int c.size_bytes);
                      ("block_bytes", Int c.block_bytes);
                      ("associativity", Int c.associativity);
                      ( "policy",
                        String (Cachesim.Policy.to_string c.policy) );
                      ("stats", stats_json s) ])
                t.caches) );
         ( "hierarchy",
           List
             (List.map
                (fun ((c : Cachesim.Config.t), s) ->
                  Obj
                    [ ("name", String c.name);
                      ("size_bytes", Int c.size_bytes);
                      ("block_bytes", Int c.block_bytes);
                      ("associativity", Int c.associativity);
                      ( "policy",
                        String (Cachesim.Policy.to_string c.policy) );
                      ("stats", stats_json s) ])
                t.hierarchy) );
         ( "fault_curve",
           Obj
             [ ("page_bytes", Int t.fault_curve.page_bytes);
               ("references", Int t.fault_curve.references);
               ("cold", Int t.fault_curve.cold);
               ( "hist",
                 List
                   (Array.to_list
                      (Array.map (fun n -> Int n) t.fault_curve.hist)) ) ] ) ])

let csv_header =
  [ "program"; "allocator"; "scale"; "seed"; "trace_checksum"; "cache";
    "cache_bytes"; "block_bytes"; "associativity"; "policy"; "accesses";
    "misses";
    "miss_rate"; "instructions"; "malloc_instructions"; "free_instructions";
    "data_refs"; "heap_used"; "max_live_bytes"; "malloc_calls"; "free_calls";
    "footprint_bytes" ]

let to_csv_rows t =
  List.map
    (fun ((c : Cachesim.Config.t), (s : Cachesim.Stats.t)) ->
      [ t.meta.program;
        t.meta.allocator;
        Printf.sprintf "%g" t.meta.scale;
        string_of_int t.meta.seed;
        string_of_int t.meta.trace_checksum;
        c.name;
        string_of_int c.size_bytes;
        string_of_int c.block_bytes;
        string_of_int c.associativity;
        Cachesim.Policy.to_string c.policy;
        string_of_int s.accesses;
        string_of_int s.misses;
        Printf.sprintf "%.6f" (Cachesim.Stats.miss_rate s);
        string_of_int t.summary.instructions;
        string_of_int t.summary.malloc_instructions;
        string_of_int t.summary.free_instructions;
        string_of_int t.summary.data_refs;
        string_of_int t.summary.heap_used;
        string_of_int t.summary.max_live_bytes;
        string_of_int t.alloc_stats.malloc_calls;
        string_of_int t.alloc_stats.free_calls;
        string_of_int (Vmsim.Fault_curve.footprint_bytes t.fault_curve) ])
    t.caches
