type t = {
  id : string;
  title : string;
  paper_ref : string;
  cells : (string * string) list;
  render : Context.t -> string;
}

(* Grid cells each renderer will demand, declared up front so a warm
   pass can fill the memo in parallel before any rendering starts.
   The lists mirror the Runs.get calls in figures.ml / tables.ml /
   ablations.ml; they are a prefetch hint, not a contract — a missing
   cell is still computed lazily by Runs.get, it just isn't parallel. *)

let cross programs allocators =
  List.concat_map
    (fun (p, _) -> List.map (fun (a, _) -> (p, a)) allocators)
    programs

let keys_of l = List.map (fun k -> (k, k)) l

let paper_grid = cross Context.five_programs Context.paper_allocators

let gs_large_paper =
  cross [ ("gs-large", "GS") ] Context.paper_allocators

let gs_large_custom = cross [ ("gs-large", "GS") ] Context.with_custom

let all =
  [
    { id = "fig1";
      title = "Percent of time in malloc and free";
      paper_ref = "Figure 1, section 3.1";
      cells = paper_grid;
      render = Figures.fig1 };
    { id = "fig2";
      title = "Page fault rate for GhostScript";
      paper_ref = "Figure 2, section 4.1";
      cells = gs_large_paper;
      render = Figures.fig2 };
    { id = "fig3";
      title = "Page fault rate for Pascal-to-C";
      paper_ref = "Figure 3, section 4.1";
      cells = cross [ ("ptc", "PTC") ] Context.paper_allocators;
      render = Figures.fig3 };
    { id = "fig4";
      title = "Normalized execution time, 16K cache";
      paper_ref = "Figure 4, section 4.2";
      cells = paper_grid;
      render = Figures.fig4 };
    { id = "fig5";
      title = "Normalized execution time, 64K cache";
      paper_ref = "Figure 5, section 4.2";
      cells = paper_grid;
      render = Figures.fig5 };
    { id = "fig6";
      title = "Cache miss rate, GS-Small";
      paper_ref = "Figure 6, section 4.2";
      cells = cross [ ("gs-small", "GS") ] Context.paper_allocators;
      render = Figures.fig6 };
    { id = "fig7";
      title = "Cache miss rate, GS-Medium";
      paper_ref = "Figure 7, section 4.2";
      cells = cross [ ("gs-medium", "GS") ] Context.paper_allocators;
      render = Figures.fig7 };
    { id = "fig8";
      title = "Cache miss rate, GS-Large";
      paper_ref = "Figure 8, section 4.2";
      cells = gs_large_paper;
      render = Figures.fig8 };
    { id = "fig9";
      title = "Size-mapping array";
      paper_ref = "Figure 9, section 4.4";
      cells = [];  (* static construction, no simulation *)
      render = Figures.fig9 };
    { id = "tab2";
      title = "Test program performance information";
      paper_ref = "Table 2, section 3.1";
      cells = cross Context.five_programs [ ("firstfit", "FirstFit") ];
      render = Tables.tab2 };
    { id = "tab3";
      title = "GhostScript input sets";
      paper_ref = "Table 3, section 4.2";
      cells =
        cross
          (keys_of [ "gs-small"; "gs-medium"; "gs-large" ])
          [ ("firstfit", "FirstFit") ];
      render = Tables.tab3 };
    { id = "tab4";
      title = "Execution and miss time, 16K cache";
      paper_ref = "Table 4, section 4.2";
      cells = paper_grid;
      render = Tables.tab4 };
    { id = "tab5";
      title = "Execution and miss time, 64K cache";
      paper_ref = "Table 5, section 4.2";
      cells = paper_grid;
      render = Tables.tab5 };
    { id = "tab6";
      title = "Effect of boundary tags on GNU local";
      paper_ref = "Table 6, section 4.3";
      cells =
        cross Context.five_programs
          (keys_of [ "gnu-local-tags"; "gnu-local" ]);
      render = Tables.tab6 };
    { id = "tabcpu";
      title = "Allocator ranking on modern CPU hierarchies";
      paper_ref = "extension; Risco-Martin et al. methodology";
      cells = [];  (* fresh off-grid hierarchy simulations at render time *)
      render = Tables.tabcpu };
    { id = "abl-coalesce";
      title = "Coalescing ablation (FirstFit)";
      paper_ref = "section 4.1 discussion";
      cells =
        cross
          (keys_of [ "gs-large"; "ptc"; "gawk" ])
          (keys_of [ "firstfit"; "firstfit-nc" ]);
      render = Ablations.coalescing };
    { id = "abl-sizeclass";
      title = "Size-class policy ablation";
      paper_ref = "section 4.4 discussion";
      cells =
        cross [ ("gs-large", "GS") ]
          (keys_of [ "bsd"; "quickfit"; "gnu-local"; "custom" ]);
      render = Ablations.size_classes };
    { id = "abl-assoc";
      title = "Cache associativity ablation";
      paper_ref = "section 2.2 discussion";
      cells = gs_large_custom;
      render = Ablations.associativity };
    { id = "abl-l2";
      title = "Two-level hierarchy extension";
      paper_ref = "section 1.1 discussion";
      cells = gs_large_custom;
      render = Ablations.two_level };
    { id = "abl-blocksize";
      title = "Cache block-size / prefetch extension";
      paper_ref = "section 4.2 discussion";
      cells = gs_large_custom;
      render = Ablations.block_size };
    { id = "abl-seqfam";
      title = "Sequential-fit family extension";
      paper_ref = "section 5 conclusion";
      cells =
        cross [ ("gs-large", "GS") ]
          (keys_of [ "firstfit"; "bestfit"; "gnu-g++"; "quickfit" ]);
      render = Ablations.seq_family };
    { id = "abl-flush";
      title = "Context-switch flush extension";
      paper_ref = "section 3.2 discussion";
      cells = [];  (* fresh off-grid simulations at render time *)
      render = Ablations.flush };
    { id = "abl-lifetime";
      title = "Lifetime-prediction future work";
      paper_ref = "section 5.1 future work";
      cells = [];  (* fresh off-grid simulations at render time *)
      render = Ablations.lifetime_prediction };
    { id = "abl-penalty";
      title = "Miss-penalty sweep extension";
      paper_ref = "section 4.4 discussion";
      cells =
        cross [ ("gs-large", "GS") ]
          (keys_of [ "quickfit"; "bsd"; "gnu-local"; "firstfit"; "custom" ]);
      render = Ablations.penalty_sweep };
  ]

let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some e -> e
  | None -> raise Not_found

let ids () = List.map (fun e -> e.id) all

let warm ctx ids =
  Runs.prefetch ctx.Context.runs
    (List.concat_map (fun id -> (find id).cells) ids)

let warm_all ctx = warm ctx (ids ())

let run ctx id =
  let e = find id in
  Telemetry.Span.with_span ~cat:"experiment" e.id @@ fun () ->
  Runs.prefetch ctx.Context.runs e.cells;
  e.render ctx

let run_source ctx source =
  Telemetry.Span.with_span ~cat:"experiment"
    (Memsim.Trace.Source.to_string source)
  @@ fun () -> Ingest.report (Runs.get_source ctx.Context.runs source)

let run_all ctx =
  warm_all ctx;
  List.map
    (fun e ->
      ( e.id,
        Telemetry.Span.with_span ~cat:"experiment" e.id (fun () ->
            e.render ctx) ))
    all
