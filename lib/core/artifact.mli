(** The typed, versioned result of one grid cell.

    An artifact is everything a renderer ever reads about one
    (program, allocator) simulation: the run summary (instruction and
    reference counts, heap growth), allocation statistics, per-config
    cache statistics, the per-level hierarchy statistics, and the frozen
    page-fault curve — plus a metadata header naming the inputs that produced it
    (program, allocator, scale, seed, schema version) and the trace
    checksum for drift detection.  {!Figures} and {!Tables} are pure
    functions of artifacts; {!Runs} fills them (from simulation or the
    persistent {!Store}); the binary codec here is what the store
    persists.

    Schema evolution: bump {!schema_version} whenever the encoding or
    the simulated contents change meaning.  The version participates in
    the cell {!digest}, so old cells are simply never looked up again —
    there is no migration, only re-simulation ([loclab store gc] reclaims
    the orphans).  The {!meta} header's encoding is frozen across schema
    versions (it is written first and read by {!decode_meta}), so tools
    can still identify foreign-schema cells. *)

val schema_version : int

type meta = {
  program : string;  (** Profile key, e.g. ["gs-large"]. *)
  allocator : string;  (** Grid key, e.g. ["firstfit"] or ["custom"]. *)
  scale : float;
  seed : int;  (** The profile's workload PRNG seed. *)
  schema_version : int;
  trace_checksum : int;
      (** {!Memsim.Sink.Checksum} over the cell's full reference trace. *)
}

(** Where the cell's reference trace came from (schema 3+).  Synthetic
    workload cells carry [{source_format = "synthetic"; 0; 0}];
    ingested external traces record the capture's format name, byte
    length and CRC-32, so an artifact is auditable back to the exact
    bytes that produced it. *)
type provenance = {
  source_format : string;  (** ["synthetic"], or a trace format name. *)
  source_bytes : int;  (** Byte length of the imported capture. *)
  source_checksum : int;  (** CRC-32 of the imported capture's bytes. *)
}

val synthetic_provenance : provenance

type summary = {
  steps_run : int;
  instructions : int;
  app_instructions : int;
  malloc_instructions : int;
  free_instructions : int;
  data_refs : int;
  app_refs : int;
  allocator_refs : int;
  heap_used : int;
  max_live_bytes : int;
}

type t = {
  meta : meta;
  provenance : provenance;
  summary : summary;
  alloc_stats : Allocators.Alloc_stats.t;
  caches : (Cachesim.Config.t * Cachesim.Stats.t) list;
      (** Every simulated configuration, in simulation order. *)
  hierarchy : (Cachesim.Config.t * Cachesim.Stats.t) list;
      (** Hierarchy levels, outermost first (the paper-era default is
          16K-dm over 256K-dm); each level's config carries its
          replacement {!Cachesim.Policy.t}. *)
  fault_curve : Vmsim.Fault_curve.t;
}

val of_run :
  ?provenance:provenance ->
  program:string ->
  allocator:string ->
  scale:float ->
  trace_checksum:int ->
  result:Workload.Driver.result ->
  caches:(Cachesim.Config.t * Cachesim.Stats.t) list ->
  hierarchy:(Cachesim.Config.t * Cachesim.Stats.t) list ->
  fault_curve:Vmsim.Fault_curve.t ->
  unit ->
  t
(** Distil a finished simulation.  [allocator] is the grid key (not the
    allocator's display name); the seed is taken from the result's
    profile.  [provenance] defaults to {!synthetic_provenance}. *)

(** {1 Content addressing} *)

val digest :
  program:string -> allocator:string -> scale:float -> seed:int -> string
(** Hex digest of the cell coordinates plus {!schema_version} — the
    store filename.  Every input that can change the numbers is either
    part of the digest or part of the code (in which case bumping
    {!schema_version} rolls the key space). *)

val digest_of_meta : meta -> string

(** {1 Codec} *)

val encode : t -> string
(** Compact binary encoding (the payload framed by {!Store.put}). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; [Error reason] on truncation, trailing bytes,
    or a foreign {!schema_version}.  Never raises. *)

val decode_meta : string -> (meta, string) result
(** Read only the (version-frozen) metadata header, succeeding even for
    payloads whose body layout belongs to another schema version. *)

val equal : t -> t -> bool
(** Structural equality of every field, histograms element-wise. *)

(** {1 Derived metrics (what renderers consume)} *)

val allocator_fraction : t -> float
(** Fraction of instructions spent in malloc/free (Figure 1). *)

val level : t -> int -> Cachesim.Stats.t
(** Statistics of hierarchy level [i] (0 = closest to the processor).
    @raise Invalid_argument when the artifact has no such level. *)

val l1 : t -> Cachesim.Stats.t
(** [level t 0]. *)

val l2 : t -> Cachesim.Stats.t
(** [level t 1]. *)

val cache_stats : t -> name:string -> Cachesim.Stats.t
(** @raise Invalid_argument if the configuration was not simulated; the
    message lists the configurations that were. *)

val miss_rate : t -> cache:string -> float

val exec_time :
  t -> model:Metrics.Cost_model.t -> cache:string -> Metrics.Exec_time.t
(** The paper's [I + (M x P) D] for this cell under a named cache. *)

(** {1 Export} *)

val to_json : t -> string
(** The full artifact as one compact JSON object (one artifact per line
    = JSON-lines), including the fault-curve histogram. *)

val csv_header : string list

val to_csv_rows : t -> string list list
(** Long-format rows, one per simulated cache configuration, each
    carrying the cell coordinates and run summary alongside that
    configuration's statistics.  Render with {!Metrics.Export.csv_row}. *)
