(** A bounded pool of worker domains with deterministic result order.

    The run grid's cells (one fully instrumented simulation per
    (program, allocator) pair) are mutually independent: each owns its
    heap, RNG and simulator sinks.  This pool evaluates such independent
    jobs on OCaml 5 domains while presenting the sequential contract the
    reproduction depends on: {!map} returns results in input order and
    re-raises the first exception (by input position), so a parallel
    grid fill is observationally identical to [List.map] — only faster.

    Workers pull jobs from a queue guarded by a [Mutex]/[Condition]
    pair; nothing here is work-stealing or clever, because grid cells
    are coarse (hundreds of milliseconds to seconds each) and the win is
    simply keeping [jobs] cores busy. *)

type t

val create : jobs:int -> t
(** A pool running at most [jobs] tasks concurrently.  [jobs] is
    clamped to [\[1, 64\]] (OCaml 5 caps live domains at 128 per
    process).  With [jobs = 1] no domains are spawned and {!map}
    degenerates to [List.map] on the calling domain; if the runtime
    cannot allocate all requested domains the pool silently runs with
    however many it got, degrading throughput but never results. *)

val jobs : t -> int
(** The (clamped) parallelism the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], possibly
    concurrently, and returns the results in the order of [xs].

    If one or more applications raise, the non-raising results are
    discarded and the exception of the smallest input index is
    re-raised (with its backtrace) on the calling domain — the same
    exception [List.map f xs] would surface, since [List.map] applies
    [f] left to right.

    @raise Invalid_argument if the pool has been {!shutdown}. *)

val shutdown : t -> unit
(** Joins the worker domains after they drain the queue.  Idempotent
    and safe to race: concurrent callers (e.g. a signal handler against
    the normal exit path) join disjoint worker sets, and an EINTR
    surfaced by a signal during the join is retried, so a second
    shutdown — or a second Ctrl-C — during drain never raises.  Calling
    {!map} or {!async} afterwards degrades as documented there. *)

(** {2 One-shot futures}

    The serve request path: connection handlers park a simulation on
    the pool and block on the result, so CPU work runs on worker
    domains while (cheap, I/O-bound) connection threads multiplex. *)

type 'a future

val async : t -> (unit -> 'a) -> 'a future
(** [async t f] schedules [f] on a worker domain and returns
    immediately.  On a pool with no workers (jobs = 1, spawn failure,
    or already shut down) [f] runs on the calling thread before [async]
    returns — the same sequential degradation as {!map}, so callers
    need no special case.  Exceptions raised by [f] are captured and
    re-raised by {!await}. *)

val await : 'a future -> 'a
(** Blocks until the future completes; returns its value or re-raises
    its exception (with the original backtrace).  Callable at most
    from any number of threads; every caller observes the same
    outcome. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and guarantees
    {!shutdown}, also on exception. *)

val default_jobs : unit -> int
(** The parallelism to use when the caller gave no explicit [--jobs]:
    the [LOCLAB_JOBS] environment variable if it parses as a positive
    integer, else [1].  (The conservative default keeps batch output
    timing stable on shared CI hosts; pass [--jobs 0] at the CLI to ask
    for one domain per core.) *)

val recommended_jobs : unit -> int
(** One domain per core: [Domain.recommended_domain_count], clamped to
    [\[1, 64\]]. *)
