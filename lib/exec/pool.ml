(* OCaml 5 caps live domains at 128 including the main one; stay well
   under so pools compose with whatever the host process already runs. *)
let max_jobs = 64

let clamp_jobs jobs = max 1 (min max_jobs jobs)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;  (** queue non-empty, or [stopping]. *)
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let tasks_c =
  Telemetry.Metrics.Counter.family ~name:"loclab_pool_tasks_total"
    ~help:"Tasks executed by pool worker domains" ~labels:[] ()
  |> Fun.flip Telemetry.Metrics.Counter.labels []

let task_us_h =
  Telemetry.Metrics.Histogram.family ~name:"loclab_pool_task_duration_us"
    ~help:"Wall-clock microseconds per pool task" ~labels:[] ()
  |> Fun.flip Telemetry.Metrics.Histogram.labels []

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.work_ready t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* stopping and drained *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      let t0 = Telemetry.Span.now_us () in
      (* Tasks never raise: map wraps the user function in a result. *)
      Telemetry.Span.with_span ~cat:"pool" "task" task;
      Telemetry.Metrics.Counter.inc tasks_c;
      Telemetry.Metrics.Histogram.observe task_us_h
        (int_of_float (Telemetry.Span.now_us () -. t0));
      worker_loop t

let create ~jobs =
  let jobs = clamp_jobs jobs in
  let t =
    { jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [] }
  in
  if jobs > 1 then begin
    (* If the runtime runs out of domain slots partway, keep the
       workers we did get: fewer workers degrade throughput, never
       results (and with zero workers map falls back to List.map). *)
    let workers = ref [] in
    (try
       for _ = 1 to jobs do
         workers := Domain.spawn (fun () -> worker_loop t) :: !workers
       done
     with _ -> ());
    t.workers <- !workers
  end;
  t

(* [Domain.join] never returns EINTR itself, but a signal arriving while
   the caller drains (the serve SIGINT path) can surface as EINTR from
   the underlying futex/condvar wait on some runtimes; retrying keeps a
   second Ctrl-C during drain from turning shutdown into a crash. *)
let rec join_retry d =
  try Domain.join d with Unix.Unix_error (Unix.EINTR, _, _) -> join_retry d

let shutdown t =
  (* Take the worker list under the mutex so concurrent [shutdown]s
     (e.g. a signal handler racing the normal exit path) join disjoint
     sets: the second caller sees [] and returns immediately instead of
     joining an already-joined domain. *)
  Mutex.lock t.mutex;
  t.stopping <- true;
  let workers = t.workers in
  t.workers <- [];
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter join_retry workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* One slot per input element; [Error] keeps the backtrace so the
   re-raise on the calling domain looks like the original failure. *)
type 'b slot =
  | Pending
  | Ok of 'b
  | Failed of exn * Printexc.raw_backtrace

let map t f xs =
  if t.stopping then invalid_arg "Exec.Pool.map: pool is shut down";
  if t.jobs = 1 || t.workers = [] then List.map f xs
  else
    match xs with
    | [] -> []
    | _ ->
        let inputs = Array.of_list xs in
        let n = Array.length inputs in
        let results = Array.make n Pending in
        let remaining = ref n in
        let batch_done = Condition.create () in
        Mutex.lock t.mutex;
        if t.stopping then begin
          Mutex.unlock t.mutex;
          invalid_arg "Exec.Pool.map: pool is shut down"
        end;
        Array.iteri
          (fun i x ->
            Queue.add
              (fun () ->
                let r =
                  match f x with
                  | v -> Ok v
                  | exception e -> Failed (e, Printexc.get_raw_backtrace ())
                in
                Mutex.lock t.mutex;
                results.(i) <- r;
                decr remaining;
                if !remaining = 0 then Condition.broadcast batch_done;
                Mutex.unlock t.mutex)
              t.queue)
          inputs;
        Condition.broadcast t.work_ready;
        while !remaining > 0 do
          Condition.wait batch_done t.mutex
        done;
        Mutex.unlock t.mutex;
        (* Submission order: the first failure by input index wins, as
           it would under List.map. *)
        Array.to_list
          (Array.map
             (function
               | Ok v -> v
               | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
               | Pending -> assert false)
             results)

(* ---- one-shot futures (the serve request path) --------------------- *)

type 'a state =
  | Running
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

type 'a future = {
  fmutex : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
}

let async t f =
  let fut = { fmutex = Mutex.create (); fdone = Condition.create (); state = Running } in
  let task () =
    let r =
      match f () with
      | v -> Done v
      | exception e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.fmutex;
    fut.state <- r;
    Condition.broadcast fut.fdone;
    Mutex.unlock fut.fmutex
  in
  Mutex.lock t.mutex;
  if t.stopping || t.workers = [] then begin
    (* No workers (jobs = 1, or shutting down): run on the caller, like
       [map]'s sequential degradation.  Run it outside the pool lock. *)
    Mutex.unlock t.mutex;
    task ()
  end
  else begin
    Queue.add task t.queue;
    Condition.signal t.work_ready;
    Mutex.unlock t.mutex
  end;
  fut

let await fut =
  Mutex.lock fut.fmutex;
  while (match fut.state with Running -> true | Done _ | Raised _ -> false) do
    Condition.wait fut.fdone fut.fmutex
  done;
  let r = fut.state in
  Mutex.unlock fut.fmutex;
  match r with
  | Done v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
  | Running -> assert false

let default_jobs () =
  match Sys.getenv_opt "LOCLAB_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> clamp_jobs j
      | Some _ | None -> 1)
  | None -> 1

let recommended_jobs () = clamp_jobs (Domain.recommended_domain_count ())
