(** Persistent, content-addressed result store.

    A store is a directory of CRC-guarded blobs, one file per cell,
    named by the caller's key digest: [<root>/<digest>.art].  The store
    itself is typed-schema agnostic — it persists and verifies framed
    byte payloads; {!Core.Artifact} owns the typed encoding — so any
    worker can fill cells and any reader can render from them.

    Durability and failure model:
    - writes go to a temp file in the same directory and are
      [rename]d into place, so a reader never observes a partial cell
      and concurrent writers of the same digest are safe (last rename
      wins; contents are identical by construction because the digest
      covers every input of the simulation);
    - reads verify the frame magic, length and CRC-32; any mismatch is
      reported as {!Corrupt} (and logged on the [loclab.store] source),
      never an exception — callers degrade to re-simulation. *)

module Codec = Codec
(** The binary primitives artifacts encode themselves with. *)

type t

val open_ : string -> t
(** [open_ dir] creates [dir] (and parents) if needed.
    @raise Sys_error when [dir] exists and is not a directory, or
    cannot be created. *)

val root : t -> string

type lookup =
  | Hit of string  (** The verified payload. *)
  | Miss
  | Corrupt of string  (** Reason: bad magic, truncation, CRC... *)

val find : t -> digest:string -> lookup
(** Look a cell up by digest.  Corruption is also logged as a warning
    on the [loclab.store] log source. *)

val put : t -> digest:string -> string -> unit
(** Frame the payload (magic, length, CRC-32) and atomically install it
    as [<root>/<digest>.art] via write-temp-then-rename. *)

val mem : t -> digest:string -> bool
(** True iff {!find} would return [Hit] (frame fully verified). *)

val ls : t -> string list
(** Digests of every [.art] cell currently in the store, sorted. *)

val verify : t -> (string * (int, string) result) list
(** Re-read and CRC-check every cell: [(digest, Ok payload_bytes)] or
    [(digest, Error reason)], sorted by digest. *)

val gc : t -> keep:(digest:string -> payload:string -> bool) -> string list
(** Remove corrupt cells, leftover temp files, and verified cells the
    [keep] predicate rejects (e.g. foreign schema versions).  Returns
    the removed file names (relative to the root), sorted. *)
