(* This module shares the library's name, so it is the library's
   entry point; re-export the codec for dependents (Core.Artifact). *)
module Codec = Codec

let log_src = Logs.Src.create "loclab.store" ~doc:"loclab artifact store"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { root : string }

let magic = "LOCART1\n"
let cell_ext = ".art"

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir ->
      (* Lost a create race to a concurrent worker; the directory is
         there, which is all we need. *)
      ()
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": exists and is not a directory"))

let open_ dir =
  mkdir_p dir;
  { root = dir }

let root t = t.root
let path t ~digest = Filename.concat t.root (digest ^ cell_ext)

type lookup = Hit of string | Miss | Corrupt of string

let lookups_f =
  Telemetry.Metrics.Counter.family ~name:"loclab_store_lookups_total"
    ~help:"Artifact store lookups by result" ~labels:[ "result" ] ()

let lookup_hit_c = Telemetry.Metrics.Counter.labels lookups_f [ "hit" ]
let lookup_miss_c = Telemetry.Metrics.Counter.labels lookups_f [ "miss" ]
let lookup_corrupt_c = Telemetry.Metrics.Counter.labels lookups_f [ "corrupt" ]

let puts_c =
  Telemetry.Metrics.Counter.family ~name:"loclab_store_puts_total"
    ~help:"Artifacts written to the store" ~labels:[] ()
  |> Fun.flip Telemetry.Metrics.Counter.labels []

let frame payload = Codec.Frame.frame ~magic payload
let unframe data = Codec.Frame.unframe ~magic data

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t ~digest =
  Telemetry.Span.with_span ~cat:"store" ~args:[ ("digest", digest) ] "find"
    (fun () ->
      let file = path t ~digest in
      match read_file file with
      | exception Sys_error _ ->
          Telemetry.Metrics.Counter.inc lookup_miss_c;
          Miss
      | data -> (
          match unframe data with
          | Ok payload ->
              Telemetry.Metrics.Counter.inc lookup_hit_c;
              Hit payload
          | Error reason ->
              Telemetry.Metrics.Counter.inc lookup_corrupt_c;
              Log.warn (fun m ->
                  m "corrupt cell %s (%s); it will be re-simulated" file reason);
              Corrupt reason))

let put t ~digest payload =
  Telemetry.Span.with_span ~cat:"store" ~args:[ ("digest", digest) ] "put"
  @@ fun () ->
  Telemetry.Metrics.Counter.inc puts_c;
  let data = frame payload in
  let tmp = Filename.temp_file ~temp_dir:t.root "put-" ".tmp" in
  let oc = open_out_bin tmp in
  (match
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () ->
         output_string oc data;
         (* Rename is atomic; without the flush-to-disk the window for
            a torn cell after a crash is the page cache, which the CRC
            catches on the next read. *)
         flush oc)
   with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
  Sys.rename tmp (path t ~digest)

let mem t ~digest = match find t ~digest with Hit _ -> true | _ -> false

let cells t =
  Sys.readdir t.root |> Array.to_list
  |> List.filter_map (fun f -> Filename.chop_suffix_opt ~suffix:cell_ext f)
  |> List.sort compare

let ls = cells

let verify t =
  List.map
    (fun digest ->
      match find t ~digest with
      | Hit payload -> (digest, Ok (String.length payload))
      | Miss -> (digest, Error "vanished during verify")
      | Corrupt reason -> (digest, Error reason))
    (cells t)

let gc t ~keep =
  let removed = ref [] in
  let remove file =
    (try Sys.remove (Filename.concat t.root file) with Sys_error _ -> ());
    removed := file :: !removed
  in
  Array.iter
    (fun file ->
      match Filename.chop_suffix_opt ~suffix:cell_ext file with
      | None ->
          (* Anything that is not a cell is a leftover temp file from an
             interrupted writer; renames are atomic so these are never
             live. *)
          if Filename.check_suffix file ".tmp" then remove file
      | Some digest -> (
          match find t ~digest with
          | Hit payload -> if not (keep ~digest ~payload) then remove file
          | Miss -> ()
          | Corrupt _ -> remove file))
    (Sys.readdir t.root);
  List.sort compare !removed
