(* The store's codec is the shared [Binio] primitives under their
   historical name: every store consumer (artifact encoding, the serve
   wire protocol, tests) says [Store.Codec] and keeps working, while
   dependency-free layers (memsim's trace readers) use [Binio]
   directly.  [include] re-exports the exception itself, so
   [Store.Codec.Error] and [Binio.Error] are the same constructor and
   existing handlers catch both. *)

include Binio
