open Allocators

type result = {
  profile : Profile.t;
  allocator_key : string;
  steps_run : int;
  instructions : int;
  app_instructions : int;
  malloc_instructions : int;
  free_instructions : int;
  data_refs : int;
  app_refs : int;
  allocator_refs : int;
  heap_used : int;
  max_live_bytes : int;
  alloc_stats : Alloc_stats.t;
}

let allocator_fraction r =
  if r.instructions = 0 then 0.
  else
    float_of_int (r.malloc_instructions + r.free_instructions)
    /. float_of_int r.instructions

(* A live heap object from the application's point of view.  [addr] and
   [size] are mutable because realloc may move/resize the object while
   its death-queue entry keeps pointing at the same record. *)
type obj = {
  mutable addr : int;
  mutable size : int;
  mutable idx : int;  (* position in the live array *)
  mutable dead : bool;
}

(* Growable array of live objects with O(1) pick and swap-remove. *)
module Live = struct
  type t = { mutable arr : obj array; mutable len : int }

  let dummy = { addr = 0; size = 0; idx = -1; dead = true }
  let create () = { arr = Array.make 1024 dummy; len = 0 }

  let add t o =
    if t.len = Array.length t.arr then begin
      let bigger = Array.make (2 * t.len) dummy in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    o.idx <- t.len;
    t.arr.(t.len) <- o;
    t.len <- t.len + 1

  let remove t o =
    let last = t.arr.(t.len - 1) in
    t.arr.(o.idx) <- last;
    last.idx <- o.idx;
    t.len <- t.len - 1;
    t.arr.(t.len) <- dummy;
    o.idx <- -1

  let pick t rng = t.arr.(Rng.int rng t.len)
  let is_empty t = t.len = 0
end

(* Min-heap of (death step, obj). *)
module Deaths = struct
  type t = { mutable arr : (int * obj) array; mutable len : int }

  let create () = { arr = Array.make 1024 (0, Live.dummy); len = 0 }

  let push t time o =
    if t.len = Array.length t.arr then begin
      let bigger = Array.make (2 * t.len) (0, Live.dummy) in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    t.arr.(t.len) <- (time, o);
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      fst t.arr.(parent) > fst t.arr.(!i)
    do
      let parent = (!i - 1) / 2 in
      let tmp = t.arr.(parent) in
      t.arr.(parent) <- t.arr.(!i);
      t.arr.(!i) <- tmp;
      i := parent
    done

  let peek_time t = if t.len = 0 then max_int else fst t.arr.(0)

  let pop t =
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    t.arr.(0) <- t.arr.(t.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && fst t.arr.(l) < fst t.arr.(!smallest) then smallest := l;
      if r < t.len && fst t.arr.(r) < fst t.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = t.arr.(!smallest) in
        t.arr.(!smallest) <- t.arr.(!i);
        t.arr.(!i) <- tmp;
        i := !smallest
      end
    done;
    snd top
end

let recent_window = 16

let run_with ?(sink = Memsim.Sink.null) ?(scale = 1.0)
    ?(on_alloc = fun ~site:_ ~long:_ ~size:_ -> ()) ~profile ~heap ~alloc () =
  Profile.validate profile;
  let p = profile in
  let counter = Memsim.Sink.Counter.create () in
  (* The simulated machine packs and batches its own reference stream
     (one packed delivery per 256 word-grain events — see Sim_memory),
     so the fanout is wired directly: each consumer pays one dispatch
     per batch, with no boxed Event.t ever materialised.  Order within
     the stream is preserved exactly; the flush below runs before any
     downstream state is read. *)
  Heap.set_sink heap
    (Memsim.Sink.fanout [ Memsim.Sink.Counter.sink counter; sink ]);
  let mem = Heap.mem heap in
  let rng = Rng.create p.Profile.seed in
  let steps = Profile.scaled_steps p ~scale in
  let live = Live.create () in
  let deaths = Deaths.create () in
  let recent = Array.make recent_window Live.dummy in
  let recent_cursor = ref 0 in
  let retained = ref 0 in
  (* The application's global segment sits in the data segment (static
     region), below the heap. *)
  let globals = Heap.alloc_static heap p.Profile.global_bytes in
  let hot_bytes = max 64 (p.Profile.global_bytes / 16) in
  let alloc_prob = 1. /. p.Profile.alloc_every in
  (* Touch [bytes] of an object starting at a word-rounded offset. *)
  let touch o bytes write =
    let bytes = max 4 (min bytes o.size) in
    let max_off = o.size - bytes in
    let off =
      if max_off <= 0 || Rng.bool rng 0.7 then 0
      else Rng.int rng (max_off / 4 + 1) * 4
    in
    Heap.charge heap ((bytes + 3) / 4);
    if write then Memsim.Sim_memory.write_bytes mem (o.addr + off) bytes
    else Memsim.Sim_memory.read_bytes mem (o.addr + off) bytes
  in
  for step = 0 to steps - 1 do
    (* Deaths due now. *)
    while Deaths.peek_time deaths <= step do
      let o = Deaths.pop deaths in
      if not o.dead then begin
        o.dead <- true;
        Live.remove live o;
        Allocator.free alloc o.addr
      end
    done;
    (* Births.  While the (linearly growing, scale-adjusted) retained
       target is unmet, the allocation is persistent program data drawn
       from the retained size mix; otherwise it is a temporary with an
       exponential lifetime. *)
    if Rng.bool rng alloc_prob then begin
      let target =
        int_of_float
          (float_of_int p.Profile.retained_bytes *. scale
          *. float_of_int (step + 1) /. float_of_int steps)
      in
      let is_retained = !retained < target in
      let size =
        Dist.sample
          (if is_retained then p.Profile.retained_size_dist
           else p.Profile.size_dist)
          rng
      in
      (* Lifetime is decided up front so the allocation site can carry
         lifetime signal (Barrett & Zorn): short-lived allocations come
         from one half of the site space, long-lived from the other,
         with [site_noise] contradictions. *)
      let life =
        if is_retained then None
        else begin
          let mean =
            if Rng.bool rng p.Profile.mortal_lifetime_long_frac then
              10. *. p.Profile.mortal_lifetime_mean
            else p.Profile.mortal_lifetime_mean
          in
          Some (max 1 (int_of_float (Rng.exponential rng ~mean)))
        end
      in
      let long =
        match life with
        | None -> true
        | Some l -> float_of_int l > 2. *. p.Profile.mortal_lifetime_mean
      in
      let site =
        let half = p.Profile.site_count / 2 in
        let in_long_half =
          if Rng.bool rng p.Profile.site_noise then not long else long
        in
        if in_long_half then half + Rng.int rng (p.Profile.site_count - half)
        else Rng.int rng half
      in
      let addr = Allocator.malloc_sited alloc ~site size in
      on_alloc ~site ~long ~size;
      let o = { addr; size; idx = -1; dead = false } in
      Live.add live o;
      recent.(!recent_cursor mod recent_window) <- o;
      incr recent_cursor;
      (* Initialisation writes. *)
      touch o (min size p.Profile.init_touch_bytes) true;
      (match life with
      | None -> retained := !retained + size
      | Some l -> Deaths.push deaths (step + l) o)
    end;
    (* Buffer growth: realloc one live object to twice its size (capped),
       as interpreters growing strings/stacks do. *)
    if
      p.Profile.realloc_prob > 0.
      && (not (Live.is_empty live))
      && Rng.bool rng p.Profile.realloc_prob
    then begin
      let o = Live.pick live rng in
      if (not o.dead) && o.size < p.Profile.realloc_cap then begin
        let bigger =
          min p.Profile.realloc_cap (max (o.size + 4) (o.size * 2))
        in
        let fresh = Allocator.realloc alloc o.addr bigger in
        o.addr <- fresh;
        o.size <- bigger;
        (* The app initialises the grown tail. *)
        touch o (min bigger p.Profile.init_touch_bytes) true
      end
    end;
    (* Heap references. *)
    if not (Live.is_empty live) then
      for _ = 1 to p.Profile.refs_per_step do
        let o =
          if Rng.bool rng p.Profile.recent_bias then begin
            let upto = min !recent_cursor recent_window in
            let cand = recent.((!recent_cursor - 1 - Rng.int rng upto + (2 * recent_window)) mod recent_window) in
            if cand.dead || cand.idx < 0 then Live.pick live rng else cand
          end
          else Live.pick live rng
        in
        touch o p.Profile.touch_bytes (Rng.bool rng p.Profile.write_fraction)
      done;
    (* Global segment references. *)
    for _ = 1 to p.Profile.global_refs_per_step do
      let span =
        if Rng.bool rng p.Profile.global_hot_fraction then hot_bytes
        else p.Profile.global_bytes
      in
      let off = Rng.int rng (span / 4) * 4 in
      Heap.charge heap 1;
      if Rng.bool rng p.Profile.write_fraction then
        Memsim.Sim_memory.write_bytes mem (globals + off) 4
      else Memsim.Sim_memory.read_bytes mem (globals + off) 4
    done;
    (* Private computation. *)
    Heap.charge heap p.Profile.compute_per_step
  done;
  Memsim.Sim_memory.flush mem;
  let cost = Heap.cost heap in
  { profile = p;
    allocator_key = Allocator.name alloc;
    steps_run = steps;
    instructions = Cost.total cost;
    app_instructions = Cost.app cost;
    malloc_instructions = Cost.malloc cost;
    free_instructions = Cost.free cost;
    data_refs = Memsim.Sink.Counter.total counter;
    app_refs = Memsim.Sink.Counter.by_source counter Memsim.Event.App;
    allocator_refs =
      Memsim.Sink.Counter.by_source counter Memsim.Event.Malloc
      + Memsim.Sink.Counter.by_source counter Memsim.Event.Free;
    heap_used = Heap.heap_used heap;
    max_live_bytes = (Allocator.stats alloc).Alloc_stats.max_live_bytes;
    alloc_stats = Allocator.stats alloc }

let run ?sink ?scale ?heap_bytes ~profile ~allocator () =
  let heap = Heap.create ?heap_bytes () in
  let alloc = Registry.build allocator heap in
  run_with ?sink ?scale ~profile ~heap ~alloc ()

let train_predictor ?(scale = 0.05) ~profile () =
  let trainer =
    Predictive.Trainer.create ~sites:profile.Profile.site_count
  in
  let heap = Heap.create () in
  let alloc = Registry.build "bsd" heap in
  let _r =
    run_with ~scale
      ~on_alloc:(fun ~site ~long ~size:_ ->
        Predictive.Trainer.observe trainer ~site ~long)
      ~profile ~heap ~alloc ()
  in
  Predictive.Trainer.finish trainer
