(** Page-fault simulation over a reference trace.

    Maps every referenced byte to its 4 KB page (configurable) and feeds
    the page stream to {!Lru_stack}, yielding the page-fault count of
    every physical-memory size in one pass — the methodology behind the
    paper's Figures 2 and 3. *)

type t

val create : ?page_bytes:int -> unit -> t
(** [page_bytes] defaults to 4096, as in the paper. *)

val page_bytes : t -> int

val sink : t -> Memsim.Sink.t
(** Feeds reference events into the simulation. *)

val references : t -> int
(** Number of reference events observed (the denominator of the paper's
    faults-per-memory-reference rate). *)

val distinct_pages : t -> int

val faults : t -> memory_bytes:int -> int
(** Page faults of an LRU-managed physical memory of the given size
    (rounded down to whole pages; at least one page). *)

val fault_rate : t -> memory_bytes:int -> float
(** Faults per memory reference at the given memory size. *)

val fault_rate_curve : t -> memory_sizes:int list -> (int * float) list
(** [(memory_bytes, faults-per-reference)] for each requested size —
    one allocator's series in Figure 2/3. *)

val footprint_bytes : t -> int
(** Total memory touched: [distinct_pages * page_bytes].  This is the
    "total amount of memory requested" marker on the figures' x-axis. *)

val curve : t -> Fault_curve.t
(** Freeze the simulation's current state into a pure, persistable
    fault curve.  Every query on the curve ({!Fault_curve.faults},
    {!Fault_curve.fault_rate}, {!Fault_curve.footprint_bytes}) agrees
    exactly with the corresponding query here. *)
