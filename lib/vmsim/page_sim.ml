type t = {
  page_bytes : int;
  page_shift : int;  (* log2 page_bytes: page index = addr lsr shift *)
  stack : Lru_stack.t;
  mutable references : int;
  (* Collapse consecutive same-page accesses: they are distance-1 hits at
     every memory size >= 1 page, so only the reference count matters.
     [same_page_hits] records how many were collapsed. *)
  mutable last_page : int;
  mutable same_page_hits : int;
}

let create ?(page_bytes = 4096) () =
  if page_bytes <= 0 || page_bytes land (page_bytes - 1) <> 0 then
    invalid_arg "Page_sim.create: page size must be a positive power of two";
  let log2 n =
    let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
    go 0 n
  in
  { page_bytes;
    page_shift = log2 page_bytes;
    stack = Lru_stack.create ();
    references = 0;
    last_page = -1;
    same_page_hits = 0 }

let page_bytes t = t.page_bytes

let touch_page t page =
  if page = t.last_page then t.same_page_hits <- t.same_page_hits + 1
  else begin
    ignore (Lru_stack.access t.stack page);
    t.last_page <- page
  end

let access t (e : Memsim.Event.t) =
  t.references <- t.references + 1;
  let first = e.addr lsr t.page_shift in
  let last = (e.addr + e.size - 1) lsr t.page_shift in
  for page = first to last do
    touch_page t page
  done

(* Packed hot path: only addr and size matter to the page stack, both
   read straight from the packed ints. *)
let access_packed_batch t (b : Memsim.Event.Batch.t) =
  let addrs = b.Memsim.Event.Batch.addrs and metas = b.Memsim.Event.Batch.metas in
  for i = 0 to b.Memsim.Event.Batch.len - 1 do
    t.references <- t.references + 1;
    let addr = Array.unsafe_get addrs i in
    let size = Array.unsafe_get metas i lsr 3 in
    let first = addr lsr t.page_shift in
    let last = (addr + size - 1) lsr t.page_shift in
    for page = first to last do
      touch_page t page
    done
  done

let sink t =
  let access_event = access t in
  { Memsim.Sink.emit = access_event;
    emit_batch =
      (fun buf len ->
        for i = 0 to len - 1 do
          access_event (Array.unsafe_get buf i)
        done);
    emit_packed_batch = access_packed_batch t;
  }

let references t = t.references
let distinct_pages t = Lru_stack.distinct t.stack

let faults t ~memory_bytes =
  let pages = max 1 (memory_bytes / t.page_bytes) in
  Lru_stack.misses_at t.stack ~capacity:pages

let fault_rate t ~memory_bytes =
  if t.references = 0 then 0.
  else float (faults t ~memory_bytes) /. float t.references

let fault_rate_curve t ~memory_sizes =
  List.map (fun m -> (m, fault_rate t ~memory_bytes:m)) memory_sizes

let footprint_bytes t = distinct_pages t * t.page_bytes

let curve t =
  { Fault_curve.page_bytes = t.page_bytes;
    references = t.references;
    cold = Lru_stack.cold t.stack;
    hist = Lru_stack.histogram t.stack }

