type t = {
  page_bytes : int;
  references : int;
  cold : int;
  hist : int array;
}

(* Mirrors Lru_stack.misses_at exactly: cold touches plus touches whose
   stack distance exceeds the capacity. *)
let faults t ~memory_bytes =
  let capacity = max 1 (memory_bytes / t.page_bytes) in
  let beyond = ref 0 in
  for d = capacity + 1 to Array.length t.hist - 1 do
    beyond := !beyond + t.hist.(d)
  done;
  t.cold + !beyond

let fault_rate t ~memory_bytes =
  if t.references = 0 then 0.
  else float_of_int (faults t ~memory_bytes) /. float_of_int t.references

let fault_rate_curve t ~memory_sizes =
  List.map (fun m -> (m, fault_rate t ~memory_bytes:m)) memory_sizes

let distinct_pages t = t.cold
let footprint_bytes t = distinct_pages t * t.page_bytes

let equal a b =
  a.page_bytes = b.page_bytes
  && a.references = b.references
  && a.cold = b.cold
  && a.hist = b.hist
