(** A frozen, queryable page-fault curve.

    {!Page_sim.t} is a live simulation: it owns a mutating LRU stack and
    can only answer queries about the trace it has absorbed so far.
    This module is the pure value a finished simulation distils to —
    the Mattson stack-distance histogram plus the reference count — from
    which the fault count of {e every} physical-memory size is derived,
    byte-identically to asking the live simulator.  Being plain data, it
    is what run artifacts persist and what renderers consume. *)

type t = {
  page_bytes : int;
  references : int;
      (** Reference events observed (the fault-rate denominator). *)
  cold : int;  (** Cold page touches; equals the distinct page count. *)
  hist : int array;
      (** [hist.(d)] = page touches with LRU stack distance [d]
          (1-based; index 0 unused). *)
}

val faults : t -> memory_bytes:int -> int
(** Page faults of an LRU-managed memory of the given size (rounded
    down to whole pages; at least one page) — identical to
    {!Page_sim.faults} on the originating simulation. *)

val fault_rate : t -> memory_bytes:int -> float
(** Faults per memory reference at the given memory size. *)

val fault_rate_curve : t -> memory_sizes:int list -> (int * float) list

val distinct_pages : t -> int

val footprint_bytes : t -> int
(** [distinct_pages * page_bytes], the figures' x-axis marker. *)

val equal : t -> t -> bool
(** Structural equality (the histogram compared element-wise). *)
