(* The versioned wire protocol of `loclab serve`.

   Requests and responses travel as CRC-guarded length-framed payloads
   (the same Store.Codec.Frame envelope the artifact store uses on
   disk, under a serve-specific magic), and the payloads themselves are
   Store.Codec field sequences beginning with a protocol version.  A
   frame is therefore self-checking end to end: truncation, garbage and
   bit flips are detected before any typed decoding runs, and typed
   decoding itself never raises — every failure is an [Error] the
   server answers with a typed error response. *)

module Codec = Store.Codec

let version = 2
let min_version = 1
let magic = "LOCSRV1\n"

(* Cap a frame well above any artifact or rendered report (the largest
   real payload is a full experiment rendering, tens of KiB) but low
   enough that a hostile or corrupt length field cannot make the server
   allocate unbounded memory. *)
let max_frame_bytes = 64 * 1024 * 1024

(* ---- addresses ------------------------------------------------------ *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let addr_of_string s =
  let invalid msg = Result.Error msg in
  if s = "" then invalid "empty listen address"
  else
  match String.index_opt s ':' with
  | None -> Result.Ok (Unix_path s) (* a bare path serves over AF_UNIX *)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then invalid "unix: address needs a socket path"
          else Result.Ok (Unix_path rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> invalid "tcp: address must be tcp:HOST:PORT"
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p >= 0 && p <= 0xFFFF ->
                  Result.Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
              | _ -> invalid (Printf.sprintf "bad tcp port %S" port)))
      | other ->
          invalid
            (Printf.sprintf "unknown address scheme %S (use unix: or tcp:)"
               other))

(* ---- trace context -------------------------------------------------- *)

(* Version 2's addition: an optional trace context ahead of the message
   tag, carrying a client-chosen request id (hex, 1-32 digits — the
   server adopts valid ids and mints otherwise) and a flags word.  Flag
   bit 0 asks the server to log this request regardless of access-log
   sampling. *)

type trace_context = { trace_id : string; trace_flags : int }

let flag_force_sample = 1

(* ---- requests ------------------------------------------------------- *)

type request =
  | Health
  | Stats
  | Metrics
  | Run_cell of { program : string; allocator : string; scale : float }
  | Run_experiment of { id : string; scale : float }
  | Ingest of { format : string; trace : string }

let request_kind = function
  | Health -> "health"
  | Stats -> "stats"
  | Metrics -> "metrics"
  | Run_cell _ -> "cell"
  | Run_experiment _ -> "experiment"
  | Ingest _ -> "ingest"

(* ---- responses ------------------------------------------------------ *)

type error_code =
  | Bad_request  (** Undecodable or ill-typed request payload. *)
  | Unknown_key  (** Unknown program / allocator / experiment id. *)
  | Unsupported_version  (** Client spoke a protocol version we don't. *)
  | Overloaded  (** Server shedding load (shutdown, or queue refusal). *)
  | Internal  (** The handler itself failed; details in the message. *)

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Unknown_key -> "unknown_key"
  | Unsupported_version -> "unsupported_version"
  | Overloaded -> "overloaded"
  | Internal -> "internal"

let error_code_to_int = function
  | Bad_request -> 1
  | Unknown_key -> 2
  | Unsupported_version -> 3
  | Overloaded -> 4
  | Internal -> 5

let error_code_of_int = function
  | 1 -> Some Bad_request
  | 2 -> Some Unknown_key
  | 3 -> Some Unsupported_version
  | 4 -> Some Overloaded
  | 5 -> Some Internal
  | _ -> None

type stats = {
  uptime_seconds : float;
  connections : int;  (** Currently open protocol connections. *)
  requests : int;  (** Requests answered since start (any outcome). *)
  errors : int;  (** Requests answered with an [Error] response. *)
  warm_cells : int;  (** Cell requests served straight from the store. *)
  simulated_cells : int;  (** Cell requests that ran a simulation. *)
  inflight : int;  (** Requests currently executing. *)
  p50_us : float;  (** Request latency quantile estimates (microseconds), *)
  p99_us : float;  (** from the serve duration histogram. *)
}

type response =
  | Health_ok of { server_version : string; protocol_version : int }
  | Stats_ok of stats
  | Metrics_ok of string  (** Prometheus text exposition. *)
  | Cell_ok of { digest : string; artifact : string }
      (** [artifact] is the versioned [Core.Artifact] encoding — the
          exact bytes the store persists for [digest]. *)
  | Report_ok of string  (** A rendered table/figure, as [loclab run] prints. *)
  | Error of { code : error_code; message : string }

(* ---- payload codec -------------------------------------------------- *)

type decode_error =
  | Unsupported of int  (** Well-formed frame from a future protocol. *)
  | Malformed of string

let decode_error_to_string = function
  | Unsupported v -> Printf.sprintf "unsupported protocol version %d" v
  | Malformed msg -> msg

(* Version selection is by presence: a payload without a trace context
   is encoded exactly as version 1 (byte-identical to what a v1 build
   emits, so old servers keep answering untraced clients), and a trace
   context forces version 2, where [flags] then [id] precede the tag. *)
let write_envelope w trace =
  match trace with
  | None -> Codec.Writer.int w min_version
  | Some { trace_id; trace_flags } ->
      Codec.Writer.int w version;
      Codec.Writer.int w trace_flags;
      Codec.Writer.string w trace_id

let encode_request ?trace req =
  let w = Codec.Writer.create () in
  write_envelope w trace;
  (match req with
  | Health -> Codec.Writer.int w 0
  | Stats -> Codec.Writer.int w 1
  | Metrics -> Codec.Writer.int w 2
  | Run_cell { program; allocator; scale } ->
      Codec.Writer.int w 3;
      Codec.Writer.string w program;
      Codec.Writer.string w allocator;
      Codec.Writer.float w scale
  | Run_experiment { id; scale } ->
      Codec.Writer.int w 4;
      Codec.Writer.string w id;
      Codec.Writer.float w scale
  | Ingest { format; trace } ->
      Codec.Writer.int w 5;
      Codec.Writer.string w format;
      Codec.Writer.string w trace);
  Codec.Writer.contents w

(* Shared decode shell: version check, optional trace context, tag
   dispatch, trailing-byte and truncation detection, never an
   exception.  Yields the message together with the trace context
   (None for version-1 payloads). *)
let decode_payload what payload read_tagged =
  let r = Codec.Reader.of_string payload in
  try
    let v = Codec.Reader.int r in
    if v < min_version || v > version then Result.Error (Unsupported v)
    else begin
      let trace =
        if v >= 2 then begin
          let trace_flags = Codec.Reader.int r in
          let trace_id = Codec.Reader.string r in
          Some { trace_id; trace_flags }
        end
        else None
      in
      let tag = Codec.Reader.int r in
      match read_tagged r tag with
      | Some value ->
          if Codec.Reader.at_end r then Result.Ok (value, trace)
          else Result.Error (Malformed (what ^ " has trailing bytes"))
      | None ->
          Result.Error (Malformed (Printf.sprintf "unknown %s tag %d" what tag))
    end
  with Codec.Error msg -> Result.Error (Malformed msg)

let decode_request payload =
  decode_payload "request" payload (fun r -> function
    | 0 -> Some Health
    | 1 -> Some Stats
    | 2 -> Some Metrics
    | 3 ->
        let program = Codec.Reader.string r in
        let allocator = Codec.Reader.string r in
        let scale = Codec.Reader.float r in
        Some (Run_cell { program; allocator; scale })
    | 4 ->
        let id = Codec.Reader.string r in
        let scale = Codec.Reader.float r in
        Some (Run_experiment { id; scale })
    | 5 ->
        let format = Codec.Reader.string r in
        let trace = Codec.Reader.string r in
        Some (Ingest { format; trace })
    | _ -> None)

let encode_response ?trace resp =
  let w = Codec.Writer.create () in
  write_envelope w trace;
  (match resp with
  | Health_ok { server_version; protocol_version } ->
      Codec.Writer.int w 0;
      Codec.Writer.string w server_version;
      Codec.Writer.int w protocol_version
  | Stats_ok s ->
      Codec.Writer.int w 1;
      Codec.Writer.float w s.uptime_seconds;
      Codec.Writer.int w s.connections;
      Codec.Writer.int w s.requests;
      Codec.Writer.int w s.errors;
      Codec.Writer.int w s.warm_cells;
      Codec.Writer.int w s.simulated_cells;
      Codec.Writer.int w s.inflight;
      Codec.Writer.float w s.p50_us;
      Codec.Writer.float w s.p99_us
  | Metrics_ok text ->
      Codec.Writer.int w 2;
      Codec.Writer.string w text
  | Cell_ok { digest; artifact } ->
      Codec.Writer.int w 3;
      Codec.Writer.string w digest;
      Codec.Writer.string w artifact
  | Report_ok text ->
      Codec.Writer.int w 4;
      Codec.Writer.string w text
  | Error { code; message } ->
      Codec.Writer.int w 5;
      Codec.Writer.int w (error_code_to_int code);
      Codec.Writer.string w message);
  Codec.Writer.contents w

let decode_response payload =
  decode_payload "response" payload (fun r -> function
    | 0 ->
        let server_version = Codec.Reader.string r in
        let protocol_version = Codec.Reader.int r in
        Some (Health_ok { server_version; protocol_version })
    | 1 ->
        let uptime_seconds = Codec.Reader.float r in
        let connections = Codec.Reader.int r in
        let requests = Codec.Reader.int r in
        let errors = Codec.Reader.int r in
        let warm_cells = Codec.Reader.int r in
        let simulated_cells = Codec.Reader.int r in
        let inflight = Codec.Reader.int r in
        let p50_us = Codec.Reader.float r in
        let p99_us = Codec.Reader.float r in
        Some
          (Stats_ok
             { uptime_seconds; connections; requests; errors; warm_cells;
               simulated_cells; inflight; p50_us; p99_us })
    | 2 -> Some (Metrics_ok (Codec.Reader.string r))
    | 3 ->
        let digest = Codec.Reader.string r in
        let artifact = Codec.Reader.string r in
        Some (Cell_ok { digest; artifact })
    | 4 -> Some (Report_ok (Codec.Reader.string r))
    | 5 -> (
        let code = Codec.Reader.int r in
        let message = Codec.Reader.string r in
        match error_code_of_int code with
        | Some code -> Some (Error { code; message })
        | None -> None)
    | _ -> None)

(* ---- frame I/O ------------------------------------------------------ *)

(* EINTR-safe exact-count socket I/O: a SIGINT aimed at graceful
   shutdown must never tear a frame in half. *)
let rec write_all fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + n) (len - n)
  end

let write_frame fd payload =
  let data = Codec.Frame.frame ~magic payload in
  write_all fd data 0 (String.length data)

(* Read exactly [len] bytes; [Ok false] on EOF before the first byte,
   [Error] on EOF mid-buffer. *)
let read_exact fd buf off len =
  let rec go off len =
    if len = 0 then Result.Ok true
    else
      match Unix.read fd buf off len with
      | 0 ->
          if off = 0 then Result.Ok false
          else Result.Error "connection closed mid-frame"
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go off len

let header_bytes = String.length magic + 8

let read_frame ?(first = "") fd =
  let hdr = Bytes.create header_bytes in
  let pre = min (String.length first) header_bytes in
  Bytes.blit_string first 0 hdr 0 pre;
  match
    if pre = header_bytes then Result.Ok true
    else read_exact fd hdr pre (header_bytes - pre)
  with
  | Result.Error _ as e -> e
  | Result.Ok false -> Result.Ok None
  | Result.Ok true ->
      if Bytes.sub_string hdr 0 (String.length magic) <> magic then
        Result.Error "bad frame magic (not a loclab serve stream)"
      else
        let len =
          Int64.to_int (Bytes.get_int64_le hdr (String.length magic))
        in
        if len < 0 || len > max_frame_bytes then
          Result.Error (Printf.sprintf "unreasonable frame length %d" len)
        else
          let rest = Bytes.create (len + 8) in
          (match read_exact fd rest 0 (len + 8) with
          | Result.Error _ as e -> e
          | Result.Ok false -> Result.Error "connection closed mid-frame"
          | Result.Ok true -> (
              (* Reassemble and run the shared envelope check so the
                 CRC semantics are exactly the store's. *)
              let data = Bytes.to_string hdr ^ Bytes.to_string rest in
              match Codec.Frame.unframe ~magic data with
              | Result.Ok payload -> Result.Ok (Some payload)
              | Result.Error reason -> Result.Error reason))
