(** The versioned wire protocol of [loclab serve].

    {b Frame layout.}  Every message — request or response — is one
    {!Store.Codec.Frame} envelope under the serve magic:

    {v
    "LOCSRV1\n" | payload length (int64 LE) | payload | CRC-32 (int64 LE)
    v}

    The CRC covers magic + length + payload, exactly as the artifact
    store's on-disk framing does, so truncation, garbage and bit flips
    are caught before any typed decoding runs.

    {b Versioning.}  The payload itself begins with a protocol version
    integer followed by a message tag.  This build speaks versions
    {!min_version} (1) through {!version} (2); version 2 inserts an
    optional {!trace_context} (flags word, then request-id string)
    between the version and the tag.  Encoders pick the version by
    presence: no trace context → version-1 bytes, byte-identical to a
    v1 build's output, so untraced new clients interoperate with old
    servers; a trace context → version 2.  A well-formed frame carrying
    an unknown version decodes to [Error (Unsupported v)] — the server
    answers it with a typed [Unsupported_version] error response
    (itself version 1, which any client necessarily understands)
    instead of dropping the connection, and {!Client} reacts by
    retrying without the trace context.

    Decoding never raises: every malformed input is a typed [Error]. *)

val version : int
(** The newest protocol version this build speaks (2). *)

val min_version : int
(** The oldest protocol version this build still decodes (1). *)

val magic : string
(** The frame magic, ["LOCSRV1\n"]. *)

val max_frame_bytes : int
(** Upper bound on a frame's payload length; {!read_frame} rejects
    bigger claims before allocating. *)

(** {1 Addresses} *)

type addr =
  | Unix_path of string  (** An [AF_UNIX] stream socket path. *)
  | Tcp of string * int  (** Host and port. *)

val addr_of_string : string -> (addr, string) result
(** Parse ["unix:PATH"], ["tcp:HOST:PORT"] (empty host means
    127.0.0.1), or a bare path (treated as a unix socket). *)

val addr_to_string : addr -> string

(** {1 Trace context} *)

type trace_context = {
  trace_id : string;
      (** Hex request id, 1–32 digits ({!Telemetry.Rctx.valid_id});
          the server adopts valid ids and mints replacements for
          invalid ones. *)
  trace_flags : int;  (** Bit 0: {!flag_force_sample}. *)
}

val flag_force_sample : int
(** Ask the server to write this request to the access log even when
    sampling would skip it. *)

(** {1 Messages} *)

type request =
  | Health
  | Stats
  | Metrics
  | Run_cell of { program : string; allocator : string; scale : float }
      (** One grid cell: answered from the store when warm, simulated
          (and written through) when cold. *)
  | Run_experiment of { id : string; scale : float }
      (** Render one experiment table/figure by id. *)
  | Ingest of { format : string; trace : string }
      (** Simulate an external trace capture ([trace] is the raw file
          bytes, [format] one of [Memsim.Trace.Source.all_formats]):
          answered from the store when the same event stream was seen
          before, simulated (and written through) when cold. *)

val request_kind : request -> string
(** Stable lowercase kind name (the metrics label). *)

type error_code =
  | Bad_request  (** Undecodable or ill-typed request payload. *)
  | Unknown_key  (** Unknown program / allocator / experiment id. *)
  | Unsupported_version  (** Client spoke a protocol version we don't. *)
  | Overloaded  (** Server shedding load (shutdown, or queue refusal). *)
  | Internal  (** The handler itself failed; details in the message. *)

val error_code_to_string : error_code -> string

type stats = {
  uptime_seconds : float;
  connections : int;  (** Currently open protocol connections. *)
  requests : int;  (** Requests answered since start (any outcome). *)
  errors : int;  (** Requests answered with an [Error] response. *)
  warm_cells : int;  (** Cell requests served straight from the store. *)
  simulated_cells : int;  (** Cell requests that ran a simulation. *)
  inflight : int;  (** Requests currently executing. *)
  p50_us : float;  (** Request latency quantile estimates (microseconds), *)
  p99_us : float;  (** from the serve duration histogram. *)
}

type response =
  | Health_ok of { server_version : string; protocol_version : int }
  | Stats_ok of stats
  | Metrics_ok of string  (** Prometheus text exposition. *)
  | Cell_ok of { digest : string; artifact : string }
      (** [artifact] is the versioned [Core.Artifact] encoding — the
          exact bytes the store persists for [digest]. *)
  | Report_ok of string  (** A rendered table/figure, as [loclab run] prints. *)
  | Error of { code : error_code; message : string }

(** {1 Payload codec} *)

type decode_error =
  | Unsupported of int  (** Well-formed frame from a future protocol. *)
  | Malformed of string

val decode_error_to_string : decode_error -> string

val encode_request : ?trace:trace_context -> request -> string
(** Without [trace]: version-1 bytes (old servers decode them).  With
    [trace]: version 2. *)

val decode_request :
  string -> (request * trace_context option, decode_error) result
(** Never raises: truncation, unknown tags and trailing bytes are all
    [Malformed].  The context is [None] for version-1 payloads. *)

val encode_response : ?trace:trace_context -> response -> string
(** The server echoes the (possibly adopted) trace context back to
    version-2 requesters and omits it — version-1 bytes — otherwise. *)

val decode_response :
  string -> (response * trace_context option, decode_error) result

(** {1 Frame I/O}

    Blocking, EINTR-retrying socket I/O — a SIGINT aimed at graceful
    shutdown never tears a frame. *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame a payload and write it whole.
    @raise Unix.Unix_error on I/O failure (e.g. [EPIPE]). *)

val read_frame :
  ?first:string -> Unix.file_descr -> (string option, string) result
(** Read one frame; [Ok None] on clean EOF before the first byte,
    [Error reason] on a torn frame, bad magic, oversized length claim
    or CRC mismatch.  [first] supplies bytes already consumed from the
    stream (the server's protocol sniff). *)
