(* The loclab simulation service.

   One accept loop; per connection, a reader thread (frame decode) and
   a handler thread (execution + replies) joined by a bounded queue —
   the queue bound is the backpressure: a client that pipelines faster
   than the server drains simply blocks in the kernel once the queue
   and socket buffers fill.  Simulation work is parked on the shared
   Exec.Pool via async/await, so CPU runs on worker domains while the
   (I/O-bound) connection threads multiplex; identical concurrent cold
   requests are deduplicated to one simulation by a single-flight table
   keyed by the cell digest.

   Every request carries a Telemetry.Rctx from the frame read to the
   reply write: the reader stamps read_frame/decode and adopts (or
   mints) the request id, the handler and the execution helpers stamp
   store_lookup / simulate / single_flight_wait / encode / write_reply,
   and finish fans the result out to the per-stage histograms, the
   slow-request table, the span ring, and — when configured — the
   JSON-lines access log.

   Threads suit the connection layer (blocking reads, shared store and
   single-flight state under mutexes); domains suit the simulations
   (compute-bound, no shared state).  The same split the grid prefetch
   uses, now behind a socket. *)

module Export = Metrics.Export  (* the metrics library's JSON values *)
module Metrics = Telemetry.Metrics
module Rctx = Telemetry.Rctx

let src = Logs.Src.create "loclab.serve" ~doc:"loclab serve"

module Log = (val Logs.src_log src : Logs.LOG)

(* ---- metrics -------------------------------------------------------- *)

let m_requests =
  Metrics.Counter.family ~name:"loclab_serve_requests_total"
    ~help:"Requests answered, by request kind." ~labels:[ "kind" ] ()

let m_errors =
  Metrics.Counter.family ~name:"loclab_serve_errors_total"
    ~help:"Error responses sent, by error code." ~labels:[ "code" ] ()

let m_duration =
  Metrics.Histogram.family ~name:"loclab_serve_request_duration_us"
    ~help:"Request handling latency in microseconds." ()

let m_stage =
  Metrics.Histogram.family ~name:"loclab_serve_stage_duration_us"
    ~help:"Per-stage request latency in microseconds." ~labels:[ "stage" ] ()

let m_connections =
  Metrics.Gauge.family ~name:"loclab_serve_connections"
    ~help:"Open connections." ()

let m_spans_dropped =
  Metrics.Gauge.family ~name:"loclab_spans_dropped"
    ~help:"Span-ring events overwritten because the ring was full." ()

let m_access_dropped =
  Metrics.Counter.family ~name:"loclab_access_log_dropped"
    ~help:"Access-log lines not written, by reason (sampled, write_error)."
    ~labels:[ "reason" ] ()

let m_access_written =
  Metrics.Counter.family ~name:"loclab_access_log_written_total"
    ~help:"Access-log lines written." ()

let h_duration = Metrics.Histogram.labels m_duration []
let g_connections = Metrics.Gauge.labels m_connections []
let g_spans_dropped = Metrics.Gauge.labels m_spans_dropped []
let c_access_sampled = Metrics.Counter.labels m_access_dropped [ "sampled" ]

let c_access_write_error =
  Metrics.Counter.labels m_access_dropped [ "write_error" ]

let c_access_written = Metrics.Counter.labels m_access_written []

(* The stage vocabulary is closed (DESIGN.md §11); resolve the handles
   once. *)
let stage_names =
  [ "read_frame"; "decode"; "parse"; "store_lookup"; "simulate";
    "single_flight_wait"; "encode"; "write_reply" ]

let h_stages =
  List.map (fun s -> (s, Metrics.Histogram.labels m_stage [ s ])) stage_names

let observe_stage (s : Rctx.stage) =
  match List.assoc_opt s.Rctx.sname h_stages with
  | Some h -> Metrics.Histogram.observe h (int_of_float s.Rctx.sdur_us)
  | None -> ()

(* Everything around the payload: magic, length word, CRC word. *)
let frame_overhead = String.length Protocol.magic + 16

(* ---- bounded per-connection queue ----------------------------------- *)

type queue_item =
  | Handle of Protocol.request * Protocol.trace_context option * Rctx.t
  | Refuse of Protocol.error_code * string * Rctx.t
      (** Reply with a typed error without executing anything. *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  peer : string;
  q : queue_item Queue.t;
  qmu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  max_pending : int;
  mutable qclosed : bool;  (* reader finished; handler drains and exits *)
  mutable dead : bool;  (* write side failed; both sides stop *)
}

(* Returns the queue depth at admission (0 = handler was idle) — the
   congestion signal the access log records per request. *)
let enqueue conn item =
  Mutex.lock conn.qmu;
  while Queue.length conn.q >= conn.max_pending && not conn.dead do
    Condition.wait conn.not_full conn.qmu
  done;
  let depth =
    if conn.dead then 0
    else begin
      let depth = Queue.length conn.q in
      Queue.add item conn.q;
      Condition.signal conn.not_empty;
      depth
    end
  in
  Mutex.unlock conn.qmu;
  depth

let queue_depth conn =
  Mutex.lock conn.qmu;
  let d = Queue.length conn.q in
  Mutex.unlock conn.qmu;
  d

let close_queue conn =
  Mutex.lock conn.qmu;
  conn.qclosed <- true;
  Condition.broadcast conn.not_empty;
  Mutex.unlock conn.qmu

let dequeue conn =
  Mutex.lock conn.qmu;
  while Queue.is_empty conn.q && not conn.qclosed && not conn.dead do
    Condition.wait conn.not_empty conn.qmu
  done;
  let item =
    if conn.dead || Queue.is_empty conn.q then None
    else begin
      let item = Queue.take conn.q in
      Condition.signal conn.not_full;
      Some item
    end
  in
  Mutex.unlock conn.qmu;
  item

let kill_conn conn =
  Mutex.lock conn.qmu;
  conn.dead <- true;
  Condition.broadcast conn.not_empty;
  Condition.broadcast conn.not_full;
  Mutex.unlock conn.qmu;
  (* Wake a reader blocked in [read]. *)
  try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* ---- access log ----------------------------------------------------- *)

type access = {
  ach : out_channel;
  aclose : bool;  (* close on shutdown ("-" = stdout stays open) *)
  amu : Mutex.t;
  asample : int;  (* write every Nth request (1 = all) *)
  mutable aseq : int;
}

let open_access_log ~path ~sample =
  if sample < 1 then
    invalid_arg "Serve.Server.create: access_log_sample must be >= 1";
  let ach, aclose =
    if path = "-" then (stdout, false)
    else (open_out_gen [ Open_append; Open_creat ] 0o644 path, true)
  in
  { ach; aclose; amu = Mutex.create (); asample = sample; aseq = 0 }

(* ---- server state --------------------------------------------------- *)

type t = {
  listen_fd : Unix.file_descr;
  listen_addr : Protocol.addr;  (* resolved: TCP port 0 becomes real *)
  sock_path : string option;  (* AF_UNIX path to unlink on shutdown *)
  store : Store.t option;
  pool : Exec.Pool.t;
  max_pending : int;
  server_version : string;
  started : float;
  access : access option;
  stopping : bool Atomic.t;
  conns_mu : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  mutable next_cid : int;
  (* single-flight: digest (or experiment key) -> in-progress future *)
  sf_mu : Mutex.t;
  sf : (string, (string * bool) Exec.Pool.future) Hashtbl.t;
  (* stats *)
  requests : int Atomic.t;
  errors : int Atomic.t;
  warm : int Atomic.t;
  simulated : int Atomic.t;
  inflight : int Atomic.t;
  open_conns : int Atomic.t;
}

let default_max_pending = 32

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

(* Unlink a leftover socket file only when nothing answers on it: a
   stale path from a crashed server must not block restart, but a live
   sibling server must not be evicted. *)
let clear_stale_unix_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "address unix:%s is already being served" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let create ?(server_version = "loclab/1.0.0")
    ?(max_pending = default_max_pending) ?(jobs = 1) ?store ?access_log
    ?(access_log_sample = 1) ?(slow_capacity = 8) ~listen:requested () =
  if max_pending < 1 then
    invalid_arg "Serve.Server.create: max_pending must be >= 1";
  (* A dead client mid-write must surface as EPIPE, not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Metrics.set_enabled Metrics.default true;
  Rctx.set_enabled true;
  Rctx.Slow.configure ~capacity:slow_capacity ();
  let access =
    Option.map (fun path -> open_access_log ~path ~sample:access_log_sample)
      access_log
  in
  let listen_fd, listen_addr, sock_path =
    match requested with
    | Protocol.Unix_path path ->
        clear_stale_unix_socket path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.bind fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with _ -> ()); raise e);
        (fd, requested, Some path)
    | Protocol.Tcp (host, port) ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd (Unix.ADDR_INET (resolve_host host, port))
         with e -> (try Unix.close fd with _ -> ()); raise e);
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> Protocol.Tcp (host, p)
          | _ -> requested
        in
        (fd, bound, None)
  in
  Unix.listen listen_fd 64;
  { listen_fd;
    listen_addr;
    sock_path;
    store;
    pool = Exec.Pool.create ~jobs;
    max_pending;
    server_version;
    started = Unix.gettimeofday ();
    access;
    stopping = Atomic.make false;
    conns_mu = Mutex.create ();
    conns = [];
    next_cid = 0;
    sf_mu = Mutex.create ();
    sf = Hashtbl.create 16;
    requests = Atomic.make 0;
    errors = Atomic.make 0;
    warm = Atomic.make 0;
    simulated = Atomic.make 0;
    inflight = Atomic.make 0;
    open_conns = Atomic.make 0 }

let listen_addr t = t.listen_addr

let stats t =
  { Protocol.uptime_seconds = Unix.gettimeofday () -. t.started;
    connections = Atomic.get t.open_conns;
    requests = Atomic.get t.requests;
    errors = Atomic.get t.errors;
    warm_cells = Atomic.get t.warm;
    simulated_cells = Atomic.get t.simulated;
    inflight = Atomic.get t.inflight;
    p50_us = Metrics.Histogram.quantile h_duration 0.50;
    p99_us = Metrics.Histogram.quantile h_duration 0.99 }

let access_log_write t ?(force = false) fin =
  match t.access with
  | None -> ()
  | Some a ->
      Mutex.lock a.amu;
      let n = a.aseq in
      a.aseq <- n + 1;
      let take = force || a.asample <= 1 || n mod a.asample = 0 in
      (if not take then Metrics.Counter.inc c_access_sampled
       else
         match
           output_string a.ach (Export.to_string (Rctx.to_json fin));
           output_char a.ach '\n';
           flush a.ach
         with
         | () -> Metrics.Counter.inc c_access_written
         | exception Sys_error _ -> Metrics.Counter.inc c_access_write_error);
      Mutex.unlock a.amu

(* The single place every scrape funnels through, so derived gauges are
   fresh on both the binary Metrics request and HTTP GET /metrics. *)
let prometheus_text () =
  Metrics.Gauge.set g_spans_dropped (Telemetry.Span.dropped ());
  Metrics.to_prometheus (Metrics.snapshot Metrics.default)

(* ---- request execution ---------------------------------------------- *)

let check_scale scale =
  if scale > 0. && scale <= 4.0 then Result.Ok ()
  else
    Result.Error
      (Protocol.Bad_request,
       Printf.sprintf "scale %g out of range (0, 4]" scale)

(* Deduplicate identical concurrent work: the first arrival schedules
   the computation on the pool, later arrivals await the same future.
   The table entry lives exactly as long as the computation, so a
   completed (or failed) key recomputes freshly next time.  The await
   is the request's dominant stage: "simulate" for the leader,
   "single_flight_wait" for a deduplicated follower. *)
let single_flight t rctx key compute =
  Mutex.lock t.sf_mu;
  match Hashtbl.find_opt t.sf key with
  | Some fut ->
      Mutex.unlock t.sf_mu;
      Rctx.stage rctx "single_flight_wait" (fun () -> Exec.Pool.await fut)
  | None ->
      (* The leader's stage must wrap the dispatch too: a pool without
         worker domains (jobs = 1) runs the task inline in [async], so
         timing only the [await] would attribute the whole simulation
         to nothing. *)
      Rctx.stage rctx "simulate" (fun () ->
          let fut = Exec.Pool.async t.pool compute in
          Hashtbl.replace t.sf key fut;
          Mutex.unlock t.sf_mu;
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock t.sf_mu;
              Hashtbl.remove t.sf key;
              Mutex.unlock t.sf_mu)
            (fun () -> Exec.Pool.await fut))

(* Store consult shared by the warm fast paths: answer straight from
   the handler thread without touching the pool. *)
let store_find t rctx ~digest =
  Rctx.stage rctx "store_lookup" (fun () ->
      match t.store with
      | None -> None
      | Some store -> (
          match Store.find store ~digest with
          | Store.Hit payload -> Some payload
          | Store.Miss | Store.Corrupt _ -> None))

let run_cell t rctx ~program ~allocator ~scale =
  match check_scale scale with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
      match Workload.Programs.find program with
      | exception Not_found ->
          Result.Error
            (Protocol.Unknown_key, Printf.sprintf "unknown program %S" program)
      | profile ->
          let known_allocator =
            allocator = "custom"
            || List.exists
                 (fun (s : Allocators.Registry.spec) -> s.key = allocator)
                 Allocators.Registry.all
          in
          if not known_allocator then
            Result.Error
              (Protocol.Unknown_key,
               Printf.sprintf "unknown allocator %S" allocator)
          else begin
            let digest =
              Core.Artifact.digest ~program ~allocator ~scale
                ~seed:profile.Workload.Profile.seed
            in
            Rctx.set_cell rctx digest;
            (* Warm path: hand back the store's verified payload bytes
               themselves, no pool dispatch.  Cold path: single-flight
               a simulation through Core.Runs (which writes the same
               bytes through the store), then encode — Artifact.encode
               is exactly what the store persists, so warm and cold
               replies are byte-identical for the same cell. *)
            match store_find t rctx ~digest with
            | Some payload ->
                Atomic.incr t.warm;
                Rctx.set_warm rctx true;
                Result.Ok (Protocol.Cell_ok { digest; artifact = payload })
            | None ->
                let artifact, was_warm =
                  single_flight t rctx digest (fun () ->
                      (* Re-check inside the flight: a follower that
                         becomes a fresh leader after the previous
                         flight completed finds the store warm. *)
                      let stored =
                        match t.store with
                        | None -> None
                        | Some store -> (
                            match Store.find store ~digest with
                            | Store.Hit payload -> Some payload
                            | Store.Miss | Store.Corrupt _ -> None)
                      in
                      match stored with
                      | Some payload -> (payload, true)
                      | None ->
                          let runs =
                            Core.Runs.create ~scale ?store:t.store ()
                          in
                          let art =
                            Core.Runs.get runs ~profile:program ~allocator
                          in
                          (Core.Artifact.encode art, false))
                in
                if was_warm then Atomic.incr t.warm
                else Atomic.incr t.simulated;
                Rctx.set_warm rctx was_warm;
                Result.Ok (Protocol.Cell_ok { digest; artifact })
          end)

let run_experiment t rctx ~id ~scale =
  match check_scale scale with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
      match Core.Experiment.find id with
      | exception Not_found ->
          Result.Error
            (Protocol.Unknown_key, Printf.sprintf "unknown experiment %S" id)
      | _ ->
          let key = Printf.sprintf "exp:%s:%h" id scale in
          Rctx.set_cell rctx key;
          let text, _ =
            single_flight t rctx key (fun () ->
                (* jobs:1 inside the request: the request itself already
                   occupies a pool worker, so nesting another fan-out
                   would oversubscribe the machine. *)
                let ctx =
                  Core.Context.create ~scale ~jobs:1 ?store:t.store ()
                in
                (Core.Experiment.run ctx id, false))
          in
          Result.Ok (Protocol.Report_ok text))

let run_ingest t rctx ~format ~trace =
  match Memsim.Trace.Source.format_of_string format with
  | Result.Error msg -> Result.Error (Protocol.Bad_request, msg)
  | Result.Ok fmt -> (
      (* Parse once up front so a malformed capture is a typed
         Bad_request, not an Internal from inside the single-flight. *)
      match
        Rctx.stage rctx "parse" (fun () ->
            Core.Runs.trace_ident ~format:fmt ~data:trace)
      with
      | exception Failure msg -> Result.Error (Protocol.Bad_request, msg)
      | _events, ident -> (
          let digest = Core.Runs.trace_digest ~ident in
          Rctx.set_cell rctx digest;
          (* Same warm/cold contract as run_cell: the store's verified
             bytes when the event stream was seen before (under any
             capture format), a fresh simulation written through
             otherwise. *)
          match store_find t rctx ~digest with
          | Some payload ->
              Atomic.incr t.warm;
              Rctx.set_warm rctx true;
              Result.Ok (Protocol.Cell_ok { digest; artifact = payload })
          | None ->
              let artifact, was_warm =
                single_flight t rctx digest (fun () ->
                    let stored =
                      match t.store with
                      | None -> None
                      | Some store -> (
                          match Store.find store ~digest with
                          | Store.Hit payload -> Some payload
                          | Store.Miss | Store.Corrupt _ -> None)
                    in
                    match stored with
                    | Some payload -> (payload, true)
                    | None ->
                        (* jobs:1 inside the request: the request
                           already occupies a pool worker (see
                           run_experiment). *)
                        let runs = Core.Runs.create ?store:t.store () in
                        let art =
                          Core.Runs.ingest runs ~format:fmt ~data:trace
                        in
                        (Core.Artifact.encode art, false))
              in
              if was_warm then Atomic.incr t.warm else Atomic.incr t.simulated;
              Rctx.set_warm rctx was_warm;
              Result.Ok (Protocol.Cell_ok { digest; artifact })))

let execute t rctx (req : Protocol.request) : Protocol.response =
  match
    match req with
    | Protocol.Health ->
        Result.Ok
          (Protocol.Health_ok
             { server_version = t.server_version;
               protocol_version = Protocol.version })
    | Protocol.Stats -> Result.Ok (Protocol.Stats_ok (stats t))
    | Protocol.Metrics -> Result.Ok (Protocol.Metrics_ok (prometheus_text ()))
    | Protocol.Run_cell { program; allocator; scale } ->
        run_cell t rctx ~program ~allocator ~scale
    | Protocol.Run_experiment { id; scale } -> run_experiment t rctx ~id ~scale
    | Protocol.Ingest { format; trace } -> run_ingest t rctx ~format ~trace
  with
  | Result.Ok resp -> resp
  | Result.Error (code, message) -> Protocol.Error { code; message }
  | exception e ->
      Log.err (fun m ->
          m "request %s failed: %s" (Protocol.request_kind req)
            (Printexc.to_string e));
      Protocol.Error
        { code = Protocol.Internal; message = Printexc.to_string e }

(* ---- connection threads --------------------------------------------- *)

let send_response t conn rctx ?trace resp =
  (match resp with
  | Protocol.Error { code; _ } ->
      Atomic.incr t.errors;
      Metrics.Counter.inc
        (Metrics.Counter.labels m_errors
           [ Protocol.error_code_to_string code ])
  | _ -> ());
  Atomic.incr t.requests;
  let payload =
    Rctx.stage rctx "encode" (fun () -> Protocol.encode_response ?trace resp)
  in
  Rctx.add_bytes_out rctx (String.length payload + frame_overhead);
  try Rctx.stage rctx "write_reply" (fun () ->
          Protocol.write_frame conn.fd payload)
  with Unix.Unix_error _ | Sys_error _ -> kill_conn conn

let handler_loop t conn =
  let rec go () =
    match dequeue conn with
    | None -> ()
    | Some item ->
        Atomic.incr t.inflight;
        let kind, resp, trace, rctx =
          match item with
          | Refuse (code, message, rctx) ->
              ("refused", Protocol.Error { code; message }, None, rctx)
          | Handle (req, trace, rctx) ->
              (Protocol.request_kind req, execute t rctx req, trace, rctx)
        in
        Atomic.decr t.inflight;
        Metrics.Counter.inc (Metrics.Counter.labels m_requests [ kind ]);
        Rctx.set_outcome rctx
          (match resp with
          | Protocol.Error { code; _ } -> Protocol.error_code_to_string code
          | _ -> "ok");
        (* Echo the trace context — with the adopted (possibly
           re-minted) id — to version-2 requesters only; version-1
           clients get version-1 bytes. *)
        let echo =
          Option.map
            (fun (tc : Protocol.trace_context) ->
              { tc with Protocol.trace_id = Rctx.id rctx })
            trace
        in
        send_response t conn rctx ?trace:echo resp;
        let fin = Rctx.finish rctx in
        Metrics.Histogram.observe h_duration (int_of_float fin.Rctx.total_us);
        List.iter observe_stage fin.Rctx.stages;
        let force =
          match trace with
          | Some tc ->
              tc.Protocol.trace_flags land Protocol.flag_force_sample <> 0
          | None -> false
        in
        access_log_write t ~force fin;
        go ()
  in
  go ()

let reader_loop t conn ~first =
  (* Stamp the pre-context stages (the id isn't known until decode) and
     hand the context to the handler through the queue — the mutex
     gives the happens-before the Rctx ownership contract needs. *)
  let admit rctx item =
    let depth = enqueue conn item in
    Rctx.set_queue_depth rctx depth
  in
  let refuse ?(read_span = None) code reason =
    let rctx = Rctx.create ~kind:"refused" ~peer:conn.peer () in
    (match read_span with
    | Some (start_us, dur_us) ->
        Rctx.record_stage rctx "read_frame" ~start_us ~dur_us
    | None -> ());
    admit rctx (Refuse (code, reason, rctx))
  in
  let rec go first =
    if not conn.dead then begin
      let r0 = Telemetry.Span.now_us () in
      match Protocol.read_frame ~first conn.fd with
      | Result.Ok None -> () (* clean EOF *)
      | Result.Error reason ->
          (* A torn or garbage frame leaves the stream unsynchronised:
             answer with a typed error, then stop reading. *)
          refuse
            ~read_span:(Some (r0, Telemetry.Span.now_us () -. r0))
            Protocol.Bad_request reason
      | Result.Ok (Some payload) -> (
          let r1 = Telemetry.Span.now_us () in
          let decoded = Protocol.decode_request payload in
          let r2 = Telemetry.Span.now_us () in
          match decoded with
          | Result.Error (Protocol.Unsupported v) ->
              (* The frame was sound — only the payload version is
                 foreign — so the stream is still synchronised and the
                 connection survives. *)
              refuse
                ~read_span:(Some (r0, r1 -. r0))
                Protocol.Unsupported_version
                (Printf.sprintf
                   "this server speaks protocol versions %d-%d, not %d"
                   Protocol.min_version Protocol.version v);
              go ""
          | Result.Error (Protocol.Malformed msg) ->
              refuse ~read_span:(Some (r0, r1 -. r0)) Protocol.Bad_request msg;
              go ""
          | Result.Ok (req, trace) ->
              let rctx =
                Rctx.create
                  ?id:(Option.map (fun tc -> tc.Protocol.trace_id) trace)
                  ~kind:(Protocol.request_kind req) ~peer:conn.peer ()
              in
              Rctx.record_stage rctx "read_frame" ~start_us:r0
                ~dur_us:(r1 -. r0);
              Rctx.record_stage rctx "decode" ~start_us:r1 ~dur_us:(r2 -. r1);
              Rctx.add_bytes_in rctx (String.length payload + frame_overhead);
              if Atomic.get t.stopping then
                admit rctx
                  (Refuse
                     (Protocol.Overloaded, "server is shutting down", rctx))
                (* and stop: drain what was accepted, refuse the rest *)
              else begin
                admit rctx (Handle (req, trace, rctx));
                go ""
              end)
    end
  in
  go first

(* ---- plain-HTTP observability --------------------------------------- *)

(* GET /metrics, /health and /status answer plain HTTP on the same
   port, so a Prometheus scraper, `loclab top` or a shell
   `curl --unix-socket` needs no custom client.  Everything else about
   the connection stays the binary protocol. *)
let http_response ?(content_type = "text/plain; version=0.0.4") status body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let rec write_all fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + n) (len - n)
  end

let contains_blank_line s =
  let n = String.length s in
  let rec go i =
    i + 3 < n
    && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
         && s.[i + 3] = '\n')
        || go (i + 1))
  in
  go 0

(* The live-introspection document behind GET /status: everything a
   dashboard needs in one scrape, rendered from the same counters the
   binary Stats request reads plus the request-scoped state (per-stage
   quantiles, slowest requests, per-connection queue depths, in-flight
   single-flight keys). *)
let status_json t =
  let stats = stats t in
  let q h p = Metrics.Histogram.quantile h p in
  let stages =
    List.filter_map
      (fun (name, h) ->
        let count = Metrics.Histogram.count h in
        if count = 0 then None
        else
          Some
            (Export.Obj
               [ ("stage", Export.String name);
                 ("count", Export.Int count);
                 ("p50_us", Export.Float (q h 0.50));
                 ("p99_us", Export.Float (q h 0.99)) ]))
      h_stages
  in
  let queues =
    Mutex.lock t.conns_mu;
    let conns = t.conns in
    Mutex.unlock t.conns_mu;
    List.rev_map
      (fun (c, _) ->
        Export.Obj
          [ ("cid", Export.Int c.cid);
            ("peer", Export.String c.peer);
            ("pending", Export.Int (queue_depth c)) ])
      conns
  in
  let single_flight =
    Mutex.lock t.sf_mu;
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.sf [] in
    Mutex.unlock t.sf_mu;
    List.map (fun k -> Export.String k) keys
  in
  let slow =
    List.map (fun fin -> Rctx.to_json fin) (Rctx.Slow.snapshot ())
  in
  let access =
    match t.access with
    | None -> Export.Null
    | Some a ->
        Export.Obj
          [ ("sample", Export.Int a.asample);
            ("written", Export.Int (Metrics.Counter.value c_access_written));
            ( "sampled_out",
              Export.Int (Metrics.Counter.value c_access_sampled) );
            ( "write_errors",
              Export.Int (Metrics.Counter.value c_access_write_error) ) ]
  in
  Export.to_string
    (Export.Obj
       [ ( "server",
           Export.Obj
             [ ("version", Export.String t.server_version);
               ("protocol_min", Export.Int Protocol.min_version);
               ("protocol_max", Export.Int Protocol.version);
               ( "artifact_schema",
                 Export.Int Core.Artifact.schema_version );
               ("started", Export.String (Rctx.iso8601 t.started));
               ("uptime_seconds", Export.Float stats.Protocol.uptime_seconds)
             ] );
         ( "requests",
           Export.Obj
             [ ("total", Export.Int stats.Protocol.requests);
               ("errors", Export.Int stats.Protocol.errors);
               ("warm_cells", Export.Int stats.Protocol.warm_cells);
               ("simulated_cells", Export.Int stats.Protocol.simulated_cells);
               ("inflight", Export.Int stats.Protocol.inflight) ] );
         ( "latency_us",
           Export.Obj
             [ ("count", Export.Int (Metrics.Histogram.count h_duration));
               ("mean", Export.Float (Metrics.Histogram.mean h_duration));
               ("p50", Export.Float (q h_duration 0.50));
               ("p90", Export.Float (q h_duration 0.90));
               ("p99", Export.Float (q h_duration 0.99)) ] );
         ("stages", Export.List stages);
         ( "connections",
           Export.Obj
             [ ("open", Export.Int stats.Protocol.connections);
               ("queues", Export.List queues) ] );
         ("single_flight", Export.List single_flight);
         ("slow_requests", Export.List slow);
         ( "spans",
           Export.Obj
             [ ("recorded", Export.Int (Telemetry.Span.recorded ()));
               ("dropped", Export.Int (Telemetry.Span.dropped ())) ] );
         ("access_log", access) ])

let serve_http t conn ~first =
  (* Drain the request head (bounded) so the client sees our response
     rather than a reset, then answer by method and path. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf first;
  let chunk = Bytes.create 1024 in
  let rec drain () =
    if Buffer.length buf < 8192 && not (contains_blank_line (Buffer.contents buf))
    then
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  let head = Buffer.contents buf in
  let request_line =
    match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  let meth, path =
    match String.split_on_char ' ' request_line with
    | meth :: path :: _ when path <> "" -> (meth, path)
    | _ -> ("", "")
  in
  let rctx = Rctx.create ~kind:"http" ~peer:conn.peer () in
  Rctx.add_bytes_in rctx (String.length head);
  Rctx.set_cell rctx (if path = "" then request_line else path);
  let status, resp =
    if path = "" then
      ("400", http_response "400 Bad Request" "malformed request line\n")
    else if meth <> "GET" then
      ( "405",
        http_response "405 Method Not Allowed"
          (Printf.sprintf "method %s not allowed (GET only)\n" meth) )
    else
      match path with
      | "/metrics" -> ("200", http_response "200 OK" (prometheus_text ()))
      | "/health" -> ("200", http_response "200 OK" "ok\n")
      | "/status" ->
          ( "200",
            http_response ~content_type:"application/json" "200 OK"
              (status_json t ^ "\n") )
      | _ ->
          ( "404",
            http_response "404 Not Found"
              "only /metrics, /health and /status live here\n" )
  in
  Metrics.Counter.inc (Metrics.Counter.labels m_requests [ "http" ]);
  Atomic.incr t.requests;
  Rctx.set_outcome rctx status;
  Rctx.add_bytes_out rctx (String.length resp);
  (try Rctx.stage rctx "write_reply" (fun () ->
           write_all conn.fd resp 0 (String.length resp))
   with Unix.Unix_error _ -> ());
  access_log_write t (Rctx.finish rctx)

(* ---- connection lifecycle ------------------------------------------- *)

(* Each connection starts as one thread that sniffs the first bytes: an
   HTTP method prefix means plain HTTP (answered inline, then close);
   anything else is treated as the binary protocol — the thread becomes
   the reader and spawns its handler twin. *)
let sniff_bytes = 4

(* The 4-byte prefixes of the HTTP methods worth answering (GET with a
   response, the rest with a 405); none collides with the binary magic
   "LOCS...". *)
let http_prefixes =
  [ "GET "; "HEAD"; "POST"; "PUT "; "DELE"; "OPTI"; "PATC" ]

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "unknown"

let conn_main t conn =
  let finally () =
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Atomic.decr t.open_conns;
    Metrics.Gauge.add g_connections (-1);
    Mutex.lock t.conns_mu;
    t.conns <- List.filter (fun (c, _) -> c.cid <> conn.cid) t.conns;
    Mutex.unlock t.conns_mu
  in
  Fun.protect ~finally (fun () ->
      let first = Bytes.create sniff_bytes in
      let rec sniff off =
        if off >= sniff_bytes then Some (Bytes.to_string first)
        else
          match Unix.read conn.fd first off (sniff_bytes - off) with
          | 0 -> if off = 0 then None else Some (Bytes.sub_string first 0 off)
          | n -> sniff (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> sniff off
      in
      match sniff 0 with
      | None -> () (* connected and left *)
      | Some first when List.mem first http_prefixes ->
          serve_http t conn ~first
      | Some first ->
          let handler = Thread.create (fun () -> handler_loop t conn) () in
          reader_loop t conn ~first;
          close_queue conn;
          Thread.join handler)

let accept_conn t fd =
  let conn =
    Mutex.lock t.conns_mu;
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    let conn =
      { cid;
        fd;
        peer = peer_string fd;
        q = Queue.create ();
        qmu = Mutex.create ();
        not_full = Condition.create ();
        not_empty = Condition.create ();
        max_pending = t.max_pending;
        qclosed = false;
        dead = false }
    in
    let thread = Thread.create (fun () -> conn_main t conn) () in
    t.conns <- (conn, thread) :: t.conns;
    Mutex.unlock t.conns_mu;
    conn
  in
  ignore conn;
  Atomic.incr t.open_conns;
  Metrics.Gauge.add g_connections 1

(* ---- accept loop, shutdown ------------------------------------------ *)

let shutdown t =
  (* Callable from a signal handler: one atomic flip, no locks.  The
     accept loop polls the flag (and EINTR from the signal itself cuts
     its select short), notices, and performs the actual teardown. *)
  Atomic.set t.stopping true

let drain_and_close t =
  (* Stop reading on every open connection: readers see EOF, handlers
     drain what was already queued, write the replies, and exit —
     accepted work completes, nothing new enters. *)
  Mutex.lock t.conns_mu;
  let conns = t.conns in
  Mutex.unlock t.conns_mu;
  List.iter
    (fun (conn, _) ->
      try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, thread) -> Thread.join thread) conns;
  Exec.Pool.shutdown t.pool;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.access with
  | Some a when a.aclose -> ( try close_out a.ach with Sys_error _ -> ())
  | Some a -> ( try flush a.ach with Sys_error _ -> ())
  | None -> ());
  match t.sock_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let run t =
  Log.info (fun m ->
      m "serving on %s (%d worker domain%s)"
        (Protocol.addr_to_string t.listen_addr)
        (Exec.Pool.jobs t.pool)
        (if Exec.Pool.jobs t.pool = 1 then "" else "s"));
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> accept_conn t fd
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                 | Unix.EWOULDBLOCK), _, _) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  Log.info (fun m -> m "shutting down: draining open connections");
  drain_and_close t;
  Log.info (fun m ->
      m "served %d request%s (%d warm, %d simulated, %d error%s)"
        (Atomic.get t.requests)
        (if Atomic.get t.requests = 1 then "" else "s")
        (Atomic.get t.warm) (Atomic.get t.simulated) (Atomic.get t.errors)
        (if Atomic.get t.errors = 1 then "" else "s"))
