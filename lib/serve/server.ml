(* The loclab simulation service.

   One accept loop; per connection, a reader thread (frame decode) and
   a handler thread (execution + replies) joined by a bounded queue —
   the queue bound is the backpressure: a client that pipelines faster
   than the server drains simply blocks in the kernel once the queue
   and socket buffers fill.  Simulation work is parked on the shared
   Exec.Pool via async/await, so CPU runs on worker domains while the
   (I/O-bound) connection threads multiplex; identical concurrent cold
   requests are deduplicated to one simulation by a single-flight table
   keyed by the cell digest.

   Threads suit the connection layer (blocking reads, shared store and
   single-flight state under mutexes); domains suit the simulations
   (compute-bound, no shared state).  The same split the grid prefetch
   uses, now behind a socket. *)

module Metrics = Telemetry.Metrics

let src = Logs.Src.create "loclab.serve" ~doc:"loclab serve"

module Log = (val Logs.src_log src : Logs.LOG)

(* ---- metrics -------------------------------------------------------- *)

let m_requests =
  Metrics.Counter.family ~name:"loclab_serve_requests_total"
    ~help:"Requests answered, by request kind." ~labels:[ "kind" ] ()

let m_errors =
  Metrics.Counter.family ~name:"loclab_serve_errors_total"
    ~help:"Error responses sent, by error code." ~labels:[ "code" ] ()

let m_duration =
  Metrics.Histogram.family ~name:"loclab_serve_request_duration_us"
    ~help:"Request handling latency in microseconds." ()

let m_connections =
  Metrics.Gauge.family ~name:"loclab_serve_connections"
    ~help:"Open connections." ()

let h_duration = Metrics.Histogram.labels m_duration []
let g_connections = Metrics.Gauge.labels m_connections []

(* ---- bounded per-connection queue ----------------------------------- *)

type queue_item =
  | Handle of Protocol.request
  | Refuse of Protocol.error_code * string
      (** Reply with a typed error without executing anything. *)

type conn = {
  cid : int;
  fd : Unix.file_descr;
  q : queue_item Queue.t;
  qmu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  max_pending : int;
  mutable qclosed : bool;  (* reader finished; handler drains and exits *)
  mutable dead : bool;  (* write side failed; both sides stop *)
}

let enqueue conn item =
  Mutex.lock conn.qmu;
  while Queue.length conn.q >= conn.max_pending && not conn.dead do
    Condition.wait conn.not_full conn.qmu
  done;
  if not conn.dead then begin
    Queue.add item conn.q;
    Condition.signal conn.not_empty
  end;
  Mutex.unlock conn.qmu

let close_queue conn =
  Mutex.lock conn.qmu;
  conn.qclosed <- true;
  Condition.broadcast conn.not_empty;
  Mutex.unlock conn.qmu

let dequeue conn =
  Mutex.lock conn.qmu;
  while Queue.is_empty conn.q && not conn.qclosed && not conn.dead do
    Condition.wait conn.not_empty conn.qmu
  done;
  let item =
    if conn.dead || Queue.is_empty conn.q then None
    else begin
      let item = Queue.take conn.q in
      Condition.signal conn.not_full;
      Some item
    end
  in
  Mutex.unlock conn.qmu;
  item

let kill_conn conn =
  Mutex.lock conn.qmu;
  conn.dead <- true;
  Condition.broadcast conn.not_empty;
  Condition.broadcast conn.not_full;
  Mutex.unlock conn.qmu;
  (* Wake a reader blocked in [read]. *)
  try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

(* ---- server state --------------------------------------------------- *)

type t = {
  listen_fd : Unix.file_descr;
  listen_addr : Protocol.addr;  (* resolved: TCP port 0 becomes real *)
  sock_path : string option;  (* AF_UNIX path to unlink on shutdown *)
  store : Store.t option;
  pool : Exec.Pool.t;
  max_pending : int;
  server_version : string;
  started : float;
  stopping : bool Atomic.t;
  conns_mu : Mutex.t;
  mutable conns : (conn * Thread.t) list;
  mutable next_cid : int;
  (* single-flight: digest (or experiment key) -> in-progress future *)
  sf_mu : Mutex.t;
  sf : (string, (string * bool) Exec.Pool.future) Hashtbl.t;
  (* stats *)
  requests : int Atomic.t;
  errors : int Atomic.t;
  warm : int Atomic.t;
  simulated : int Atomic.t;
  inflight : int Atomic.t;
  open_conns : int Atomic.t;
}

let default_max_pending = 32

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

(* Unlink a leftover socket file only when nothing answers on it: a
   stale path from a crashed server must not block restart, but a live
   sibling server must not be evicted. *)
let clear_stale_unix_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      failwith (Printf.sprintf "address unix:%s is already being served" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let create ?(server_version = "loclab/1.0.0")
    ?(max_pending = default_max_pending) ?(jobs = 1) ?store
    ~listen:requested () =
  if max_pending < 1 then
    invalid_arg "Serve.Server.create: max_pending must be >= 1";
  (* A dead client mid-write must surface as EPIPE, not kill the
     process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Metrics.set_enabled Metrics.default true;
  let listen_fd, listen_addr, sock_path =
    match requested with
    | Protocol.Unix_path path ->
        clear_stale_unix_socket path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.bind fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with _ -> ()); raise e);
        (fd, requested, Some path)
    | Protocol.Tcp (host, port) ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.setsockopt fd Unix.SO_REUSEADDR true;
           Unix.bind fd (Unix.ADDR_INET (resolve_host host, port))
         with e -> (try Unix.close fd with _ -> ()); raise e);
        let bound =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> Protocol.Tcp (host, p)
          | _ -> requested
        in
        (fd, bound, None)
  in
  Unix.listen listen_fd 64;
  { listen_fd;
    listen_addr;
    sock_path;
    store;
    pool = Exec.Pool.create ~jobs;
    max_pending;
    server_version;
    started = Unix.gettimeofday ();
    stopping = Atomic.make false;
    conns_mu = Mutex.create ();
    conns = [];
    next_cid = 0;
    sf_mu = Mutex.create ();
    sf = Hashtbl.create 16;
    requests = Atomic.make 0;
    errors = Atomic.make 0;
    warm = Atomic.make 0;
    simulated = Atomic.make 0;
    inflight = Atomic.make 0;
    open_conns = Atomic.make 0 }

let listen_addr t = t.listen_addr

let stats t =
  { Protocol.uptime_seconds = Unix.gettimeofday () -. t.started;
    connections = Atomic.get t.open_conns;
    requests = Atomic.get t.requests;
    errors = Atomic.get t.errors;
    warm_cells = Atomic.get t.warm;
    simulated_cells = Atomic.get t.simulated;
    inflight = Atomic.get t.inflight;
    p50_us = Metrics.Histogram.quantile h_duration 0.50;
    p99_us = Metrics.Histogram.quantile h_duration 0.99 }

(* ---- request execution ---------------------------------------------- *)

let check_scale scale =
  if scale > 0. && scale <= 4.0 then Result.Ok ()
  else
    Result.Error
      (Protocol.Bad_request,
       Printf.sprintf "scale %g out of range (0, 4]" scale)

(* Deduplicate identical concurrent work: the first arrival schedules
   the computation on the pool, later arrivals await the same future.
   The table entry lives exactly as long as the computation, so a
   completed (or failed) key recomputes freshly next time. *)
let single_flight t key compute =
  Mutex.lock t.sf_mu;
  let fut, mine =
    match Hashtbl.find_opt t.sf key with
    | Some fut -> (fut, false)
    | None ->
        let fut = Exec.Pool.async t.pool compute in
        Hashtbl.replace t.sf key fut;
        (fut, true)
  in
  Mutex.unlock t.sf_mu;
  Fun.protect
    ~finally:(fun () ->
      if mine then begin
        Mutex.lock t.sf_mu;
        Hashtbl.remove t.sf key;
        Mutex.unlock t.sf_mu
      end)
    (fun () -> Exec.Pool.await fut)

let run_cell t ~program ~allocator ~scale =
  match check_scale scale with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
      match Workload.Programs.find program with
      | exception Not_found ->
          Result.Error
            (Protocol.Unknown_key, Printf.sprintf "unknown program %S" program)
      | profile ->
          let known_allocator =
            allocator = "custom"
            || List.exists
                 (fun (s : Allocators.Registry.spec) -> s.key = allocator)
                 Allocators.Registry.all
          in
          if not known_allocator then
            Result.Error
              (Protocol.Unknown_key,
               Printf.sprintf "unknown allocator %S" allocator)
          else begin
            let digest =
              Core.Artifact.digest ~program ~allocator ~scale
                ~seed:profile.Workload.Profile.seed
            in
            let artifact, was_warm =
              single_flight t digest (fun () ->
                  (* Warm path: hand back the store's verified payload
                     bytes themselves.  Cold path: simulate through
                     Core.Runs (which writes the same bytes through the
                     store), then encode — Artifact.encode is exactly
                     what the store persists, so warm and cold replies
                     are byte-identical for the same cell. *)
                  let stored =
                    match t.store with
                    | None -> None
                    | Some store -> (
                        match Store.find store ~digest with
                        | Store.Hit payload -> Some payload
                        | Store.Miss | Store.Corrupt _ -> None)
                  in
                  match stored with
                  | Some payload -> (payload, true)
                  | None ->
                      let runs =
                        Core.Runs.create ~scale ?store:t.store ()
                      in
                      let art =
                        Core.Runs.get runs ~profile:program ~allocator
                      in
                      (Core.Artifact.encode art, false))
            in
            if was_warm then Atomic.incr t.warm else Atomic.incr t.simulated;
            Result.Ok (Protocol.Cell_ok { digest; artifact })
          end)

let run_experiment t ~id ~scale =
  match check_scale scale with
  | Result.Error _ as e -> e
  | Result.Ok () -> (
      match Core.Experiment.find id with
      | exception Not_found ->
          Result.Error
            (Protocol.Unknown_key, Printf.sprintf "unknown experiment %S" id)
      | _ ->
          let key = Printf.sprintf "exp:%s:%h" id scale in
          let text, _ =
            single_flight t key (fun () ->
                (* jobs:1 inside the request: the request itself already
                   occupies a pool worker, so nesting another fan-out
                   would oversubscribe the machine. *)
                let ctx =
                  Core.Context.create ~scale ~jobs:1 ?store:t.store ()
                in
                (Core.Experiment.run ctx id, false))
          in
          Result.Ok (Protocol.Report_ok text))

let run_ingest t ~format ~trace =
  match Memsim.Trace.Source.format_of_string format with
  | Result.Error msg -> Result.Error (Protocol.Bad_request, msg)
  | Result.Ok fmt -> (
      (* Parse once up front so a malformed capture is a typed
         Bad_request, not an Internal from inside the single-flight. *)
      match Core.Runs.trace_ident ~format:fmt ~data:trace with
      | exception Failure msg -> Result.Error (Protocol.Bad_request, msg)
      | _events, ident ->
          let digest = Core.Runs.trace_digest ~ident in
          let artifact, was_warm =
            single_flight t digest (fun () ->
                (* Same warm/cold contract as run_cell: the store's
                   verified bytes when the event stream was seen before
                   (under any capture format), a fresh simulation
                   written through otherwise. *)
                let stored =
                  match t.store with
                  | None -> None
                  | Some store -> (
                      match Store.find store ~digest with
                      | Store.Hit payload -> Some payload
                      | Store.Miss | Store.Corrupt _ -> None)
                in
                match stored with
                | Some payload -> (payload, true)
                | None ->
                    (* jobs:1 inside the request: the request already
                       occupies a pool worker (see run_experiment). *)
                    let runs = Core.Runs.create ?store:t.store () in
                    let art = Core.Runs.ingest runs ~format:fmt ~data:trace in
                    (Core.Artifact.encode art, false))
          in
          if was_warm then Atomic.incr t.warm else Atomic.incr t.simulated;
          Result.Ok (Protocol.Cell_ok { digest; artifact }))

let execute t (req : Protocol.request) : Protocol.response =
  match
    match req with
    | Protocol.Health ->
        Result.Ok
          (Protocol.Health_ok
             { server_version = t.server_version;
               protocol_version = Protocol.version })
    | Protocol.Stats -> Result.Ok (Protocol.Stats_ok (stats t))
    | Protocol.Metrics ->
        Result.Ok
          (Protocol.Metrics_ok
             (Metrics.to_prometheus (Metrics.snapshot Metrics.default)))
    | Protocol.Run_cell { program; allocator; scale } ->
        run_cell t ~program ~allocator ~scale
    | Protocol.Run_experiment { id; scale } -> run_experiment t ~id ~scale
    | Protocol.Ingest { format; trace } -> run_ingest t ~format ~trace
  with
  | Result.Ok resp -> resp
  | Result.Error (code, message) -> Protocol.Error { code; message }
  | exception e ->
      Log.err (fun m ->
          m "request %s failed: %s" (Protocol.request_kind req)
            (Printexc.to_string e));
      Protocol.Error
        { code = Protocol.Internal; message = Printexc.to_string e }

(* ---- connection threads --------------------------------------------- *)

let send_response t conn resp =
  (match resp with
  | Protocol.Error { code; _ } ->
      Atomic.incr t.errors;
      Metrics.Counter.inc
        (Metrics.Counter.labels m_errors
           [ Protocol.error_code_to_string code ])
  | _ -> ());
  Atomic.incr t.requests;
  try Protocol.write_frame conn.fd (Protocol.encode_response resp)
  with Unix.Unix_error _ | Sys_error _ -> kill_conn conn

let handler_loop t conn =
  let rec go () =
    match dequeue conn with
    | None -> ()
    | Some item ->
        let t0 = Unix.gettimeofday () in
        Atomic.incr t.inflight;
        let kind, resp =
          match item with
          | Refuse (code, message) ->
              ("refused", Protocol.Error { code; message })
          | Handle req -> (Protocol.request_kind req, execute t req)
        in
        Atomic.decr t.inflight;
        Metrics.Counter.inc (Metrics.Counter.labels m_requests [ kind ]);
        Metrics.Histogram.observe h_duration
          (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6));
        send_response t conn resp;
        go ()
  in
  go ()

let reader_loop t conn ~first =
  let rec go first =
    if not conn.dead then
      match Protocol.read_frame ~first conn.fd with
      | Result.Ok None -> () (* clean EOF *)
      | Result.Error reason ->
          (* A torn or garbage frame leaves the stream unsynchronised:
             answer with a typed error, then stop reading. *)
          enqueue conn (Refuse (Protocol.Bad_request, reason))
      | Result.Ok (Some payload) -> (
          match Protocol.decode_request payload with
          | Result.Error (Protocol.Unsupported v) ->
              (* The frame was sound — only the payload version is
                 foreign — so the stream is still synchronised and the
                 connection survives. *)
              enqueue conn
                (Refuse
                   (Protocol.Unsupported_version,
                    Printf.sprintf
                      "this server speaks protocol version %d, not %d"
                      Protocol.version v));
              go ""
          | Result.Error (Protocol.Malformed msg) ->
              enqueue conn (Refuse (Protocol.Bad_request, msg));
              go ""
          | Result.Ok req ->
              if Atomic.get t.stopping then
                enqueue conn
                  (Refuse (Protocol.Overloaded, "server is shutting down"))
                (* and stop: drain what was accepted, refuse the rest *)
              else begin
                enqueue conn (Handle req);
                go ""
              end)
  in
  go first

(* ---- plain-HTTP observability --------------------------------------- *)

(* GET /metrics and GET /health answer plain HTTP on the same port, so
   a Prometheus scraper or a shell `curl --unix-socket` needs no custom
   client.  Everything else about the connection stays the binary
   protocol. *)
let http_response status body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: text/plain; version=0.0.4\r\n\
     Content-Length: %d\r\nConnection: close\r\n\r\n%s"
    status (String.length body) body

let rec write_all fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + n) (len - n)
  end

let contains_blank_line s =
  let n = String.length s in
  let rec go i =
    i + 3 < n
    && ((s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
         && s.[i + 3] = '\n')
        || go (i + 1))
  in
  go 0

let serve_http t conn ~first =
  (* Drain the request head (bounded) so the client sees our response
     rather than a reset, then answer by path. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf first;
  let chunk = Bytes.create 1024 in
  let rec drain () =
    if Buffer.length buf < 8192 && not (contains_blank_line (Buffer.contents buf))
    then
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
  in
  drain ();
  let head = Buffer.contents buf in
  let path =
    match String.split_on_char ' ' head with
    | _meth :: path :: _ -> path
    | _ -> "/"
  in
  let resp =
    match path with
    | "/metrics" ->
        Metrics.Counter.inc (Metrics.Counter.labels m_requests [ "http" ]);
        Atomic.incr t.requests;
        http_response "200 OK"
          (Metrics.to_prometheus (Metrics.snapshot Metrics.default))
    | "/health" ->
        Metrics.Counter.inc (Metrics.Counter.labels m_requests [ "http" ]);
        Atomic.incr t.requests;
        http_response "200 OK" "ok\n"
    | _ -> http_response "404 Not Found" "only /metrics and /health live here\n"
  in
  try write_all conn.fd resp 0 (String.length resp)
  with Unix.Unix_error _ -> ()

(* ---- connection lifecycle ------------------------------------------- *)

(* Each connection starts as one thread that sniffs the first bytes:
   "GET " means plain HTTP (answered inline, then close); anything else
   is treated as the binary protocol — the thread becomes the reader
   and spawns its handler twin. *)
let sniff_bytes = 4

let conn_main t conn =
  let finally () =
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Atomic.decr t.open_conns;
    Metrics.Gauge.add g_connections (-1);
    Mutex.lock t.conns_mu;
    t.conns <- List.filter (fun (c, _) -> c.cid <> conn.cid) t.conns;
    Mutex.unlock t.conns_mu
  in
  Fun.protect ~finally (fun () ->
      let first = Bytes.create sniff_bytes in
      let rec sniff off =
        if off >= sniff_bytes then Some (Bytes.to_string first)
        else
          match Unix.read conn.fd first off (sniff_bytes - off) with
          | 0 -> if off = 0 then None else Some (Bytes.sub_string first 0 off)
          | n -> sniff (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> sniff off
      in
      match sniff 0 with
      | None -> () (* connected and left *)
      | Some "GET " -> serve_http t conn ~first:"GET "
      | Some first ->
          let handler = Thread.create (fun () -> handler_loop t conn) () in
          reader_loop t conn ~first;
          close_queue conn;
          Thread.join handler)

let accept_conn t fd =
  let conn =
    Mutex.lock t.conns_mu;
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    let conn =
      { cid;
        fd;
        q = Queue.create ();
        qmu = Mutex.create ();
        not_full = Condition.create ();
        not_empty = Condition.create ();
        max_pending = t.max_pending;
        qclosed = false;
        dead = false }
    in
    let thread = Thread.create (fun () -> conn_main t conn) () in
    t.conns <- (conn, thread) :: t.conns;
    Mutex.unlock t.conns_mu;
    conn
  in
  ignore conn;
  Atomic.incr t.open_conns;
  Metrics.Gauge.add g_connections 1

(* ---- accept loop, shutdown ------------------------------------------ *)

let shutdown t =
  (* Callable from a signal handler: one atomic flip, no locks.  The
     accept loop polls the flag (and EINTR from the signal itself cuts
     its select short), notices, and performs the actual teardown. *)
  Atomic.set t.stopping true

let drain_and_close t =
  (* Stop reading on every open connection: readers see EOF, handlers
     drain what was already queued, write the replies, and exit —
     accepted work completes, nothing new enters. *)
  Mutex.lock t.conns_mu;
  let conns = t.conns in
  Mutex.unlock t.conns_mu;
  List.iter
    (fun (conn, _) ->
      try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, thread) -> Thread.join thread) conns;
  Exec.Pool.shutdown t.pool;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  match t.sock_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ()

let run t =
  Log.info (fun m ->
      m "serving on %s (%d worker domain%s)"
        (Protocol.addr_to_string t.listen_addr)
        (Exec.Pool.jobs t.pool)
        (if Exec.Pool.jobs t.pool = 1 then "" else "s"));
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> accept_conn t fd
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN
                 | Unix.EWOULDBLOCK), _, _) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  Log.info (fun m -> m "shutting down: draining open connections");
  drain_and_close t;
  Log.info (fun m ->
      m "served %d request%s (%d warm, %d simulated, %d error%s)"
        (Atomic.get t.requests)
        (if Atomic.get t.requests = 1 then "" else "s")
        (Atomic.get t.warm) (Atomic.get t.simulated) (Atomic.get t.errors)
        (if Atomic.get t.errors = 1 then "" else "s"))
