(** The loclab simulation service: an accept loop answering
    {!Protocol} requests over AF_UNIX or TCP.

    Per connection, a reader thread decodes frames into a {e bounded}
    queue drained by a handler thread — the bound is the backpressure:
    a client pipelining faster than the server drains blocks once the
    queue (and the kernel socket buffers) fill.  Simulation work is
    parked on a shared {!Exec.Pool} via [async]/[await], so CPU runs on
    worker domains while connection threads multiplex I/O; identical
    concurrent cold requests are collapsed to one simulation by a
    single-flight table keyed by the cell digest.

    Cell requests are answered from the persistent store when warm (the
    reply carries the store's verified payload bytes themselves) and
    simulated — with store write-through — when cold; warm and cold
    replies for the same cell are byte-identical, because the store
    persists exactly [Core.Artifact.encode].

    The same port also answers plain [GET /metrics] (Prometheus text)
    and [GET /health], so a scraper or shell needs no custom client:
    the first bytes of each connection decide HTTP versus the binary
    protocol. *)

type t

val create :
  ?server_version:string ->
  ?max_pending:int ->
  ?jobs:int ->
  ?store:Store.t ->
  listen:Protocol.addr ->
  unit ->
  t
(** Bind and listen (the socket accepts from the moment [create]
    returns; {!run} starts answering).  [max_pending] (default 32)
    bounds each connection's decoded-but-unanswered requests; [jobs]
    (default 1) sizes the worker-domain pool.  A stale AF_UNIX socket
    file (nothing answering on it) is replaced; a live one is an error.
    Enables the default metrics registry and ignores [SIGPIPE]
    (process-wide).
    @raise Unix.Unix_error when binding fails,
    @raise Failure when the unix socket is already being served,
    @raise Invalid_argument when [max_pending < 1]. *)

val listen_addr : t -> Protocol.addr
(** The bound address — for [Tcp] with port 0, the real port. *)

val run : t -> unit
(** Accept and answer until {!shutdown}, then drain: open connections
    stop reading, already-accepted requests complete and their replies
    are written, worker domains and connection threads are joined, the
    listen socket is closed and an AF_UNIX socket file unlinked.
    Blocks until the drain completes. *)

val shutdown : t -> unit
(** Ask {!run} to stop.  Idempotent, lock-free and async-signal-safe —
    wire it directly to SIGINT; a second Ctrl-C during the drain is
    harmless. *)

val stats : t -> Protocol.stats
(** The live counters the [Stats] request answers with. *)
