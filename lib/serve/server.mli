(** The loclab simulation service: an accept loop answering
    {!Protocol} requests over AF_UNIX or TCP.

    Per connection, a reader thread decodes frames into a {e bounded}
    queue drained by a handler thread — the bound is the backpressure:
    a client pipelining faster than the server drains blocks once the
    queue (and the kernel socket buffers) fill.  Simulation work is
    parked on a shared {!Exec.Pool} via [async]/[await], so CPU runs on
    worker domains while connection threads multiplex I/O; identical
    concurrent cold requests are collapsed to one simulation by a
    single-flight table keyed by the cell digest.

    Cell requests are answered from the persistent store when warm (the
    reply carries the store's verified payload bytes themselves) and
    simulated — with store write-through — when cold; warm and cold
    replies for the same cell are byte-identical, because the store
    persists exactly [Core.Artifact.encode].

    {b Request-scoped tracing.}  Every request is tracked by a
    {!Telemetry.Rctx}: the reader stamps [read_frame]/[decode] and
    adopts the client's request id (or mints one), the execution path
    stamps [parse]/[store_lookup]/[simulate]/[single_flight_wait], and
    the reply path stamps [encode]/[write_reply].  Completed requests
    feed the per-stage latency histograms
    ([loclab_serve_stage_duration_us]), the slow-request table, the
    span ring, and — when configured — a JSON-lines access log.

    The same port also answers plain [GET /metrics] (Prometheus text),
    [GET /health], and [GET /status] (a JSON introspection document:
    versions, RED counters, latency and per-stage quantiles,
    per-connection queue depths, the single-flight table, the slowest
    requests), so a scraper, [loclab top] or a shell needs no custom
    client: the first bytes of each connection decide HTTP versus the
    binary protocol.  Non-GET HTTP methods get a [405], unknown paths a
    [404]. *)

type t

val create :
  ?server_version:string ->
  ?max_pending:int ->
  ?jobs:int ->
  ?store:Store.t ->
  ?access_log:string ->
  ?access_log_sample:int ->
  ?slow_capacity:int ->
  listen:Protocol.addr ->
  unit ->
  t
(** Bind and listen (the socket accepts from the moment [create]
    returns; {!run} starts answering).  [max_pending] (default 32)
    bounds each connection's decoded-but-unanswered requests; [jobs]
    (default 1) sizes the worker-domain pool.  [access_log] names the
    JSON-lines access-log destination ([-] = stdout; absent = no log);
    [access_log_sample] (default 1) writes every Nth request — a
    request whose trace context sets {!Protocol.flag_force_sample} is
    always written.  [slow_capacity] (default 8) sizes the
    slowest-requests table served under [/status].  A stale AF_UNIX
    socket file (nothing answering on it) is replaced; a live one is an
    error.  Enables the default metrics registry and request tracing,
    and ignores [SIGPIPE] (process-wide).
    @raise Unix.Unix_error when binding fails,
    @raise Failure when the unix socket is already being served,
    @raise Invalid_argument when [max_pending < 1] or
    [access_log_sample < 1]. *)

val listen_addr : t -> Protocol.addr
(** The bound address — for [Tcp] with port 0, the real port. *)

val run : t -> unit
(** Accept and answer until {!shutdown}, then drain: open connections
    stop reading, already-accepted requests complete and their replies
    are written, worker domains and connection threads are joined, the
    listen socket is closed, an AF_UNIX socket file unlinked and the
    access log closed (flushed, for stdout).  Blocks until the drain
    completes. *)

val shutdown : t -> unit
(** Ask {!run} to stop.  Idempotent, lock-free and async-signal-safe —
    wire it directly to SIGINT; a second Ctrl-C during the drain is
    harmless. *)

val stats : t -> Protocol.stats
(** The live counters the [Stats] request answers with. *)

val status_json : t -> string
(** The [/status] introspection document (one compact JSON object) —
    exposed for the CLI and tests; the HTTP route serves exactly
    this. *)
