(** A blocking client for the {!Protocol} service: one connection, one
    outstanding request at a time (the server supports pipelining; this
    client simply doesn't need it).  [loclab client], the bench traffic
    replay and the integration tests all speak through here. *)

type t

val connect : Protocol.addr -> t
(** Also ignores [SIGPIPE] process-wide, for the same reason the server
    does.  @raise Unix.Unix_error when the connection fails. *)

val close : t -> unit

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One round trip.  [Error] covers transport failures and undecodable
    replies; a server-side failure arrives as [Ok (Error _)] — the
    typed error response — not as [Error].  Never raises. *)

val with_connection : Protocol.addr -> (t -> 'a) -> 'a
(** [with_connection addr f] connects, runs [f], and always closes. *)
