(** A blocking client for the {!Protocol} service: one connection, one
    outstanding request at a time (the server supports pipelining; this
    client simply doesn't need it).  [loclab client], [loclab top], the
    bench traffic replay and the integration tests all speak through
    here. *)

type t

type error =
  | Timeout of float
      (** No reply within the receive timeout (seconds; 0 when it
          could not be read back from the socket). *)
  | Closed  (** The server closed the connection before replying. *)
  | Transport of string  (** I/O failure or an undecodable reply. *)

val error_to_string : error -> string

val connect : ?timeout:float -> Protocol.addr -> t
(** [timeout] (seconds, via [SO_RCVTIMEO]) bounds every receive on the
    connection: a wedged server yields [Error (Timeout _)] instead of
    hanging forever.  Also ignores [SIGPIPE] process-wide, for the same
    reason the server does.
    @raise Unix.Unix_error when the connection fails. *)

val close : t -> unit

val request :
  ?trace:Protocol.trace_context ->
  t -> Protocol.request -> (Protocol.response, error) result
(** One round trip.  [Error] covers transport failures, timeouts and
    undecodable replies; a server-side failure arrives as
    [Ok (Error _)] — the typed error response — not as [Error].  Never
    raises.

    With [trace], the request carries a version-2 trace context.  An
    old server that answers [Unsupported_version] triggers one silent
    retry without the context, and the connection remembers the
    downgrade ({!downgraded}) — ids are lost, answers are not. *)

val request_traced :
  ?trace:Protocol.trace_context ->
  t ->
  Protocol.request ->
  (Protocol.response * Protocol.trace_context option, error) result
(** Like {!request} but also yields the server's echoed trace context
    (carrying the adopted — possibly re-minted — request id). *)

val downgraded : t -> bool
(** Whether this connection fell back to version 1 after an
    [Unsupported_version] answer to a traced request. *)

val with_connection : ?timeout:float -> Protocol.addr -> (t -> 'a) -> 'a
(** [with_connection addr f] connects, runs [f], and always closes. *)

val http_get :
  ?timeout:float -> Protocol.addr -> string -> (string, error) result
(** One [GET path] against the server's plain-HTTP side ([/metrics],
    [/status], [/health]), returning the response body of a 200 and
    [Error (Transport _)] with the status for anything else.  Opens its
    own short-lived connection.  Never raises on I/O failure. *)
