type t = { fd : Unix.file_descr; mutable downgraded : bool }

type error =
  | Timeout of float
  | Closed
  | Transport of string

let error_to_string = function
  | Timeout s -> Printf.sprintf "receive timeout after %gs" s
  | Closed -> "server closed the connection"
  | Transport msg -> msg

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let connect ?timeout addr =
  let domain, sockaddr =
    match addr with
    | Protocol.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Protocol.Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (* A server dropping the connection mid-request must surface as
     EPIPE, not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try
     (* A wedged or half-open server fails the read with EAGAIN after
        [timeout] seconds instead of hanging the client forever. *)
     (match timeout with
     | Some s when s > 0. -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
     | Some _ | None -> ());
     Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; downgraded = false }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let timeout_of t =
  match Unix.getsockopt_float t.fd Unix.SO_RCVTIMEO with
  | s when s > 0. -> s
  | _ -> 0.
  | exception Unix.Unix_error _ -> 0.

let roundtrip t ?trace req =
  match
    Protocol.write_frame t.fd (Protocol.encode_request ?trace req);
    Protocol.read_frame t.fd
  with
  | Result.Ok (Some payload) -> (
      match Protocol.decode_response payload with
      | Result.Ok (resp, rtrace) -> Result.Ok (resp, rtrace)
      | Result.Error e ->
          Result.Error (Transport (Protocol.decode_error_to_string e)))
  | Result.Ok None -> Result.Error Closed
  | Result.Error reason -> Result.Error (Transport reason)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Result.Error (Timeout (timeout_of t))
  | exception Unix.Unix_error (err, _, _) ->
      Result.Error (Transport (Unix.error_message err))

let request_traced ?trace t req =
  let trace = if t.downgraded then None else trace in
  match roundtrip t ?trace req with
  | Result.Ok (Protocol.Error { code = Protocol.Unsupported_version; _ }, _)
    when trace <> None ->
      (* An old server refused the trace-carrying envelope; fall back
         to version-1 bytes for the rest of this connection.  Requests
         lose their ids, not their answers. *)
      t.downgraded <- true;
      roundtrip t req
  | r -> r

let downgraded t = t.downgraded

let request ?trace t req =
  Result.map fst (request_traced ?trace t req)

let with_connection ?timeout addr f =
  let t = connect ?timeout addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* ---- plain HTTP ----------------------------------------------------- *)

(* Enough HTTP/1.1 to poll the server's own observability endpoints
   (/metrics, /status, /health) without a curl dependency: one GET with
   Connection: close, read to EOF, split head from body. *)
let http_get ?timeout addr path =
  match
    with_connection ?timeout addr (fun t ->
        let req =
          Printf.sprintf "GET %s HTTP/1.1\r\nHost: loclab\r\nConnection: close\r\n\r\n"
            path
        in
        let rec send pos len =
          if len > 0 then begin
            let n =
              try Unix.write_substring t.fd req pos len
              with Unix.Unix_error (Unix.EINTR, _, _) -> 0
            in
            send (pos + n) (len - n)
          end
        in
        send 0 (String.length req);
        let buf = Buffer.create 1024 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read t.fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Result.Error
        (Timeout (match timeout with Some s when s > 0. -> s | _ -> 0.))
  | exception Unix.Unix_error (err, _, _) ->
      Result.Error (Transport (Unix.error_message err))
  | raw -> (
      match String.index_opt raw ' ' with
      | None -> Result.Error (Transport "malformed HTTP response")
      | Some sp -> (
          let status =
            let stop =
              match String.index_from_opt raw (sp + 1) ' ' with
              | Some j -> j
              | None -> String.length raw
            in
            String.sub raw (sp + 1) (stop - sp - 1)
          in
          let rec find_body i =
            if i + 3 >= String.length raw then None
            else if
              raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
              && raw.[i + 3] = '\n'
            then Some (i + 4)
            else find_body (i + 1)
          in
          match find_body 0 with
          | None -> Result.Error (Transport "HTTP response has no body")
          | Some body_at ->
              let body =
                String.sub raw body_at (String.length raw - body_at)
              in
              if status = "200" then Result.Ok body
              else
                Result.Error
                  (Transport (Printf.sprintf "HTTP %s: %s" status
                                (String.trim body)))))
