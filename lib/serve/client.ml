type t = { fd : Unix.file_descr }

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))

let connect addr =
  let domain, sockaddr =
    match addr with
    | Protocol.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Protocol.Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (* A server dropping the connection mid-request must surface as
     EPIPE, not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t req =
  match
    Protocol.write_frame t.fd (Protocol.encode_request req);
    Protocol.read_frame t.fd
  with
  | Result.Ok (Some payload) -> (
      match Protocol.decode_response payload with
      | Result.Ok resp -> Result.Ok resp
      | Result.Error e -> Result.Error (Protocol.decode_error_to_string e))
  | Result.Ok None -> Result.Error "server closed the connection"
  | Result.Error reason -> Result.Error reason
  | exception Unix.Unix_error (err, _, _) ->
      Result.Error (Unix.error_message err)

let with_connection addr f =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
