type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  (* Shortest decimal form that round-trips; counts and scales print as
     humans wrote them ("0.25"), not as 17-digit expansions. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
      if Float.is_finite v then Buffer.add_string b (float_repr v)
      else Buffer.add_string b "null"
  | String s -> add_escaped b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  add b j;
  Buffer.contents b

let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let csv_row fields = String.concat "," (List.map csv_field fields)
