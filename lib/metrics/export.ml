type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  (* Shortest decimal form that round-trips; counts and scales print as
     humans wrote them ("0.25"), not as 17-digit expansions. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
      if Float.is_finite v then Buffer.add_string b (float_repr v)
      else Buffer.add_string b "null"
  | String s -> add_escaped b s
  | List l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  add b j;
  Buffer.contents b

(* ---- parsing -------------------------------------------------------- *)

(* A single-purpose recursive-descent parser, the inverse of [to_string]
   (plus insignificant whitespace): enough JSON to read back what this
   module — and anything shaped like it — writes.  Numbers with a '.',
   exponent or too many digits for an OCaml int parse as [Float];
   everything else integral parses as [Int].  No external dependency,
   matching the encoder's charter. *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %C, found %C" c got)
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "bad literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> fail "bad \\u escape"
  in
  (* Encode a code point as UTF-8; surrogate pairs are combined by the
     caller. *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'u' ->
                  let cp = hex4 () in
                  let cp =
                    if cp >= 0xD800 && cp <= 0xDBFF && !pos + 1 < n
                       && s.[!pos] = '\\'
                       && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let lo = hex4 () in
                      if lo >= 0xDC00 && lo <= 0xDFFF then
                        0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                      else fail "bad surrogate pair"
                    end
                    else cp
                  in
                  add_utf8 b cp
              | c -> fail (Printf.sprintf "bad escape \\%C" c));
              go ())
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
          advance ();
          go ()
      | Some ('.' | 'e' | 'E') ->
          is_float := true;
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integral but out of int range: fall back to float. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (string_body ())
    | Some ('-' | '0' .. '9') -> number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ value () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items := value () :: !items;
                more ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' in array"
          in
          more ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          let rec more () =
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields := field () :: !fields;
                more ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' in object"
          in
          more ();
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Result.Ok v
  | exception Parse msg -> Result.Error msg

(* ---- member helpers -------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None

let csv_field s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let csv_row fields = String.concat "," (List.map csv_field fields)
