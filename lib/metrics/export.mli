(** Machine-readable export: minimal JSON values and CSV rows.

    The repo takes no serialization dependency; this is the small
    shared core behind the artifact exporters (JSON-lines and CSV) and
    any future machine-readable reporting.  JSON output is compact
    (single line per value), so writing one {!to_string} per artifact
    yields valid JSON-lines. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats serialize as [null]. *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact JSON on a single line, keys in the given order. *)

val csv_field : string -> string
(** RFC-4180 quoting: fields containing commas, quotes or newlines are
    double-quoted with inner quotes doubled; other fields pass through. *)

val csv_row : string list -> string
(** Comma-joined {!csv_field}s, without a trailing newline. *)
