(** Machine-readable export: minimal JSON values and CSV rows.

    The repo takes no serialization dependency; this is the small
    shared core behind the artifact exporters (JSON-lines and CSV) and
    any future machine-readable reporting.  JSON output is compact
    (single line per value), so writing one {!to_string} per artifact
    yields valid JSON-lines. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** Non-finite floats serialize as [null]. *)
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact JSON on a single line, keys in the given order. *)

val of_string : string -> (json, string) result
(** Parse one JSON value (the inverse of {!to_string}, plus
    insignificant whitespace).  Numbers containing ['.'] or an exponent
    parse as [Float]; other numbers as [Int] (falling back to [Float]
    beyond int range).  [\u] escapes decode to UTF-8, surrogate pairs
    combined.  Trailing non-whitespace is an error.  Never raises. *)

(** {2 Navigation}

    Small total accessors for picking values out of parsed JSON
    ([None] on shape mismatch, never an exception). *)

val member : string -> json -> json option
(** Field lookup; [None] when absent or the value is not an [Obj]. *)

val to_float_opt : json -> float option
(** [Float] or [Int] (widened). *)

val to_int_opt : json -> int option
(** [Int], or an integral [Float]. *)

val to_string_opt : json -> string option
val to_list_opt : json -> json list option

val csv_field : string -> string
(** RFC-4180 quoting: fields containing commas, quotes or newlines are
    double-quoted with inner quotes doubled; other fields pass through. *)

val csv_row : string list -> string
(** Comma-joined {!csv_field}s, without a trailing newline. *)
