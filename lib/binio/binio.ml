exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* CRC-32 (IEEE 802.3), table-driven; the stdlib has no checksum and we
   take no new dependencies, so the table is computed once at load. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

module Writer = struct
  type t = Buffer.t

  let create () = Buffer.create 1024
  let contents = Buffer.contents
  let int t v = Buffer.add_int64_le t (Int64.of_int v)
  let float t v = Buffer.add_int64_le t (Int64.bits_of_float v)
  let bool t v = Buffer.add_char t (if v then '\001' else '\000')

  let string t s =
    int t (String.length s);
    Buffer.add_string t s

  let int_array t a =
    int t (Array.length a);
    Array.iter (int t) a

  let list t f l =
    int t (List.length l);
    List.iter f l
end

module Frame = struct
  (* One self-checking envelope shared by every on-disk and on-wire
     consumer: the store's cell files and the serve protocol both frame
     payloads this way, differing only in their magic. *)

  let overhead ~magic = String.length magic + 16

  let frame ~magic payload =
    let b = Buffer.create (String.length payload + overhead ~magic) in
    Buffer.add_string b magic;
    Buffer.add_int64_le b (Int64.of_int (String.length payload));
    Buffer.add_string b payload;
    Buffer.add_int64_le b (Int64.of_int (crc32 payload));
    Buffer.contents b

  let unframe ~magic data =
    let mlen = String.length magic in
    let total = String.length data in
    if total < mlen + 16 then Result.Error "truncated frame"
    else if String.sub data 0 mlen <> magic then
      Result.Error "bad magic (not a loclab artifact, or an incompatible frame)"
    else
      let len = Int64.to_int (String.get_int64_le data mlen) in
      if len < 0 || total <> mlen + 8 + len + 8 then
        Result.Error
          (Printf.sprintf "bad frame length %d for a %d-byte file" len total)
      else
        let payload = String.sub data (mlen + 8) len in
        let crc = Int64.to_int (String.get_int64_le data (mlen + 8 + len)) in
        let actual = crc32 payload in
        if crc <> actual then
          Result.Error
            (Printf.sprintf "CRC mismatch (stored %#x, computed %#x)" crc
               actual)
        else Result.Ok payload
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let need t n =
    if n < 0 || t.pos + n > String.length t.data then
      fail "truncated payload: need %d bytes at offset %d of %d" n t.pos
        (String.length t.data)

  let int t =
    need t 8;
    let v = Int64.to_int (String.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let float t =
    need t 8;
    let v = Int64.float_of_bits (String.get_int64_le t.data t.pos) in
    t.pos <- t.pos + 8;
    v

  let bool t =
    need t 1;
    let c = t.data.[t.pos] in
    t.pos <- t.pos + 1;
    match c with
    | '\000' -> false
    | '\001' -> true
    | c -> fail "bad bool byte %#x at offset %d" (Char.code c) (t.pos - 1)

  let string t =
    let n = int t in
    need t n;
    let s = String.sub t.data t.pos n in
    t.pos <- t.pos + n;
    s

  let length_prefix t what =
    let n = int t in
    (* Each element takes at least one byte, so a length beyond the
       remaining bytes is corruption — reject it before allocating. *)
    if n < 0 || n > String.length t.data - t.pos then
      fail "bad %s length %d at offset %d" what n (t.pos - 8);
    n

  let int_array t =
    let n = length_prefix t "array" in
    Array.init n (fun _ -> int t)

  let list t f =
    let n = length_prefix t "list" in
    List.init n (fun _ -> f t)

  let at_end t = t.pos = String.length t.data
end
