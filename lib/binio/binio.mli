(** Compact self-describing binary codec primitives.

    Writers append length-prefixed fields to a growing buffer; readers
    consume them in the same order.  Every field is fixed-width
    little-endian or length-prefixed, so a truncated or reordered
    payload is detected as soon as a read runs past the end (never a
    segfault, never a silent partial value).  The CRC-32 here guards
    whole payloads: frame writers append [crc32 payload] and verify it
    before handing the payload to typed decoders. *)

exception Error of string
(** Raised by readers on truncation or malformed data.  Frame and
    artifact decoders catch it and turn it into a reported corruption,
    so it never escapes to renderers. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, the zlib polynomial) of the whole string, in
    [0, 0xFFFFFFFF]. *)

(** The self-checking payload envelope shared by the store's cell files
    and the serve wire protocol: [magic | length (8 LE) | payload |
    crc32(payload) (8 LE)].  Consumers differ only in their magic. *)
module Frame : sig
  val overhead : magic:string -> int
  (** Bytes a frame adds around its payload. *)

  val frame : magic:string -> string -> string

  val unframe : magic:string -> string -> (string, string) result
  (** [Error reason] on a short buffer, foreign magic, inconsistent
      length or CRC mismatch; never raises. *)
end

(** Append-only binary writer. *)
module Writer : sig
  type t

  val create : unit -> t
  val contents : t -> string

  val int : t -> int -> unit
  (** Full OCaml int (63-bit), as 8 little-endian bytes (sign
      extended). *)

  val float : t -> float -> unit
  (** IEEE-754 bits, 8 bytes; NaNs and infinities round-trip. *)

  val bool : t -> bool -> unit

  val string : t -> string -> unit
  (** Length-prefixed bytes. *)

  val int_array : t -> int array -> unit

  val list : t -> ('a -> unit) -> 'a list -> unit
  (** Length prefix, then each element via the callback. *)
end

(** Sequential reader over a string written by {!Writer}. *)
module Reader : sig
  type t

  val of_string : string -> t

  val int : t -> int
  val float : t -> float
  val bool : t -> bool
  val string : t -> string
  val int_array : t -> int array
  val list : t -> (t -> 'a) -> 'a list

  val at_end : t -> bool
  (** True when every byte has been consumed; typed decoders check it
      to reject payloads with trailing garbage. *)
end
