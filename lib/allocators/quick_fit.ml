open Memsim

let max_small = 32
let list_index n = (n + 3) / 4 (* 1..8 for 1..32 bytes *)
let num_lists = 8

(* Small block layout: [tag word][payload (rounded size)]; the free link
   lives in the first payload word.  Tag encoding: rounded payload size
   shifted left 2, low bit 1 = small, low bits 10 = large (G++-owned). *)
let small_tag size = (size lsl 2) lor 1
let large_tag = 2
let tag_is_small v = v land 1 = 1
let tag_size v = v lsr 2

type t = {
  heap : Heap.t;
  heads : Addr.t array;  (* static words; index 1..8 used *)
  tail_ptr : Addr.t;  (* static: next carve position *)
  tail_end : Addr.t;  (* static: end of current carve chunk *)
  general : Gnu_gpp.t;
  search_h : Telemetry.Metrics.Histogram.h;
  hit_c : Telemetry.Metrics.Counter.h;
  carve_c : Telemetry.Metrics.Counter.h;
  large_c : Telemetry.Metrics.Counter.h;
}

let carve_chunk = 4096

let create heap =
  let heads =
    Array.init (num_lists + 1) (fun _ ->
        let a = Heap.alloc_static heap 4 in
        Heap.poke heap a 0;
        a)
  in
  let tail_ptr = Heap.alloc_static heap 4 in
  let tail_end = Heap.alloc_static heap 4 in
  Heap.poke heap tail_ptr 0;
  Heap.poke heap tail_end 0;
  { heap; heads; tail_ptr; tail_end;
    general = Gnu_gpp.create ~owner:"quickfit" heap;
    search_h = Alloc_metrics.search_length ~allocator:"quickfit";
    hit_c = Alloc_metrics.sizeclass ~allocator:"quickfit" ~outcome:"hit";
    carve_c = Alloc_metrics.sizeclass ~allocator:"quickfit" ~outcome:"carve";
    large_c = Alloc_metrics.sizeclass ~allocator:"quickfit" ~outcome:"large";
  }

(* Carve a fresh small block of gross size [g] from working storage. *)
let carve t g =
  let pos = Heap.load t.heap t.tail_ptr in
  let lim = Heap.load t.heap t.tail_end in
  let pos, lim =
    if pos = 0 || lim - pos < g then begin
      (* Working storage exhausted: leftover, if any, is abandoned
         (a few words at most). *)
      let base = Heap.sbrk t.heap carve_chunk in
      Heap.store t.heap t.tail_end (base + carve_chunk);
      (base, base + carve_chunk)
    end
    else (pos, lim)
  in
  ignore lim;
  Heap.store t.heap t.tail_ptr (pos + g);
  pos

let malloc t n =
  Heap.charge t.heap 3 (* size test + rounding *);
  if n <= max_small then begin
    let i = list_index n in
    let rounded = i * 4 in
    let cell = t.heads.(i) in
    let head = Heap.load t.heap cell in
    if head <> 0 then begin
      Telemetry.Metrics.Counter.inc t.hit_c;
      Telemetry.Metrics.Histogram.observe t.search_h 1;
      (* Pop: the tag is still in place from the block's last life. *)
      let next = Heap.load t.heap (head + 4) in
      Heap.store t.heap cell next;
      head + 4
    end
    else begin
      Telemetry.Metrics.Counter.inc t.carve_c;
      Telemetry.Metrics.Histogram.observe t.search_h 1;
      let block = carve t (rounded + 4) in
      Heap.store t.heap block (small_tag rounded);
      block + 4
    end
  end
  else begin
    Telemetry.Metrics.Counter.inc t.large_c;
    (* Delegate, reserving one word for our ownership tag.  The general
       allocator's fit search records its own walk length. *)
    let p = Gnu_gpp.raw_malloc t.general (n + 4) in
    Heap.store t.heap p large_tag;
    p + 4
  end

let free t a =
  let tag = Heap.load t.heap (a - 4) in
  if tag_is_small tag then begin
    let i = list_index (tag_size tag) in
    if i < 1 || i > num_lists then
      failwith (Printf.sprintf "Quick_fit.free: bad small tag at 0x%x" a);
    let cell = t.heads.(i) in
    let head = Heap.load t.heap cell in
    Heap.store t.heap a head;
    Heap.store t.heap cell (a - 4)
  end
  else if tag = large_tag then Gnu_gpp.raw_free t.general (a - 4)
  else failwith (Printf.sprintf "Quick_fit.free: corrupt tag at 0x%x" a)

let granted n =
  if n <= max_small then (list_index n * 4) + 4
  else Gnu_gpp.gross_of_request (n + 4)

let free_count t i =
  let rec walk block acc =
    if block = 0 then acc else walk (Heap.peek t.heap (block + 4)) (acc + 1)
  in
  walk (Heap.peek t.heap t.heads.(i)) 0

let check_invariants t =
  Gnu_gpp.raw_check t.general;
  let region = Heap.heap_region t.heap in
  for i = 1 to num_lists do
    let seen = Hashtbl.create 64 in
    let rec walk block =
      if block <> 0 then begin
        if Hashtbl.mem seen block then
          failwith (Printf.sprintf "Quick_fit: cycle in list %d" i);
        Hashtbl.replace seen block ();
        if not (Region.contains region block) then
          failwith
            (Printf.sprintf "Quick_fit: free block 0x%x outside heap" block);
        let tag = Heap.peek t.heap block in
        if not (tag_is_small tag) || list_index (tag_size tag) <> i then
          failwith
            (Printf.sprintf "Quick_fit: block 0x%x has wrong tag for list %d"
               block i);
        walk (Heap.peek t.heap (block + 4))
      end
    in
    walk (Heap.peek t.heap t.heads.(i))
  done

let allocator t =
  Allocator.make ~name:"quickfit" ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> malloc t n);
      impl_free = (fun a -> free t a);
      granted_bytes = granted;
      check_invariants = (fun () -> check_invariants t);
      impl_malloc_sited = None;
    }
