open Memsim

type t = {
  mem : Sim_memory.t;
  cost : Cost.t;
  heap_region : Region.t;
  static_region : Region.t;
}

let sbrk_instructions = 40

let create ?(sink = Sink.null) ?(heap_bytes = 64 * 1024 * 1024)
    ?(static_bytes = 4 * 1024 * 1024) () =
  let layout = Region.Layout.create () in
  let static_region = Region.Layout.add layout ~name:"static" ~size:static_bytes in
  let heap_region = Region.Layout.add layout ~name:"heap" ~size:heap_bytes in
  let mem = Sim_memory.create ~sink () in
  { mem; cost = Cost.create (); heap_region; static_region }

let mem t = t.mem
let cost t = t.cost
let heap_region t = t.heap_region
let static_region t = t.static_region
let set_sink t sink = Sim_memory.set_sink t.mem sink
let flush_trace t = Sim_memory.flush t.mem

let with_phase t phase f =
  let saved = Cost.phase t.cost in
  Cost.set_phase t.cost phase;
  Sim_memory.set_source t.mem (Cost.source_of_phase phase);
  Fun.protect
    ~finally:(fun () ->
      Cost.set_phase t.cost saved;
      Sim_memory.set_source t.mem (Cost.source_of_phase saved))
    f

let load t a =
  Cost.charge t.cost 1;
  Sim_memory.load t.mem a

let store t a v =
  Cost.charge t.cost 1;
  Sim_memory.store t.mem a v

let charge t n = Cost.charge t.cost n

let sbrk t n =
  Cost.charge t.cost sbrk_instructions;
  Region.extend t.heap_region n

let alloc_static t n = Region.extend t.static_region n
let heap_used t = Region.used_bytes t.heap_region
let peek t a = Sim_memory.peek t.mem a
let poke t a v = Sim_memory.poke t.mem a v
