(* Allocator-internal telemetry families, recorded to the default
   registry.  These measure the mechanism behind the paper's Table 2/4
   numbers: sequential-fit allocators walk free lists whose length this
   histogram captures, while size-class allocators (QuickFit, BSD)
   satisfy requests in constant time — rapid re-use is itself the
   locality optimisation.  Observations are plain OCaml counting: no
   trace events, no instruction charges, so enabling them never
   perturbs simulation results. *)

let search_length_family =
  Telemetry.Metrics.Histogram.family ~name:"loclab_alloc_search_length"
    ~help:
      "Free blocks examined to satisfy one malloc (freelist nodes visited \
       by sequential fits; 1 for a constant-time size-class hit)"
    ~labels:[ "allocator" ] ()

let sizeclass_family =
  Telemetry.Metrics.Counter.family ~name:"loclab_alloc_sizeclass_total"
    ~help:
      "Size-class allocation outcomes (hit: popped a recycled block; \
       carve/morecore: took fresh storage; large: delegated to the \
       general allocator)"
    ~labels:[ "allocator"; "outcome" ] ()

let search_length ~allocator =
  Telemetry.Metrics.Histogram.labels search_length_family [ allocator ]

let sizeclass ~allocator ~outcome =
  Telemetry.Metrics.Counter.labels sizeclass_family [ allocator; outcome ]
