open Memsim

(* Block layout: [header word: class k][payload 2^k - 4 bytes].
   Free blocks store the next-link in their first payload word. *)

let min_class = 3 (* 8-byte blocks: 4 payload *)
let max_class = 26
let page_bytes = 4096

let class_of_request n =
  assert (n >= 1);
  let needed = n + 4 in
  let rec find k = if 1 lsl k >= needed then k else find (k + 1) in
  find min_class

type t = {
  heap : Heap.t;
  (* heads.(k - min_class): static word holding the class freelist head
     (0 = empty). *)
  heads : Addr.t array;
  search_h : Telemetry.Metrics.Histogram.h;
  hit_c : Telemetry.Metrics.Counter.h;
  morecore_c : Telemetry.Metrics.Counter.h;
}

let create heap =
  let heads =
    Array.init (max_class - min_class + 1) (fun _ ->
        let a = Heap.alloc_static heap 4 in
        Heap.poke heap a 0;
        a)
  in
  { heap; heads;
    search_h = Alloc_metrics.search_length ~allocator:"bsd";
    hit_c = Alloc_metrics.sizeclass ~allocator:"bsd" ~outcome:"hit";
    morecore_c = Alloc_metrics.sizeclass ~allocator:"bsd" ~outcome:"morecore";
  }

let head_cell t k = t.heads.(k - min_class)

(* Carve fresh storage into 2^k blocks and push each onto the class
   list, as Kingsley's morecore does. *)
let morecore t k =
  let bsize = 1 lsl k in
  let chunk = max bsize page_bytes in
  let base = Heap.sbrk t.heap chunk in
  let cell = head_cell t k in
  let count = chunk / bsize in
  let head = ref (Heap.load t.heap cell) in
  (* Linked back-to-front so blocks pop in ascending address order. *)
  for i = count - 1 downto 0 do
    Heap.charge t.heap 2;
    let block = base + (i * bsize) in
    (* next-link lives in the first payload word *)
    Heap.store t.heap (block + 4) !head;
    head := block
  done;
  Heap.store t.heap cell !head

let malloc t n =
  Heap.charge t.heap 4 (* class computation: shift loop *);
  let k = class_of_request n in
  let cell = head_cell t k in
  let block = Heap.load t.heap cell in
  let block =
    if block <> 0 then begin
      Telemetry.Metrics.Counter.inc t.hit_c;
      block
    end
    else begin
      Telemetry.Metrics.Counter.inc t.morecore_c;
      morecore t k;
      Heap.load t.heap cell
    end
  in
  Telemetry.Metrics.Histogram.observe t.search_h 1;
  let next = Heap.load t.heap (block + 4) in
  Heap.store t.heap cell next;
  Heap.store t.heap block k (* header: remember the class *);
  block + 4

let free t p =
  let block = p - 4 in
  let k = Heap.load t.heap block in
  if k < min_class || k > max_class then
    failwith (Printf.sprintf "Bsd.free: bad class %d at 0x%x" k block);
  let cell = head_cell t k in
  let head = Heap.load t.heap cell in
  Heap.store t.heap (block + 4) head;
  Heap.store t.heap cell block

let free_count t k =
  let rec walk block acc =
    if block = 0 then acc else walk (Heap.peek t.heap (block + 4)) (acc + 1)
  in
  walk (Heap.peek t.heap (head_cell t k)) 0

let check_invariants t =
  (* Freelist blocks must be inside the heap, word-aligned, and each
     class list acyclic. *)
  let region = Heap.heap_region t.heap in
  for k = min_class to max_class do
    let seen = Hashtbl.create 16 in
    let rec walk block =
      if block <> 0 then begin
        if Hashtbl.mem seen block then
          failwith (Printf.sprintf "Bsd: cycle in class %d freelist" k);
        Hashtbl.replace seen block ();
        if not (Region.contains region block) then
          failwith (Printf.sprintf "Bsd: free block 0x%x outside heap" block);
        if not (Addr.word_aligned block) then
          failwith (Printf.sprintf "Bsd: unaligned free block 0x%x" block);
        walk (Heap.peek t.heap (block + 4))
      end
    in
    walk (Heap.peek t.heap (head_cell t k))
  done

let allocator t =
  Allocator.make ~name:"bsd" ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> malloc t n);
      impl_free = (fun a -> free t a);
      granted_bytes = (fun n -> 1 lsl class_of_request n);
      check_invariants = (fun () -> check_invariants t);
      impl_malloc_sited = None;
    }
