open Memsim

type t = {
  heap : Heap.t;
  fl : Freelist.t;
  rover_cell : Addr.t;  (* static word holding a freelist node address *)
  mutable core : Seq_fit.t option;
  mutable search_h : Telemetry.Metrics.Histogram.h;
}

let node_of_block b = b + 4
let block_of_node n = n - 4

let core t = Option.get t.core

(* Next-fit search: start at the rover, wrap once around the circular
   list (skipping the sentinel), reading each candidate's header. *)
let find_fit t (_ : Seq_fit.t) ~gross =
  let head = Freelist.head t.fl in
  let start = Heap.load t.heap t.rover_cell in
  let start = if start = head then Freelist.next t.fl head else start in
  if start = head then begin
    Telemetry.Metrics.Histogram.observe t.search_h 0;
    None (* empty list *)
  end
  else begin
    let examined = ref 0 in
    let rec go node =
      Heap.charge t.heap 2 (* loop bookkeeping *);
      incr examined;
      let block = block_of_node node in
      let size, _ = Boundary_tag.read_header t.heap ~block in
      if size >= gross then Some block
      else begin
        let succ = Freelist.next t.fl node in
        let succ = if succ = head then Freelist.next t.fl succ else succ in
        if succ = start then None else go succ
      end
    in
    let r = go start in
    Telemetry.Metrics.Histogram.observe t.search_h !examined;
    r
  end

let insert_free t (_ : Seq_fit.t) ~block ~size:_ =
  Freelist.insert_front t.fl (node_of_block block)

let remove_free t (_ : Seq_fit.t) ~block ~size:_ =
  let node = node_of_block block in
  (* The real implementation guards its rover the same way. *)
  if Heap.load t.heap t.rover_cell = node then
    Heap.store t.heap t.rover_cell (Freelist.next t.fl node);
  Freelist.remove t.fl node

let resize_free _t (_ : Seq_fit.t) ~block:_ ~old_size:_ ~new_size:_ =
  (* Single list: an in-place resize keeps the node linked. *)
  ()

let note_alloc_from t (_ : Seq_fit.t) ~block =
  (* Advance the rover past the block being allocated from, so the next
     search continues around the ring. *)
  Heap.store t.heap t.rover_cell (Freelist.next t.fl (node_of_block block))

let check_policy t (_ : Seq_fit.t) ~free_blocks =
  let in_list =
    Freelist.to_list t.fl |> List.map block_of_node
    |> List.sort compare
  in
  let in_heap = List.map fst free_blocks |> List.sort compare in
  if in_list <> in_heap then
    failwith "First_fit: freelist does not match heap free blocks";
  let r = Heap.peek t.heap t.rover_cell in
  if r <> Freelist.head t.fl && not (List.mem (block_of_node r) in_heap) then
    failwith "First_fit: rover points to a dead block"

let create ?extend_chunk ?split_threshold ?coalesce heap =
  let fl = Freelist.create heap in
  let rover_cell = Heap.alloc_static heap 4 in
  Heap.poke heap rover_cell (Freelist.head fl);
  let t =
    { heap; fl; rover_cell; core = None;
      search_h = Alloc_metrics.search_length ~allocator:"firstfit" }
  in
  let policy =
    { Seq_fit.find_fit = (fun core ~gross -> find_fit t core ~gross);
      insert_free = (fun core ~block ~size -> insert_free t core ~block ~size);
      remove_free = (fun core ~block ~size -> remove_free t core ~block ~size);
      resize_free =
        (fun core ~block ~old_size ~new_size ->
          resize_free t core ~block ~old_size ~new_size);
      note_alloc_from = (fun core ~block -> note_alloc_from t core ~block);
      check_policy =
        (fun core ~free_blocks -> check_policy t core ~free_blocks);
    }
  in
  t.core <-
    Some (Seq_fit.create heap ?extend_chunk ?split_threshold ?coalesce policy);
  t

let allocator ?(name = "firstfit") t =
  if name <> "firstfit" then
    t.search_h <- Alloc_metrics.search_length ~allocator:name;
  Allocator.make ~name ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> Seq_fit.malloc (core t) n);
      impl_free = (fun a -> Seq_fit.free (core t) a);
      granted_bytes = Seq_fit.gross_of_request;
      check_invariants = (fun () -> Seq_fit.check_invariants (core t));
      impl_malloc_sited = None;
    }

let rover t = Heap.peek t.heap t.rover_cell
let free_list_length t = Freelist.length t.fl
