(* Gross sizes are at least 16, so bins below 4 are never used; 64 MB
   heaps never produce blocks at or above 2^27. *)
let min_bin = 4
let max_bin = 27

let bin_of_size size =
  assert (size >= Boundary_tag.min_block);
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  let b = log2 size 0 in
  min b max_bin

type t = {
  heap : Heap.t;
  bins : Freelist.t array;  (* index 0 = bin min_bin *)
  mutable core : Seq_fit.t option;
  search_h : Telemetry.Metrics.Histogram.h;
}

let node_of_block b = b + 4
let block_of_node n = n - 4
let core t = Option.get t.core
let bin t i = t.bins.(i - min_bin)

(* Computing the bin (a log2 loop in the real code). *)
let charge_binning t = Heap.charge t.heap 4

let find_fit t (_ : Seq_fit.t) ~gross =
  charge_binning t;
  let i0 = bin_of_size gross in
  let examined = ref 0 in
  (* First-fit scan within the request's own bin. *)
  let rec scan fl node =
    if node = Freelist.head fl then None
    else begin
      Heap.charge t.heap 2;
      incr examined;
      let block = block_of_node node in
      let size, _ = Boundary_tag.read_header t.heap ~block in
      if size >= gross then Some block else scan fl (Freelist.next fl node)
    end
  in
  let own =
    let fl = bin t i0 in
    match Freelist.first fl with
    | None -> None
    | Some node -> scan fl node
  in
  let found =
    match own with
    | Some _ as found -> found
    | None ->
        (* Any block in a larger bin fits; take the first one found. *)
        let rec bigger i =
          if i > max_bin then None
          else begin
            Heap.charge t.heap 1;
            match Freelist.first (bin t i) with
            | Some node ->
                incr examined;
                Some (block_of_node node)
            | None -> bigger (i + 1)
          end
        in
        bigger (i0 + 1)
  in
  Telemetry.Metrics.Histogram.observe t.search_h !examined;
  found

let insert_free t (_ : Seq_fit.t) ~block ~size =
  charge_binning t;
  Freelist.insert_front (bin t (bin_of_size size)) (node_of_block block)

let remove_free t (_ : Seq_fit.t) ~block ~size =
  Freelist.remove (bin t (bin_of_size size)) (node_of_block block)

let resize_free t (_ : Seq_fit.t) ~block ~old_size ~new_size =
  (* A resized block may belong to a different bin. *)
  let ob = bin_of_size old_size and nb = bin_of_size new_size in
  if ob <> nb then begin
    charge_binning t;
    Freelist.remove (bin t ob) (node_of_block block);
    Freelist.insert_front (bin t nb) (node_of_block block)
  end

let note_alloc_from _t (_ : Seq_fit.t) ~block:_ = ()

let check_policy t (_ : Seq_fit.t) ~free_blocks =
  (* Every free block must sit in exactly its size's bin. *)
  let by_bin = Hashtbl.create 16 in
  List.iter
    (fun (block, size) ->
      let b = bin_of_size size in
      Hashtbl.replace by_bin b
        (block :: (Option.value ~default:[] (Hashtbl.find_opt by_bin b))))
    free_blocks;
  for i = min_bin to max_bin do
    let expected =
      Option.value ~default:[] (Hashtbl.find_opt by_bin i)
      |> List.sort compare
    in
    let actual =
      Freelist.to_list (bin t i) |> List.map block_of_node |> List.sort compare
    in
    if expected <> actual then
      failwith (Printf.sprintf "Gnu_gpp: bin %d does not match heap" i)
  done

let create ?extend_chunk ?split_threshold ?(owner = "gnu-g++") heap =
  let bins =
    Array.init (max_bin - min_bin + 1) (fun _ -> Freelist.create heap)
  in
  let t =
    { heap; bins; core = None;
      search_h = Alloc_metrics.search_length ~allocator:owner }
  in
  let policy =
    { Seq_fit.find_fit = (fun core ~gross -> find_fit t core ~gross);
      insert_free = (fun core ~block ~size -> insert_free t core ~block ~size);
      remove_free = (fun core ~block ~size -> remove_free t core ~block ~size);
      resize_free =
        (fun core ~block ~old_size ~new_size ->
          resize_free t core ~block ~old_size ~new_size);
      note_alloc_from = (fun core ~block -> note_alloc_from t core ~block);
      check_policy =
        (fun core ~free_blocks -> check_policy t core ~free_blocks);
    }
  in
  t.core <- Some (Seq_fit.create heap ?extend_chunk ?split_threshold policy);
  t

let allocator t =
  Allocator.make ~name:"gnu-g++" ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> Seq_fit.malloc (core t) n);
      impl_free = (fun a -> Seq_fit.free (core t) a);
      granted_bytes = Seq_fit.gross_of_request;
      check_invariants = (fun () -> Seq_fit.check_invariants (core t));
      impl_malloc_sited = None;
    }

let bin_length t i = Freelist.length (bin t i)
let raw_malloc t n = Seq_fit.malloc (core t) n
let raw_free t a = Seq_fit.free (core t) a
let raw_check t = Seq_fit.check_invariants (core t)
let gross_of_request = Seq_fit.gross_of_request
