(** The simulated machine an allocator runs on.

    Bundles the traced word memory, an sbrk-extendable heap region, a
    static-data region (for freelist heads, size-class tables, chunk
    headers — the allocator's globals) and the instruction-cost
    accounting.  Every [load]/[store] emits a trace event {e and} charges
    one instruction to the active phase, so allocator metadata traffic
    is visible to the cache/page simulators exactly as in the paper. *)

type t

val create :
  ?sink:Memsim.Sink.t ->
  ?heap_bytes:int ->
  ?static_bytes:int ->
  unit ->
  t
(** [heap_bytes] (default 64 MB) bounds the sbrk region; [static_bytes]
    (default 4 MB) bounds allocator static data.  The two regions are
    disjoint, with the static region at lower addresses (like a data
    segment below the heap). *)

val mem : t -> Memsim.Sim_memory.t
val cost : t -> Cost.t
val heap_region : t -> Memsim.Region.t
val static_region : t -> Memsim.Region.t
val set_sink : t -> Memsim.Sink.t -> unit

val flush_trace : t -> unit
(** Flushes the memory's internal packed event buffer to the sink; call
    before observing sink-side state (see {!Memsim.Sim_memory.flush}). *)

(** {1 Phased execution} *)

val with_phase : t -> Cost.phase -> (unit -> 'a) -> 'a
(** Runs with both the cost phase and the trace source set, restoring
    them afterwards. *)

(** {1 Memory operations (traced and costed)} *)

val load : t -> Memsim.Addr.t -> int
(** One traced word read; charges 1 instruction. *)

val store : t -> Memsim.Addr.t -> int -> unit
(** One traced word write; charges 1 instruction. *)

val charge : t -> int -> unit
(** Register-only work: charges instructions without memory traffic. *)

val sbrk : t -> int -> Memsim.Addr.t
(** Extends the heap break, returning the base of the new storage
    (word-aligned).  Charges a fixed system-call overhead
    ({!sbrk_instructions}) but emits no data references, matching how
    trace tools treat kernel work. *)

val sbrk_instructions : int

val alloc_static : t -> int -> Memsim.Addr.t
(** Carves allocator static data (silently — static layout happens at
    program load time, not during execution). *)

val heap_used : t -> int
(** Bytes obtained from sbrk so far — the paper's "memory requested by
    the program". *)

(** {1 Silent accessors (bookkeeping and tests)} *)

val peek : t -> Memsim.Addr.t -> int
val poke : t -> Memsim.Addr.t -> int -> unit
