(** Allocator-internal telemetry: the shared metric families every
    allocator implementation records to (default registry, so they are
    no-ops unless [Telemetry.Metrics.default] is enabled).

    Handles are resolved once per allocator instance — at [create] or
    [allocator] time — and kept; never resolve on the malloc path. *)

val search_length : allocator:string -> Telemetry.Metrics.Histogram.h
(** Free blocks examined per [malloc] fit search.  Sequential fits
    (FirstFit, BestFit, G++ bins) observe their walk length; size-class
    allocators (QuickFit small path, BSD) observe 1 per constant-time
    class access — the paper's search-cost contrast in one histogram. *)

val sizeclass :
  allocator:string -> outcome:string -> Telemetry.Metrics.Counter.h
(** Size-class allocation outcomes: ["hit"] (popped a recycled block),
    ["carve"]/["morecore"] (took fresh storage), ["large"] (delegated to
    the general allocator). *)
