type t = {
  heap : Heap.t;
  fl : Freelist.t;
  mutable core : Seq_fit.t option;
  search_h : Telemetry.Metrics.Histogram.h;
}

let node_of_block b = b + 4
let block_of_node n = n - 4
let core t = Option.get t.core

(* Exhaustive scan: smallest block with size >= gross; exact fits stop
   the search early (the classic optimisation). *)
let find_fit t (_ : Seq_fit.t) ~gross =
  let head = Freelist.head t.fl in
  let examined = ref 0 in
  let rec go node best best_size =
    if node = head then best
    else begin
      Heap.charge t.heap 2;
      incr examined;
      let block = block_of_node node in
      let size, _ = Boundary_tag.read_header t.heap ~block in
      if size = gross then Some block
      else if size > gross && size < best_size then
        go (Freelist.next t.fl node) (Some block) size
      else go (Freelist.next t.fl node) best best_size
    end
  in
  let r = go (Freelist.next t.fl head) None max_int in
  Telemetry.Metrics.Histogram.observe t.search_h !examined;
  r

let check_policy t (_ : Seq_fit.t) ~free_blocks =
  let in_list =
    Freelist.to_list t.fl |> List.map block_of_node |> List.sort compare
  in
  let in_heap = List.map fst free_blocks |> List.sort compare in
  if in_list <> in_heap then
    failwith "Best_fit: freelist does not match heap free blocks"

let create ?extend_chunk ?split_threshold heap =
  let fl = Freelist.create heap in
  let t =
    { heap; fl; core = None;
      search_h = Alloc_metrics.search_length ~allocator:"bestfit" }
  in
  let policy =
    { Seq_fit.find_fit = (fun core ~gross -> find_fit t core ~gross);
      insert_free =
        (fun _ ~block ~size:_ -> Freelist.insert_front t.fl (node_of_block block));
      remove_free =
        (fun _ ~block ~size:_ -> Freelist.remove t.fl (node_of_block block));
      resize_free = (fun _ ~block:_ ~old_size:_ ~new_size:_ -> ());
      note_alloc_from = (fun _ ~block:_ -> ());
      check_policy =
        (fun core ~free_blocks -> check_policy t core ~free_blocks);
    }
  in
  t.core <- Some (Seq_fit.create heap ?extend_chunk ?split_threshold policy);
  t

let allocator t =
  Allocator.make ~name:"bestfit" ~heap:t.heap
    { Allocator.impl_malloc = (fun n -> Seq_fit.malloc (core t) n);
      impl_free = (fun a -> Seq_fit.free (core t) a);
      granted_bytes = Seq_fit.gross_of_request;
      check_invariants = (fun () -> Seq_fit.check_invariants (core t));
      impl_malloc_sited = None;
    }

let free_list_length t = Freelist.length t.fl
