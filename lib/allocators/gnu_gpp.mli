(** GNU G++ — Doug Lea's segregated first fit.

    Enhances {!First_fit} by keeping an array of doubly-linked freelists
    segregated by the logarithm of the block size: bin [i] holds free
    blocks with gross size in [\[2^i, 2^(i+1))].  Allocation scans the
    request's own bin first-fit, then takes the head of the first
    non-empty larger bin (any block there is guaranteed to fit).
    Splitting, boundary tags and coalescing are exactly as in
    {!First_fit}; only the search is narrowed, which is why the paper
    finds it "more resilient" than FIRSTFIT but still penalised by
    freelist traversal and coalescing traffic. *)

type t

val create :
  ?extend_chunk:int -> ?split_threshold:int -> ?owner:string -> Heap.t -> t
(** [owner] labels this instance's telemetry (search-length histogram);
    defaults to ["gnu-g++"].  A host embedding G++ as its general
    allocator ({!Quick_fit}) passes its own name so the host's large
    path is attributed to the host. *)

val allocator : t -> Allocator.t

val bin_of_size : int -> int
(** Bin index of a gross block size. *)

val min_bin : int
val max_bin : int

val bin_length : t -> int -> int
(** Untraced number of blocks in a bin, for tests. *)

(** {1 Raw entry points}

    Used when G++ serves as the general allocator inside a hybrid
    ({!Quick_fit}): phases and statistics are the host's business. *)

val raw_malloc : t -> int -> Memsim.Addr.t
val raw_free : t -> Memsim.Addr.t -> unit
val raw_check : t -> unit
val gross_of_request : int -> int
