(** A single simulated data cache.

    Write-allocate: both read and write misses bring the block into the
    cache.  Set-associative caches replace within each set according to
    the config's {!Policy.t} (true LRU by default); invalid ways fill
    leftmost-first and the policy is only consulted once the set is
    full.  Dirty blocks are tracked so write-backs can be counted on
    eviction. *)

type t

val create : Config.t -> t
val config : t -> Config.t
val stats : t -> Stats.t

val access_block : t -> kind:Memsim.Event.kind ->
  source:Memsim.Event.source -> block:int -> bool
(** [access_block t ~kind ~source ~block] touches one block (global block
    index, i.e. [addr / block_bytes]) and returns [true] on a miss. *)

val access : t -> Memsim.Event.t -> unit
(** Feeds one reference event, touching every block the byte range
    spans. *)

val access_packed : t -> addr:int -> meta:int -> unit
(** One reference in packed form ({!Memsim.Event.Packed}); no [Event.t]
    is materialised. *)

val access_packed_batch : t -> Memsim.Event.Batch.t -> unit
(** Feeds a whole packed batch through {!access_packed}. *)

val sink : t -> Memsim.Sink.t
(** The cache as a trace consumer; packed batches take the packed
    path. *)

val contains_block : t -> block:int -> bool
(** Whether the block is currently resident (no side effects). *)

val flush : t -> unit
(** Invalidates all blocks; statistics and cold-start tracking are kept.
    Used to model context-switch cache flushes. *)

val reset_stats : t -> unit
