type t = {
  name : string;
  size_bytes : int;
  block_bytes : int;
  associativity : int;
  policy : Policy.t;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let default_name ~size_bytes ~associativity ~policy =
  let size =
    if size_bytes >= 1 lsl 20 && size_bytes mod (1 lsl 20) = 0 then
      Printf.sprintf "%dM" (size_bytes lsr 20)
    else if size_bytes mod 1024 = 0 then Printf.sprintf "%dK" (size_bytes lsr 10)
    else Printf.sprintf "%dB" size_bytes
  in
  let base =
    if associativity = 1 then size ^ "-dm"
    else Printf.sprintf "%s-%dway" size associativity
  in
  (* LRU is the historical default; only non-default policies show up
     in derived names, keeping the paper-era labels stable. *)
  if Policy.is_lru policy then base
  else Printf.sprintf "%s-%s" base (Policy.to_string policy)

let make ?name ?(block_bytes = 32) ?(associativity = 1) ?(policy = Policy.Lru)
    size_bytes =
  if not (is_power_of_two size_bytes) then
    invalid_arg
      (Printf.sprintf "Cachesim.Config.make: size %d is not a power of two"
         size_bytes);
  if not (is_power_of_two block_bytes) then
    invalid_arg
      (Printf.sprintf
         "Cachesim.Config.make: block size %d is not a power of two"
         block_bytes);
  if size_bytes mod block_bytes <> 0 then
    invalid_arg
      (Printf.sprintf
         "Cachesim.Config.make: block size %d does not divide capacity %d"
         block_bytes size_bytes);
  let blocks = size_bytes / block_bytes in
  if
    associativity < 1
    || (not (is_power_of_two associativity))
    || blocks mod associativity <> 0
  then
    invalid_arg
      (Printf.sprintf
         "Cachesim.Config.make: associativity %d is invalid for %d blocks \
          (must be a power of two dividing the block count)"
         associativity blocks);
  let name =
    match name with
    | Some n -> n
    | None -> default_name ~size_bytes ~associativity ~policy
  in
  { name; size_bytes; block_bytes; associativity; policy }

let num_sets t = t.size_bytes / (t.block_bytes * t.associativity)
let num_blocks t = t.size_bytes / t.block_bytes

let paper_direct_mapped =
  List.map (fun k -> make (k * 1024)) [ 16; 32; 64; 128; 256 ]

let pp ppf t =
  Format.fprintf ppf "%s (%d bytes, %d-byte blocks, %d-way, %s)" t.name
    t.size_bytes t.block_bytes t.associativity
    (Policy.to_string t.policy)
