(* Domain-parallel replay of one captured trace through a forest
   family, partitioned by cache set.

   Each of [domains] workers owns a contiguous range of the family's
   smallest member's set indices (see {!Forest.create}'s [?shard]) and
   scans the FULL trace, simulating only its own blocks.  The trace
   chunks are packed int arrays shared read-only across domains; all
   mutable simulation state is per-worker, so there is no
   synchronisation on the hot path at all.  Afterwards the workers'
   counters are summed with {!Forest.absorb}; because every set of
   every member belongs to exactly one worker, the merged statistics
   are identical to a sequential replay (pinned by test). *)

let replay ?(domains = 1) ~configs trace =
  if domains < 1 then
    invalid_arg "Cachesim.Shard.replay: domains must be >= 1";
  if domains = 1 then begin
    let f = Forest.create configs in
    Memsim.Trace_buffer.iter_chunks (Forest.access_packed_batch f) trace;
    Forest.results f
  end
  else begin
    let chunks = Memsim.Trace_buffer.chunks trace in
    let worker i () =
      let f = Forest.create ~shard:(i, domains) configs in
      Array.iter (Forest.access_packed_batch f) chunks;
      f
    in
    (* Workers 1..n-1 run in spawned domains; worker 0 runs here, so
       [domains] counts this domain too. *)
    let spawned =
      Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    let f0 = worker 0 () in
    Array.iter (fun h -> Forest.absorb f0 (Domain.join h)) spawned;
    Forest.results f0
  end
