(* One-pass simulation of a family of caches that share a block size
   (Hill & Smith's forest simulation, specialised to power-of-two
   caches — the shape of the paper's TYCHO size sweep).

   Two properties of the family make a single walk per reference
   sufficient:

   Inclusion.  Every member sees the identical reference stream, and a
   direct-mapped set holds exactly the most recently referenced block
   mapping to it.  With power-of-two set counts, each set of a larger
   member partitions a set of a smaller member, so the most recent
   block of a small set is also the most recent block of its sub-set in
   every larger member: residence in a smaller cache implies residence
   in every larger one.  Probing direct-mapped members from smallest to
   largest can therefore stop at the first hit — all later members hit
   too, without being probed — and equally, every member below the
   boundary missed.

   Shared profile.  Because the streams are identical, the access-side
   statistics (total/read/write/per-source access counts) are the same
   number for every member, and a cold miss — first-ever reference to a
   block — happens in all members at once (nothing can hit a block that
   was never referenced).  One profile record and one [seen] table
   therefore replace the per-cache copies; members privately accumulate
   only what differs: misses by kind and source, and writebacks.

   Set-associative members do not order by inclusion against the
   direct-mapped chain (same capacity at different set counts is the
   classic counterexample), so they are probed individually — but they
   still share the family profile and cold table.  Their LRU state is a
   last-use stamp per way, fed by the family's access tick: the
   eviction victim (least stamp, untouched ways stamped 0 and hence
   filled first) is exactly the block an MRU-first list would drop, so
   statistics stay bit-identical to an independent {!Cache}.

   Counter layout.  The kind x source access/miss breakdown lives in
   6-cell arrays indexed [ki*3 + si] (ki: 0 read / 1 write; si: 0 app /
   1 malloc / 2 free), so classifying a block touch is a single
   read-modify-write; totals and marginals are summed when a
   {!Stats.t} snapshot is materialised. *)

type member = {
  config : Config.t;
  assoc : int;
  (* tags.((set * assoc) + way) holds the resident block; -1 = invalid. *)
  tags : int array;
  (* dirty.(i) mirrors tags.(i): written since fetched (write-back). *)
  dirty : bool array;
  (* stamps.(i) mirrors tags.(i): family tick at last touch.  Empty for
     direct-mapped members, which need no recency order. *)
  stamps : int array;
  set_mask : int;  (* num_sets - 1 *)
  miss : int array;  (* misses by [ki*3 + si] *)
  mutable writebacks : int;
  (* Where the family's last probed block resides in this member
     (absolute way index), for the consecutive-repeat fast path. *)
  mutable last_way : int;
}

type t = {
  members : member array;  (* creation order *)
  dm : member array;  (* direct-mapped, ascending number of sets *)
  sa : member array;  (* set-associative, creation order *)
  block_shift : int;
  (* Set-range sharding (see {!create}'s [?shard]): this instance owns a
     block iff [lo <= block land part_mask < hi].  [part_mask] is the
     smallest member's set mask, so every member's sets partition
     cleanly across shards: blocks of one set always land in one shard,
     which keeps per-set LRU order, evictions and cold misses identical
     to the sequential walk.  Unsharded instances own everything
     (mask = 0, range [0, 1)). *)
  part_mask : int;
  part_lo : int;
  part_hi : int;
  seen : (int, unit) Hashtbl.t;  (* blocks ever referenced, shared *)
  mutable ticks : int;  (* probed block accesses; doubles as the LRU clock *)
  acc : int array;  (* accesses by [ki*3 + si], identical for members *)
  mutable cold_misses : int;
  (* Consecutive-repeat fast path: word-grain traces touch the same
     block many times in a row, and a repeat of the immediately
     preceding block necessarily hits every member (nothing else has
     been touched since it was installed family-wide), so it only needs
     an access count — plus, for the run's first write, marking the
     resident ways dirty.  Skipping the stamp refresh is safe: within a
     run no other block of any set is touched, so the relative recency
     order inside every set is unchanged. *)
  mutable last_block : int;
  mutable run_dirty : bool;  (* last_block already marked dirty *)
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?shard configs =
  (match shard with
  | None -> ()
  | Some (i, n) ->
      if n < 1 || i < 0 || i >= n then
        invalid_arg
          (Printf.sprintf "Cachesim.Forest.create: bad shard (%d, %d)" i n));
  (match configs with
  | [] -> invalid_arg "Cachesim.Forest.create: no configurations"
  | first :: rest ->
      List.iter
        (fun (c : Config.t) ->
          if c.block_bytes <> first.Config.block_bytes then
            invalid_arg
              (Printf.sprintf
                 "Cachesim.Forest.create: %s has block size %d, family uses %d"
                 c.name c.block_bytes first.Config.block_bytes);
          (* The one-pass walk leans on LRU inclusion (stamp victims ==
             MRU-list victims); other policies must go through {!Cache}. *)
          if not (Policy.is_lru c.policy) then
            invalid_arg
              (Printf.sprintf
                 "Cachesim.Forest.create: %s uses policy %s; forest \
                  simulation supports lru only"
                 c.name
                 (Policy.to_string c.policy)))
        (first :: rest));
  let member config =
    let num_sets = Config.num_sets config in
    let assoc = config.Config.associativity in
    let ways = num_sets * assoc in
    { config;
      assoc;
      tags = Array.make ways (-1);
      dirty = Array.make ways false;
      stamps = (if assoc = 1 then [||] else Array.make ways 0);
      set_mask = num_sets - 1;
      miss = Array.make 6 0;
      writebacks = 0;
      last_way = 0 }
  in
  let members = Array.of_list (List.map member configs) in
  let dm =
    Array.of_list
      (List.filter (fun m -> m.assoc = 1) (Array.to_list members))
  in
  Array.stable_sort (fun a b -> compare a.set_mask b.set_mask) dm;
  let sa =
    Array.of_list
      (List.filter (fun m -> m.assoc > 1) (Array.to_list members))
  in
  let part_mask, part_lo, part_hi =
    match shard with
    | None -> (0, 0, 1)
    | Some (i, n) ->
        (* Partition on the smallest member's set index: its mask bits
           are the low bits of every member's mask (all are 2^k - 1), so
           a contiguous range of small-member set indices is a union of
           whole sets in every member. *)
        let mask =
          Array.fold_left (fun acc m -> min acc m.set_mask) max_int members
        in
        let groups = mask + 1 in
        (mask, groups * i / n, groups * (i + 1) / n)
  in
  { members;
    dm;
    sa;
    block_shift = log2 (List.hd configs).Config.block_bytes;
    part_mask;
    part_lo;
    part_hi;
    seen = Hashtbl.create 4096;
    ticks = 0;
    acc = Array.make 6 0;
    cold_misses = 0;
    last_block = -1;
    run_dirty = false }

let block_bytes t = 1 lsl t.block_shift
let size t = Array.length t.members

(* First write of a repeat run: mark the resident copies of
   [t.last_block] dirty in every member (idempotent — the block may
   already be dirty somewhere from before the run). *)
let mark_run_dirty t =
  let block = t.last_block in
  let dm = t.dm in
  for i = 0 to Array.length dm - 1 do
    let m = Array.unsafe_get dm i in
    Array.unsafe_set m.dirty (block land m.set_mask) true
  done;
  let sa = t.sa in
  for j = 0 to Array.length sa - 1 do
    let m = Array.unsafe_get sa j in
    Array.unsafe_set m.dirty m.last_way true
  done;
  t.run_dirty <- true

(* The hot path: [ks] is the fused kind/source counter index
   [ki*3 + si], resolved once per event.  Returns how many members
   missed. *)
let rec access_block_ks t ~ks ~block =
  let p = block land t.part_mask in
  if p < t.part_lo || p >= t.part_hi then 0  (* another shard's block *)
  else if block = t.last_block then begin
    (* Consecutive repeat: hits every member by construction. *)
    Array.unsafe_set t.acc ks (Array.unsafe_get t.acc ks + 1);
    if ks >= 3 && not t.run_dirty then mark_run_dirty t;
    0
  end
  else probe_block_ks t ~ks ~block

and probe_block_ks t ~ks ~block =
  let tick = t.ticks + 1 in
  t.ticks <- tick;
  Array.unsafe_set t.acc ks (Array.unsafe_get t.acc ks + 1);
  let write = ks >= 3 in
  let dm = t.dm in
  let dn = Array.length dm in
  (* Boundary: probe-order index of the smallest direct-mapped member
     that hits; by inclusion everything at or above it hits, everything
     below missed. *)
  let rec boundary i =
    if i >= dn then i
    else
      let m = Array.unsafe_get dm i in
      if Array.unsafe_get m.tags (block land m.set_mask) = block then i
      else boundary (i + 1)
  in
  let b = boundary 0 in
  if b > 0 then
    for i = 0 to b - 1 do
      let m = Array.unsafe_get dm i in
      let s = block land m.set_mask in
      if m.tags.(s) >= 0 && m.dirty.(s) then m.writebacks <- m.writebacks + 1;
      m.tags.(s) <- block;
      m.dirty.(s) <- write;
      Array.unsafe_set m.miss ks (Array.unsafe_get m.miss ks + 1)
    done;
  if write then
    (* Write hits only mark the resident block dirty. *)
    for i = b to dn - 1 do
      let m = Array.unsafe_get dm i in
      m.dirty.(block land m.set_mask) <- true
    done;
  (* Set-associative members: no inclusion order, probe each. *)
  let sa = t.sa in
  let sn = Array.length sa in
  let rec probe_sa j missed =
    if j >= sn then missed
    else begin
      let m = Array.unsafe_get sa j in
      let assoc = m.assoc in
      let base = (block land m.set_mask) * assoc in
      let rec find w =
        if w >= assoc then -1
        else if Array.unsafe_get m.tags (base + w) = block then w
        else find (w + 1)
      in
      let w = find 0 in
      if w >= 0 then begin
        m.last_way <- base + w;
        Array.unsafe_set m.stamps (base + w) tick;
        if write then Array.unsafe_set m.dirty (base + w) true;
        probe_sa (j + 1) missed
      end
      else begin
        (* Victim: least last-use stamp.  Untouched ways keep stamp 0
           and so fill before any valid way is evicted; once the set is
           full the least stamp is exactly the LRU block. *)
        let rec victim k best besti =
          if k >= base + assoc then besti
          else
            let s = Array.unsafe_get m.stamps k in
            if s < best then victim (k + 1) s k else victim (k + 1) best besti
        in
        let v = victim (base + 1) (Array.unsafe_get m.stamps base) base in
        m.last_way <- v;
        if Array.unsafe_get m.tags v >= 0 && Array.unsafe_get m.dirty v then
          m.writebacks <- m.writebacks + 1;
        Array.unsafe_set m.tags v block;
        Array.unsafe_set m.dirty v write;
        Array.unsafe_set m.stamps v tick;
        Array.unsafe_set m.miss ks (Array.unsafe_get m.miss ks + 1);
        probe_sa (j + 1) (missed + 1)
      end
    end
  in
  let missed = probe_sa 0 b in
  (* A cold (first-ever) reference misses in every member at once; a
     family-wide hit proves the block was already seen, so the table is
     only consulted when someone missed. *)
  if missed > 0 && not (Hashtbl.mem t.seen block) then begin
    Hashtbl.replace t.seen block ();
    t.cold_misses <- t.cold_misses + 1
  end;
  t.last_block <- block;
  t.run_dirty <- write;
  missed

let kind_index (kind : Memsim.Event.kind) =
  match kind with Read -> 0 | Write -> 1

let source_index (source : Memsim.Event.source) =
  match source with App -> 0 | Malloc -> 1 | Free -> 2

let ks_index ~kind ~source = (kind_index kind * 3) + source_index source

let access_block t ~kind ~source ~block =
  access_block_ks t ~ks:(ks_index ~kind ~source) ~block

let access_range_ks t ~ks ~addr ~size =
  let first = addr lsr t.block_shift in
  let last = (addr + size - 1) lsr t.block_shift in
  for block = first to last do
    ignore (access_block_ks t ~ks ~block)
  done

let access t (e : Memsim.Event.t) =
  access_range_ks t
    ~ks:(ks_index ~kind:e.kind ~source:e.source)
    ~addr:e.addr ~size:e.size

(* The packed hot path: ks, addr and size all come straight out of the
   two packed ints — no Event.t is materialised. *)
let access_packed_batch t (b : Memsim.Event.Batch.t) =
  let addrs = b.Memsim.Event.Batch.addrs and metas = b.Memsim.Event.Batch.metas in
  for i = 0 to b.Memsim.Event.Batch.len - 1 do
    let meta = Array.unsafe_get metas i in
    access_range_ks t
      ~ks:(Memsim.Event.Packed.ks meta)
      ~addr:(Array.unsafe_get addrs i)
      ~size:(meta lsr 3)
  done

let sink t =
  let access_event = access t in
  { Memsim.Sink.emit = access_event;
    emit_batch =
      (fun buf len ->
        for i = 0 to len - 1 do
          access_event (Array.unsafe_get buf i)
        done);
    emit_packed_batch = access_packed_batch t;
  }

let absorb t other =
  (* Merge another shard's counters into ours.  Only statistics move:
     tags/stamps stay per-shard (their sets are disjoint by
     construction, so there is nothing to reconcile). *)
  if Array.length t.members <> Array.length other.members then
    invalid_arg "Cachesim.Forest.absorb: member count mismatch";
  for c = 0 to 5 do
    t.acc.(c) <- t.acc.(c) + other.acc.(c)
  done;
  t.cold_misses <- t.cold_misses + other.cold_misses;
  Array.iteri
    (fun i m ->
      let o = other.members.(i) in
      if m.config <> o.config then
        invalid_arg "Cachesim.Forest.absorb: member config mismatch";
      for c = 0 to 5 do
        m.miss.(c) <- m.miss.(c) + o.miss.(c)
      done;
      m.writebacks <- m.writebacks + o.writebacks)
    t.members

(* Marginals of the fused [ki*3 + si] layout.  Cells: 0 = read/app,
   1 = read/malloc, 2 = read/free, 3 = write/app, 4 = write/malloc,
   5 = write/free. *)
let reads c = c.(0) + c.(1) + c.(2)
let writes c = c.(3) + c.(4) + c.(5)

let member_stats t i =
  let m = t.members.(i) in
  let s = Stats.create () in
  let acc = t.acc and miss = m.miss in
  s.Stats.accesses <- reads acc + writes acc;
  s.Stats.misses <- reads miss + writes miss;
  s.Stats.read_accesses <- reads acc;
  s.Stats.read_misses <- reads miss;
  s.Stats.write_accesses <- writes acc;
  s.Stats.write_misses <- writes miss;
  s.Stats.cold_misses <- t.cold_misses;
  s.Stats.writebacks <- m.writebacks;
  s.Stats.app_accesses <- acc.(0) + acc.(3);
  s.Stats.app_misses <- miss.(0) + miss.(3);
  s.Stats.malloc_accesses <- acc.(1) + acc.(4);
  s.Stats.malloc_misses <- miss.(1) + miss.(4);
  s.Stats.free_accesses <- acc.(2) + acc.(5);
  s.Stats.free_misses <- miss.(2) + miss.(5);
  s

let member_config t i = t.members.(i).config

let results t =
  List.init (Array.length t.members) (fun i ->
      (t.members.(i).config, member_stats t i))

let miss_rate_series t =
  results t
  |> List.map (fun ((cfg : Config.t), st) -> (cfg.name, Stats.miss_rate_pct st))
