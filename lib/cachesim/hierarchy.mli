(** A multi-level cache hierarchy.

    Generalises the "hypothetical two-level cache" of Mogul & Borg
    cited in the paper to N levels: every reference probes the first
    level; each level sees only the miss stream of the level above.
    Levels may use any replacement {!Policy.t}; LRU levels run on the
    shared one-pass {!Forest} member path, others on plain {!Cache}
    simulation.  Used by the extension benchmarks and by the modern
    {!Cpu} presets (L1/L2/L3 with pseudo-LRU policies). *)

type t

val create_levels : Config.t list -> t
(** [create_levels [l1; l2; ...]] builds a hierarchy, outermost (closest
    to the processor) first.
    @raise Invalid_argument on an empty list. *)

val create : l1:Config.t -> l2:Config.t -> t
(** Two-level convenience wrapper, equivalent to
    [create_levels [l1; l2]]. *)

val access : t -> Memsim.Event.t -> unit
val sink : t -> Memsim.Sink.t

val num_levels : t -> int

val level_config : t -> int -> Config.t
(** Configuration of level [i] (0 = closest to the processor). *)

val level_stats : t -> int -> Stats.t
(** Statistics of level [i]; level [i]'s accesses are level [i-1]'s
    misses. *)

val results : t -> (Config.t * Stats.t) list
(** All levels, outermost first. *)

val l1_stats : t -> Stats.t
(** [level_stats t 0]. *)

val l2_stats : t -> Stats.t
(** [level_stats t 1]. *)

val stalls : t -> penalties:int array -> int
(** [stalls t ~penalties] is the total memory stall cycles under a
    per-level miss-cost model: a miss at level [i] pays [penalties.(i)]
    — the access latency of the next level down, with the last entry
    the main-memory latency.  [penalties] must have one entry per
    level.  See {!Cpu.stall_cycles} for the preset-driven wrapper. *)

val stall_cycles : t -> l1_penalty:int -> l2_penalty:int -> int
(** Two-level form kept for the paper-era experiments: L1 misses pay
    [l1_penalty] (the L2 access time) and L2 misses additionally pay
    [l2_penalty].
    @raise Invalid_argument if the hierarchy has fewer than two
    levels. *)
