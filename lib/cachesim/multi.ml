(* A set of cache configurations fed from one trace.  LRU
   configurations are partitioned by block size into {!Forest}
   families: within a family the direct-mapped members cost one
   inclusion walk per reference, set-associative members are probed
   individually, and the access profile and cold-miss table are shared
   family-wide.  Non-LRU configurations fall outside the inclusion
   property the forest relies on, so each one is simulated by its own
   {!Cache} fed the same stream.  Per-configuration statistics are
   bit-identical to simulating every configuration independently. *)

type slot =
  | In_forest of int * int  (* forest index, member index within it *)
  | Standalone of int  (* index into [singles] *)

type t = {
  slots : (Config.t * slot) array;  (* creation order *)
  forests : Forest.t array;
  singles : Cache.t array;  (* non-LRU fallbacks *)
}

let create configs =
  if configs = [] then invalid_arg "Cachesim.Multi.create: no configurations";
  (* One family per block size, in first-seen order. *)
  let families : (int, Config.t list ref) Hashtbl.t = Hashtbl.create 4 in
  let family_order = ref [] in
  let singles_rev = ref [] in
  let num_singles = ref 0 in
  let slots_rev = ref [] in
  List.iter
    (fun (c : Config.t) ->
      if Policy.is_lru c.policy then begin
        let members =
          match Hashtbl.find_opt families c.block_bytes with
          | Some r -> r
          | None ->
              let r = ref [] in
              Hashtbl.add families c.block_bytes r;
              family_order := c.block_bytes :: !family_order;
              r
        in
        members := c :: !members;
        slots_rev :=
          (c, `Forest (c.block_bytes, List.length !members - 1)) :: !slots_rev
      end
      else begin
        singles_rev := Cache.create c :: !singles_rev;
        slots_rev := (c, `Single !num_singles) :: !slots_rev;
        incr num_singles
      end)
    configs;
  let family_order = List.rev !family_order in
  let forests =
    Array.of_list
      (List.map
         (fun bb -> Forest.create (List.rev !(Hashtbl.find families bb)))
         family_order)
  in
  let forest_index =
    let tbl = Hashtbl.create 4 in
    List.iteri (fun i bb -> Hashtbl.add tbl bb i) family_order;
    tbl
  in
  let slots =
    Array.of_list
      (List.rev_map
         (fun (c, where) ->
           match where with
           | `Forest (bb, member) ->
               (c, In_forest (Hashtbl.find forest_index bb, member))
           | `Single i -> (c, Standalone i))
         !slots_rev)
  in
  { slots; forests; singles = Array.of_list (List.rev !singles_rev) }

let access t e =
  for i = 0 to Array.length t.forests - 1 do
    Forest.access t.forests.(i) e
  done;
  for i = 0 to Array.length t.singles - 1 do
    Cache.access t.singles.(i) e
  done

let sink t =
  let forests = t.forests in
  let singles = t.singles in
  let emit = access t in
  { Memsim.Sink.emit;
    emit_batch =
      (fun buf len ->
        (* Decode each event's kind/source once, then feed every family. *)
        for i = 0 to len - 1 do
          let e : Memsim.Event.t = Array.unsafe_get buf i in
          let ks = Forest.ks_index ~kind:e.kind ~source:e.source in
          for j = 0 to Array.length forests - 1 do
            Forest.access_range_ks
              (Array.unsafe_get forests j)
              ~ks ~addr:e.addr ~size:e.size
          done;
          for j = 0 to Array.length singles - 1 do
            Cache.access (Array.unsafe_get singles j) e
          done
        done);
    emit_packed_batch =
      (fun b ->
        (* Packed hot path: ks/addr/size come straight from the two
           packed ints, shared across every family and single. *)
        let addrs = b.Memsim.Event.Batch.addrs
        and metas = b.Memsim.Event.Batch.metas in
        for i = 0 to b.Memsim.Event.Batch.len - 1 do
          let meta = Array.unsafe_get metas i in
          let addr = Array.unsafe_get addrs i in
          let ks = Memsim.Event.Packed.ks meta in
          let size = meta lsr 3 in
          for j = 0 to Array.length forests - 1 do
            Forest.access_range_ks (Array.unsafe_get forests j) ~ks ~addr ~size
          done;
          for j = 0 to Array.length singles - 1 do
            Cache.access_packed (Array.unsafe_get singles j) ~addr ~meta
          done
        done);
  }

let stats_of t = function
  | In_forest (f, m) -> Forest.member_stats t.forests.(f) m
  | Standalone i -> Cache.stats t.singles.(i)

let results t =
  Array.to_list t.slots |> List.map (fun (c, slot) -> (c, stats_of t slot))

let names t =
  Array.to_list t.slots |> List.map (fun ((c : Config.t), _) -> c.name)

let find t ~name =
  match
    Array.find_opt (fun ((c : Config.t), _) -> c.name = name) t.slots
  with
  | Some (c, slot) -> (c, stats_of t slot)
  | None ->
      invalid_arg
        (Printf.sprintf "Cachesim.Multi.find: unknown cache %S (known: %s)"
           name
           (String.concat ", " (names t)))

let miss_rate_series t =
  results t
  |> List.map (fun (cfg, st) -> (cfg.Config.name, Stats.miss_rate_pct st))
