(** Simulate a family of cache configurations over one trace pass.

    The paper sweeps cache sizes (Figures 6–8); feeding every
    configuration from the same execution-driven trace is how TYCHO was
    used.  All caches see the identical reference stream.

    Internally the configurations are partitioned by block size into
    {!Forest} families: direct-mapped members are simulated in one
    inclusion walk per reference, set-associative members are probed
    individually but share the family's access profile and cold-miss
    table.  The partition is invisible in the results — statistics are
    bit-identical to simulating every configuration on its own. *)

type t

val create : Config.t list -> t
(** @raise Invalid_argument on an empty configuration list. *)

val sink : t -> Memsim.Sink.t
(** Forwards every event to every configuration. *)

val results : t -> (Config.t * Stats.t) list
(** Configuration and statistics per cache, in creation order. *)

val find : t -> name:string -> Config.t * Stats.t
(** [find t ~name] looks a configuration up by display name.

    @raise Invalid_argument if no configuration has that name; the
    message lists the known names. *)

val miss_rate_series : t -> (string * float) list
(** [(name, miss-rate %)] per configuration — one figure series. *)
