type t = {
  config : Config.t;
  (* tags.((set * assoc) + way) holds the block index resident in that
     way; -1 = invalid.  Way positions are physical: replacement order
     lives in [policy], not in the array layout. *)
  tags : int array;
  (* dirty.(i) mirrors tags.(i): the resident block has been written
     since it was fetched (write-back accounting). *)
  dirty : bool array;
  num_sets : int;
  assoc : int;
  block_shift : int;  (* log2 block_bytes: block index = addr lsr shift *)
  seen : (int, unit) Hashtbl.t;  (* blocks ever referenced, for cold misses *)
  policy : Policy.State.t;  (* per-set replacement state (assoc > 1) *)
  mutable stats : Stats.t;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create config =
  let num_sets = Config.num_sets config in
  let assoc = config.Config.associativity in
  { config;
    tags = Array.make (num_sets * assoc) (-1);
    dirty = Array.make (num_sets * assoc) false;
    num_sets;
    assoc;
    block_shift = log2 config.Config.block_bytes;
    seen = Hashtbl.create 4096;
    policy = Policy.State.create config.Config.policy ~num_sets ~assoc;
    stats = Stats.create () }

let config t = t.config
let stats t = t.stats

(* Touch [block] in its set: return whether it missed.  Invalid ways
   fill leftmost-first; only a full set consults the policy for a
   victim (the contract the differential oracle shares).  A write marks
   the block dirty; evicting a dirty block counts a writeback. *)
let touch t block ~write =
  let set = block land (t.num_sets - 1) in
  let base = set * t.assoc in
  if t.assoc = 1 then
    (* Direct-mapped fast path: replacement is forced, no policy state. *)
    if t.tags.(base) = block then begin
      if write then t.dirty.(base) <- true;
      false
    end
    else begin
      if t.tags.(base) >= 0 && t.dirty.(base) then
        Stats.record_writeback t.stats;
      t.tags.(base) <- block;
      t.dirty.(base) <- write;
      true
    end
  else begin
    let rec find i = if i >= t.assoc then -1
      else if t.tags.(base + i) = block then i
      else find (i + 1)
    in
    let pos = find 0 in
    if pos >= 0 then begin
      Policy.State.hit t.policy ~set ~way:pos;
      if write then t.dirty.(base + pos) <- true;
      false
    end
    else begin
      let rec first_invalid i =
        if i >= t.assoc then -1
        else if t.tags.(base + i) < 0 then i
        else first_invalid (i + 1)
      in
      let way =
        match first_invalid 0 with
        | -1 -> Policy.State.victim t.policy ~set
        | w -> w
      in
      if t.tags.(base + way) >= 0 && t.dirty.(base + way) then
        Stats.record_writeback t.stats;
      t.tags.(base + way) <- block;
      t.dirty.(base + way) <- write;
      Policy.State.fill t.policy ~set ~way;
      true
    end
  end

let access_block t ~kind ~source ~block =
  let miss = touch t block ~write:(kind = Memsim.Event.Write) in
  let cold =
    miss
    && not (Hashtbl.mem t.seen block)
  in
  if miss && cold then Hashtbl.replace t.seen block ();
  Stats.record t.stats ~kind ~source ~miss ~cold;
  miss

let access t (e : Memsim.Event.t) =
  let first = e.addr lsr t.block_shift in
  let last = (e.addr + e.size - 1) lsr t.block_shift in
  for block = first to last do
    ignore (access_block t ~kind:e.kind ~source:e.source ~block)
  done

(* Packed hot path: kind/source are decoded once per event from the
   meta word; no Event.t record is built. *)
let access_packed t ~addr ~meta =
  let kind = Memsim.Event.Packed.kind meta in
  let source = Memsim.Event.Packed.source meta in
  let first = addr lsr t.block_shift in
  let last = (addr + (meta lsr 3) - 1) lsr t.block_shift in
  for block = first to last do
    ignore (access_block t ~kind ~source ~block)
  done

let access_packed_batch t (b : Memsim.Event.Batch.t) =
  let addrs = b.Memsim.Event.Batch.addrs and metas = b.Memsim.Event.Batch.metas in
  for i = 0 to b.Memsim.Event.Batch.len - 1 do
    access_packed t ~addr:(Array.unsafe_get addrs i)
      ~meta:(Array.unsafe_get metas i)
  done

let sink t =
  let access_event = access t in
  { Memsim.Sink.emit = access_event;
    emit_batch =
      (fun buf len ->
        for i = 0 to len - 1 do
          access_event (Array.unsafe_get buf i)
        done);
    emit_packed_batch = access_packed_batch t;
  }

let contains_block t ~block =
  let set = block land (t.num_sets - 1) in
  let base = set * t.assoc in
  let rec find i =
    i < t.assoc && (t.tags.(base + i) = block || find (i + 1))
  in
  find 0

let flush t =
  (* Flushing writes dirty blocks back. *)
  Array.iteri
    (fun i d -> if d && t.tags.(i) >= 0 then Stats.record_writeback t.stats)
    t.dirty;
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Policy.State.reset t.policy
let reset_stats t = t.stats <- Stats.create ()
