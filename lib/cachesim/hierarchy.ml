(* An N-level cache hierarchy: every reference probes level 0; each
   level sees only the miss stream of the level above, as in the
   paper's two-level runs (Mogul & Borg) and the modern L1/L2/L3
   presets of {!Cpu}.

   An LRU level is a single-member {!Forest} family: the member code
   path (inline probe, array counters, cold table consulted only on a
   miss) is shared with the multi-configuration sweep, and a one-member
   family's statistics are exactly an independent cache's.  Non-LRU
   levels (Tree-PLRU, QLRU, ...) fall outside the forest's inclusion
   argument and run as plain {!Cache} simulations instead — the two
   agree bit-for-bit on LRU, which keeps the original two-level results
   byte-identical. *)

type sim = Forest_sim of Forest.t | Cache_sim of Cache.t

type level = {
  config : Config.t;
  sim : sim;
  shift : int;  (* log2 of the level's block size *)
}

type t = { levels : level array }

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create_levels configs =
  if configs = [] then invalid_arg "Cachesim.Hierarchy.create_levels: no levels";
  let level (config : Config.t) =
    { config;
      sim =
        (if Policy.is_lru config.policy then Forest_sim (Forest.create [ config ])
         else Cache_sim (Cache.create config));
      shift = log2 config.block_bytes }
  in
  { levels = Array.of_list (List.map level configs) }

let create ~l1 ~l2 = create_levels [ l1; l2 ]

(* Probe one level with a block index already translated to its block
   size; true = miss. *)
let probe level ~kind ~source ~ks ~block =
  match level.sim with
  | Forest_sim f -> Forest.access_block_ks f ~ks ~block > 0
  | Cache_sim c -> Cache.access_block c ~kind ~source ~block

let access_parts t ~kind ~source ~ks ~addr ~size =
  let top = t.levels.(0) in
  let n = Array.length t.levels in
  let first = addr lsr top.shift in
  let last = (addr + size - 1) lsr top.shift in
  for block = first to last do
    if probe top ~kind ~source ~ks ~block then begin
      (* Propagate down the miss path, translating the level-0 block to
         each level's (possibly larger) block, until some level hits. *)
      let base = block lsl top.shift in
      let i = ref 1 in
      let missing = ref true in
      while !missing && !i < n do
        let level = t.levels.(!i) in
        missing := probe level ~kind ~source ~ks ~block:(base lsr level.shift);
        incr i
      done
    end
  done

let access t (e : Memsim.Event.t) =
  access_parts t ~kind:e.kind ~source:e.source
    ~ks:(Forest.ks_index ~kind:e.kind ~source:e.source)
    ~addr:e.addr ~size:e.size

let access_packed_batch t (b : Memsim.Event.Batch.t) =
  let addrs = b.Memsim.Event.Batch.addrs and metas = b.Memsim.Event.Batch.metas in
  for i = 0 to b.Memsim.Event.Batch.len - 1 do
    let meta = Array.unsafe_get metas i in
    access_parts t
      ~kind:(Memsim.Event.Packed.kind meta)
      ~source:(Memsim.Event.Packed.source meta)
      ~ks:(Memsim.Event.Packed.ks meta)
      ~addr:(Array.unsafe_get addrs i)
      ~size:(meta lsr 3)
  done

let sink t =
  let access_event = access t in
  { Memsim.Sink.emit = access_event;
    emit_batch =
      (fun buf len ->
        for i = 0 to len - 1 do
          access_event (Array.unsafe_get buf i)
        done);
    emit_packed_batch = access_packed_batch t;
  }

let num_levels t = Array.length t.levels
let level_config t i = t.levels.(i).config

let level_stats t i =
  match t.levels.(i).sim with
  | Forest_sim f -> Forest.member_stats f 0
  | Cache_sim c -> Cache.stats c

let results t =
  Array.to_list t.levels
  |> List.mapi (fun i level -> (level.config, level_stats t i))

let l1_stats t = level_stats t 0
let l2_stats t = level_stats t 1

let stalls t ~penalties =
  if Array.length penalties <> Array.length t.levels then
    invalid_arg
      (Printf.sprintf
         "Cachesim.Hierarchy.stalls: %d penalties for %d levels"
         (Array.length penalties) (Array.length t.levels));
  let total = ref 0 in
  for i = 0 to Array.length t.levels - 1 do
    total := !total + ((level_stats t i).Stats.misses * penalties.(i))
  done;
  !total

let stall_cycles t ~l1_penalty ~l2_penalty =
  if Array.length t.levels < 2 then
    invalid_arg "Cachesim.Hierarchy.stall_cycles: fewer than two levels";
  let s1 = level_stats t 0 and s2 = level_stats t 1 in
  (s1.Stats.misses * l1_penalty) + (s2.Stats.misses * l2_penalty)
