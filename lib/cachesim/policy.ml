(* Replacement policies as a first-class dimension of the simulator.

   The paper's caches are direct-mapped, where replacement is forced;
   modern hierarchies (Nehalem through Coffee Lake) use pseudo-LRU
   families whose miss behaviour differs measurably from true LRU.
   The variants here follow the reverse-engineered descriptions used
   by nanoBench/cachetrace-style tools:

   - [Lru]: true least-recently-used (the paper's set-associative
     discussion, and the only policy the one-pass {!Forest} supports).
   - [Fifo]: evict the oldest *fill*; hits do not refresh.
   - [Random seed]: uniform victim from a deterministic xorshift32
     stream — same seed, same simulation, bit for bit.
   - [Plru]: tree pseudo-LRU — one bit per internal node of a binary
     tree over the ways, each access points its path away from the
     accessed way (Intel L1/L2 through Ivy Bridge, most L1s since).
   - [Qlru]: quad-age LRU — 2-bit age per line; a hit rejuvenates to
     [hit_age], a fill inserts at [insert_age], the victim is the
     leftmost line of age 3, ageing everyone when none exists (the
     Skylake-era L2/L3 variants; H00/H11 x M0/M1 presets below).
   - [Mru]: bit-PLRU — one MRU bit per line, set on access; when all
     bits saturate the others reset; victim is the leftmost clear bit.

   Every policy is pinned to an executable naive oracle
   ([test/oracle.ml]) by a qcheck differential suite; the shared
   victim-side contract both implementations follow is:

   - invalid ways fill leftmost-first, before any replacement;
   - [victim] is consulted only when the set is full;
   - [Random] draws exactly one xorshift32 value per victim request,
     in access order, and takes it modulo the associativity. *)

type qlru = { hit_age : int; insert_age : int }

type t =
  | Lru
  | Fifo
  | Random of int
  | Plru
  | Qlru of qlru
  | Mru

let qlru_h00_m1 = { hit_age = 0; insert_age = 1 }
let qlru_h11_m1 = { hit_age = 1; insert_age = 1 }
let qlru_h00_m0 = { hit_age = 0; insert_age = 0 }

let is_lru = function Lru -> true | _ -> false

let to_string = function
  | Lru -> "lru"
  | Fifo -> "fifo"
  | Random seed -> Printf.sprintf "random:%d" seed
  | Plru -> "plru"
  | Qlru { hit_age; insert_age } ->
      Printf.sprintf "qlru-h%d-m%d" hit_age insert_age
  | Mru -> "mru"

let of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "unknown policy %S (expected lru, fifo, random:SEED, plru, \
          qlru-hH-mM, or mru)"
         s)
  in
  match s with
  | "lru" -> Ok Lru
  | "fifo" -> Ok Fifo
  | "plru" -> Ok Plru
  | "mru" -> Ok Mru
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "random" -> (
          match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
          | Some seed -> Ok (Random seed)
          | None -> fail ())
      | _ ->
          (* qlru-hH-mM with single-digit ages 0..3 *)
          if
            String.length s = 10
            && String.sub s 0 6 = "qlru-h"
            && s.[7] = '-' && s.[8] = 'm'
          then
            match
              (int_of_string_opt (String.make 1 s.[6]),
               int_of_string_opt (String.make 1 s.[9]))
            with
            | Some h, Some m when h >= 0 && h <= 3 && m >= 0 && m <= 3 ->
                Ok (Qlru { hit_age = h; insert_age = m })
            | _ -> fail ()
          else fail ())

let equal (a : t) b = a = b
let pp ppf t = Format.pp_print_string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Per-set replacement state                                          *)
(* ------------------------------------------------------------------ *)

module State = struct
  type policy = t

  (* One representation per policy, flat over [num_sets * assoc] where
     per-way memory is needed, one packed int per set for the bit
     policies (associativity is a power of two <= 62, so tree bits and
     MRU masks both fit one immediate int). *)
  type t =
    | S_lru of { stamps : int array; mutable tick : int; assoc : int }
    | S_fifo of { stamps : int array; mutable tick : int; assoc : int }
    | S_random of { mutable rng : int; assoc : int }
    | S_plru of { bits : int array; assoc : int }
    | S_qlru of {
        ages : int array;
        assoc : int;
        hit_age : int;
        insert_age : int;
      }
    | S_mru of { bits : int array; assoc : int; full : int }

  let seed_rng seed =
    (* xorshift32 state must be non-zero; fold the seed into 32 bits
       and force a bit on. *)
    let s = seed land 0xFFFFFFFF in
    if s = 0 then 1 else s

  let create (policy : policy) ~num_sets ~assoc =
    match policy with
    | Lru -> S_lru { stamps = Array.make (num_sets * assoc) 0; tick = 0; assoc }
    | Fifo ->
        S_fifo { stamps = Array.make (num_sets * assoc) 0; tick = 0; assoc }
    | Random seed -> S_random { rng = seed_rng seed; assoc }
    | Plru -> S_plru { bits = Array.make num_sets 0; assoc }
    | Qlru { hit_age; insert_age } ->
        S_qlru
          { ages = Array.make (num_sets * assoc) 0; assoc; hit_age; insert_age }
    | Mru ->
        S_mru { bits = Array.make num_sets 0; assoc; full = (1 lsl assoc) - 1 }

  (* Tree-PLRU over a heap-indexed complete binary tree: node [n] has
     children [2n+1] (ways below the midpoint) and [2n+2] (above).  A
     set bit means "the victim is in the right subtree".  Touching a
     way flips every node on its path to point at the *other* subtree. *)
  let plru_touch bits set assoc way =
    let b = ref bits.(set) in
    let node = ref 0 and lo = ref 0 and hi = ref assoc in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if way < mid then begin
        b := !b lor (1 lsl !node);
        hi := mid;
        node := (2 * !node) + 1
      end
      else begin
        b := !b land lnot (1 lsl !node);
        lo := mid;
        node := (2 * !node) + 2
      end
    done;
    bits.(set) <- !b

  let plru_victim bits set assoc =
    let b = bits.(set) in
    let node = ref 0 and lo = ref 0 and hi = ref assoc in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if b land (1 lsl !node) <> 0 then begin
        lo := mid;
        node := (2 * !node) + 2
      end
      else begin
        hi := mid;
        node := (2 * !node) + 1
      end
    done;
    !lo

  let mru_touch bits set full way =
    let m = bits.(set) lor (1 lsl way) in
    bits.(set) <- (if m = full then 1 lsl way else m)

  let hit t ~set ~way =
    match t with
    | S_lru s ->
        s.tick <- s.tick + 1;
        s.stamps.((set * s.assoc) + way) <- s.tick
    | S_fifo _ -> ()
    | S_random _ -> ()
    | S_plru s -> plru_touch s.bits set s.assoc way
    | S_qlru s -> s.ages.((set * s.assoc) + way) <- s.hit_age
    | S_mru s -> mru_touch s.bits set s.full way

  let fill t ~set ~way =
    match t with
    | S_lru s ->
        s.tick <- s.tick + 1;
        s.stamps.((set * s.assoc) + way) <- s.tick
    | S_fifo s ->
        s.tick <- s.tick + 1;
        s.stamps.((set * s.assoc) + way) <- s.tick
    | S_random _ -> ()
    | S_plru s -> plru_touch s.bits set s.assoc way
    | S_qlru s -> s.ages.((set * s.assoc) + way) <- s.insert_age
    | S_mru s -> mru_touch s.bits set s.full way

  let min_stamp_way stamps base assoc =
    let rec go w best besti =
      if w >= assoc then besti
      else
        let s = stamps.(base + w) in
        if s < best then go (w + 1) s w else go (w + 1) best besti
    in
    go 1 stamps.(base) 0

  let victim t ~set =
    match t with
    | S_lru s -> min_stamp_way s.stamps (set * s.assoc) s.assoc
    | S_fifo s -> min_stamp_way s.stamps (set * s.assoc) s.assoc
    | S_random s ->
        let x = s.rng in
        let x = x lxor (x lsl 13) land 0xFFFFFFFF in
        let x = x lxor (x lsr 17) in
        let x = x lxor (x lsl 5) land 0xFFFFFFFF in
        s.rng <- x;
        x mod s.assoc
    | S_plru s -> plru_victim s.bits set s.assoc
    | S_qlru s ->
        let base = set * s.assoc in
        let rec max_age w acc =
          if w >= s.assoc then acc else max_age (w + 1) (max acc s.ages.(base + w))
        in
        let m = max_age 0 0 in
        if m < 3 then
          (* Age the whole set until someone reaches 3. *)
          for w = 0 to s.assoc - 1 do
            s.ages.(base + w) <- s.ages.(base + w) + (3 - m)
          done;
        let rec leftmost w =
          if w >= s.assoc - 1 then w
          else if s.ages.(base + w) = 3 then w
          else leftmost (w + 1)
        in
        leftmost 0
    | S_mru s ->
        let b = s.bits.(set) in
        let rec leftmost w =
          if w >= s.assoc - 1 then w
          else if b land (1 lsl w) = 0 then w
          else leftmost (w + 1)
        in
        leftmost 0

  let reset t =
    match t with
    | S_lru s -> Array.fill s.stamps 0 (Array.length s.stamps) 0
    | S_fifo s -> Array.fill s.stamps 0 (Array.length s.stamps) 0
    | S_random _ -> ()
    | S_plru s -> Array.fill s.bits 0 (Array.length s.bits) 0
    | S_qlru s -> Array.fill s.ages 0 (Array.length s.ages) 0
    | S_mru s -> Array.fill s.bits 0 (Array.length s.bits) 0
end
