(** Domain-parallel cache simulation of one trace, partitioned by
    cache set.

    Complements the (program x allocator) grid parallelism of
    [Exec.Pool]: where the grid shards {e cells} across domains, this
    shards a {e single} simulation — each domain owns a range of cache
    sets, scans the whole captured trace, and simulates only the blocks
    mapping to its sets.  Set ranges are independent under LRU, so the
    merged statistics are identical to a sequential run (pinned by
    test); the cost is that every domain reads the full trace, so the
    speedup ceiling is the simulate/scan cost ratio. *)

val replay :
  ?domains:int ->
  configs:Config.t list ->
  Memsim.Trace_buffer.t ->
  (Config.t * Stats.t) list
(** [replay ~domains ~configs trace] simulates the forest family
    [configs] (one shared block size, LRU members — see
    {!Forest.create}) over the captured [trace] using [domains] domains
    (default 1 = sequential, this domain included in the count), and
    returns per-config statistics identical to {!Forest.results} after
    a sequential replay.

    @raise Invalid_argument if [domains < 1] or the configs are not a
    valid forest family. *)
