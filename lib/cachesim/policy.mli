(** Replacement policies for set-associative caches.

    The paper's simulations are direct-mapped (PR 1); modern
    hierarchies use pseudo-LRU families.  Each policy here is pinned
    against a deliberately naive reference simulator
    ([test/oracle.ml]) by a qcheck differential suite, under a shared
    victim-side contract:

    - invalid ways are filled leftmost-first, before any replacement;
    - {!State.victim} is consulted only when the set is full;
    - [Random] draws exactly one xorshift32 value per victim request,
      in access order, and reduces it modulo the associativity. *)

type qlru = {
  hit_age : int;  (** age a line is set to on a hit (0..3) *)
  insert_age : int;  (** age a freshly filled line starts at (0..3) *)
}
(** Parameters of the quad-age LRU family: 2-bit age per line, victim
    is the leftmost line of age 3 after ageing the whole set up to a
    maximum of 3 when no such line exists. *)

type t =
  | Lru  (** true least-recently-used (the only policy {!Forest} handles) *)
  | Fifo  (** evict oldest fill; hits do not refresh *)
  | Random of int  (** seeded xorshift32 victim; deterministic per seed *)
  | Plru  (** tree pseudo-LRU (Intel L1s; pre-Ivy-Bridge L2/L3) *)
  | Qlru of qlru  (** quad-age LRU (Skylake-era L2/L3 variants) *)
  | Mru  (** bit-PLRU: MRU bit per line, reset-on-saturation *)

val qlru_h00_m1 : qlru
(** Hits rejuvenate to age 0, fills insert at age 1 (Skylake L2-like). *)

val qlru_h11_m1 : qlru
(** Hits rejuvenate to age 1, fills insert at age 1 (Haswell/Skylake
    L3-like). *)

val qlru_h00_m0 : qlru
(** Hits and fills both go to age 0 (most protective variant). *)

val is_lru : t -> bool
(** [is_lru p] is true only for {!Lru} — the gate for the one-pass
    forest fast path, which relies on LRU inclusion. *)

val to_string : t -> string
(** Stable token used in config names, artifact encoding and the CLI:
    ["lru"], ["fifo"], ["random:SEED"], ["plru"], ["qlru-hH-mM"],
    ["mru"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; [Error] carries a human-readable message
    listing the accepted forms. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Mutable per-set replacement state shared by {!Cache} and the
    N-level {!Hierarchy}.  One value covers every set of a cache. *)
module State : sig
  type policy = t
  type t

  val create : policy -> num_sets:int -> assoc:int -> t

  val hit : t -> set:int -> way:int -> unit
  (** Record a hit on [way] of [set]. *)

  val fill : t -> set:int -> way:int -> unit
  (** Record a fill (miss refill) into [way] of [set]. *)

  val victim : t -> set:int -> int
  (** Choose the way to evict from a {e full} [set].  Must not be
      called while the set still has invalid ways. *)

  val reset : t -> unit
  (** Forget all recency state (cache flush).  [Random] keeps its rng
      position so a flush does not replay the victim stream. *)
end
