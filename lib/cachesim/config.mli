(** Cache configurations.

    The paper simulates direct-mapped caches with 32-byte blocks and total
    sizes from 16 KB to 256 KB; we additionally support set-associative
    caches for the associativity discussion in §2.2, with a pluggable
    replacement {!Policy.t} for the modern-hierarchy experiments. *)

type t = {
  name : string;  (** Display label, e.g. ["16K-dm"]. *)
  size_bytes : int;  (** Total capacity; power of two. *)
  block_bytes : int;  (** Block (line) size; power of two. *)
  associativity : int;  (** 1 = direct-mapped. *)
  policy : Policy.t;  (** Replacement policy; {!Policy.Lru} by default. *)
}

val make :
  ?name:string ->
  ?block_bytes:int ->
  ?associativity:int ->
  ?policy:Policy.t ->
  int ->
  t
(** [make size_bytes] builds a configuration with the paper's defaults:
    32-byte blocks, direct-mapped, LRU replacement.  A name is derived
    when not given (e.g. ["64K-dm"], ["16K-2way"]); non-LRU policies
    are appended to derived names (["16K-8way-plru"]) so paper-era
    labels stay stable.

    @raise Invalid_argument — naming the offending value — if sizes or
    associativity are not powers of two, the block does not divide the
    capacity, or associativity does not divide the number of blocks. *)

val num_sets : t -> int
(** Number of sets: [size_bytes / (block_bytes * associativity)]. *)

val num_blocks : t -> int
(** Total number of blocks: [size_bytes / block_bytes]. *)

val paper_direct_mapped : t list
(** The direct-mapped sweep of Figures 6–8: 16 K, 32 K, 64 K, 128 K,
    192 K is not a power of two so the sweep uses 16/32/64/128/256 K. *)

val pp : Format.formatter -> t -> unit
