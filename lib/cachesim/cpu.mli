(** Modern CPU cache-hierarchy presets (2008-2017).

    Each preset bundles an L1/L2/L3 {!Config.t} stack — sizes,
    associativities and replacement policies following the publicly
    documented Intel client parts — with per-level hit latencies and a
    main-memory latency, extending the paper's single-penalty
    execution-time model to a per-level cost model.  Select with
    [loclab --cpu KEY]. *)

type level = { config : Config.t; hit_latency : int  (** load-to-use cycles *) }

type t = {
  key : string;  (** CLI token, e.g. ["skylake"]. *)
  label : string;  (** Human label, e.g. ["Skylake (2015)"]. *)
  year : int;
  levels : level list;  (** outermost (L1) first *)
  mem_latency : int;  (** cycles to serve a last-level miss *)
}

val nehalem : t
val sandybridge : t
val haswell : t
val skylake : t
val coffeelake : t

val all : t list
(** All presets, oldest first. *)

val keys : unit -> string list

val find : string -> t
(** @raise Invalid_argument for an unknown key, listing the known ones. *)

val hierarchy : t -> Hierarchy.t
(** A fresh simulated hierarchy with this preset's level configs. *)

val miss_penalties : t -> int array
(** Per-level miss costs for {!Hierarchy.stalls}: a miss at level [i]
    pays level [i+1]'s hit latency; the last level pays
    [mem_latency]. *)

val stall_cycles : t -> Hierarchy.t -> int
(** [stall_cycles t h] = [Hierarchy.stalls h ~penalties:(miss_penalties t)]. *)

val total_cycles : t -> Hierarchy.t -> instructions:int -> int
(** One cycle per instruction plus {!stall_cycles} — the paper's
    execution-time model with per-level penalties. *)

val pp : Format.formatter -> t -> unit
