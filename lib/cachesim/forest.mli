(** One-pass simulation of a *family* of caches sharing one block size
    — Hill & Smith's forest simulation, the way the paper's TYCHO
    evaluates its whole 16K–256K size sweep in a single walk over the
    trace.

    Direct-mapped members are ordered by the inclusion property of
    same-stream direct-mapped caches with power-of-two set counts:
    residence in a smaller member implies residence in every larger
    member, so one smallest-to-largest probe that stops at the first
    hit classifies the reference for the whole chain.  Set-associative
    members do not order by inclusion (equal capacity at different set
    counts is the classic counterexample) and are probed individually,
    with per-way last-use stamps standing in for an LRU list — but they
    share the family's access profile and cold-miss table, which are
    identical for every member seeing the same stream.

    Per-member statistics are bit-identical to simulating each member
    independently with {!Cache} (verified by a property test in
    [test/test_cachesim.ml]). *)

type t

val create : ?shard:int * int -> Config.t list -> t
(** [create configs] builds the family.

    [?shard:(i, n)] builds shard [i] of [n]: the instance owns only the
    blocks whose set index (in the family's smallest member) falls in
    its contiguous [1/n] range, and silently ignores every other
    reference.  Because all members' set counts are powers of two, a
    whole set of {e every} member belongs to exactly one shard, so [n]
    shards each scanning the full trace and then merged with {!absorb}
    produce statistics identical to one unsharded instance ([Shard]
    drives this across domains; identity is pinned by test).

    @raise Invalid_argument if the list is empty, the members disagree
    on block size, or the shard pair is out of range. *)

val block_bytes : t -> int
(** The family's shared block size. *)

val size : t -> int
(** Number of members. *)

val access_block : t -> kind:Memsim.Event.kind ->
  source:Memsim.Event.source -> block:int -> int
(** [access_block t ~kind ~source ~block] touches one block (global
    block index, i.e. [addr / block_bytes]) in every member and returns
    how many members missed (0 = hit everywhere). *)

val ks_index :
  kind:Memsim.Event.kind -> source:Memsim.Event.source -> int
(** The fused kind/source counter index ([ki*3 + si]) used by the hot
    entries below; resolve it once per event, not once per block. *)

val access_block_ks : t -> ks:int -> block:int -> int
(** {!access_block} with the kind/source already fused into a
    {!ks_index}; the hot entry for {!Hierarchy}. *)

val access_range_ks : t -> ks:int -> addr:int -> size:int -> unit
(** Touches every block the byte range spans, with the kind/source
    already fused; the hot entry for {!Multi}'s batch loop. *)

val access : t -> Memsim.Event.t -> unit
(** Feeds one reference event, touching every block the byte range
    spans (addresses must be non-negative). *)

val access_packed_batch : t -> Memsim.Event.Batch.t -> unit
(** Feeds a packed batch through the hot path without materialising
    [Event.t] records. *)

val sink : t -> Memsim.Sink.t
(** The family as a trace consumer; boxed batches replay the buffer in
    order through {!access}, packed batches go straight through
    {!access_packed_batch}. *)

val absorb : t -> t -> unit
(** [absorb t other] adds [other]'s counters (accesses, misses, cold
    misses, writebacks) into [t] — the merge step of sharded
    simulation.  Cache contents are untouched.

    @raise Invalid_argument if the two instances' members differ. *)

val member_config : t -> int -> Config.t
(** Configuration of the [i]th member, in creation order. *)

val member_stats : t -> int -> Stats.t
(** Statistics of the [i]th member, materialised fresh on each call
    (a snapshot, not a live accumulator). *)

val results : t -> (Config.t * Stats.t) list
(** Configuration and statistics per member, in creation order. *)

val miss_rate_series : t -> (string * float) list
(** [(name, miss-rate %)] per member — one figure series. *)
