(* Modern CPU cache-hierarchy presets, 2008-2017.

   Shapes, replacement policies and latencies follow the publicly
   documented / reverse-engineered values for Intel's client parts
   (Abel & Reineke's nanoBench-style policy identifications; vendor
   optimisation manuals for sizes and load-to-use latencies):

   - L1 data caches are 32 KB 8-way tree-PLRU throughout the range.
   - L2 is 256 KB 8-way tree-PLRU up to Haswell; Skylake's L2 drops to
     4-way with a QLRU variant that rejuvenates hits to age 0.
   - L3 is inclusive, 16-way, tree-PLRU on Nehalem/Sandy Bridge and
     QLRU (hits to age 1) from Haswell on.  Sizes are the common
     quad-core client configurations, rounded to powers of two as
     {!Config} requires (8 MB; 16 MB for the 8-core Coffee Lake).

   Latencies are load-to-use cycle counts; [mem_latency] is the cost of
   missing the last level.  The cycle model is the paper's, extended
   per level: a miss at level i stalls for the hit latency of level
   i+1, a last-level miss stalls for [mem_latency] (see
   {!miss_penalties}). *)

type level = { config : Config.t; hit_latency : int }

type t = {
  key : string;
  label : string;
  year : int;
  levels : level list;  (* outermost (L1) first *)
  mem_latency : int;
}

let kb k = k * 1024
let mb m = m * 1024 * 1024

let cache ?policy ~assoc size =
  Config.make ~block_bytes:64 ~associativity:assoc ?policy size

let nehalem =
  { key = "nehalem";
    label = "Nehalem (2008)";
    year = 2008;
    levels =
      [ { config = cache ~policy:Plru ~assoc:8 (kb 32); hit_latency = 4 };
        { config = cache ~policy:Plru ~assoc:8 (kb 256); hit_latency = 10 };
        { config = cache ~policy:Plru ~assoc:16 (mb 8); hit_latency = 40 } ];
    mem_latency = 200 }

let sandybridge =
  { key = "sandybridge";
    label = "Sandy Bridge (2011)";
    year = 2011;
    levels =
      [ { config = cache ~policy:Plru ~assoc:8 (kb 32); hit_latency = 4 };
        { config = cache ~policy:Plru ~assoc:8 (kb 256); hit_latency = 12 };
        { config = cache ~policy:Plru ~assoc:16 (mb 8); hit_latency = 30 } ];
    mem_latency = 200 }

let haswell =
  { key = "haswell";
    label = "Haswell (2013)";
    year = 2013;
    levels =
      [ { config = cache ~policy:Plru ~assoc:8 (kb 32); hit_latency = 4 };
        { config = cache ~policy:Plru ~assoc:8 (kb 256); hit_latency = 12 };
        { config = cache ~policy:(Qlru Policy.qlru_h11_m1) ~assoc:16 (mb 8);
          hit_latency = 36 } ];
    mem_latency = 230 }

let skylake =
  { key = "skylake";
    label = "Skylake (2015)";
    year = 2015;
    levels =
      [ { config = cache ~policy:Plru ~assoc:8 (kb 32); hit_latency = 4 };
        { config = cache ~policy:(Qlru Policy.qlru_h00_m1) ~assoc:4 (kb 256);
          hit_latency = 12 };
        { config = cache ~policy:(Qlru Policy.qlru_h11_m1) ~assoc:16 (mb 8);
          hit_latency = 42 } ];
    mem_latency = 240 }

let coffeelake =
  { key = "coffeelake";
    label = "Coffee Lake (2017)";
    year = 2017;
    levels =
      [ { config = cache ~policy:Plru ~assoc:8 (kb 32); hit_latency = 4 };
        { config = cache ~policy:(Qlru Policy.qlru_h00_m1) ~assoc:4 (kb 256);
          hit_latency = 12 };
        { config = cache ~policy:(Qlru Policy.qlru_h11_m1) ~assoc:16 (mb 16);
          hit_latency = 44 } ];
    mem_latency = 260 }

let all = [ nehalem; sandybridge; haswell; skylake; coffeelake ]
let keys () = List.map (fun c -> c.key) all

let find key =
  match List.find_opt (fun c -> c.key = key) all with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Cachesim.Cpu.find: unknown CPU %S (known: %s)" key
           (String.concat ", " (keys ())))

let hierarchy t = Hierarchy.create_levels (List.map (fun l -> l.config) t.levels)

let miss_penalties t =
  (* A miss at level i pays the hit latency of level i+1; the last
     level pays main memory. *)
  let n = List.length t.levels in
  let lats = Array.of_list (List.map (fun l -> l.hit_latency) t.levels) in
  Array.init n (fun i -> if i = n - 1 then t.mem_latency else lats.(i + 1))

let stall_cycles t hier = Hierarchy.stalls hier ~penalties:(miss_penalties t)

let total_cycles t hier ~instructions =
  (* The paper's execution-time model, per-level: one cycle per
     instruction plus memory stalls. *)
  instructions + stall_cycles t hier

let pp ppf t =
  Format.fprintf ppf "%s: %s, mem %d cycles" t.key
    (String.concat " / "
       (List.map
          (fun l ->
            Printf.sprintf "%s @ %d cyc" l.config.Config.name l.hit_latency)
          t.levels))
    t.mem_latency
