(** Request-scoped tracing: one context per served request, carrying a
    hex request id, an ordered list of timed stages
    ([read_frame → decode → store_lookup → simulate |
    single_flight_wait → encode → write_reply]), and the accounting
    fields the access log and the slow-request table render.

    {b Ownership.}  A context belongs to exactly one request's
    execution path; hand-offs between the reader thread, the handler
    thread and a single-flight leader's pool worker all pass through
    mutex-guarded queues or futures (happens-before), so fields need no
    locks of their own.  Only {!finish} touches shared state — the
    {!Slow} ring and, when span tracing is on, the {!Span} ring.

    {b Cost.}  Disabled (the default), {!stage} runs its thunk
    directly and {!finish} records nothing; like the rest of the
    telemetry stack, tracing only observes — it cannot perturb
    simulation results. *)

type stage = {
  sname : string;
  sstart_us : float;  (** {!Span.now_us} at stage start. *)
  sdur_us : float;
}

type finished = {
  id : string;  (** Lowercase hex request id. *)
  kind : string;  (** Request kind (the metrics label). *)
  peer : string;
  cell : string;  (** Cell digest / experiment id / trace ident; [""] if none. *)
  outcome : string;  (** ["ok"] or an error-code name. *)
  warm : bool option;  (** Store hit? [None] when not a store-backed kind. *)
  bytes_in : int;
  bytes_out : int;
  queue_depth : int;  (** Connection queue depth when admitted. *)
  wall_start : float;  (** [Unix.gettimeofday] at creation (seconds). *)
  total_us : float;
  stages : stage list;  (** Execution order. *)
}

type t

val set_enabled : bool -> unit
val enabled : unit -> bool

val fresh_id : unit -> string
(** A random 64-bit id, rendered as 16 lowercase hex digits. *)

val valid_id : string -> bool
(** Accepted client-supplied ids: 1–32 hex digits. *)

val create : ?id:string -> kind:string -> peer:string -> unit -> t
(** Start a context.  A valid client-supplied [id] is adopted
    (lowercased); an invalid or absent one is replaced by
    {!fresh_id} — the server mints for v1 clients. *)

val id : t -> string

val set_kind : t -> string -> unit
val set_cell : t -> string -> unit
val set_outcome : t -> string -> unit
val set_warm : t -> bool -> unit
val add_bytes_in : t -> int -> unit
val add_bytes_out : t -> int -> unit
val set_queue_depth : t -> int -> unit

val stage : t -> string -> (unit -> 'a) -> 'a
(** [stage t name f] times [f] and appends the stage (also when [f]
    raises; the exception is re-raised).  Disabled: runs [f] directly. *)

val record_stage : t -> string -> start_us:float -> dur_us:float -> unit
(** Append a stage measured elsewhere (the reader times [read_frame]
    and [decode] before the context exists in its final home). *)

val finish : t -> finished
(** Seal the context: computes the total, submits it to the {!Slow}
    ring, and — when {!Span} tracing is also enabled — mirrors the
    request as a root span plus one child span per stage, all tagged
    with the request id. *)

(** Bounded table of the N slowest requests per time window.  The
    current window fills and on rotation becomes the previous one, so
    a snapshot covers one to two windows — a burst stays visible for
    at least a window after it ends, a quiet server doesn't pin stale
    entries forever. *)
module Slow : sig
  val configure : ?capacity:int -> ?window_us:float -> unit -> unit
  (** Defaults: capacity 8, window 60 s.  Out-of-range values are
      ignored. *)

  val note : finished -> unit
  (** Called by {!finish}; exposed for tests. *)

  val snapshot : unit -> finished list
  (** Slowest first, at most [capacity] entries, merged across the
      current and previous windows. *)

  val reset : unit -> unit
end

val to_json : finished -> Metrics.Export.json
(** The access-log object: [ts] (ISO 8601, µs precision), [request_id],
    [peer], [kind], [cell] (or null), [outcome], [total_us], [stages]
    (object: name → µs), [warm] (bool or null), [bytes_in],
    [bytes_out], [queue_depth]. *)

val iso8601 : float -> string
(** Render seconds-since-epoch as [YYYY-MM-DDThh:mm:ss.uuuuuuZ]. *)
