(* Wall-clock spans with a bounded ring-buffered event log and Chrome
   trace-event JSON export (load the file in Perfetto or
   chrome://tracing).

   The clock is gettimeofday clamped to be non-decreasing process-wide,
   so span timestamps are monotonic even if the system clock steps
   backwards.  Recording takes one short mutex section per span; spans
   wrap coarse units (grid cells, store I/O, renders), never per-event
   work, so contention is negligible.  When disabled, [with_span] runs
   its thunk directly. *)

type ev = {
  name : string;
  cat : string;
  ph : char;  (* 'X' complete span, 'i' instant *)
  ts : float;  (* microseconds since trace epoch *)
  dur : float;  (* microseconds; 0 for instants *)
  tid : int;
  args : (string * string) list;
}

let dummy_ev =
  { name = ""; cat = ""; ph = 'X'; ts = 0.; dur = 0.; tid = 0; args = [] }

let default_capacity = 65536

type state = {
  mutable on : bool;
  mutex : Mutex.t;
  mutable buf : ev array;
  mutable pushed : int;  (* total ever pushed; ring position = pushed mod cap *)
}

let st =
  { on = false;
    mutex = Mutex.create ();
    buf = Array.make default_capacity dummy_ev;
    pushed = 0 }

let set_enabled b = st.on <- b
let enabled () = st.on

(* ---- clock --------------------------------------------------------- *)

let epoch = Unix.gettimeofday ()

(* Monotonic clamp: never hand out a timestamp below one already handed
   out, even across domains. *)
let last_us = Atomic.make 0.

let now_us () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let rec clamp () =
    let prev = Atomic.get last_us in
    if t > prev then
      if Atomic.compare_and_set last_us prev t then t else clamp ()
    else prev
  in
  clamp ()

(* ---- recording ----------------------------------------------------- *)

let push e =
  Mutex.lock st.mutex;
  st.buf.(st.pushed mod Array.length st.buf) <- e;
  st.pushed <- st.pushed + 1;
  Mutex.unlock st.mutex

let reset ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Telemetry.Span.reset: capacity must be >= 1";
  Mutex.lock st.mutex;
  st.buf <- Array.make capacity dummy_ev;
  st.pushed <- 0;
  Mutex.unlock st.mutex

let recorded () = min st.pushed (Array.length st.buf)
let dropped () = max 0 (st.pushed - Array.length st.buf)

let tid () = (Domain.self () :> int)

let with_span ?(args = []) ~cat name f =
  if not st.on then f ()
  else begin
    let t0 = now_us () in
    match f () with
    | r ->
        push
          { name; cat; ph = 'X'; ts = t0; dur = now_us () -. t0; tid = tid ();
            args };
        r
    | exception e ->
        push
          { name;
            cat;
            ph = 'X';
            ts = t0;
            dur = now_us () -. t0;
            tid = tid ();
            args = args @ [ ("error", Printexc.to_string e) ] };
        raise e
  end

let instant ?(args = []) ~cat name =
  if st.on then
    push { name; cat; ph = 'i'; ts = now_us (); dur = 0.; tid = tid (); args }

(* A complete span whose interval was measured elsewhere (e.g. a
   request stage timed on another thread and recorded at finish). *)
let complete ?(args = []) ~cat name ~ts ~dur =
  if st.on then push { name; cat; ph = 'X'; ts; dur; tid = tid (); args }

(* ---- Chrome trace-event export ------------------------------------- *)

(* Ring contents, oldest first. *)
let events () =
  Mutex.lock st.mutex;
  let cap = Array.length st.buf in
  let n = min st.pushed cap in
  let first = st.pushed - n in
  let out = List.init n (fun i -> st.buf.((first + i) mod cap)) in
  Mutex.unlock st.mutex;
  out

let ev_json e =
  let open Metrics.Export in
  let base =
    [ ("name", String e.name);
      ("cat", String e.cat);
      ("ph", String (String.make 1 e.ph));
      ("ts", Float e.ts);
      ("pid", Int 1);
      ("tid", Int e.tid) ]
  in
  let dur = if e.ph = 'X' then [ ("dur", Float e.dur) ] else [] in
  (* Instants need a scope; "t" = thread. *)
  let scope = if e.ph = 'i' then [ ("s", String "t") ] else [] in
  let args =
    match e.args with
    | [] -> []
    | l -> [ ("args", Obj (List.map (fun (k, v) -> (k, String v)) l)) ]
  in
  Obj (base @ dur @ scope @ args)

let to_chrome_json () =
  let open Metrics.Export in
  to_string
    (Obj
       [ ("traceEvents", List (List.map ev_json (events ())));
         ("displayTimeUnit", String "ms") ])

let write_chrome ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_chrome_json ());
      output_char oc '\n')
