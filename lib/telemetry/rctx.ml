(* Request-scoped tracing context.

   One [t] per served request, threaded from the frame read to the
   reply write.  It accumulates a flat, ordered list of timed stages
   (read_frame → decode → … → write_reply) plus the identifying and
   accounting fields the access log and the slow-request table need.

   Concurrency contract: a context is owned by exactly one request's
   execution path.  The reader thread that creates it hands it to the
   handler thread through a mutex-guarded queue, and a single-flight
   leader may mutate it from the pool worker domain while the handler
   blocks in [await] — both hand-offs give happens-before, so no field
   needs its own lock.  Only [finish] touches shared state (the slow
   ring, under its mutex, and the span ring, under its own).

   Like the rest of the telemetry stack it is disabled by default and
   free when disabled: [stage] runs its thunk directly, [finish]
   returns a skeleton and records nothing. *)

type stage = { sname : string; sstart_us : float; sdur_us : float }

type finished = {
  id : string;
  kind : string;
  peer : string;
  cell : string;
  outcome : string;
  warm : bool option;
  bytes_in : int;
  bytes_out : int;
  queue_depth : int;
  wall_start : float;  (* Unix.gettimeofday at creation, seconds *)
  total_us : float;
  stages : stage list;  (* execution order *)
}

type t = {
  rid : string;
  wall : float;
  t0 : float;  (* Span.now_us at creation *)
  mutable rkind : string;
  mutable rpeer : string;
  mutable rcell : string;
  mutable routcome : string;
  mutable rwarm : bool option;
  mutable rbytes_in : int;
  mutable rbytes_out : int;
  mutable rqueue_depth : int;
  mutable rstages : stage list;  (* reverse execution order *)
}

(* ---- enable gate ---------------------------------------------------- *)

let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* ---- request ids ---------------------------------------------------- *)

(* Random 64-bit ids, hex-rendered.  Self-init seeds from the OS; the
   state is shared across connection threads, so guard it. *)
let rng = lazy (Random.State.make_self_init ())
let rng_mu = Mutex.create ()

let fresh_id () =
  Mutex.lock rng_mu;
  let bits = Random.State.bits64 (Lazy.force rng) in
  Mutex.unlock rng_mu;
  Printf.sprintf "%016Lx" bits

let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let valid_id s =
  let n = String.length s in
  n >= 1 && n <= 32 && String.for_all is_hex s

let adopt_id = function
  | Some s when valid_id s -> String.lowercase_ascii s
  | Some _ | None -> fresh_id ()

(* ---- lifecycle ------------------------------------------------------ *)

let create ?id ~kind ~peer () =
  { rid = adopt_id id;
    wall = Unix.gettimeofday ();
    t0 = Span.now_us ();
    rkind = kind;
    rpeer = peer;
    rcell = "";
    routcome = "";
    rwarm = None;
    rbytes_in = 0;
    rbytes_out = 0;
    rqueue_depth = 0;
    rstages = [] }

let id t = t.rid
let set_kind t kind = t.rkind <- kind
let set_cell t cell = t.rcell <- cell
let set_outcome t outcome = t.routcome <- outcome
let set_warm t warm = t.rwarm <- Some warm
let add_bytes_in t n = t.rbytes_in <- t.rbytes_in + n
let add_bytes_out t n = t.rbytes_out <- t.rbytes_out + n
let set_queue_depth t d = t.rqueue_depth <- d

let record_stage t name ~start_us ~dur_us =
  if !on then
    t.rstages <-
      { sname = name; sstart_us = start_us; sdur_us = dur_us } :: t.rstages

let stage t name f =
  if not !on then f ()
  else begin
    let s0 = Span.now_us () in
    match f () with
    | r ->
        record_stage t name ~start_us:s0 ~dur_us:(Span.now_us () -. s0);
        r
    | exception e ->
        record_stage t name ~start_us:s0 ~dur_us:(Span.now_us () -. s0);
        raise e
  end

(* ---- slow-request ring ---------------------------------------------- *)

module Slow = struct
  (* Top-N slowest requests per time window: the current window fills,
     and on rotation becomes the previous window, so a snapshot always
     covers between one and two windows of history — a burst of slow
     requests stays visible for at least [window_us] after it ends,
     and a quiet server doesn't pin stale entries forever. *)

  type state = {
    mutable capacity : int;
    mutable window_us : float;
    mutable window_start : float;
    mutable current : finished list;  (* sorted slowest-first, <= capacity *)
    mutable previous : finished list;
  }

  let mu = Mutex.create ()

  let st =
    { capacity = 8;
      window_us = 60e6;
      window_start = 0.;
      current = [];
      previous = [] }

  let configure ?capacity ?window_us () =
    Mutex.lock mu;
    (match capacity with
    | Some c when c >= 1 -> st.capacity <- c
    | Some _ | None -> ());
    (match window_us with
    | Some w when w > 0. -> st.window_us <- w
    | Some _ | None -> ());
    Mutex.unlock mu

  let reset () =
    Mutex.lock mu;
    st.current <- [];
    st.previous <- [];
    st.window_start <- 0.;
    Mutex.unlock mu

  let insert_sorted fin l =
    let rec go = function
      | [] -> [ fin ]
      | x :: rest when fin.total_us > x.total_us -> fin :: x :: rest
      | x :: rest -> x :: go rest
    in
    go l

  let take n l =
    let rec go n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: go (n - 1) rest
    in
    go n l

  let note fin =
    Mutex.lock mu;
    let now = Span.now_us () in
    if now -. st.window_start > st.window_us then begin
      st.previous <- st.current;
      st.current <- [];
      st.window_start <- now
    end;
    st.current <- take st.capacity (insert_sorted fin st.current);
    Mutex.unlock mu

  let snapshot () =
    Mutex.lock mu;
    let merged =
      List.fold_left
        (fun acc fin -> take st.capacity (insert_sorted fin acc))
        st.current st.previous
    in
    Mutex.unlock mu;
    merged
end

(* ---- finish --------------------------------------------------------- *)

let finish t =
  let total_us = if !on then Span.now_us () -. t.t0 else 0. in
  let fin =
    { id = t.rid;
      kind = t.rkind;
      peer = t.rpeer;
      cell = t.rcell;
      outcome = t.routcome;
      warm = t.rwarm;
      bytes_in = t.rbytes_in;
      bytes_out = t.rbytes_out;
      queue_depth = t.rqueue_depth;
      wall_start = t.wall;
      total_us;
      stages = List.rev t.rstages }
  in
  if !on then begin
    Slow.note fin;
    (* Mirror the request into the span ring when span tracing is also
       on: one root span plus one child per stage, all carrying the
       request id so Perfetto can group them. *)
    if Span.enabled () then begin
      let args = [ ("request_id", fin.id); ("kind", fin.kind) ] in
      List.iter
        (fun s ->
          Span.complete ~args ~cat:"serve.stage" s.sname ~ts:s.sstart_us
            ~dur:s.sdur_us)
        fin.stages;
      Span.complete
        ~args:
          (args
          @ (if fin.cell = "" then [] else [ ("cell", fin.cell) ])
          @ [ ("outcome", fin.outcome) ])
        ~cat:"serve.request" "request" ~ts:t.t0 ~dur:total_us
    end
  end;
  fin

(* ---- access-log rendering ------------------------------------------- *)

let iso8601 secs =
  let tm = Unix.gmtime secs in
  let frac = secs -. Float.of_int (int_of_float secs) in
  let micros = int_of_float (Float.round (frac *. 1e6)) in
  let micros = if micros > 999999 then 999999 else micros in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%06dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec micros

let to_json fin =
  let open Metrics.Export in
  Obj
    [ ("ts", String (iso8601 fin.wall_start));
      ("request_id", String fin.id);
      ("peer", String fin.peer);
      ("kind", String fin.kind);
      ("cell", if fin.cell = "" then Null else String fin.cell);
      ("outcome", String fin.outcome);
      ("total_us", Float fin.total_us);
      ( "stages",
        Obj (List.map (fun s -> (s.sname, Float s.sdur_us)) fin.stages) );
      ("warm", match fin.warm with None -> Null | Some b -> Bool b);
      ("bytes_in", Int fin.bytes_in);
      ("bytes_out", Int fin.bytes_out);
      ("queue_depth", Int fin.queue_depth) ]
