(* This module shares the library's name, so it is the library's entry
   point; re-export the subsystems under their public names. *)
module Metrics = Tmetrics
module Span = Span
module Probe = Probe
module Rctx = Rctx

let level_of_string = function
  | "quiet" -> Some None
  | "error" -> Some (Some Logs.Error)
  | "warning" -> Some (Some Logs.Warning)
  | "info" -> Some (Some Logs.Info)
  | "debug" -> Some (Some Logs.Debug)
  | _ -> None

let setup_logging ?(env = "LOCLAB_LOG") ?(default = Some Logs.Warning) () =
  Logs.set_reporter (Logs.format_reporter ());
  let level =
    match Sys.getenv_opt env with
    | Some s -> (
        match level_of_string (String.lowercase_ascii (String.trim s)) with
        | Some l -> l
        | None -> default)
    | None -> default
  in
  Logs.set_level level
