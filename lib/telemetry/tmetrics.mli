(** Process-wide metrics registry: named, labelled counters, gauges and
    log-bucketed histograms, in the Prometheus data model.

    Hot-path updates go to per-domain shards (atomic slots indexed by
    domain id), so {!Exec.Pool} worker domains record without lock
    contention; {!snapshot} merges the shards.  A disabled registry
    makes every update a no-op behind one flag load, and instrumentation
    never touches the simulated machine, so enabling metrics cannot
    change simulation results.

    Families ({!Counter.family}, …) are created once, at module
    initialisation or command start-up; {!Counter.labels} resolves a
    labelled child (cheap, but mutex-guarded — resolve once per consumer
    and keep the handle, never per event). *)

type t
(** A registry. *)

val create : unit -> t
(** A fresh registry, initially disabled (every update a no-op). *)

val default : t
(** The process-wide registry all built-in instrumentation records to. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** {2 Snapshots} *)

type histogram_sample = {
  buckets : (float * int) list;
      (** (upper bound, cumulative count) per bucket, Prometheus-style;
          the final bound is [infinity]. *)
  sum : int;
  count : int;
}

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of histogram_sample

type sample = { labels : (string * string) list; v : value }

type family_snapshot = {
  fname : string;
  fhelp : string;
  ftype : string;  (** ["counter"], ["gauge"] or ["histogram"]. *)
  samples : sample list;
}

type snapshot = family_snapshot list

val snapshot : t -> snapshot
(** Merge every shard of every metric; families in registration order,
    children in creation order. *)

val to_prometheus : snapshot -> string
(** Prometheus text exposition format (text/plain version 0.0.4). *)

val to_json : snapshot -> string
(** The same snapshot as one JSON object ({!Metrics.Export} encoding). *)

(** {2 Metric kinds} *)

module Counter : sig
  type family
  type h

  val family :
    ?registry:t -> name:string -> help:string -> ?labels:string list ->
    unit -> family
  (** @raise Invalid_argument on a malformed or duplicate metric name,
      or a malformed label name. *)

  val labels : family -> string list -> h
  (** Resolve (or create) the child with the given label values.
      @raise Invalid_argument on a label-arity mismatch. *)

  val inc : ?by:int -> h -> unit
  (** Add [by] (default 1) to the calling domain's shard; no-op while
      the registry is disabled.  @raise Invalid_argument if [by < 0]. *)

  val value : h -> int
  (** Merged total across shards. *)
end

module Gauge : sig
  type family
  type h

  val family :
    ?registry:t -> name:string -> help:string -> ?labels:string list ->
    unit -> family

  val labels : family -> string list -> h

  val set : h -> int -> unit
  (** Last-writer-wins (gauges are one atomic, not sharded: [set] does
      not merge).  No-op while the registry is disabled. *)

  val add : h -> int -> unit
  val value : h -> int
end

module Histogram : sig
  type family
  type h

  val family :
    ?registry:t -> name:string -> help:string -> ?labels:string list ->
    unit -> family

  val labels : family -> string list -> h

  val observe : h -> int -> unit
  (** Record one observation (clamped to >= 0) into its log-2 bucket:
      bucket upper bounds are 1, 2, 4, … 2^29, +Inf.  No-op while the
      registry is disabled. *)

  val count : h -> int
  val sum : h -> int

  val mean : h -> float
  (** [sum / count]; 0 when empty. *)

  val quantile : h -> float -> float
  (** [quantile h q] estimates the [q]-quantile ([q] clamped to
      [\[0, 1\]]) from the log-2 buckets, linearly interpolated inside
      the bucket holding the wanted rank — the same estimate
      Prometheus' [histogram_quantile] computes, so the serve stats
      endpoint and a scraping dashboard agree.  0 when empty; the
      overflow bucket reports its lower bound. *)
end
